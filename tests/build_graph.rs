//! Build-graph smoke test: every example and bench target must at least
//! type-check. `cargo test` already builds the root examples, but bench
//! targets (`test = false`, `harness = false`) are otherwise only
//! compiled by an explicit `--benches` pass — this test closes that gap
//! so a broken bench or example fails the tier-1 suite, not just CI.

use std::path::Path;
use std::process::Command;

/// The workspace root (the root package's manifest dir IS the root).
fn workspace_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn examples_and_benches_typecheck() {
    let root = workspace_root();
    for (name, path) in [
        ("quickstart", "examples/quickstart.rs"),
        ("multi_tenant_isolation", "examples/multi_tenant_isolation.rs"),
        ("vni_claims", "examples/vni_claims.rs"),
        ("coscheduling_traffic_classes", "examples/coscheduling_traffic_classes.rs"),
        ("system_monitoring", "examples/system_monitoring.rs"),
        ("micro", "crates/bench/benches/micro.rs"),
        ("figures", "crates/bench/benches/figures.rs"),
        ("ablation", "crates/bench/benches/ablation.rs"),
    ] {
        assert!(
            root.join(path).is_file(),
            "expected target `{name}` at {path}; was it moved without updating this test?"
        );
    }

    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
    let output = Command::new(cargo)
        .current_dir(root)
        .args(["check", "--workspace", "--examples", "--benches", "--quiet"])
        .output()
        .expect("spawn cargo check");
    assert!(
        output.status.success(),
        "`cargo check --workspace --examples --benches` failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
}
