//! End-to-end data-path tests: OSU-style measurements through the whole
//! stack (cluster admission → pod netns authentication → libfabric →
//! NIC → switch), plus the experiment-harness shape checks that gate the
//! figure reproductions.

use shs_des::{SimDur, SimTime};
use shs_fabric::{TrafficClass, Vni};
use shs_harness::{run_comm, CommConfig, Metric};
use shs_k8s::kinds;
use shs_mpi::{osu_bw_once, osu_latency_once, OsuParams, PairDevices, RankPair};
use slingshot_k8s::{osu_image, Cluster, ClusterConfig, VniCrdSpec};

fn admit_osu_job(cluster: &mut Cluster, vni: bool) -> (Vni, SimTime) {
    let ann: &[(&str, &str)] = if vni { &[("vni", "true")] } else { &[] };
    cluster.submit_job(SimTime::ZERO, "bench", "osu", ann, 2, &osu_image(), None);
    let now = cluster.run_until(
        SimTime::ZERO,
        SimTime::from_nanos(10_000_000_000),
        SimDur::from_millis(20),
    );
    let vni = if vni {
        let crd = cluster.api.get(kinds::VNI, "bench", "vni-osu").expect("CRD");
        let spec: VniCrdSpec = serde_json::from_value(crd.spec.clone()).expect("spec");
        Vni(spec.vni)
    } else {
        Vni::GLOBAL
    };
    (vni, now)
}

/// The headline data-path result: pods communicate via RDMA on their
/// allocated VNI at fabric-limited bandwidth and microsecond latency.
#[test]
fn osu_inside_pods_on_allocated_vni() {
    let mut cluster = Cluster::new(ClusterConfig::default());
    let (vni, now) = admit_osu_job(&mut cluster, true);
    let h0 = cluster.pod_handle("bench", "osu-0").expect("rank 0");
    let h1 = cluster.pod_handle("bench", "osu-1").expect("rank 1");
    let (na, nb, fabric) = cluster.two_nodes_mut(h0.node_idx, h1.node_idx);
    let mut devs =
        PairDevices { dev_a: &mut na.inner.device, dev_b: &mut nb.inner.device, fabric };
    let mut pair = RankPair::open(
        &na.inner.host, h0.pid, &nb.inner.host, h1.pid, &mut devs, vni,
        TrafficClass::Dedicated, now,
    )
    .expect("netns-member service admits the pod process");
    let lat = osu_latency_once(&mut pair, &mut devs, 8, 300, 30);
    assert!(lat > 1.0 && lat < 3.5, "small-message latency {lat}us (paper: ~2us)");
    let bw = osu_bw_once(&mut pair, &mut devs, 1 << 20, 30, 3, 64);
    assert!(bw > 20_000.0 && bw < 25_000.0, "1MB bandwidth {bw} MB/s (paper: ~24 GB/s)");
    pair.close(&mut devs);
}

/// Figs. 5-8 acceptance: all three configurations agree within the
/// paper's 1 % band on both metrics, host jitter bands included.
#[test]
fn comm_overhead_stays_within_one_percent() {
    for metric in [Metric::Bandwidth, Metric::Latency] {
        let cfg = CommConfig {
            osu: OsuParams {
                sizes: vec![8, 1024, 65_536, 1 << 20],
                iterations: 40,
                warmup: 4,
                window: 32,
            },
            runs: 5,
            seed: 21,
        };
        let res = run_comm(metric, &cfg);
        for mode in ["vni:true", "vni:false"] {
            for (i, (mean, _p10, _p90)) in res.overhead_of(mode).iter().enumerate() {
                assert!(
                    mean.abs() < 1.0,
                    "{metric:?} {mode} size#{i}: overhead {mean}% breaches the 1% band"
                );
            }
        }
    }
}

/// Fig. 5 acceptance: bandwidth monotone in size, saturating near line
/// rate, small-message end limited by message rate.
#[test]
fn bandwidth_curve_shape_matches_paper() {
    let cfg = CommConfig {
        osu: OsuParams {
            sizes: vec![1, 64, 4096, 65_536, 1 << 20],
            iterations: 30,
            warmup: 3,
            window: 64,
        },
        runs: 3,
        seed: 22,
    };
    let res = run_comm(Metric::Bandwidth, &cfg);
    let host = res.mean_of("host");
    assert!(host.windows(2).all(|w| w[1] > w[0]), "monotone: {host:?}");
    assert!(host[0] < 10.0, "1B end is message-rate bound: {} MB/s", host[0]);
    let peak = *host.last().unwrap();
    assert!(
        peak > 23_000.0 && peak < 24_500.0,
        "1MB saturates near 200 Gb/s line rate: {peak} MB/s"
    );
}

/// Fig. 7 acceptance: latency flat for small messages, bandwidth-bound
/// for large ones.
#[test]
fn latency_curve_shape_matches_paper() {
    let cfg = CommConfig {
        osu: OsuParams {
            sizes: vec![1, 512, 65_536, 1 << 20],
            iterations: 60,
            warmup: 6,
            window: 1,
        },
        runs: 3,
        seed: 23,
    };
    let res = run_comm(Metric::Latency, &cfg);
    let host = res.mean_of("host");
    let flat_ratio = host[1] / host[0];
    assert!(flat_ratio < 1.2, "1B..512B nearly flat: {host:?}");
    let big_ratio = host[3] / host[0];
    assert!(big_ratio > 15.0, "1MB dominated by serialization: {host:?}");
}

/// vni:false pods use the global VNI — and therefore have *no* isolation
/// from each other (the insecure baseline the paper replaces).
#[test]
fn vni_false_baseline_has_no_isolation() {
    let mut cluster = Cluster::new(ClusterConfig::default());
    let (vni, now) = admit_osu_job(&mut cluster, false);
    assert_eq!(vni, Vni::GLOBAL);
    // Any other process — even on the host, outside any pod — can open
    // an endpoint on the global VNI and receive.
    let h0 = cluster.pod_handle("bench", "osu-0").expect("rank 0");
    let node = &mut cluster.nodes[h0.node_idx];
    let intruder =
        node.inner.host.spawn_detached("intruder", shs_oslinux::Uid(999), shs_oslinux::Gid(999));
    let ep = shs_ofi::OfiEp::open(
        &node.inner.host,
        &mut node.inner.device,
        intruder,
        Vni::GLOBAL,
        TrafficClass::Dedicated,
    );
    assert!(ep.is_ok(), "the global-VNI baseline admits anyone — no isolation");
    let _ = now;
}
