//! Smoke tests over the full experiment harness at miniature scale:
//! every figure's pipeline runs end-to-end and yields the paper's
//! qualitative shape. These are the acceptance criteria of DESIGN.md §4
//! wired into CI.

use shs_des::stats;
use shs_harness::{
    median_overhead_pct, ramp_batches, report, run_comm, run_pattern, CommConfig, Metric,
    OutputSink, Pattern,
};
use shs_mpi::OsuParams;

fn tiny_osu(window: u32) -> OsuParams {
    OsuParams { sizes: vec![8, 4096, 1 << 20], iterations: 15, warmup: 2, window }
}

#[test]
fn fig5_pipeline_shape() {
    let cfg = CommConfig { osu: tiny_osu(32), runs: 2, seed: 31 };
    let res = run_comm(Metric::Bandwidth, &cfg);
    let sink = OutputSink::new(None);
    let rendered = report::report_comm_absolute("Fig 5", &res, &sink);
    assert!(rendered.contains("vni:true"));
    assert!(rendered.contains("host"));
    let host = res.mean_of("host");
    assert!(host[2] > host[0] * 100.0, "bandwidth spans decades");
}

#[test]
fn fig6_and_fig8_overhead_bands() {
    for metric in [Metric::Bandwidth, Metric::Latency] {
        let cfg = CommConfig { osu: tiny_osu(16), runs: 4, seed: 32 };
        let res = run_comm(metric, &cfg);
        let t = res.overhead_of("vni:true");
        assert!(report::within_band(&t, 1.0), "{metric:?} overhead outside ±1%: {t:?}");
    }
}

#[test]
fn fig9_to_fig12_pipeline_shapes() {
    let (rw, rwo) = run_pattern(Pattern::Spike { jobs: 30 }, 2, 33, 90);
    // Fig 11-ish: running jobs accumulate then drain to zero.
    let series = rwo.running_series();
    let peak = series.iter().map(|r| r.1).fold(0.0, f64::max);
    assert!(peak >= 8.0, "peak running {peak}");
    assert_eq!(series.last().unwrap().1, 0.0, "drains to zero");
    // Fig 12-ish: overhead is a small single-digit percentage.
    let oh = median_overhead_pct(&rw, &rwo);
    assert!((-2.0..10.0).contains(&oh), "median overhead {oh}%");
    // Rendering works.
    let sink = OutputSink::new(None);
    let boxes = report::report_boxplots((&rw, &rwo), (&rw, &rwo), &sink);
    assert!(boxes.contains("median admission overhead"));
    let running = report::report_running("Fig 11", &rw, &rwo, None, &sink);
    assert!(running.contains("peak running"));
}

#[test]
fn fig10_delays_grow_through_the_ramp() {
    // A miniature ramp: delays at the sustained peak exceed early ones.
    let (_, without) = run_pattern(Pattern::Ramp, 1, 34, 120);
    let by_batch = without.delay_by_batch();
    assert_eq!(by_batch.len(), ramp_batches().len(), "every batch admitted");
    let early: Vec<f64> = by_batch[1..4].iter().map(|r| r.1).collect();
    let late: Vec<f64> = by_batch[18..24].iter().map(|r| r.1).collect();
    assert!(
        stats::mean(&late) > 2.0 * stats::mean(&early),
        "saturation must grow delays: early {early:?} late {late:?}"
    );
}
