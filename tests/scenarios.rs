//! End-to-end checks over the named scenario library: every scenario
//! must pass its isolation assertions, and a fixed seed must reproduce
//! the JSON report byte for byte (the `scenario-run` contract) — for
//! the parallel fabric sweeps, byte for byte **at every thread count**.

use slingshot_k8s::{library, parallel_by_name, parallel_library, run_fabric_scenario, run_scenario};

#[test]
fn every_library_scenario_passes_isolation_assertions() {
    for scenario in library(42) {
        let r = run_scenario(&scenario);
        assert!(
            r.passed,
            "{}: isolation assertions failed: {:?}",
            scenario.name, r.isolation
        );
        assert_eq!(
            r.jobs.started, r.jobs.planned,
            "{}: every planned job must eventually admit",
            scenario.name
        );
        assert_eq!(r.isolation.cross_vni_deliveries, 0, "{}", scenario.name);
        assert_eq!(r.isolation.quarantine_violations, 0, "{}", scenario.name);
        assert_eq!(r.isolation.leaked_services, 0, "{}", scenario.name);
        assert_eq!(r.isolation.stale_grants, 0, "{}", scenario.name);
    }
}

#[test]
fn scenario_reports_are_byte_identical_for_a_fixed_seed() {
    let run = |seed: u64| {
        let reports: Vec<_> = library(seed).iter().map(run_scenario).collect();
        serde_json::to_string_pretty(&reports).expect("serializes")
    };
    assert_eq!(run(42), run(42), "same seed, same bytes");
    assert_ne!(run(42), run(7), "the seed actually reaches the cluster");
}

#[test]
fn every_parallel_scenario_is_byte_identical_across_thread_counts() {
    // The `scenario-run --threads` contract: the serialized report of
    // every library sweep is byte-for-byte identical whether it ran
    // inline or on 2 or 4 workers. The k8s scenarios above are serial
    // by construction; these genuinely shard per dragonfly group.
    for sweep in parallel_library(42) {
        let base = serde_json::to_string_pretty(&run_fabric_scenario(&sweep, 1))
            .expect("serializes");
        for threads in [2usize, 4] {
            let run = serde_json::to_string_pretty(&run_fabric_scenario(&sweep, threads))
                .expect("serializes");
            assert_eq!(run, base, "{} diverged at threads={threads}", sweep.name);
        }
        assert!(!base.contains("thread"), "{}: report must not encode the thread count", sweep.name);
    }
}

#[test]
fn parallel_scenarios_pass_and_seeds_reach_the_sweep() {
    for sweep in parallel_library(42) {
        let r = run_fabric_scenario(&sweep, 2);
        assert!(r.passed, "{}: {:?}", sweep.name, r);
        assert_eq!(
            r.sent,
            r.delivered + r.congestion_drops + r.route_drops.unwrap_or(0),
            "{} conserves",
            sweep.name
        );
    }
    let sc = |seed| {
        let s = parallel_by_name("dragonfly-256-valiant", seed).expect("library sweep");
        serde_json::to_string_pretty(&run_fabric_scenario(&s, 1)).expect("serializes")
    };
    assert_ne!(sc(42), sc(7), "the seed actually reaches the traffic pattern");
}

#[test]
fn the_1024_node_scenario_completes_with_threads_1_and_4_byte_identical() {
    // The PR's acceptance gate: the 1024-node, 4-group dragonfly
    // scenario completes under the parallel engine, passes, and its
    // report bytes at threads=1 and threads=4 are equal.
    let sweep = parallel_by_name("dragonfly-1024", 42).expect("headline scenario");
    let t1 = run_fabric_scenario(&sweep, 1);
    let t4 = run_fabric_scenario(&sweep, 4);
    assert_eq!(t1.nodes, 1024);
    assert_eq!(t1.shards, 4);
    assert!(t1.passed, "{t1:?}");
    assert!(t1.delivered > 0 && t1.cross_group_injected > 0);
    assert_eq!(
        serde_json::to_string_pretty(&t1).expect("serializes"),
        serde_json::to_string_pretty(&t4).expect("serializes"),
        "threads=1 and threads=4 must produce identical bytes"
    );
}

#[test]
fn service_scenario_reports_are_byte_identical_across_threads_and_shards() {
    // The `scenario-run` contract for the three serving-plane
    // scenarios: `--shards 1` and `--shards 2` must not move a byte
    // (the sharded VNI facade preserves single-store allocation order),
    // and `--threads` never reaches the k8s path at all — it only
    // drives the fabric sweeps — so the same report must come back
    // whether the scenario runs inline or on any of several concurrent
    // workers (no ambient thread state may leak into the clock).
    for name in ["service-mesh-allreduce", "autoscale-burst", "rolling-update-allreduce"] {
        let render = |shards: usize| {
            let mut s = slingshot_k8s::by_name(name, 42).expect("library scenario");
            s.config.vni_shards = shards;
            serde_json::to_string_pretty(&run_scenario(&s)).expect("serializes")
        };
        let base = render(1);
        assert_eq!(base, render(2), "{name}: shards=2 diverged from shards=1");
        let workers: Vec<_> = (0..4)
            .map(|_| {
                let name = name.to_string();
                std::thread::spawn(move || {
                    let s = slingshot_k8s::by_name(&name, 42).expect("library scenario");
                    serde_json::to_string_pretty(&run_scenario(&s)).expect("serializes")
                })
            })
            .collect();
        for (i, w) in workers.into_iter().enumerate() {
            assert_eq!(w.join().expect("worker"), base, "{name}: worker {i} diverged");
        }
    }
}

#[test]
fn scenarios_exercise_their_designed_pressure() {
    let by: std::collections::BTreeMap<String, _> = library(42)
        .iter()
        .map(|s| (s.name.clone(), run_scenario(s)))
        .collect();

    let steady = &by["steady-state"];
    assert!(steady.traffic.delivered > 0, "multi-tenant traffic flowed");
    assert!(steady.isolation.cross_tenant_attempts > 0, "adversarial probes ran");
    assert_eq!(
        steady.isolation.cross_tenant_attempts,
        steady.isolation.cross_tenant_denied,
        "every cross-tenant probe was denied at some hop"
    );
    assert!(steady.vni.redemptions > 0, "the claim was redeemed");

    let churn = &by["churn"];
    assert_eq!(churn.vni.acquisitions, 18);
    assert_eq!(churn.vni.releases, 18);
    assert_eq!(churn.vni.allocated_at_end, 0, "teardown storm leaves nothing behind");

    let qp = &by["quarantine-pressure"];
    assert!(qp.vni.exhaustions > 0, "the 3-wide range saturated");
    assert!(qp.kubelet.cni_retries > 0, "pods retried while undecorated");

    let drain = &by["node-drain"];
    assert_eq!(drain.isolation.placement_violations, 0);
    assert_eq!(drain.kubelet.pods_failed, 0);

    let over = &by["oversubscribed"];
    assert!(over.vni.exhaustions > 0, "standing backlog hit exhaustion");
    assert_eq!(over.jobs.started, 5, "backlog fully drained via quarantine expiry");

    // The contention scenarios run on a 2-group dragonfly, so the
    // per-traffic-class section must be present.
    let class = |r: &slingshot_k8s::ScenarioReport, name: &str| {
        r.traffic
            .by_class
            .iter()
            .find(|c| c.class == name)
            .unwrap_or_else(|| panic!("{}: class {name} missing", r.scenario))
            .clone()
    };

    let nn = &by["noisy-neighbor"];
    let victim = class(nn, "low-latency");
    let bulk = class(nn, "bulk-data");
    assert!(victim.delivered > 0 && bulk.delivered > 0);
    // Bounded slowdown: the latency tenant shares only the group link
    // with the bulk burst, and per-class trunk scheduling keeps it at
    // (near-)unloaded latency — worst case well under 2x the ~766 ns
    // unloaded two-switch path — while the bulk class queues for tens
    // of microseconds and gets clipped by congestion management.
    assert!(
        victim.max_latency_ns < 1_600,
        "victim slowdown unbounded: {} ns",
        victim.max_latency_ns
    );
    assert!(bulk.trunk_queued_ns_max > 10_000, "the noisy tenant actually queued");
    assert!(bulk.max_latency_ns > 50 * victim.max_latency_ns);
    assert_eq!(victim.congestion_drops, 0);

    let inc = &by["incast"];
    let probe = class(inc, "low-latency");
    let fanin = class(inc, "bulk-data");
    // N→1 congestion: finite per-class trunk queues clip the incast and
    // account the drops on the bulk class only.
    assert!(fanin.congestion_drops > 0, "incast overflow must be dropped");
    assert_eq!(fanin.dropped, fanin.congestion_drops, "all bulk drops are congestion");
    assert_eq!(probe.congestion_drops, 0, "low-latency class spared");
    assert!(fanin.delivered > 0, "congestion management clips, not starves");

    // The collective scenarios carry per-tenant fabric accounting.
    let jt = |r: &slingshot_k8s::ScenarioReport, name: &str| {
        r.traffic
            .by_job
            .iter()
            .find(|j| j.job == name)
            .unwrap_or_else(|| panic!("{}: job {name} missing from by_job", r.scenario))
            .clone()
    };

    let cnn = &by["collective-noisy-neighbor"];
    let victim = jt(cnn, "hpc/allreduce");
    let bulk = jt(cnn, "noisy/bulk");
    // The 8-rank allreduce really crossed the group trunk on every ring
    // hop (2 switches per delivered message) with full per-tenant VNI
    // accounting, and the bulk burst could not slow it meaningfully:
    // bounded slowdown, zero loss, zero cross-tenant leakage.
    assert_eq!(victim.fabric_switch_hops, 2 * victim.delivered);
    assert_eq!(victim.sends, victim.delivered, "collective loses nothing");
    assert_eq!(victim.fabric_congestion_drops, 0);
    assert!(
        victim.max_latency_ns < 25_000,
        "collective slowdown unbounded: {} ns",
        victim.max_latency_ns
    );
    // WRR clips the bulk class instead: it queues for tens of µs on the
    // trunk and loses part of its burst to congestion management.
    assert!(bulk.fabric_congestion_drops > 0, "bulk burst must be clipped");
    assert_eq!(bulk.dropped, bulk.fabric_congestion_drops);
    assert!(bulk.max_latency_ns > 10 * victim.max_latency_ns);
    assert_eq!(cnn.isolation.cross_tenant_attempts, cnn.isolation.cross_tenant_denied);

    let cga = &by["cross-group-allreduce"];
    let skew = jt(cga, "skew/wide");
    let pack = jt(cga, "pack/tight");
    // Hop delta: the packed tenant's allreduce never leaves its switch
    // (1 hop/message); the skewed tenant pays 2 switches on every hop.
    assert_eq!(pack.fabric_switch_hops, pack.delivered);
    assert_eq!(skew.fabric_switch_hops, 2 * skew.delivered);
    // Congestion-drop delta: only the skewed tenant's converging
    // uplinks overflow the trunk queue.
    assert!(skew.fabric_congestion_drops > 0, "skewed placement must congest the trunk");
    assert_eq!(skew.dropped, skew.fabric_congestion_drops);
    assert_eq!(pack.fabric_congestion_drops, 0);
    assert_eq!(pack.sends, pack.delivered, "packed placement loses nothing");

    // Fault resilience: the trunk cut at 5 s lands mid-collective, so
    // the second half of the allreduce must complete over the 3-switch
    // detour through the spare group — visible as the per-tenant
    // reroute count and hop totals above the 2-hops/message minimum —
    // without losing a single message.
    let tca = &by["trunk-cut-allreduce"];
    let coll = jt(tca, "hpc/ring");
    assert_eq!(coll.sends, coll.delivered, "the collective survives the cut");
    assert!(
        coll.fabric_reroutes.unwrap_or(0) > 0,
        "the cut must force deterministic reroutes"
    );
    assert!(
        coll.fabric_switch_hops > 2 * coll.delivered,
        "detoured messages pay 3 switches: {} hops over {} messages",
        coll.fabric_switch_hops,
        coll.delivered
    );
    assert_eq!(coll.fabric_congestion_drops, 0);

    // Link flaps: two down/up cycles on the incast trunk. Bulk keeps
    // flowing via the detour during the outages (reroutes accrue) and
    // the low-latency probe sharing the trunk sees zero loss and stays
    // within 2x the ~1.1 µs unloaded 3-switch detour latency.
    let flap = &by["flapping-link-incast"];
    let probe = class(flap, "low-latency");
    let fanin = class(flap, "bulk-data");
    assert_eq!(probe.dropped, 0, "probe loses nothing through the flaps");
    assert_eq!(probe.congestion_drops, 0);
    assert!(
        probe.max_latency_ns < 2_000,
        "probe latency bound broken: {} ns",
        probe.max_latency_ns
    );
    assert!(
        flap.traffic.fabric_reroutes.unwrap_or(0) > 0,
        "the outages must actually force reroutes"
    );
    assert!(fanin.delivered > 0, "bulk kept flowing through the flaps");

    // The serving plane: TSoR request/response round trips ride the
    // same fabric, WRR classes and per-tenant VNI accounting as the
    // collectives, with adversarial probes in both directions.
    let svc = |r: &slingshot_k8s::ScenarioReport, name: &str| {
        r.services
            .iter()
            .find(|s| s.service == name)
            .unwrap_or_else(|| panic!("{}: service {name} missing", r.scenario))
            .clone()
    };

    let mesh = &by["service-mesh-allreduce"];
    let frontend = svc(mesh, "mesh/frontend");
    assert!(frontend.completed > 0, "round trips completed under the allreduce");
    assert_eq!(frontend.auth_failures, 0);
    assert!(
        frontend.slo_met,
        "mesh p99 {} ns must hold the {} ns SLO on the contended trunk",
        frontend.p99_latency_ns,
        frontend.slo_p99_ns
    );
    assert!(frontend.floor_held);
    let coll = jt(mesh, "hpc/allreduce");
    assert_eq!(coll.sends, coll.delivered, "the collective shares the trunk without loss");
    assert!(mesh.isolation.cross_tenant_attempts > 0, "both tenants probed each other");
    assert_eq!(mesh.isolation.cross_tenant_attempts, mesh.isolation.cross_tenant_denied);

    let auto = &by["autoscale-burst"];
    let api = svc(auto, "web/api");
    assert_eq!(api.replicas, 2, "baseline from the plan");
    assert_eq!(api.max_ready, 6, "the burst drove the autoscaler to its ceiling");
    assert!(api.slo_met && api.floor_held);
    assert_eq!(auto.vni.allocated_at_end, 0, "scale-down and deletion released every VNI");

    // The PR's acceptance gate: the allreduce completes with zero
    // drops and the service's p99 stays under SLO while replicas roll.
    let roll = &by["rolling-update-allreduce"];
    let ring = jt(roll, "hpc/ring");
    assert_eq!(ring.sends, ring.delivered, "allreduce survives the roll with zero drops");
    assert_eq!(ring.dropped, 0);
    assert_eq!(ring.fabric_congestion_drops, 0);
    let front = svc(roll, "web/frontend");
    assert!(
        front.slo_met,
        "p99 {} ns must hold the {} ns SLO through the roll",
        front.p99_latency_ns,
        front.slo_p99_ns
    );
    assert!(
        front.floor_held && front.min_ready >= front.ready_floor,
        "ready floor broken mid-roll: min {} floor {}",
        front.min_ready,
        front.ready_floor
    );
    assert_eq!(front.ready_floor, 3, "replicas 4, maxUnavailable 1");
    assert!(front.max_ready > front.replicas, "the surge replica was visible mid-roll");
}

#[test]
fn adaptive_routing_lowers_trunk_pressure_vs_minimal_under_incast() {
    // The adaptive-vs-static A/B: the same 3→1 incast once under UGAL
    // (the library scenario) and once with the routing flipped back to
    // minimal. UGAL's spillover through the spare group must strictly
    // lower the worst bulk-class trunk queue depth, and the
    // low-latency class takes zero drops on both sides.
    let adaptive = slingshot_k8s::by_name("adaptive-incast", 42).expect("library scenario");
    let mut minimal = adaptive.clone();
    minimal.config.routing = shs_fabric::RoutingPolicy::Minimal;

    let a = run_scenario(&adaptive);
    let m = run_scenario(&minimal);
    let class = |r: &slingshot_k8s::ScenarioReport, name: &str| {
        r.traffic
            .by_class
            .iter()
            .find(|c| c.class == name)
            .unwrap_or_else(|| panic!("{}: class {name} missing", r.scenario))
            .clone()
    };

    let a_bulk = class(&a, "bulk-data");
    let m_bulk = class(&m, "bulk-data");
    assert!(
        a_bulk.trunk_queued_ns_max < m_bulk.trunk_queued_ns_max,
        "UGAL must lower the worst trunk queue depth: adaptive {} ns vs minimal {} ns",
        a_bulk.trunk_queued_ns_max,
        m_bulk.trunk_queued_ns_max
    );
    assert!(
        a_bulk.delivered >= m_bulk.delivered,
        "spillover must not cost bulk goodput: adaptive {} vs minimal {}",
        a_bulk.delivered,
        m_bulk.delivered
    );
    for (side, r) in [("adaptive", &a), ("minimal", &m)] {
        let ll = class(r, "low-latency");
        assert_eq!(ll.dropped, 0, "{side}: low-latency class must take zero drops");
        assert_eq!(ll.congestion_drops, 0, "{side}");
        assert!(r.passed, "{side}: {:?}", r.isolation);
    }
}
