//! Cross-crate security properties (DESIGN.md §5): the motivating
//! vulnerability and the paper's fix, exercised through the full stack
//! (container runtime → namespaces → CXI driver → fabric).

use shs_cassini::{CassiniNic, CassiniParams};
use shs_cni::CniArgs;
use shs_containers::{ContainerRuntime, Image, UserNsMode};
use shs_cxi::{CxiDevice, CxiDriver, CxiServiceDesc, SvcMember};
use shs_des::{DetRng, SimDur, SimTime};
use shs_fabric::{Fabric, NicAddr, TrafficClass, TransferOutcome, Vni};
use shs_k8s::kinds;
use shs_oslinux::{Gid, Host, Pid, Uid};
use slingshot_k8s::{osu_image, Cluster, ClusterConfig, VniCrdSpec};

fn device_on(host: &Host, addr: u32, driver: CxiDriver, seed: u64) -> CxiDevice {
    let _ = host;
    CxiDevice::new(driver, CassiniNic::new(NicAddr(addr), CassiniParams::default(), DetRng::new(seed)))
}

/// §III: inside a user-namespaced container, the stock driver can be
/// fooled by setuid; the extended (userns-aware) driver cannot; and the
/// netns member type doesn't care about uids at all.
#[test]
fn uid_spoofing_through_the_container_runtime() {
    for (extended, expect_attack_success) in [(false, true), (true, false)] {
        let mut host = Host::new("n0");
        let driver = if extended { CxiDriver::extended() } else { CxiDriver::stock() };
        let mut dev = device_on(&host, 1, driver, 9);
        let root = host.credentials(Pid(1)).unwrap();

        // Victim service authenticating uid 4242 (legacy onboarding).
        let svc = dev
            .alloc_svc(
                &root,
                CxiServiceDesc {
                    members: vec![SvcMember::Uid(Uid(4242))],
                    vnis: vec![Vni(600)],
                    limits: Default::default(),
                    label: "victim".into(),
                },
            )
            .unwrap();

        // Attacker pod: user-namespaced sandbox via the *real* runtime.
        let mut rt = ContainerRuntime::default();
        rt.images.publish(Image::alpine());
        rt.create_sandbox(&mut host, "attacker", UserNsMode::Mapped { base: 100_000 })
            .unwrap();
        let (pid, _) = rt
            .start_container(&mut host, "attacker", "sh", &Image::alpine(), None)
            .unwrap();
        // Container root may setuid inside its namespace.
        host.setuid(pid, Uid(4242)).unwrap();

        let res = dev.ep_alloc_on(&host, pid, svc, Vni(600), TrafficClass::Dedicated);
        assert_eq!(
            res.is_ok(),
            expect_attack_success,
            "extended={extended}: stock driver is vulnerable, extended is not"
        );
    }
}

/// Netns authentication is invariant under uid games and applies per
/// sandbox: two pods with identical uids do not share services.
#[test]
fn netns_member_is_container_granular() {
    let mut host = Host::new("n0");
    let mut dev = device_on(&host, 1, CxiDriver::extended(), 10);
    let root = host.credentials(Pid(1)).unwrap();
    let mut rt = ContainerRuntime::default();
    rt.images.publish(Image::alpine());
    let (ns_a, _) = rt.create_sandbox(&mut host, "pod-a", UserNsMode::Host).unwrap();
    let (_ns_b, _) = rt.create_sandbox(&mut host, "pod-b", UserNsMode::Host).unwrap();
    let (pid_a, _) = rt.start_container(&mut host, "pod-a", "m", &Image::alpine(), None).unwrap();
    let (pid_b, _) = rt.start_container(&mut host, "pod-b", "m", &Image::alpine(), None).unwrap();

    let svc = dev
        .alloc_svc(
            &root,
            CxiServiceDesc {
                members: vec![SvcMember::NetNs(ns_a)],
                vnis: vec![Vni(700)],
                limits: Default::default(),
                label: "pod-a".into(),
            },
        )
        .unwrap();
    assert!(dev.ep_alloc_on(&host, pid_a, svc, Vni(700), TrafficClass::Dedicated).is_ok());
    assert!(
        dev.ep_alloc_on(&host, pid_b, svc, Vni(700), TrafficClass::Dedicated).is_err(),
        "same uid, different sandbox: denied"
    );
}

/// Switch-level enforcement: even with endpoints in hand, packets on a
/// VNI not granted to both ports die in the fabric.
#[test]
fn fabric_enforces_vni_on_both_ports() {
    let mut fabric = Fabric::new(4);
    let (a, b) = (NicAddr(1), NicAddr(2));
    fabric.attach(a);
    fabric.attach(b);
    fabric.grant_vni(a, Vni(5)).unwrap();
    // b is NOT granted VNI 5.
    let out = fabric.transfer(SimTime::ZERO, a, b, Vni(5), TrafficClass::Dedicated, 64, 1);
    assert!(matches!(out, TransferOutcome::Dropped(_)));
    fabric.grant_vni(b, Vni(5)).unwrap();
    let out = fabric.transfer(SimTime::ZERO, a, b, Vni(5), TrafficClass::Dedicated, 64, 2);
    assert!(matches!(out, TransferOutcome::Delivered { .. }));
}

/// Full-stack tenant isolation: endpoint creation on a foreign tenant's
/// VNI is refused; the monitor/no-annotation pod gets nothing either.
#[test]
fn cross_tenant_endpoint_refused_in_cluster() {
    let mut cluster = Cluster::new(ClusterConfig::default());
    cluster.submit_job(SimTime::ZERO, "a", "appa", &[("vni", "true")], 1, &osu_image(), None);
    cluster.submit_job(SimTime::ZERO, "b", "appb", &[("vni", "true")], 1, &osu_image(), None);
    cluster.run_until(SimTime::ZERO, SimTime::from_nanos(8_000_000_000), SimDur::from_millis(20));

    let crd = cluster.api.get(kinds::VNI, "a", "vni-appa").expect("CRD");
    let spec: VniCrdSpec = serde_json::from_value(crd.spec.clone()).unwrap();
    let vni_a = Vni(spec.vni);

    let hb = cluster.pod_handle("b", "appb-0").expect("tenant b running");
    let node = &mut cluster.nodes[hb.node_idx];
    assert!(
        shs_ofi::OfiEp::open(
            &node.inner.host,
            &mut node.inner.device,
            hb.pid,
            vni_a,
            TrafficClass::Dedicated
        )
        .is_err(),
        "tenant b must not join tenant a's VNI"
    );
}

/// The CXI CNI plugin refuses pods whose termination grace period
/// exceeds the 30 s bound required for safe VNI recycling (§III-C1).
#[test]
fn grace_period_bound_is_enforced() {
    use shs_k8s::{ApiObject, ApiServer, PodSpec};
    use slingshot_k8s::{CxiCniPlugin, NodeCniCtx, NodeCniPlugin};

    let mut host = Host::new("n0");
    let mut dev = device_on(&host, 1, CxiDriver::extended(), 11);
    let mut fabric = Fabric::new(4);
    fabric.attach(NicAddr(1));
    let mut api = ApiServer::default();
    let spec = PodSpec {
        job_name: Some("j".into()),
        image: "alpine".into(),
        run_ms: None,
        userns_base: None,
        node_name: Some("n0".into()),
        spread_key: None,
        node_selector: None,
        termination_grace_period_secs: 60, // too long
    };
    let mut pod =
        ApiObject::new(kinds::POD, "t", "p", serde_json::to_value(spec).unwrap());
    pod.meta.annotations.insert("vni".into(), "true".into());
    api.create(pod, SimTime::ZERO).unwrap();

    let sandbox_pid = host.spawn_detached("pause", Uid::ROOT, Gid::ROOT);
    let netns = host.unshare_net_ns(sandbox_pid).unwrap();
    let root = host.credentials(Pid(1)).unwrap();
    let mut ctx = NodeCniCtx {
        host: &mut host,
        device: &mut dev,
        fabric: &mut fabric,
        api: &api,
        nic: NicAddr(1),
        root,
    };
    let args = CniArgs {
        container_id: "t_p".into(),
        netns,
        ifname: "eth0".into(),
        pod: Some(shs_cni::PodRef { namespace: "t".into(), name: "p".into(), uid: "1".into() }),
    };
    let mut plugin = CxiCniPlugin::default();
    let (err, _cost) = plugin.add(&mut ctx, &args, Default::default()).unwrap_err();
    assert_eq!(err.code, 120, "grace period violation is a fatal plugin error");
}

/// No CXI service survives its container: after job deletion every
/// cni-labelled service on every node is gone, even with pods straggling
/// up to the grace period.
#[test]
fn no_service_leaks_after_job_deletion() {
    let mut cluster = Cluster::new(ClusterConfig::default());
    for i in 0..4 {
        cluster.submit_job(
            SimTime::ZERO,
            "t",
            &format!("leaky-{i}"),
            &[("vni", "true")],
            2,
            &osu_image(),
            None,
        );
    }
    let now = cluster.run_until(
        SimTime::ZERO,
        SimTime::from_nanos(12_000_000_000),
        SimDur::from_millis(20),
    );
    let before: usize = cluster
        .nodes
        .iter()
        .map(|n| n.inner.device.driver.services().iter().filter(|s| s.label.starts_with("cni:")).count())
        .sum();
    assert_eq!(before, 8, "two pods per job, four jobs");
    for i in 0..4 {
        cluster.delete_job("t", &format!("leaky-{i}"));
    }
    cluster.run_until(now, now + SimDur::from_secs(20), SimDur::from_millis(20));
    let after: usize = cluster
        .nodes
        .iter()
        .map(|n| n.inner.device.driver.services().iter().filter(|s| s.label.starts_with("cni:")).count())
        .sum();
    assert_eq!(after, 0, "CNI DEL must destroy every container's services");
    assert_eq!(cluster.endpoint.borrow().db.allocated_count(), 0);
}
