//! VNI lifecycle properties through the full control plane (DESIGN.md
//! §5): exclusivity, the 30 s quarantine, claim semantics, and endpoint
//! database consistency under cluster churn.

use shs_des::{SimDur, SimTime};
use shs_k8s::kinds;
use slingshot_k8s::{alpine, osu_image, Cluster, ClusterConfig, VniState};

fn crd_vni(cluster: &Cluster, ns: &str, name: &str) -> u16 {
    cluster.api.get(kinds::VNI, ns, name).expect("VNI CRD").spec["vni"]
        .as_u64()
        .expect("vni field") as u16
}

/// Two concurrently live jobs never share a VNI; a re-submitted job does
/// not get its predecessor's VNI back before the quarantine elapses.
#[test]
fn vni_exclusivity_and_quarantine_through_the_cluster() {
    let mut cluster = Cluster::new(ClusterConfig::default());
    cluster.submit_job(SimTime::ZERO, "t", "one", &[("vni", "true")], 1, &osu_image(), None);
    cluster.submit_job(SimTime::ZERO, "t", "two", &[("vni", "true")], 1, &osu_image(), None);
    let now = cluster.run_until(
        SimTime::ZERO,
        SimTime::from_nanos(6_000_000_000),
        SimDur::from_millis(20),
    );
    let v1 = crd_vni(&cluster, "t", "vni-one");
    let v2 = crd_vni(&cluster, "t", "vni-two");
    assert_ne!(v1, v2, "live jobs have exclusive VNIs");

    // Delete job one; its VNI goes into quarantine.
    cluster.delete_job("t", "one");
    let now = cluster.run_until(now, now + SimDur::from_secs(8), SimDur::from_millis(20));
    {
        let ep = cluster.endpoint.borrow();
        let row = ep.db.row(shs_fabric::Vni(v1)).expect("row kept through quarantine");
        assert!(matches!(row.state, VniState::Quarantined { .. }));
    }

    // A new job right away must NOT receive v1 (quarantine is 30 s).
    cluster.submit_job(now, "t", "three", &[("vni", "true")], 1, &osu_image(), None);
    let now = cluster.run_until(now, now + SimDur::from_secs(5), SimDur::from_millis(20));
    let v3 = crd_vni(&cluster, "t", "vni-three");
    assert_ne!(v3, v1, "quarantined VNI must not be reissued early");

    // After the quarantine window, the VNI becomes reusable.
    let now = cluster.run_until(now, now + SimDur::from_secs(35), SimDur::from_millis(20));
    cluster.submit_job(now, "t", "four", &[("vni", "true")], 1, &osu_image(), None);
    cluster.run_until(now, now + SimDur::from_secs(5), SimDur::from_millis(20));
    let v4 = crd_vni(&cluster, "t", "vni-four");
    assert_eq!(v4, v1, "lowest free VNI is the now-dequarantined one");
}

/// The audit log records the full history of cluster-driven operations.
#[test]
fn audit_log_tracks_cluster_operations() {
    let mut cluster = Cluster::new(ClusterConfig::default());
    cluster.submit_job(SimTime::ZERO, "t", "j", &[("vni", "true")], 1, &alpine(), Some(10));
    cluster.run_until(SimTime::ZERO, SimTime::from_nanos(8_000_000_000), SimDur::from_millis(20));
    let ep = cluster.endpoint.borrow();
    let events: Vec<String> = ep.db.audit().into_iter().map(|e| e.event).collect();
    assert!(events.contains(&"acquire".to_string()));
    assert!(events.contains(&"release".to_string()), "ttl deletion released the VNI: {events:?}");
}

/// Claims: redeeming jobs are tracked as users in the database; the
/// virtual VNI objects disappear with their jobs.
#[test]
fn claim_user_tracking_matches_job_lifecycle() {
    let mut cluster = Cluster::new(ClusterConfig::default());
    cluster.create_claim(SimTime::ZERO, "t", "net");
    let t1 = SimTime::from_nanos(1_000_000_000);
    cluster.run_until(SimTime::ZERO, t1, SimDur::from_millis(20));
    cluster.submit_job(t1, "t", "ja", &[("vni", "net")], 1, &osu_image(), None);
    cluster.submit_job(t1, "t", "jb", &[("vni", "net")], 1, &osu_image(), None);
    let now = cluster.run_until(t1, t1 + SimDur::from_secs(5), SimDur::from_millis(20));
    {
        let ep = cluster.endpoint.borrow();
        let row = ep.db.find_by_claim("t/net").expect("claim VNI");
        assert_eq!(row.users.len(), 2, "both jobs registered: {:?}", row.users);
    }
    cluster.delete_job("t", "ja");
    let now = cluster.run_until(now, now + SimDur::from_secs(6), SimDur::from_millis(20));
    {
        let ep = cluster.endpoint.borrow();
        let row = ep.db.find_by_claim("t/net").expect("claim VNI");
        assert_eq!(row.users, vec!["t/jb".to_string()]);
    }
    assert!(cluster.api.get(kinds::VNI, "t", "vni-ja").is_none(), "virtual object gone");
    assert!(cluster.api.get(kinds::VNI, "t", "vni-jb").is_some());
    cluster.delete_job("t", "jb");
    cluster.delete_claim("t", "net");
    cluster.run_until(now, now + SimDur::from_secs(10), SimDur::from_millis(20));
    assert_eq!(cluster.endpoint.borrow().db.allocated_count(), 0);
}

/// VNI range exhaustion: jobs beyond the range cannot launch, and
/// recover once capacity frees up.
#[test]
fn exhaustion_blocks_and_recovers() {
    let mut cluster = Cluster::new(ClusterConfig {
        vni_range: 1024..1026, // room for exactly two
        quarantine: SimDur::from_secs(1),
        ..Default::default()
    });
    for (i, name) in ["a", "b", "c"].iter().enumerate() {
        cluster.submit_job(
            SimTime::from_nanos(i as u64),
            "t",
            name,
            &[("vni", "true")],
            1,
            &osu_image(),
            None,
        );
    }
    let now = cluster.run_until(
        SimTime::ZERO,
        SimTime::from_nanos(8_000_000_000),
        SimDur::from_millis(20),
    );
    assert!(cluster.api.get(kinds::VNI, "t", "vni-a").is_some());
    assert!(cluster.api.get(kinds::VNI, "t", "vni-b").is_some());
    assert!(cluster.api.get(kinds::VNI, "t", "vni-c").is_none(), "range exhausted");
    assert!(cluster.job_started_at("t", "c").is_none(), "job c cannot launch");
    assert!(cluster.endpoint.borrow().counters.exhaustions > 0);

    // Free capacity; the VNI controller resyncs... job c is only synced
    // on events, so deleting job a (freeing a VNI + quarantine 1s) and
    // touching job c via the kubelet's CNI retry path lets it launch.
    cluster.delete_job("t", "a");
    cluster.run_until(now, now + SimDur::from_secs(30), SimDur::from_millis(20));
    // The kubelet keeps retrying the pod; once the VNI controller hands
    // out the freed VNI (on one of its sync retries) the pod starts.
    // Note: sync is event-driven; the retry CNI failure does not itself
    // re-trigger the webhook, so we nudge it with an annotation update.
    let _ = cluster.api.mutate(kinds::JOB, "t", "c", |o| {
        o.meta.annotations.insert("nudge".into(), "1".into());
    });
    let end = cluster.run_until(
        now + SimDur::from_secs(30),
        now + SimDur::from_secs(45),
        SimDur::from_millis(20),
    );
    let _ = end;
    assert!(
        cluster.api.get(kinds::VNI, "t", "vni-c").is_some(),
        "job c acquires the recycled VNI"
    );
}

/// Determinism at cluster scope: identical seeds give identical
/// admission traces; different seeds differ.
#[test]
fn cluster_runs_are_deterministic_per_seed() {
    let trace = |seed: u64| -> Vec<u64> {
        let mut cluster = Cluster::new(ClusterConfig { seed, ..Default::default() });
        for i in 0..6 {
            cluster.submit_job(
                SimTime::ZERO,
                "t",
                &format!("j{i}"),
                &[("vni", "true")],
                1,
                &alpine(),
                Some(10),
            );
        }
        cluster.run_until(
            SimTime::ZERO,
            SimTime::from_nanos(10_000_000_000),
            SimDur::from_millis(20),
        );
        (0..6)
            .map(|i| {
                cluster
                    .job_started_at("t", &format!("j{i}"))
                    .map(|t| t.as_nanos())
                    .unwrap_or(0)
            })
            .collect()
    };
    assert_eq!(trace(5), trace(5));
}
