//! The service-lifecycle proptest oracle pinning this PR's two
//! serving-plane contracts:
//!
//! 1. **PLEG equivalence** — after any sequence of scale / rolling
//!    update / crash / reconcile / kubelet-settle operations, the
//!    PLEG-cached status snapshot is **byte-identical** (serialized
//!    JSON) to a full pod scan of the API server.
//! 2. **Rolling-update availability floor** — a reconcile pass never
//!    *voluntarily* drops the ready count below
//!    `replicas - max_unavailable`: whatever readiness a crash already
//!    destroyed, the controller only rebuilds, formally
//!    `ready_after >= min(ready_before, floor)` across every reconcile,
//!    at every virtual instant of the op sequence.

use proptest::prelude::*;
use shs_des::SimTime;
use shs_k8s::{
    kinds, make_service, pod_phase, pod_ready, spec_of, ApiServer, Pleg, PodPhase, PodSpec,
    PodTemplate, ServiceController, ServiceSpec, KUBELET_FINALIZER,
};

const NS: &str = "ns";
const SVC: &str = "web";

#[derive(Debug, Clone)]
enum Op {
    /// Set `spec.replicas`.
    Scale { replicas: u32 },
    /// Bump `spec.version` — starts a rolling update.
    Roll,
    /// Mark the `idx`-th live pod (sorted by name) Failed.
    Crash { idx: u8 },
    /// One controller reconcile pass.
    Reconcile,
    /// Kubelet-like settle: Pending pods become Running, terminating
    /// pods finish teardown (finalizer removed, pod reaped).
    Settle,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        2 => (1u32..6).prop_map(|replicas| Op::Scale { replicas }),
        2 => Just(Op::Roll),
        2 => (0u8..8).prop_map(|idx| Op::Crash { idx }),
        4 => Just(Op::Reconcile),
        4 => Just(Op::Settle),
    ]
}

fn svc_spec(replicas: u32) -> ServiceSpec {
    ServiceSpec {
        replicas,
        template: PodTemplate {
            image: "nginx".into(),
            run_ms: None,
            userns_base: None,
            node_selector: None,
        },
        max_unavailable: 1,
        max_surge: 1,
        version: 0,
    }
}

fn ready_count(api: &ApiServer) -> usize {
    api.list_namespaced(kinds::POD, NS).into_iter().filter(|p| pod_ready(p)).count()
}

fn settle(api: &mut ApiServer) {
    let pods: Vec<(String, bool, PodPhase)> = api
        .list_namespaced(kinds::POD, NS)
        .into_iter()
        .map(|p| (p.meta.name.clone(), p.meta.deletion_requested, pod_phase(p)))
        .collect();
    for (name, terminating, phase) in pods {
        if terminating {
            let _ = api.remove_finalizer(kinds::POD, NS, &name, KUBELET_FINALIZER);
        } else if phase == PodPhase::Pending {
            let _ = api.mutate(kinds::POD, NS, &name, |o| {
                o.status = serde_json::json!({"phase": "Running", "started_at_ns": 1});
            });
        }
    }
}

fn crash(api: &mut ApiServer, idx: u8) {
    let live: Vec<String> = api
        .list_namespaced(kinds::POD, NS)
        .into_iter()
        .filter(|p| !p.meta.deletion_requested)
        .map(|p| p.meta.name.clone())
        .collect();
    if live.is_empty() {
        return;
    }
    let name = live[idx as usize % live.len()].clone();
    let _ = api.mutate(kinds::POD, NS, &name, |o| {
        o.status = serde_json::json!({"phase": "Failed"});
    });
}

/// Run one op; returns the floor-invariant violation, if any.
fn apply(
    api: &mut ApiServer,
    sc: &mut ServiceController,
    op: &Op,
    step: u64,
) -> Result<(), String> {
    match op {
        Op::Scale { replicas } => {
            let r = *replicas;
            let _ = api.mutate(kinds::SERVICE, NS, SVC, |o| {
                o.spec["replicas"] = serde_json::json!(r);
            });
        }
        Op::Roll => {
            let _ = api.mutate(kinds::SERVICE, NS, SVC, |o| {
                let v = o.spec["version"].as_u64().unwrap_or(0);
                o.spec["version"] = serde_json::json!(v + 1);
            });
        }
        Op::Crash { idx } => crash(api, *idx),
        Op::Reconcile => {
            // The floor invariant is a property of the *controller's*
            // transition: ready may only go below the floor if a crash
            // already put it there, never by a reconcile decision.
            let spec: ServiceSpec =
                spec_of(api.get(kinds::SERVICE, NS, SVC).expect("service exists"));
            let floor = spec.replicas.saturating_sub(spec.max_unavailable) as usize;
            let before = ready_count(api);
            sc.poll(api, SimTime::from_nanos(step));
            let after = ready_count(api);
            if after < before.min(floor) {
                return Err(format!(
                    "reconcile dropped ready below the floor at step {step}: \
                     before={before} after={after} floor={floor}"
                ));
            }
        }
        Op::Settle => settle(api),
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Contract 1: the PLEG cache is indistinguishable — byte for byte —
    /// from a full pod scan after **every** operation of any service
    /// lifecycle history.
    #[test]
    fn pleg_cache_is_byte_identical_to_a_full_scan(
        ops in prop::collection::vec(op_strategy(), 1..60),
    ) {
        let mut api = ApiServer::default();
        api.create(make_service(NS, SVC, &svc_spec(3)), SimTime::ZERO).unwrap();
        let mut sc = ServiceController::new();
        let mut pleg = Pleg::new();
        for (step, op) in ops.iter().enumerate() {
            // Ignore floor verdicts here; this property is about reads.
            let _ = apply(&mut api, &mut sc, op, step as u64);
            pleg.sync(&api);
            let cached = serde_json::to_string(&pleg.snapshot()).expect("serializes");
            let scanned = serde_json::to_string(&Pleg::scan(&api)).expect("serializes");
            prop_assert_eq!(cached, scanned, "cache diverged from scan after {:?}", op);
        }
    }

    /// Contract 2: across any lifecycle history, no reconcile ever
    /// voluntarily drops the ready count below
    /// `replicas - max_unavailable`.
    #[test]
    fn rolling_updates_never_dip_below_the_ready_floor(
        ops in prop::collection::vec(op_strategy(), 1..60),
    ) {
        let mut api = ApiServer::default();
        api.create(make_service(NS, SVC, &svc_spec(3)), SimTime::ZERO).unwrap();
        let mut sc = ServiceController::new();
        for (step, op) in ops.iter().enumerate() {
            if let Err(violation) = apply(&mut api, &mut sc, op, step as u64) {
                return Err(TestCaseError::fail(violation));
            }
        }
    }

    /// Crash-free corollary, the form the paper's operator cares about:
    /// once a service is fully ready, a pure rolling update (no crashes)
    /// keeps `ready >= replicas - max_unavailable` at every instant and
    /// `alive <= replicas + max_surge`, and converges with every pod on
    /// the new revision.
    #[test]
    fn a_clean_roll_holds_floor_and_ceiling_at_every_instant(
        replicas in 1u32..6,
        interleave in prop::collection::vec(any::<bool>(), 4..40),
    ) {
        let mut api = ApiServer::default();
        api.create(make_service(NS, SVC, &svc_spec(replicas)), SimTime::ZERO).unwrap();
        let mut sc = ServiceController::new();
        sc.poll(&mut api, SimTime::ZERO);
        settle(&mut api);
        sc.poll(&mut api, SimTime::ZERO);
        prop_assert_eq!(ready_count(&api), replicas as usize);

        api.mutate(kinds::SERVICE, NS, SVC, |o| {
            o.spec["version"] = serde_json::json!(1);
        }).unwrap();
        let floor = replicas.saturating_sub(1) as usize;
        let ceiling = (replicas + 1) as usize;
        for (step, settle_now) in interleave.iter().enumerate() {
            sc.poll(&mut api, SimTime::from_nanos(step as u64));
            prop_assert!(ready_count(&api) >= floor, "floor broken at step {}", step);
            let alive = api
                .list_namespaced(kinds::POD, NS)
                .into_iter()
                .filter(|p| !p.meta.deletion_requested)
                .count();
            prop_assert!(alive <= ceiling, "surge ceiling broken at step {}: {}", step, alive);
            if *settle_now {
                settle(&mut api);
            }
        }
        // Drive to convergence regardless of how the interleaving ended.
        for step in 0..2 * replicas as u64 + 4 {
            settle(&mut api);
            sc.poll(&mut api, SimTime::from_nanos(1_000 + step));
        }
        let pods = api.list_namespaced(kinds::POD, NS);
        prop_assert_eq!(pods.len(), replicas as usize);
        for p in pods {
            let spec: PodSpec = spec_of(p);
            prop_assert_eq!(spec.job_name.as_deref(), Some(SVC));
            prop_assert_eq!(
                p.annotation("service.simk8s/revision"), Some("1"), "pod not rolled"
            );
        }
        prop_assert_eq!(ready_count(&api), replicas as usize);
    }
}
