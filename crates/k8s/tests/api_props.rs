//! Property tests for the API machinery: resource-version monotonicity,
//! watch-stream completeness (a resuming watcher reconstructs the exact
//! store state), and finalizer/deletion safety.

use proptest::prelude::*;
use shs_des::SimTime;
use shs_k8s::{ApiObject, ApiServer, WatchType};
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum Op {
    Create { name: u8 },
    Mutate { name: u8 },
    Delete { name: u8 },
    AddFinalizer { name: u8 },
    RemoveFinalizer { name: u8 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0u8..12).prop_map(|name| Op::Create { name }),
        3 => (0u8..12).prop_map(|name| Op::Mutate { name }),
        2 => (0u8..12).prop_map(|name| Op::Delete { name }),
        1 => (0u8..12).prop_map(|name| Op::AddFinalizer { name }),
        2 => (0u8..12).prop_map(|name| Op::RemoveFinalizer { name }),
    ]
}

fn run_ops(api: &mut ApiServer, ops: &[Op]) {
    for op in ops {
        match op {
            Op::Create { name } => {
                let obj = ApiObject::new("Pod", "ns", &format!("p{name}"), serde_json::json!({}));
                let _ = api.create(obj, SimTime::ZERO);
            }
            Op::Mutate { name } => {
                let _ = api.mutate("Pod", "ns", &format!("p{name}"), |o| {
                    o.status = serde_json::json!({"touched": true});
                });
            }
            Op::Delete { name } => {
                let _ = api.delete("Pod", "ns", &format!("p{name}"));
            }
            Op::AddFinalizer { name } => {
                let _ = api.mutate("Pod", "ns", &format!("p{name}"), |o| {
                    if !o.meta.finalizers.iter().any(|f| f == "t") {
                        o.meta.finalizers.push("t".into());
                    }
                });
            }
            Op::RemoveFinalizer { name } => {
                let _ = api.remove_finalizer("Pod", "ns", &format!("p{name}"), "t");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Watch events have strictly monotone resource versions, and a
    /// watcher replaying the full stream reconstructs the live store.
    #[test]
    fn watch_stream_reconstructs_store(ops in prop::collection::vec(op_strategy(), 1..80)) {
        let mut api = ApiServer::default();
        run_ops(&mut api, &ops);

        let (events, _) = api.events_since(0);
        let mut last_rv = 0;
        let mut replica: BTreeMap<String, ApiObject> = BTreeMap::new();
        for ev in &events {
            prop_assert!(ev.rv >= last_rv, "rv regressed");
            last_rv = ev.rv;
            match ev.kind {
                WatchType::Added | WatchType::Modified => {
                    replica.insert(ev.object.meta.name.clone(), ev.object.clone());
                }
                WatchType::Deleted => {
                    replica.remove(&ev.object.meta.name);
                }
            }
        }
        let live: BTreeMap<String, ApiObject> = api
            .list("Pod")
            .into_iter()
            .map(|o| (o.meta.name.clone(), o.clone()))
            .collect();
        prop_assert_eq!(replica, live, "replay diverged from store");
    }

    /// Resumption correctness: consuming the stream in two arbitrary
    /// halves sees exactly the same events as consuming it whole.
    #[test]
    fn watch_resumption_loses_nothing(
        ops1 in prop::collection::vec(op_strategy(), 1..40),
        ops2 in prop::collection::vec(op_strategy(), 1..40),
    ) {
        let mut api = ApiServer::default();
        run_ops(&mut api, &ops1);
        let (first, rv) = api.events_since(0);
        run_ops(&mut api, &ops2);
        let (second, _) = api.events_since(rv);
        let (whole, _) = api.events_since(0);
        prop_assert_eq!(first.len() + second.len(), whole.len());
    }

    /// Finalizer safety: an object with finalizers survives deletion
    /// requests until the last finalizer is removed — and is then reaped
    /// without further intervention.
    #[test]
    fn finalizers_gate_reaping(n_finalizers in 1usize..4) {
        let mut api = ApiServer::default();
        let mut obj = ApiObject::new("Job", "ns", "j", serde_json::json!({}));
        for i in 0..n_finalizers {
            obj.meta.finalizers.push(format!("f{i}"));
        }
        api.create(obj, SimTime::ZERO).unwrap();
        api.delete("Job", "ns", "j").unwrap();
        for i in 0..n_finalizers {
            prop_assert!(api.get("Job", "ns", "j").is_some(), "reaped too early");
            api.remove_finalizer("Job", "ns", "j", &format!("f{i}")).unwrap();
        }
        prop_assert!(api.get("Job", "ns", "j").is_none(), "not reaped at zero finalizers");
    }

    /// Uid uniqueness: no two creations ever share a uid, even through
    /// delete/re-create cycles of the same name.
    #[test]
    fn uids_are_never_reused(cycles in 1usize..20) {
        let mut api = ApiServer::default();
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..cycles {
            let obj = ApiObject::new("Pod", "ns", "same-name", serde_json::json!({}));
            let created = api.create(obj, SimTime::ZERO).unwrap();
            prop_assert!(seen.insert(created.meta.uid), "uid reused");
            api.delete("Pod", "ns", "same-name").unwrap();
        }
    }
}
