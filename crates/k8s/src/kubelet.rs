//! The kubelet: per-node pod lifecycle pipeline.
//!
//! Pods bound to this node flow through sandbox creation → CNI ADD →
//! container start → running → succeeded, and on deletion through CNI
//! DEL → sandbox removal → finalizer release. Setup and teardown draw
//! from bounded worker pools; the resulting queueing is what makes job
//! admission lag behind submission once the arrival rate crosses the
//! service rate (the knee at ~batch 7 in the paper's Fig. 10).
//!
//! Node-specific work (runtime, CNI chain, CXI device) is delegated to a
//! [`NodeBackend`], implemented by the composition layer.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, VecDeque};

use shs_des::{SimDur, SimTime};
use shs_oslinux::NetNsId;

use crate::api::{ApiObject, ApiServer, WatchType};
use crate::job::KUBELET_FINALIZER;
use crate::objects::{kinds, spec_of, PodPhase, PodSpec, PodStatus};

/// Outcome of a CNI ADD attempt, as seen by the kubelet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CniAddOutcome {
    /// Networking configured; cost charged.
    Ok(SimDur),
    /// Failed (e.g. required VNI CRD not yet present, §III-B: "If no VNI
    /// could be fetched ... the container will fail to launch"). The
    /// kubelet pays the cost, tears the sandbox down and retries later.
    Retry(SimDur),
    /// Permanent failure (pod goes to Failed).
    Fatal(SimDur, String),
}

/// Node-side operations the kubelet drives.
pub trait NodeBackend {
    /// Create the pod sandbox (pause process + netns). Returns the netns
    /// and the cost.
    fn create_sandbox(&mut self, pod: &ApiObject) -> Result<(NetNsId, SimDur), String>;
    /// Run the CNI chain ADD for the sandbox. Receives read access to
    /// the API server: the paper's CXI plugin "queries the Kubernetes
    /// management plane" for pod annotations and the VNI CRD (§III-B).
    fn cni_add(&mut self, api: &ApiServer, pod: &ApiObject, netns: NetNsId) -> CniAddOutcome;
    /// Pull image(s) and start containers; returns (cost, workload
    /// duration — `None` runs until killed).
    fn start_workload(&mut self, pod: &ApiObject) -> Result<(SimDur, Option<SimDur>), String>;
    /// Run the CNI chain DEL. Must be idempotent.
    fn cni_del(&mut self, pod: &ApiObject, netns: NetNsId) -> SimDur;
    /// Tear down the sandbox.
    fn remove_sandbox(&mut self, pod: &ApiObject) -> SimDur;
}

/// Kubelet tuning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KubeletParams {
    /// Size of the pod-worker pool. One slot is statically reserved for
    /// teardown (when `workers > 1`); the rest serve setup. Teardown may
    /// additionally borrow setup slots while the setup queue is idle.
    /// Teardown capacity below the completion rate is what lets running
    /// jobs pile up in the paper's Figs. 9 and 11; the static split keeps
    /// setup throughput independent of *when* deletions arrive.
    pub workers: usize,
    /// Per-pod bookkeeping before the pipeline starts.
    pub sync_overhead: SimDur,
    /// Backoff before retrying a failed CNI ADD.
    pub retry_backoff: SimDur,
    /// Give up after this many CNI retries.
    pub max_attempts: u32,
}

impl Default for KubeletParams {
    fn default() -> Self {
        KubeletParams {
            workers: 3,
            sync_overhead: SimDur::from_millis(40),
            retry_backoff: SimDur::from_millis(2000),
            max_attempts: 10,
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Stage {
    QueuedSetup,
    CreatingSandbox { done: SimTime },
    CniAdd { done: SimTime },
    Starting { done: SimTime },
    Running { exits: Option<SimTime> },
    Succeeded,
    RetryWait { at: SimTime },
    Failed,
    QueuedTeardown,
    CniDel { done: SimTime },
    RemovingSandbox { done: SimTime },
}

#[derive(Debug)]
struct PodWork {
    pod: ApiObject,
    stage: Stage,
    netns: Option<NetNsId>,
    attempts: u32,
    terminating: bool,
    run_duration: Option<SimDur>,
    /// When the pod entered its current queue (exact dispatch chaining).
    enqueued_at: SimTime,
    /// Teardown borrowed a setup slot (returned there on completion).
    borrowed_setup_slot: bool,
}

/// Kubelet counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KubeletCounters {
    /// Pods started successfully.
    pub pods_started: u64,
    /// Pods fully torn down.
    pub pods_removed: u64,
    /// CNI ADD retries.
    pub cni_retries: u64,
    /// Pods marked Failed.
    pub pods_failed: u64,
}

/// The kubelet for one node.
#[derive(Debug)]
pub struct Kubelet {
    /// Node name this kubelet serves.
    pub node: String,
    params: KubeletParams,
    last_rv: u64,
    work: BTreeMap<(String, String), PodWork>,
    setup_q: VecDeque<(String, String)>,
    teardown_q: VecDeque<(String, String)>,
    /// Exact instants at which idle setup-pool slots became free. Slots
    /// are released at exact stage-completion times (not tick
    /// boundaries), so back-to-back pipelines chain without quantization
    /// — millisecond cost differences (e.g. the CXI CNI plugin's extra
    /// work) translate into honest service-rate differences.
    setup_slots: BinaryHeap<Reverse<SimTime>>,
    /// The statically reserved teardown slot(s).
    teardown_slots: BinaryHeap<Reverse<SimTime>>,
    /// Counters.
    pub counters: KubeletCounters,
}

impl Kubelet {
    /// Kubelet for `node`.
    pub fn new(node: impl Into<String>, params: KubeletParams) -> Self {
        let reserved = if params.workers > 1 { 1 } else { 0 };
        let mut setup_slots = BinaryHeap::with_capacity(params.workers);
        for _ in 0..params.workers - reserved {
            setup_slots.push(Reverse(SimTime::ZERO));
        }
        let mut teardown_slots = BinaryHeap::with_capacity(reserved.max(1));
        for _ in 0..reserved {
            teardown_slots.push(Reverse(SimTime::ZERO));
        }
        Kubelet {
            node: node.into(),
            params,
            last_rv: 0,
            work: BTreeMap::new(),
            setup_q: VecDeque::new(),
            teardown_q: VecDeque::new(),
            setup_slots,
            teardown_slots,
            counters: KubeletCounters::default(),
        }
    }

    /// Pods currently tracked.
    pub fn tracked(&self) -> usize {
        self.work.len()
    }

    /// One sync pass at `now`. Advancing and dispatching alternate until
    /// a fixed point: a slot released mid-tick can be re-used by queued
    /// work within the same poll (its pipeline stages are computed from
    /// the exact release instant).
    pub fn poll<B: NodeBackend>(&mut self, api: &mut ApiServer, backend: &mut B, now: SimTime) {
        self.ingest_events(api, now);
        loop {
            let a = self.advance_stages(api, backend, now);
            let d = self.dispatch_queues(api, backend, now);
            if !a && !d {
                break;
            }
        }
    }

    fn ingest_events(&mut self, api: &mut ApiServer, now: SimTime) {
        let (events, rv) = api.events_since(self.last_rv);
        self.last_rv = rv;
        for ev in events {
            if ev.object.kind != kinds::POD {
                continue;
            }
            let spec: PodSpec = spec_of(&ev.object);
            if spec.node_name.as_deref() != Some(self.node.as_str()) {
                continue;
            }
            let key = (ev.object.meta.namespace.clone(), ev.object.meta.name.clone());
            match ev.kind {
                WatchType::Added | WatchType::Modified => {
                    let terminating = ev.object.meta.deletion_requested;
                    match self.work.get_mut(&key) {
                        None => {
                            if terminating {
                                // Never started here: just release our finalizer.
                                let _ = api.remove_finalizer(
                                    kinds::POD,
                                    &key.0,
                                    &key.1,
                                    KUBELET_FINALIZER,
                                );
                                continue;
                            }
                            self.work.insert(
                                key.clone(),
                                PodWork {
                                    pod: ev.object.clone(),
                                    stage: Stage::QueuedSetup,
                                    netns: None,
                                    attempts: 0,
                                    terminating: false,
                                    run_duration: None,
                                    enqueued_at: now,
                                    borrowed_setup_slot: false,
                                },
                            );
                            self.setup_q.push_back(key);
                        }
                        Some(w) => {
                            w.pod = ev.object.clone();
                            if terminating && !w.terminating {
                                w.terminating = true;
                                // Pods idle in a terminal or waiting state
                                // move to teardown immediately; pods mid-
                                // pipeline convert when their stage ends.
                                match w.stage {
                                    Stage::Running { .. }
                                    | Stage::Succeeded
                                    | Stage::Failed
                                    | Stage::RetryWait { .. } => {
                                        w.stage = Stage::QueuedTeardown;
                                        w.enqueued_at = now;
                                        self.teardown_q.push_back(key);
                                    }
                                    Stage::QueuedSetup => {
                                        // Remove from setup queue; nothing
                                        // was created yet.
                                        w.stage = Stage::QueuedTeardown;
                                        w.enqueued_at = now;
                                        self.setup_q.retain(|k| k != &key);
                                        self.teardown_q.push_back(key);
                                    }
                                    _ => {}
                                }
                            }
                        }
                    }
                }
                WatchType::Deleted => {
                    // Object reaped (finalizer released earlier).
                    self.work.remove(&key);
                }
            }
        }
    }

    fn advance_stages<B: NodeBackend>(
        &mut self,
        api: &mut ApiServer,
        backend: &mut B,
        now: SimTime,
    ) -> bool {
        let mut progressed = false;
        let keys: Vec<(String, String)> = self.work.keys().cloned().collect();
        for key in keys {
            while let Some(w) = self.work.get_mut(&key) {
                match w.stage.clone() {
                    Stage::CreatingSandbox { done } if done <= now => {
                        match backend.cni_add(api, &w.pod, w.netns.expect("sandbox created")) {
                            CniAddOutcome::Ok(cost) => {
                                w.stage = Stage::CniAdd { done: done + cost };
                            }
                            CniAddOutcome::Retry(cost) => {
                                self.counters.cni_retries += 1;
                                let netns = w.netns.take().expect("sandbox created");
                                let del = backend.cni_del(&w.pod, netns);
                                let rm = backend.remove_sandbox(&w.pod);
                                w.attempts += 1;
                                self.setup_slots.push(Reverse(done + cost + del + rm));
                                if w.attempts >= self.params.max_attempts {
                                    w.stage = Stage::Failed;
                                    self.counters.pods_failed += 1;
                                    Self::write_phase(
                                        api,
                                        &key,
                                        PodPhase::Failed,
                                        None,
                                        Some("CNI ADD retries exhausted".into()),
                                    );
                                } else {
                                    w.stage = Stage::RetryWait {
                                        at: done + cost + del + rm + self.params.retry_backoff,
                                    };
                                }
                            }
                            CniAddOutcome::Fatal(cost, msg) => {
                                let netns = w.netns.take().expect("sandbox created");
                                let del = backend.cni_del(&w.pod, netns);
                                let rm = backend.remove_sandbox(&w.pod);
                                self.setup_slots.push(Reverse(done + cost + del + rm));
                                w.stage = Stage::Failed;
                                self.counters.pods_failed += 1;
                                Self::write_phase(api, &key, PodPhase::Failed, None, Some(msg));
                            }
                        }
                    }
                    Stage::CniAdd { done } if done <= now => {
                        match backend.start_workload(&w.pod) {
                            Ok((cost, run)) => {
                                w.run_duration = run;
                                w.stage = Stage::Starting { done: done + cost };
                            }
                            Err(msg) => {
                                self.setup_slots.push(Reverse(done));
                                w.stage = Stage::Failed;
                                self.counters.pods_failed += 1;
                                Self::write_phase(api, &key, PodPhase::Failed, None, Some(msg));
                            }
                        }
                    }
                    Stage::Starting { done } if done <= now => {
                        self.setup_slots.push(Reverse(done));
                        self.counters.pods_started += 1;
                        let exits = w.run_duration.map(|d| done + d);
                        w.stage = Stage::Running { exits };
                        Self::write_phase(
                            api,
                            &key,
                            PodPhase::Running,
                            Some(done.as_nanos()),
                            None,
                        );
                        if w.terminating {
                            w.stage = Stage::QueuedTeardown;
                            w.enqueued_at = done;
                            self.teardown_q.push_back(key.clone());
                        }
                    }
                    Stage::Running { exits: Some(t) } if t <= now => {
                        w.stage = Stage::Succeeded;
                        Self::write_phase(api, &key, PodPhase::Succeeded, None, None);
                    }
                    Stage::RetryWait { at } if at <= now => {
                        w.enqueued_at = at;
                        if w.terminating {
                            w.stage = Stage::QueuedTeardown;
                            self.teardown_q.push_back(key.clone());
                        } else {
                            // Retries go to the *front*: the real kubelet
                            // retries each pod in its own worker, so a
                            // retry must not displace the pod behind every
                            // later arrival (that would skew the admission
                            // distribution of the whole burst).
                            w.stage = Stage::QueuedSetup;
                            self.setup_q.push_front(key.clone());
                        }
                    }
                    Stage::CniDel { done } if done <= now => {
                        let cost = backend.remove_sandbox(&w.pod);
                        w.stage = Stage::RemovingSandbox { done: done + cost };
                    }
                    Stage::RemovingSandbox { done } if done <= now => {
                        if w.borrowed_setup_slot {
                            self.setup_slots.push(Reverse(done));
                        } else {
                            self.teardown_slots.push(Reverse(done));
                        }
                        self.counters.pods_removed += 1;
                        let _ = api.remove_finalizer(
                            kinds::POD,
                            &key.0,
                            &key.1,
                            KUBELET_FINALIZER,
                        );
                        self.work.remove(&key);
                    }
                    _ => break,
                }
                progressed = true;
                // Loop again: a stage may complete instantly at `now`.
                if let Some(w) = self.work.get(&key) {
                    match &w.stage {
                        Stage::CreatingSandbox { done }
                        | Stage::CniAdd { done }
                        | Stage::Starting { done }
                        | Stage::CniDel { done }
                        | Stage::RemovingSandbox { done }
                            if *done <= now => {}
                        Stage::Running { exits: Some(t) } if *t <= now => {}
                        Stage::RetryWait { at } if *at <= now => {}
                        _ => break,
                    }
                } else {
                    break;
                }
            }
        }
        progressed
    }

    fn dispatch_queues<B: NodeBackend>(
        &mut self,
        api: &mut ApiServer,
        backend: &mut B,
        now: SimTime,
    ) -> bool {
        let mut progressed = false;
        // Setup pool.
        while let Some(&Reverse(slot)) = self.setup_slots.peek() {
            if slot > now || self.setup_q.is_empty() {
                break;
            }
            let key = self.setup_q.pop_front().expect("non-empty");
            let Some(w) = self.work.get_mut(&key) else { continue };
            if w.stage != Stage::QueuedSetup {
                continue; // converted to teardown meanwhile
            }
            match backend.create_sandbox(&w.pod) {
                Ok((netns, cost)) => {
                    self.setup_slots.pop();
                    let start = slot.max(w.enqueued_at);
                    w.netns = Some(netns);
                    w.stage = Stage::CreatingSandbox {
                        done: start + self.params.sync_overhead + cost,
                    };
                    progressed = true;
                }
                Err(msg) => {
                    w.stage = Stage::Failed;
                    self.counters.pods_failed += 1;
                    Self::write_phase(api, &key, PodPhase::Failed, None, Some(msg));
                }
            }
        }
        // Teardown pool: its reserved slot(s) plus, while the setup queue
        // is idle, borrowed setup slots (deletions trickle through a
        // submission burst — the partial drain of Figs. 9/11 — and use
        // the whole pool once arrivals stop).
        loop {
            let own = self.teardown_slots.peek().map(|&Reverse(t)| t).filter(|&t| t <= now);
            let borrow = if self.setup_q.is_empty() {
                self.setup_slots.peek().map(|&Reverse(t)| t).filter(|&t| t <= now)
            } else {
                None
            };
            let (slot, borrowed) = match (own, borrow) {
                (Some(o), Some(b)) if b < o => (b, true),
                (Some(o), _) => (o, false),
                (None, Some(b)) => (b, true),
                (None, None) => break,
            };
            let Some(key) = self.teardown_q.pop_front() else { break };
            let Some(w) = self.work.get_mut(&key) else { continue };
            if w.stage != Stage::QueuedTeardown {
                continue;
            }
            match w.netns {
                Some(netns) => {
                    if borrowed {
                        self.setup_slots.pop();
                    } else {
                        self.teardown_slots.pop();
                    }
                    w.borrowed_setup_slot = borrowed;
                    let start = slot.max(w.enqueued_at);
                    let cost = backend.cni_del(&w.pod, netns);
                    w.stage = Stage::CniDel { done: start + cost };
                    progressed = true;
                }
                None => {
                    // Nothing was ever set up.
                    self.counters.pods_removed += 1;
                    let _ =
                        api.remove_finalizer(kinds::POD, &key.0, &key.1, KUBELET_FINALIZER);
                    self.work.remove(&key);
                    progressed = true;
                }
            }
        }
        progressed
    }

    fn write_phase(
        api: &mut ApiServer,
        key: &(String, String),
        phase: PodPhase,
        started_at_ns: Option<u64>,
        message: Option<String>,
    ) {
        let _ = api.mutate(kinds::POD, &key.0, &key.1, |o| {
            let mut st: PodStatus = crate::objects::status_of(o).unwrap_or(PodStatus {
                phase: PodPhase::Pending,
                started_at_ns: None,
                message: None,
            });
            st.phase = phase;
            if started_at_ns.is_some() {
                st.started_at_ns = started_at_ns;
            }
            if message.is_some() {
                st.message = message;
            }
            o.status = serde_json::to_value(st).expect("PodStatus serializes");
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objects::pod_phase;
    use serde_json::json;

    /// Scripted backend with fixed costs.
    struct MockBackend {
        next_netns: u64,
        cni_fail_times: u32,
        fatal: bool,
    }

    impl Default for MockBackend {
        fn default() -> Self {
            MockBackend { next_netns: 100, cni_fail_times: 0, fatal: false }
        }
    }

    impl NodeBackend for MockBackend {
        fn create_sandbox(&mut self, _pod: &ApiObject) -> Result<(NetNsId, SimDur), String> {
            self.next_netns += 1;
            Ok((NetNsId(self.next_netns), SimDur::from_millis(200)))
        }
        fn cni_add(&mut self, _api: &ApiServer, _pod: &ApiObject, _netns: NetNsId) -> CniAddOutcome {
            if self.fatal {
                return CniAddOutcome::Fatal(SimDur::from_millis(10), "no claim".into());
            }
            if self.cni_fail_times > 0 {
                self.cni_fail_times -= 1;
                return CniAddOutcome::Retry(SimDur::from_millis(10));
            }
            CniAddOutcome::Ok(SimDur::from_millis(50))
        }
        fn start_workload(&mut self, pod: &ApiObject) -> Result<(SimDur, Option<SimDur>), String> {
            let spec: PodSpec = spec_of(pod);
            Ok((SimDur::from_millis(150), spec.run_ms.map(SimDur::from_millis)))
        }
        fn cni_del(&mut self, _pod: &ApiObject, _netns: NetNsId) -> SimDur {
            SimDur::from_millis(20)
        }
        fn remove_sandbox(&mut self, _pod: &ApiObject) -> SimDur {
            SimDur::from_millis(80)
        }
    }

    fn bound_pod(name: &str, run_ms: Option<u64>) -> ApiObject {
        let mut pod = ApiObject::new(
            kinds::POD,
            "ns",
            name,
            json!({"image": "alpine", "run_ms": run_ms, "node_name": "n0"}),
        );
        pod.meta.finalizers.push(KUBELET_FINALIZER.to_string());
        pod
    }

    /// Drive kubelet with 10 ms ticks until `until`.
    fn run(
        kubelet: &mut Kubelet,
        api: &mut ApiServer,
        backend: &mut MockBackend,
        until_ms: u64,
    ) {
        let mut t = 0;
        while t <= until_ms {
            kubelet.poll(api, backend, SimTime::from_nanos(t * 1_000_000));
            t += 10;
        }
    }

    #[test]
    fn pod_reaches_running_then_succeeded() {
        let mut api = ApiServer::default();
        let mut kubelet = Kubelet::new("n0", KubeletParams::default());
        let mut backend = MockBackend::default();
        api.create(bound_pod("p", Some(30)), SimTime::ZERO).unwrap();
        run(&mut kubelet, &mut api, &mut backend, 1000);
        let pod = api.get(kinds::POD, "ns", "p").unwrap();
        assert_eq!(pod_phase(pod), PodPhase::Succeeded);
        assert_eq!(kubelet.counters.pods_started, 1);
        let st: PodStatus = crate::objects::status_of(pod).unwrap();
        // sandbox 200 + sync 40 + cni 50 + start 150 ≈ 440ms (tick-quantized).
        let started = st.started_at_ns.unwrap();
        assert!((430_000_000..=500_000_000).contains(&started), "{started}");
    }

    #[test]
    fn ignores_pods_bound_elsewhere() {
        let mut api = ApiServer::default();
        let mut kubelet = Kubelet::new("n0", KubeletParams::default());
        let mut backend = MockBackend::default();
        let mut pod = bound_pod("p", Some(1));
        pod.spec["node_name"] = json!("other-node");
        api.create(pod, SimTime::ZERO).unwrap();
        run(&mut kubelet, &mut api, &mut backend, 500);
        assert_eq!(kubelet.tracked(), 0);
        assert_eq!(pod_phase(api.get(kinds::POD, "ns", "p").unwrap()), PodPhase::Pending);
    }

    #[test]
    fn bounded_workers_serialize_a_burst() {
        let mut api = ApiServer::default();
        let params = KubeletParams { workers: 3, ..Default::default() };
        let mut kubelet = Kubelet::new("n0", params);
        let mut backend = MockBackend::default();
        for i in 0..6 {
            api.create(bound_pod(&format!("p{i}"), Some(10_000)), SimTime::ZERO).unwrap();
        }
        // After ~500ms only the first 2 can be running (one of the three
        // slots is reserved for teardown).
        run(&mut kubelet, &mut api, &mut backend, 500);
        let running = api
            .list(kinds::POD)
            .iter()
            .filter(|p| pod_phase(p) == PodPhase::Running)
            .count();
        assert_eq!(running, 2, "setup capacity is workers - 1");
        run(&mut kubelet, &mut api, &mut backend, 2000);
        let running = api
            .list(kinds::POD)
            .iter()
            .filter(|p| pod_phase(p) == PodPhase::Running)
            .count();
        assert_eq!(running, 6, "eventually all started");
    }

    #[test]
    fn cni_retry_then_success() {
        let mut api = ApiServer::default();
        let params = KubeletParams {
            retry_backoff: SimDur::from_millis(100),
            ..Default::default()
        };
        let mut kubelet = Kubelet::new("n0", params);
        let mut backend = MockBackend { cni_fail_times: 2, ..Default::default() };
        api.create(bound_pod("p", Some(10)), SimTime::ZERO).unwrap();
        run(&mut kubelet, &mut api, &mut backend, 3000);
        assert_eq!(kubelet.counters.cni_retries, 2);
        assert_eq!(pod_phase(api.get(kinds::POD, "ns", "p").unwrap()), PodPhase::Succeeded);
    }

    #[test]
    fn cni_fatal_fails_pod() {
        let mut api = ApiServer::default();
        let mut kubelet = Kubelet::new("n0", KubeletParams::default());
        let mut backend = MockBackend { fatal: true, ..Default::default() };
        api.create(bound_pod("p", Some(10)), SimTime::ZERO).unwrap();
        run(&mut kubelet, &mut api, &mut backend, 1000);
        let pod = api.get(kinds::POD, "ns", "p").unwrap();
        assert_eq!(pod_phase(pod), PodPhase::Failed);
        let st: PodStatus = crate::objects::status_of(pod).unwrap();
        assert_eq!(st.message.as_deref(), Some("no claim"));
        assert_eq!(kubelet.counters.pods_failed, 1);
    }

    #[test]
    fn retries_exhaust_to_failed() {
        let mut api = ApiServer::default();
        let params = KubeletParams {
            retry_backoff: SimDur::from_millis(50),
            max_attempts: 3,
            ..Default::default()
        };
        let mut kubelet = Kubelet::new("n0", params);
        let mut backend = MockBackend { cni_fail_times: 99, ..Default::default() };
        api.create(bound_pod("p", Some(10)), SimTime::ZERO).unwrap();
        run(&mut kubelet, &mut api, &mut backend, 5000);
        assert_eq!(pod_phase(api.get(kinds::POD, "ns", "p").unwrap()), PodPhase::Failed);
        assert_eq!(kubelet.counters.cni_retries, 3);
    }

    #[test]
    fn deletion_tears_down_and_releases_finalizer() {
        let mut api = ApiServer::default();
        let mut kubelet = Kubelet::new("n0", KubeletParams::default());
        let mut backend = MockBackend::default();
        api.create(bound_pod("p", None), SimTime::ZERO).unwrap(); // runs forever
        run(&mut kubelet, &mut api, &mut backend, 600);
        assert_eq!(pod_phase(api.get(kinds::POD, "ns", "p").unwrap()), PodPhase::Running);
        api.delete(kinds::POD, "ns", "p").unwrap();
        run(&mut kubelet, &mut api, &mut backend, 1500);
        assert!(api.get(kinds::POD, "ns", "p").is_none(), "finalizer released, reaped");
        assert_eq!(kubelet.counters.pods_removed, 1);
        assert_eq!(kubelet.tracked(), 0);
    }

    #[test]
    fn deleting_a_queued_pod_skips_the_pipeline() {
        let mut api = ApiServer::default();
        let params = KubeletParams { workers: 1, ..Default::default() };
        let mut kubelet = Kubelet::new("n0", params);
        let mut backend = MockBackend::default();
        api.create(bound_pod("a", Some(60_000)), SimTime::ZERO).unwrap();
        api.create(bound_pod("b", Some(60_000)), SimTime::ZERO).unwrap();
        // First tick admits 'a' into the single slot; 'b' queues.
        kubelet.poll(&mut api, &mut backend, SimTime::ZERO);
        api.delete(kinds::POD, "ns", "b").unwrap();
        run(&mut kubelet, &mut api, &mut backend, 800);
        assert!(api.get(kinds::POD, "ns", "b").is_none(), "no sandbox existed");
        assert_eq!(pod_phase(api.get(kinds::POD, "ns", "a").unwrap()), PodPhase::Running);
    }
}
