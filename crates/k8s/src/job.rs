//! The job controller: creates pods for jobs, tracks completions, marks
//! jobs complete, and applies `ttlSecondsAfterFinished` (the paper's
//! admission experiments delete jobs "immediately after completion").

use std::collections::BTreeSet;

use shs_des::SimTime;

use crate::api::{ApiObject, ApiServer, WatchType};
use crate::objects::{
    kinds, pod_phase, spec_of, status_of, JobSpec, JobStatus, PodPhase, PodSpec,
};

/// Finalizer owned by the kubelet on every pod it must tear down.
pub const KUBELET_FINALIZER: &str = "kubelet.simk8s/teardown";

/// The job controller.
#[derive(Debug, Default)]
pub struct JobController {
    last_rv: u64,
    /// Jobs seen → pods created (diagnostics).
    pub pods_created: u64,
}

impl JobController {
    /// Fresh controller.
    pub fn new() -> Self {
        JobController::default()
    }

    /// One reconcile pass.
    pub fn poll(&mut self, api: &mut ApiServer, now: SimTime) {
        let (events, rv) = api.events_since(self.last_rv);
        self.last_rv = rv;

        // Collect job keys that need reconciling.
        let mut dirty: BTreeSet<(String, String)> = BTreeSet::new();
        for ev in &events {
            match ev.object.kind.as_str() {
                k if k == kinds::JOB => {
                    dirty.insert((ev.object.meta.namespace.clone(), ev.object.meta.name.clone()));
                }
                k if k == kinds::POD
                    && !matches!(ev.kind, WatchType::Deleted) => {
                        let spec: PodSpec = spec_of(&ev.object);
                        if let Some(job) = spec.job_name {
                            dirty.insert((ev.object.meta.namespace.clone(), job));
                        }
                    }
                _ => {}
            }
        }

        for (ns, job_name) in dirty {
            self.reconcile_job(api, &ns, &job_name, now);
        }
    }

    fn reconcile_job(&mut self, api: &mut ApiServer, ns: &str, job_name: &str, now: SimTime) {
        let Some(job) = api.get(kinds::JOB, ns, job_name).cloned() else { return };
        if job.meta.deletion_requested {
            return; // finalizers (VNI controller) and GC handle the rest
        }
        let spec: JobSpec = spec_of(&job);
        let mut status: JobStatus = status_of(&job).unwrap_or_default();

        // Existing pods of this job.
        let pods: Vec<ApiObject> = api
            .list_namespaced(kinds::POD, ns)
            .into_iter()
            .filter(|p| {
                let ps: PodSpec = spec_of(p);
                ps.job_name.as_deref() == Some(job_name)
            })
            .cloned()
            .collect();

        // Create missing pods.
        let existing: BTreeSet<String> = pods.iter().map(|p| p.meta.name.clone()).collect();
        for i in 0..spec.parallelism {
            let pod_name = format!("{job_name}-{i}");
            if existing.contains(&pod_name) {
                continue;
            }
            let pod_spec = PodSpec {
                job_name: Some(job_name.to_string()),
                image: spec.template.image.clone(),
                run_ms: spec.template.run_ms,
                userns_base: spec.template.userns_base,
                node_name: None,
                spread_key: Some(format!("{ns}/{job_name}")),
                node_selector: spec.template.node_selector.clone(),
                termination_grace_period_secs: 30,
            };
            let mut pod = ApiObject::new(
                kinds::POD,
                ns,
                &pod_name,
                serde_json::to_value(pod_spec).expect("PodSpec serializes"),
            );
            pod.meta.owner_uids.push(job.meta.uid);
            pod.meta.finalizers.push(KUBELET_FINALIZER.to_string());
            // Pods inherit the job's annotations — the CXI CNI plugin
            // reads the `vni` annotation from the pod's metadata (§III-B).
            pod.meta.annotations = job.meta.annotations.clone();
            if api.create(pod, now).is_ok() {
                self.pods_created += 1;
            }
        }

        // Completion accounting.
        let succeeded =
            pods.iter().filter(|p| pod_phase(p) == PodPhase::Succeeded).count() as u32;
        let failed = pods.iter().any(|p| pod_phase(p) == PodPhase::Failed);
        let newly_complete = !status.complete && !failed && succeeded >= spec.parallelism;
        if succeeded != status.succeeded || newly_complete {
            status.succeeded = succeeded;
            if newly_complete {
                status.complete = true;
                status.completed_at_ns = Some(now.as_nanos());
            }
            let st = serde_json::to_value(&status).expect("JobStatus serializes");
            let _ = api.mutate(kinds::JOB, ns, job_name, |o| o.status = st);
        }

        // TTL-after-finished: delete completed jobs.
        if status.complete {
            if let Some(ttl) = spec.ttl_seconds_after_finished {
                let done_at = status.completed_at_ns.unwrap_or(0);
                if now.as_nanos() >= done_at + ttl * 1_000_000_000 {
                    let _ = api.delete(kinds::JOB, ns, job_name);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objects::{make_job, PodTemplate};
    use serde_json::json;

    fn job_spec(parallelism: u32) -> JobSpec {
        JobSpec {
            parallelism,
            template: PodTemplate {
                image: "alpine".into(),
                run_ms: Some(10),
                userns_base: None,
                node_selector: None,
            },
            ttl_seconds_after_finished: Some(0),
        }
    }

    fn set_pod_phase(api: &mut ApiServer, ns: &str, name: &str, phase: PodPhase) {
        api.mutate(kinds::POD, ns, name, |o| {
            o.status = json!({"phase": phase, "started_at_ns": 1});
        })
        .unwrap();
    }

    #[test]
    fn creates_pods_with_owner_finalizer_and_annotations() {
        let mut api = ApiServer::default();
        let mut job = make_job("ns", "j", &job_spec(2));
        job.meta.annotations.insert("vni".into(), "true".into());
        let job = api.create(job, SimTime::ZERO).unwrap();
        let mut jc = JobController::new();
        jc.poll(&mut api, SimTime::ZERO);
        let pods = api.list_namespaced(kinds::POD, "ns");
        assert_eq!(pods.len(), 2);
        for p in pods {
            assert!(p.meta.owner_uids.contains(&job.meta.uid));
            assert!(p.meta.finalizers.contains(&KUBELET_FINALIZER.to_string()));
            assert_eq!(p.annotation("vni"), Some("true"));
            let spec: PodSpec = spec_of(p);
            assert_eq!(spec.spread_key.as_deref(), Some("ns/j"));
        }
        assert_eq!(jc.pods_created, 2);
    }

    #[test]
    fn reconcile_is_idempotent() {
        let mut api = ApiServer::default();
        api.create(make_job("ns", "j", &job_spec(2)), SimTime::ZERO).unwrap();
        let mut jc = JobController::new();
        jc.poll(&mut api, SimTime::ZERO);
        jc.poll(&mut api, SimTime::ZERO);
        jc.poll(&mut api, SimTime::ZERO);
        assert_eq!(api.list_namespaced(kinds::POD, "ns").len(), 2);
    }

    #[test]
    fn completion_marks_job_and_ttl_deletes_it() {
        let mut api = ApiServer::default();
        api.create(make_job("ns", "j", &job_spec(1)), SimTime::ZERO).unwrap();
        let mut jc = JobController::new();
        jc.poll(&mut api, SimTime::ZERO);
        set_pod_phase(&mut api, "ns", "j-0", PodPhase::Succeeded);
        jc.poll(&mut api, SimTime::from_nanos(5));
        // Job marked complete and (ttl=0) deletion requested; the pod
        // still carries the kubelet finalizer so it is terminating.
        assert!(api.get(kinds::JOB, "ns", "j").is_none(), "job reaped");
        let pod = api.get(kinds::POD, "ns", "j-0").expect("pod terminating, not gone");
        assert!(pod.meta.deletion_requested);
        // Kubelet finishes teardown:
        api.remove_finalizer(kinds::POD, "ns", "j-0", KUBELET_FINALIZER).unwrap();
        assert!(api.get(kinds::POD, "ns", "j-0").is_none());
    }

    #[test]
    fn failed_pod_blocks_completion() {
        let mut api = ApiServer::default();
        api.create(make_job("ns", "j", &job_spec(2)), SimTime::ZERO).unwrap();
        let mut jc = JobController::new();
        jc.poll(&mut api, SimTime::ZERO);
        set_pod_phase(&mut api, "ns", "j-0", PodPhase::Succeeded);
        set_pod_phase(&mut api, "ns", "j-1", PodPhase::Failed);
        jc.poll(&mut api, SimTime::from_nanos(5));
        let job = api.get(kinds::JOB, "ns", "j").expect("not deleted");
        let st: JobStatus = status_of(job).unwrap();
        assert!(!st.complete);
    }

    #[test]
    fn multi_pod_jobs_require_all_completions() {
        let mut api = ApiServer::default();
        api.create(make_job("ns", "j", &job_spec(2)), SimTime::ZERO).unwrap();
        let mut jc = JobController::new();
        jc.poll(&mut api, SimTime::ZERO);
        set_pod_phase(&mut api, "ns", "j-0", PodPhase::Succeeded);
        jc.poll(&mut api, SimTime::from_nanos(5));
        let st: JobStatus = status_of(api.get(kinds::JOB, "ns", "j").unwrap()).unwrap();
        assert_eq!((st.succeeded, st.complete), (1, false));
        set_pod_phase(&mut api, "ns", "j-1", PodPhase::Succeeded);
        jc.poll(&mut api, SimTime::from_nanos(6));
        assert!(api.get(kinds::JOB, "ns", "j").is_none(), "ttl=0 reaps");
    }
}
