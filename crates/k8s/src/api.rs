//! The API server: a typed-by-kind object store with resource versions,
//! watch events, finalizers, and owner references — the Kubernetes API
//! machinery subset the paper's VNI Controller and CNI plugin talk to.
//!
//! Objects are dynamic (`kind` + JSON spec/status), which makes Custom
//! Resource Definitions (the VNI and VniClaim CRDs of §III-C1) ordinary
//! objects rather than special cases.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use shs_des::{SimDur, SimTime};

/// Object metadata (the `metadata:` block).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ObjectMeta {
    /// Object name, unique within (kind, namespace).
    pub name: String,
    /// Namespace (`""` for cluster-scoped objects).
    #[serde(default)]
    pub namespace: String,
    /// Cluster-unique uid, assigned at creation.
    #[serde(default)]
    pub uid: u64,
    /// Monotone resource version, bumped on every mutation.
    #[serde(default)]
    pub resource_version: u64,
    /// Annotations (the paper's `vni:` key lives here).
    #[serde(default)]
    pub annotations: BTreeMap<String, String>,
    /// Labels.
    #[serde(default)]
    pub labels: BTreeMap<String, String>,
    /// Owner uids (cascade deletion).
    #[serde(default)]
    pub owner_uids: Vec<u64>,
    /// Finalizers blocking physical deletion.
    #[serde(default)]
    pub finalizers: Vec<String>,
    /// Set when deletion has been requested.
    #[serde(default)]
    pub deletion_requested: bool,
    /// Creation instant (simulated).
    #[serde(default)]
    pub created_at_ns: u64,
}

/// A stored API object.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ApiObject {
    /// Kind, e.g. `"Job"`, `"Pod"`, `"Vni"`, `"VniClaim"`.
    pub kind: String,
    /// Metadata.
    pub meta: ObjectMeta,
    /// Desired state.
    #[serde(default)]
    pub spec: serde_json::Value,
    /// Observed state.
    #[serde(default)]
    pub status: serde_json::Value,
}

impl ApiObject {
    /// Convenience constructor.
    pub fn new(kind: &str, namespace: &str, name: &str, spec: serde_json::Value) -> Self {
        ApiObject {
            kind: kind.to_string(),
            meta: ObjectMeta {
                name: name.to_string(),
                namespace: namespace.to_string(),
                ..Default::default()
            },
            spec,
            status: serde_json::Value::Null,
        }
    }

    /// Annotation lookup.
    pub fn annotation(&self, key: &str) -> Option<&str> {
        self.meta.annotations.get(key).map(|s| s.as_str())
    }

    /// `namespace/name` display key.
    pub fn full_name(&self) -> String {
        if self.meta.namespace.is_empty() {
            self.meta.name.clone()
        } else {
            format!("{}/{}", self.meta.namespace, self.meta.name)
        }
    }
}

/// Watch event types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WatchType {
    /// Object created.
    Added,
    /// Object mutated (including finalizer/deletion-request updates).
    Modified,
    /// Object physically removed.
    Deleted,
}

/// A watch event.
#[derive(Debug, Clone)]
pub struct WatchEvent {
    /// Resource version at which the event occurred.
    pub rv: u64,
    /// Event type.
    pub kind: WatchType,
    /// Snapshot of the object after (or for Deleted: before) the change.
    pub object: ApiObject,
}

/// API errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ApiError {
    /// (kind, namespace, name) already exists.
    AlreadyExists,
    /// Object not found.
    NotFound,
    /// Resource-version conflict on update.
    Conflict,
}

impl core::fmt::Display for ApiError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            ApiError::AlreadyExists => "already exists",
            ApiError::NotFound => "not found",
            ApiError::Conflict => "resource version conflict",
        };
        f.write_str(s)
    }
}

impl std::error::Error for ApiError {}

/// API-server service-time model (per request; shapes the control-plane
/// queueing in Figs. 9-12).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ApiParams {
    /// Mutating request (create/update/delete) service time.
    pub write_latency: SimDur,
    /// Read request service time.
    pub read_latency: SimDur,
    /// Watch fan-out delay (event visible to watchers after this).
    pub watch_latency: SimDur,
}

impl Default for ApiParams {
    fn default() -> Self {
        ApiParams {
            write_latency: SimDur::from_millis(4),
            read_latency: SimDur::from_millis(2),
            watch_latency: SimDur::from_millis(25),
        }
    }
}

type Key = (String, String, String); // kind, namespace, name

/// The API server.
#[derive(Debug)]
pub struct ApiServer {
    params: ApiParams,
    objects: BTreeMap<Key, ApiObject>,
    events: Vec<WatchEvent>,
    next_rv: u64,
    next_uid: u64,
    /// Cumulative request count (diagnostics).
    pub requests: u64,
}

impl Default for ApiServer {
    fn default() -> Self {
        ApiServer::new(ApiParams::default())
    }
}

impl ApiServer {
    /// Fresh API server.
    pub fn new(params: ApiParams) -> Self {
        ApiServer {
            params,
            objects: BTreeMap::new(),
            events: Vec::new(),
            next_rv: 1,
            next_uid: 1,
            requests: 0,
        }
    }

    /// Service-time model.
    pub fn params(&self) -> &ApiParams {
        &self.params
    }

    fn key(kind: &str, namespace: &str, name: &str) -> Key {
        (kind.to_string(), namespace.to_string(), name.to_string())
    }

    fn bump(&mut self) -> u64 {
        let rv = self.next_rv;
        self.next_rv += 1;
        rv
    }

    fn emit(&mut self, kind: WatchType, object: ApiObject) {
        let rv = object.meta.resource_version;
        self.events.push(WatchEvent { rv, kind, object });
    }

    /// Create an object; assigns uid and resource version.
    pub fn create(&mut self, mut obj: ApiObject, now: SimTime) -> Result<ApiObject, ApiError> {
        self.requests += 1;
        let key = Self::key(&obj.kind, &obj.meta.namespace, &obj.meta.name);
        if self.objects.contains_key(&key) {
            return Err(ApiError::AlreadyExists);
        }
        obj.meta.uid = self.next_uid;
        self.next_uid += 1;
        obj.meta.resource_version = self.bump();
        obj.meta.created_at_ns = now.as_nanos();
        obj.meta.deletion_requested = false;
        self.objects.insert(key, obj.clone());
        self.emit(WatchType::Added, obj.clone());
        Ok(obj)
    }

    /// Get an object.
    pub fn get(&self, kind: &str, namespace: &str, name: &str) -> Option<&ApiObject> {
        self.objects.get(&Self::key(kind, namespace, name))
    }

    /// List all objects of a kind (all namespaces), in deterministic
    /// (namespace, name) order.
    pub fn list(&self, kind: &str) -> Vec<&ApiObject> {
        self.objects
            .iter()
            .filter(|((k, _, _), _)| k == kind)
            .map(|(_, v)| v)
            .collect()
    }

    /// List objects of a kind in one namespace.
    pub fn list_namespaced(&self, kind: &str, namespace: &str) -> Vec<&ApiObject> {
        self.objects
            .iter()
            .filter(|((k, ns, _), _)| k == kind && ns == namespace)
            .map(|(_, v)| v)
            .collect()
    }

    /// Update an object (full replace). Enforces optimistic concurrency:
    /// the supplied object must carry the current resource version.
    pub fn update(&mut self, mut obj: ApiObject) -> Result<ApiObject, ApiError> {
        self.requests += 1;
        let key = Self::key(&obj.kind, &obj.meta.namespace, &obj.meta.name);
        let current = self.objects.get(&key).ok_or(ApiError::NotFound)?;
        if current.meta.resource_version != obj.meta.resource_version {
            return Err(ApiError::Conflict);
        }
        obj.meta.uid = current.meta.uid;
        obj.meta.created_at_ns = current.meta.created_at_ns;
        obj.meta.deletion_requested = current.meta.deletion_requested;
        obj.meta.resource_version = self.bump();
        self.objects.insert(key, obj.clone());
        self.emit(WatchType::Modified, obj.clone());
        self.maybe_reap(&obj.kind, &obj.meta.namespace.clone(), &obj.meta.name.clone());
        Ok(obj)
    }

    /// Mutate an object in place via a closure (read-modify-write without
    /// caller-side conflicts). Returns the new version.
    pub fn mutate(
        &mut self,
        kind: &str,
        namespace: &str,
        name: &str,
        f: impl FnOnce(&mut ApiObject),
    ) -> Result<ApiObject, ApiError> {
        self.requests += 1;
        let key = Self::key(kind, namespace, name);
        let obj = self.objects.get_mut(&key).ok_or(ApiError::NotFound)?;
        f(obj);
        let rv = {
            let rv = self.next_rv;
            self.next_rv += 1;
            rv
        };
        let obj = self.objects.get_mut(&key).expect("still there");
        obj.meta.resource_version = rv;
        let snapshot = obj.clone();
        self.emit(WatchType::Modified, snapshot.clone());
        self.maybe_reap(kind, namespace, name);
        Ok(snapshot)
    }

    /// Request deletion. With finalizers present the object enters the
    /// "terminating" state (deletion_requested = true) and watchers see a
    /// Modified event; once the last finalizer is removed it is reaped.
    pub fn delete(&mut self, kind: &str, namespace: &str, name: &str) -> Result<(), ApiError> {
        self.requests += 1;
        let key = Self::key(kind, namespace, name);
        let obj = self.objects.get_mut(&key).ok_or(ApiError::NotFound)?;
        if obj.meta.deletion_requested {
            return Ok(()); // idempotent
        }
        obj.meta.deletion_requested = true;
        let rv = {
            let rv = self.next_rv;
            self.next_rv += 1;
            rv
        };
        let obj = self.objects.get_mut(&key).expect("still there");
        obj.meta.resource_version = rv;
        let snapshot = obj.clone();
        self.emit(WatchType::Modified, snapshot);
        self.maybe_reap(kind, namespace, name);
        Ok(())
    }

    /// Remove a finalizer; reaps the object if it was the last one and
    /// deletion was requested.
    pub fn remove_finalizer(
        &mut self,
        kind: &str,
        namespace: &str,
        name: &str,
        finalizer: &str,
    ) -> Result<(), ApiError> {
        self.mutate(kind, namespace, name, |o| {
            o.meta.finalizers.retain(|f| f != finalizer);
        })
        .map(|_| ())
    }

    fn maybe_reap(&mut self, kind: &str, namespace: &str, name: &str) {
        let key = Self::key(kind, namespace, name);
        let Some(obj) = self.objects.get(&key) else { return };
        if obj.meta.deletion_requested && obj.meta.finalizers.is_empty() {
            let obj = self.objects.remove(&key).expect("present");
            // Cascade: delete children owned by this uid.
            let children: Vec<Key> = self
                .objects
                .iter()
                .filter(|(_, o)| o.meta.owner_uids.contains(&obj.meta.uid))
                .map(|(k, _)| k.clone())
                .collect();
            self.emit(WatchType::Deleted, obj);
            for (k, ns, n) in children {
                let _ = self.delete(&k, &ns, &n);
            }
        }
    }

    /// Watch events with rv strictly greater than `since`. Returns the
    /// events and the latest rv to resume from. The event log is sorted
    /// by rv, so resumption is a binary search plus a (usually tiny) tail
    /// clone.
    pub fn events_since(&self, since: u64) -> (Vec<WatchEvent>, u64) {
        let start = self.events.partition_point(|e| e.rv <= since);
        let evs: Vec<WatchEvent> = self.events[start..].to_vec();
        let latest = evs.last().map_or(since, |e| e.rv);
        (evs, latest)
    }

    /// Current highest resource version.
    pub fn latest_rv(&self) -> u64 {
        self.next_rv - 1
    }

    /// Total stored objects.
    pub fn object_count(&self) -> usize {
        self.objects.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn api() -> ApiServer {
        ApiServer::default()
    }

    #[test]
    fn create_assigns_uid_and_rv() {
        let mut api = api();
        let a = api.create(ApiObject::new("Job", "ns", "a", json!({})), SimTime::ZERO).unwrap();
        let b = api.create(ApiObject::new("Job", "ns", "b", json!({})), SimTime::ZERO).unwrap();
        assert_ne!(a.meta.uid, b.meta.uid);
        assert!(b.meta.resource_version > a.meta.resource_version);
        assert_eq!(
            api.create(ApiObject::new("Job", "ns", "a", json!({})), SimTime::ZERO)
                .unwrap_err(),
            ApiError::AlreadyExists
        );
    }

    #[test]
    fn update_enforces_optimistic_concurrency() {
        let mut api = api();
        let obj = api.create(ApiObject::new("Job", "ns", "a", json!({})), SimTime::ZERO).unwrap();
        let mut stale = obj.clone();
        let mut fresh = obj;
        fresh.spec = json!({"v": 1});
        let fresh = api.update(fresh).unwrap();
        stale.spec = json!({"v": 2});
        assert_eq!(api.update(stale).unwrap_err(), ApiError::Conflict);
        assert_eq!(api.get("Job", "ns", "a").unwrap().spec, json!({"v": 1}));
        assert!(fresh.meta.resource_version > 1);
    }

    #[test]
    fn delete_without_finalizers_reaps_immediately() {
        let mut api = api();
        api.create(ApiObject::new("Pod", "ns", "p", json!({})), SimTime::ZERO).unwrap();
        api.delete("Pod", "ns", "p").unwrap();
        assert!(api.get("Pod", "ns", "p").is_none());
        let (evs, _) = api.events_since(0);
        assert!(matches!(evs.last().unwrap().kind, WatchType::Deleted));
    }

    #[test]
    fn finalizers_block_deletion_until_removed() {
        let mut api = api();
        let mut obj = ApiObject::new("Job", "ns", "j", json!({}));
        obj.meta.finalizers.push("vni.example/finalize".into());
        api.create(obj, SimTime::ZERO).unwrap();
        api.delete("Job", "ns", "j").unwrap();
        let o = api.get("Job", "ns", "j").expect("still terminating");
        assert!(o.meta.deletion_requested);
        api.remove_finalizer("Job", "ns", "j", "vni.example/finalize").unwrap();
        assert!(api.get("Job", "ns", "j").is_none());
    }

    #[test]
    fn delete_is_idempotent_while_terminating() {
        let mut api = api();
        let mut obj = ApiObject::new("Job", "ns", "j", json!({}));
        obj.meta.finalizers.push("f".into());
        api.create(obj, SimTime::ZERO).unwrap();
        api.delete("Job", "ns", "j").unwrap();
        api.delete("Job", "ns", "j").unwrap();
        assert!(api.get("Job", "ns", "j").is_some());
    }

    #[test]
    fn cascade_deletes_owned_children() {
        let mut api = api();
        let job = api.create(ApiObject::new("Job", "ns", "j", json!({})), SimTime::ZERO).unwrap();
        let mut pod = ApiObject::new("Pod", "ns", "j-0", json!({}));
        pod.meta.owner_uids.push(job.meta.uid);
        api.create(pod, SimTime::ZERO).unwrap();
        api.delete("Job", "ns", "j").unwrap();
        assert!(api.get("Pod", "ns", "j-0").is_none(), "cascade");
    }

    #[test]
    fn watch_events_resume_from_rv() {
        let mut api = api();
        api.create(ApiObject::new("Pod", "ns", "a", json!({})), SimTime::ZERO).unwrap();
        let (evs1, rv1) = api.events_since(0);
        assert_eq!(evs1.len(), 1);
        api.create(ApiObject::new("Pod", "ns", "b", json!({})), SimTime::ZERO).unwrap();
        let (evs2, rv2) = api.events_since(rv1);
        assert_eq!(evs2.len(), 1);
        assert_eq!(evs2[0].object.meta.name, "b");
        assert!(rv2 > rv1);
        let (evs3, _) = api.events_since(rv2);
        assert!(evs3.is_empty());
    }

    #[test]
    fn mutate_bumps_rv_and_emits() {
        let mut api = api();
        api.create(ApiObject::new("Pod", "ns", "a", json!({})), SimTime::ZERO).unwrap();
        let before = api.latest_rv();
        api.mutate("Pod", "ns", "a", |o| {
            o.status = json!({"phase": "Running"});
        })
        .unwrap();
        assert!(api.latest_rv() > before);
        assert_eq!(api.get("Pod", "ns", "a").unwrap().status, json!({"phase": "Running"}));
    }

    #[test]
    fn list_is_deterministic_and_namespaced() {
        let mut api = api();
        for (ns, n) in [("b", "x"), ("a", "y"), ("a", "x")] {
            api.create(ApiObject::new("Pod", ns, n, json!({})), SimTime::ZERO).unwrap();
        }
        let names: Vec<String> = api.list("Pod").iter().map(|o| o.full_name()).collect();
        assert_eq!(names, vec!["a/x", "a/y", "b/x"]);
        assert_eq!(api.list_namespaced("Pod", "a").len(), 2);
    }
}
