//! # shs-k8s — Kubernetes-lite control plane
//!
//! The Kubernetes subset the paper's integration plugs into: an API
//! server with typed-by-kind dynamic objects, resource versions, watches,
//! finalizers and cascading owner deletion ([`api`]); Jobs/Pods/Nodes
//! ([`objects`]); a job controller ([`job`]); a service controller with
//! rolling updates ([`service`]); a PLEG-style pod-lifecycle cache that
//! keeps status reads O(1) ([`pleg`]); a topology-spread-aware
//! scheduler ([`scheduler`]); a kubelet pod pipeline with bounded worker
//! pools ([`kubelet`]); and a Metacontroller-style DecoratorController
//! with `/sync` + `/finalize` webhook apply semantics
//! ([`metacontroller`]) — the mechanism the paper's VNI Controller is
//! built on (§III-C).
//!
//! Everything is poll-driven (controllers are pure state machines driven
//! by a periodic control-plane tick), which keeps the whole cluster
//! deterministic under simulation.

pub mod api;
pub mod job;
pub mod kubelet;
pub mod metacontroller;
pub mod objects;
pub mod pleg;
pub mod scheduler;
pub mod service;

pub use api::{ApiError, ApiObject, ApiParams, ApiServer, ObjectMeta, WatchEvent, WatchType};
pub use job::{JobController, KUBELET_FINALIZER};
pub use pleg::{GroupSnapshot, Pleg, PlegSnapshot};
pub use kubelet::{CniAddOutcome, Kubelet, KubeletCounters, KubeletParams, NodeBackend};
pub use metacontroller::{
    DecoratorConfig, DecoratorCounters, DecoratorHooks, FinalizeResponse, Metacontroller,
    SyncResponse,
};
pub use objects::{
    kinds, make_job, make_node, pod_phase, spec_of, status_of, JobSpec, JobStatus, PodPhase,
    PodSpec, PodStatus, PodTemplate, VNI_ANNOTATION,
};
pub use scheduler::{bound_node, Scheduler};
pub use service::{
    make_service, pod_ready, pod_revision, ServiceController, ServiceSpec, ServiceStatus,
    REVISION_ANNOTATION,
};
