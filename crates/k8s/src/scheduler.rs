//! The pod scheduler: binds pending pods to ready nodes, honouring
//! per-node capacity and topology-spread groups (the constraint the
//! paper uses to place the two benchmark ranks on two nodes, §IV-A).
//!
//! Event-driven: pods enter the pending set via watch events and leave
//! when bound, deleted, or failed; a poll with an empty pending set is
//! O(events) only.

use std::collections::{BTreeMap, BTreeSet};

use shs_des::SimTime;

use crate::api::{ApiServer, WatchType};
use crate::objects::{kinds, pod_phase, spec_of, PodPhase, PodSpec};

/// Scheduler state (a controller; poll-driven).
#[derive(Debug, Default)]
pub struct Scheduler {
    last_rv: u64,
    pending: BTreeSet<(String, String)>,
    /// Pods bound over this scheduler's lifetime (diagnostics).
    pub bindings: u64,
}

impl Scheduler {
    /// Fresh scheduler.
    pub fn new() -> Self {
        Scheduler::default()
    }

    /// Pods awaiting a binding.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// One reconcile pass: bind every pending, non-terminating pod.
    /// Binding writes `spec.node_name` (the "binding" subresource).
    pub fn poll(&mut self, api: &mut ApiServer, _now: SimTime) {
        // Learn about new pods from the watch stream.
        let (events, rv) = api.events_since(self.last_rv);
        self.last_rv = rv;
        for ev in &events {
            if ev.object.kind != kinds::POD {
                continue;
            }
            let key = (ev.object.meta.namespace.clone(), ev.object.meta.name.clone());
            match ev.kind {
                WatchType::Deleted => {
                    self.pending.remove(&key);
                }
                _ => {
                    let spec: PodSpec = spec_of(&ev.object);
                    if spec.node_name.is_none() && !ev.object.meta.deletion_requested {
                        self.pending.insert(key);
                    } else {
                        self.pending.remove(&key);
                    }
                }
            }
        }
        if self.pending.is_empty() {
            return;
        }

        let nodes: Vec<(String, u32)> = api
            .list(kinds::NODE)
            .iter()
            .filter(|n| n.status["ready"] == serde_json::json!(true))
            .map(|n| {
                let max = n.spec["maxPods"].as_u64().unwrap_or(110) as u32;
                (n.meta.name.clone(), max)
            })
            .collect();
        if nodes.is_empty() {
            return;
        }

        // Current occupancy and per-spread-group placement counts.
        let mut pods_on: BTreeMap<String, u32> = BTreeMap::new();
        let mut group_on: BTreeMap<(String, String), u32> = BTreeMap::new();
        for pod in api.list(kinds::POD) {
            if pod_phase(pod) == PodPhase::Failed {
                continue;
            }
            let spec: PodSpec = spec_of(pod);
            if let Some(node) = &spec.node_name {
                *pods_on.entry(node.clone()).or_insert(0) += 1;
                if let Some(g) = &spec.spread_key {
                    *group_on.entry((g.clone(), node.clone())).or_insert(0) += 1;
                }
            }
        }

        let work: Vec<(String, String)> = self.pending.iter().cloned().collect();
        for (ns, name) in work {
            let Some(pod) = api.get(kinds::POD, &ns, &name) else {
                self.pending.remove(&(ns, name));
                continue;
            };
            if pod.meta.deletion_requested {
                self.pending.remove(&(ns, name));
                continue;
            }
            let spec: PodSpec = spec_of(pod);
            // Candidates with capacity, ranked by (spread count, total
            // pods, name) for deterministic, spread-first placement. A
            // node selector (topology-aware rank placement) restricts
            // the candidate set before ranking.
            let mut best: Option<(u32, u32, &str)> = None;
            for (node, max) in &nodes {
                if let Some(sel) = &spec.node_selector {
                    if !sel.contains(node) {
                        continue;
                    }
                }
                let total = pods_on.get(node).copied().unwrap_or(0);
                if total >= *max {
                    continue;
                }
                let group = spec
                    .spread_key
                    .as_ref()
                    .map(|g| group_on.get(&(g.clone(), node.clone())).copied().unwrap_or(0))
                    .unwrap_or(0);
                let cand = (group, total, node.as_str());
                if best.is_none_or(|b| cand < b) {
                    best = Some(cand);
                }
            }
            let Some((_, _, chosen)) = best else { continue }; // no capacity: stays pending
            let chosen = chosen.to_string();
            api.mutate(kinds::POD, &ns, &name, |o| {
                let mut s: PodSpec = spec_of(o);
                s.node_name = Some(chosen.clone());
                o.spec = serde_json::to_value(s).expect("PodSpec serializes");
            })
            .expect("pod exists");
            *pods_on.entry(chosen.clone()).or_insert(0) += 1;
            if let Some(g) = &spec.spread_key {
                *group_on.entry((g.clone(), chosen)).or_insert(0) += 1;
            }
            self.bindings += 1;
            self.pending.remove(&(ns, name));
        }
    }
}

/// Convenience: the node a pod is bound to.
pub fn bound_node(api: &ApiServer, namespace: &str, name: &str) -> Option<String> {
    let pod = api.get(kinds::POD, namespace, name)?;
    let spec: PodSpec = spec_of(pod);
    spec.node_name
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::ApiObject;
    use crate::objects::make_node;
    use serde_json::json;

    fn pod(ns: &str, name: &str, spread: Option<&str>) -> ApiObject {
        ApiObject::new(
            kinds::POD,
            ns,
            name,
            json!({
                "image": "alpine",
                "spread_key": spread,
            }),
        )
    }

    fn cluster(api: &mut ApiServer, nodes: &[(&str, u32)]) {
        for (n, max) in nodes {
            api.create(make_node(n, *max), SimTime::ZERO).unwrap();
        }
    }

    #[test]
    fn binds_pending_pods_round_robin_by_load() {
        let mut api = ApiServer::default();
        cluster(&mut api, &[("n0", 10), ("n1", 10)]);
        for i in 0..4 {
            api.create(pod("ns", &format!("p{i}"), None), SimTime::ZERO).unwrap();
        }
        Scheduler::new().poll(&mut api, SimTime::ZERO);
        let mut counts = BTreeMap::new();
        for i in 0..4 {
            let n = bound_node(&api, "ns", &format!("p{i}")).expect("bound");
            *counts.entry(n).or_insert(0) += 1;
        }
        assert_eq!(counts.get("n0"), Some(&2));
        assert_eq!(counts.get("n1"), Some(&2));
    }

    #[test]
    fn topology_spread_splits_a_group_across_nodes() {
        let mut api = ApiServer::default();
        cluster(&mut api, &[("n0", 10), ("n1", 10)]);
        // Pre-load n0 with unrelated pods so naive least-loaded would
        // put both group members on n1.
        for i in 0..3 {
            api.create(pod("ns", &format!("bg{i}"), None), SimTime::ZERO).unwrap();
        }
        let mut s = Scheduler::new();
        s.poll(&mut api, SimTime::ZERO);
        api.create(pod("ns", "osu-0", Some("osu")), SimTime::ZERO).unwrap();
        api.create(pod("ns", "osu-1", Some("osu")), SimTime::ZERO).unwrap();
        s.poll(&mut api, SimTime::ZERO);
        let a = bound_node(&api, "ns", "osu-0").unwrap();
        let b = bound_node(&api, "ns", "osu-1").unwrap();
        assert_ne!(a, b, "spread group must land on distinct nodes");
    }

    #[test]
    fn respects_node_capacity_and_retries_later() {
        let mut api = ApiServer::default();
        cluster(&mut api, &[("n0", 2)]);
        for i in 0..3 {
            api.create(pod("ns", &format!("p{i}"), None), SimTime::ZERO).unwrap();
        }
        let mut s = Scheduler::new();
        s.poll(&mut api, SimTime::ZERO);
        let bound = (0..3)
            .filter(|i| bound_node(&api, "ns", &format!("p{i}")).is_some())
            .count();
        assert_eq!(bound, 2, "third pod must stay pending");
        assert_eq!(s.pending(), 1);
        // Free a slot (delete a bound pod) and re-poll: the third binds.
        api.delete(kinds::POD, "ns", "p0").unwrap();
        s.poll(&mut api, SimTime::ZERO);
        let bound = (0..3)
            .filter(|i| bound_node(&api, "ns", &format!("p{i}")).is_some())
            .count();
        assert_eq!(bound, 2, "p1 still bound + p2 newly bound");
        assert_eq!(s.pending(), 0);
    }

    #[test]
    fn node_selector_restricts_candidates() {
        let mut api = ApiServer::default();
        cluster(&mut api, &[("n0", 10), ("n1", 10), ("n2", 10)]);
        // n0 is least loaded overall, but the selector excludes it.
        let mut p = pod("ns", "pinned", None);
        p.spec["node_selector"] = json!(["n1", "n2"]);
        api.create(p, SimTime::ZERO).unwrap();
        let mut s = Scheduler::new();
        s.poll(&mut api, SimTime::ZERO);
        assert_eq!(bound_node(&api, "ns", "pinned").as_deref(), Some("n1"));
        // A selector naming no schedulable node leaves the pod pending.
        let mut q = pod("ns", "stuck", None);
        q.spec["node_selector"] = json!(["n9"]);
        api.create(q, SimTime::ZERO).unwrap();
        s.poll(&mut api, SimTime::ZERO);
        assert!(bound_node(&api, "ns", "stuck").is_none());
        assert_eq!(s.pending(), 1);
    }

    #[test]
    fn skips_terminating_pods() {
        let mut api = ApiServer::default();
        cluster(&mut api, &[("n0", 10)]);
        let mut dying = pod("ns", "dying", None);
        dying.meta.finalizers.push("x".into());
        api.create(dying, SimTime::ZERO).unwrap();
        api.delete(kinds::POD, "ns", "dying").unwrap();
        let mut s = Scheduler::new();
        s.poll(&mut api, SimTime::ZERO);
        assert!(bound_node(&api, "ns", "dying").is_none());
        assert_eq!(s.pending(), 0);
    }

    #[test]
    fn unready_nodes_get_nothing() {
        let mut api = ApiServer::default();
        let mut node = make_node("n0", 10);
        node.status = json!({"ready": false});
        api.create(node, SimTime::ZERO).unwrap();
        api.create(pod("ns", "p", None), SimTime::ZERO).unwrap();
        Scheduler::new().poll(&mut api, SimTime::ZERO);
        assert!(bound_node(&api, "ns", "p").is_none());
    }

    #[test]
    fn empty_pending_poll_is_cheap_noop() {
        let mut api = ApiServer::default();
        cluster(&mut api, &[("n0", 10)]);
        let mut s = Scheduler::new();
        let before = api.requests;
        s.poll(&mut api, SimTime::ZERO);
        s.poll(&mut api, SimTime::ZERO);
        assert_eq!(api.requests, before, "no API mutations on idle polls");
    }
}
