//! The service controller (serving plane): long-running replica sets
//! with deterministic reconciliation and rolling updates.
//!
//! A `Service` is the cloud-native half of the paper's convergence
//! story: where a `Job` runs a fixed number of pods to completion, a
//! service keeps `replicas` pods alive indefinitely, replaces crashed
//! pods, and rolls its pod template forward under classic
//! maxUnavailable/maxSurge semantics — the reconciler never
//! *voluntarily* deletes a ready pod while doing so would drop the
//! ready count below `replicas - max_unavailable`.
//!
//! Service pods carry `spec.job_name = Some(<service name>)` so the CXI
//! CNI plugin resolves their VNI through the same `vni-<name>` CRD
//! lookup jobs use; a Metacontroller instance over kind `Service`
//! (wired by the cluster) decorates annotated services exactly like
//! annotated jobs.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};
use shs_des::SimTime;

use crate::api::{ApiObject, ApiServer};
use crate::job::KUBELET_FINALIZER;
use crate::objects::{kinds, pod_phase, spec_of, status_of, PodPhase, PodSpec, PodTemplate};

/// Annotation recording which template revision a service pod was
/// created from; pods whose recorded revision differs from the service
/// spec's `version` are "old" and get rolled.
pub const REVISION_ANNOTATION: &str = "service.simk8s/revision";

/// Service spec.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceSpec {
    /// Desired number of ready pods.
    pub replicas: u32,
    /// Pod template (normally with `run_ms: None`: service pods run
    /// until deleted).
    pub template: PodTemplate,
    /// Rolling updates may drop at most this many pods below
    /// `replicas` ready.
    #[serde(default = "default_rolling")]
    pub max_unavailable: u32,
    /// Rolling updates may run at most this many pods above `replicas`.
    #[serde(default = "default_rolling")]
    pub max_surge: u32,
    /// Template revision; bumping it triggers a rolling update.
    #[serde(default)]
    pub version: u64,
}

fn default_rolling() -> u32 {
    1
}

/// Service status (observed by the reconciler).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ServiceStatus {
    /// Live pods currently ready (Running, not terminating).
    pub ready: u32,
    /// Live pods at the spec's current revision.
    pub current: u32,
    /// All live (non-terminating) pods of the service.
    pub total: u32,
}

/// Build a Service object.
pub fn make_service(namespace: &str, name: &str, spec: &ServiceSpec) -> ApiObject {
    ApiObject::new(
        kinds::SERVICE,
        namespace,
        name,
        serde_json::to_value(spec).expect("ServiceSpec serializes"),
    )
}

/// The template revision a pod was created from (0 when unannotated).
pub fn pod_revision(pod: &ApiObject) -> u64 {
    pod.annotation(REVISION_ANNOTATION).and_then(|v| v.parse().ok()).unwrap_or(0)
}

/// Whether a pod counts as ready: Running and not terminating.
pub fn pod_ready(pod: &ApiObject) -> bool {
    pod_phase(pod) == PodPhase::Running && !pod.meta.deletion_requested
}

/// Tracked view of one service pod during a reconcile pass.
#[derive(Debug, Clone)]
struct PodView {
    name: String,
    /// Created from the spec's current revision.
    current: bool,
    /// Running and not terminating.
    ready: bool,
    /// Not terminating (counts against the surge ceiling).
    alive: bool,
    phase: PodPhase,
}

/// The service controller: watches Services and their pods, reconciles
/// replica counts, replaces failures, and drives rolling updates.
#[derive(Debug, Default)]
pub struct ServiceController {
    last_rv: u64,
    /// Pods created (diagnostics).
    pub pods_created: u64,
    /// Pod deletions requested (diagnostics).
    pub pods_deleted: u64,
}

impl ServiceController {
    /// Fresh controller.
    pub fn new() -> Self {
        ServiceController::default()
    }

    /// One reconcile pass over everything dirtied since the last poll.
    pub fn poll(&mut self, api: &mut ApiServer, now: SimTime) {
        let (events, rv) = api.events_since(self.last_rv);
        self.last_rv = rv;

        let mut dirty: BTreeSet<(String, String)> = BTreeSet::new();
        for ev in &events {
            match ev.object.kind.as_str() {
                k if k == kinds::SERVICE => {
                    dirty.insert((ev.object.meta.namespace.clone(), ev.object.meta.name.clone()));
                }
                // Unlike the job controller, pod *deletions* matter:
                // a reaped pod must be replaced to hold the replica
                // count. Pods name their manager through `job_name`;
                // keys that turn out to be jobs are skipped below.
                k if k == kinds::POD => {
                    let spec: PodSpec = spec_of(&ev.object);
                    if let Some(owner) = spec.job_name {
                        dirty.insert((ev.object.meta.namespace.clone(), owner));
                    }
                }
                _ => {}
            }
        }
        for (ns, name) in dirty {
            self.reconcile_service(api, &ns, &name, now);
        }
    }

    /// Reconcile one service. Deterministic: pods are processed in
    /// lexicographic name order and every decision depends only on API
    /// state.
    pub fn reconcile_service(&mut self, api: &mut ApiServer, ns: &str, name: &str, now: SimTime) {
        let Some(svc) = api.get(kinds::SERVICE, ns, name).cloned() else { return };
        if svc.meta.deletion_requested {
            return; // cascade + kubelet finalizers tear the pods down
        }
        let spec: ServiceSpec = spec_of(&svc);
        // Both knobs zero would deadlock a rolling update (no room to
        // surge, no license to dip); treat it as surge 1, like upstream
        // validation would reject it.
        let max_surge =
            if spec.max_unavailable == 0 && spec.max_surge == 0 { 1 } else { spec.max_surge };
        let floor = spec.replicas.saturating_sub(spec.max_unavailable) as usize;
        let ceiling = (spec.replicas + max_surge) as usize;

        let mut pods: Vec<PodView> = api
            .list_namespaced(kinds::POD, ns)
            .into_iter()
            .filter(|p| {
                let ps: PodSpec = spec_of(p);
                ps.job_name.as_deref() == Some(name)
            })
            .map(|p| PodView {
                name: p.meta.name.clone(),
                current: pod_revision(p) == spec.version,
                ready: pod_ready(p),
                alive: !p.meta.deletion_requested,
                phase: pod_phase(p),
            })
            .collect();

        // 1. Failed pods are dead weight: delete them (they are not
        //    ready, so the floor is unaffected).
        for p in pods.iter_mut().filter(|p| p.alive && p.phase == PodPhase::Failed) {
            if api.delete(kinds::POD, ns, &p.name).is_ok() {
                self.pods_deleted += 1;
            }
            p.alive = false;
            p.ready = false;
        }

        // 2. Scale down: drop current-revision extras above `replicas`,
        //    highest name first (the most recently created pods).
        let mut current_alive = pods.iter().filter(|p| p.alive && p.current).count();
        for p in pods.iter_mut().rev().filter(|p| p.alive && p.current) {
            if current_alive <= spec.replicas as usize {
                break;
            }
            if api.delete(kinds::POD, ns, &p.name).is_ok() {
                self.pods_deleted += 1;
            }
            p.alive = false;
            p.ready = false;
            current_alive -= 1;
        }

        // 3. Roll old-revision pods. Non-ready old pods go
        //    unconditionally; ready old pods go only while the ready
        //    count stays at or above the floor.
        let mut ready_count = pods.iter().filter(|p| p.ready).count();
        for p in pods.iter_mut().filter(|p| p.alive && !p.current) {
            let safe = if p.ready { ready_count > floor } else { true };
            if !safe {
                continue;
            }
            if api.delete(kinds::POD, ns, &p.name).is_ok() {
                self.pods_deleted += 1;
            }
            if p.ready {
                ready_count -= 1;
            }
            p.alive = false;
            p.ready = false;
        }

        // 4. Scale up: create missing current-revision pods at the
        //    smallest free indices, bounded by the surge ceiling
        //    (terminating pods still hold their names but not a slot).
        let mut current_alive = pods.iter().filter(|p| p.alive && p.current).count();
        let mut total_alive = pods.iter().filter(|p| p.alive).count();
        let taken: BTreeSet<String> = pods.iter().map(|p| p.name.clone()).collect();
        let mut idx = 0u32;
        while current_alive < spec.replicas as usize && total_alive < ceiling {
            let pod_name = format!("{name}-v{}-{idx}", spec.version);
            idx += 1;
            if taken.contains(&pod_name) {
                continue;
            }
            let pod_spec = PodSpec {
                job_name: Some(name.to_string()),
                image: spec.template.image.clone(),
                run_ms: spec.template.run_ms,
                userns_base: spec.template.userns_base,
                node_name: None,
                spread_key: Some(format!("{ns}/{name}")),
                node_selector: spec.template.node_selector.clone(),
                termination_grace_period_secs: 30,
            };
            let mut pod = ApiObject::new(
                kinds::POD,
                ns,
                &pod_name,
                serde_json::to_value(pod_spec).expect("PodSpec serializes"),
            );
            pod.meta.owner_uids.push(svc.meta.uid);
            pod.meta.finalizers.push(KUBELET_FINALIZER.to_string());
            // Pods inherit the service's annotations (the CXI CNI reads
            // `vni` from pod metadata), plus the revision stamp.
            pod.meta.annotations = svc.meta.annotations.clone();
            pod.meta
                .annotations
                .insert(REVISION_ANNOTATION.to_string(), spec.version.to_string());
            if api.create(pod, now).is_ok() {
                self.pods_created += 1;
                current_alive += 1;
                total_alive += 1;
            }
        }

        // 5. Status, written only on change so reconciles settle.
        let ready = pods.iter().filter(|p| p.ready).count() as u32;
        let status = ServiceStatus {
            ready,
            current: current_alive as u32,
            total: total_alive as u32,
        };
        let old: ServiceStatus = status_of(&svc).unwrap_or_default();
        if status != old {
            let st = serde_json::to_value(&status).expect("ServiceStatus serializes");
            let _ = api.mutate(kinds::SERVICE, ns, name, |o| o.status = st);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn svc_spec(replicas: u32, version: u64) -> ServiceSpec {
        ServiceSpec {
            replicas,
            template: PodTemplate {
                image: "nginx".into(),
                run_ms: None,
                userns_base: None,
                node_selector: None,
            },
            max_unavailable: 1,
            max_surge: 1,
            version,
        }
    }

    fn set_phase(api: &mut ApiServer, ns: &str, name: &str, phase: PodPhase) {
        api.mutate(kinds::POD, ns, name, |o| {
            o.status = json!({"phase": phase, "started_at_ns": 1});
        })
        .unwrap();
    }

    fn ready_pods(api: &ApiServer, ns: &str) -> Vec<String> {
        api.list_namespaced(kinds::POD, ns)
            .into_iter()
            .filter(|p| pod_ready(p))
            .map(|p| p.meta.name.clone())
            .collect()
    }

    /// Drive every live pod to Running and let terminating pods finish,
    /// like the kubelet would.
    fn settle(api: &mut ApiServer, ns: &str) {
        let pods: Vec<(String, bool, PodPhase)> = api
            .list_namespaced(kinds::POD, ns)
            .into_iter()
            .map(|p| (p.meta.name.clone(), p.meta.deletion_requested, pod_phase(p)))
            .collect();
        for (name, terminating, phase) in pods {
            if terminating {
                let _ = api.remove_finalizer(kinds::POD, ns, &name, KUBELET_FINALIZER);
            } else if phase == PodPhase::Pending {
                set_phase(api, ns, &name, PodPhase::Running);
            }
        }
    }

    #[test]
    fn creates_replicas_with_owner_finalizer_and_revision() {
        let mut api = ApiServer::default();
        let mut svc = make_service("ns", "web", &svc_spec(3, 7));
        svc.meta.annotations.insert("vni".into(), "true".into());
        let svc = api.create(svc, SimTime::ZERO).unwrap();
        let mut sc = ServiceController::new();
        sc.poll(&mut api, SimTime::ZERO);
        let pods = api.list_namespaced(kinds::POD, "ns");
        assert_eq!(pods.len(), 3);
        for p in pods {
            assert!(p.meta.owner_uids.contains(&svc.meta.uid));
            assert!(p.meta.finalizers.contains(&KUBELET_FINALIZER.to_string()));
            assert_eq!(p.annotation("vni"), Some("true"));
            assert_eq!(pod_revision(p), 7);
            let spec: PodSpec = spec_of(p);
            assert_eq!(spec.job_name.as_deref(), Some("web"));
            assert!(spec.run_ms.is_none(), "service pods run until killed");
        }
        assert_eq!(sc.pods_created, 3);
    }

    #[test]
    fn reconcile_is_idempotent() {
        let mut api = ApiServer::default();
        api.create(make_service("ns", "web", &svc_spec(2, 0)), SimTime::ZERO).unwrap();
        let mut sc = ServiceController::new();
        sc.poll(&mut api, SimTime::ZERO);
        sc.poll(&mut api, SimTime::ZERO);
        sc.poll(&mut api, SimTime::ZERO);
        assert_eq!(api.list_namespaced(kinds::POD, "ns").len(), 2);
        assert_eq!(sc.pods_created, 2);
    }

    #[test]
    fn failed_pod_is_replaced() {
        let mut api = ApiServer::default();
        api.create(make_service("ns", "web", &svc_spec(2, 0)), SimTime::ZERO).unwrap();
        let mut sc = ServiceController::new();
        sc.poll(&mut api, SimTime::ZERO);
        settle(&mut api, "ns");
        set_phase(&mut api, "ns", "web-v0-0", PodPhase::Failed);
        sc.poll(&mut api, SimTime::from_nanos(1));
        // The failed pod is terminating; kubelet finishes teardown, the
        // Deleted event dirties the service, and a replacement appears.
        settle(&mut api, "ns");
        sc.poll(&mut api, SimTime::from_nanos(2));
        let pods = api.list_namespaced(kinds::POD, "ns");
        assert_eq!(pods.len(), 2);
        assert!(pods.iter().all(|p| !p.meta.deletion_requested));
    }

    #[test]
    fn scale_down_removes_highest_index_pods() {
        let mut api = ApiServer::default();
        api.create(make_service("ns", "web", &svc_spec(4, 0)), SimTime::ZERO).unwrap();
        let mut sc = ServiceController::new();
        sc.poll(&mut api, SimTime::ZERO);
        settle(&mut api, "ns");
        api.mutate(kinds::SERVICE, "ns", "web", |o| {
            o.spec["replicas"] = json!(2);
        })
        .unwrap();
        sc.poll(&mut api, SimTime::from_nanos(1));
        let live: Vec<String> = api
            .list_namespaced(kinds::POD, "ns")
            .into_iter()
            .filter(|p| !p.meta.deletion_requested)
            .map(|p| p.meta.name.clone())
            .collect();
        assert_eq!(live, vec!["web-v0-0", "web-v0-1"]);
    }

    #[test]
    fn rolling_update_holds_the_ready_floor_and_converges() {
        let mut api = ApiServer::default();
        api.create(make_service("ns", "web", &svc_spec(4, 0)), SimTime::ZERO).unwrap();
        let mut sc = ServiceController::new();
        sc.poll(&mut api, SimTime::ZERO);
        settle(&mut api, "ns");
        sc.poll(&mut api, SimTime::ZERO);
        assert_eq!(ready_pods(&api, "ns").len(), 4);
        // Bump the template revision to start the roll.
        api.mutate(kinds::SERVICE, "ns", "web", |o| {
            o.spec["version"] = json!(1);
        })
        .unwrap();
        let floor = 3; // replicas 4, max_unavailable 1
        for step in 0..20u64 {
            sc.poll(&mut api, SimTime::from_nanos(step));
            assert!(
                ready_pods(&api, "ns").len() >= floor,
                "ready dipped below floor at step {step}"
            );
            settle(&mut api, "ns");
        }
        let pods = api.list_namespaced(kinds::POD, "ns");
        assert_eq!(pods.len(), 4);
        assert!(pods.iter().all(|p| pod_revision(p) == 1), "all pods rolled");
        assert_eq!(ready_pods(&api, "ns").len(), 4);
    }

    #[test]
    fn surge_ceiling_bounds_live_pods_during_a_roll() {
        let mut api = ApiServer::default();
        api.create(make_service("ns", "web", &svc_spec(3, 0)), SimTime::ZERO).unwrap();
        let mut sc = ServiceController::new();
        sc.poll(&mut api, SimTime::ZERO);
        settle(&mut api, "ns");
        api.mutate(kinds::SERVICE, "ns", "web", |o| {
            o.spec["version"] = json!(1);
        })
        .unwrap();
        for step in 0..20u64 {
            sc.poll(&mut api, SimTime::from_nanos(step));
            let alive = api
                .list_namespaced(kinds::POD, "ns")
                .into_iter()
                .filter(|p| !p.meta.deletion_requested)
                .count();
            assert!(alive <= 4, "surge ceiling (replicas 3 + surge 1) exceeded: {alive}");
            settle(&mut api, "ns");
        }
        assert_eq!(ready_pods(&api, "ns").len(), 3);
    }

    #[test]
    fn zero_zero_rolling_config_still_makes_progress() {
        let mut api = ApiServer::default();
        let mut spec = svc_spec(2, 0);
        spec.max_unavailable = 0;
        spec.max_surge = 0;
        api.create(make_service("ns", "web", &spec), SimTime::ZERO).unwrap();
        let mut sc = ServiceController::new();
        sc.poll(&mut api, SimTime::ZERO);
        settle(&mut api, "ns");
        api.mutate(kinds::SERVICE, "ns", "web", |o| {
            o.spec["version"] = json!(1);
        })
        .unwrap();
        for step in 0..20u64 {
            sc.poll(&mut api, SimTime::from_nanos(step));
            assert_eq!(ready_pods(&api, "ns").len(), 2, "never dips: effective surge 1");
            settle(&mut api, "ns");
        }
        let pods = api.list_namespaced(kinds::POD, "ns");
        assert!(pods.iter().all(|p| pod_revision(p) == 1));
    }

    #[test]
    fn deleting_the_service_cascades_to_pods() {
        let mut api = ApiServer::default();
        api.create(make_service("ns", "web", &svc_spec(2, 0)), SimTime::ZERO).unwrap();
        let mut sc = ServiceController::new();
        sc.poll(&mut api, SimTime::ZERO);
        api.delete(kinds::SERVICE, "ns", "web").unwrap();
        // Service has no finalizers → reaped; pods enter teardown.
        assert!(api.get(kinds::SERVICE, "ns", "web").is_none());
        let pods = api.list_namespaced(kinds::POD, "ns");
        assert_eq!(pods.len(), 2);
        assert!(pods.iter().all(|p| p.meta.deletion_requested));
        // Reconcile of a vanished service must not recreate pods.
        sc.poll(&mut api, SimTime::from_nanos(1));
        settle(&mut api, "ns");
        sc.poll(&mut api, SimTime::from_nanos(2));
        assert!(api.list_namespaced(kinds::POD, "ns").is_empty());
    }

    #[test]
    fn status_reports_ready_current_total() {
        let mut api = ApiServer::default();
        api.create(make_service("ns", "web", &svc_spec(2, 0)), SimTime::ZERO).unwrap();
        let mut sc = ServiceController::new();
        sc.poll(&mut api, SimTime::ZERO);
        settle(&mut api, "ns");
        sc.poll(&mut api, SimTime::ZERO);
        let st: ServiceStatus = status_of(api.get(kinds::SERVICE, "ns", "web").unwrap()).unwrap();
        assert_eq!(st, ServiceStatus { ready: 2, current: 2, total: 2 });
    }
}
