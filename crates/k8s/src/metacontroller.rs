//! Metacontroller-style DecoratorController.
//!
//! The paper's VNI Controller "is implemented as a Decorator Controller
//! provided by Metacontroller" (§III-C1): it watches already-created
//! resources matching a pattern (jobs with the `vni` annotation, VNI
//! claims), calls webhook hooks with observed state, and applies the
//! *desired children* the webhook returns ("apply semantics", §III-C2).
//! Parents gain a finalizer while in scope; deletion triggers the
//! `/finalize` hook until it reports completion.
//!
//! Webhook calls are serialized with a configurable per-call latency —
//! this is the management-plane queue that gives the `vni:true` runs
//! their (small) extra admission delay in Figs. 9-12.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use shs_des::{SimDur, SimTime};

use crate::api::{ApiObject, ApiServer, WatchType};

/// Response of the `/sync` hook: the full desired set of children for
/// this parent (apply semantics — missing ones are created, undesired
/// ones deleted).
#[derive(Debug, Clone, Default)]
pub struct SyncResponse {
    /// Desired child objects (name/kind/spec; metadata is managed).
    pub desired_children: Vec<ApiObject>,
}

/// Response of the `/finalize` hook.
#[derive(Debug, Clone, Default)]
pub struct FinalizeResponse {
    /// Desired children while finalizing (usually empty).
    pub desired_children: Vec<ApiObject>,
    /// Whether finalization is complete (the finalizer is removed and the
    /// parent may be reaped).
    pub finalized: bool,
}

/// The webhook implementation (the paper's VNI Endpoint).
pub trait DecoratorHooks {
    /// `/sync`: observe a live parent + its children, return desired
    /// children. Must be idempotent.
    fn sync(&mut self, parent: &ApiObject, children: &[ApiObject], now: SimTime) -> SyncResponse;

    /// `/finalize`: parent is being deleted.
    fn finalize(
        &mut self,
        parent: &ApiObject,
        children: &[ApiObject],
        now: SimTime,
    ) -> FinalizeResponse;
}

/// Static configuration of a decorator controller.
#[derive(Debug, Clone)]
pub struct DecoratorConfig {
    /// Controller name (used in the finalizer).
    pub name: String,
    /// Parent kind to watch (e.g. `Job`).
    pub parent_kind: String,
    /// Only parents carrying this annotation key are in scope.
    pub annotation_filter: Option<String>,
    /// Kind of the managed children (e.g. `Vni`).
    pub child_kind: String,
    /// Per-webhook-call latency (HTTP round trip + handler).
    pub webhook_latency: SimDur,
    /// Re-enqueue every known parent on this period (`None` = event-driven
    /// only). Needed when desired state depends on off-cluster data, e.g.
    /// the VNI Claim user list in the VNI database.
    pub resync_period: Option<SimDur>,
}

/// Controller counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecoratorCounters {
    /// `/sync` calls made.
    pub sync_calls: u64,
    /// `/finalize` calls made.
    pub finalize_calls: u64,
    /// Children created.
    pub children_created: u64,
    /// Children deleted.
    pub children_deleted: u64,
}

/// The decorator controller.
#[derive(Debug)]
pub struct Metacontroller<H: DecoratorHooks> {
    config: DecoratorConfig,
    /// The webhook backend.
    pub hooks: H,
    last_rv: u64,
    queue: VecDeque<((String, String), SimTime)>,
    queued: BTreeSet<(String, String)>,
    /// uid -> parent key index for routing child events.
    parent_by_uid: BTreeMap<u64, (String, String)>,
    busy_until: SimTime,
    last_resync: SimTime,
    /// Counters.
    pub counters: DecoratorCounters,
}

impl<H: DecoratorHooks> Metacontroller<H> {
    /// Build a controller.
    pub fn new(config: DecoratorConfig, hooks: H) -> Self {
        Metacontroller {
            config,
            hooks,
            last_rv: 0,
            queue: VecDeque::new(),
            queued: BTreeSet::new(),
            parent_by_uid: BTreeMap::new(),
            busy_until: SimTime::ZERO,
            last_resync: SimTime::ZERO,
            counters: DecoratorCounters::default(),
        }
    }

    /// The finalizer this controller owns on its parents.
    pub fn finalizer(&self) -> String {
        format!("metacontroller.io/decorator-{}", self.config.name)
    }

    /// Parents waiting for a webhook slot (diagnostics).
    pub fn backlog(&self) -> usize {
        self.queue.len()
    }

    fn in_scope(&self, obj: &ApiObject) -> bool {
        obj.kind == self.config.parent_kind
            && self
                .config
                .annotation_filter
                .as_ref()
                .is_none_or(|key| obj.meta.annotations.contains_key(key))
    }

    fn enqueue(&mut self, key: (String, String), at: SimTime) {
        if self.queued.insert(key.clone()) {
            self.queue.push_back((key, at));
        }
    }

    /// One reconcile pass at `now`. The webhook server is serial: a call
    /// for an item enqueued at `t` completes at
    /// `max(busy_until, t) + webhook_latency`, and its effects (children
    /// created/deleted) become visible only once that completion time has
    /// passed.
    pub fn poll(&mut self, api: &mut ApiServer, now: SimTime) {
        // Ingest events.
        let (events, rv) = api.events_since(self.last_rv);
        self.last_rv = rv;
        for ev in &events {
            if self.in_scope(&ev.object) {
                let key = (ev.object.meta.namespace.clone(), ev.object.meta.name.clone());
                match ev.kind {
                    WatchType::Deleted => {
                        self.parent_by_uid.remove(&ev.object.meta.uid);
                        self.queued.remove(&key);
                    }
                    _ => {
                        self.parent_by_uid.insert(ev.object.meta.uid, key.clone());
                        self.enqueue(key, now);
                    }
                }
            } else if ev.object.kind == self.config.child_kind {
                // Route child events to their parent.
                for uid in &ev.object.meta.owner_uids {
                    if let Some(key) = self.parent_by_uid.get(uid).cloned() {
                        self.enqueue(key, now);
                    }
                }
            }
        }

        // Periodic resync: re-enqueue all known parents.
        if let Some(period) = self.config.resync_period {
            if now >= self.last_resync + period {
                self.last_resync = now;
                let keys: Vec<(String, String)> = self.parent_by_uid.values().cloned().collect();
                for key in keys {
                    self.enqueue(key, now);
                }
            }
        }

        // Serve the queue under the serial webhook budget.
        while let Some((key, enq)) = self.queue.front().cloned() {
            let finish = self.busy_until.max(enq) + self.config.webhook_latency;
            if finish > now {
                break;
            }
            self.queue.pop_front();
            self.queued.remove(&key);
            self.busy_until = finish;
            self.reconcile(api, &key, now);
        }
    }

    fn reconcile(&mut self, api: &mut ApiServer, key: &(String, String), now: SimTime) {
        let Some(parent) = api.get(&self.config.parent_kind, &key.0, &key.1).cloned() else {
            return;
        };
        if !self.in_scope(&parent) {
            return;
        }
        let finalizer = self.finalizer();

        // Ensure our finalizer on live parents.
        if !parent.meta.deletion_requested && !parent.meta.finalizers.contains(&finalizer) {
            let _ = api.mutate(&parent.kind, &key.0, &key.1, |o| {
                o.meta.finalizers.push(finalizer.clone());
            });
        }

        // Observed children owned by this parent.
        let children: Vec<ApiObject> = api
            .list_namespaced(&self.config.child_kind, &key.0)
            .into_iter()
            .filter(|c| c.meta.owner_uids.contains(&parent.meta.uid))
            .cloned()
            .collect();

        // Call the webhook (the serial latency was charged by `poll`).
        let (desired, finalized) = if parent.meta.deletion_requested {
            self.counters.finalize_calls += 1;
            let resp = self.hooks.finalize(&parent, &children, now);
            (resp.desired_children, Some(resp.finalized))
        } else {
            self.counters.sync_calls += 1;
            let resp = self.hooks.sync(&parent, &children, now);
            (resp.desired_children, None)
        };

        // Apply semantics.
        let desired_names: BTreeSet<String> =
            desired.iter().map(|c| c.meta.name.clone()).collect();
        for child in &children {
            if !desired_names.contains(&child.meta.name) {
                let _ = api.delete(&self.config.child_kind, &key.0, &child.meta.name);
                self.counters.children_deleted += 1;
            }
        }
        for mut child in desired {
            child.kind = self.config.child_kind.clone();
            child.meta.namespace = key.0.clone();
            child.meta.owner_uids = vec![parent.meta.uid];
            let existing = api
                .get(&self.config.child_kind, &key.0, &child.meta.name)
                .cloned();
            match existing {
                None => {
                    if api.create(child, now).is_ok() {
                        self.counters.children_created += 1;
                    }
                }
                Some(cur) => {
                    if cur.spec != child.spec {
                        let _ = api.mutate(&self.config.child_kind, &key.0, &cur.meta.name, |o| {
                            o.spec = child.spec.clone();
                        });
                    }
                }
            }
        }

        if finalized == Some(true) {
            let _ = api.remove_finalizer(&parent.kind, &key.0, &key.1, &finalizer);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    /// Hooks that decorate each parent with one child named after it and
    /// finalize immediately.
    struct OneChild {
        finalize_after_calls: u64,
        finalize_seen: u64,
    }

    impl DecoratorHooks for OneChild {
        fn sync(&mut self, parent: &ApiObject, _ch: &[ApiObject], _now: SimTime) -> SyncResponse {
            SyncResponse {
                desired_children: vec![ApiObject::new(
                    "Vni",
                    &parent.meta.namespace,
                    &format!("vni-{}", parent.meta.name),
                    json!({"vni": 1024}),
                )],
            }
        }
        fn finalize(
            &mut self,
            _parent: &ApiObject,
            _ch: &[ApiObject],
            _now: SimTime,
        ) -> FinalizeResponse {
            self.finalize_seen += 1;
            FinalizeResponse {
                desired_children: vec![],
                finalized: self.finalize_seen >= self.finalize_after_calls,
            }
        }
    }

    fn config() -> DecoratorConfig {
        DecoratorConfig {
            name: "vni".into(),
            parent_kind: "Job".into(),
            annotation_filter: Some("vni".into()),
            child_kind: "Vni".into(),
            webhook_latency: SimDur::from_millis(10),
            resync_period: None,
        }
    }

    fn annotated_job(name: &str) -> ApiObject {
        let mut job = ApiObject::new("Job", "ns", name, json!({}));
        job.meta.annotations.insert("vni".into(), "true".into());
        job
    }

    #[test]
    fn decorates_matching_parents_with_children() {
        let mut api = ApiServer::default();
        let mut mc =
            Metacontroller::new(config(), OneChild { finalize_after_calls: 1, finalize_seen: 0 });
        api.create(annotated_job("j1"), SimTime::ZERO).unwrap();
        api.create(ApiObject::new("Job", "ns", "plain", json!({})), SimTime::ZERO).unwrap();
        mc.poll(&mut api, SimTime::ZERO);
        mc.poll(&mut api, SimTime::from_nanos(20_000_000)); // webhook completed
        assert!(api.get("Vni", "ns", "vni-j1").is_some());
        assert!(api.get("Vni", "ns", "vni-plain").is_none(), "filter by annotation");
        let job = api.get("Job", "ns", "j1").unwrap();
        assert!(job.meta.finalizers.contains(&mc.finalizer()));
        assert_eq!(mc.counters.sync_calls, 1);
        // Child carries owner reference.
        let child = api.get("Vni", "ns", "vni-j1").unwrap();
        assert_eq!(child.meta.owner_uids, vec![job.meta.uid]);
    }

    #[test]
    fn webhook_latency_serializes_processing() {
        let mut api = ApiServer::default();
        let mut mc =
            Metacontroller::new(config(), OneChild { finalize_after_calls: 1, finalize_seen: 0 });
        for i in 0..10 {
            api.create(annotated_job(&format!("j{i}")), SimTime::ZERO).unwrap();
        }
        // At t=0 no call has *completed* yet (10 ms latency each).
        mc.poll(&mut api, SimTime::ZERO);
        assert_eq!(mc.counters.sync_calls, 0);
        assert_eq!(mc.backlog(), 10);
        // By 50 ms five calls have completed (at 10, 20, ..., 50 ms).
        mc.poll(&mut api, SimTime::from_nanos(50_000_000));
        assert_eq!(mc.counters.sync_calls, 5);
        // Far in the future the queue drains.
        mc.poll(&mut api, SimTime::from_nanos(1_000_000_000));
        assert_eq!(mc.counters.sync_calls, 10);
        assert_eq!(api.list("Vni").len(), 10);
    }

    #[test]
    fn finalize_runs_until_done_then_releases() {
        let mut api = ApiServer::default();
        let mut mc =
            Metacontroller::new(config(), OneChild { finalize_after_calls: 2, finalize_seen: 0 });
        api.create(annotated_job("j1"), SimTime::ZERO).unwrap();
        let mut t = 0u64;
        let mut tick = |mc: &mut Metacontroller<OneChild>, api: &mut ApiServer, until: u64| {
            while t <= until {
                mc.poll(api, SimTime::from_nanos(t * 1_000_000));
                t += 20;
            }
        };
        tick(&mut mc, &mut api, 100);
        assert!(api.get("Vni", "ns", "vni-j1").is_some());
        api.delete("Job", "ns", "j1").unwrap();
        // First finalize call completes but reports not-finalized.
        tick(&mut mc, &mut api, 160);
        assert_eq!(mc.counters.finalize_calls, 1);
        assert!(api.get("Job", "ns", "j1").is_some(), "finalizer still held");
        assert!(api.get("Vni", "ns", "vni-j1").is_none(), "children removed");
        // The child-deletion event re-enqueues; the second call finalizes.
        tick(&mut mc, &mut api, 400);
        assert!(api.get("Job", "ns", "j1").is_none(), "reaped after finalize");
        assert_eq!(mc.counters.finalize_calls, 2);
    }

    #[test]
    fn sync_is_idempotent_under_repolls() {
        let mut api = ApiServer::default();
        let mut mc =
            Metacontroller::new(config(), OneChild { finalize_after_calls: 1, finalize_seen: 0 });
        api.create(annotated_job("j1"), SimTime::ZERO).unwrap();
        for tick in 0..20u64 {
            mc.poll(&mut api, SimTime::from_nanos(tick * 20_000_000));
        }
        assert_eq!(api.list("Vni").len(), 1, "apply semantics: one child");
        assert_eq!(mc.counters.children_created, 1);
    }

    #[test]
    fn undesired_children_are_deleted() {
        struct NoChildren;
        impl DecoratorHooks for NoChildren {
            fn sync(&mut self, _p: &ApiObject, _c: &[ApiObject], _n: SimTime) -> SyncResponse {
                SyncResponse::default()
            }
            fn finalize(
                &mut self,
                _p: &ApiObject,
                _c: &[ApiObject],
                _n: SimTime,
            ) -> FinalizeResponse {
                FinalizeResponse { desired_children: vec![], finalized: true }
            }
        }
        let mut api = ApiServer::default();
        let mut mc = Metacontroller::new(config(), OneChild { finalize_after_calls: 1, finalize_seen: 0 });
        api.create(annotated_job("j1"), SimTime::ZERO).unwrap();
        mc.poll(&mut api, SimTime::ZERO);
        mc.poll(&mut api, SimTime::from_nanos(20_000_000));
        assert!(api.get("Vni", "ns", "vni-j1").is_some());
        // Switch to hooks that want no children: the child is removed.
        let mut mc2 = Metacontroller::new(config(), NoChildren);
        // mc2 must learn the uid mapping from the event stream.
        mc2.poll(&mut api, SimTime::from_nanos(30_000_000));
        mc2.poll(&mut api, SimTime::from_nanos(60_000_000));
        assert!(api.get("Vni", "ns", "vni-j1").is_none());
        assert_eq!(mc2.counters.children_deleted, 1);
    }
}
