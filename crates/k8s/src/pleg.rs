//! PLEG: a Pod Lifecycle Event Generator-style cache over the watch
//! stream, so control-plane status reads stop scanning pods.
//!
//! The real kubelet's PLEG relists the container runtime, diffs pod
//! states, and publishes lifecycle events so status consumers never
//! rescan. Here the API server's watch log *is* the relist: [`Pleg`]
//! consumes `events_since` from its own cursor and maintains
//!
//! * per-phase pod counts — O(1) reads regardless of pod count,
//! * per-group (job or service, keyed by the pod's `job_name`) ready
//!   sets and earliest start instants — reads proportional to the
//!   group, never to the cluster.
//!
//! The contract pinned by the proptest oracle in
//! `tests/service_props.rs`: after any event sequence, a PLEG snapshot
//! is byte-identical to a full pod scan ([`Pleg::scan`]).

use std::collections::{BTreeMap, BTreeSet};

use serde::Serialize;

use crate::api::{ApiObject, ApiServer, WatchType};
use crate::objects::{kinds, pod_phase, spec_of, status_of, PodPhase, PodSpec, PodStatus};

/// Cached state of one live pod (what the watch stream last showed).
#[derive(Debug, Clone, PartialEq, Eq)]
struct PodRecord {
    phase: PodPhase,
    /// The pod's manager (`spec.job_name`), shared by jobs and services.
    group: Option<String>,
    started_at_ns: Option<u64>,
    deletion_requested: bool,
}

/// Cached state of one pod group (all pods naming the same manager).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct GroupState {
    /// Live member pod names (any phase, including terminating).
    members: BTreeSet<String>,
    /// Ready member names: Running and not terminating.
    ready: BTreeSet<String>,
    /// Start instants of members that have started.
    started: BTreeMap<String, u64>,
}

/// A serializable summary of everything the cache answers; the proptest
/// oracle compares this byte-for-byte against [`Pleg::scan`].
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize)]
pub struct PlegSnapshot {
    /// Pod counts by phase: Pending, Running, Succeeded, Failed.
    pub phase_counts: [u64; 4],
    /// Per group (`"ns/name"`): sorted ready pod names and the earliest
    /// start instant over live members.
    pub groups: BTreeMap<String, GroupSnapshot>,
}

/// Snapshot of one group.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize)]
pub struct GroupSnapshot {
    /// Ready pod names (Running, not terminating), sorted.
    pub ready: Vec<String>,
    /// Earliest `started_at_ns` over live member pods.
    pub started_at_ns: Option<u64>,
}

fn phase_idx(phase: PodPhase) -> usize {
    match phase {
        PodPhase::Pending => 0,
        PodPhase::Running => 1,
        PodPhase::Succeeded => 2,
        PodPhase::Failed => 3,
    }
}

/// The pod-lifecycle cache. One instance per cluster, synced once per
/// control-plane tick.
#[derive(Debug, Default)]
pub struct Pleg {
    last_rv: u64,
    pods: BTreeMap<(String, String), PodRecord>,
    phase_counts: [u64; 4],
    groups: BTreeMap<(String, String), GroupState>,
    /// Watch events consumed (diagnostics).
    pub events_observed: u64,
}

impl Pleg {
    /// Fresh, empty cache.
    pub fn new() -> Self {
        Pleg::default()
    }

    /// Ingest every watch event since the last sync.
    pub fn sync(&mut self, api: &ApiServer) {
        let (events, rv) = api.events_since(self.last_rv);
        self.last_rv = rv;
        for ev in events {
            if ev.object.kind != kinds::POD {
                continue;
            }
            self.events_observed += 1;
            let key = (ev.object.meta.namespace.clone(), ev.object.meta.name.clone());
            match ev.kind {
                WatchType::Added | WatchType::Modified => {
                    let record = record_of(&ev.object);
                    let old = self.pods.insert(key.clone(), record.clone());
                    self.apply(&key, old.as_ref(), Some(&record));
                }
                WatchType::Deleted => {
                    let old = self.pods.remove(&key);
                    self.apply(&key, old.as_ref(), None);
                }
            }
        }
    }

    /// Retire `old`'s contribution and add `new`'s.
    fn apply(&mut self, key: &(String, String), old: Option<&PodRecord>, new: Option<&PodRecord>) {
        if let Some(old) = old {
            self.phase_counts[phase_idx(old.phase)] -= 1;
            if let Some(group) = &old.group {
                let gkey = (key.0.clone(), group.clone());
                if let Some(g) = self.groups.get_mut(&gkey) {
                    g.members.remove(&key.1);
                    g.ready.remove(&key.1);
                    g.started.remove(&key.1);
                    if g.members.is_empty() {
                        self.groups.remove(&gkey);
                    }
                }
            }
        }
        if let Some(new) = new {
            self.phase_counts[phase_idx(new.phase)] += 1;
            if let Some(group) = &new.group {
                let gkey = (key.0.clone(), group.clone());
                let g = self.groups.entry(gkey).or_default();
                g.members.insert(key.1.clone());
                if new.phase == PodPhase::Running && !new.deletion_requested {
                    g.ready.insert(key.1.clone());
                }
                if let Some(t) = new.started_at_ns {
                    g.started.insert(key.1.clone(), t);
                }
            }
        }
    }

    /// Pods currently in `phase` — O(1), independent of pod count.
    pub fn count(&self, phase: PodPhase) -> u64 {
        self.phase_counts[phase_idx(phase)]
    }

    /// Total cached pods.
    pub fn pod_count(&self) -> u64 {
        self.phase_counts.iter().sum()
    }

    /// Ready pod names of a group (Running, not terminating), sorted.
    /// Empty when the group has no ready pods.
    pub fn ready(&self, namespace: &str, group: &str) -> Vec<String> {
        self.groups
            .get(&(namespace.to_string(), group.to_string()))
            .map(|g| g.ready.iter().cloned().collect())
            .unwrap_or_default()
    }

    /// Number of ready pods in a group.
    pub fn ready_count(&self, namespace: &str, group: &str) -> usize {
        self.groups
            .get(&(namespace.to_string(), group.to_string()))
            .map_or(0, |g| g.ready.len())
    }

    /// Earliest start instant over a group's live pods (the job-plane
    /// `job_started_at` read) — proportional to the group, not the
    /// cluster.
    pub fn group_started_at(&self, namespace: &str, group: &str) -> Option<u64> {
        self.groups
            .get(&(namespace.to_string(), group.to_string()))
            .and_then(|g| g.started.values().min().copied())
    }

    /// Serializable summary of the whole cache (test oracle; O(pods)).
    pub fn snapshot(&self) -> PlegSnapshot {
        let mut snap = PlegSnapshot { phase_counts: self.phase_counts, ..Default::default() };
        for ((ns, group), g) in &self.groups {
            snap.groups.insert(
                format!("{ns}/{group}"),
                GroupSnapshot {
                    ready: g.ready.iter().cloned().collect(),
                    started_at_ns: g.started.values().min().copied(),
                },
            );
        }
        snap
    }

    /// The same summary computed by a full pod scan — the pre-PLEG read
    /// path, kept as the equivalence oracle (and as the slow half of
    /// the status-read benchmark).
    pub fn scan(api: &ApiServer) -> PlegSnapshot {
        let mut snap = PlegSnapshot::default();
        let mut groups: BTreeMap<String, GroupState> = BTreeMap::new();
        for pod in api.list(kinds::POD) {
            let record = record_of(pod);
            snap.phase_counts[phase_idx(record.phase)] += 1;
            if let Some(group) = &record.group {
                let g = groups.entry(format!("{}/{group}", pod.meta.namespace)).or_default();
                g.members.insert(pod.meta.name.clone());
                if record.phase == PodPhase::Running && !record.deletion_requested {
                    g.ready.insert(pod.meta.name.clone());
                }
                if let Some(t) = record.started_at_ns {
                    g.started.insert(pod.meta.name.clone(), t);
                }
            }
        }
        for (key, g) in groups {
            snap.groups.insert(
                key,
                GroupSnapshot {
                    ready: g.ready.iter().cloned().collect(),
                    started_at_ns: g.started.values().min().copied(),
                },
            );
        }
        snap
    }
}

fn record_of(pod: &ApiObject) -> PodRecord {
    let spec: PodSpec = spec_of(pod);
    let status: Option<PodStatus> = status_of(pod);
    PodRecord {
        phase: pod_phase(pod),
        group: spec.job_name,
        started_at_ns: status.and_then(|s| s.started_at_ns),
        deletion_requested: pod.meta.deletion_requested,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;
    use shs_des::SimTime;

    fn pod(ns: &str, name: &str, group: Option<&str>) -> ApiObject {
        ApiObject::new(
            kinds::POD,
            ns,
            name,
            json!({"image": "x", "job_name": group}),
        )
    }

    fn assert_matches_scan(pleg: &Pleg, api: &ApiServer) {
        let cached = serde_json::to_string(&pleg.snapshot()).unwrap();
        let scanned = serde_json::to_string(&Pleg::scan(api)).unwrap();
        assert_eq!(cached, scanned);
    }

    #[test]
    fn tracks_phases_and_groups_incrementally() {
        let mut api = ApiServer::default();
        let mut pleg = Pleg::new();
        api.create(pod("ns", "a-0", Some("a")), SimTime::ZERO).unwrap();
        api.create(pod("ns", "a-1", Some("a")), SimTime::ZERO).unwrap();
        api.create(pod("ns", "solo", None), SimTime::ZERO).unwrap();
        pleg.sync(&api);
        assert_eq!(pleg.count(PodPhase::Pending), 3);
        assert_matches_scan(&pleg, &api);

        api.mutate(kinds::POD, "ns", "a-0", |o| {
            o.status = json!({"phase": "Running", "started_at_ns": 50});
        })
        .unwrap();
        api.mutate(kinds::POD, "ns", "a-1", |o| {
            o.status = json!({"phase": "Running", "started_at_ns": 20});
        })
        .unwrap();
        pleg.sync(&api);
        assert_eq!(pleg.count(PodPhase::Running), 2);
        assert_eq!(pleg.ready("ns", "a"), vec!["a-0", "a-1"]);
        assert_eq!(pleg.group_started_at("ns", "a"), Some(20));
        assert_matches_scan(&pleg, &api);
    }

    #[test]
    fn terminating_pods_leave_the_ready_set_but_not_the_counts() {
        let mut api = ApiServer::default();
        let mut pleg = Pleg::new();
        let mut p = pod("ns", "a-0", Some("a"));
        p.meta.finalizers.push("hold".into());
        api.create(p, SimTime::ZERO).unwrap();
        api.mutate(kinds::POD, "ns", "a-0", |o| {
            o.status = json!({"phase": "Running", "started_at_ns": 9});
        })
        .unwrap();
        pleg.sync(&api);
        assert_eq!(pleg.ready_count("ns", "a"), 1);

        api.delete(kinds::POD, "ns", "a-0").unwrap();
        pleg.sync(&api);
        assert_eq!(pleg.ready_count("ns", "a"), 0, "terminating is not ready");
        assert_eq!(pleg.count(PodPhase::Running), 1, "still counted until reaped");
        assert_eq!(pleg.group_started_at("ns", "a"), Some(9));
        assert_matches_scan(&pleg, &api);

        api.remove_finalizer(kinds::POD, "ns", "a-0", "hold").unwrap();
        pleg.sync(&api);
        assert_eq!(pleg.pod_count(), 0);
        assert!(pleg.ready("ns", "a").is_empty());
        assert_matches_scan(&pleg, &api);
    }

    #[test]
    fn deleting_the_min_start_recomputes_the_group_min() {
        let mut api = ApiServer::default();
        let mut pleg = Pleg::new();
        for (name, t) in [("a-0", 30u64), ("a-1", 10), ("a-2", 20)] {
            api.create(pod("ns", name, Some("a")), SimTime::ZERO).unwrap();
            api.mutate(kinds::POD, "ns", name, |o| {
                o.status = json!({"phase": "Running", "started_at_ns": t});
            })
            .unwrap();
        }
        pleg.sync(&api);
        assert_eq!(pleg.group_started_at("ns", "a"), Some(10));
        api.delete(kinds::POD, "ns", "a-1").unwrap();
        pleg.sync(&api);
        assert_eq!(pleg.group_started_at("ns", "a"), Some(20));
        assert_matches_scan(&pleg, &api);
    }

    #[test]
    fn late_sync_catches_up_from_the_cursor() {
        let mut api = ApiServer::default();
        let mut pleg = Pleg::new();
        // A burst of unrelated churn before the first sync.
        for i in 0..10 {
            api.create(pod("ns", &format!("p-{i}"), Some("g")), SimTime::ZERO).unwrap();
        }
        for i in 0..5 {
            api.delete(kinds::POD, "ns", &format!("p-{i}")).unwrap();
        }
        pleg.sync(&api);
        assert_eq!(pleg.pod_count(), 5);
        assert_matches_scan(&pleg, &api);
        // And nothing double-counts on an idle sync.
        pleg.sync(&api);
        assert_matches_scan(&pleg, &api);
    }
}
