//! Typed views over the dynamic API objects: Jobs, Pods, Nodes.

use serde::{Deserialize, Serialize};

use crate::api::ApiObject;

/// The annotation key carrying VNI requests (paper §III-C1): `vni: true`
/// for a Per-Resource VNI, `vni: <claim-name>` to redeem a VNI Claim.
pub const VNI_ANNOTATION: &str = "vni";

/// Well-known kinds.
pub mod kinds {
    /// Batch job.
    pub const JOB: &str = "Job";
    /// Pod.
    pub const POD: &str = "Pod";
    /// Cluster node.
    pub const NODE: &str = "Node";
    /// The VNI custom resource (paper CRD).
    pub const VNI: &str = "Vni";
    /// The VNI Claim custom resource (paper CRD).
    pub const VNI_CLAIM: &str = "VniClaim";
    /// Long-running replicated service (the serving plane).
    pub const SERVICE: &str = "Service";
}

/// Pod template inside a job spec.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PodTemplate {
    /// Image reference.
    pub image: String,
    /// Workload runtime in milliseconds (`None` = runs until killed).
    #[serde(default)]
    pub run_ms: Option<u64>,
    /// Base host uid for a user-namespaced pod (`None` = host userns).
    #[serde(default)]
    pub userns_base: Option<u32>,
    /// Node selector: when set, the scheduler only considers these
    /// nodes (topology-aware rank placement — pinning a job's ranks
    /// into one dragonfly group, or deliberately across groups).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub node_selector: Option<Vec<String>>,
}

/// Job spec.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Number of pods to run in parallel.
    pub parallelism: u32,
    /// Pod template.
    pub template: PodTemplate,
    /// Delete the job this many seconds after it finishes (the paper's
    /// admission tests use 0: "Jobs are configured to be deleted
    /// immediately after completion", §IV-B).
    #[serde(default)]
    pub ttl_seconds_after_finished: Option<u64>,
}

/// Pod spec.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PodSpec {
    /// Owning job name (if job-managed).
    #[serde(default)]
    pub job_name: Option<String>,
    /// Image reference.
    pub image: String,
    /// Workload runtime in ms.
    #[serde(default)]
    pub run_ms: Option<u64>,
    /// Userns base.
    #[serde(default)]
    pub userns_base: Option<u32>,
    /// Node binding (set by the scheduler).
    #[serde(default)]
    pub node_name: Option<String>,
    /// Topology-spread group key: pods sharing a key are spread across
    /// nodes (the paper uses topology spread constraints to place the two
    /// OSU ranks on two nodes, §IV-A).
    #[serde(default)]
    pub spread_key: Option<String>,
    /// Node selector inherited from the pod template: when set, the
    /// scheduler binds only to one of these nodes.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub node_selector: Option<Vec<String>>,
    /// Termination grace period in seconds. The CXI CNI plugin enforces
    /// ≤ 30 s for VNI-requesting pods (§III-C1).
    #[serde(default = "default_grace")]
    pub termination_grace_period_secs: u64,
}

fn default_grace() -> u64 {
    30
}

/// Pod lifecycle phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PodPhase {
    /// Created, not yet started on a node.
    Pending,
    /// Containers running.
    Running,
    /// Workload exited successfully.
    Succeeded,
    /// Startup or workload failed.
    Failed,
}

/// Pod status.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PodStatus {
    /// Phase.
    pub phase: PodPhase,
    /// Instant the workload started (ns since sim start).
    #[serde(default)]
    pub started_at_ns: Option<u64>,
    /// Failure message, if failed.
    #[serde(default)]
    pub message: Option<String>,
}

/// Job status.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct JobStatus {
    /// Pods that reached Succeeded.
    pub succeeded: u32,
    /// Whether the job completed.
    pub complete: bool,
    /// Completion instant (ns since sim start).
    #[serde(default)]
    pub completed_at_ns: Option<u64>,
}

/// Build a Job object.
pub fn make_job(namespace: &str, name: &str, spec: &JobSpec) -> ApiObject {
    ApiObject::new(
        kinds::JOB,
        namespace,
        name,
        serde_json::to_value(spec).expect("JobSpec serializes"),
    )
}

/// Build a Node object.
pub fn make_node(name: &str, max_pods: u32) -> ApiObject {
    let mut node = ApiObject::new(kinds::NODE, "", name, serde_json::json!({"maxPods": max_pods}));
    node.status = serde_json::json!({"ready": true});
    node
}

/// Decode a typed spec from an object; panics on schema mismatch (which
/// is a programming error in this closed system).
pub fn spec_of<T: serde::de::DeserializeOwned>(obj: &ApiObject) -> T {
    serde_json::from_value(obj.spec.clone())
        .unwrap_or_else(|e| panic!("bad {} spec for {}: {e}", obj.kind, obj.full_name()))
}

/// Decode a typed status; `None` when the status is null/absent.
pub fn status_of<T: serde::de::DeserializeOwned>(obj: &ApiObject) -> Option<T> {
    if obj.status.is_null() {
        None
    } else {
        serde_json::from_value(obj.status.clone()).ok()
    }
}

/// Pod phase accessor (Pending when unset).
pub fn pod_phase(pod: &ApiObject) -> PodPhase {
    status_of::<PodStatus>(pod).map_or(PodPhase::Pending, |s| s.phase)
}

#[cfg(test)]
mod tests {
    use super::*;
    use shs_des::SimTime;

    #[test]
    fn job_roundtrips_through_spec_json() {
        let spec = JobSpec {
            parallelism: 2,
            template: PodTemplate {
                image: "alpine".into(),
                run_ms: Some(10),
                userns_base: None,
                node_selector: None,
            },
            ttl_seconds_after_finished: Some(0),
        };
        let obj = make_job("tenant-a", "bench", &spec);
        let back: JobSpec = spec_of(&obj);
        assert_eq!(back, spec);
        assert_eq!(obj.kind, kinds::JOB);
    }

    #[test]
    fn pod_phase_defaults_to_pending() {
        let pod = ApiObject::new(kinds::POD, "ns", "p", serde_json::json!({"image": "x"}));
        assert_eq!(pod_phase(&pod), PodPhase::Pending);
    }

    #[test]
    fn pod_status_roundtrip() {
        let mut api = crate::api::ApiServer::default();
        let pod = ApiObject::new(
            kinds::POD,
            "ns",
            "p",
            serde_json::to_value(PodSpec {
                job_name: None,
                image: "alpine".into(),
                run_ms: Some(5),
                userns_base: None,
                node_name: None,
                spread_key: None,
                node_selector: None,
                termination_grace_period_secs: 30,
            })
            .unwrap(),
        );
        api.create(pod, SimTime::ZERO).unwrap();
        api.mutate(kinds::POD, "ns", "p", |o| {
            o.status = serde_json::to_value(PodStatus {
                phase: PodPhase::Running,
                started_at_ns: Some(123),
                message: None,
            })
            .unwrap();
        })
        .unwrap();
        let pod = api.get(kinds::POD, "ns", "p").unwrap();
        assert_eq!(pod_phase(pod), PodPhase::Running);
        let st: PodStatus = status_of(pod).unwrap();
        assert_eq!(st.started_at_ns, Some(123));
    }

    #[test]
    fn default_grace_period_is_thirty_seconds() {
        let spec: PodSpec =
            serde_json::from_value(serde_json::json!({"image": "alpine"})).unwrap();
        assert_eq!(spec.termination_grace_period_secs, 30);
    }
}
