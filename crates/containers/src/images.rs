//! Container images and the node-local image store.
//!
//! The paper pulls `alpine` "from a locally deployed harbor container
//! registry to minimize image pull time" (§IV-B); we model exactly that:
//! a first pull pays a registry round trip proportional to size, later
//! pulls hit the local cache.

use std::collections::{BTreeMap, BTreeSet};

use shs_des::SimDur;

/// An image descriptor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Image {
    /// Reference, e.g. `registry.local/library/alpine:3.20`.
    pub reference: String,
    /// Compressed size in bytes (drives pull time).
    pub size_bytes: u64,
}

impl Image {
    /// The minimal image the paper's admission experiments launch.
    pub fn alpine() -> Image {
        Image { reference: "registry.local/library/alpine:3.20".into(), size_bytes: 3_500_000 }
    }
}

/// Image-store timing parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImageStoreParams {
    /// Registry round-trip + unpack fixed cost on a cold pull.
    pub pull_base: SimDur,
    /// Additional pull time per MiB on a cold pull (local registry link).
    pub pull_per_mib: SimDur,
    /// Digest check against the cache on a warm pull.
    pub cache_check: SimDur,
}

impl Default for ImageStoreParams {
    fn default() -> Self {
        ImageStoreParams {
            pull_base: SimDur::from_millis(350),
            pull_per_mib: SimDur::from_millis(40),
            cache_check: SimDur::from_millis(30),
        }
    }
}

/// Node-local image store.
#[derive(Debug)]
pub struct ImageStore {
    params: ImageStoreParams,
    known: BTreeMap<String, Image>,
    cached: BTreeSet<String>,
}

impl Default for ImageStore {
    fn default() -> Self {
        ImageStore::new(ImageStoreParams::default())
    }
}

impl ImageStore {
    /// Store with given parameters.
    pub fn new(params: ImageStoreParams) -> Self {
        ImageStore { params, known: BTreeMap::new(), cached: BTreeSet::new() }
    }

    /// Register an image in the (local harbor) registry.
    pub fn publish(&mut self, image: Image) {
        self.known.insert(image.reference.clone(), image);
    }

    /// Ensure an image is locally available; returns the time the pull
    /// (or cache check) takes, or `None` if the reference is unknown.
    pub fn ensure(&mut self, reference: &str) -> Option<SimDur> {
        let img = self.known.get(reference)?;
        if self.cached.contains(reference) {
            return Some(self.params.cache_check);
        }
        let mib = img.size_bytes.div_ceil(1 << 20);
        let cost = self.params.pull_base + self.params.pull_per_mib * mib;
        self.cached.insert(reference.to_string());
        Some(cost)
    }

    /// Whether an image is in the local cache.
    pub fn is_cached(&self, reference: &str) -> bool {
        self.cached.contains(reference)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_pull_then_warm_cache() {
        let mut store = ImageStore::default();
        store.publish(Image::alpine());
        let alpine = Image::alpine().reference;
        assert!(!store.is_cached(&alpine));
        let cold = store.ensure(&alpine).unwrap();
        assert!(store.is_cached(&alpine));
        let warm = store.ensure(&alpine).unwrap();
        assert!(cold > warm, "cold {cold} vs warm {warm}");
        assert_eq!(warm, SimDur::from_millis(30));
    }

    #[test]
    fn unknown_reference_fails() {
        let mut store = ImageStore::default();
        assert!(store.ensure("registry.local/nope:latest").is_none());
    }

    #[test]
    fn pull_time_scales_with_size() {
        let mut store = ImageStore::default();
        store.publish(Image { reference: "small".into(), size_bytes: 1 << 20 });
        store.publish(Image { reference: "big".into(), size_bytes: 100 << 20 });
        let s = store.ensure("small").unwrap();
        let b = store.ensure("big").unwrap();
        assert!(b > s);
    }
}
