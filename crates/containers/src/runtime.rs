//! The container runtime: sandboxes (pause process + fresh network
//! namespace, optionally a user namespace) and container lifecycle.
//!
//! CNI invocation is *not* performed here — the kubelet drives the CNI
//! chain between sandbox creation and container start, exactly as in the
//! CRI flow the paper's plugin hooks into (§III-B).

use std::collections::BTreeMap;

use shs_des::SimDur;
use shs_oslinux::{Gid, Host, IdMapEntry, NetNsId, OsError, Pid, Uid};

use crate::images::{Image, ImageStore};

/// Runtime timing parameters (pod-start pipeline costs; these dominate
/// the admission delays of Figs. 9-12 alongside the control plane).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RuntimeParams {
    /// Sandbox (pause container + namespaces) creation.
    pub sandbox_create: SimDur,
    /// Container creation (rootfs snapshot, spec generation).
    pub container_create: SimDur,
    /// Container process start (shim, exec).
    pub container_start: SimDur,
    /// Sandbox teardown.
    pub sandbox_teardown: SimDur,
}

impl Default for RuntimeParams {
    fn default() -> Self {
        RuntimeParams {
            sandbox_create: SimDur::from_millis(220),
            container_create: SimDur::from_millis(90),
            container_start: SimDur::from_millis(120),
            sandbox_teardown: SimDur::from_millis(110),
        }
    }
}

/// Runtime errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// Sandbox id already exists.
    SandboxExists(String),
    /// Sandbox id unknown.
    NoSuchSandbox(String),
    /// Image reference unknown to the registry.
    UnknownImage(String),
    /// Kernel-level failure.
    Os(OsError),
}

impl From<OsError> for RuntimeError {
    fn from(e: OsError) -> Self {
        RuntimeError::Os(e)
    }
}

impl core::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            RuntimeError::SandboxExists(id) => write!(f, "sandbox {id} already exists"),
            RuntimeError::NoSuchSandbox(id) => write!(f, "no such sandbox {id}"),
            RuntimeError::UnknownImage(r) => write!(f, "unknown image {r}"),
            RuntimeError::Os(e) => write!(f, "os: {e}"),
        }
    }
}

impl std::error::Error for RuntimeError {}

/// User-namespace request for a sandbox.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UserNsMode {
    /// Share the host user namespace (Kubernetes default: all containers
    /// run as one host user — the identity problem of §III).
    Host,
    /// New user namespace with a 64 Ki id map starting at the given host
    /// id ("rootless" pods).
    Mapped {
        /// First host uid/gid of the 64 Ki window.
        base: u32,
    },
}

/// A container inside a sandbox.
#[derive(Debug, Clone)]
pub struct Container {
    /// Container name.
    pub name: String,
    /// Image reference.
    pub image: String,
    /// Main process.
    pub pid: Pid,
    /// How long the workload runs before exiting on its own (`None` =
    /// runs until killed).
    pub run_duration: Option<SimDur>,
}

/// A pod sandbox.
#[derive(Debug)]
pub struct Sandbox {
    /// Sandbox id (CRI id; also the CNI `container_id`).
    pub id: String,
    /// The pause process anchoring the namespaces.
    pub pause_pid: Pid,
    /// The sandbox's network namespace — the identity the paper's
    /// extended driver authenticates (§III-A).
    pub netns: NetNsId,
    /// Containers running inside.
    pub containers: Vec<Container>,
}

/// The runtime.
#[derive(Debug)]
pub struct ContainerRuntime {
    params: RuntimeParams,
    /// The node-local image store.
    pub images: ImageStore,
    sandboxes: BTreeMap<String, Sandbox>,
}

impl Default for ContainerRuntime {
    fn default() -> Self {
        ContainerRuntime::new(RuntimeParams::default(), ImageStore::default())
    }
}

impl ContainerRuntime {
    /// Runtime with explicit parameters and image store.
    pub fn new(params: RuntimeParams, images: ImageStore) -> Self {
        ContainerRuntime { params, images, sandboxes: BTreeMap::new() }
    }

    /// Timing parameters.
    pub fn params(&self) -> &RuntimeParams {
        &self.params
    }

    /// Create a sandbox: spawn the pause process, give it a fresh network
    /// namespace (and optionally a user namespace). Returns the sandbox
    /// id's netns and the setup cost.
    pub fn create_sandbox(
        &mut self,
        host: &mut Host,
        id: &str,
        userns: UserNsMode,
    ) -> Result<(NetNsId, SimDur), RuntimeError> {
        if self.sandboxes.contains_key(id) {
            return Err(RuntimeError::SandboxExists(id.to_string()));
        }
        let pause_pid = host.spawn_detached(&format!("pause-{id}"), Uid::ROOT, Gid::ROOT);
        if let UserNsMode::Mapped { base } = userns {
            let map = vec![IdMapEntry { inside_start: 0, outside_start: base, count: 65_536 }];
            host.unshare_user_ns(pause_pid, map.clone(), map, Uid::ROOT, Gid::ROOT)?;
        }
        let netns = host.unshare_net_ns(pause_pid)?;
        self.sandboxes.insert(
            id.to_string(),
            Sandbox { id: id.to_string(), pause_pid, netns, containers: Vec::new() },
        );
        Ok((netns, self.params.sandbox_create))
    }

    /// Look up a sandbox.
    pub fn sandbox(&self, id: &str) -> Result<&Sandbox, RuntimeError> {
        self.sandboxes.get(id).ok_or_else(|| RuntimeError::NoSuchSandbox(id.to_string()))
    }

    /// Number of live sandboxes.
    pub fn sandbox_count(&self) -> usize {
        self.sandboxes.len()
    }

    /// Start a container in a sandbox: ensure the image, fork from the
    /// pause process (inheriting all namespaces), run the workload.
    /// Returns the main pid and the total setup cost (pull + create +
    /// start).
    pub fn start_container(
        &mut self,
        host: &mut Host,
        sandbox_id: &str,
        name: &str,
        image: &Image,
        run_duration: Option<SimDur>,
    ) -> Result<(Pid, SimDur), RuntimeError> {
        if !self.sandboxes.contains_key(sandbox_id) {
            return Err(RuntimeError::NoSuchSandbox(sandbox_id.to_string()));
        }
        let pull = self
            .images
            .ensure(&image.reference)
            .ok_or_else(|| RuntimeError::UnknownImage(image.reference.clone()))?;
        let sandbox = self.sandboxes.get_mut(sandbox_id).expect("checked above");
        let pid = host.fork(sandbox.pause_pid, name)?;
        sandbox.containers.push(Container {
            name: name.to_string(),
            image: image.reference.clone(),
            pid,
            run_duration,
        });
        let cost = pull + self.params.container_create + self.params.container_start;
        Ok((pid, cost))
    }

    /// Tear down a sandbox: kill all container processes and the pause
    /// process, delete the network namespace. Returns the teardown cost.
    pub fn remove_sandbox(
        &mut self,
        host: &mut Host,
        id: &str,
    ) -> Result<SimDur, RuntimeError> {
        let sandbox = self
            .sandboxes
            .remove(id)
            .ok_or_else(|| RuntimeError::NoSuchSandbox(id.to_string()))?;
        for c in &sandbox.containers {
            let _ = host.exit(c.pid); // may have exited already
        }
        host.exit(sandbox.pause_pid)?;
        host.delete_net_ns(sandbox.netns)?;
        Ok(self.params.sandbox_teardown)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn runtime_with_alpine() -> ContainerRuntime {
        let mut rt = ContainerRuntime::default();
        rt.images.publish(Image::alpine());
        rt
    }

    #[test]
    fn sandbox_gets_fresh_netns() {
        let mut host = Host::new("n0");
        let mut rt = runtime_with_alpine();
        let (ns1, cost) = rt.create_sandbox(&mut host, "sb1", UserNsMode::Host).unwrap();
        let (ns2, _) = rt.create_sandbox(&mut host, "sb2", UserNsMode::Host).unwrap();
        assert_ne!(ns1, ns2);
        assert_ne!(ns1, host.host_netns());
        assert!(cost > SimDur::ZERO);
        assert_eq!(rt.sandbox_count(), 2);
    }

    #[test]
    fn duplicate_sandbox_rejected() {
        let mut host = Host::new("n0");
        let mut rt = runtime_with_alpine();
        rt.create_sandbox(&mut host, "sb1", UserNsMode::Host).unwrap();
        assert_eq!(
            rt.create_sandbox(&mut host, "sb1", UserNsMode::Host).unwrap_err(),
            RuntimeError::SandboxExists("sb1".into())
        );
    }

    #[test]
    fn mapped_userns_sandboxes_have_sandboxed_identity() {
        let mut host = Host::new("n0");
        let mut rt = runtime_with_alpine();
        rt.create_sandbox(&mut host, "sb1", UserNsMode::Mapped { base: 100_000 }).unwrap();
        let sb = rt.sandbox("sb1").unwrap();
        // Pause process is root inside, mapped outside.
        assert_eq!(host.process(sb.pause_pid).unwrap().uid, Uid::ROOT);
        assert_eq!(host.host_uid(sb.pause_pid).unwrap(), Uid(100_000));
    }

    #[test]
    fn containers_inherit_sandbox_namespaces() {
        let mut host = Host::new("n0");
        let mut rt = runtime_with_alpine();
        rt.create_sandbox(&mut host, "sb1", UserNsMode::Host).unwrap();
        let (pid, cost) = rt
            .start_container(&mut host, "sb1", "main", &Image::alpine(), None)
            .unwrap();
        let sb_ns = rt.sandbox("sb1").unwrap().netns;
        assert_eq!(host.proc_netns_inode(pid).unwrap(), sb_ns);
        assert!(cost >= SimDur::from_millis(200), "pull + create + start");
    }

    #[test]
    fn second_container_start_is_faster_warm_cache() {
        let mut host = Host::new("n0");
        let mut rt = runtime_with_alpine();
        rt.create_sandbox(&mut host, "sb1", UserNsMode::Host).unwrap();
        rt.create_sandbox(&mut host, "sb2", UserNsMode::Host).unwrap();
        let (_, c1) = rt
            .start_container(&mut host, "sb1", "a", &Image::alpine(), None)
            .unwrap();
        let (_, c2) = rt
            .start_container(&mut host, "sb2", "b", &Image::alpine(), None)
            .unwrap();
        assert!(c2 < c1, "warm cache should be cheaper: {c2} vs {c1}");
    }

    #[test]
    fn unknown_image_fails_start() {
        let mut host = Host::new("n0");
        let mut rt = ContainerRuntime::default();
        rt.create_sandbox(&mut host, "sb1", UserNsMode::Host).unwrap();
        let img = Image { reference: "ghost:latest".into(), size_bytes: 1 };
        assert_eq!(
            rt.start_container(&mut host, "sb1", "a", &img, None).unwrap_err(),
            RuntimeError::UnknownImage("ghost:latest".into())
        );
    }

    #[test]
    fn remove_sandbox_kills_processes_and_netns() {
        let mut host = Host::new("n0");
        let mut rt = runtime_with_alpine();
        let (netns, _) = rt.create_sandbox(&mut host, "sb1", UserNsMode::Host).unwrap();
        let (pid, _) = rt
            .start_container(&mut host, "sb1", "a", &Image::alpine(), None)
            .unwrap();
        rt.remove_sandbox(&mut host, "sb1").unwrap();
        assert!(host.process(pid).is_err());
        assert!(host.net_namespace(netns).is_none());
        assert_eq!(rt.sandbox_count(), 0);
        assert!(matches!(
            rt.remove_sandbox(&mut host, "sb1").unwrap_err(),
            RuntimeError::NoSuchSandbox(_)
        ));
    }
}
