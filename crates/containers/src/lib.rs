//! # shs-containers — container runtime substrate
//!
//! CRI-shaped container runtime: pod sandboxes anchored on a pause
//! process with a fresh network namespace (and optional user namespace),
//! container lifecycle with image pulls from a local-harbor-style
//! registry, and the timing parameters that shape pod start latency.
//!
//! The CNI chain runs *between* sandbox creation and container start —
//! driven by the kubelet in `shs-k8s`, where the paper's CXI plugin
//! hooks in (§III-B).

pub mod images;
pub mod runtime;

pub use images::{Image, ImageStore, ImageStoreParams};
pub use runtime::{
    Container, ContainerRuntime, RuntimeError, RuntimeParams, Sandbox, UserNsMode,
};
