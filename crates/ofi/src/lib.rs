//! # shs-ofi — libfabric-like network abstraction (CXI provider)
//!
//! "libfabric ... is the de-facto interface for Slingshot" (§III-A). This
//! crate models the slice of libfabric the paper's stack exercises:
//! provider discovery ([`info::fi_getinfo`]), endpoint creation through
//! the authenticated CXI path (the one place the paper's netns patch
//! matters), tagged send/receive with ignore-mask matching, and
//! completion queues with virtual-time visibility.
//!
//! Data-path operations use explicit time cursors instead of the event
//! queue (LogP-style), which keeps full OSU parameter sweeps cheap while
//! preserving NIC and link queueing behaviour.

pub mod ep;
pub mod info;
pub mod rma;

pub use ep::{open_many, CompKind, Completion, OfiEp, OfiError, OfiParams, PeerAddr, WireMessage};
pub use info::{fi_getinfo, FiInfo};
pub use rma::{register_mr, rma_read, rma_write, RmaOutcome};
