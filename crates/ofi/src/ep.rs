//! Tagged endpoints, completion queues, and the virtual-time data path.
//!
//! The data path is simulated at message granularity with explicit time
//! cursors (LogP-style): every operation takes `now` and returns both its
//! effects and the instants at which they become visible. The MPI layer
//! advances rank-local clocks by these instants; no event queue is needed
//! on the hot path, which keeps full OSU sweeps cheap while preserving
//! the queueing behaviour (NIC TX engine + link busy-until) that shapes
//! the throughput curve.

use std::collections::VecDeque;

use shs_cassini::{EpIdx, RxMessage, SendOutcome};
use shs_cxi::{CxiDevice, CxiError};
use shs_des::{SimDur, SimTime};
use shs_fabric::{Fabric, NicAddr, TrafficClass, Vni};
use shs_oslinux::{Host, Pid};

/// A fabric-wide endpoint address (`fi_addr_t` equivalent).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PeerAddr {
    /// NIC the endpoint lives on.
    pub nic: NicAddr,
    /// Endpoint index on that NIC.
    pub ep: EpIdx,
}

/// Software per-call overheads of the libfabric layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OfiParams {
    /// `fi_tsend` software path before the doorbell.
    pub sw_send: SimDur,
    /// `fi_trecv` posting cost.
    pub sw_recv: SimDur,
    /// Completion-queue read cost.
    pub cq_read: SimDur,
}

impl Default for OfiParams {
    fn default() -> Self {
        OfiParams {
            sw_send: SimDur::from_nanos(200),
            sw_recv: SimDur::from_nanos(120),
            cq_read: SimDur::from_nanos(80),
        }
    }
}

/// Completion kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompKind {
    /// A send completed locally.
    Send,
    /// A receive matched and completed.
    Recv,
}

/// A completion-queue entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// Send or receive.
    pub kind: CompKind,
    /// Message tag.
    pub tag: u64,
    /// Payload length.
    pub len: u64,
    /// User context supplied at post time.
    pub ctx: u64,
    /// Instant the completion becomes visible to software.
    pub at: SimTime,
}

/// A posted tagged receive.
#[derive(Debug, Clone, Copy)]
struct PostedRecv {
    tag: u64,
    ignore: u64,
    ctx: u64,
    posted_at: SimTime,
}

/// Errors from the OFI layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OfiError {
    /// Endpoint creation failed in the CXI stack (auth, VNI, limits).
    Cxi(CxiError),
}

impl From<CxiError> for OfiError {
    fn from(e: CxiError) -> Self {
        OfiError::Cxi(e)
    }
}

impl core::fmt::Display for OfiError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            OfiError::Cxi(e) => write!(f, "cxi provider: {e}"),
        }
    }
}

impl std::error::Error for OfiError {}

/// A tagged, connectionless endpoint bound to a VNI (the CXI provider
/// model: the VNI comes from the CXI service the caller authenticated
/// against).
#[derive(Debug)]
pub struct OfiEp {
    /// Fabric address of this endpoint.
    pub addr: PeerAddr,
    /// The VNI the endpoint communicates on.
    pub vni: Vni,
    /// Traffic class.
    pub tc: TrafficClass,
    params: OfiParams,
    posted: VecDeque<PostedRecv>,
    unexpected: VecDeque<RxMessage>,
    cq: VecDeque<Completion>,
}

impl OfiEp {
    /// Open an endpoint: runs the full authenticated CXI path
    /// (`fi_domain`, then `fi_endpoint`, then EP allocation through the
    /// driver member check). This is the *only* place authentication
    /// happens — everything after is kernel-bypass.
    pub fn open(
        host: &Host,
        device: &mut CxiDevice,
        pid: Pid,
        vni: Vni,
        tc: TrafficClass,
    ) -> Result<OfiEp, OfiError> {
        let ep = device.ep_alloc(host, pid, vni, tc)?;
        Ok(OfiEp {
            addr: PeerAddr { nic: device.nic.addr, ep },
            vni,
            tc,
            params: OfiParams::default(),
            posted: VecDeque::new(),
            unexpected: VecDeque::new(),
            cq: VecDeque::new(),
        })
    }

    /// Close the endpoint, releasing NIC resources.
    pub fn close(self, device: &mut CxiDevice) -> Result<(), OfiError> {
        device.ep_free(self.addr.ep)?;
        Ok(())
    }

    /// Software-parameter access (calibration).
    pub fn params(&self) -> &OfiParams {
        &self.params
    }

    /// `fi_tsend`: send `len` bytes with `tag` to `dst`. Returns the time
    /// at which the *calling software* regains control (post return) and,
    /// if the fabric delivered, the wire message to hand to the receiving
    /// endpoint via [`OfiEp::deliver`].
    ///
    /// A send completion is queued at the local-completion instant.
    /// Fabric drops are silent (RDMA semantics): the send still completes
    /// locally; only the receiver never sees data.
#[allow(clippy::too_many_arguments)]
    pub fn tsend(
        &mut self,
        now: SimTime,
        device: &mut CxiDevice,
        fabric: &mut Fabric,
        dst: PeerAddr,
        tag: u64,
        len: u64,
        ctx: u64,
    ) -> (SimTime, Option<WireMessage>) {
        let post_done = now + self.params.sw_send;
        let outcome = device
            .nic
            .send(post_done, fabric, self.addr.ep, dst.nic, dst.ep, tag, len)
            .expect("endpoint vanished mid-send");
        match outcome {
            SendOutcome::Sent(t) => {
                self.cq.push_back(Completion {
                    kind: CompKind::Send,
                    tag,
                    len,
                    ctx,
                    at: t.local_completion,
                });
                let msg = WireMessage {
                    dst,
                    vni: self.vni,
                    rx: RxMessage {
                        src: self.addr.nic,
                        src_ep: self.addr.ep,
                        tag,
                        len,
                        msg_id: 0,
                        delivered_at: t.remote_delivery,
                    },
                };
                (post_done, Some(msg))
            }
            SendOutcome::FabricDropped { local_completion, .. } => {
                self.cq.push_back(Completion {
                    kind: CompKind::Send,
                    tag,
                    len,
                    ctx,
                    at: local_completion,
                });
                (post_done, None)
            }
        }
    }

    /// `fi_trecv`: post a tagged receive buffer. Matching follows
    /// libfabric rules: an incoming tag matches when
    /// `(incoming ^ posted) & !ignore == 0`, FIFO within matches.
    /// Returns when the posting call returns.
    pub fn trecv(&mut self, now: SimTime, tag: u64, ignore: u64, ctx: u64) -> SimTime {
        let done = now + self.params.sw_recv;
        let posted = PostedRecv { tag, ignore, ctx, posted_at: done };
        // Try the unexpected queue first (message already arrived).
        if let Some(pos) = self
            .unexpected
            .iter()
            .position(|m| matches_tag(m.tag, posted.tag, posted.ignore))
        {
            let msg = self.unexpected.remove(pos).expect("position valid");
            // Completion visible no earlier than both arrival and post.
            let at = msg.delivered_at.max(done);
            self.cq.push_back(Completion {
                kind: CompKind::Recv,
                tag: msg.tag,
                len: msg.len,
                ctx,
                at,
            });
        } else {
            self.posted.push_back(posted);
        }
        done
    }

    /// Deliver a wire message into this endpoint (composition-layer duty;
    /// in hardware this is the NIC's matching engine).
    pub fn deliver(&mut self, device: &mut CxiDevice, msg: WireMessage) {
        debug_assert_eq!(msg.dst.ep, self.addr.ep, "misrouted message");
        // NIC-level VNI check + counters.
        if device.nic.deliver(msg.dst.ep, msg.vni, msg.rx.clone()).is_err() {
            return; // silently dropped, like hardware
        }
        // Drain the NIC rx queue into the matching engine.
        while let Some(rx) = device.nic.poll_rx(self.addr.ep).expect("own endpoint") {
            if let Some(pos) =
                self.posted.iter().position(|p| matches_tag(rx.tag, p.tag, p.ignore))
            {
                let p = self.posted.remove(pos).expect("position valid");
                let at = rx.delivered_at.max(p.posted_at);
                self.cq.push_back(Completion {
                    kind: CompKind::Recv,
                    tag: rx.tag,
                    len: rx.len,
                    ctx: p.ctx,
                    at,
                });
            } else {
                self.unexpected.push_back(rx);
            }
        }
    }

    /// `fi_cq_read`: pop the earliest completion visible at `now`, paying
    /// the CQ read cost. Returns the new time cursor and the completion.
    pub fn cq_read(&mut self, now: SimTime) -> (SimTime, Option<Completion>) {
        let t = now + self.params.cq_read;
        // Completions become visible in `at` order; find earliest.
        let earliest = self
            .cq
            .iter()
            .enumerate()
            .min_by_key(|(_, c)| c.at)
            .map(|(i, c)| (i, c.at));
        match earliest {
            Some((i, at)) if at <= t => (t, self.cq.remove(i)),
            _ => (t, None),
        }
    }

    /// Block until the next completion: advances time to the completion
    /// instant if it lies in the future (`fi_cq_sread` semantics).
    pub fn cq_wait(&mut self, now: SimTime) -> Option<(SimTime, Completion)> {
        let earliest = self
            .cq
            .iter()
            .enumerate()
            .min_by_key(|(_, c)| c.at)
            .map(|(i, c)| (i, c.at))?;
        let (i, at) = earliest;
        let t = now.max(at) + self.params.cq_read;
        let c = self.cq.remove(i).expect("index valid");
        Some((t, c))
    }

    /// Append a completion (crate-internal: the RMA layer injects).
    pub(crate) fn cq_push(&mut self, c: Completion) {
        self.cq.push_back(c);
    }

    /// Completions pending (any visibility time).
    pub fn cq_depth(&self) -> usize {
        self.cq.len()
    }

    /// Posted-but-unmatched receives.
    pub fn posted_depth(&self) -> usize {
        self.posted.len()
    }

    /// Unexpected (arrived-but-unmatched) messages.
    pub fn unexpected_depth(&self) -> usize {
        self.unexpected.len()
    }
}

/// Tag match rule (`fi_trecv` ignore-mask semantics).
#[inline]
fn matches_tag(incoming: u64, posted: u64, ignore: u64) -> bool {
    (incoming ^ posted) & !ignore == 0
}

/// Open one endpoint per process on a single device — the multi-rank
/// bring-up path (an N-rank communicator opening several ranks on the
/// same node). Every open runs the full authenticated CXI path; on the
/// first failure all endpoints already opened by this call are closed
/// again, so a partial bring-up never leaks NIC resources.
///
/// Returned endpoints are in `pids` order.
///
/// ```
/// use shs_cassini::{CassiniNic, CassiniParams};
/// use shs_cxi::{CxiDevice, CxiDriver, CxiServiceDesc};
/// use shs_des::DetRng;
/// use shs_fabric::{Fabric, NicAddr, TrafficClass, Vni};
/// use shs_ofi::open_many;
/// use shs_oslinux::{Gid, Host, Pid, Uid};
///
/// let mut host = Host::new("n0");
/// let mut dev = CxiDevice::new(
///     CxiDriver::extended(),
///     CassiniNic::new(NicAddr(1), CassiniParams::default(), DetRng::new(1)),
/// );
/// let root = host.credentials(Pid(1)).unwrap();
/// dev.alloc_svc(&root, CxiServiceDesc::default_service()).unwrap();
/// let r0 = host.spawn_detached("rank0", Uid(1000), Gid(1000));
/// let r1 = host.spawn_detached("rank1", Uid(1000), Gid(1000));
/// let eps = open_many(&host, &mut dev, &[r0, r1], Vni::GLOBAL,
///                     TrafficClass::Dedicated).unwrap();
/// assert_eq!(eps.len(), 2);
/// for ep in eps {
///     ep.close(&mut dev).unwrap();
/// }
/// ```
pub fn open_many(
    host: &Host,
    device: &mut CxiDevice,
    pids: &[Pid],
    vni: Vni,
    tc: TrafficClass,
) -> Result<Vec<OfiEp>, OfiError> {
    let mut eps = Vec::with_capacity(pids.len());
    for &pid in pids {
        match OfiEp::open(host, device, pid, vni, tc) {
            Ok(ep) => eps.push(ep),
            Err(e) => {
                for ep in eps {
                    let _ = ep.close(device);
                }
                return Err(e);
            }
        }
    }
    Ok(eps)
}

/// A message in flight between two endpoints.
#[derive(Debug, Clone)]
pub struct WireMessage {
    /// Destination address.
    pub dst: PeerAddr,
    /// VNI it travelled on.
    pub vni: Vni,
    /// Payload metadata and delivery instant.
    pub rx: RxMessage,
}

#[cfg(test)]
mod tests {
    use super::*;
    use shs_cassini::{CassiniNic, CassiniParams};
    use shs_cxi::{CxiDriver, CxiServiceDesc};
    use shs_des::DetRng;
    use shs_oslinux::{Gid, Uid};

    struct Rig {
        host: Host,
        fabric: Fabric,
        dev_a: CxiDevice,
        dev_b: CxiDevice,
        pid: Pid,
    }

    fn rig() -> Rig {
        let mut host = Host::new("n0");
        let mut fabric = Fabric::new(8);
        let rng = DetRng::new(42);
        let mut dev_a = CxiDevice::new(
            CxiDriver::extended(),
            CassiniNic::new(NicAddr(1), CassiniParams::default(), rng.derive("a")),
        );
        let mut dev_b = CxiDevice::new(
            CxiDriver::extended(),
            CassiniNic::new(NicAddr(2), CassiniParams::default(), rng.derive("b")),
        );
        fabric.attach(NicAddr(1));
        fabric.attach(NicAddr(2));
        fabric.grant_vni(NicAddr(1), Vni::GLOBAL).unwrap();
        fabric.grant_vni(NicAddr(2), Vni::GLOBAL).unwrap();
        let root = host.credentials(Pid(1)).unwrap();
        dev_a.alloc_svc(&root, CxiServiceDesc::default_service()).unwrap();
        dev_b.alloc_svc(&root, CxiServiceDesc::default_service()).unwrap();
        let pid = host.spawn_detached("app", Uid(1000), Gid(1000));
        Rig { host, fabric, dev_a, dev_b, pid }
    }

    fn open_pair(r: &mut Rig) -> (OfiEp, OfiEp) {
        let a = OfiEp::open(&r.host, &mut r.dev_a, r.pid, Vni::GLOBAL, TrafficClass::Dedicated)
            .unwrap();
        let b = OfiEp::open(&r.host, &mut r.dev_b, r.pid, Vni::GLOBAL, TrafficClass::Dedicated)
            .unwrap();
        (a, b)
    }

    #[test]
    fn tagged_send_recv_roundtrip() {
        let mut r = rig();
        let (mut a, mut b) = open_pair(&mut r);
        let t0 = SimTime::ZERO;
        let t_post = b.trecv(t0, 7, 0, 100);
        let (_, msg) =
            a.tsend(t0, &mut r.dev_a, &mut r.fabric, b.addr, 7, 4096, 200);
        b.deliver(&mut r.dev_b, msg.expect("delivered"));
        let (_, comp) = b.cq_wait(t_post).expect("completion");
        assert_eq!(comp.kind, CompKind::Recv);
        assert_eq!(comp.tag, 7);
        assert_eq!(comp.len, 4096);
        assert_eq!(comp.ctx, 100);
        assert!(comp.at > t0, "delivery takes time");
        // Sender got a local completion too.
        let (_, sc) = a.cq_wait(t0).expect("send completion");
        assert_eq!(sc.kind, CompKind::Send);
        assert_eq!(sc.ctx, 200);
    }

    #[test]
    fn unexpected_messages_match_later_receives() {
        let mut r = rig();
        let (mut a, mut b) = open_pair(&mut r);
        let (_, msg) = a.tsend(SimTime::ZERO, &mut r.dev_a, &mut r.fabric, b.addr, 9, 64, 0);
        b.deliver(&mut r.dev_b, msg.unwrap());
        assert_eq!(b.unexpected_depth(), 1);
        // Post the matching receive *after* arrival.
        let late = SimTime::from_nanos(50_000);
        let t_post = b.trecv(late, 9, 0, 5);
        let (_, comp) = b.cq_wait(t_post).expect("matched from unexpected queue");
        assert_eq!(comp.ctx, 5);
        assert!(comp.at >= t_post, "visible only after the post");
        assert_eq!(b.unexpected_depth(), 0);
    }

    #[test]
    fn ignore_mask_wildcards_low_bits() {
        let mut r = rig();
        let (mut a, mut b) = open_pair(&mut r);
        b.trecv(SimTime::ZERO, 0xAB00, 0xFF, 1);
        let (_, msg) =
            a.tsend(SimTime::ZERO, &mut r.dev_a, &mut r.fabric, b.addr, 0xAB42, 8, 0);
        b.deliver(&mut r.dev_b, msg.unwrap());
        let (_, comp) = b.cq_wait(SimTime::ZERO).expect("wildcard match");
        assert_eq!(comp.tag, 0xAB42);
    }

    #[test]
    fn mismatched_tags_stay_unexpected() {
        let mut r = rig();
        let (mut a, mut b) = open_pair(&mut r);
        b.trecv(SimTime::ZERO, 1, 0, 0);
        let (_, msg) = a.tsend(SimTime::ZERO, &mut r.dev_a, &mut r.fabric, b.addr, 2, 8, 0);
        b.deliver(&mut r.dev_b, msg.unwrap());
        assert_eq!(b.posted_depth(), 1);
        assert_eq!(b.unexpected_depth(), 1);
        assert!(b.cq_wait(SimTime::ZERO).is_none());
    }

    #[test]
    fn fifo_matching_within_equal_tags() {
        let mut r = rig();
        let (mut a, mut b) = open_pair(&mut r);
        b.trecv(SimTime::ZERO, 3, 0, 111);
        b.trecv(SimTime::ZERO, 3, 0, 222);
        let (_, m1) = a.tsend(SimTime::ZERO, &mut r.dev_a, &mut r.fabric, b.addr, 3, 8, 0);
        let (_, m2) = a.tsend(SimTime::ZERO, &mut r.dev_a, &mut r.fabric, b.addr, 3, 16, 0);
        b.deliver(&mut r.dev_b, m1.unwrap());
        b.deliver(&mut r.dev_b, m2.unwrap());
        let (t, c1) = b.cq_wait(SimTime::ZERO).unwrap();
        let (_, c2) = b.cq_wait(t).unwrap();
        assert_eq!((c1.ctx, c1.len), (111, 8));
        assert_eq!((c2.ctx, c2.len), (222, 16));
    }

    #[test]
    fn vni_mismatch_at_delivery_is_dropped() {
        let mut r = rig();
        // b's endpoint is on the global VNI; forge a message on VNI 99.
        let (mut a, mut b) = open_pair(&mut r);
        b.trecv(SimTime::ZERO, 1, 0, 0);
        let (_, msg) = a.tsend(SimTime::ZERO, &mut r.dev_a, &mut r.fabric, b.addr, 1, 8, 0);
        let mut msg = msg.unwrap();
        msg.vni = Vni(99);
        b.deliver(&mut r.dev_b, msg);
        assert!(b.cq_wait(SimTime::ZERO).is_none());
        assert_eq!(r.dev_b.nic.counters.rx_msgs, 0);
    }

    #[test]
    fn open_fails_without_authorized_service() {
        let mut r = rig();
        let err = OfiEp::open(
            &r.host,
            &mut r.dev_a,
            r.pid,
            Vni(77),
            TrafficClass::Dedicated,
        )
        .unwrap_err();
        assert_eq!(err, OfiError::Cxi(CxiError::AuthFailed));
    }

    #[test]
    fn cq_read_respects_visibility_time() {
        let mut r = rig();
        let (mut a, mut b) = open_pair(&mut r);
        let (_, msg) = a.tsend(SimTime::ZERO, &mut r.dev_a, &mut r.fabric, b.addr, 1, 1 << 20, 0);
        let msg = msg.unwrap();
        let arrival = msg.rx.delivered_at;
        b.trecv(SimTime::ZERO, 1, 0, 0);
        b.deliver(&mut r.dev_b, msg);
        // Polling long before arrival yields nothing...
        let (_, none) = b.cq_read(SimTime::ZERO);
        assert!(none.is_none());
        // ...polling after arrival yields the completion.
        let (_, some) = b.cq_read(arrival + SimDur::from_micros(1));
        assert!(some.is_some());
    }
}
