//! One-sided RMA operations (`fi_write` / `fi_read` equivalents).
//!
//! RMA targets a registered memory region on the remote NIC, identified
//! by an rkey; the remote CPU is not involved (no receive is posted —
//! the NIC validates the rkey, bounds and permissions, §II-A). Both
//! endpoints are owned by the caller in this simulation, so the helpers
//! take both devices plus the fabric, mirroring `shs-mpi`'s style.

use shs_cassini::{MrKey, NicError, SendOutcome};
use shs_cxi::CxiDevice;
use shs_des::{SimDur, SimTime};
use shs_fabric::Fabric;

use crate::ep::{CompKind, Completion, OfiEp};

/// Outcome of an RMA operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RmaOutcome {
    /// Completed; the initiator's completion fires at the given instant.
    Done(SimTime),
    /// The target NIC rejected the access (bad key, bounds, permission).
    /// The initiator observes an error completion (`FI_EIO`-style).
    Denied(NicError),
    /// Dropped in the fabric (VNI enforcement): silent, like all RDMA
    /// drops — the initiator never completes.
    FabricDropped,
}

/// Register a length-`len` remote-accessible region on `ep`'s NIC.
pub fn register_mr(
    device: &mut CxiDevice,
    ep: &OfiEp,
    len: u64,
    remote_read: bool,
    remote_write: bool,
) -> Result<MrKey, NicError> {
    device.nic.register_mr(ep.addr.ep, len, remote_read, remote_write)
}

/// `fi_write`: put `len` bytes into `(rkey, offset)` on the target NIC.
///
/// The data travels as a normal fabric message; the target NIC validates
/// the rkey at arrival. The initiator's write completion fires at local
/// completion (RDMA write is unacknowledged at this layer).
#[allow(clippy::too_many_arguments)]
pub fn rma_write(
    now: SimTime,
    src: &mut OfiEp,
    src_dev: &mut CxiDevice,
    dst_dev: &mut CxiDevice,
    fabric: &mut Fabric,
    rkey: MrKey,
    offset: u64,
    len: u64,
    ctx: u64,
) -> (SimTime, RmaOutcome) {
    let post_done = now + src.params().sw_send;
    let dst_nic = dst_dev.nic.addr;
    // Validate against the target MR (the NIC would do this on the first
    // arriving packet; the verdict is time-invariant so order is safe).
    let check = dst_dev.nic.check_rma(rkey, offset, len, true);
    let outcome = src_dev
        .nic
        .send(post_done, fabric, src.addr.ep, dst_nic, shs_cassini::EpIdx(u32::MAX), 0, len)
        .expect("endpoint exists");
    match (check, outcome) {
        (Err(e), _) => (post_done, RmaOutcome::Denied(e)),
        (Ok(_), SendOutcome::Sent(t)) => {
            src.push_completion(Completion {
                kind: CompKind::Send,
                tag: 0,
                len,
                ctx,
                at: t.local_completion,
            });
            (post_done, RmaOutcome::Done(t.local_completion))
        }
        (Ok(_), SendOutcome::FabricDropped { .. }) => (post_done, RmaOutcome::FabricDropped),
    }
}

/// `fi_read`: fetch `len` bytes from `(rkey, offset)` on the target NIC.
///
/// A small request travels to the target; the response data travels
/// back; the initiator's completion fires when the data arrives.
#[allow(clippy::too_many_arguments)]
pub fn rma_read(
    now: SimTime,
    src: &mut OfiEp,
    src_dev: &mut CxiDevice,
    dst_dev: &mut CxiDevice,
    fabric: &mut Fabric,
    rkey: MrKey,
    offset: u64,
    len: u64,
    ctx: u64,
) -> (SimTime, RmaOutcome) {
    let post_done = now + src.params().sw_send;
    let dst_nic = dst_dev.nic.addr;
    let check = dst_dev.nic.check_rma(rkey, offset, len, false);
    // Request packet (header-only).
    let req = src_dev
        .nic
        .send(post_done, fabric, src.addr.ep, dst_nic, shs_cassini::EpIdx(u32::MAX), 0, 0)
        .expect("endpoint exists");
    match (check, req) {
        (Err(e), _) => (post_done, RmaOutcome::Denied(e)),
        (Ok(target_ep), SendOutcome::Sent(t)) => {
            // The target NIC streams the data back (no target CPU).
            let back = dst_dev.nic.send(
                t.remote_delivery,
                fabric,
                target_ep,
                src_dev.nic.addr,
                src.addr.ep,
                0,
                len,
            );
            match back {
                Ok(SendOutcome::Sent(rt)) => {
                    src.push_completion(Completion {
                        kind: CompKind::Recv,
                        tag: 0,
                        len,
                        ctx,
                        at: rt.remote_delivery,
                    });
                    (post_done, RmaOutcome::Done(rt.remote_delivery))
                }
                _ => (post_done, RmaOutcome::FabricDropped),
            }
        }
        (Ok(_), SendOutcome::FabricDropped { .. }) => (post_done, RmaOutcome::FabricDropped),
    }
}

impl OfiEp {
    /// Inject a completion (used by the RMA layer).
    pub(crate) fn push_completion(&mut self, c: Completion) {
        self.cq_push(c);
    }

    /// Round-trip cost helper for tests: RMA read latency lower bound.
    pub fn rma_read_floor(&self) -> SimDur {
        self.params().sw_send * 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shs_cassini::{CassiniNic, CassiniParams};
    use shs_cxi::{CxiDriver, CxiServiceDesc};
    use shs_des::DetRng;
    use shs_fabric::{NicAddr, TrafficClass, Vni};
    use shs_oslinux::{Gid, Host, Pid, Uid};

    struct Rig {
        host_a: Host,
        host_b: Host,
        pid_a: Pid,
        pid_b: Pid,
        dev_a: CxiDevice,
        dev_b: CxiDevice,
        fabric: Fabric,
    }

    fn rig() -> Rig {
        let mut host_a = Host::new("ra");
        let mut host_b = Host::new("rb");
        let rng = DetRng::new(77);
        let mut fabric = Fabric::new(4);
        let mut dev_a = CxiDevice::new(
            CxiDriver::extended(),
            CassiniNic::new(NicAddr(1), CassiniParams::default(), rng.derive("a")),
        );
        let mut dev_b = CxiDevice::new(
            CxiDriver::extended(),
            CassiniNic::new(NicAddr(2), CassiniParams::default(), rng.derive("b")),
        );
        fabric.attach(NicAddr(1));
        fabric.attach(NicAddr(2));
        fabric.grant_vni(NicAddr(1), Vni::GLOBAL).unwrap();
        fabric.grant_vni(NicAddr(2), Vni::GLOBAL).unwrap();
        let ra = host_a.credentials(Pid(1)).unwrap();
        let rb = host_b.credentials(Pid(1)).unwrap();
        dev_a.alloc_svc(&ra, CxiServiceDesc::default_service()).unwrap();
        dev_b.alloc_svc(&rb, CxiServiceDesc::default_service()).unwrap();
        let pid_a = host_a.spawn_detached("a", Uid(1), Gid(1));
        let pid_b = host_b.spawn_detached("b", Uid(1), Gid(1));
        Rig { host_a, host_b, pid_a, pid_b, dev_a, dev_b, fabric }
    }

    fn eps(r: &mut Rig) -> (OfiEp, OfiEp) {
        let a = OfiEp::open(&r.host_a, &mut r.dev_a, r.pid_a, Vni::GLOBAL, TrafficClass::Dedicated)
            .unwrap();
        let b = OfiEp::open(&r.host_b, &mut r.dev_b, r.pid_b, Vni::GLOBAL, TrafficClass::Dedicated)
            .unwrap();
        (a, b)
    }

    #[test]
    fn rma_write_completes_locally() {
        let mut r = rig();
        let (mut a, b) = eps(&mut r);
        let key = register_mr(&mut r.dev_b, &b, 1 << 20, false, true).unwrap();
        let (_, out) = rma_write(
            SimTime::ZERO, &mut a, &mut r.dev_a, &mut r.dev_b, &mut r.fabric,
            key, 0, 4096, 1,
        );
        let RmaOutcome::Done(at) = out else { panic!("{out:?}") };
        assert!(at > SimTime::ZERO);
        let (_, c) = a.cq_wait(SimTime::ZERO).expect("write completion");
        assert_eq!(c.kind, CompKind::Send);
        assert_eq!(c.len, 4096);
    }

    #[test]
    fn rma_write_respects_bounds_and_permissions() {
        let mut r = rig();
        let (mut a, b) = eps(&mut r);
        let key_ro = register_mr(&mut r.dev_b, &b, 4096, true, false).unwrap();
        let (_, out) = rma_write(
            SimTime::ZERO, &mut a, &mut r.dev_a, &mut r.dev_b, &mut r.fabric,
            key_ro, 0, 64, 1,
        );
        assert_eq!(out, RmaOutcome::Denied(NicError::MrAccess), "read-only region");
        let key_rw = register_mr(&mut r.dev_b, &b, 4096, true, true).unwrap();
        let (_, out) = rma_write(
            SimTime::ZERO, &mut a, &mut r.dev_a, &mut r.dev_b, &mut r.fabric,
            key_rw, 4000, 200, 2,
        );
        assert_eq!(out, RmaOutcome::Denied(NicError::MrAccess), "out of bounds");
        assert!(r.dev_b.nic.counters.mr_violations >= 2);
    }

    #[test]
    fn rma_read_round_trips() {
        let mut r = rig();
        let (mut a, b) = eps(&mut r);
        let key = register_mr(&mut r.dev_b, &b, 1 << 20, true, false).unwrap();
        let (_, out) = rma_read(
            SimTime::ZERO, &mut a, &mut r.dev_a, &mut r.dev_b, &mut r.fabric,
            key, 0, 1 << 16, 3,
        );
        let RmaOutcome::Done(at) = out else { panic!("{out:?}") };
        // A read of 64 KiB takes at least the one-way time of the data
        // plus the request trip.
        assert!(at.as_nanos() > 3_000, "read completed implausibly fast: {at}");
        let (_, c) = a.cq_wait(SimTime::ZERO).expect("read completion");
        assert_eq!(c.kind, CompKind::Recv);
        assert_eq!(c.ctx, 3);
    }

    #[test]
    fn rma_on_ungranted_vni_is_silently_dropped() {
        let mut r = rig();
        // Endpoints on a VNI the switch does not route.
        let ra = r.host_a.credentials(Pid(1)).unwrap();
        let rb = r.host_b.credentials(Pid(1)).unwrap();
        let desc = |l: &str| CxiServiceDesc {
            members: vec![shs_cxi::SvcMember::AllUsers],
            vnis: vec![Vni(50)],
            limits: Default::default(),
            label: l.into(),
        };
        r.dev_a.alloc_svc(&ra, desc("a")).unwrap();
        r.dev_b.alloc_svc(&rb, desc("b")).unwrap();
        let mut a =
            OfiEp::open(&r.host_a, &mut r.dev_a, r.pid_a, Vni(50), TrafficClass::Dedicated)
                .unwrap();
        let b =
            OfiEp::open(&r.host_b, &mut r.dev_b, r.pid_b, Vni(50), TrafficClass::Dedicated)
                .unwrap();
        let key = register_mr(&mut r.dev_b, &b, 4096, true, true).unwrap();
        let (_, out) = rma_write(
            SimTime::ZERO, &mut a, &mut r.dev_a, &mut r.dev_b, &mut r.fabric,
            key, 0, 64, 1,
        );
        assert_eq!(out, RmaOutcome::FabricDropped);
    }

    #[test]
    fn deregistered_mr_is_unreachable() {
        let mut r = rig();
        let (mut a, b) = eps(&mut r);
        let key = register_mr(&mut r.dev_b, &b, 4096, true, true).unwrap();
        r.dev_b.nic.deregister_mr(key).unwrap();
        let (_, out) = rma_write(
            SimTime::ZERO, &mut a, &mut r.dev_a, &mut r.dev_b, &mut r.fabric,
            key, 0, 64, 1,
        );
        assert_eq!(out, RmaOutcome::Denied(NicError::NoSuchMr));
    }
}
