//! Provider discovery (`fi_getinfo` equivalent).

/// Static description of the fabric provider, mirroring the fields of
/// `struct fi_info` that matter to this stack. The paper patches
//  libfabric 2.1.0's CXI provider; we expose the same identity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FiInfo {
    /// Provider name.
    pub provider: &'static str,
    /// Fabric name.
    pub fabric: &'static str,
    /// Provider version (major, minor).
    pub version: (u32, u32),
    /// Maximum message size in bytes.
    pub max_msg_size: u64,
    /// Maximum tagged-message tag width in bits.
    pub tag_bits: u32,
    /// Whether the provider carries the Slingshot-K8s netns-auth patch
    /// (Table I marks libfabric with † — "patched to support the
    /// Slingshot-K8s integration").
    pub netns_auth_patched: bool,
}

/// Enumerate available providers (we model exactly one CXI provider).
pub fn fi_getinfo() -> Vec<FiInfo> {
    vec![FiInfo {
        provider: "cxi",
        fabric: "slingshot",
        version: (2, 1),
        max_msg_size: 1 << 32,
        tag_bits: 64,
        netns_auth_patched: true,
    }]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cxi_provider_is_discoverable() {
        let infos = fi_getinfo();
        assert_eq!(infos.len(), 1);
        let i = &infos[0];
        assert_eq!(i.provider, "cxi");
        assert_eq!(i.fabric, "slingshot");
        assert_eq!(i.version, (2, 1));
        assert!(i.netns_auth_patched);
        assert!(i.max_msg_size >= 1 << 20, "must cover the OSU sweep");
    }
}
