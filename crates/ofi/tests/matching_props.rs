//! Property tests for the tagged-matching engine: libfabric ignore-mask
//! semantics, FIFO ordering, and conservation of messages (every
//! delivered message is either matched exactly once or parked in the
//! unexpected queue — none lost, none duplicated).

use proptest::prelude::*;
use shs_cassini::{CassiniNic, CassiniParams};
use shs_cxi::{CxiDevice, CxiDriver, CxiServiceDesc};
use shs_des::{DetRng, SimTime};
use shs_fabric::{Fabric, NicAddr, TrafficClass, Vni};
use shs_ofi::{CompKind, OfiEp};
use shs_oslinux::{Gid, Host, Pid, Uid};

struct Rig {
    host_a: Host,
    host_b: Host,
    pid_a: Pid,
    pid_b: Pid,
    dev_a: CxiDevice,
    dev_b: CxiDevice,
    fabric: Fabric,
}

fn rig(seed: u64) -> Rig {
    let mut host_a = Host::new("pa");
    let mut host_b = Host::new("pb");
    let rng = DetRng::new(seed);
    let mut fabric = Fabric::new(4);
    let mut dev_a = CxiDevice::new(
        CxiDriver::extended(),
        CassiniNic::new(NicAddr(1), CassiniParams::default(), rng.derive("a")),
    );
    let mut dev_b = CxiDevice::new(
        CxiDriver::extended(),
        CassiniNic::new(NicAddr(2), CassiniParams::default(), rng.derive("b")),
    );
    fabric.attach(NicAddr(1));
    fabric.attach(NicAddr(2));
    fabric.grant_vni(NicAddr(1), Vni::GLOBAL).unwrap();
    fabric.grant_vni(NicAddr(2), Vni::GLOBAL).unwrap();
    let ra = host_a.credentials(Pid(1)).unwrap();
    let rb = host_b.credentials(Pid(1)).unwrap();
    dev_a.alloc_svc(&ra, CxiServiceDesc::default_service()).unwrap();
    dev_b.alloc_svc(&rb, CxiServiceDesc::default_service()).unwrap();
    let pid_a = host_a.spawn_detached("a", Uid(1), Gid(1));
    let pid_b = host_b.spawn_detached("b", Uid(1), Gid(1));
    Rig { host_a, host_b, pid_a, pid_b, dev_a, dev_b, fabric }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Conservation: for arbitrary interleavings of posts and sends with
    /// small tag spaces (forcing collisions), every send is eventually
    /// accounted for: matched completions + unexpected + unmatched posts
    /// balance exactly.
    #[test]
    fn messages_are_conserved(
        seed in 1u64..500,
        // (is_post, tag) sequence; tags drawn from a tiny space.
        script in prop::collection::vec((any::<bool>(), 0u64..4), 1..60),
    ) {
        let mut r = rig(seed);
        let mut a = OfiEp::open(&r.host_a, &mut r.dev_a, r.pid_a, Vni::GLOBAL, TrafficClass::Dedicated).unwrap();
        let mut b = OfiEp::open(&r.host_b, &mut r.dev_b, r.pid_b, Vni::GLOBAL, TrafficClass::Dedicated).unwrap();
        let mut now = SimTime::ZERO;
        let mut sends = 0usize;
        let mut posts = 0usize;
        for (is_post, tag) in script {
            if is_post {
                now = b.trecv(now, tag, 0, tag);
                posts += 1;
            } else {
                let (t, msg) = a.tsend(now, &mut r.dev_a, &mut r.fabric, b.addr, tag, 8, tag);
                now = t;
                if let Some(m) = msg {
                    b.deliver(&mut r.dev_b, m);
                    sends += 1;
                }
            }
        }
        // Drain all receive completions far in the future.
        let far = SimTime::from_nanos(u64::MAX / 2);
        let mut matched = 0usize;
        loop {
            let (_, c) = b.cq_read(far);
            match c {
                Some(c) => {
                    prop_assert_eq!(c.kind, CompKind::Recv);
                    matched += 1;
                }
                None => break,
            }
        }
        prop_assert_eq!(matched + b.unexpected_depth(), sends, "sends conserved");
        prop_assert_eq!(matched + b.posted_depth(), posts, "posts conserved");
    }

    /// FIFO per matching tag: with a single tag value, completion contexts
    /// arrive in post order and payload lengths in send order.
    #[test]
    fn fifo_order_within_a_tag(n in 1usize..20, seed in 1u64..200) {
        let mut r = rig(seed);
        let mut a = OfiEp::open(&r.host_a, &mut r.dev_a, r.pid_a, Vni::GLOBAL, TrafficClass::Dedicated).unwrap();
        let mut b = OfiEp::open(&r.host_b, &mut r.dev_b, r.pid_b, Vni::GLOBAL, TrafficClass::Dedicated).unwrap();
        let mut now = SimTime::ZERO;
        for i in 0..n {
            now = b.trecv(now, 7, 0, i as u64);
        }
        for i in 0..n {
            let (t, msg) = a.tsend(now, &mut r.dev_a, &mut r.fabric, b.addr, 7, (i + 1) as u64, 0);
            now = t;
            b.deliver(&mut r.dev_b, msg.unwrap());
        }
        let far = SimTime::from_nanos(u64::MAX / 2);
        for i in 0..n {
            let (_, c) = b.cq_read(far);
            let c = c.expect("completion");
            prop_assert_eq!(c.ctx, i as u64, "post order");
            prop_assert_eq!(c.len, (i + 1) as u64, "send order");
        }
    }

    /// Ignore-mask algebra: a receive with mask M matches exactly the
    /// tags t where (t ^ posted) & !M == 0 — checked against a direct
    /// evaluation for random masks.
    #[test]
    fn ignore_mask_semantics(
        posted_tag in any::<u64>(),
        mask in any::<u64>(),
        incoming in any::<u64>(),
        seed in 1u64..200,
    ) {
        let mut r = rig(seed);
        let mut a = OfiEp::open(&r.host_a, &mut r.dev_a, r.pid_a, Vni::GLOBAL, TrafficClass::Dedicated).unwrap();
        let mut b = OfiEp::open(&r.host_b, &mut r.dev_b, r.pid_b, Vni::GLOBAL, TrafficClass::Dedicated).unwrap();
        let now = b.trecv(SimTime::ZERO, posted_tag, mask, 1);
        let (_, msg) = a.tsend(now, &mut r.dev_a, &mut r.fabric, b.addr, incoming, 8, 0);
        b.deliver(&mut r.dev_b, msg.unwrap());
        let should_match = (incoming ^ posted_tag) & !mask == 0;
        let far = SimTime::from_nanos(u64::MAX / 2);
        let (_, c) = b.cq_read(far);
        prop_assert_eq!(c.is_some(), should_match);
        prop_assert_eq!(b.unexpected_depth(), usize::from(!should_match));
    }
}
