//! One Criterion bench per paper table/figure: each regenerates a
//! scaled-down version of the corresponding experiment (same code paths
//! as the `repro` binary, smaller parameters) so `cargo bench` exercises
//! every reproduction end to end and tracks its cost.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use shs_harness::{
    run_admission, run_comm, table1, CommConfig, Metric, Pattern,
};
use shs_mpi::OsuParams;

fn tiny_comm(_metric: Metric) -> CommConfig {
    CommConfig {
        osu: OsuParams {
            sizes: vec![8, 4096, 1 << 18],
            iterations: 10,
            warmup: 2,
            window: 16,
        },
        runs: 2,
        seed: 7,
    }
}

fn bench_table1(c: &mut Criterion) {
    c.bench_function("table1", |b| b.iter(|| black_box(table1::render())));
}

fn bench_fig5(c: &mut Criterion) {
    c.bench_function("fig5_bw", |b| {
        b.iter(|| black_box(run_comm(Metric::Bandwidth, &tiny_comm(Metric::Bandwidth))))
    });
}

fn bench_fig6(c: &mut Criterion) {
    c.bench_function("fig6_bw_overhead", |b| {
        b.iter(|| {
            let res = run_comm(Metric::Bandwidth, &tiny_comm(Metric::Bandwidth));
            black_box(res.overhead_of("vni:true"))
        })
    });
}

fn bench_fig7(c: &mut Criterion) {
    c.bench_function("fig7_latency", |b| {
        b.iter(|| black_box(run_comm(Metric::Latency, &tiny_comm(Metric::Latency))))
    });
}

fn bench_fig8(c: &mut Criterion) {
    c.bench_function("fig8_latency_overhead", |b| {
        b.iter(|| {
            let res = run_comm(Metric::Latency, &tiny_comm(Metric::Latency));
            black_box(res.overhead_of("vni:false"))
        })
    });
}

fn bench_fig9(c: &mut Criterion) {
    // The ramp experiment dominates its own runtime; benchmark a short
    // synthetic spike as the admission-pipeline proxy for the ramp too.
    c.bench_function("fig9_ramp", |b| {
        b.iter(|| black_box(run_admission(Pattern::Spike { jobs: 20 }, true, 3, 60)))
    });
}

fn bench_fig10(c: &mut Criterion) {
    c.bench_function("fig10_ramp_delay", |b| {
        b.iter(|| {
            let run = run_admission(Pattern::Spike { jobs: 20 }, false, 4, 60);
            let delays: Vec<f64> =
                run.jobs.iter().filter_map(|j| j.admission_delay_s()).collect();
            black_box(delays)
        })
    });
}

fn bench_fig11(c: &mut Criterion) {
    c.bench_function("fig11_spike", |b| {
        b.iter(|| black_box(run_admission(Pattern::Spike { jobs: 40 }, true, 5, 120)))
    });
}

fn bench_fig12(c: &mut Criterion) {
    c.bench_function("fig12_boxplots", |b| {
        b.iter(|| {
            let w = run_admission(Pattern::Spike { jobs: 20 }, true, 6, 60);
            let wo = run_admission(Pattern::Spike { jobs: 20 }, false, 6, 60);
            let dw: Vec<f64> = w.jobs.iter().filter_map(|j| j.admission_delay_s()).collect();
            let dwo: Vec<f64> = wo.jobs.iter().filter_map(|j| j.admission_delay_s()).collect();
            black_box((
                shs_des::stats::Boxplot::from(&dw),
                shs_des::stats::Boxplot::from(&dwo),
            ))
        })
    });
}

criterion_group! {
    name = figures;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3));
    targets = bench_table1, bench_fig5, bench_fig6, bench_fig7, bench_fig8,
              bench_fig9, bench_fig10, bench_fig11, bench_fig12
}
criterion_main!(figures);
