//! Ablation benches for the design choices DESIGN.md calls out:
//! * webhook latency vs admission delay (the VNI Service's only
//!   data-free knob),
//! * snapshotting policy of the ACID store,
//! * DRC (pre-existing credential path) vs the VNI-Service flow,
//! * per-message vs per-endpoint authentication (why kernel-bypass keeps
//!   the data path overhead at zero).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use shs_cxi::{CxiDevice, CxiDriver, DrcBroker};
use shs_cassini::{CassiniNic, CassiniParams};
use shs_des::{DetRng, SimDur, SimTime};
use shs_fabric::NicAddr;
use shs_oslinux::{Host, Pid, Uid};
use shs_vnistore::{Store, StoreConfig};
use slingshot_k8s::{alpine, Cluster, ClusterConfig};

/// Admission of a fixed burst under different webhook latencies: shows
/// that the VNI Service stays off the critical path until its latency
/// approaches the pod-setup pipeline's.
fn bench_webhook_latency_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("admission_vs_webhook_latency");
    for ms in [5u64, 50, 200] {
        group.bench_function(format!("webhook_{ms}ms"), |b| {
            b.iter(|| {
                let mut cluster = Cluster::new(ClusterConfig {
                    webhook_latency: SimDur::from_millis(ms),
                    seed: 3,
                    ..Default::default()
                });
                for i in 0..6 {
                    cluster.submit_job(
                        SimTime::ZERO,
                        "t",
                        &format!("j{i}"),
                        &[("vni", "true")],
                        1,
                        &alpine(),
                        Some(10),
                    );
                }
                cluster.run_until(
                    SimTime::ZERO,
                    SimTime::from_nanos(10_000_000_000),
                    SimDur::from_millis(20),
                );
                let started = (0..6)
                    .filter(|i| cluster.job_started_at("t", &format!("j{i}")).is_some())
                    .count();
                black_box(started)
            })
        });
    }
    group.finish();
}

/// WAL-only vs periodic snapshots: recovery cost after N transactions.
fn bench_store_recovery_policy(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_recovery");
    for (name, snapshot_every) in [("wal_only", None), ("snapshot_64", Some(64u64))] {
        group.bench_function(name, |b| {
            let mut store = Store::new(StoreConfig { snapshot_every, ..Default::default() });
            for i in 0..512u32 {
                let mut txn = store.begin();
                txn.put("vnis", &i.to_be_bytes(), &i.to_le_bytes());
                txn.commit();
            }
            let disk = store.shutdown();
            b.iter(|| {
                let recovered = Store::recover(disk.clone(), StoreConfig::default());
                black_box(recovered.row_count("vnis"))
            })
        });
    }
    group.finish();
}

/// DRC redemption vs the paper's CNI-driven service creation: both end
/// in a CXI service; the paper's point is that only the latter is
/// container-granular. Cost-wise they are comparable.
fn bench_drc_vs_cni_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("credential_paths");
    group.bench_function("drc_redeem", |b| {
        let host = Host::new("n0");
        let root = host.credentials(Pid(1)).unwrap();
        let mut broker = DrcBroker::new(100..60_000);
        let mut dev = CxiDevice::new(
            CxiDriver::extended(),
            CassiniNic::new(NicAddr(1), CassiniParams::default(), DetRng::new(4)),
        );
        b.iter(|| {
            // The minimal broker never recycles VNIs; restart it when the
            // range runs dry so long criterion runs keep measuring the
            // same acquire+redeem path.
            let cred = match broker.acquire(Uid(1000)) {
                Ok(c) => c,
                Err(_) => {
                    broker = DrcBroker::new(100..60_000);
                    broker.acquire(Uid(1000)).expect("fresh range")
                }
            };
            let svc = broker.redeem(cred.id, &root, &mut dev, Uid(1000)).expect("redeem");
            // Keep the device's service table bounded.
            dev.destroy_svc(&root, svc).expect("destroy");
            broker.release(cred.id).expect("release");
            black_box(svc)
        })
    });
    group.bench_function("vni_service_sync", |b| {
        use shs_k8s::{ApiObject, DecoratorHooks};
        use slingshot_k8s::{EndpointHandle, EndpointRole, VniDb, VniDbConfig, VniEndpoint};
        use std::cell::RefCell;
        use std::rc::Rc;
        let ep = Rc::new(RefCell::new(VniEndpoint::new(VniDb::new(VniDbConfig {
            range: 1024..60_000,
            quarantine: SimDur::from_secs(30),
        }))));
        let mut handle = EndpointHandle { endpoint: ep, role: EndpointRole::Jobs };
        let mut i = 0u64;
        b.iter(|| {
            let mut job = ApiObject::new("Job", "t", &format!("j{i}"), serde_json::json!({}));
            i += 1;
            job.meta.annotations.insert("vni".into(), "true".into());
            black_box(handle.sync(&job, &[], SimTime::ZERO))
        })
    });
    group.finish();
}

criterion_group! {
    name = ablation;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3));
    targets = bench_webhook_latency_sweep, bench_store_recovery_policy, bench_drc_vs_cni_path
}
criterion_main!(ablation);
