//! Micro-benchmarks of the stack's hot and security-critical paths:
//! the authenticated endpoint-creation path (the paper's §III-A member
//! check), VNI database transactions, fabric forwarding, and the
//! decorator-controller webhook round.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use shs_cassini::{CassiniNic, CassiniParams};
use shs_cxi::{CxiDevice, CxiDriver, CxiServiceDesc, SvcMember};
use shs_des::{DetRng, SimTime};
use shs_fabric::{Fabric, NicAddr, TrafficClass, Vni};
use shs_oslinux::{Gid, Host, NetNsId, Pid, Uid};
use shs_harness::OsuAllreduceWorkload;
use shs_vnistore::{Store, StoreConfig};
use slingshot_k8s::{
    AcquireReleaseWorkload, ChurnHotWorkload, FabricAdaptiveHotWorkload, FabricTransferHotWorkload,
    PlegStatusReadWorkload, ServiceMeshHotWorkload,
};

fn bench_ep_alloc_auth(c: &mut Criterion) {
    // The §III-A member check: netns vs uid member types.
    let mut group = c.benchmark_group("ep_alloc_auth");
    for (name, member_is_netns) in [("netns_member", true), ("uid_member", false)] {
        let mut host = Host::new("n0");
        let mut dev = CxiDevice::new(
            CxiDriver::extended(),
            CassiniNic::new(NicAddr(1), CassiniParams::default(), DetRng::new(1)),
        );
        let root = host.credentials(Pid(1)).unwrap();
        let app = host.spawn_detached("app", Uid(1000), Gid(1000));
        let netns = host.unshare_net_ns(app).unwrap();
        let member = if member_is_netns {
            SvcMember::NetNs(netns)
        } else {
            SvcMember::Uid(Uid(1000))
        };
        dev.alloc_svc(
            &root,
            CxiServiceDesc {
                members: vec![member],
                vnis: vec![Vni(100)],
                limits: Default::default(),
                label: "bench".into(),
            },
        )
        .unwrap();
        group.bench_function(name, |b| {
            b.iter(|| {
                let ep = dev
                    .ep_alloc(&host, app, Vni(100), TrafficClass::Dedicated)
                    .expect("authenticates");
                dev.ep_free(ep).expect("frees");
                black_box(ep)
            })
        });
    }
    group.finish();
}

fn bench_vni_db_txn(c: &mut Criterion) {
    // The canonical workload shared with `bench-run` (see
    // `slingshot_k8s::workloads`), so the Criterion line and the
    // machine-readable trajectory measure the same thing.
    c.bench_function("vni_db_acquire_release", |b| {
        let mut w = AcquireReleaseWorkload::new();
        b.iter(|| black_box(w.step()))
    });
}

fn bench_vni_db_churn_hot(c: &mut Criterion) {
    // High-occupancy hot path (shared with `bench-run`): 3000 of the
    // 3072 default-range VNIs held by standing tenants, one job churning
    // through the remainder past the 30 s quarantine each cycle.
    c.bench_function("vni_db_churn_hot", |b| {
        let mut w = ChurnHotWorkload::new();
        b.iter(|| black_box(w.step()))
    });
}

fn bench_store_commit(c: &mut Criterion) {
    c.bench_function("store_txn_commit", |b| {
        let mut store = Store::new(StoreConfig { snapshot_every: None, ..Default::default() });
        let mut i = 0u64;
        b.iter(|| {
            let mut txn = store.begin();
            txn.put("vnis", &i.to_be_bytes(), b"row");
            i += 1;
            black_box(txn.commit())
        })
    });
}

fn bench_fabric_transfer(c: &mut Criterion) {
    let mut group = c.benchmark_group("fabric_transfer");
    for (name, len) in [("64B", 64u64), ("1MB", 1 << 20)] {
        let mut fabric = Fabric::new(4);
        fabric.attach(NicAddr(1));
        fabric.attach(NicAddr(2));
        fabric.grant_vni(NicAddr(1), Vni(1)).unwrap();
        fabric.grant_vni(NicAddr(2), Vni(1)).unwrap();
        let mut now = SimTime::ZERO;
        group.bench_function(name, |b| {
            b.iter(|| {
                let out = fabric.transfer(
                    now,
                    NicAddr(1),
                    NicAddr(2),
                    Vni(1),
                    TrafficClass::Dedicated,
                    len,
                    1,
                );
                now += shs_des::SimDur::from_micros(100);
                black_box(out)
            })
        });
    }
    group.finish();
}

fn bench_fabric_transfer_hot(c: &mut Criterion) {
    // The multi-switch hot path (shared with `bench-run`): transfers
    // across a 3-group × 2-switch dragonfly, cycling NIC pairs and
    // traffic classes through routing + per-class trunk scheduling.
    c.bench_function("fabric_transfer_hot", |b| {
        let mut w = FabricTransferHotWorkload::new();
        b.iter(|| black_box(w.step()))
    });
}

fn bench_fabric_adaptive_hot(c: &mut Criterion) {
    // The adaptive twin of `fabric_transfer_hot` (shared with
    // `bench-run`): the same NIC cycling under UGAL routing, so the
    // delta between the two lines is the injection-time queue compare.
    c.bench_function("fabric_adaptive_hot", |b| {
        let mut w = FabricAdaptiveHotWorkload::new();
        b.iter(|| black_box(w.step()))
    });
}

fn bench_osu_allreduce(c: &mut Criterion) {
    // The collective hot path (shared with `bench-run`): one 8-rank,
    // 64 KiB ring allreduce per iteration over a 2-group dragonfly,
    // every chunk hop crossing the group trunk.
    c.bench_function("osu_allreduce", |b| {
        let mut w = OsuAllreduceWorkload::new();
        b.iter(|| black_box(w.step()))
    });
}

fn bench_service_mesh_hot(c: &mut Criterion) {
    // The serving-plane data path (shared with `bench-run`): one
    // TSoR-style request/response round trip per iteration between 8
    // replica NICs on the 3-group dragonfly, the response leg departing
    // at the request's arrival instant.
    c.bench_function("service_mesh_hot", |b| {
        let mut w = ServiceMeshHotWorkload::new();
        b.iter(|| black_box(w.step()))
    });
}

fn bench_pleg_status_read(c: &mut Criterion) {
    // The PLEG status-read pair (shared with `bench-run`): the cached
    // read must stay flat from 100 to 10,000 pods while the full-scan
    // contrast row grows with the pod count.
    let mut group = c.benchmark_group("pleg_status_read");
    for pods in [100u64, 10_000] {
        let mut cached = PlegStatusReadWorkload::new(pods);
        group.bench_function(format!("cached_{pods}"), |b| {
            b.iter(|| black_box(cached.cached_read()))
        });
        let mut scan = PlegStatusReadWorkload::new(pods);
        group.bench_function(format!("scan_{pods}"), |b| {
            b.iter(|| black_box(scan.scan_read()))
        });
    }
    group.finish();
}

fn bench_nic_send(c: &mut Criterion) {
    c.bench_function("nic_send_small", |b| {
        let mut fabric = Fabric::new(4);
        let mut nic = CassiniNic::new(NicAddr(1), CassiniParams::default(), DetRng::new(2));
        fabric.attach(NicAddr(1));
        fabric.attach(NicAddr(2));
        fabric.grant_vni(NicAddr(1), Vni(1)).unwrap();
        fabric.grant_vni(NicAddr(2), Vni(1)).unwrap();
        nic.configure_service(shs_cassini::ServiceEntry {
            id: shs_cassini::SvcId(1),
            vnis: vec![Vni(1)],
            limits: Default::default(),
            enabled: true,
        });
        let ep = nic
            .alloc_endpoint(shs_cassini::SvcId(1), Vni(1), TrafficClass::Dedicated)
            .unwrap();
        let mut now = SimTime::ZERO;
        b.iter(|| {
            let out = nic.send(now, &mut fabric, ep, NicAddr(2), shs_cassini::EpIdx(0), 0, 8);
            now += shs_des::SimDur::from_micros(10);
            black_box(out)
        })
    });
}

fn bench_netns_lookup(c: &mut Criterion) {
    // The procfs netns-inode extraction the extended driver performs.
    c.bench_function("proc_netns_inode", |b| {
        let mut host = Host::new("n0");
        let pid = host.spawn_detached("app", Uid(1), Gid(1));
        host.unshare_net_ns(pid).unwrap();
        b.iter(|| black_box(host.proc_netns_inode(pid).unwrap()))
    });
}

fn bench_switch_forward_denied(c: &mut Criterion) {
    // Cost of the enforcement fast-path that drops cross-tenant packets.
    c.bench_function("switch_forward_denied", |b| {
        let mut fabric = Fabric::new(4);
        fabric.attach(NicAddr(1));
        fabric.attach(NicAddr(2));
        // No grants: every transfer is denied at ingress.
        b.iter(|| {
            black_box(fabric.transfer(
                SimTime::ZERO,
                NicAddr(1),
                NicAddr(2),
                Vni(9),
                TrafficClass::Dedicated,
                64,
                1,
            ))
        })
    });
    let _ = NetNsId(0);
}

criterion_group! {
    name = micro;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2));
    targets = bench_ep_alloc_auth, bench_vni_db_txn, bench_vni_db_churn_hot,
              bench_store_commit, bench_fabric_transfer, bench_fabric_transfer_hot,
              bench_fabric_adaptive_hot, bench_osu_allreduce, bench_service_mesh_hot,
              bench_pleg_status_read, bench_nic_send, bench_netns_lookup,
              bench_switch_forward_denied
}
criterion_main!(micro);
