//! `shs-bench` carries the workspace's Criterion benchmark targets (see
//! `benches/`): `micro` times the hot and security-critical paths,
//! `figures` regenerates each paper table/figure once per sample, and
//! `ablation` sweeps design alternatives (webhook latency, recovery
//! policy, DRC vs CNI credential paths). Run them with `cargo bench`.
