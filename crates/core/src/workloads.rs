//! Canonical VNI-database workloads, shared by the Criterion `micro`
//! bench targets (`shs-bench`) and the `bench-run` trajectory binary
//! (`shs-harness`). One definition of each workload means the two
//! harnesses always time **the same thing** — tune a prefill count or
//! clock step here and both pick it up, keeping cross-PR comparisons in
//! `results/BENCH_pr<N>.json` like-for-like.
//!
//! Both workloads run at the default range width (3072, §III-C1's
//! VNI space minus the reserved global VNI).

use shs_des::{SimDur, SimTime};
use shs_fabric::Vni;

use crate::vni_db::{VniDb, VniDbConfig, VniOwner};

/// Allocate/release cycles with the clock pinned at t=0: released VNIs
/// pile up in quarantine (a teardown storm inside one 30 s window), so
/// the allocator must get past an ever-growing quarantined prefix.
/// Nothing ever becomes reusable at a pinned clock, so once the range
/// is exhausted (every 3072 steps) the workload resets to a fresh
/// database and the backlog profile restarts — any sample budget is
/// safe.
#[derive(Debug)]
pub struct AcquireReleaseWorkload {
    db: VniDb,
    i: u64,
    epoch_steps: u64,
}

impl AcquireReleaseWorkload {
    /// Fresh database at the default range width.
    pub fn new() -> Self {
        AcquireReleaseWorkload { db: VniDb::new(VniDbConfig::default()), i: 0, epoch_steps: 0 }
    }

    /// One acquire + release for a fresh owner.
    pub fn step(&mut self) -> Vni {
        if self.epoch_steps >= VniDbConfig::default().range.len() as u64 {
            // Every VNI is now quarantined at the pinned clock: restart
            // the epoch instead of panicking on Exhausted.
            self.db = VniDb::new(VniDbConfig::default());
            self.epoch_steps = 0;
        }
        let owner = VniOwner::Job { key: format!("ns/j{}", self.i) };
        self.i += 1;
        self.epoch_steps += 1;
        let vni = self.db.acquire(owner, SimTime::ZERO).expect("capacity");
        self.db.release(vni, SimTime::ZERO).expect("release");
        vni
    }

    /// The database under measurement (counter inspection).
    pub fn db(&self) -> &VniDb {
        &self.db
    }
}

impl Default for AcquireReleaseWorkload {
    fn default() -> Self {
        Self::new()
    }
}

/// The high-occupancy hot path: [`ChurnHotWorkload::STANDING`] of the
/// 3072 default-range VNIs are held by standing tenants while one job
/// churns through the remainder, the clock stepping past the 30 s
/// quarantine each cycle — every acquire must get past the standing
/// allocations to the single reusable VNI.
#[derive(Debug)]
pub struct ChurnHotWorkload {
    db: VniDb,
    now: SimTime,
    i: u64,
}

impl ChurnHotWorkload {
    /// VNIs held by standing tenants for the whole workload.
    pub const STANDING: u64 = 3000;

    /// Database prefilled with the standing allocations.
    pub fn new() -> Self {
        let mut db = VniDb::new(VniDbConfig::default());
        for i in 0..Self::STANDING {
            db.acquire(VniOwner::Job { key: format!("standing/s{i}") }, SimTime::ZERO)
                .expect("prefill capacity");
        }
        ChurnHotWorkload { db, now: SimTime::ZERO, i: 0 }
    }

    /// One churn cycle: advance past the quarantine window, acquire for
    /// a fresh owner, release immediately.
    pub fn step(&mut self) -> Vni {
        self.now += SimDur::from_secs(31);
        let owner = VniOwner::Job { key: format!("hot/h{}", self.i) };
        self.i += 1;
        let vni = self.db.acquire(owner, self.now).expect("capacity");
        self.db.release(vni, self.now).expect("release");
        vni
    }

    /// The database under measurement (counter inspection).
    pub fn db(&self) -> &VniDb {
        &self.db
    }
}

impl Default for ChurnHotWorkload {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_release_steps_use_distinct_owners() {
        let mut w = AcquireReleaseWorkload::new();
        let a = w.step();
        let b = w.step();
        // At a pinned clock the released VNI stays quarantined, so each
        // step moves to the next free VNI.
        assert_ne!(a, b);
        assert_eq!(w.db().counters().acquires, 2);
    }

    #[test]
    fn acquire_release_survives_range_exhaustion_by_resetting() {
        // 3072 steps quarantine the whole default range; step 3073 must
        // roll into a fresh epoch instead of panicking (bench sample
        // budgets should never be able to abort a measurement run).
        let mut w = AcquireReleaseWorkload::new();
        let first = w.step();
        for _ in 0..3_071 {
            w.step(); // finish the first epoch: all 3072 VNIs quarantined
        }
        assert_eq!(w.step(), first, "fresh epoch restarts at the range base");
    }

    #[test]
    fn churn_hot_reaches_steady_state_reuse() {
        let mut w = ChurnHotWorkload::new();
        assert_eq!(w.db().counters().acquires, ChurnHotWorkload::STANDING);
        let first = w.step(); // consumes a fresh VNI past the standing block
        for _ in 0..3 {
            // Steady state: the clock stepped past the window, so the
            // same VNI is reused every cycle.
            assert_eq!(w.step(), first);
        }
        let c = w.db().counters();
        assert_eq!(c.reuse_allocs, 3);
        assert_eq!(w.db().allocated_count() as u64, ChurnHotWorkload::STANDING);
    }
}
