//! Canonical benchmark workloads (VNI database and fabric), shared by
//! the Criterion `micro` bench targets (`shs-bench`) and the
//! `bench-run` trajectory binary (`shs-harness`). One definition of
//! each workload means the two harnesses always time **the same
//! thing** — tune a prefill count or clock step here and both pick it
//! up, keeping cross-PR comparisons in `results/BENCH_pr<N>.json`
//! like-for-like.
//!
//! The two VNI-database workloads run at the default range width
//! (3072, §III-C1's VNI space minus the reserved global VNI); the
//! fabric workload runs on a 3-group dragonfly topology.

use std::collections::VecDeque;

use shs_des::{SimDur, SimTime};
use shs_fabric::{
    CostModel, Fabric, NicAddr, RoutingPolicy, SwitchId, TopologySpec, TrafficClass,
    TransferOutcome, Vni,
};
use shs_k8s::{kinds, ApiObject, ApiServer, Pleg, PodPhase};

use crate::sharded_db::ShardedVniDb;
use crate::vni_db::{VniDb, VniDbConfig, VniOwner};

/// Allocate/release cycles with the clock pinned at t=0: released VNIs
/// pile up in quarantine (a teardown storm inside one 30 s window), so
/// the allocator must get past an ever-growing quarantined prefix.
/// Nothing ever becomes reusable at a pinned clock, so once the range
/// is exhausted (every 3072 steps) the workload resets to a fresh
/// database and the backlog profile restarts — any sample budget is
/// safe.
#[derive(Debug)]
pub struct AcquireReleaseWorkload {
    db: VniDb,
    i: u64,
    epoch_steps: u64,
}

impl AcquireReleaseWorkload {
    /// Fresh database at the default range width.
    pub fn new() -> Self {
        AcquireReleaseWorkload { db: VniDb::new(VniDbConfig::default()), i: 0, epoch_steps: 0 }
    }

    /// One acquire + release for a fresh owner.
    pub fn step(&mut self) -> Vni {
        if self.epoch_steps >= VniDbConfig::default().range.len() as u64 {
            // Every VNI is now quarantined at the pinned clock: restart
            // the epoch instead of panicking on Exhausted.
            self.db = VniDb::new(VniDbConfig::default());
            self.epoch_steps = 0;
        }
        let owner = VniOwner::Job { key: format!("ns/j{}", self.i) };
        self.i += 1;
        self.epoch_steps += 1;
        let vni = self.db.acquire(owner, SimTime::ZERO).expect("capacity");
        self.db.release(vni, SimTime::ZERO).expect("release");
        vni
    }

    /// The database under measurement (counter inspection).
    pub fn db(&self) -> &VniDb {
        &self.db
    }
}

impl Default for AcquireReleaseWorkload {
    fn default() -> Self {
        Self::new()
    }
}

/// The high-occupancy hot path: [`ChurnHotWorkload::STANDING`] of the
/// 3072 default-range VNIs are held by standing tenants while one job
/// churns through the remainder, the clock stepping past the 30 s
/// quarantine each cycle — every acquire must get past the standing
/// allocations to the single reusable VNI.
#[derive(Debug)]
pub struct ChurnHotWorkload {
    db: VniDb,
    now: SimTime,
    i: u64,
}

impl ChurnHotWorkload {
    /// VNIs held by standing tenants for the whole workload.
    pub const STANDING: u64 = 3000;

    /// Database prefilled with the standing allocations.
    pub fn new() -> Self {
        let mut db = VniDb::new(VniDbConfig::default());
        for i in 0..Self::STANDING {
            db.acquire(VniOwner::Job { key: format!("standing/s{i}") }, SimTime::ZERO)
                .expect("prefill capacity");
        }
        ChurnHotWorkload { db, now: SimTime::ZERO, i: 0 }
    }

    /// One churn cycle: advance past the quarantine window, acquire for
    /// a fresh owner, release immediately.
    pub fn step(&mut self) -> Vni {
        self.now += SimDur::from_secs(31);
        let owner = VniOwner::Job { key: format!("hot/h{}", self.i) };
        self.i += 1;
        let vni = self.db.acquire(owner, self.now).expect("capacity");
        self.db.release(vni, self.now).expect("release");
        vni
    }

    /// The database under measurement (counter inspection).
    pub fn db(&self) -> &VniDb {
        &self.db
    }
}

impl Default for ChurnHotWorkload {
    fn default() -> Self {
        Self::new()
    }
}

/// The multi-switch fabric hot path: message transfers across a 3-group
/// × 2-switch dragonfly (12 NICs, one shared VNI), cycling sources,
/// destinations and traffic classes so every step exercises routing,
/// edge-link reservation and the per-class trunk scheduler. The clock
/// advances a fixed 2 µs per step, keeping link backlogs bounded and the
/// step cost flat over any sample budget.
#[derive(Debug)]
pub struct FabricTransferHotWorkload {
    fabric: Fabric,
    now: SimTime,
    i: u64,
}

impl FabricTransferHotWorkload {
    /// NICs attached round-robin across the six switches.
    pub const NICS: u32 = 12;

    /// Payload bytes per transfer (two MTUs).
    pub const SIZE: u64 = 4096;

    /// Fresh fabric with every NIC granted the measurement VNI.
    pub fn new() -> Self {
        let spec = TopologySpec { groups: 3, switches_per_group: 2, edge_ports: 4 };
        let mut fabric =
            Fabric::with_topology(CostModel::default(), spec, RoutingPolicy::Minimal);
        let switches = spec.total_switches();
        for i in 0..Self::NICS {
            let nic = NicAddr(i + 1);
            fabric.attach_to(nic, SwitchId(i as usize % switches));
            fabric.grant_vni(nic, Vni(7)).expect("just attached");
        }
        FabricTransferHotWorkload { fabric, now: SimTime::ZERO, i: 0 }
    }

    /// One transfer between a deterministically cycling NIC pair.
    pub fn step(&mut self) -> TransferOutcome {
        let n = Self::NICS as u64;
        let src = self.i % n;
        let dst = (src + 1 + (self.i * 5) % (n - 1)) % n;
        let tc = TrafficClass::ALL[(self.i % 4) as usize];
        self.now += SimDur::from_micros(2);
        self.i += 1;
        self.fabric.transfer(
            self.now,
            NicAddr(src as u32 + 1),
            NicAddr(dst as u32 + 1),
            Vni(7),
            tc,
            Self::SIZE,
            self.i,
        )
    }

    /// The fabric under measurement (counter inspection).
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }
}

impl Default for FabricTransferHotWorkload {
    fn default() -> Self {
        Self::new()
    }
}

/// The adaptive-routing twin of [`FabricTransferHotWorkload`]: the same
/// 12-NIC cycling and 2 µs clock step on the same 3-group dragonfly,
/// but under [`RoutingPolicy::Adaptive`] — so every step pays the UGAL
/// queue-compare (minimal vs. salted Valiant) at injection on top of
/// routing, edge-link reservation and the per-class trunk scheduler.
/// The `fabric_adaptive_hot` bench row keeps that premium visible next
/// to the static `fabric_transfer_hot` baseline.
#[derive(Debug)]
pub struct FabricAdaptiveHotWorkload {
    fabric: Fabric,
    now: SimTime,
    i: u64,
}

impl FabricAdaptiveHotWorkload {
    /// NICs attached round-robin across the six switches.
    pub const NICS: u32 = FabricTransferHotWorkload::NICS;

    /// Payload bytes per transfer (two MTUs).
    pub const SIZE: u64 = FabricTransferHotWorkload::SIZE;

    /// Fresh adaptive fabric with every NIC granted the measurement VNI.
    pub fn new() -> Self {
        let spec = TopologySpec { groups: 3, switches_per_group: 2, edge_ports: 4 };
        let mut fabric =
            Fabric::with_topology(CostModel::default(), spec, RoutingPolicy::Adaptive);
        let switches = spec.total_switches();
        for i in 0..Self::NICS {
            let nic = NicAddr(i + 1);
            fabric.attach_to(nic, SwitchId(i as usize % switches));
            fabric.grant_vni(nic, Vni(7)).expect("just attached");
        }
        FabricAdaptiveHotWorkload { fabric, now: SimTime::ZERO, i: 0 }
    }

    /// One transfer between a deterministically cycling NIC pair.
    pub fn step(&mut self) -> TransferOutcome {
        let n = Self::NICS as u64;
        let src = self.i % n;
        let dst = (src + 1 + (self.i * 5) % (n - 1)) % n;
        let tc = TrafficClass::ALL[(self.i % 4) as usize];
        self.now += SimDur::from_micros(2);
        self.i += 1;
        self.fabric.transfer(
            self.now,
            NicAddr(src as u32 + 1),
            NicAddr(dst as u32 + 1),
            Vni(7),
            tc,
            Self::SIZE,
            self.i,
        )
    }

    /// The fabric under measurement (counter inspection).
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }
}

impl Default for FabricAdaptiveHotWorkload {
    fn default() -> Self {
        Self::new()
    }
}

/// The serving-plane data path behind the `service_mesh_hot` bench row:
/// TSoR-style request/response round trips between
/// [`ServiceMeshHotWorkload::REPLICAS`] replica NICs spread over the
/// same 3-group dragonfly as [`FabricTransferHotWorkload`]. Each step
/// is the two-leg RPC the scenario engine's
/// [`TrafficPattern::RequestResponse`] issues: the request transfers at
/// `now`, the response departs at the request's arrival instant, and
/// the step returns the round-trip latency — so the row times routing,
/// edge-link reservation and the low-latency trunk class twice per op,
/// plus the virtual-time composition of the two legs.
///
/// [`TrafficPattern::RequestResponse`]:
///     crate::scenario::TrafficPattern::RequestResponse
#[derive(Debug)]
pub struct ServiceMeshHotWorkload {
    fabric: Fabric,
    now: SimTime,
    i: u64,
}

impl ServiceMeshHotWorkload {
    /// Replica NICs attached round-robin across the six switches.
    pub const REPLICAS: u32 = 8;

    /// Request payload bytes (one MTU).
    pub const REQUEST: u64 = 2048;

    /// Response payload bytes (two MTUs).
    pub const RESPONSE: u64 = 4096;

    /// Fresh fabric with every replica granted the service VNI.
    pub fn new() -> Self {
        let spec = TopologySpec { groups: 3, switches_per_group: 2, edge_ports: 4 };
        let mut fabric =
            Fabric::with_topology(CostModel::default(), spec, RoutingPolicy::Minimal);
        let switches = spec.total_switches();
        for i in 0..Self::REPLICAS {
            let nic = NicAddr(i + 1);
            fabric.attach_to(nic, SwitchId(i as usize % switches));
            fabric.grant_vni(nic, Vni(9)).expect("just attached");
        }
        ServiceMeshHotWorkload { fabric, now: SimTime::ZERO, i: 0 }
    }

    /// One request/response round trip between the next round-robin
    /// replica pair; `Some(round_trip_ns)` when both legs delivered.
    pub fn step(&mut self) -> Option<u64> {
        let n = u64::from(Self::REPLICAS);
        let src = NicAddr((self.i % n) as u32 + 1);
        let dst = NicAddr(((self.i + 1) % n) as u32 + 1);
        self.now += SimDur::from_micros(2);
        self.i += 1;
        let req = self.fabric.transfer(
            self.now,
            src,
            dst,
            Vni(9),
            TrafficClass::LowLatency,
            Self::REQUEST,
            2 * self.i,
        );
        let TransferOutcome::Delivered { arrival, .. } = req else { return None };
        let resp = self.fabric.transfer(
            arrival,
            dst,
            src,
            Vni(9),
            TrafficClass::LowLatency,
            Self::RESPONSE,
            2 * self.i + 1,
        );
        let TransferOutcome::Delivered { arrival: done, .. } = resp else { return None };
        Some((done - self.now).as_nanos())
    }

    /// The fabric under measurement (counter inspection).
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }
}

impl Default for ServiceMeshHotWorkload {
    fn default() -> Self {
        Self::new()
    }
}

/// The status-read pair behind the `pleg_status_read_*` /
/// `pod_scan_status_read_*` bench rows: a cluster of `pods` Running
/// pods spread over [`PlegStatusReadWorkload::GROUPS`] services, read
/// either through the PLEG cache ([`cached_read`] — a per-phase counter
/// lookup plus one group's ready count, O(1) in the pod count) or by
/// the pre-PLEG full pod scan ([`scan_read`] — O(pods)). Benchmarked at
/// 100 and 10,000 pods, the cached median must stay flat while the scan
/// median grows linearly — the PR's O(1) acceptance criterion.
///
/// [`cached_read`]: PlegStatusReadWorkload::cached_read
/// [`scan_read`]: PlegStatusReadWorkload::scan_read
#[derive(Debug)]
pub struct PlegStatusReadWorkload {
    api: ApiServer,
    pleg: Pleg,
    groups: Vec<String>,
    i: u64,
}

impl PlegStatusReadWorkload {
    /// Service groups the pods are spread over.
    pub const GROUPS: u64 = 8;

    /// A settled cluster of `pods` Running pods, PLEG synced once.
    pub fn new(pods: u64) -> Self {
        let groups: Vec<String> = (0..Self::GROUPS).map(|g| format!("svc{g}")).collect();
        let mut api = ApiServer::default();
        for i in 0..pods {
            let group = &groups[(i % Self::GROUPS) as usize];
            let name = format!("{group}-{i}");
            api.create(
                ApiObject::new(
                    kinds::POD,
                    "bench",
                    &name,
                    serde_json::json!({"image": "x", "job_name": group}),
                ),
                SimTime::ZERO,
            )
            .expect("fresh pod name");
            api.mutate(kinds::POD, "bench", &name, |o| {
                o.status = serde_json::json!({"phase": "Running", "started_at_ns": i});
            })
            .expect("just created");
        }
        let mut pleg = Pleg::new();
        pleg.sync(&api);
        PlegStatusReadWorkload { api, pleg, groups, i: 0 }
    }

    /// One cached status read: the cluster-wide Running count plus the
    /// next round-robin group's ready count — the reads `Cluster`
    /// status queries issue every control-plane tick.
    pub fn cached_read(&mut self) -> u64 {
        let group = &self.groups[(self.i % Self::GROUPS) as usize];
        self.i += 1;
        self.pleg.count(PodPhase::Running) + self.pleg.ready_count("bench", group) as u64
    }

    /// The same answer computed the pre-PLEG way: a full pod scan.
    pub fn scan_read(&mut self) -> u64 {
        let group = &self.groups[(self.i % Self::GROUPS) as usize];
        self.i += 1;
        let snap = Pleg::scan(&self.api);
        let ready =
            snap.groups.get(&format!("bench/{group}")).map_or(0, |g| g.ready.len() as u64);
        snap.phase_counts[1] + ready
    }

    /// Total pods in the cluster under measurement.
    pub fn pod_count(&self) -> u64 {
        self.pleg.pod_count()
    }
}

/// The control-plane stress workload behind the `vni_stress` scenarios
/// and bench rows: a rolling population of tenants churning through the
/// widest legal VNI range (1024..65535) against a [`ShardedVniDb`] in
/// group-commit mode.
///
/// Each step advances the clock 100 ms and performs exactly one
/// successful control-plane transaction: while the live population is
/// below half the range, a **fresh tenant** acquires; at capacity the
/// **oldest live tenant** releases — so steady state alternates
/// acquire/release, quarantine continuously recycles VNIs (the 30 s
/// window spans 300 steps, far below the free slack), and the audit log
/// grows by one entry per step. Every [`VniStressWorkload::FLUSH_EVERY`]
/// steps the open batch group-commits — one WAL record and one fsync
/// per shard per window.
///
/// Everything is derived from the step index, so runs are deterministic
/// and — because the facade preserves single-store allocation order —
/// identical at any shard count.
#[derive(Debug)]
pub struct VniStressWorkload {
    db: ShardedVniDb,
    now: SimTime,
    tenants: u64,
    next_tenant: u64,
    live: VecDeque<(u64, Vni)>,
    cap: usize,
    ops: u64,
    exhaustions: u64,
}

impl VniStressWorkload {
    /// Steps per group-commit window.
    pub const FLUSH_EVERY: u64 = 64;

    /// The stress range: the full VNI space above the reserved global
    /// VNI (§III-C1), minus the all-ones value.
    pub const RANGE: core::ops::Range<u16> = 1024..65535;

    /// Fresh workload: `tenants` distinct tenant identities cycled over
    /// `shards` store shards.
    pub fn new(shards: usize, tenants: u64) -> Self {
        Self::with_config(
            shards,
            tenants,
            VniDbConfig { range: Self::RANGE, quarantine: SimDur::from_secs(30) },
        )
    }

    /// Like [`VniStressWorkload::new`] with an explicit database config
    /// (tests use narrow ranges to reach quarantine pressure quickly).
    pub fn with_config(shards: usize, tenants: u64, config: VniDbConfig) -> Self {
        let tenants = tenants.max(1);
        // Capping the live population at the tenant count keeps every
        // cycled id released before its identity comes around again, so
        // each acquire is genuinely fresh (not an idempotent re-read).
        let cap = (config.range.len() / 2).clamp(1, tenants as usize);
        let mut db = ShardedVniDb::new(config, shards);
        db.group_begin();
        VniStressWorkload {
            db,
            now: SimTime::ZERO,
            tenants,
            next_tenant: 0,
            live: VecDeque::new(),
            cap,
            ops: 0,
            exhaustions: 0,
        }
    }

    /// One control-plane transaction (see the type docs), plus a group
    /// flush at window boundaries.
    pub fn step(&mut self) {
        self.now += SimDur::from_millis(100);
        if self.live.len() >= self.cap {
            self.release_oldest();
        } else {
            let id = self.next_tenant % self.tenants;
            self.next_tenant += 1;
            let owner = VniOwner::Job { key: format!("stress/t{id}") };
            match self.db.acquire(owner, self.now) {
                Ok(vni) => self.live.push_back((id, vni)),
                Err(_) => {
                    // Quarantine backlog ate the slack (cannot happen at
                    // the documented parameters, but the workload must
                    // make progress at any): fall back to a release.
                    self.exhaustions += 1;
                    self.release_oldest();
                }
            }
        }
        self.ops += 1;
        if self.ops.is_multiple_of(Self::FLUSH_EVERY) {
            self.db.group_flush();
        }
    }

    fn release_oldest(&mut self) {
        if let Some((_, vni)) = self.live.pop_front() {
            self.db.release(vni, self.now).expect("live VNI releases");
        }
    }

    /// Flush and close the group, returning the database and the final
    /// clock for end-state inspection.
    pub fn finish(mut self) -> (ShardedVniDb, SimTime, u64, u64) {
        self.db.group_end();
        (self.db, self.now, self.ops, self.exhaustions)
    }

    /// The database under measurement (counter inspection).
    pub fn db(&self) -> &ShardedVniDb {
        &self.db
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_release_steps_use_distinct_owners() {
        let mut w = AcquireReleaseWorkload::new();
        let a = w.step();
        let b = w.step();
        // At a pinned clock the released VNI stays quarantined, so each
        // step moves to the next free VNI.
        assert_ne!(a, b);
        assert_eq!(w.db().counters().acquires, 2);
    }

    #[test]
    fn acquire_release_survives_range_exhaustion_by_resetting() {
        // 3072 steps quarantine the whole default range; step 3073 must
        // roll into a fresh epoch instead of panicking (bench sample
        // budgets should never be able to abort a measurement run).
        let mut w = AcquireReleaseWorkload::new();
        let first = w.step();
        for _ in 0..3_071 {
            w.step(); // finish the first epoch: all 3072 VNIs quarantined
        }
        assert_eq!(w.step(), first, "fresh epoch restarts at the range base");
    }

    #[test]
    fn fabric_transfer_hot_delivers_and_spans_switches() {
        let mut w = FabricTransferHotWorkload::new();
        let mut delivered = 0;
        for _ in 0..200 {
            if matches!(w.step(), TransferOutcome::Delivered { .. }) {
                delivered += 1;
            }
        }
        assert!(delivered > 150, "the hot loop mostly delivers: {delivered}/200");
        let t = w.fabric().traffic(Vni(7));
        assert!(
            t.switch_hops > t.messages,
            "pairs must cross switches ({} hops / {} msgs)",
            t.switch_hops,
            t.messages
        );
        // Deterministic: a fresh workload replays the same outcomes.
        let mut w2 = FabricTransferHotWorkload::new();
        for _ in 0..200 {
            w2.step();
        }
        assert_eq!(w2.fabric().traffic(Vni(7)).messages, t.messages);
    }

    #[test]
    fn fabric_adaptive_hot_delivers_and_is_deterministic() {
        let mut w = FabricAdaptiveHotWorkload::new();
        let mut delivered = 0;
        for _ in 0..200 {
            if matches!(w.step(), TransferOutcome::Delivered { .. }) {
                delivered += 1;
            }
        }
        assert!(delivered > 150, "the adaptive hot loop mostly delivers: {delivered}/200");
        let t = w.fabric().traffic(Vni(7));
        assert!(t.switch_hops > t.messages, "pairs must cross switches");
        // Deterministic: a fresh workload replays the same outcomes, so
        // the bench row is stable across samples.
        let mut w2 = FabricAdaptiveHotWorkload::new();
        for _ in 0..200 {
            w2.step();
        }
        assert_eq!(w2.fabric().traffic(Vni(7)), t);
    }

    #[test]
    fn service_mesh_hot_round_trips_and_is_deterministic() {
        let mut w = ServiceMeshHotWorkload::new();
        let run = |w: &mut ServiceMeshHotWorkload| {
            let mut completed = 0u64;
            let mut total_ns = 0u64;
            for _ in 0..200 {
                if let Some(ns) = w.step() {
                    completed += 1;
                    total_ns += ns;
                }
            }
            (completed, total_ns)
        };
        let (completed, total_ns) = run(&mut w);
        assert!(completed > 150, "the mesh hot loop mostly completes: {completed}/200");
        let t = w.fabric().traffic(Vni(9));
        assert_eq!(t.messages, 2 * completed, "two delivered legs per round trip");
        // The round trip is two one-way latencies: strictly above one
        // unloaded hop, and the response leg really departed at the
        // request's arrival (total round trips sum both legs).
        assert!(total_ns / completed > w.fabric().unloaded_ns(64));
        // Deterministic: a fresh workload replays the same outcomes.
        let mut w2 = ServiceMeshHotWorkload::new();
        assert_eq!(run(&mut w2), (completed, total_ns));
    }

    #[test]
    fn pleg_status_reads_agree_with_the_full_scan_at_any_size() {
        for pods in [100u64, 1_000] {
            let mut cached = PlegStatusReadWorkload::new(pods);
            let mut scanned = PlegStatusReadWorkload::new(pods);
            assert_eq!(cached.pod_count(), pods);
            // Same round-robin cursor on both sides: every cached answer
            // must equal the O(pods) scan answer, across a full group
            // rotation.
            for _ in 0..2 * PlegStatusReadWorkload::GROUPS {
                assert_eq!(cached.cached_read(), scanned.scan_read());
            }
        }
    }

    #[test]
    fn vni_stress_alternates_acquire_release_at_capacity() {
        // 800-wide range → cap 400; the 30 s window spans 300 steps, so
        // the 400-wide free slack absorbs the quarantine backlog (the
        // regime the full-range stress scenarios run in) and the first
        // released VNIs recycle from step ~700.
        let cfg = VniDbConfig {
            range: 1024..1824,
            quarantine: SimDur::from_secs(30),
        };
        let mut w = VniStressWorkload::with_config(1, 1000, cfg);
        for _ in 0..1200 {
            w.step();
        }
        let (mut db, now, ops, exhaustions) = w.finish();
        assert_eq!(ops, 1200);
        let c = db.counters();
        assert!(c.releases > 0, "steady state releases");
        assert!(c.reuse_allocs > 0, "quarantined VNIs recycle");
        assert_eq!(exhaustions, 0, "slack absorbs the quarantine backlog");
        let stats = db.stats(now);
        assert_eq!(stats.allocated, 400, "live population pinned at capacity");
        db.check_index_consistency().unwrap();
    }

    #[test]
    fn vni_stress_end_state_is_shard_count_invariant() {
        let run = |shards: usize| {
            let cfg = VniDbConfig {
                range: 1024..1152,
                quarantine: SimDur::from_secs(30),
            };
            let mut w = VniStressWorkload::with_config(shards, 500, cfg);
            for _ in 0..600 {
                w.step();
            }
            let (mut db, now, ops, exhaustions) = w.finish();
            db.check_index_consistency().unwrap();
            let stats = db.stats(now);
            (db.rows(), db.audit(), db.txn_count(), stats, ops, exhaustions)
        };
        let one = run(1);
        assert_eq!(one, run(2));
        assert_eq!(one, run(4));
    }

    #[test]
    fn churn_hot_reaches_steady_state_reuse() {
        let mut w = ChurnHotWorkload::new();
        assert_eq!(w.db().counters().acquires, ChurnHotWorkload::STANDING);
        let first = w.step(); // consumes a fresh VNI past the standing block
        for _ in 0..3 {
            // Steady state: the clock stepped past the window, so the
            // same VNI is reused every cycle.
            assert_eq!(w.step(), first);
        }
        let c = w.db().counters();
        assert_eq!(c.reuse_allocs, 3);
        assert_eq!(w.db().allocated_count() as u64, ChurnHotWorkload::STANDING);
    }
}
