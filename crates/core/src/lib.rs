//! # slingshot-k8s — multi-tenant Slingshot RDMA for Kubernetes
//!
//! The core contribution of the reproduced paper (CLUSTER 2025), built on
//! the `shs-*` substrate crates:
//!
//! * **netns-authenticated CXI services** — the driver extension lives in
//!   `shs-cxi`; this crate exercises it end to end;
//! * **the CXI CNI plugin** ([`cxi_cni::CxiCniPlugin`], §III-B) — a
//!   chained plugin that creates per-container, netns-member CXI services
//!   from VNI CRD instances, enforces the 30 s termination-grace bound,
//!   and cleans up on DEL;
//! * **the VNI Service** (§III-C) — the [`endpoint::VniEndpoint`] webhook
//!   backend with Per-Resource VNI and VNI-Claim ownership models, and
//!   the ACID [`vni_db::VniDb`] with the 30 s reuse quarantine and audit
//!   log;
//! * **the cluster composition** ([`cluster::Cluster`]) that wires hosts,
//!   NICs, the fabric, container runtimes, CNI chains, kubelets and the
//!   control plane into one deterministic simulated cluster;
//! * **cluster-scale parallel sweeps** ([`parsim`]) — named 256–1024-node
//!   dragonfly fabric scenarios running sharded per group under
//!   `shs_des::ParallelSim`, reported byte-identically at any thread
//!   count.
//!
//! ```
//! use shs_des::{SimDur, SimTime};
//! use slingshot_k8s::{alpine, Cluster, ClusterConfig};
//!
//! let mut cluster = Cluster::new(ClusterConfig::default());
//! cluster.submit_job(SimTime::ZERO, "tenant", "hello",
//!                    &[("vni", "true")], 1, &alpine(), Some(10));
//! cluster.run_until(SimTime::ZERO, SimTime::from_nanos(5_000_000_000),
//!                   SimDur::from_millis(20));
//! assert!(!cluster.job_exists("tenant", "hello"), "completed and reaped");
//! ```

pub mod cluster;
pub mod cxi_cni;
pub mod endpoint;
pub mod parsim;
pub mod scenario;
pub mod sharded_db;
pub mod vni_db;
pub mod workloads;

pub use cluster::{
    alpine, osu_image, Cluster, ClusterConfig, Node, NodeInner, NodePlacement, PodHandle,
};
pub use cxi_cni::{CxiCniParams, CxiCniPlugin, NodeChain, NodeCniCtx, NodeCniPlugin, MAX_GRACE_SECS};
pub use endpoint::{EndpointCounters, EndpointHandle, EndpointRole, VniCrdSpec, VniEndpoint};
pub use parsim::{
    parallel_by_name, parallel_library, run_fabric_scenario, FabricClassReport, FabricGroupReport,
    FabricScenario, FabricSweepReport,
};
pub use scenario::{
    by_name, library, ring_allreduce_schedule, run_scenario, run_vni_stress, stress_by_name,
    stress_library, AutoscalePlan, BurstPlan, ClaimPlan, ClassTraffic, Fault, JobPlan,
    JobTraffic, Scenario, ScenarioReport, ServicePlan, ServiceReport, TrafficPattern,
    TrafficPlan, VniMode, VniStressReport, VniStressScenario,
};
pub use sharded_db::ShardedVniDb;
pub use vni_db::{
    AuditEntry, VniDb, VniDbConfig, VniDbCounters, VniDbError, VniDbStats, VniOwner, VniRow,
    VniState,
};
pub use workloads::{
    AcquireReleaseWorkload, ChurnHotWorkload, FabricAdaptiveHotWorkload,
    FabricTransferHotWorkload, PlegStatusReadWorkload, ServiceMeshHotWorkload,
    VniStressWorkload,
};
