//! Cluster composition: everything from Fig. 2 of the paper wired
//! together — per-node kernel, Cassini NIC + extended CXI driver,
//! container runtime, chained CNI plugins (bridge + CXI), kubelet; and
//! the cluster-level control plane — API server, scheduler, job
//! controller, and the VNI Service (two decorator controllers sharing
//! one VNI Endpoint + ACID database).
//!
//! The cluster is poll-driven: call [`Cluster::tick`] on a fixed cadence
//! (the harness uses 20 ms) and all controllers and kubelets advance.

use std::cell::RefCell;
use std::rc::Rc;

use shs_cassini::{CassiniNic, CassiniParams};
use shs_cni::{BridgePlugin, CniArgs, PodRef};
use shs_containers::{ContainerRuntime, Image, ImageStore, RuntimeError, RuntimeParams, UserNsMode};
use shs_cxi::{CxiDevice, CxiDriver, CxiServiceDesc};
use shs_des::{DetRng, SimDur, SimTime};
use shs_fabric::{CostModel, Fabric, NicAddr, RoutingPolicy, SwitchId, TopologySpec, Vni};
use shs_k8s::{
    kinds, make_node, spec_of, ApiObject, ApiServer, CniAddOutcome, DecoratorConfig,
    JobController, JobSpec, Kubelet, KubeletParams, Metacontroller, NodeBackend, Pleg, PodPhase,
    PodSpec, PodTemplate, Scheduler, ServiceController, ServiceSpec, VNI_ANNOTATION,
};
use shs_oslinux::{Creds, Host, NetNsId, Pid};

use crate::cxi_cni::{CxiCniPlugin, NodeChain, NodeCniCtx};
use crate::endpoint::{EndpointHandle, EndpointRole, VniEndpoint};
use crate::sharded_db::ShardedVniDb;
use crate::vni_db::VniDbConfig;

/// Cluster-wide configuration.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of worker nodes (the paper's testbed has 2).
    pub nodes: usize,
    /// Experiment seed (drives all jitter).
    pub seed: u64,
    /// VNI Endpoint webhook latency (HTTP + handler + DB transaction).
    pub webhook_latency: SimDur,
    /// Kubelet tuning.
    pub kubelet: KubeletParams,
    /// Allocatable VNI range.
    pub vni_range: core::ops::Range<u16>,
    /// VNI reuse quarantine (paper: 30 s).
    pub quarantine: SimDur,
    /// Per-node pod capacity.
    pub max_pods_per_node: u32,
    /// NIC timing model.
    pub nic_params: CassiniParams,
    /// Periodic resync of the job-VNI decorator. `None` (the default)
    /// only reacts to watch events, which matches the paper's webhook
    /// deployment; scenarios that exercise VNI-range exhaustion need a
    /// resync so a job whose acquisition failed is retried once the
    /// quarantine window releases capacity.
    pub vni_resync: Option<SimDur>,
    /// Number of independent VNI store shards behind the endpoint
    /// (default 1). Reports are byte-identical at any shard count — the
    /// facade preserves single-store allocation order and audit
    /// sequencing; sharding only changes how durable state is spread
    /// across store devices.
    pub vni_shards: usize,
    /// Fabric shape. `None` (the default) is the legacy single switch
    /// with `nodes + 8` edge ports; a dragonfly spec places nodes onto
    /// topology switches per [`ClusterConfig::placement`], so
    /// cross-switch and cross-group contention scenarios can be
    /// expressed.
    pub topology: Option<TopologySpec>,
    /// How nodes map onto topology switches — the rank-placement knob
    /// for collectives (see `COLLECTIVES.md`): round-robin skews a
    /// job's ranks across dragonfly groups (every ring hop crosses a
    /// trunk), packed fills each switch's edge ports first so
    /// consecutive nodes share a group.
    pub placement: NodePlacement,
    /// Fabric routing policy. The default (`Minimal`) keeps every
    /// legacy scenario byte-identical; `Adaptive` turns on the per-
    /// message UGAL minimal-vs-Valiant choice (see FABRIC.md).
    pub routing: RoutingPolicy,
    /// Fabric cost model; scenarios override it to lower the ECN
    /// threshold (sender pacing) or bias the UGAL decision.
    pub cost_model: CostModel,
}

/// Node → switch placement policy (topology-aware rank placement).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NodePlacement {
    /// Node *i* on switch *i* mod switches — ranks of a multi-node job
    /// alternate dragonfly groups (the legacy default).
    #[default]
    RoundRobin,
    /// Node *i* on switch *i* / edge_ports — consecutive nodes fill one
    /// switch (and therefore one group) before spilling to the next.
    Packed,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            nodes: 2,
            seed: 42,
            webhook_latency: SimDur::from_millis(12),
            kubelet: KubeletParams::default(),
            vni_range: 1024..4096,
            quarantine: SimDur::from_secs(30),
            max_pods_per_node: 256,
            nic_params: CassiniParams::default(),
            vni_resync: None,
            vni_shards: 1,
            topology: None,
            placement: NodePlacement::RoundRobin,
            routing: RoutingPolicy::Minimal,
            cost_model: CostModel::default(),
        }
    }
}

/// The image the admission experiments launch (paper: alpine + echo).
pub fn alpine() -> Image {
    Image::alpine()
}

/// The image the communication experiments launch (OSU benchmarks over
/// patched libfabric/Open MPI, Table I).
pub fn osu_image() -> Image {
    Image { reference: "registry.local/library/osu-micro-benchmarks:7.3".into(), size_bytes: 48_000_000 }
}

/// Node-local state (everything except the kubelet, so the kubelet can
/// borrow it as a backend).
pub struct NodeInner {
    /// Node name.
    pub name: String,
    /// The node kernel.
    pub host: Host,
    /// CXI driver + NIC.
    pub device: CxiDevice,
    /// Container runtime.
    pub runtime: ContainerRuntime,
    /// CNI plugin chain (bridge → cxi).
    pub chain: NodeChain,
    /// Fabric address of the node's NIC.
    pub nic: NicAddr,
}

impl NodeInner {
    /// Sandbox id for a pod (CRI uses a generated id; we use the stable
    /// full name, which is unique among live pods).
    pub fn sandbox_id(pod: &ApiObject) -> String {
        format!("{}_{}", pod.meta.namespace, pod.meta.name)
    }

    fn root_creds(&self) -> Creds {
        self.host.credentials(Pid(1)).expect("init exists")
    }
}

/// One worker node.
pub struct Node {
    /// The kubelet.
    pub kubelet: Kubelet,
    /// Everything else.
    pub inner: NodeInner,
}

struct Backend<'a> {
    inner: &'a mut NodeInner,
    fabric: &'a mut Fabric,
}

impl NodeBackend for Backend<'_> {
    fn create_sandbox(&mut self, pod: &ApiObject) -> Result<(NetNsId, SimDur), String> {
        let spec: PodSpec = spec_of(pod);
        let mode = match spec.userns_base {
            Some(base) => UserNsMode::Mapped { base },
            None => UserNsMode::Host,
        };
        self.inner
            .runtime
            .create_sandbox(&mut self.inner.host, &NodeInner::sandbox_id(pod), mode)
            .map_err(|e| e.to_string())
    }

    fn cni_add(&mut self, api: &ApiServer, pod: &ApiObject, netns: NetNsId) -> CniAddOutcome {
        let args = CniArgs {
            container_id: NodeInner::sandbox_id(pod),
            netns,
            ifname: "eth0".into(),
            pod: Some(PodRef {
                namespace: pod.meta.namespace.clone(),
                name: pod.meta.name.clone(),
                uid: pod.meta.uid.to_string(),
            }),
        };
        let root = self.inner.root_creds();
        let mut ctx = NodeCniCtx {
            host: &mut self.inner.host,
            device: &mut self.inner.device,
            fabric: self.fabric,
            api,
            nic: self.inner.nic,
            root,
        };
        match self.inner.chain.add(&mut ctx, &args) {
            Ok((_result, cost)) => CniAddOutcome::Ok(cost),
            Err((e, cost)) if e.code == 11 => CniAddOutcome::Retry(cost),
            Err((e, cost)) => CniAddOutcome::Fatal(cost, e.to_string()),
        }
    }

    fn start_workload(&mut self, pod: &ApiObject) -> Result<(SimDur, Option<SimDur>), String> {
        let spec: PodSpec = spec_of(pod);
        let image = Image {
            reference: spec.image.clone(),
            size_bytes: 0, // size only matters for publish; ensure() uses the registry's copy
        };
        let run = spec.run_ms.map(SimDur::from_millis);
        self.inner
            .runtime
            .start_container(
                &mut self.inner.host,
                &NodeInner::sandbox_id(pod),
                "main",
                &image,
                run,
            )
            .map(|(_pid, cost)| (cost, run))
            .map_err(|e| e.to_string())
    }

    fn cni_del(&mut self, pod: &ApiObject, netns: NetNsId) -> SimDur {
        let args = CniArgs {
            container_id: NodeInner::sandbox_id(pod),
            netns,
            ifname: "eth0".into(),
            pod: Some(PodRef {
                namespace: pod.meta.namespace.clone(),
                name: pod.meta.name.clone(),
                uid: pod.meta.uid.to_string(),
            }),
        };
        let root = self.inner.root_creds();
        // DEL must not depend on API state (the pod object may be gone).
        let empty_api = EMPTY_API.with(|a| a.clone());
        let mut ctx = NodeCniCtx {
            host: &mut self.inner.host,
            device: &mut self.inner.device,
            fabric: self.fabric,
            api: &empty_api.borrow(),
            nic: self.inner.nic,
            root,
        };
        self.inner.chain.del(&mut ctx, &args)
    }

    fn remove_sandbox(&mut self, pod: &ApiObject) -> SimDur {
        match self
            .inner
            .runtime
            .remove_sandbox(&mut self.inner.host, &NodeInner::sandbox_id(pod))
        {
            Ok(cost) => cost,
            Err(RuntimeError::NoSuchSandbox(_)) => SimDur::from_millis(1),
            Err(_) => SimDur::from_millis(1),
        }
    }
}

thread_local! {
    /// A permanently empty API view handed to CNI DEL (which must be
    /// independent of management-plane state).
    static EMPTY_API: Rc<RefCell<ApiServer>> = Rc::new(RefCell::new(ApiServer::default()));
}

/// The whole simulated cluster.
pub struct Cluster {
    /// Management plane.
    pub api: ApiServer,
    /// The Slingshot fabric.
    pub fabric: Fabric,
    /// Worker nodes.
    pub nodes: Vec<Node>,
    /// Pod scheduler.
    pub scheduler: Scheduler,
    /// Job controller.
    pub job_controller: JobController,
    /// Service controller (serving plane: replica sets + rolling
    /// updates).
    pub service_controller: ServiceController,
    /// VNI decorator controller over Jobs.
    pub vni_jobs: Metacontroller<EndpointHandle>,
    /// VNI decorator controller over Services (same webhook hooks as
    /// jobs: an annotated service owns a `vni-<name>` CRD its pods
    /// resolve through `spec.job_name`).
    pub vni_services: Metacontroller<EndpointHandle>,
    /// VNI decorator controller over VniClaims.
    pub vni_claims: Metacontroller<EndpointHandle>,
    /// PLEG-style pod-lifecycle cache: status reads (`pods_in_phase`,
    /// `job_started_at`, service readiness) come from here instead of
    /// scanning pods.
    pub pleg: Pleg,
    /// Shared VNI endpoint (+ database).
    pub endpoint: Rc<RefCell<VniEndpoint>>,
    /// Configuration.
    pub config: ClusterConfig,
    /// RNG root for this cluster instance.
    pub rng: DetRng,
}

impl Cluster {
    /// Build a cluster per the configuration. All nodes run the extended
    /// CXI driver, carry a default (global-VNI) CXI service for the
    /// single-tenant baseline, and chain `bridge` + `cxi` CNI plugins.
    pub fn new(config: ClusterConfig) -> Self {
        let rng = DetRng::new(config.seed);
        let mut api = ApiServer::default();
        let spec =
            config.topology.unwrap_or_else(|| TopologySpec::single_switch(config.nodes + 8));
        let mut fabric = Fabric::with_topology(config.cost_model, spec, config.routing);
        let switches = spec.total_switches();
        assert!(
            config.nodes <= switches * spec.edge_ports,
            "topology too small: {} nodes over {} switches x {} edge ports",
            config.nodes,
            switches,
            spec.edge_ports
        );
        let mut nodes = Vec::with_capacity(config.nodes);
        for i in 0..config.nodes {
            let name = format!("node{i}");
            let nic = NicAddr(i as u32 + 1);
            let sw = match config.placement {
                NodePlacement::RoundRobin => i % switches,
                NodePlacement::Packed => i / spec.edge_ports,
            };
            fabric.attach_to(nic, SwitchId(sw));
            fabric.grant_vni(nic, Vni::GLOBAL).expect("node NIC just attached");
            let host = Host::new(&name);
            let mut device = CxiDevice::new(
                CxiDriver::extended(),
                CassiniNic::new(nic, config.nic_params, rng.derive(&format!("nic/{name}"))),
            );
            let root = host.credentials(Pid(1)).expect("init");
            device
                .alloc_svc(&root, CxiServiceDesc::default_service())
                .expect("default service");
            let mut images = ImageStore::default();
            images.publish(alpine());
            images.publish(osu_image());
            // Pod-start/teardown costs calibrated so two nodes provide
            // ~6 admissions/s — the knee the paper's Fig. 10 shows near
            // batch 7 — and a drain phase on the same order as admission.
            let runtime = ContainerRuntime::new(
                RuntimeParams {
                    sandbox_create: SimDur::from_millis(280),
                    container_create: SimDur::from_millis(90),
                    container_start: SimDur::from_millis(130),
                    // Container kill + sandbox teardown + cgroup/volume
                    // cleanup + status round trips: ~1 s per pod, the
                    // rate that lets running jobs accumulate in Figs. 9/11.
                    sandbox_teardown: SimDur::from_millis(950),
                },
                images,
            );
            let mut chain = NodeChain::new();
            chain.push(Box::new(BridgePlugin::new("cni0", format!("10.42.{i}"))));
            chain.push(Box::new(CxiCniPlugin::default()));
            let kubelet = Kubelet::new(&name, config.kubelet);
            api.create(make_node(&name, config.max_pods_per_node), SimTime::ZERO)
                .expect("node object");
            nodes.push(Node {
                kubelet,
                inner: NodeInner { name, host, device, runtime, chain, nic },
            });
        }

        let endpoint = Rc::new(RefCell::new(VniEndpoint::sharded(ShardedVniDb::new(
            VniDbConfig { range: config.vni_range.clone(), quarantine: config.quarantine },
            config.vni_shards,
        ))));
        let vni_jobs = Metacontroller::new(
            DecoratorConfig {
                name: "vni-jobs".into(),
                parent_kind: kinds::JOB.into(),
                annotation_filter: Some(VNI_ANNOTATION.into()),
                child_kind: kinds::VNI.into(),
                webhook_latency: config.webhook_latency,
                resync_period: config.vni_resync,
            },
            EndpointHandle { endpoint: Rc::clone(&endpoint), role: EndpointRole::Jobs },
        );
        let vni_services = Metacontroller::new(
            DecoratorConfig {
                name: "vni-services".into(),
                parent_kind: kinds::SERVICE.into(),
                annotation_filter: Some(VNI_ANNOTATION.into()),
                child_kind: kinds::VNI.into(),
                webhook_latency: config.webhook_latency,
                resync_period: config.vni_resync,
            },
            // Same hooks as jobs: the child CRD is named after the
            // parent, and service pods carry the service name in
            // `spec.job_name`, so the CXI CNI lookup is identical.
            // (A service must therefore not share a name with an
            // annotated job in the same namespace.)
            EndpointHandle { endpoint: Rc::clone(&endpoint), role: EndpointRole::Jobs },
        );
        let vni_claims = Metacontroller::new(
            DecoratorConfig {
                name: "vni-claims".into(),
                parent_kind: kinds::VNI_CLAIM.into(),
                annotation_filter: None,
                child_kind: kinds::VNI.into(),
                webhook_latency: config.webhook_latency,
                // Claim finalization depends on the off-cluster user list
                // in the VNI DB; poll it periodically (§III-C2: deletion
                // "will stall otherwise").
                resync_period: Some(SimDur::from_secs(2)),
            },
            EndpointHandle { endpoint: Rc::clone(&endpoint), role: EndpointRole::Claims },
        );

        Cluster {
            api,
            fabric,
            nodes,
            scheduler: Scheduler::new(),
            job_controller: JobController::new(),
            service_controller: ServiceController::new(),
            vni_jobs,
            vni_services,
            vni_claims,
            pleg: Pleg::new(),
            endpoint,
            config,
            rng,
        }
    }

    /// One control-plane tick: controllers reconcile, kubelets advance,
    /// and the PLEG cache ingests the tick's watch events so status
    /// reads between ticks are served from the cache.
    pub fn tick(&mut self, now: SimTime) {
        self.job_controller.poll(&mut self.api, now);
        self.service_controller.poll(&mut self.api, now);
        self.vni_claims.poll(&mut self.api, now);
        self.vni_jobs.poll(&mut self.api, now);
        self.vni_services.poll(&mut self.api, now);
        self.scheduler.poll(&mut self.api, now);
        for node in &mut self.nodes {
            let mut backend = Backend { inner: &mut node.inner, fabric: &mut self.fabric };
            node.kubelet.poll(&mut self.api, &mut backend, now);
        }
        self.pleg.sync(&self.api);
    }

    /// Drive ticks from `from` (exclusive) to `to` (inclusive) on a fixed
    /// cadence.
    pub fn run_until(&mut self, from: SimTime, to: SimTime, tick: SimDur) -> SimTime {
        let mut t = from;
        while t < to {
            t = (t + tick).min(to);
            self.tick(t);
        }
        t
    }

    /// Submit a job. `annotations` may carry the `vni` key.
#[allow(clippy::too_many_arguments)]
    pub fn submit_job(
        &mut self,
        now: SimTime,
        namespace: &str,
        name: &str,
        annotations: &[(&str, &str)],
        parallelism: u32,
        image: &Image,
        run_ms: Option<u64>,
    ) {
        self.submit_job_placed(now, namespace, name, annotations, parallelism, image, run_ms, None)
    }

    /// Submit a job whose pods may only bind to the nodes named by
    /// `pin_nodes` (indices into [`Cluster::nodes`]) — topology-aware
    /// rank placement: pin a collective's ranks into one dragonfly
    /// group, or deliberately skew them across groups. `None` leaves
    /// placement to the spread-first scheduler.
    #[allow(clippy::too_many_arguments)]
    pub fn submit_job_placed(
        &mut self,
        now: SimTime,
        namespace: &str,
        name: &str,
        annotations: &[(&str, &str)],
        parallelism: u32,
        image: &Image,
        run_ms: Option<u64>,
        pin_nodes: Option<&[usize]>,
    ) {
        let node_selector = pin_nodes.map(|idxs| {
            idxs.iter().map(|&i| self.nodes[i].inner.name.clone()).collect::<Vec<_>>()
        });
        let spec = JobSpec {
            parallelism,
            template: PodTemplate {
                image: image.reference.clone(),
                run_ms,
                userns_base: None,
                node_selector,
            },
            ttl_seconds_after_finished: Some(0),
        };
        let mut job = shs_k8s::make_job(namespace, name, &spec);
        for (k, v) in annotations {
            job.meta.annotations.insert((*k).into(), (*v).into());
        }
        self.api.create(job, now).expect("job name unique");
    }

    /// Submit a long-running service: `replicas` pods that run until
    /// deleted. `annotations` may carry the `vni` key; `pin_nodes`
    /// restricts placement like [`Cluster::submit_job_placed`].
    #[allow(clippy::too_many_arguments)]
    pub fn submit_service(
        &mut self,
        now: SimTime,
        namespace: &str,
        name: &str,
        annotations: &[(&str, &str)],
        replicas: u32,
        image: &Image,
        pin_nodes: Option<&[usize]>,
    ) {
        let node_selector = pin_nodes.map(|idxs| {
            idxs.iter().map(|&i| self.nodes[i].inner.name.clone()).collect::<Vec<_>>()
        });
        let spec = ServiceSpec {
            replicas,
            template: PodTemplate {
                image: image.reference.clone(),
                run_ms: None,
                userns_base: None,
                node_selector,
            },
            max_unavailable: 1,
            max_surge: 1,
            version: 0,
        };
        let mut svc = shs_k8s::make_service(namespace, name, &spec);
        for (k, v) in annotations {
            svc.meta.annotations.insert((*k).into(), (*v).into());
        }
        self.api.create(svc, now).expect("service name unique");
    }

    /// Change a service's replica count (the autoscaler's lever).
    pub fn scale_service(&mut self, namespace: &str, name: &str, replicas: u32) {
        let _ = self.api.mutate(kinds::SERVICE, namespace, name, |o| {
            o.spec["replicas"] = serde_json::json!(replicas);
        });
    }

    /// Bump a service's template revision, starting a rolling update.
    pub fn roll_service(&mut self, namespace: &str, name: &str) {
        let _ = self.api.mutate(kinds::SERVICE, namespace, name, |o| {
            let v = o.spec["version"].as_u64().unwrap_or(0);
            o.spec["version"] = serde_json::json!(v + 1);
        });
    }

    /// Request deletion of a service (pods cascade).
    pub fn delete_service(&mut self, namespace: &str, name: &str) {
        let _ = self.api.delete(kinds::SERVICE, namespace, name);
    }

    /// Ready pod names of a service (Running, not terminating) — a PLEG
    /// cache read, no pod scan.
    pub fn service_ready(&self, namespace: &str, name: &str) -> Vec<String> {
        self.pleg.ready(namespace, name)
    }

    /// Create a VNI Claim (Listing 2 of the paper).
    pub fn create_claim(&mut self, now: SimTime, namespace: &str, name: &str) {
        let claim = ApiObject::new(
            kinds::VNI_CLAIM,
            namespace,
            name,
            serde_json::json!({ "name": name }),
        );
        self.api.create(claim, now).expect("claim name unique");
    }

    /// Request deletion of a VNI Claim.
    pub fn delete_claim(&mut self, namespace: &str, name: &str) {
        let _ = self.api.delete(kinds::VNI_CLAIM, namespace, name);
    }

    /// Request deletion of a job.
    pub fn delete_job(&mut self, namespace: &str, name: &str) {
        let _ = self.api.delete(kinds::JOB, namespace, name);
    }

    /// Whether a job object still exists (terminating counts as existing).
    pub fn job_exists(&self, namespace: &str, name: &str) -> bool {
        self.api.get(kinds::JOB, namespace, name).is_some()
    }

    /// When the first pod of a job started, if it has. A PLEG group
    /// read: proportional to the job's pod count, never the cluster's.
    pub fn job_started_at(&self, namespace: &str, name: &str) -> Option<SimTime> {
        self.pleg.group_started_at(namespace, name).map(SimTime::from_nanos)
    }

    /// Pods currently in a given phase — an O(1) PLEG cache read,
    /// independent of cluster pod count (the pre-PLEG scan is kept as
    /// [`Pleg::scan`] for the equivalence oracle and benchmark).
    pub fn pods_in_phase(&self, phase: PodPhase) -> usize {
        self.pleg.count(phase) as usize
    }

    /// A pod's runtime handle: owning node index, workload pid, netns.
    pub fn pod_handle(&self, namespace: &str, name: &str) -> Option<PodHandle> {
        let pod = self.api.get(kinds::POD, namespace, name)?;
        let spec: PodSpec = spec_of(pod);
        let node_name = spec.node_name?;
        let node_idx = self.nodes.iter().position(|n| n.inner.name == node_name)?;
        let sandbox =
            self.nodes[node_idx].inner.runtime.sandbox(&NodeInner::sandbox_id(pod)).ok()?;
        let pid = sandbox.containers.last().map(|c| c.pid)?;
        Some(PodHandle { node_idx, pid, netns: sandbox.netns })
    }

    /// Split-borrow every node plus the fabric (the N-rank communicator
    /// harness builds its per-node device list from this).
    pub fn fabric_and_nodes(&mut self) -> (&mut Fabric, &mut [Node]) {
        (&mut self.fabric, &mut self.nodes[..])
    }

    /// Split-borrow two distinct nodes plus the fabric (OSU harness).
    /// Panics if `a == b` or out of range.
    pub fn two_nodes_mut(&mut self, a: usize, b: usize) -> (&mut Node, &mut Node, &mut Fabric) {
        assert_ne!(a, b, "need two distinct nodes");
        let (lo, hi) = (a.min(b), a.max(b));
        let (left, right) = self.nodes.split_at_mut(hi);
        let (na, nb) = if a < b {
            (&mut left[lo], &mut right[0])
        } else {
            (&mut right[0], &mut left[lo])
        };
        (na, nb, &mut self.fabric)
    }
}

/// A running pod's node-local identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PodHandle {
    /// Index into [`Cluster::nodes`].
    pub node_idx: usize,
    /// Workload process id on that node.
    pub pid: Pid,
    /// The pod's network namespace.
    pub netns: NetNsId,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_cluster(c: &mut Cluster, from_ms: u64, to_ms: u64) {
        c.run_until(
            SimTime::from_nanos(from_ms * 1_000_000),
            SimTime::from_nanos(to_ms * 1_000_000),
            SimDur::from_millis(20),
        );
    }

    #[test]
    fn plain_job_runs_to_completion_and_ttl_reaps_it() {
        let mut c = Cluster::new(ClusterConfig::default());
        c.submit_job(SimTime::ZERO, "t", "echo", &[], 1, &alpine(), Some(10));
        run_cluster(&mut c, 0, 5_000);
        assert!(!c.job_exists("t", "echo"), "ttl=0 deletes after completion");
        assert_eq!(c.api.list(kinds::POD).len(), 0, "pods torn down");
        assert_eq!(c.nodes.iter().map(|n| n.inner.runtime.sandbox_count()).sum::<usize>(), 0);
    }

    #[test]
    fn vni_job_gets_isolated_network_then_cleanup() {
        let mut c = Cluster::new(ClusterConfig::default());
        c.submit_job(
            SimTime::ZERO,
            "t",
            "secure",
            &[(VNI_ANNOTATION, "true")],
            2,
            &alpine(),
            Some(50_000), // long-running so we can inspect mid-flight
        );
        run_cluster(&mut c, 0, 4_000);
        // VNI CRD exists and the pods run with per-netns CXI services.
        let crd = c.api.get(kinds::VNI, "t", "vni-secure").expect("VNI CRD");
        let vni = crd.spec["vni"].as_u64().unwrap() as u16;
        assert!((1024..4096).contains(&vni));
        // Both nodes carry one netns-member service for this job's pods.
        let svc_count: usize = c
            .nodes
            .iter()
            .map(|n| {
                n.inner
                    .device
                    .driver
                    .services()
                    .iter()
                    .filter(|s| s.vnis.contains(&Vni(vni)))
                    .count()
            })
            .sum();
        assert_eq!(svc_count, 2, "one per pod, spread across nodes");
        // Switch grants realised on both ports.
        for n in &c.nodes {
            assert!(c.fabric.nic_has_vni(n.inner.nic, Vni(vni)));
        }
        // Delete the job: everything unwinds (VNI released, services gone).
        c.delete_job("t", "secure");
        run_cluster(&mut c, 4_000, 10_000);
        assert!(!c.job_exists("t", "secure"));
        assert_eq!(c.endpoint.borrow().db.allocated_count(), 0, "VNI released");
        let leftover: usize = c
            .nodes
            .iter()
            .map(|n| {
                n.inner
                    .device
                    .driver
                    .services()
                    .iter()
                    .filter(|s| s.label.starts_with("cni:"))
                    .count()
            })
            .sum();
        assert_eq!(leftover, 0, "no leaked CXI services");
    }

    #[test]
    fn claim_shared_by_two_jobs() {
        let mut c = Cluster::new(ClusterConfig::default());
        c.create_claim(SimTime::ZERO, "t", "shared");
        run_cluster(&mut c, 0, 500);
        c.submit_job(
            SimTime::from_nanos(500_000_000),
            "t",
            "j1",
            &[(VNI_ANNOTATION, "shared")],
            1,
            &alpine(),
            Some(60_000),
        );
        c.submit_job(
            SimTime::from_nanos(500_000_000),
            "t",
            "j2",
            &[(VNI_ANNOTATION, "shared")],
            1,
            &alpine(),
            Some(60_000),
        );
        run_cluster(&mut c, 500, 5_000);
        let v1 = c.api.get(kinds::VNI, "t", "vni-j1").expect("virtual VNI for j1");
        let v2 = c.api.get(kinds::VNI, "t", "vni-j2").expect("virtual VNI for j2");
        assert_eq!(v1.spec["vni"], v2.spec["vni"], "jobs share the claim VNI");
        assert_eq!(v1.spec["virtual"], serde_json::json!(true));
        // Claim deletion stalls while jobs use it.
        c.delete_claim("t", "shared");
        run_cluster(&mut c, 5_000, 7_000);
        assert!(c.api.get(kinds::VNI_CLAIM, "t", "shared").is_some(), "stalled");
        // Jobs end; claim then releases.
        c.delete_job("t", "j1");
        c.delete_job("t", "j2");
        run_cluster(&mut c, 7_000, 15_000);
        assert!(c.api.get(kinds::VNI_CLAIM, "t", "shared").is_none(), "claim reaped");
        assert_eq!(c.endpoint.borrow().db.allocated_count(), 0);
    }

    #[test]
    fn job_with_unknown_claim_fails_to_launch() {
        let mut c = Cluster::new(ClusterConfig::default());
        c.submit_job(
            SimTime::ZERO,
            "t",
            "orphan",
            &[(VNI_ANNOTATION, "no-such-claim")],
            1,
            &alpine(),
            Some(10),
        );
        run_cluster(&mut c, 0, 3_000);
        // No VNI CRD appears, the pod retries CNI and never starts.
        assert!(c.api.get(kinds::VNI, "t", "vni-orphan").is_none());
        assert_eq!(c.pods_in_phase(PodPhase::Running), 0);
        assert!(c.job_started_at("t", "orphan").is_none());
        let retries: u64 = c.nodes.iter().map(|n| n.kubelet.counters.cni_retries).sum();
        assert!(retries > 0, "kubelet retried the CNI ADD");
    }

    #[test]
    fn pods_of_vni_job_land_on_distinct_nodes() {
        let mut c = Cluster::new(ClusterConfig::default());
        c.submit_job(
            SimTime::ZERO,
            "t",
            "osu",
            &[(VNI_ANNOTATION, "true")],
            2,
            &osu_image(),
            None,
        );
        run_cluster(&mut c, 0, 4_000);
        let h0 = c.pod_handle("t", "osu-0").expect("pod 0 running");
        let h1 = c.pod_handle("t", "osu-1").expect("pod 1 running");
        assert_ne!(h0.node_idx, h1.node_idx, "topology spread");
        assert_ne!(h0.netns, h1.netns);
    }

    #[test]
    fn packed_placement_fills_groups_and_pinning_constrains_ranks() {
        let mut c = Cluster::new(ClusterConfig {
            nodes: 8,
            topology: Some(TopologySpec { groups: 2, switches_per_group: 1, edge_ports: 4 }),
            placement: NodePlacement::Packed,
            ..Default::default()
        });
        // Packed: nodes 0-3 fill switch 0 (group 0), 4-7 switch 1.
        for (i, n) in c.nodes.iter().enumerate() {
            let (sw, _) = c.fabric.attachment(n.inner.nic).unwrap();
            assert_eq!(sw.0, i / 4, "node{i}");
        }
        // A pinned job may only land on the named nodes, even though
        // others are less loaded.
        c.submit_job_placed(SimTime::ZERO, "t", "pin", &[], 2, &alpine(), None, Some(&[5, 6]));
        run_cluster(&mut c, 0, 4_000);
        let mut got = vec![
            c.pod_handle("t", "pin-0").expect("pod 0 running").node_idx,
            c.pod_handle("t", "pin-1").expect("pod 1 running").node_idx,
        ];
        got.sort_unstable();
        assert_eq!(got, vec![5, 6]);
    }

    #[test]
    fn vni_service_runs_rolls_and_unwinds() {
        let mut c = Cluster::new(ClusterConfig::default());
        c.submit_service(
            SimTime::ZERO,
            "t",
            "web",
            &[(VNI_ANNOTATION, "true")],
            2,
            &alpine(),
            None,
        );
        run_cluster(&mut c, 0, 4_000);
        // The service owns a VNI CRD and both replicas are ready.
        let crd = c.api.get(kinds::VNI, "t", "vni-web").expect("VNI CRD for the service");
        let vni = crd.spec["vni"].as_u64().unwrap() as u16;
        assert_eq!(c.service_ready("t", "web"), vec!["web-v0-0", "web-v0-1"]);
        assert_eq!(c.pods_in_phase(PodPhase::Running), 2);
        // Rolling update: replicas converge on the new revision without
        // the ready count ever reaching zero (floor = replicas - 1).
        c.roll_service("t", "web");
        run_cluster(&mut c, 4_000, 14_000);
        assert_eq!(c.service_ready("t", "web"), vec!["web-v1-0", "web-v1-1"]);
        // Scale up, then delete: everything unwinds.
        c.scale_service("t", "web", 3);
        run_cluster(&mut c, 14_000, 18_000);
        assert_eq!(c.service_ready("t", "web").len(), 3);
        c.delete_service("t", "web");
        run_cluster(&mut c, 18_000, 26_000);
        assert!(c.api.get(kinds::SERVICE, "t", "web").is_none());
        assert!(c.service_ready("t", "web").is_empty());
        assert_eq!(c.endpoint.borrow().db.allocated_count(), 0, "VNI released");
        assert!(c.fabric.nic_has_vni(c.nodes[0].inner.nic, Vni::GLOBAL));
        assert!(!c.fabric.nic_has_vni(c.nodes[0].inner.nic, Vni(vni)), "grant revoked");
    }

    #[test]
    fn pleg_cache_matches_a_full_scan_mid_flight() {
        let mut c = Cluster::new(ClusterConfig::default());
        c.submit_service(SimTime::ZERO, "t", "web", &[], 3, &alpine(), None);
        c.submit_job(SimTime::ZERO, "t", "batch", &[], 2, &alpine(), Some(1_500));
        for ms in [500u64, 1_000, 2_000, 3_000, 5_000] {
            run_cluster(&mut c, ms.saturating_sub(500), ms);
            let cached = serde_json::to_string(&c.pleg.snapshot()).unwrap();
            let scanned = serde_json::to_string(&Pleg::scan(&c.api)).unwrap();
            assert_eq!(cached, scanned, "at {ms}ms");
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let run = |seed: u64| {
            let mut c = Cluster::new(ClusterConfig { seed, ..Default::default() });
            c.submit_job(
                SimTime::ZERO,
                "t",
                "j",
                &[(VNI_ANNOTATION, "true")],
                1,
                &alpine(),
                Some(10),
            );
            run_cluster(&mut c, 0, 3_000);
            let acquisitions = c.endpoint.borrow().counters.acquisitions;
            (
                c.api.requests,
                acquisitions,
                c.nodes.iter().map(|n| n.kubelet.counters.pods_started).sum::<u64>(),
            )
        };
        assert_eq!(run(7), run(7));
    }
}
