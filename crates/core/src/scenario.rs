//! The end-to-end multi-tenant scenario engine.
//!
//! Everything below the composition layer is a pure state machine; this
//! module is where the whole stack is driven as one system under the
//! deterministic DES clock. A [`Scenario`] describes tenants, jobs,
//! claims, traffic and fault injections; [`run_scenario`] schedules it
//! as `shs_des::Sim` events over a real [`Cluster`] and checks tenant
//! isolation **at every hop** while it runs:
//!
//! * pod admission goes through the real scheduler, kubelet, CNI chain
//!   and VNI Service (admission latency is measured per job);
//! * rank-to-rank traffic authenticates against the node's CXI driver
//!   (netns member check) before it touches the fabric, exactly like an
//!   RDMA application opening an endpoint;
//! * every traffic round also mounts an **adversarial cross-tenant
//!   probe**: a pod tries to authenticate against another tenant's VNI,
//!   and — should the driver ever admit it — the fabric's per-port VNI
//!   enforcement is the last line. Any delivery on a foreign VNI counts
//!   as an isolation violation;
//! * after the horizon, the engine audits the end state: no CXI service
//!   may outlive its pod, no switch-port grant may outlive its VNI
//!   allocation, and the [`VniDb`](crate::vni_db::VniDb) audit log must
//!   show every VNI reuse separated by the full quarantine window.
//!
//! The built-in [`library`] covers the cluster-scale situations the
//! paper's design must survive: steady multi-tenant operation, a
//! churn/teardown storm, quarantine pressure on a tiny VNI range, a
//! node drain, an oversubscribed VNI space, and — on a 2-group
//! dragonfly fabric — a noisy-neighbour contention duel and an N→1
//! incast with per-traffic-class drop accounting. The `scenario-run`
//! binary in `shs-harness` executes them and emits the JSON
//! [`ScenarioReport`]s; for one seed the report bytes are identical
//! across runs.

use std::collections::{BTreeMap, BTreeSet};

use serde::Serialize;
use shs_des::{Sim, SimDur, SimTime};
use shs_fabric::{FaultKind, RoutingPolicy, SwitchId, TopologySpec, TrafficClass, TransferOutcome, Vni};
use shs_k8s::{kinds, spec_of, status_of, KubeletParams, PodSpec, PodStatus};

use crate::cluster::{alpine, Cluster, ClusterConfig, PodHandle};

/// How a job attaches to the VNI Service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VniMode {
    /// No annotation: the pod rides the globally accessible VNI
    /// (single-tenant baseline).
    Global,
    /// `vni: "true"` — the job owns a fresh VNI (Per-Resource model).
    Dedicated,
    /// `vni: "<claim>"` — the job redeems a named VNI Claim.
    Claim(String),
}

/// Shape of one traffic round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TrafficPattern {
    /// Every rank sends to its ring successor (`i → (i+1) mod n`).
    #[default]
    Ring,
    /// Every rank but rank 0 sends to rank 0 — the N→1 congestion
    /// pattern that backlogs the links converging on rank 0's switch.
    Incast,
    /// One MPI-style ring allreduce per round, decomposed into its
    /// point-to-point chunk sends (`n − 1` reduce-scatter steps then
    /// `n − 1` allgather steps, each rank passing a `≈ size/n` chunk to
    /// its ring successor — the same schedule
    /// `shs_mpi::Communicator::allreduce` executes), so every hop flows
    /// through fabric routing, trunk WRR and per-VNI accounting.
    /// `burst` scales the chunk count per step.
    Allreduce,
    /// TCP-over-RDMA request/response (modeled on TSoR): every rank
    /// sends a request of `size` bytes to its ring successor, which
    /// answers with a `size`-byte response dispatched at the request's
    /// *arrival* instant — so the pair's virtual-time latency composes
    /// like a real RPC. Long-running [`ServicePlan`]s use the same
    /// two-leg model with independent request/response sizes, per-
    /// request latency samples, and a p99 SLO.
    RequestResponse,
}

/// Rank-to-rank traffic a job generates once its pods run.
#[derive(Debug, Clone, Copy)]
pub struct TrafficPlan {
    /// Rounds to complete (rounds before all ranks run are skipped, not
    /// consumed).
    pub rounds: u32,
    /// Gap between rounds.
    pub interval: SimDur,
    /// Payload bytes per message.
    pub size: u64,
    /// Traffic class of the job's messages.
    pub tc: TrafficClass,
    /// Messages each sender issues back-to-back per round (1 = the
    /// classic one-message round).
    pub burst: u32,
    /// Communication pattern of a round.
    pub pattern: TrafficPattern,
}

/// One job in a scenario.
#[derive(Debug, Clone)]
pub struct JobPlan {
    /// Tenant namespace.
    pub tenant: String,
    /// Job name.
    pub name: String,
    /// Ranks (pod parallelism).
    pub ranks: u32,
    /// Submission instant.
    pub arrival: SimTime,
    /// Workload duration (`None` runs until the job is deleted).
    pub run_ms: Option<u64>,
    /// VNI attachment model.
    pub vni: VniMode,
    /// Explicit deletion instant, if any.
    pub delete_at: Option<SimTime>,
    /// Traffic the ranks exchange.
    pub traffic: Option<TrafficPlan>,
    /// Topology-aware rank placement: restrict this job's pods to these
    /// node indices (see [`Cluster::submit_job_placed`]). `None` leaves
    /// placement to the spread-first scheduler.
    pub pin_nodes: Option<Vec<usize>>,
}

/// One VNI Claim in a scenario.
#[derive(Debug, Clone)]
pub struct ClaimPlan {
    /// Tenant namespace.
    pub tenant: String,
    /// Claim name.
    pub name: String,
    /// Creation instant.
    pub create_at: SimTime,
    /// Deletion-request instant (deletion stalls while users remain).
    pub delete_at: Option<SimTime>,
}

/// A demand spike window for a [`ServicePlan`]'s request generator.
#[derive(Debug, Clone, Copy)]
pub struct BurstPlan {
    /// Start of the spike (inclusive).
    pub from: SimTime,
    /// End of the spike (exclusive).
    pub until: SimTime,
    /// Extra requests added to every generator fire inside the window.
    pub extra: u32,
}

/// Deterministic demand-driven horizontal autoscaling for a
/// [`ServicePlan`]: at every generator fire the desired replica count
/// is `clamp(ceil(demand / per_replica), replicas, max_replicas)`, and
/// the service is rescaled through the API server whenever it changes.
#[derive(Debug, Clone, Copy)]
pub struct AutoscalePlan {
    /// Requests one replica absorbs per generator fire.
    pub per_replica: u32,
    /// Replica-count ceiling.
    pub max_replicas: u32,
}

/// One long-running serving-plane [`Service`](shs_k8s::service) in a
/// scenario: a replica set kept converged by the deterministic service
/// controller, carrying open-loop TSoR-style request/response traffic
/// between its replicas through the same fabric (WRR classes, adaptive
/// routing, fault model) and the same per-hop isolation checks as the
/// MPI jobs.
#[derive(Debug, Clone)]
pub struct ServicePlan {
    /// Tenant namespace.
    pub tenant: String,
    /// Service name (must not collide with an annotated job's name in
    /// the namespace — both own the VNI CRD `vni-<name>`).
    pub name: String,
    /// Baseline replica count (also the autoscale floor).
    pub replicas: u32,
    /// Creation instant.
    pub arrival: SimTime,
    /// VNI attachment model.
    pub vni: VniMode,
    /// Traffic class of the service's requests and responses.
    pub tc: TrafficClass,
    /// Open-loop request-generator cadence (fires regardless of
    /// completion, like TSoR clients).
    pub request_interval: SimDur,
    /// Requests issued per generator fire (before any burst).
    pub requests_per_fire: u32,
    /// Request payload bytes.
    pub request_bytes: u64,
    /// Response payload bytes.
    pub response_bytes: u64,
    /// p99 latency SLO over full request+response round trips.
    pub slo_p99: SimDur,
    /// Rolling-update instant (bumps the template revision), if any.
    pub update_at: Option<SimTime>,
    /// Deletion instant, if any.
    pub delete_at: Option<SimTime>,
    /// Demand spike window, if any.
    pub burst: Option<BurstPlan>,
    /// Demand-driven autoscaling, if any.
    pub autoscale: Option<AutoscalePlan>,
    /// Restrict replicas to these node indices (`None` leaves placement
    /// to the spread-first scheduler).
    pub pin_nodes: Option<Vec<usize>>,
}

/// Fault injections.
#[derive(Debug, Clone)]
pub enum Fault {
    /// Cordon a node (status `ready: false`) and evict every job that
    /// has a pod bound to it.
    DrainNode {
        /// Index into [`Cluster::nodes`].
        node: usize,
        /// Injection instant.
        at: SimTime,
    },
    /// Cut the trunk between two switches. In-flight messages are
    /// unaffected; subsequent transfers reroute deterministically (or
    /// drop with `NoRoute` if the fabric is partitioned).
    LinkDown {
        /// Injection instant.
        at: SimTime,
        /// One endpoint switch index.
        a: usize,
        /// The other endpoint switch index.
        b: usize,
    },
    /// Restore a previously cut trunk.
    LinkUp {
        /// Injection instant.
        at: SimTime,
        /// One endpoint switch index.
        a: usize,
        /// The other endpoint switch index.
        b: usize,
    },
    /// Take a whole switch out of service (kills every trunk touching
    /// it; endpoints stay bound and drop with `NoRoute`).
    SwitchDown {
        /// Injection instant.
        at: SimTime,
        /// Switch index.
        switch: usize,
    },
}

/// A complete scenario description.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Scenario name (stable identifier, used by `scenario-run`).
    pub name: String,
    /// One-line description.
    pub description: String,
    /// Cluster configuration the scenario runs on.
    pub config: ClusterConfig,
    /// VNI Claims to create/delete.
    pub claims: Vec<ClaimPlan>,
    /// Jobs to submit.
    pub jobs: Vec<JobPlan>,
    /// Long-running services to run.
    pub services: Vec<ServicePlan>,
    /// Fault injections.
    pub faults: Vec<Fault>,
    /// Simulated end of the scenario.
    pub horizon: SimTime,
    /// Control-plane tick cadence.
    pub tick: SimDur,
}

/// Per-job outcome in the report.
#[derive(Debug, Clone, Serialize, PartialEq, Eq)]
pub struct JobOutcome {
    /// `tenant/name`.
    pub job: String,
    /// Whether the first pod ever started.
    pub started: bool,
    /// Submission → first pod start, in microseconds.
    pub admission_us: Option<u64>,
    /// Whether the job object was gone at the horizon (completed and
    /// reaped, or deleted).
    pub reaped: bool,
}

/// Job lifecycle metrics.
#[derive(Debug, Clone, Default, Serialize, PartialEq, Eq)]
pub struct JobsReport {
    /// Jobs in the plan.
    pub planned: u64,
    /// Jobs whose first pod started.
    pub started: u64,
    /// Jobs gone (reaped/deleted) at the horizon.
    pub reaped: u64,
    /// Mean admission latency (µs) over started jobs.
    pub admission_mean_us: u64,
    /// Worst admission latency (µs).
    pub admission_max_us: u64,
    /// Per-job detail, in plan order.
    pub outcomes: Vec<JobOutcome>,
}

/// Per-traffic-class slice of the fabric traffic, emitted for
/// multi-switch topologies (single-switch scenarios have no trunk
/// links, so the section is omitted and their reports are unchanged).
#[derive(Debug, Clone, Serialize, PartialEq, Eq)]
pub struct ClassTraffic {
    /// Traffic-class name (`low-latency`, `dedicated`, `bulk-data`,
    /// `best-effort`).
    pub class: String,
    /// Authorized sends on this class.
    pub sends: u64,
    /// Messages delivered end to end.
    pub delivered: u64,
    /// Authorized messages the fabric dropped (any reason).
    pub dropped: u64,
    /// Messages dropped by trunk congestion management, summed over
    /// every inter-switch link (per-hop counters rolled up).
    pub congestion_drops: u64,
    /// Worst queueing delay accepted at any trunk link (ns).
    pub trunk_queued_ns_max: u64,
    /// Mean delivery latency (ns) over delivered messages.
    pub mean_latency_ns: u64,
    /// Worst delivery latency (ns).
    pub max_latency_ns: u64,
}

/// Per-tenant (per-job) slice of the fabric traffic, emitted for
/// scenarios that run collective patterns — the per-VNI accounting
/// surface that makes placement effects (hops per message, trunk
/// congestion drops) attributable to a tenant. Engine-side counters
/// come from the traffic rounds; `fabric_*` fields come from the
/// fabric's **per-VNI** counters, so for jobs holding a dedicated VNI
/// the two views reconcile exactly. Caveat: the fabric counts per VNI,
/// not per job — jobs that share a claim VNI (or reuse a
/// quarantine-expired VNI within one horizon) each report the combined
/// fabric totals for that VNI, while their engine-side counters stay
/// per-job. Collective scenarios comparing `fabric_*` across tenants
/// should give each tenant a dedicated VNI, as the library ones do.
#[derive(Debug, Clone, Serialize, PartialEq, Eq)]
pub struct JobTraffic {
    /// `tenant/name`.
    pub job: String,
    /// The VNI the job's ranks authenticated with (absent if the job
    /// never completed a traffic round).
    #[serde(skip_serializing_if = "Option::is_none")]
    pub vni: Option<u16>,
    /// Authorized sends by this job's ranks.
    pub sends: u64,
    /// Messages delivered end to end.
    pub delivered: u64,
    /// Messages the fabric dropped (any reason).
    pub dropped: u64,
    /// Delivered payload bytes.
    pub payload_bytes: u64,
    /// Mean delivery latency (ns) over delivered messages.
    pub mean_latency_ns: u64,
    /// Worst delivery latency (ns).
    pub max_latency_ns: u64,
    /// Total switch hops of this tenant's delivered messages, from the
    /// fabric's per-VNI counters (1 per message on a single switch; 2+
    /// when routes cross trunks — the placement-skew signal).
    pub fabric_switch_hops: u64,
    /// This tenant's messages dropped by trunk congestion management,
    /// from the fabric's per-VNI counters.
    pub fabric_congestion_drops: u64,
    /// Deliveries that took a repaired (non-policy) route because a
    /// fault masked the preferred path; absent when zero so reports
    /// from fault-free runs are byte-identical to earlier versions.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub fabric_reroutes: Option<u64>,
    /// ECN marks accrued by this tenant's deliveries; absent when zero
    /// (the default mark threshold never fires).
    #[serde(skip_serializing_if = "Option::is_none")]
    pub fabric_ecn_marks: Option<u64>,
}

/// Fabric traffic metrics (authorized rank-to-rank sends).
#[derive(Debug, Clone, Default, Serialize, PartialEq, Eq)]
pub struct TrafficReport {
    /// Completed traffic rounds.
    pub rounds: u64,
    /// Rounds skipped because ranks were not (yet) running.
    pub skipped_rounds: u64,
    /// Sends whose sender authenticated against its own VNI.
    pub authorized_sends: u64,
    /// Messages delivered end to end.
    pub delivered: u64,
    /// Authorized messages the fabric dropped.
    pub dropped: u64,
    /// Senders that failed to authenticate against their *own* VNI.
    pub auth_failures: u64,
    /// Mean delivery latency (ns) over delivered messages.
    pub mean_latency_ns: u64,
    /// Worst delivery latency (ns).
    pub max_latency_ns: u64,
    /// Delivered payload bytes.
    pub payload_bytes: u64,
    /// Per-traffic-class counters, active classes only; present only on
    /// multi-switch topologies.
    #[serde(skip_serializing_if = "Vec::is_empty")]
    pub by_class: Vec<ClassTraffic>,
    /// Per-tenant traffic accounting, present only for scenarios that
    /// run collective patterns (all other reports are unchanged).
    #[serde(skip_serializing_if = "Vec::is_empty")]
    pub by_job: Vec<JobTraffic>,
    /// Whole-fabric reroute count (deliveries that took a repaired
    /// route after a fault); absent when zero, so fault-free reports
    /// are byte-identical to earlier versions.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub fabric_reroutes: Option<u64>,
    /// Whole-fabric ECN mark count; absent when zero.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub fabric_ecn_marks: Option<u64>,
}

/// VNI Service metrics (from the endpoint counters and the database).
#[derive(Debug, Clone, Default, Serialize, PartialEq, Eq)]
pub struct VniReport {
    /// Successful acquisitions.
    pub acquisitions: u64,
    /// Releases into quarantine.
    pub releases: u64,
    /// Claim redemptions.
    pub redemptions: u64,
    /// Acquisitions refused on an exhausted range.
    pub exhaustions: u64,
    /// Claim deletions deferred because users remained.
    pub stalled_claim_deletes: u64,
    /// Allocated rows at the horizon.
    pub allocated_at_end: u64,
    /// Quarantined rows at the horizon (after the expiry sweep).
    pub quarantined_at_end: u64,
    /// Audit-log length at the horizon.
    pub audit_len: u64,
    /// ACID transactions committed by the VNI database over the run —
    /// the §III-C2 serialization point, made countable. Deterministic
    /// for a fixed scenario + seed.
    pub txn_count: u64,
}

/// Kubelet counters summed over nodes.
#[derive(Debug, Clone, Default, Serialize, PartialEq, Eq)]
pub struct KubeletReport {
    /// Pods started.
    pub pods_started: u64,
    /// Pods fully torn down.
    pub pods_removed: u64,
    /// CNI ADD retries.
    pub cni_retries: u64,
    /// Pods marked Failed.
    pub pods_failed: u64,
}

/// Per-service serving-plane metrics: open-loop request/response
/// traffic outcomes, the p99-vs-SLO verdict, and the rolling-update
/// availability floor observed over the run. Emitted only for
/// scenarios that plan services, so job-only reports are byte-identical
/// to earlier versions.
#[derive(Debug, Clone, Serialize, PartialEq, Eq)]
pub struct ServiceReport {
    /// `tenant/name`.
    pub service: String,
    /// Baseline replica count from the plan.
    pub replicas: u64,
    /// The VNI the service's replicas authenticated with (absent if no
    /// request was ever issued).
    #[serde(skip_serializing_if = "Option::is_none")]
    pub vni: Option<u16>,
    /// Request-generator fires that issued traffic.
    pub fires: u64,
    /// Generator fires skipped because fewer than two replicas were
    /// ready (startup ramp, or a roll that lost the fleet).
    pub skipped_fires: u64,
    /// Requests issued (each is a request leg + a response leg).
    pub requests: u64,
    /// Round trips completed (both legs delivered).
    pub completed: u64,
    /// Round trips lost to a fabric drop on either leg.
    pub dropped: u64,
    /// Replicas that failed to authenticate against the service VNI.
    pub auth_failures: u64,
    /// Delivered payload bytes (both legs).
    pub payload_bytes: u64,
    /// Median round-trip latency (ns).
    pub p50_latency_ns: u64,
    /// 99th-percentile round-trip latency (ns).
    pub p99_latency_ns: u64,
    /// Worst round-trip latency (ns).
    pub max_latency_ns: u64,
    /// The plan's p99 SLO (ns).
    pub slo_p99_ns: u64,
    /// p99 met the SLO (and at least one round trip completed).
    pub slo_met: bool,
    /// Fewest ready replicas observed at any control-plane tick after
    /// the service first reached full readiness (and before deletion).
    pub min_ready: u64,
    /// Most ready replicas observed (the autoscale high-water mark).
    pub max_ready: u64,
    /// The rolling-update availability floor,
    /// `replicas − maxUnavailable`.
    pub ready_floor: u64,
    /// Ready replicas never dropped below the floor once full readiness
    /// was reached.
    pub floor_held: bool,
}

/// Isolation assertions — every field except the `*_attempts`/`denied`
/// counters must be zero for the scenario to pass.
#[derive(Debug, Clone, Default, Serialize, PartialEq, Eq)]
pub struct IsolationReport {
    /// Adversarial cross-tenant probes mounted.
    pub cross_tenant_attempts: u64,
    /// Probes denied (driver auth or fabric enforcement).
    pub cross_tenant_denied: u64,
    /// Probes that *delivered* on a foreign VNI (violation).
    pub cross_vni_deliveries: u64,
    /// VNI reuses inside the quarantine window, from the audit log
    /// (violation).
    pub quarantine_violations: u64,
    /// CXI services that outlived their pod (violation).
    pub leaked_services: u64,
    /// Switch-port VNI grants that outlived the allocation (violation).
    pub stale_grants: u64,
    /// Pods placed on a drained node after the drain (violation).
    pub placement_violations: u64,
}

/// The full JSON report of one scenario run. Deterministic: for a fixed
/// scenario + seed the serialized bytes are identical across runs.
#[derive(Debug, Clone, Serialize, PartialEq, Eq)]
pub struct ScenarioReport {
    /// Scenario name.
    pub scenario: String,
    /// Scenario description.
    pub description: String,
    /// Cluster seed.
    pub seed: u64,
    /// Horizon in milliseconds.
    pub horizon_ms: u64,
    /// DES events executed.
    pub events_executed: u64,
    /// Job lifecycle metrics.
    pub jobs: JobsReport,
    /// Traffic metrics.
    pub traffic: TrafficReport,
    /// VNI Service metrics.
    pub vni: VniReport,
    /// Kubelet metrics.
    pub kubelet: KubeletReport,
    /// Serving-plane metrics, one per planned service; empty (and
    /// omitted from the JSON) for job-only scenarios, so their reports
    /// are byte-identical to earlier versions.
    #[serde(skip_serializing_if = "Vec::is_empty")]
    pub services: Vec<ServiceReport>,
    /// Isolation assertions.
    pub isolation: IsolationReport,
    /// Whether every isolation assertion (and traffic liveness, where
    /// the plan generates traffic) held.
    pub passed: bool,
}

impl ScenarioReport {
    fn evaluate(&mut self, traffic_expected: bool) {
        let iso = &self.isolation;
        let services_ok = self.services.iter().all(|s| {
            s.auth_failures == 0 && s.completed > 0 && s.slo_met && s.floor_held
        });
        self.passed = iso.cross_vni_deliveries == 0
            && iso.quarantine_violations == 0
            && iso.leaked_services == 0
            && iso.stale_grants == 0
            && iso.placement_violations == 0
            && services_ok
            && (!traffic_expected || (self.traffic.delivered > 0 && self.traffic.auth_failures == 0));
    }
}

struct JobTrack {
    plan: JobPlan,
    started_at: Option<SimTime>,
    rounds_done: u32,
    /// The VNI the job's ranks authenticated with, captured at the
    /// first traffic round (the CRD is reaped at teardown, so the
    /// end-state audit could no longer resolve it).
    vni_seen: Option<Vni>,
}

struct ServiceTrack {
    plan: ServicePlan,
    vni_seen: Option<Vni>,
    /// Round-trip latency samples (ns), sorted once at report time.
    latencies: Vec<u64>,
    fires: u64,
    skipped_fires: u64,
    requests: u64,
    completed: u64,
    dropped: u64,
    auth_failures: u64,
    payload_bytes: u64,
    /// Round-robin cursor over the ready replica list.
    rr: usize,
    /// Last desired replica count pushed by the autoscaler.
    desired: u32,
    /// The service reached `replicas` ready pods at least once.
    full_ready_seen: bool,
    min_ready: u64,
    max_ready: u64,
}

/// Per-class (and per-job) slice of the raw counters.
#[derive(Default, Clone, Copy)]
struct ClassAgg {
    sends: u64,
    delivered: u64,
    dropped: u64,
    bytes: u64,
    lat_sum_ns: u64,
    lat_max_ns: u64,
}

#[derive(Default)]
struct Raw {
    rounds: u64,
    skipped_rounds: u64,
    authorized_sends: u64,
    delivered: u64,
    dropped: u64,
    auth_failures: u64,
    lat_sum_ns: u64,
    lat_max_ns: u64,
    payload_bytes: u64,
    cross_attempts: u64,
    cross_denied: u64,
    cross_deliveries: u64,
    class: [ClassAgg; 4],
    /// Per-job slices of the same counters, in plan order.
    per_job: Vec<ClassAgg>,
}

struct World {
    cluster: Cluster,
    horizon: SimTime,
    tick: SimDur,
    jobs: Vec<JobTrack>,
    services: Vec<ServiceTrack>,
    m: Raw,
    msg_id: u64,
    /// (node index, drain instant)
    drained: Vec<(usize, SimTime)>,
}

fn annotations(mode: &VniMode) -> Vec<(String, String)> {
    match mode {
        VniMode::Global => vec![],
        VniMode::Dedicated => vec![("vni".to_string(), "true".to_string())],
        VniMode::Claim(c) => vec![("vni".to_string(), c.clone())],
    }
}

/// The VNI a job's pods would authenticate with, if decorated yet.
fn resolve_vni(cluster: &Cluster, plan: &JobPlan) -> Option<Vni> {
    resolve_named_vni(cluster, &plan.vni, &plan.tenant, &plan.name)
}

/// The VNI a service's replicas would authenticate with, if decorated.
fn resolve_service_vni(cluster: &Cluster, plan: &ServicePlan) -> Option<Vni> {
    resolve_named_vni(cluster, &plan.vni, &plan.tenant, &plan.name)
}

fn resolve_named_vni(cluster: &Cluster, mode: &VniMode, tenant: &str, name: &str) -> Option<Vni> {
    match mode {
        VniMode::Global => Some(Vni::GLOBAL),
        _ => {
            let child = crate::endpoint::VniEndpoint::child_name_for_job(name);
            let crd = cluster.api.get(kinds::VNI, tenant, &child)?;
            crd.spec["vni"].as_u64().map(|v| Vni(v as u16))
        }
    }
}

fn tick_ev(sim: &mut Sim<World>) {
    let now = sim.now();
    sim.world.cluster.tick(now);
    // Admission tracking: record the first pod-start instant per job.
    // (This runs every 20 ms tick — borrow jobs and cluster as disjoint
    // fields rather than cloning job keys.)
    let w = &mut sim.world;
    for ji in 0..w.jobs.len() {
        let t = &w.jobs[ji];
        if t.started_at.is_some() || now < t.plan.arrival {
            continue;
        }
        let started = w.cluster.job_started_at(&t.plan.tenant, &t.plan.name);
        if let Some(at) = started {
            w.jobs[ji].started_at = Some(at);
        }
    }
    // Availability-floor tracking: sample the PLEG-cached ready count of
    // every live service at every tick, so a rolling update dipping
    // below `replicas − maxUnavailable` between request fires is caught.
    for t in &mut w.services {
        if now < t.plan.arrival || t.plan.delete_at.is_some_and(|d| now >= d) {
            continue;
        }
        let ready = w.cluster.pleg.ready_count(&t.plan.tenant, &t.plan.name) as u64;
        t.max_ready = t.max_ready.max(ready);
        if ready >= u64::from(t.plan.replicas) {
            t.full_ready_seen = true;
        }
        if t.full_ready_seen {
            t.min_ready = t.min_ready.min(ready);
        }
    }
    let (tick, horizon) = (w.tick, w.horizon);
    if now < horizon {
        sim.after(tick, tick_ev);
    }
}

/// Authenticate `src` against `vni` and push one message through the
/// fabric, folding the outcome into the scenario counters. Returns the
/// delivery instant so request/response pairs can chain the response
/// leg off the request's arrival.
#[allow(clippy::too_many_arguments)]
fn send_authorized(
    w: &mut World,
    now: SimTime,
    ji: usize,
    src: PodHandle,
    dst: PodHandle,
    vni: Vni,
    size: u64,
    tc: TrafficClass,
) -> Option<SimTime> {
    w.msg_id += 1;
    let id = w.msg_id;
    let Cluster { nodes, fabric, .. } = &mut w.cluster;
    let sn = &nodes[src.node_idx];
    // The member check every RDMA application passes once at startup.
    if sn.inner.device.driver.find_service(&sn.inner.host, src.pid, vni).is_err() {
        w.m.auth_failures += 1;
        return None;
    }
    w.m.authorized_sends += 1;
    w.m.class[tc.index()].sends += 1;
    w.m.per_job[ji].sends += 1;
    let src_nic = sn.inner.nic;
    let dst_nic = nodes[dst.node_idx].inner.nic;
    match fabric.transfer(now, src_nic, dst_nic, vni, tc, size, id) {
        TransferOutcome::Delivered { arrival, .. } => {
            w.m.delivered += 1;
            w.m.payload_bytes += size;
            let lat = (arrival - now).as_nanos();
            w.m.lat_sum_ns += lat;
            w.m.lat_max_ns = w.m.lat_max_ns.max(lat);
            for agg in [&mut w.m.class[tc.index()], &mut w.m.per_job[ji]] {
                agg.delivered += 1;
                agg.bytes += size;
                agg.lat_sum_ns += lat;
                agg.lat_max_ns = agg.lat_max_ns.max(lat);
            }
            Some(arrival)
        }
        TransferOutcome::Dropped(_) => {
            w.m.dropped += 1;
            w.m.class[tc.index()].dropped += 1;
            w.m.per_job[ji].dropped += 1;
            None
        }
    }
}

/// The first *other* job currently decorated with a different,
/// non-global VNI — the adversarial probe target. Falls back to a
/// service VNI, so jobs and services probe each other's isolation.
fn pick_foreign(w: &World, ji: usize, own: Vni) -> Option<Vni> {
    w.jobs
        .iter()
        .enumerate()
        .find_map(|(k, t)| {
            if k == ji {
                return None;
            }
            let v = resolve_vni(&w.cluster, &t.plan)?;
            (v != own && v != Vni::GLOBAL).then_some(v)
        })
        .or_else(|| pick_foreign_service(w, own))
}

/// The first service decorated with a different, non-global VNI.
fn pick_foreign_service(w: &World, own: Vni) -> Option<Vni> {
    w.services.iter().find_map(|t| {
        let v = resolve_service_vni(&w.cluster, &t.plan)?;
        (v != own && v != Vni::GLOBAL).then_some(v)
    })
}

fn probe_cross(w: &mut World, now: SimTime, attacker: PodHandle, foreign: Vni, tc: TrafficClass) {
    w.m.cross_attempts += 1;
    w.msg_id += 1;
    let id = w.msg_id;
    let Cluster { nodes, fabric, .. } = &mut w.cluster;
    let sn = &nodes[attacker.node_idx];
    // Hop 1: the CXI driver must refuse the endpoint (netns member).
    if sn.inner.device.driver.find_service(&sn.inner.host, attacker.pid, foreign).is_err() {
        w.m.cross_denied += 1;
        return;
    }
    // Hop 2: even an admitted endpoint must die at the switch port.
    let src_nic = sn.inner.nic;
    let dst_nic = nodes[(attacker.node_idx + 1) % nodes.len()].inner.nic;
    match fabric.transfer(now, src_nic, dst_nic, foreign, tc, 64, id) {
        TransferOutcome::Delivered { .. } => w.m.cross_deliveries += 1,
        TransferOutcome::Dropped(_) => w.m.cross_denied += 1,
    }
}

fn traffic_round(sim: &mut Sim<World>, ji: usize) {
    let now = sim.now();
    let w = &mut sim.world;
    let (ranks, delete_at, traffic) = {
        let p = &w.jobs[ji].plan;
        (p.ranks, p.delete_at, p.traffic)
    };
    let Some(tp) = traffic else { return };
    let past_delete = delete_at.is_some_and(|d| now >= d);
    let mut complete = false;
    if !past_delete {
        let mut handles = Vec::with_capacity(ranks as usize);
        for r in 0..ranks {
            let p = &w.jobs[ji].plan;
            let pod = format!("{}-{r}", p.name);
            match w.cluster.pod_handle(&p.tenant, &pod) {
                Some(h) => handles.push(h),
                None => break,
            }
        }
        let vni = resolve_vni(&w.cluster, &w.jobs[ji].plan);
        match (handles.len() == ranks as usize, vni) {
            (true, Some(vni)) => {
                w.m.rounds += 1;
                w.jobs[ji].vni_seen = Some(vni);
                if handles.len() >= 2 {
                    match tp.pattern {
                        TrafficPattern::Ring => {
                            for i in 0..handles.len() {
                                let dst = handles[(i + 1) % handles.len()];
                                for _ in 0..tp.burst.max(1) {
                                    send_authorized(
                                        w, now, ji, handles[i], dst, vni, tp.size, tp.tc,
                                    );
                                }
                            }
                        }
                        TrafficPattern::Incast => {
                            for i in 1..handles.len() {
                                for _ in 0..tp.burst.max(1) {
                                    send_authorized(
                                        w, now, ji, handles[i], handles[0], vni, tp.size, tp.tc,
                                    );
                                }
                            }
                        }
                        TrafficPattern::Allreduce => {
                            for step in ring_allreduce_schedule(handles.len(), tp.size) {
                                for (src, dst, len) in step {
                                    for _ in 0..tp.burst.max(1) {
                                        send_authorized(
                                            w, now, ji, handles[src], handles[dst], vni, len,
                                            tp.tc,
                                        );
                                    }
                                }
                            }
                        }
                        TrafficPattern::RequestResponse => {
                            for i in 0..handles.len() {
                                let dst = handles[(i + 1) % handles.len()];
                                for _ in 0..tp.burst.max(1) {
                                    // The response leg departs when the
                                    // request arrives, like a real RPC.
                                    if let Some(arrival) = send_authorized(
                                        w, now, ji, handles[i], dst, vni, tp.size, tp.tc,
                                    ) {
                                        send_authorized(
                                            w, arrival, ji, dst, handles[i], vni, tp.size,
                                            tp.tc,
                                        );
                                    }
                                }
                            }
                        }
                    }
                }
                if let Some(foreign) = pick_foreign(w, ji, vni) {
                    probe_cross(w, now, handles[0], foreign, tp.tc);
                }
                w.jobs[ji].rounds_done += 1;
                complete = w.jobs[ji].rounds_done >= tp.rounds;
            }
            _ => w.m.skipped_rounds += 1,
        }
    }
    let horizon = w.horizon;
    if !complete && !past_delete && now + tp.interval <= horizon {
        sim.after(tp.interval, move |s| traffic_round(s, ji));
    }
}

/// The ring-allreduce schedule [`TrafficPattern::Allreduce`] executes:
/// one inner `Vec` of `(src rank, dst rank, chunk bytes)` per step —
/// `n−1` reduce-scatter steps then `n−1` allgather steps, chunks split
/// at byte boundaries `⌊i·size/n⌋`.
///
/// This deliberately **mirrors** `shs_mpi::ring_allreduce_schedule`
/// (this crate sits below `shs-mpi` in the dependency layering, so the
/// code cannot be shared); a test in `shs-harness`, which depends on
/// both, pins the two schedules byte-for-byte.
pub fn ring_allreduce_schedule(n: usize, size: u64) -> Vec<Vec<(usize, usize, u64)>> {
    let chunk = |idx: usize| -> u64 {
        let (n, idx) = (n as u64, (idx % n) as u64);
        (idx + 1) * size / n - idx * size / n
    };
    let mut steps = Vec::with_capacity(2 * (n.saturating_sub(1)));
    for phase in 0..2usize {
        for s in 0..n - 1 {
            steps.push(
                (0..n)
                    .map(|i| {
                        let idx = match phase {
                            0 => (i + n - s) % n,
                            _ => (i + 1 + n - s) % n,
                        };
                        (i, (i + 1) % n, chunk(idx))
                    })
                    .collect(),
            );
        }
    }
    steps
}

fn drain_ev(sim: &mut Sim<World>, node_idx: usize) {
    let now = sim.now();
    let w = &mut sim.world;
    let name = w.cluster.nodes[node_idx].inner.name.clone();
    let _ = w.cluster.api.mutate(kinds::NODE, "", &name, |o| {
        o.status = serde_json::json!({ "ready": false });
    });
    // Evict: delete every job with a pod bound to the drained node.
    let mut doomed: BTreeSet<(String, String)> = BTreeSet::new();
    for pod in w.cluster.api.list(kinds::POD) {
        let spec: PodSpec = spec_of(pod);
        if spec.node_name.as_deref() == Some(name.as_str()) {
            if let Some(job) = spec.job_name {
                doomed.insert((pod.meta.namespace.clone(), job));
            }
        }
    }
    for (ns, job) in doomed {
        w.cluster.delete_job(&ns, &job);
    }
    w.drained.push((node_idx, now));
}

/// One TSoR-style round trip: authenticate both replicas against the
/// service VNI, push the request leg, then the response leg dispatched
/// at the request's arrival instant; the latency sample is the full
/// round trip in virtual time.
fn service_request(w: &mut World, now: SimTime, si: usize, src: PodHandle, dst: PodHandle, vni: Vni) {
    w.msg_id += 1;
    let req_id = w.msg_id;
    w.msg_id += 1;
    let resp_id = w.msg_id;
    let World { cluster, services, .. } = w;
    let t = &mut services[si];
    let (tc, req, resp) = (t.plan.tc, t.plan.request_bytes, t.plan.response_bytes);
    t.requests += 1;
    let Cluster { nodes, fabric, .. } = cluster;
    // Both ends hold an RDMA endpoint: the client authenticates to send
    // the request, the server to send the response.
    for h in [src, dst] {
        let n = &nodes[h.node_idx];
        if n.inner.device.driver.find_service(&n.inner.host, h.pid, vni).is_err() {
            t.auth_failures += 1;
            return;
        }
    }
    let src_nic = nodes[src.node_idx].inner.nic;
    let dst_nic = nodes[dst.node_idx].inner.nic;
    let TransferOutcome::Delivered { arrival, .. } =
        fabric.transfer(now, src_nic, dst_nic, vni, tc, req, req_id)
    else {
        t.dropped += 1;
        return;
    };
    match fabric.transfer(arrival, dst_nic, src_nic, vni, tc, resp, resp_id) {
        TransferOutcome::Delivered { arrival: done, .. } => {
            t.completed += 1;
            t.payload_bytes += req + resp;
            t.latencies.push((done - now).as_nanos());
        }
        TransferOutcome::Dropped(_) => t.dropped += 1,
    }
}

/// One open-loop generator fire: compute the demand (baseline + burst
/// window), drive the autoscaler, then round-robin the requests over
/// the PLEG-cached ready replica list, plus one adversarial cross-VNI
/// probe per fire.
fn service_fire(w: &mut World, now: SimTime, si: usize) {
    let plan = w.services[si].plan.clone();
    let mut demand = plan.requests_per_fire;
    if let Some(b) = &plan.burst {
        if now >= b.from && now < b.until {
            demand += b.extra;
        }
    }
    if let Some(a) = &plan.autoscale {
        let desired = demand.div_ceil(a.per_replica.max(1)).clamp(plan.replicas, a.max_replicas);
        if w.services[si].desired != desired {
            w.services[si].desired = desired;
            w.cluster.scale_service(&plan.tenant, &plan.name, desired);
        }
    }
    let vni = resolve_service_vni(&w.cluster, &plan);
    let ready = w.cluster.service_ready(&plan.tenant, &plan.name);
    let handles: Vec<PodHandle> =
        ready.iter().filter_map(|p| w.cluster.pod_handle(&plan.tenant, p)).collect();
    let (Some(vni), true) = (vni, handles.len() >= 2) else {
        w.services[si].skipped_fires += 1;
        return;
    };
    w.services[si].fires += 1;
    w.services[si].vni_seen = Some(vni);
    let n = handles.len();
    let mut rr = w.services[si].rr;
    for _ in 0..demand {
        let (src, dst) = (handles[rr % n], handles[(rr + 1) % n]);
        rr += 1;
        service_request(w, now, si, src, dst, vni);
    }
    w.services[si].rr = rr % n;
    // Jobs probe service VNIs and vice versa — isolation is adversarial
    // in both directions.
    let foreign = w
        .jobs
        .iter()
        .find_map(|t| {
            let v = resolve_vni(&w.cluster, &t.plan)?;
            (v != vni && v != Vni::GLOBAL).then_some(v)
        })
        .or_else(|| pick_foreign_service(w, vni));
    if let Some(foreign) = foreign {
        probe_cross(w, now, handles[0], foreign, plan.tc);
    }
}

/// The self-rescheduling generator event behind [`ServicePlan`]'s
/// open-loop arrivals.
fn service_round(sim: &mut Sim<World>, si: usize) {
    let now = sim.now();
    let w = &mut sim.world;
    let (interval, delete_at) = {
        let p = &w.services[si].plan;
        (p.request_interval, p.delete_at)
    };
    let past_delete = delete_at.is_some_and(|d| now >= d);
    if !past_delete {
        service_fire(w, now, si);
    }
    let horizon = w.horizon;
    if !past_delete && now + interval <= horizon {
        sim.after(interval, move |s| service_round(s, si));
    }
}

/// Execute a scenario end to end; never panics on isolation failures —
/// they are reported in the returned [`ScenarioReport`].
pub fn run_scenario(scenario: &Scenario) -> ScenarioReport {
    let cluster = Cluster::new(scenario.config.clone());
    let world = World {
        cluster,
        horizon: scenario.horizon,
        tick: scenario.tick,
        jobs: scenario
            .jobs
            .iter()
            .map(|p| JobTrack {
                plan: p.clone(),
                started_at: None,
                rounds_done: 0,
                vni_seen: None,
            })
            .collect(),
        services: scenario
            .services
            .iter()
            .map(|p| ServiceTrack {
                plan: p.clone(),
                vni_seen: None,
                latencies: Vec::new(),
                fires: 0,
                skipped_fires: 0,
                requests: 0,
                completed: 0,
                dropped: 0,
                auth_failures: 0,
                payload_bytes: 0,
                rr: 0,
                desired: p.replicas,
                full_ready_seen: false,
                min_ready: u64::MAX,
                max_ready: 0,
            })
            .collect(),
        m: Raw {
            per_job: vec![ClassAgg::default(); scenario.jobs.len()],
            ..Default::default()
        },
        msg_id: 0,
        drained: Vec::new(),
    };
    let mut sim = Sim::new(world);

    sim.at(SimTime::ZERO, tick_ev);
    for claim in &scenario.claims {
        let (ns, name) = (claim.tenant.clone(), claim.name.clone());
        sim.at(claim.create_at, move |s| {
            let now = s.now();
            s.world.cluster.create_claim(now, &ns, &name);
        });
        if let Some(at) = claim.delete_at {
            let (ns, name) = (claim.tenant.clone(), claim.name.clone());
            sim.at(at, move |s| s.world.cluster.delete_claim(&ns, &name));
        }
    }
    for (ji, plan) in scenario.jobs.iter().enumerate() {
        let p = plan.clone();
        sim.at(plan.arrival, move |s| {
            let now = s.now();
            let ann = annotations(&p.vni);
            let ann_refs: Vec<(&str, &str)> =
                ann.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
            s.world.cluster.submit_job_placed(
                now,
                &p.tenant,
                &p.name,
                &ann_refs,
                p.ranks,
                &alpine(),
                p.run_ms,
                p.pin_nodes.as_deref(),
            );
            if let Some(tp) = &p.traffic {
                s.after(tp.interval, move |s2| traffic_round(s2, ji));
            }
        });
        if let Some(at) = plan.delete_at {
            let (ns, name) = (plan.tenant.clone(), plan.name.clone());
            sim.at(at, move |s| s.world.cluster.delete_job(&ns, &name));
        }
    }
    for (si, plan) in scenario.services.iter().enumerate() {
        let p = plan.clone();
        sim.at(plan.arrival, move |s| {
            let now = s.now();
            let ann = annotations(&p.vni);
            let ann_refs: Vec<(&str, &str)> =
                ann.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
            s.world.cluster.submit_service(
                now,
                &p.tenant,
                &p.name,
                &ann_refs,
                p.replicas,
                &alpine(),
                p.pin_nodes.as_deref(),
            );
            s.after(p.request_interval, move |s2| service_round(s2, si));
        });
        if let Some(at) = plan.update_at {
            let (ns, name) = (plan.tenant.clone(), plan.name.clone());
            sim.at(at, move |s| s.world.cluster.roll_service(&ns, &name));
        }
        if let Some(at) = plan.delete_at {
            let (ns, name) = (plan.tenant.clone(), plan.name.clone());
            sim.at(at, move |s| s.world.cluster.delete_service(&ns, &name));
        }
    }
    for fault in &scenario.faults {
        match fault {
            Fault::DrainNode { node, at } => {
                let node = *node;
                sim.at(*at, move |s| drain_ev(s, node));
            }
            Fault::LinkDown { at, a, b } => {
                let (a, b) = (SwitchId(*a), SwitchId(*b));
                sim.at(*at, move |s| {
                    s.world.cluster.fabric.apply_fault(FaultKind::LinkDown(a, b));
                });
            }
            Fault::LinkUp { at, a, b } => {
                let (a, b) = (SwitchId(*a), SwitchId(*b));
                sim.at(*at, move |s| {
                    s.world.cluster.fabric.apply_fault(FaultKind::LinkUp(a, b));
                });
            }
            Fault::SwitchDown { at, switch } => {
                let sw = SwitchId(*switch);
                sim.at(*at, move |s| {
                    s.world.cluster.fabric.apply_fault(FaultKind::SwitchDown(sw));
                });
            }
        }
    }

    sim.run_until(scenario.horizon);
    let events_executed = sim.events_executed();
    let w = &mut sim.world;

    // ---- End-state audit ------------------------------------------------
    let mut iso = IsolationReport {
        cross_tenant_attempts: w.m.cross_attempts,
        cross_tenant_denied: w.m.cross_denied,
        cross_vni_deliveries: w.m.cross_deliveries,
        ..Default::default()
    };

    // Rows as of the horizon, captured before the audit sweep below
    // deletes expired quarantine rows (a grant left behind for an
    // expired VNI is just as stale as one inside the window).
    let rows_at_horizon = w.cluster.endpoint.borrow().db.rows();

    // Quarantine discipline, from the audit log: every re-acquisition of
    // a VNI must be >= the quarantine window after its release.
    let quarantine_ns = w.cluster.endpoint.borrow().db.quarantine().as_nanos();
    let audit = w.cluster.endpoint.borrow_mut().db.audit_at(scenario.horizon);
    let mut last_release: BTreeMap<u16, u64> = BTreeMap::new();
    for entry in &audit {
        match entry.event.as_str() {
            "acquire" => {
                if let Some(rel) = last_release.get(&entry.vni) {
                    if entry.at_ns.saturating_sub(*rel) < quarantine_ns {
                        iso.quarantine_violations += 1;
                    }
                }
            }
            "release" => {
                last_release.insert(entry.vni, entry.at_ns);
            }
            _ => {}
        }
    }

    // Leaked CXI services: a `cni:` service whose pod no longer exists.
    for node in &w.cluster.nodes {
        for svc in node.inner.device.driver.services() {
            let Some(sandbox) = svc.label.strip_prefix("cni:") else { continue };
            let Some((ns, pod)) = sandbox.split_once('_') else { continue };
            if w.cluster.api.get(kinds::POD, ns, pod).is_none() {
                iso.leaked_services += 1;
            }
        }
    }

    // Stale switch grants: a port grant is only legitimate while the VNI
    // is allocated AND some CXI service on that node still carries it
    // (the plugin grants after service creation and revokes after the
    // last service goes). This also catches a leaked grant from a VNI's
    // *previous* owner after the VNI has been re-acquired elsewhere.
    for row in rows_at_horizon {
        let vni = Vni(row.vni);
        for node in &w.cluster.nodes {
            if !w.cluster.fabric.nic_has_vni(node.inner.nic, vni) {
                continue;
            }
            let justified = row.state == crate::vni_db::VniState::Allocated
                && node.inner.device.driver.services().iter().any(|s| s.vnis.contains(&vni));
            if !justified {
                iso.stale_grants += 1;
            }
        }
    }

    // Placement: nothing may start on a drained node after the drain.
    for &(node_idx, at) in &w.drained {
        let name = w.cluster.nodes[node_idx].inner.name.clone();
        for pod in w.cluster.api.list(kinds::POD) {
            let spec: PodSpec = spec_of(pod);
            if spec.node_name.as_deref() != Some(name.as_str()) {
                continue;
            }
            let started = status_of::<PodStatus>(pod).and_then(|s| s.started_at_ns);
            if started.is_some_and(|s| s > at.as_nanos()) {
                iso.placement_violations += 1;
            }
        }
    }

    // VNI database end state — `stats` sweeps expired quarantines so the
    // reported split is consistent with what `acquire` would see.
    let (counters, db_stats, audit_len, txn_count) = {
        let mut ep = w.cluster.endpoint.borrow_mut();
        let counters = ep.counters;
        let stats = ep.db.stats(scenario.horizon);
        let audit_len = ep.db.audit_len();
        let txn_count = ep.db.txn_count();
        (counters, stats, audit_len, txn_count)
    };

    let mut outcomes = Vec::with_capacity(w.jobs.len());
    let mut started = 0u64;
    let mut reaped = 0u64;
    let (mut adm_sum, mut adm_max, mut adm_n) = (0u64, 0u64, 0u64);
    for t in &w.jobs {
        let gone = !w.cluster.job_exists(&t.plan.tenant, &t.plan.name);
        let admission_us = t.started_at.map(|at| (at - t.plan.arrival).as_nanos() / 1_000);
        if t.started_at.is_some() {
            started += 1;
        }
        if gone {
            reaped += 1;
        }
        if let Some(us) = admission_us {
            adm_sum += us;
            adm_max = adm_max.max(us);
            adm_n += 1;
        }
        outcomes.push(JobOutcome {
            job: format!("{}/{}", t.plan.tenant, t.plan.name),
            started: t.started_at.is_some(),
            admission_us,
            reaped: gone,
        });
    }

    let kubelet = w.cluster.nodes.iter().fold(KubeletReport::default(), |mut acc, n| {
        acc.pods_started += n.kubelet.counters.pods_started;
        acc.pods_removed += n.kubelet.counters.pods_removed;
        acc.cni_retries += n.kubelet.counters.cni_retries;
        acc.pods_failed += n.kubelet.counters.pods_failed;
        acc
    });

    // Per-class traffic slice: only multi-switch topologies have trunk
    // links (and thus per-hop class counters); single-switch scenarios
    // omit the section so their reports stay byte-identical.
    let by_class = if w.cluster.fabric.topology().switch_count() > 1 {
        let trunk_totals = w.cluster.fabric.trunk_class_totals();
        TrafficClass::ALL
            .iter()
            .filter_map(|&tc| {
                let agg = &w.m.class[tc.index()];
                let trunk = &trunk_totals[tc.index()];
                if agg.sends == 0 && trunk.congestion_drops == 0 {
                    return None;
                }
                Some(ClassTraffic {
                    class: tc.to_string(),
                    sends: agg.sends,
                    delivered: agg.delivered,
                    dropped: agg.dropped,
                    congestion_drops: trunk.congestion_drops,
                    trunk_queued_ns_max: trunk.queued_ns_max,
                    mean_latency_ns: agg.lat_sum_ns.checked_div(agg.delivered).unwrap_or(0),
                    max_latency_ns: agg.lat_max_ns,
                })
            })
            .collect()
    } else {
        Vec::new()
    };

    // Per-tenant accounting: only collective scenarios carry it, so the
    // pre-collective report library stays byte-identical.
    let collective = scenario
        .jobs
        .iter()
        .any(|j| j.traffic.is_some_and(|t| t.pattern == TrafficPattern::Allreduce));
    let by_job = if collective {
        w.jobs
            .iter()
            .enumerate()
            .map(|(ji, t)| {
                let agg = &w.m.per_job[ji];
                let fab = t.vni_seen.map(|v| w.cluster.fabric.traffic(v)).unwrap_or_default();
                JobTraffic {
                    job: format!("{}/{}", t.plan.tenant, t.plan.name),
                    vni: t.vni_seen.map(|v| v.0),
                    sends: agg.sends,
                    delivered: agg.delivered,
                    dropped: agg.dropped,
                    payload_bytes: agg.bytes,
                    mean_latency_ns: agg.lat_sum_ns.checked_div(agg.delivered).unwrap_or(0),
                    max_latency_ns: agg.lat_max_ns,
                    fabric_switch_hops: fab.switch_hops,
                    fabric_congestion_drops: fab.congestion_drops,
                    fabric_reroutes: (fab.reroutes > 0).then_some(fab.reroutes),
                    fabric_ecn_marks: (fab.ecn_marks > 0).then_some(fab.ecn_marks),
                }
            })
            .collect()
    } else {
        Vec::new()
    };

    // Serving-plane slice: per-service request/response outcomes, the
    // p99-vs-SLO verdict, and the availability floor observed while the
    // service was live (empty for job-only scenarios).
    let services: Vec<ServiceReport> = w
        .services
        .iter_mut()
        .map(|t| {
            t.latencies.sort_unstable();
            // Nearest-rank percentile: ceil(q·n/100)ᵗʰ smallest sample.
            let pct = |q: u64| -> u64 {
                if t.latencies.is_empty() {
                    return 0;
                }
                let rank = (t.latencies.len() as u64 * q).div_ceil(100).max(1);
                t.latencies[rank as usize - 1]
            };
            let (p50, p99) = (pct(50), pct(99));
            let max = t.latencies.last().copied().unwrap_or(0);
            let floor = u64::from(t.plan.replicas.saturating_sub(1));
            let min_ready = if t.full_ready_seen { t.min_ready } else { 0 };
            ServiceReport {
                service: format!("{}/{}", t.plan.tenant, t.plan.name),
                replicas: u64::from(t.plan.replicas),
                vni: t.vni_seen.map(|v| v.0),
                fires: t.fires,
                skipped_fires: t.skipped_fires,
                requests: t.requests,
                completed: t.completed,
                dropped: t.dropped,
                auth_failures: t.auth_failures,
                payload_bytes: t.payload_bytes,
                p50_latency_ns: p50,
                p99_latency_ns: p99,
                max_latency_ns: max,
                slo_p99_ns: t.plan.slo_p99.as_nanos(),
                slo_met: t.completed > 0 && p99 <= t.plan.slo_p99.as_nanos(),
                min_ready,
                max_ready: t.max_ready,
                ready_floor: floor,
                floor_held: t.full_ready_seen && min_ready >= floor,
            }
        })
        .collect();

    let fabric_totals = w.cluster.fabric.traffic_totals();
    let traffic_expected =
        scenario.jobs.iter().any(|j| j.traffic.is_some() && j.ranks >= 2);
    let mut report = ScenarioReport {
        scenario: scenario.name.clone(),
        description: scenario.description.clone(),
        seed: scenario.config.seed,
        horizon_ms: scenario.horizon.as_nanos() / 1_000_000,
        events_executed,
        jobs: JobsReport {
            planned: w.jobs.len() as u64,
            started,
            reaped,
            admission_mean_us: adm_sum.checked_div(adm_n).unwrap_or(0),
            admission_max_us: adm_max,
            outcomes,
        },
        traffic: TrafficReport {
            rounds: w.m.rounds,
            skipped_rounds: w.m.skipped_rounds,
            authorized_sends: w.m.authorized_sends,
            delivered: w.m.delivered,
            dropped: w.m.dropped,
            auth_failures: w.m.auth_failures,
            mean_latency_ns: w.m.lat_sum_ns.checked_div(w.m.delivered).unwrap_or(0),
            max_latency_ns: w.m.lat_max_ns,
            payload_bytes: w.m.payload_bytes,
            by_class,
            by_job,
            fabric_reroutes: (fabric_totals.reroutes > 0).then_some(fabric_totals.reroutes),
            fabric_ecn_marks: (fabric_totals.ecn_marks > 0).then_some(fabric_totals.ecn_marks),
        },
        vni: VniReport {
            acquisitions: counters.acquisitions,
            releases: counters.releases,
            redemptions: counters.redemptions,
            exhaustions: counters.exhaustions,
            stalled_claim_deletes: counters.stalled_claim_deletes,
            allocated_at_end: db_stats.allocated as u64,
            quarantined_at_end: db_stats.quarantined as u64,
            audit_len: audit_len as u64,
            txn_count,
        },
        kubelet,
        services,
        isolation: iso,
        passed: false,
    };
    report.evaluate(traffic_expected);
    report
}

// ---- The named scenario library -----------------------------------------

fn ms(x: u64) -> SimTime {
    SimTime::from_nanos(x * 1_000_000)
}

fn job(tenant: &str, name: &str, ranks: u32, arrival_ms: u64, vni: VniMode) -> JobPlan {
    JobPlan {
        tenant: tenant.into(),
        name: name.into(),
        ranks,
        arrival: ms(arrival_ms),
        run_ms: None,
        vni,
        delete_at: None,
        traffic: None,
        pin_nodes: None,
    }
}

fn std_traffic() -> TrafficPlan {
    TrafficPlan {
        rounds: 8,
        interval: SimDur::from_millis(1_000),
        size: 4096,
        tc: TrafficClass::Dedicated,
        burst: 1,
        pattern: TrafficPattern::Ring,
    }
}

/// The 2-group dragonfly the contention scenarios run on: one switch
/// per group, nodes round-robined across groups, so rank-to-rank rings
/// and incasts must cross the single global link.
fn two_group_topology() -> TopologySpec {
    TopologySpec { groups: 2, switches_per_group: 1, edge_ports: 8 }
}

/// The 3-group dragonfly the fault/adaptive scenarios run on: the
/// smallest all-to-all group graph where every trunk has an alternate
/// (Valiant) path, so a single link cut degrades routes instead of
/// partitioning the fabric.
fn three_group_topology() -> TopologySpec {
    TopologySpec { groups: 3, switches_per_group: 1, edge_ports: 8 }
}

/// Three tenants with dedicated VNIs, a shared claim, and a baseline
/// global-VNI job, all exchanging traffic concurrently, then torn down.
pub fn steady_state(seed: u64) -> Scenario {
    let mut jobs = Vec::new();
    for (i, (tenant, name)) in
        [("tenant-a", "alpha"), ("tenant-b", "beta"), ("tenant-c", "gamma")].iter().enumerate()
    {
        let mut j = job(tenant, name, 2, 500 + 500 * i as u64, VniMode::Dedicated);
        j.delete_at = Some(ms(30_000));
        j.traffic = Some(std_traffic());
        jobs.push(j);
    }
    let mut delta = job("acme", "delta", 2, 2_000, VniMode::Claim("shared".into()));
    delta.delete_at = Some(ms(28_000));
    delta.traffic = Some(std_traffic());
    jobs.push(delta);
    let mut omega = job("plain", "omega", 2, 2_500, VniMode::Global);
    omega.delete_at = Some(ms(30_000));
    omega.traffic = Some(TrafficPlan { size: 2048, tc: TrafficClass::BulkData, ..std_traffic() });
    jobs.push(omega);
    Scenario {
        name: "steady-state".into(),
        description: "3 dedicated-VNI tenants + a shared claim + a global-VNI baseline, \
                      concurrent traffic, clean teardown"
            .into(),
        config: ClusterConfig { seed, ..Default::default() },
        claims: vec![ClaimPlan {
            tenant: "acme".into(),
            name: "shared".into(),
            create_at: SimTime::ZERO,
            delete_at: Some(ms(31_000)),
        }],
        jobs,
        services: vec![],
        faults: vec![],
        horizon: ms(45_000),
        tick: SimDur::from_millis(20),
    }
}

/// Waves of short-lived jobs: allocation, completion, TTL reaping and
/// quarantine all cycling at once.
pub fn churn(seed: u64) -> Scenario {
    let mut jobs = Vec::new();
    for wave in 0..3u64 {
        for i in 0..6u64 {
            let mut j = job(
                "churn",
                &format!("w{wave}j{i}"),
                1,
                1_000 + wave * 7_000 + i * 100,
                VniMode::Dedicated,
            );
            j.run_ms = Some(500);
            jobs.push(j);
        }
    }
    Scenario {
        name: "churn".into(),
        description: "3 waves x 6 short jobs; teardown storm must leave zero leaked state"
            .into(),
        config: ClusterConfig { seed, ..Default::default() },
        claims: vec![],
        jobs,
        services: vec![],
        faults: vec![],
        horizon: ms(60_000),
        tick: SimDur::from_millis(20),
    }
}

/// Nine jobs over a three-VNI range: progress is gated by quarantine
/// expiry, and reuse must respect the full 30 s window.
pub fn quarantine_pressure(seed: u64) -> Scenario {
    let mut jobs = Vec::new();
    for i in 0..9u64 {
        let mut j = job("qp", &format!("q{i}"), 1, 200 * i, VniMode::Dedicated);
        j.run_ms = Some(300);
        jobs.push(j);
    }
    Scenario {
        name: "quarantine-pressure".into(),
        description: "9 jobs through a 3-wide VNI range; reuse gated by the 30s quarantine"
            .into(),
        config: ClusterConfig {
            seed,
            vni_range: 2048..2051,
            vni_resync: Some(SimDur::from_millis(1_000)),
            kubelet: KubeletParams {
                retry_backoff: SimDur::from_millis(1_000),
                max_attempts: 200,
                ..Default::default()
            },
            ..Default::default()
        },
        claims: vec![],
        jobs,
        services: vec![],
        faults: vec![],
        horizon: ms(100_000),
        tick: SimDur::from_millis(20),
    }
}

/// Drain a node mid-run: its jobs are evicted, replacements may only
/// land on the surviving nodes, and the drained node must end clean.
pub fn node_drain(seed: u64) -> Scenario {
    let mut jobs = Vec::new();
    for i in 0..4u64 {
        let mut j = job("dr", &format!("d{i}"), 2, 500 + 500 * i, VniMode::Dedicated);
        j.delete_at = Some(ms(40_000));
        j.traffic = Some(TrafficPlan { rounds: 6, size: 1024, ..std_traffic() });
        jobs.push(j);
    }
    for i in 0..2u64 {
        let mut j = job("dr", &format!("r{i}"), 2, 15_000 + 500 * i, VniMode::Dedicated);
        j.delete_at = Some(ms(40_000));
        j.traffic = Some(TrafficPlan { rounds: 6, size: 1024, ..std_traffic() });
        jobs.push(j);
    }
    Scenario {
        name: "node-drain".into(),
        description: "cordon + evict node0 at t=10s; replacements must avoid it and it \
                      must end with no leaked services or grants"
            .into(),
        config: ClusterConfig { seed, nodes: 3, ..Default::default() },
        claims: vec![],
        jobs,
        services: vec![],
        faults: vec![Fault::DrainNode { node: 0, at: ms(10_000) }],
        horizon: ms(55_000),
        tick: SimDur::from_millis(20),
    }
}

/// Five long-running jobs over a two-VNI range: a standing backlog that
/// only drains as earlier tenants release and quarantine expires.
pub fn oversubscribed(seed: u64) -> Scenario {
    let mut jobs = Vec::new();
    let deletes = [10_000u64, 10_000, 55_000, 55_000, 100_000];
    for (i, del) in deletes.iter().enumerate() {
        let mut j = job("over", &format!("o{i}"), 1, 300 * (i as u64 + 1), VniMode::Dedicated);
        j.delete_at = Some(ms(*del));
        jobs.push(j);
    }
    Scenario {
        name: "oversubscribed".into(),
        description: "5 standing jobs over a 2-wide VNI range; the backlog drains only \
                      through release + quarantine expiry"
            .into(),
        config: ClusterConfig {
            seed,
            vni_range: 3000..3002,
            vni_resync: Some(SimDur::from_millis(1_000)),
            kubelet: KubeletParams {
                retry_backoff: SimDur::from_millis(2_000),
                max_attempts: 100,
                ..Default::default()
            },
            ..Default::default()
        },
        claims: vec![],
        jobs,
        services: vec![],
        faults: vec![],
        horizon: ms(110_000),
        tick: SimDur::from_millis(20),
    }
}

/// A bulk-data tenant and a latency-sensitive tenant contending for the
/// same group link of a 2-group dragonfly: per-traffic-class trunk
/// scheduling must keep the victim's slowdown bounded while the noisy
/// neighbour's burst drains (and may be clipped by congestion
/// management).
pub fn noisy_neighbor(seed: u64) -> Scenario {
    // 4 ranks, one per node: the ring has two bulk flows per trunk
    // direction, so the group link actually backlogs (one sender alone
    // is already serialized by its own uplink).
    let mut noisy = job("noisy", "bulk", 4, 500, VniMode::Dedicated);
    noisy.delete_at = Some(ms(30_000));
    noisy.traffic = Some(TrafficPlan {
        rounds: 12,
        interval: SimDur::from_millis(1_000),
        size: 1 << 20,
        tc: TrafficClass::BulkData,
        burst: 8,
        pattern: TrafficPattern::Ring,
    });
    let mut victim = job("victim", "latency", 2, 1_000, VniMode::Dedicated);
    victim.delete_at = Some(ms(30_000));
    victim.traffic = Some(TrafficPlan {
        rounds: 24,
        interval: SimDur::from_millis(500),
        size: 64,
        tc: TrafficClass::LowLatency,
        burst: 1,
        pattern: TrafficPattern::Ring,
    });
    Scenario {
        name: "noisy-neighbor".into(),
        description: "bulk tenant vs latency tenant across a group link; per-class trunk \
                      scheduling must bound the victim's slowdown"
            .into(),
        // 6 nodes, 3 per group: the bulk tenant occupies 4, the victim
        // gets the two idle ones (one per group), so the tenants share
        // *only* the group link — the resource traffic classes arbitrate.
        config: ClusterConfig {
            seed,
            nodes: 6,
            topology: Some(two_group_topology()),
            ..Default::default()
        },
        claims: vec![],
        jobs: vec![noisy, victim],
        services: vec![],
        faults: vec![],
        horizon: ms(45_000),
        tick: SimDur::from_millis(20),
    }
}

/// N→1 congestion: three ranks incast large bulk messages into rank 0
/// across the group link while a light low-latency pair shares the same
/// trunk; congestion management must clip the incast (per-class drop
/// accounting) without touching the low-latency class.
pub fn incast(seed: u64) -> Scenario {
    let mut sink = job("sink", "fanin", 4, 500, VniMode::Dedicated);
    sink.delete_at = Some(ms(30_000));
    sink.traffic = Some(TrafficPlan {
        rounds: 10,
        interval: SimDur::from_millis(1_000),
        size: 1 << 21,
        tc: TrafficClass::BulkData,
        burst: 4,
        pattern: TrafficPattern::Incast,
    });
    let mut probe = job("probe", "probe", 2, 1_000, VniMode::Dedicated);
    probe.delete_at = Some(ms(30_000));
    probe.traffic = Some(TrafficPlan {
        rounds: 20,
        interval: SimDur::from_millis(500),
        size: 64,
        tc: TrafficClass::LowLatency,
        burst: 1,
        pattern: TrafficPattern::Ring,
    });
    Scenario {
        name: "incast".into(),
        description: "3→1 bulk incast across the group link; finite per-class trunk queues \
                      drop the overflow, counted per class, sparing low-latency probes"
            .into(),
        config: ClusterConfig {
            seed,
            nodes: 4,
            topology: Some(two_group_topology()),
            ..Default::default()
        },
        claims: vec![],
        jobs: vec![sink, probe],
        services: vec![],
        faults: vec![],
        horizon: ms(45_000),
        tick: SimDur::from_millis(20),
    }
}

/// A tenant's 8-rank ring allreduce — every hop crossing the 2-group
/// trunk (round-robin placement alternates groups) — while a bulk-class
/// tenant bursts megabyte messages over the same group link: WRR trunk
/// scheduling must keep the collective's slowdown bounded and
/// congestion management must clip only the bulk class, with zero
/// cross-tenant leakage under the standing adversarial probes.
pub fn collective_noisy_neighbor(seed: u64) -> Scenario {
    // 10 nodes round-robined over 2 groups: the collective's 8 ranks
    // pin to nodes 0-7 (alternating groups, so every ring hop crosses
    // the trunk), the bulk pair to the two leftover nodes 8/9 (one per
    // group, so its burst rides the same trunk).
    let mut coll = job("hpc", "allreduce", 8, 500, VniMode::Dedicated);
    coll.delete_at = Some(ms(30_000));
    coll.pin_nodes = Some((0..8).collect());
    coll.traffic = Some(TrafficPlan {
        rounds: 10,
        interval: SimDur::from_millis(1_000),
        size: 1 << 16,
        tc: TrafficClass::LowLatency,
        burst: 1,
        pattern: TrafficPattern::Allreduce,
    });
    // A 500 ms cadence from a 1 s arrival makes every other bulk round
    // land exactly on a collective round instant, so the two tenants
    // genuinely contend for the trunk there: WRR stretches the bulk
    // class 5x ((8+2)/2) while the collective is active, which backlogs
    // the staggered burst past the 100 µs trunk queue bound — the
    // clipping is visible as bulk-only congestion drops.
    let mut noisy = job("noisy", "bulk", 2, 1_000, VniMode::Dedicated);
    noisy.delete_at = Some(ms(30_000));
    noisy.pin_nodes = Some(vec![8, 9]);
    noisy.traffic = Some(TrafficPlan {
        rounds: 24,
        interval: SimDur::from_millis(500),
        size: 1 << 20,
        tc: TrafficClass::BulkData,
        burst: 8,
        pattern: TrafficPattern::Ring,
    });
    Scenario {
        name: "collective-noisy-neighbor".into(),
        description: "8-rank cross-group allreduce under a bulk burst on the group trunk; \
                      WRR must bound the collective's slowdown, congestion management may \
                      clip only the bulk class"
            .into(),
        config: ClusterConfig {
            seed,
            nodes: 10,
            topology: Some(two_group_topology()),
            ..Default::default()
        },
        claims: vec![],
        jobs: vec![coll, noisy],
        services: vec![],
        faults: vec![],
        horizon: ms(45_000),
        tick: SimDur::from_millis(20),
    }
}

/// Placement skew vs. packed placement for the same 4-rank allreduce:
/// one tenant's ranks alternate dragonfly groups (every ring hop
/// crosses the trunk, two uplinks converge per trunk direction), the
/// other's pack into one group (pure intra-switch). The per-tenant
/// report must show the hop inflation (2 hops/message vs 1) and the
/// congestion drops only the skewed tenant takes.
pub fn cross_group_allreduce(seed: u64) -> Scenario {
    // 12 nodes round-robined over 2 groups: even nodes in group 0, odd
    // in group 1. The skewed tenant pins nodes 0-3 (ranks alternate
    // groups); the packed tenant pins four even nodes (all group 0).
    let mut skewed = job("skew", "wide", 4, 500, VniMode::Dedicated);
    skewed.delete_at = Some(ms(30_000));
    skewed.pin_nodes = Some(vec![0, 1, 2, 3]);
    skewed.traffic = Some(TrafficPlan {
        rounds: 8,
        interval: SimDur::from_millis(1_000),
        size: 4 << 20,
        tc: TrafficClass::Dedicated,
        burst: 1,
        pattern: TrafficPattern::Allreduce,
    });
    let mut packed = job("pack", "tight", 4, 1_000, VniMode::Dedicated);
    packed.delete_at = Some(ms(30_000));
    packed.pin_nodes = Some(vec![4, 6, 8, 10]);
    packed.traffic = Some(TrafficPlan {
        rounds: 8,
        interval: SimDur::from_millis(1_000),
        size: 4 << 20,
        tc: TrafficClass::Dedicated,
        burst: 1,
        pattern: TrafficPattern::Allreduce,
    });
    Scenario {
        name: "cross-group-allreduce".into(),
        description: "the same 4-rank allreduce placed skewed across groups vs packed into \
                      one; per-tenant accounting must show the hop and congestion-drop \
                      deltas"
            .into(),
        config: ClusterConfig {
            seed,
            nodes: 12,
            topology: Some(two_group_topology()),
            ..Default::default()
        },
        claims: vec![],
        jobs: vec![skewed, packed],
        services: vec![],
        faults: vec![],
        horizon: ms(45_000),
        tick: SimDur::from_millis(20),
    }
}

/// A 4-rank ring allreduce whose every hop crosses the (0,1) trunk of a
/// 3-group dragonfly, with that trunk cut mid-run: UGAL routing must
/// finish the collective by detouring through group 2 (the per-tenant
/// report shows the reroute count and the 2→3 hop inflation), and the
/// report must stay byte-identical at any thread count.
pub fn trunk_cut_allreduce(seed: u64) -> Scenario {
    // 6 nodes round-robined over 3 groups (node i → switch i % 3): the
    // collective pins nodes 0/1/3/4, so ranks alternate switches 0 and
    // 1 and every ring hop rides the (0,1) trunk. The cut at 5 s lands
    // between allreduce rounds 4 and 5: the first half of the traffic
    // takes the 2-switch minimal route, the second half detours
    // 0→2→1.
    let mut coll = job("hpc", "ring", 4, 500, VniMode::Dedicated);
    coll.delete_at = Some(ms(30_000));
    coll.pin_nodes = Some(vec![0, 1, 3, 4]);
    coll.traffic = Some(TrafficPlan {
        rounds: 8,
        interval: SimDur::from_millis(1_000),
        size: 1 << 20,
        tc: TrafficClass::Dedicated,
        burst: 1,
        pattern: TrafficPattern::Allreduce,
    });
    Scenario {
        name: "trunk-cut-allreduce".into(),
        description: "4-rank cross-group allreduce loses its trunk mid-collective; UGAL \
                      reroutes through the third group and the tenant report shows the \
                      reroute count and hop inflation"
            .into(),
        config: ClusterConfig {
            seed,
            nodes: 6,
            topology: Some(three_group_topology()),
            routing: RoutingPolicy::Adaptive,
            ..Default::default()
        },
        claims: vec![],
        jobs: vec![coll],
        services: vec![],
        faults: vec![Fault::LinkDown { at: ms(5_000), a: 0, b: 1 }],
        horizon: ms(45_000),
        tick: SimDur::from_millis(20),
    }
}

/// The incast shape on a 3-group fabric while the contended trunk flaps
/// down/up twice: bulk traffic must keep flowing through the detour
/// during the down windows and the low-latency probe sharing the trunk
/// must see zero drops throughout.
pub fn flapping_link_incast(seed: u64) -> Scenario {
    // 11 nodes round-robined over 3 groups: the sink's rank 0 lands on
    // switch 0 (node 0) and its three senders on switch 1 (nodes
    // 1/4/7), so the whole incast crosses the (0,1) trunk; the probe
    // pair (nodes 9/10) rings across the same trunk. The (0,1) link
    // flaps down at 3 s and 9 s and recovers at 6 s and 12 s, squarely
    // inside both traffic windows.
    let mut sink = job("sink", "fanin", 4, 500, VniMode::Dedicated);
    sink.delete_at = Some(ms(30_000));
    sink.pin_nodes = Some(vec![0, 1, 4, 7]);
    sink.traffic = Some(TrafficPlan {
        rounds: 10,
        interval: SimDur::from_millis(1_000),
        size: 1 << 21,
        tc: TrafficClass::BulkData,
        burst: 4,
        pattern: TrafficPattern::Incast,
    });
    let mut probe = job("probe", "probe", 2, 1_000, VniMode::Dedicated);
    probe.delete_at = Some(ms(30_000));
    probe.pin_nodes = Some(vec![9, 10]);
    probe.traffic = Some(TrafficPlan {
        rounds: 20,
        interval: SimDur::from_millis(500),
        size: 64,
        tc: TrafficClass::LowLatency,
        burst: 1,
        pattern: TrafficPattern::Ring,
    });
    Scenario {
        name: "flapping-link-incast".into(),
        description: "3→1 bulk incast while its trunk flaps down/up twice; UGAL detours \
                      through the spare group during the outages and the low-latency probe \
                      must take zero drops"
            .into(),
        config: ClusterConfig {
            seed,
            nodes: 11,
            topology: Some(three_group_topology()),
            routing: RoutingPolicy::Adaptive,
            ..Default::default()
        },
        claims: vec![],
        jobs: vec![sink, probe],
        services: vec![],
        faults: vec![
            Fault::LinkDown { at: ms(3_000), a: 0, b: 1 },
            Fault::LinkUp { at: ms(6_000), a: 0, b: 1 },
            Fault::LinkDown { at: ms(9_000), a: 0, b: 1 },
            Fault::LinkUp { at: ms(12_000), a: 0, b: 1 },
        ],
        horizon: ms(45_000),
        tick: SimDur::from_millis(20),
    }
}

/// The incast shape with UGAL adaptive routing on a healthy 3-group
/// fabric — the A/B counterpart to running the same scenario with
/// [`RoutingPolicy::Minimal`]: diverting part of the burst through the
/// spare group must lower the worst bulk-class trunk queue depth while
/// the low-latency probe keeps zero drops (asserted by the scenario
/// suite, which runs both sides).
pub fn adaptive_incast(seed: u64) -> Scenario {
    // Same placement as the flapping scenario, no faults: three senders
    // on switch 1 incast into switch 0, so minimal routing funnels
    // every burst down the (0,1) trunk while UGAL can spill over the
    // 1→2→0 detour once the direct queue crosses the UGAL break-even.
    // The burst is sized *below* the 100 µs congestion-clip bound
    // (12 × 128 KiB ≈ 60 µs of minimal-route backlog), so the trunk
    // pressure is visible as accepted queue depth rather than being
    // flattened into drops — the quantity the A/B compares.
    let mut sink = job("sink", "fanin", 4, 500, VniMode::Dedicated);
    sink.delete_at = Some(ms(30_000));
    sink.pin_nodes = Some(vec![0, 1, 4, 7]);
    sink.traffic = Some(TrafficPlan {
        rounds: 10,
        interval: SimDur::from_millis(1_000),
        size: 1 << 17,
        tc: TrafficClass::BulkData,
        burst: 4,
        pattern: TrafficPattern::Incast,
    });
    let mut probe = job("probe", "probe", 2, 1_000, VniMode::Dedicated);
    probe.delete_at = Some(ms(30_000));
    probe.pin_nodes = Some(vec![9, 10]);
    probe.traffic = Some(TrafficPlan {
        rounds: 20,
        interval: SimDur::from_millis(500),
        size: 64,
        tc: TrafficClass::LowLatency,
        burst: 1,
        pattern: TrafficPattern::Ring,
    });
    Scenario {
        name: "adaptive-incast".into(),
        description: "3→1 bulk incast on a 3-group fabric under UGAL adaptive routing; \
                      spillover through the spare group lowers the worst trunk queue depth \
                      vs minimal routing, sparing the low-latency probe"
            .into(),
        config: ClusterConfig {
            seed,
            nodes: 11,
            topology: Some(three_group_topology()),
            routing: RoutingPolicy::Adaptive,
            ..Default::default()
        },
        claims: vec![],
        jobs: vec![sink, probe],
        services: vec![],
        faults: vec![],
        horizon: ms(45_000),
        tick: SimDur::from_millis(20),
    }
}

/// A latency-sensitive microservice mesh sharing the 2-group trunk with
/// an 8-rank HPC allreduce: the service's request/response round trips
/// ride the low-latency WRR class while the collective saturates the
/// dedicated class, and the service's p99 must stay under its SLO with
/// isolation asserted adversarially in both directions.
pub fn service_mesh_allreduce(seed: u64) -> Scenario {
    // 10 nodes round-robined over 2 groups: the collective's 8 ranks pin
    // to nodes 0-7 (every ring hop crosses the trunk), the mesh's 4
    // replicas to the leftover nodes 8/9 — one per group, so about half
    // its request round trips cross the same contended trunk.
    let mut coll = job("hpc", "allreduce", 8, 500, VniMode::Dedicated);
    coll.delete_at = Some(ms(30_000));
    coll.pin_nodes = Some((0..8).collect());
    coll.traffic = Some(TrafficPlan {
        rounds: 10,
        interval: SimDur::from_millis(1_000),
        size: 1 << 16,
        tc: TrafficClass::Dedicated,
        burst: 1,
        pattern: TrafficPattern::Allreduce,
    });
    let mesh = ServicePlan {
        tenant: "mesh".into(),
        name: "frontend".into(),
        replicas: 4,
        arrival: ms(500),
        vni: VniMode::Dedicated,
        tc: TrafficClass::LowLatency,
        request_interval: SimDur::from_millis(200),
        requests_per_fire: 4,
        request_bytes: 2048,
        response_bytes: 4096,
        slo_p99: SimDur::from_micros(500),
        update_at: None,
        delete_at: Some(ms(40_000)),
        burst: None,
        autoscale: None,
        pin_nodes: Some(vec![8, 9]),
    };
    Scenario {
        name: "service-mesh-allreduce".into(),
        description: "4-replica microservice mesh rides the low-latency class across the \
                      trunk an 8-rank allreduce saturates; the mesh p99 must hold its SLO \
                      and both tenants probe each other's VNI"
            .into(),
        config: ClusterConfig {
            seed,
            nodes: 10,
            topology: Some(two_group_topology()),
            ..Default::default()
        },
        claims: vec![],
        jobs: vec![coll],
        services: vec![mesh],
        faults: vec![],
        horizon: ms(45_000),
        tick: SimDur::from_millis(20),
    }
}

/// A serving tenant under a demand spike: the deterministic autoscaler
/// must grow the replica set to absorb the burst (surge-bounded rollout
/// of new pods through the full scheduler/kubelet/CNI/VNI chain), then
/// shrink back to baseline — all while the p99 SLO and the availability
/// floor hold.
pub fn autoscale_burst(seed: u64) -> Scenario {
    // A quiet second tenant holding its own VNI, so the service's
    // per-fire adversarial probe has a foreign VNI to attack.
    let mut bg = job("batch", "bg", 1, 1_000, VniMode::Dedicated);
    bg.delete_at = Some(ms(42_000));
    let api = ServicePlan {
        tenant: "web".into(),
        name: "api".into(),
        replicas: 2,
        arrival: ms(500),
        vni: VniMode::Dedicated,
        tc: TrafficClass::LowLatency,
        request_interval: SimDur::from_millis(250),
        requests_per_fire: 4,
        request_bytes: 1024,
        response_bytes: 2048,
        slo_p99: SimDur::from_micros(200),
        update_at: None,
        delete_at: Some(ms(40_000)),
        // 10s-20s: demand jumps 4 → 28 requests per fire, which drives
        // the autoscaler to its 6-replica ceiling until the spike ends.
        burst: Some(BurstPlan { from: ms(10_000), until: ms(20_000), extra: 24 }),
        autoscale: Some(AutoscalePlan { per_replica: 4, max_replicas: 6 }),
        pin_nodes: None,
    };
    Scenario {
        name: "autoscale-burst".into(),
        description: "open-loop demand spike drives the service from 2 to 6 replicas and \
                      back; admission rides the full scheduler/kubelet/CNI/VNI chain and \
                      the p99 SLO must hold throughout"
            .into(),
        config: ClusterConfig { seed, nodes: 4, ..Default::default() },
        claims: vec![],
        jobs: vec![bg],
        services: vec![api],
        faults: vec![],
        horizon: ms(50_000),
        tick: SimDur::from_millis(20),
    }
}

/// The serving-plane acceptance scenario: a rolling update of the
/// service **while** an 8-rank allreduce crosses the same trunk. The
/// roll must respect `maxUnavailable`/`maxSurge` in virtual time (the
/// ready count never dips below the floor), the service p99 must stay
/// under SLO while replicas are replaced, and the collective must
/// complete with zero drops.
pub fn rolling_update_allreduce(seed: u64) -> Scenario {
    let mut coll = job("hpc", "ring", 8, 500, VniMode::Dedicated);
    coll.delete_at = Some(ms(30_000));
    coll.pin_nodes = Some((0..8).collect());
    coll.traffic = Some(TrafficPlan {
        rounds: 10,
        interval: SimDur::from_millis(1_000),
        size: 1 << 16,
        tc: TrafficClass::Dedicated,
        burst: 1,
        pattern: TrafficPattern::Allreduce,
    });
    let web = ServicePlan {
        tenant: "web".into(),
        name: "frontend".into(),
        replicas: 4,
        arrival: ms(500),
        vni: VniMode::Dedicated,
        tc: TrafficClass::LowLatency,
        request_interval: SimDur::from_millis(200),
        requests_per_fire: 4,
        request_bytes: 2048,
        response_bytes: 4096,
        slo_p99: SimDur::from_micros(500),
        // The template revision bumps at 10s, squarely inside the
        // collective's traffic window: replicas roll one at a time
        // (surge 1 / maxUnavailable 1) while both tenants keep sending.
        update_at: Some(ms(10_000)),
        delete_at: Some(ms(40_000)),
        burst: None,
        autoscale: None,
        pin_nodes: Some(vec![8, 9]),
    };
    Scenario {
        name: "rolling-update-allreduce".into(),
        description: "surge-bounded rolling update of a 4-replica service while an 8-rank \
                      allreduce saturates the shared trunk; the ready floor, the service \
                      p99 SLO and the collective's zero-drop run must all hold"
            .into(),
        config: ClusterConfig {
            seed,
            nodes: 10,
            topology: Some(two_group_topology()),
            ..Default::default()
        },
        claims: vec![],
        jobs: vec![coll],
        services: vec![web],
        faults: vec![],
        horizon: ms(45_000),
        tick: SimDur::from_millis(20),
    }
}

/// The named scenario library executed by `scenario-run`.
pub fn library(seed: u64) -> Vec<Scenario> {
    vec![
        steady_state(seed),
        churn(seed),
        quarantine_pressure(seed),
        node_drain(seed),
        oversubscribed(seed),
        noisy_neighbor(seed),
        incast(seed),
        collective_noisy_neighbor(seed),
        cross_group_allreduce(seed),
        trunk_cut_allreduce(seed),
        flapping_link_incast(seed),
        adaptive_incast(seed),
        service_mesh_allreduce(seed),
        autoscale_burst(seed),
        rolling_update_allreduce(seed),
    ]
}

/// Look up one library scenario by name.
pub fn by_name(name: &str, seed: u64) -> Option<Scenario> {
    library(seed).into_iter().find(|s| s.name == name)
}

// ---- Control-plane stress scenarios -------------------------------------

/// A control-plane stress scenario: tenants churning directly through a
/// sharded VNI database under group commit, without the cluster around
/// it — the scale test for the million-tenant control plane
/// (`shs-harness scenario-run` reports these under `control_reports`).
#[derive(Debug, Clone)]
pub struct VniStressScenario {
    /// Scenario name (`vni-stress-10k`, `vni-stress-1m`).
    pub name: String,
    /// Human description.
    pub description: String,
    /// Crash-recovery seed.
    pub seed: u64,
    /// Distinct tenant identities cycled through the run.
    pub tenants: u64,
    /// Control-plane transactions to execute.
    pub ops: u64,
    /// Store shards (overridable by `scenario-run --shards`).
    pub shards: usize,
}

/// Deterministic end-state report of a [`VniStressScenario`]. Every
/// field is shard-count-invariant, so for one seed the report bytes are
/// identical at any `--shards` value — the facade's equivalence
/// contract, asserted by `tests/report_identity.rs`.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct VniStressReport {
    /// Scenario name.
    pub scenario: String,
    /// Human description.
    pub description: String,
    /// Crash-recovery seed.
    pub seed: u64,
    /// Tenant identities cycled.
    pub tenants: u64,
    /// Steps executed.
    pub ops: u64,
    /// Successful acquisitions.
    pub acquires: u64,
    /// Acquisitions satisfied by recycling an expired quarantine row.
    pub reuse_allocs: u64,
    /// Releases into quarantine.
    pub releases: u64,
    /// Acquire attempts refused on an exhausted range.
    pub exhaustions: u64,
    /// Audit-log entries persisted.
    pub audit_len: u64,
    /// Logical control-plane transactions.
    pub txns: u64,
    /// Allocated rows at the end of the run.
    pub allocated_at_end: u64,
    /// Quarantined rows at the end of the run.
    pub quarantined_at_end: u64,
    /// Simulated horizon in milliseconds.
    pub horizon_ms: u64,
    /// Index invariants held at the end of the run.
    pub consistent: bool,
    /// A crash + recovery reproduced rows, audit length, and passed the
    /// consistency check.
    pub recovered: bool,
    /// All checks passed.
    pub passed: bool,
}

/// Execute a control-plane stress scenario (see
/// [`crate::workloads::VniStressWorkload`] for the step semantics):
/// run the churn, audit the end state, then crash every shard and
/// verify recovery reproduces it.
pub fn run_vni_stress(scenario: &VniStressScenario) -> VniStressReport {
    use crate::workloads::VniStressWorkload;

    let mut w = VniStressWorkload::new(scenario.shards, scenario.tenants);
    for _ in 0..scenario.ops {
        w.step();
    }
    let (mut db, now, ops, _) = w.finish();
    let consistent = db.check_index_consistency().is_ok();
    let stats = db.stats(now);
    let c = db.counters();
    let rows = db.rows();
    let audit_len = db.audit_len() as u64;
    let txns = db.txn_count();

    // Crash-recovery audit: after the final group flush, a crash at any
    // shard must lose nothing.
    let config = crate::vni_db::VniDbConfig {
        range: VniStressWorkload::RANGE,
        quarantine: db.quarantine(),
    };
    let mut rng = shs_des::DetRng::new(scenario.seed);
    let recovered_db = crate::sharded_db::ShardedVniDb::recover(db.crash(&mut rng), config);
    let recovered = recovered_db.rows() == rows
        && recovered_db.audit_len() as u64 == audit_len
        && recovered_db.check_index_consistency().is_ok();

    VniStressReport {
        scenario: scenario.name.clone(),
        description: scenario.description.clone(),
        seed: scenario.seed,
        tenants: scenario.tenants,
        ops,
        acquires: c.acquires,
        reuse_allocs: c.reuse_allocs,
        releases: c.releases,
        exhaustions: c.exhaustions,
        audit_len,
        txns,
        allocated_at_end: stats.allocated as u64,
        quarantined_at_end: stats.quarantined as u64,
        horizon_ms: now.as_nanos() / 1_000_000,
        consistent,
        recovered,
        passed: consistent && recovered,
    }
}

/// The control-plane stress library executed by `scenario-run` (smoke
/// scale; the million-tenant configuration is reachable by name).
pub fn stress_library(seed: u64) -> Vec<VniStressScenario> {
    vec![vni_stress(seed, "vni-stress-10k", 10_000, 100_000)]
}

/// Look up a stress scenario by name, including the full-scale
/// `vni-stress-1m` (1M tenants, 10M transactions) which is too heavy
/// for the default suite.
pub fn stress_by_name(name: &str, seed: u64) -> Option<VniStressScenario> {
    if name == "vni-stress-1m" {
        return Some(vni_stress(seed, "vni-stress-1m", 1_000_000, 10_000_000));
    }
    stress_library(seed).into_iter().find(|s| s.name == name)
}

fn vni_stress(seed: u64, name: &str, tenants: u64, ops: u64) -> VniStressScenario {
    VniStressScenario {
        name: name.into(),
        description: format!(
            "{tenants} tenants churning {ops} control-plane transactions through the \
             sharded VNI database under WAL group commit, with a crash-recovery audit"
        ),
        seed,
        tenants,
        ops,
        shards: 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scenario {
        let mut a = job("t0", "a", 2, 500, VniMode::Dedicated);
        a.delete_at = Some(ms(6_000));
        a.traffic = Some(TrafficPlan {
            rounds: 3,
            interval: SimDur::from_millis(500),
            size: 1024,
            tc: TrafficClass::Dedicated,
            burst: 1,
            pattern: TrafficPattern::Ring,
        });
        let mut b = job("t1", "b", 2, 800, VniMode::Dedicated);
        b.delete_at = Some(ms(6_000));
        b.traffic = Some(TrafficPlan {
            rounds: 3,
            interval: SimDur::from_millis(500),
            size: 1024,
            tc: TrafficClass::Dedicated,
            burst: 1,
            pattern: TrafficPattern::Ring,
        });
        Scenario {
            name: "tiny".into(),
            description: "two dedicated tenants with traffic".into(),
            config: ClusterConfig { seed: 11, ..Default::default() },
            claims: vec![],
            jobs: vec![a, b],
            services: vec![],
            faults: vec![],
            horizon: ms(12_000),
            tick: SimDur::from_millis(20),
        }
    }

    #[test]
    fn tiny_scenario_passes_all_isolation_assertions() {
        let r = run_scenario(&tiny());
        assert_eq!(r.jobs.started, 2, "both jobs admitted");
        assert!(r.traffic.delivered > 0, "rank traffic flowed");
        assert!(r.isolation.cross_tenant_attempts > 0, "probes mounted");
        assert_eq!(r.isolation.cross_vni_deliveries, 0);
        assert_eq!(r.isolation.quarantine_violations, 0);
        assert_eq!(r.isolation.leaked_services, 0);
        assert_eq!(r.isolation.stale_grants, 0);
        assert!(r.passed, "report: {r:?}");
    }

    #[test]
    fn tiny_scenario_is_deterministic() {
        let a = run_scenario(&tiny());
        let b = run_scenario(&tiny());
        assert_eq!(a, b);
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
    }

    #[test]
    fn library_has_fifteen_distinct_scenarios() {
        let lib = library(1);
        assert_eq!(lib.len(), 15);
        let names: std::collections::BTreeSet<_> =
            lib.iter().map(|s| s.name.clone()).collect();
        assert_eq!(names.len(), 15);
        assert!(by_name("churn", 1).is_some());
        assert!(by_name("noisy-neighbor", 1).is_some());
        assert!(by_name("incast", 1).is_some());
        assert!(by_name("collective-noisy-neighbor", 1).is_some());
        assert!(by_name("cross-group-allreduce", 1).is_some());
        assert!(by_name("trunk-cut-allreduce", 1).is_some());
        assert!(by_name("flapping-link-incast", 1).is_some());
        assert!(by_name("adaptive-incast", 1).is_some());
        assert!(by_name("service-mesh-allreduce", 1).is_some());
        assert!(by_name("autoscale-burst", 1).is_some());
        assert!(by_name("rolling-update-allreduce", 1).is_some());
        assert!(by_name("nope", 1).is_none());
    }

    /// A 2-replica service carrying request/response traffic on a
    /// single switch: round trips complete, latency samples accrue, and
    /// the report carries the serving-plane section.
    fn tiny_service() -> Scenario {
        let svc = ServicePlan {
            tenant: "svc".into(),
            name: "echo".into(),
            replicas: 2,
            arrival: ms(500),
            vni: VniMode::Dedicated,
            tc: TrafficClass::LowLatency,
            request_interval: SimDur::from_millis(250),
            requests_per_fire: 2,
            request_bytes: 512,
            response_bytes: 1024,
            slo_p99: SimDur::from_micros(200),
            update_at: None,
            delete_at: Some(ms(8_000)),
            burst: None,
            autoscale: None,
            pin_nodes: None,
        };
        Scenario {
            name: "tiny-service".into(),
            description: "one 2-replica request/response service".into(),
            config: ClusterConfig { seed: 7, ..Default::default() },
            claims: vec![],
            jobs: vec![],
            services: vec![svc],
            faults: vec![],
            horizon: ms(12_000),
            tick: SimDur::from_millis(20),
        }
    }

    #[test]
    fn tiny_service_scenario_serves_and_unwinds_clean() {
        let r = run_scenario(&tiny_service());
        assert_eq!(r.services.len(), 1);
        let s = &r.services[0];
        assert_eq!(s.service, "svc/echo");
        assert!(s.completed > 0, "round trips completed: {s:?}");
        assert_eq!(s.auth_failures, 0);
        assert!(s.slo_met, "p99 {} vs slo {}", s.p99_latency_ns, s.slo_p99_ns);
        assert!(s.floor_held, "min_ready {} floor {}", s.min_ready, s.ready_floor);
        assert_eq!(r.vni.allocated_at_end, 0, "service VNI released at teardown");
        assert!(r.passed, "report: {r:?}");
        // The serving-plane section serializes; job-only reports omit it
        // (pinned by tests/report_identity.rs against committed fixtures).
        let json = serde_json::to_string(&r).unwrap();
        assert!(json.contains("\"services\""));
    }

    #[test]
    fn tiny_service_scenario_is_deterministic() {
        let a = run_scenario(&tiny_service());
        let b = run_scenario(&tiny_service());
        assert_eq!(a, b);
    }

    #[test]
    fn request_response_pattern_completes_round_trips() {
        let mut s = tiny();
        for j in &mut s.jobs {
            if let Some(tp) = &mut j.traffic {
                tp.pattern = TrafficPattern::RequestResponse;
            }
        }
        let r = run_scenario(&s);
        // Each ring slot issues a request and a response leg.
        assert!(r.traffic.delivered > 0);
        assert_eq!(r.traffic.delivered % 2, 0, "paired legs: {r:?}");
        assert!(r.passed, "report: {r:?}");
    }
}
