//! The VNI Endpoint (§III-C2): webhook backend of the VNI Controller.
//!
//! Implements Metacontroller's apply-semantics hooks for the two parent
//! kinds the paper watches:
//!
//! * **Jobs** annotated `vni: true` (Per-Resource model) get an owning
//!   VNI CRD child; jobs annotated `vni: <claim-name>` redeeming a claim
//!   get a *virtual* (non-owning) VNI child and are registered as users
//!   of the claim's VNI.
//! * **VniClaims** own a VNI for their lifetime; deletion stalls until
//!   the user list is empty.
//!
//! All state transitions go through single [`VniDb`] transactions, so
//! concurrent controller events cannot double-allocate.

use std::cell::RefCell;
use std::rc::Rc;

use serde::{Deserialize, Serialize};
use shs_des::SimTime;
use shs_fabric::Vni;
use shs_k8s::{
    kinds, ApiObject, DecoratorHooks, FinalizeResponse, SyncResponse, VNI_ANNOTATION,
};

use crate::sharded_db::ShardedVniDb;
use crate::vni_db::{VniDb, VniDbError, VniOwner};

/// Spec of a VNI CRD instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VniCrdSpec {
    /// The allocated VNI value.
    pub vni: u16,
    /// Whether this is a non-owning ("virtual") instance attached to a
    /// job that redeems a claim (§III-C2, dotted object in Fig. 4).
    #[serde(default)]
    pub r#virtual: bool,
    /// The claim name, for claim-attached instances.
    #[serde(default)]
    pub claim: Option<String>,
}

/// Endpoint counters (observability; also used by EXPERIMENTS.md).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EndpointCounters {
    /// Successful VNI acquisitions.
    pub acquisitions: u64,
    /// VNI releases.
    pub releases: u64,
    /// Claim redemptions (user additions).
    pub redemptions: u64,
    /// Sync calls that found no claim with the requested name.
    pub missing_claims: u64,
    /// Acquisitions refused because the range was exhausted.
    pub exhaustions: u64,
    /// Claim deletions deferred because users remained.
    pub stalled_claim_deletes: u64,
}

/// The endpoint: VNI database + webhook logic. The database is always
/// the sharded facade — a plain [`VniDb`] enters as a 1-shard instance,
/// so webhook logic and reports are identical at any shard count.
#[derive(Debug)]
pub struct VniEndpoint {
    /// The ACID-backed (possibly sharded) VNI database.
    pub db: ShardedVniDb,
    /// Counters.
    pub counters: EndpointCounters,
}

impl VniEndpoint {
    /// Build an endpoint over a single-store database (wrapped as one
    /// shard).
    pub fn new(db: VniDb) -> Self {
        VniEndpoint { db: ShardedVniDb::from_single(db), counters: EndpointCounters::default() }
    }

    /// Build an endpoint over an explicitly sharded database.
    pub fn sharded(db: ShardedVniDb) -> Self {
        VniEndpoint { db, counters: EndpointCounters::default() }
    }

    /// Child object name for a job's VNI CRD instance.
    pub fn child_name_for_job(job: &str) -> String {
        format!("vni-{job}")
    }

    /// Child object name for a claim's VNI CRD instance.
    pub fn child_name_for_claim(claim: &str) -> String {
        format!("vni-claim-{claim}")
    }

    fn job_key(parent: &ApiObject) -> String {
        format!("{}/{}", parent.meta.namespace, parent.meta.name)
    }

    /// `/sync` for an annotated job.
    fn sync_job(&mut self, parent: &ApiObject, now: SimTime) -> SyncResponse {
        let ann = parent.annotation(VNI_ANNOTATION).unwrap_or_default().to_string();
        let ns = parent.meta.namespace.clone();
        let job_key = Self::job_key(parent);
        if ann == "true" {
            // Per-Resource model: the job owns a fresh VNI. Re-syncs of
            // an already-decorated job are idempotent and not counted.
            let owner = VniOwner::Job { key: job_key };
            let fresh = self.db.find_by_owner(&owner).is_none();
            match self.db.acquire(owner, now) {
                Ok(vni) => {
                    if fresh {
                        self.counters.acquisitions += 1;
                    }
                    SyncResponse {
                        desired_children: vec![make_vni_child(
                            &ns,
                            &Self::child_name_for_job(&parent.meta.name),
                            VniCrdSpec { vni: vni.raw(), r#virtual: false, claim: None },
                        )],
                    }
                }
                Err(VniDbError::Exhausted) => {
                    self.counters.exhaustions += 1;
                    SyncResponse::default()
                }
                Err(_) => SyncResponse::default(),
            }
        } else {
            // Claim redemption: attach as user, decorate with a virtual
            // (non-owning) VNI instance.
            let claim_key = format!("{ns}/{ann}");
            match self.db.find_by_claim(&claim_key) {
                Some(row) => {
                    let vni = Vni(row.vni);
                    // Re-syncs of an already-attached user are idempotent
                    // and not counted (mirrors the dedicated path).
                    let fresh = !row.users.iter().any(|u| u == &job_key);
                    if self.db.add_user(vni, &job_key, now).is_ok() && fresh {
                        self.counters.redemptions += 1;
                    }
                    SyncResponse {
                        desired_children: vec![make_vni_child(
                            &ns,
                            &Self::child_name_for_job(&parent.meta.name),
                            VniCrdSpec {
                                vni: row.vni,
                                r#virtual: true,
                                claim: Some(ann.clone()),
                            },
                        )],
                    }
                }
                None => {
                    // "Jobs will fail to launch if no VNI claim with the
                    // annotated name has been found" — no child, so the
                    // CNI plugin refuses the pod.
                    self.counters.missing_claims += 1;
                    SyncResponse::default()
                }
            }
        }
    }

    /// `/finalize` for a job being deleted.
    fn finalize_job(&mut self, parent: &ApiObject, now: SimTime) -> FinalizeResponse {
        let ann = parent.annotation(VNI_ANNOTATION).unwrap_or_default().to_string();
        let job_key = Self::job_key(parent);
        if ann == "true" {
            if let Some(row) = self.db.find_by_owner(&VniOwner::Job { key: job_key }) {
                if self.db.release(Vni(row.vni), now).is_ok() {
                    self.counters.releases += 1;
                }
            }
        } else {
            let claim_key = format!("{}/{ann}", parent.meta.namespace);
            if let Some(row) = self.db.find_by_claim(&claim_key) {
                let _ = self.db.remove_user(Vni(row.vni), &job_key, now);
            }
        }
        FinalizeResponse { desired_children: vec![], finalized: true }
    }

    /// `/sync` for a VNI Claim.
    fn sync_claim(&mut self, parent: &ApiObject, now: SimTime) -> SyncResponse {
        let claim_key = Self::job_key(parent); // same ns/name shape
        let owner = VniOwner::Claim { key: claim_key };
        let fresh = self.db.find_by_owner(&owner).is_none();
        match self.db.acquire(owner, now) {
            Ok(vni) => {
                if fresh {
                    self.counters.acquisitions += 1;
                }
                SyncResponse {
                    desired_children: vec![make_vni_child(
                        &parent.meta.namespace,
                        &Self::child_name_for_claim(&parent.meta.name),
                        VniCrdSpec {
                            vni: vni.raw(),
                            r#virtual: false,
                            claim: Some(parent.meta.name.clone()),
                        },
                    )],
                }
            }
            Err(_) => {
                self.counters.exhaustions += 1;
                SyncResponse::default()
            }
        }
    }

    /// `/finalize` for a VNI Claim being deleted: stalls while jobs are
    /// still attached (keeps the child so redeeming pods keep working).
    fn finalize_claim(&mut self, parent: &ApiObject, now: SimTime) -> FinalizeResponse {
        let claim_key = Self::job_key(parent);
        match self.db.release_claim(&claim_key, now) {
            Ok(()) => {
                self.counters.releases += 1;
                FinalizeResponse { desired_children: vec![], finalized: true }
            }
            Err(VniDbError::ClaimInUse) => {
                self.counters.stalled_claim_deletes += 1;
                // Keep the existing child; do not finalize yet.
                let child = self.db.find_by_claim(&claim_key).map(|row| {
                    make_vni_child(
                        &parent.meta.namespace,
                        &Self::child_name_for_claim(&parent.meta.name),
                        VniCrdSpec {
                            vni: row.vni,
                            r#virtual: false,
                            claim: Some(parent.meta.name.clone()),
                        },
                    )
                });
                FinalizeResponse {
                    desired_children: child.into_iter().collect(),
                    finalized: false,
                }
            }
            Err(_) => FinalizeResponse { desired_children: vec![], finalized: true },
        }
    }
}

fn make_vni_child(ns: &str, name: &str, spec: VniCrdSpec) -> ApiObject {
    ApiObject::new(kinds::VNI, ns, name, serde_json::to_value(spec).expect("serializes"))
}

/// Which parent kind a controller instance serves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EndpointRole {
    /// Decorating Jobs.
    Jobs,
    /// Decorating VniClaims.
    Claims,
}

/// Shared handle so the two decorator controllers (jobs, claims) talk to
/// the same endpoint + database, like the paper's single VNI Endpoint
/// pod.
#[derive(Debug, Clone)]
pub struct EndpointHandle {
    /// Shared endpoint.
    pub endpoint: Rc<RefCell<VniEndpoint>>,
    /// Which hook set this handle serves.
    pub role: EndpointRole,
}

impl DecoratorHooks for EndpointHandle {
    fn sync(&mut self, parent: &ApiObject, _children: &[ApiObject], now: SimTime) -> SyncResponse {
        let mut ep = self.endpoint.borrow_mut();
        match self.role {
            EndpointRole::Jobs => ep.sync_job(parent, now),
            EndpointRole::Claims => ep.sync_claim(parent, now),
        }
    }

    fn finalize(
        &mut self,
        parent: &ApiObject,
        _children: &[ApiObject],
        now: SimTime,
    ) -> FinalizeResponse {
        let mut ep = self.endpoint.borrow_mut();
        match self.role {
            EndpointRole::Jobs => ep.finalize_job(parent, now),
            EndpointRole::Claims => ep.finalize_claim(parent, now),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vni_db::VniDbConfig;
    use serde_json::json;

    fn endpoint() -> VniEndpoint {
        VniEndpoint::new(VniDb::new(VniDbConfig::default()))
    }

    fn job(ns: &str, name: &str, ann: &str) -> ApiObject {
        let mut j = ApiObject::new(kinds::JOB, ns, name, json!({}));
        j.meta.annotations.insert(VNI_ANNOTATION.into(), ann.into());
        j
    }

    fn claim(ns: &str, name: &str) -> ApiObject {
        ApiObject::new(kinds::VNI_CLAIM, ns, name, json!({"name": name}))
    }

    #[test]
    fn per_resource_job_gets_owning_child() {
        let mut ep = endpoint();
        let resp = ep.sync_job(&job("t", "j1", "true"), SimTime::ZERO);
        assert_eq!(resp.desired_children.len(), 1);
        let child = &resp.desired_children[0];
        assert_eq!(child.meta.name, "vni-j1");
        let spec: VniCrdSpec = serde_json::from_value(child.spec.clone()).unwrap();
        assert!(!spec.r#virtual);
        assert_eq!(ep.counters.acquisitions, 1);
        // Re-sync is idempotent (same VNI).
        let resp2 = ep.sync_job(&job("t", "j1", "true"), SimTime::ZERO);
        let spec2: VniCrdSpec =
            serde_json::from_value(resp2.desired_children[0].spec.clone()).unwrap();
        assert_eq!(spec.vni, spec2.vni);
        assert_eq!(ep.db.allocated_count(), 1);
    }

    #[test]
    fn distinct_jobs_get_distinct_vnis() {
        let mut ep = endpoint();
        let r1 = ep.sync_job(&job("t", "j1", "true"), SimTime::ZERO);
        let r2 = ep.sync_job(&job("t", "j2", "true"), SimTime::ZERO);
        let s1: VniCrdSpec = serde_json::from_value(r1.desired_children[0].spec.clone()).unwrap();
        let s2: VniCrdSpec = serde_json::from_value(r2.desired_children[0].spec.clone()).unwrap();
        assert_ne!(s1.vni, s2.vni, "per-tenant isolation");
    }

    #[test]
    fn job_finalize_releases_the_vni() {
        let mut ep = endpoint();
        ep.sync_job(&job("t", "j1", "true"), SimTime::ZERO);
        let resp = ep.finalize_job(&job("t", "j1", "true"), SimTime::ZERO);
        assert!(resp.finalized);
        assert_eq!(ep.db.allocated_count(), 0);
        assert_eq!(ep.counters.releases, 1);
        // Double finalize is harmless.
        assert!(ep.finalize_job(&job("t", "j1", "true"), SimTime::ZERO).finalized);
    }

    #[test]
    fn claim_sync_then_job_redemption() {
        let mut ep = endpoint();
        let cr = ep.sync_claim(&claim("t", "shared"), SimTime::ZERO);
        let cs: VniCrdSpec = serde_json::from_value(cr.desired_children[0].spec.clone()).unwrap();
        // Two jobs redeem the claim by name.
        let r1 = ep.sync_job(&job("t", "j1", "shared"), SimTime::ZERO);
        let r2 = ep.sync_job(&job("t", "j2", "shared"), SimTime::ZERO);
        let s1: VniCrdSpec = serde_json::from_value(r1.desired_children[0].spec.clone()).unwrap();
        let s2: VniCrdSpec = serde_json::from_value(r2.desired_children[0].spec.clone()).unwrap();
        assert_eq!(s1.vni, cs.vni, "redeemers share the claim's VNI");
        assert_eq!(s2.vni, cs.vni);
        assert!(s1.r#virtual && s2.r#virtual, "virtual non-owning instances");
        assert_eq!(ep.counters.redemptions, 2);
        assert_eq!(ep.db.allocated_count(), 1, "one VNI for the whole claim");
    }

    #[test]
    fn missing_claim_yields_no_child() {
        let mut ep = endpoint();
        let r = ep.sync_job(&job("t", "j1", "nonexistent"), SimTime::ZERO);
        assert!(r.desired_children.is_empty());
        assert_eq!(ep.counters.missing_claims, 1);
    }

    #[test]
    fn claims_are_namespaced() {
        let mut ep = endpoint();
        ep.sync_claim(&claim("tenant-a", "shared"), SimTime::ZERO);
        // A job in a different namespace cannot redeem it.
        let r = ep.sync_job(&job("tenant-b", "j1", "shared"), SimTime::ZERO);
        assert!(r.desired_children.is_empty());
    }

    #[test]
    fn claim_deletion_stalls_until_users_leave() {
        let mut ep = endpoint();
        ep.sync_claim(&claim("t", "shared"), SimTime::ZERO);
        ep.sync_job(&job("t", "j1", "shared"), SimTime::ZERO);
        let f1 = ep.finalize_claim(&claim("t", "shared"), SimTime::ZERO);
        assert!(!f1.finalized, "user still attached");
        assert_eq!(f1.desired_children.len(), 1, "child kept while stalled");
        assert_eq!(ep.counters.stalled_claim_deletes, 1);
        // Job goes away, then the claim may finalize.
        ep.finalize_job(&job("t", "j1", "shared"), SimTime::ZERO);
        let f2 = ep.finalize_claim(&claim("t", "shared"), SimTime::ZERO);
        assert!(f2.finalized);
        assert_eq!(ep.db.allocated_count(), 0);
    }

    #[test]
    fn exhaustion_yields_no_child() {
        let mut ep = VniEndpoint::new(VniDb::new(VniDbConfig {
            range: 2000..2001,
            quarantine: shs_des::SimDur::from_secs(30),
        }));
        ep.sync_job(&job("t", "j1", "true"), SimTime::ZERO);
        let r = ep.sync_job(&job("t", "j2", "true"), SimTime::ZERO);
        assert!(r.desired_children.is_empty());
        assert_eq!(ep.counters.exhaustions, 1);
    }

    #[test]
    fn handle_routes_by_role() {
        let ep = Rc::new(RefCell::new(endpoint()));
        let mut jobs = EndpointHandle { endpoint: Rc::clone(&ep), role: EndpointRole::Jobs };
        let mut claims = EndpointHandle { endpoint: Rc::clone(&ep), role: EndpointRole::Claims };
        let c = claims.sync(&claim("t", "x"), &[], SimTime::ZERO);
        assert_eq!(c.desired_children[0].meta.name, "vni-claim-x");
        let j = jobs.sync(&job("t", "j", "x"), &[], SimTime::ZERO);
        assert_eq!(j.desired_children[0].meta.name, "vni-j");
        assert_eq!(ep.borrow().db.allocated_count(), 1);
    }
}
