//! Cluster-scale parallel fabric scenarios (§IV-D scale-out).
//!
//! The k8s scenario engine ([`crate::scenario`]) exercises the full
//! control plane per message and tops out around a hundred nodes per
//! affordable run. This module is the other end of the trade: named
//! **fabric sweeps** over 256–1024-node dragonfly topologies running
//! under the sharded engine (`shs_fabric::shardsim`, one shard per
//! dragonfly group on `shs_des::ParallelSim`), reported in the same
//! style as [`crate::ScenarioReport`].
//!
//! Every field of a [`FabricSweepReport`] is derived from
//! [`SweepStats`], which is bit-identical at any thread count — so a
//! serialized report is byte-identical whether the sweep ran on 1, 2
//! or 8 workers. The thread count deliberately appears **nowhere** in
//! the report; `tests/scenarios.rs` pins that property.

use serde::Serialize;
use shs_fabric::{
    run_sweep, CostModel, FaultKind, RoutingPolicy, SweepConfig, SweepFault, SweepStats, SwitchId,
    TopologySpec, TrafficClass,
};

/// A named cluster-scale fabric sweep: the parallel-engine counterpart
/// of [`crate::Scenario`].
#[derive(Debug, Clone)]
pub struct FabricScenario {
    /// Scenario name (stable; used by `scenario-run` and `bench-run`).
    pub name: &'static str,
    /// One-line description.
    pub description: &'static str,
    /// The sweep to run.
    pub config: SweepConfig,
}

/// Delivered/dropped counts for one traffic class.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct FabricClassReport {
    /// Traffic class name.
    pub class: String,
    /// Messages of this class delivered.
    pub delivered: u64,
    /// Messages of this class congestion-dropped.
    pub congestion_drops: u64,
}

/// One dragonfly group's (= one shard's) slice of the sweep.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct FabricGroupReport {
    /// Group id.
    pub group: usize,
    /// Messages launched by this group's nodes.
    pub sent: u64,
    /// Messages delivered to this group's nodes.
    pub delivered: u64,
    /// Congestion drops on trunks this group owns.
    pub congestion_drops: u64,
}

/// The serialized outcome of one [`FabricScenario`]. Thread-count
/// independent by construction — every field comes from [`SweepStats`].
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FabricSweepReport {
    /// Scenario name.
    pub scenario: String,
    /// Scenario description.
    pub description: String,
    /// Nodes in the topology.
    pub nodes: u64,
    /// Simulation shards (= dragonfly groups).
    pub shards: usize,
    /// Conservative lookahead of the run (ns): one trunk step.
    pub lookahead_ns: u64,
    /// Routing policy.
    pub policy: String,
    /// Messages launched.
    pub sent: u64,
    /// Messages delivered.
    pub delivered: u64,
    /// Messages congestion-dropped.
    pub congestion_drops: u64,
    /// Messages dropped `NoRoute` by a fault (absent when zero, so
    /// healthy sweeps serialize byte-identically to earlier releases).
    #[serde(skip_serializing_if = "Option::is_none")]
    pub route_drops: Option<u64>,
    /// Payload bytes delivered.
    pub payload_bytes: u64,
    /// Mean end-to-end latency of delivered messages (ns).
    pub mean_latency_ns: u64,
    /// Worst end-to-end latency (ns).
    pub max_latency_ns: u64,
    /// Switch hops over all delivered messages.
    pub switch_hops: u64,
    /// Per-class delivery counts, [`TrafficClass::ALL`] order.
    pub by_class: Vec<FabricClassReport>,
    /// Per-group counters, group order.
    pub per_group: Vec<FabricGroupReport>,
    /// DES events executed across all shards.
    pub events_executed: u64,
    /// Barrier windows the coordinator ran.
    pub windows: u64,
    /// Cross-group events exchanged at window boundaries.
    pub cross_group_injected: u64,
    /// Minimum injection slack observed (ns); `null` when no event
    /// crossed a group boundary. The conservative-sync invariant is
    /// `≥ 0`.
    pub min_inject_slack_ns: Option<i64>,
    /// Conservation + conservative-sync assertions all held.
    pub passed: bool,
}

/// Fold [`SweepStats`] into the serialized report.
fn report_from(sc: &FabricScenario, stats: &SweepStats) -> FabricSweepReport {
    let slack = stats.min_inject_slack.map(|s| s.clamp(i64::MIN as i128, i64::MAX as i128) as i64);
    FabricSweepReport {
        scenario: sc.name.to_string(),
        description: sc.description.to_string(),
        nodes: stats.nodes,
        shards: stats.shards,
        lookahead_ns: stats.lookahead_ns,
        policy: format!("{:?}", sc.config.policy),
        sent: stats.totals.sent,
        delivered: stats.totals.delivered,
        congestion_drops: stats.totals.congestion_drops,
        route_drops: (stats.totals.route_drops > 0).then_some(stats.totals.route_drops),
        payload_bytes: stats.totals.payload_bytes,
        mean_latency_ns: stats.mean_latency_ns(),
        max_latency_ns: stats.totals.latency_max_ns,
        switch_hops: stats.totals.switch_hops,
        by_class: TrafficClass::ALL
            .iter()
            .map(|tc| FabricClassReport {
                class: tc.to_string(),
                delivered: stats.totals.class_delivered[tc.index()],
                congestion_drops: stats.totals.class_drops[tc.index()],
            })
            .collect(),
        per_group: stats
            .per_group
            .iter()
            .enumerate()
            .map(|(g, c)| FabricGroupReport {
                group: g,
                sent: c.sent,
                delivered: c.delivered,
                congestion_drops: c.congestion_drops,
            })
            .collect(),
        events_executed: stats.events_executed,
        windows: stats.windows,
        cross_group_injected: stats.injected,
        min_inject_slack_ns: slack,
        passed: stats.conserved() && stats.totals.delivered > 0 && slack.is_none_or(|s| s >= 0),
    }
}

/// Run one fabric scenario on `threads` workers and report it. The
/// report is bit-identical for every `threads` value.
pub fn run_fabric_scenario(sc: &FabricScenario, threads: usize) -> FabricSweepReport {
    report_from(sc, &run_sweep(&sc.config, threads))
}

/// The headline scenario: a 4-group × 8-switch × 32-node (1024-node)
/// dragonfly, every other message crossing a group boundary.
fn dragonfly_1024(seed: u64) -> FabricScenario {
    FabricScenario {
        name: "dragonfly-1024",
        description: "1024-node 4-group dragonfly sweep, minimal routing, 50% cross-group",
        config: SweepConfig {
            spec: TopologySpec { groups: 4, switches_per_group: 8, edge_ports: 32 },
            policy: RoutingPolicy::Minimal,
            nodes_per_switch: 32,
            messages_per_node: 12,
            payload_bytes: 8192,
            interval_ns: 2_000,
            cross_group_every: 2,
            seed,
            model: CostModel::default(),
            faults: Vec::new(),
        },
    }
}

/// Valiant routing at 256 nodes: every message crosses groups, most via
/// a detour group, so every shard both forwards and delivers.
fn dragonfly_256_valiant(seed: u64) -> FabricScenario {
    FabricScenario {
        name: "dragonfly-256-valiant",
        description: "256-node 4-group dragonfly, Valiant routing, all messages cross-group",
        config: SweepConfig {
            spec: TopologySpec { groups: 4, switches_per_group: 4, edge_ports: 16 },
            policy: RoutingPolicy::Valiant,
            nodes_per_switch: 16,
            messages_per_node: 16,
            payload_bytes: 4096,
            interval_ns: 2_000,
            cross_group_every: 1,
            seed,
            model: CostModel::default(),
            faults: Vec::new(),
        },
    }
}

/// Contention pressure: large bursts into finite trunk queues so the
/// congestion-drop path shows up in the report.
fn trunk_contended_128(seed: u64) -> FabricScenario {
    FabricScenario {
        name: "trunk-contended-128",
        description: "128-node 2-group dragonfly under burst load; finite trunk queues drop",
        config: SweepConfig {
            spec: TopologySpec { groups: 2, switches_per_group: 4, edge_ports: 16 },
            policy: RoutingPolicy::Minimal,
            nodes_per_switch: 16,
            messages_per_node: 16,
            payload_bytes: 262_144,
            interval_ns: 500,
            cross_group_every: 1,
            seed,
            model: CostModel::default(),
            faults: Vec::new(),
        },
    }
}

/// Runtime resilience at 256 nodes: adaptive (UGAL) routing with a
/// trunk cut mid-sweep and restored near the end. Messages reroute
/// deterministically; in-flight ones on the dead trunk are route-
/// dropped — and the whole report stays bit-identical per thread count.
fn dragonfly_256_trunkcut(seed: u64) -> FabricScenario {
    // Gateway pair of the (0, 1) group trunk: local switch 1 in group 0,
    // local switch 0 in group 1 (4 switches per group).
    let gw01 = SwitchId(1);
    let gw10 = SwitchId(4);
    FabricScenario {
        name: "dragonfly-256-trunkcut",
        description: "256-node 4-group dragonfly, adaptive routing, trunk cut mid-sweep then restored",
        config: SweepConfig {
            spec: TopologySpec { groups: 4, switches_per_group: 4, edge_ports: 16 },
            policy: RoutingPolicy::Adaptive,
            nodes_per_switch: 16,
            messages_per_node: 16,
            payload_bytes: 4096,
            interval_ns: 2_000,
            cross_group_every: 1,
            seed,
            model: CostModel::default(),
            faults: vec![
                SweepFault { at_ns: 8_000, kind: FaultKind::LinkDown(gw01, gw10) },
                SweepFault { at_ns: 24_000, kind: FaultKind::LinkUp(gw01, gw10) },
            ],
        },
    }
}

/// The parallel scenario library, smallest first. `dragonfly-1024` is
/// the headline scale target of the sharded engine.
pub fn parallel_library(seed: u64) -> Vec<FabricScenario> {
    vec![
        trunk_contended_128(seed),
        dragonfly_256_valiant(seed),
        dragonfly_256_trunkcut(seed),
        dragonfly_1024(seed),
    ]
}

/// Look up one parallel scenario by name.
pub fn parallel_by_name(name: &str, seed: u64) -> Option<FabricScenario> {
    parallel_library(seed).into_iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn library_names_are_unique_and_resolvable() {
        let lib = parallel_library(42);
        for (i, a) in lib.iter().enumerate() {
            assert!(parallel_by_name(a.name, 42).is_some(), "{}", a.name);
            for b in &lib[i + 1..] {
                assert_ne!(a.name, b.name);
            }
        }
        assert!(parallel_by_name("no-such-sweep", 42).is_none());
    }

    #[test]
    fn headline_scenario_is_1024_nodes_on_4_shards() {
        let sc = parallel_by_name("dragonfly-1024", 42).expect("headline scenario");
        let report = run_fabric_scenario(&sc, 2);
        assert_eq!(report.nodes, 1024);
        assert_eq!(report.shards, 4);
        assert!(report.passed, "{report:?}");
        assert!(report.delivered > 0);
        assert_eq!(report.sent, report.delivered + report.congestion_drops);
        assert!(report.min_inject_slack_ns.expect("cross-group traffic happened") >= 0);
    }

    #[test]
    fn contended_scenario_exercises_the_drop_path() {
        let sc = parallel_by_name("trunk-contended-128", 42).expect("contended scenario");
        let report = run_fabric_scenario(&sc, 2);
        assert!(report.passed, "drops are conserved, not failures: {report:?}");
        assert!(report.congestion_drops > 0, "burst load must overflow a finite trunk queue");
        let by_class_drops: u64 = report.by_class.iter().map(|c| c.congestion_drops).sum();
        assert_eq!(by_class_drops, report.congestion_drops);
    }

    #[test]
    fn trunkcut_scenario_reroutes_and_stays_thread_invariant() {
        let sc = parallel_by_name("dragonfly-256-trunkcut", 42).expect("fault scenario");
        let base = run_fabric_scenario(&sc, 1);
        assert!(base.passed, "{base:?}");
        assert!(base.delivered > 0, "adaptive fallback keeps routing around the cut");
        assert_eq!(
            base.sent,
            base.delivered + base.congestion_drops + base.route_drops.unwrap_or(0),
        );
        let json = serde_json::to_string_pretty(&base).unwrap();
        for threads in [2usize, 4] {
            let run = serde_json::to_string_pretty(&run_fabric_scenario(&sc, threads)).unwrap();
            assert_eq!(run, json, "threads={threads}");
        }
    }

    #[test]
    fn healthy_sweep_reports_omit_route_drops() {
        let sc = parallel_by_name("dragonfly-1024", 42).unwrap();
        let json = serde_json::to_string_pretty(&run_fabric_scenario(&sc, 2)).unwrap();
        assert!(!json.contains("route_drops"), "absent-when-zero keeps legacy bytes");
    }

    #[test]
    fn serialized_report_is_thread_count_independent() {
        let sc = parallel_by_name("dragonfly-256-valiant", 7).expect("library scenario");
        let base = serde_json::to_string_pretty(&run_fabric_scenario(&sc, 1)).unwrap();
        for threads in [2usize, 4] {
            let run = serde_json::to_string_pretty(&run_fabric_scenario(&sc, threads)).unwrap();
            assert_eq!(run, base, "threads={threads}");
        }
        // And the thread count genuinely appears nowhere in the bytes.
        assert!(!base.contains("thread"));
    }
}
