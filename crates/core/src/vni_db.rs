//! The VNI Database (§III-C2): typed schema over the ACID store.
//!
//! Tables:
//! * `vnis` — one row per VNI that is allocated or quarantined,
//!   including its owner and (for claims) its user list;
//! * `audit_log` — append-only log of every allocation, release, and
//!   user add/remove, as the paper requires ("we keep a log for all VNI
//!   allocation and release requests, as well as VNI user addition and
//!   removal requests").
//!
//! Every public operation is a single serializable transaction, so the
//! check-then-allocate races the paper worries about (§III-C2 TOCTOU)
//! cannot produce double allocations — property-tested in
//! `tests/vni_exclusivity.rs`.
//!
//! # Example
//!
//! Allocate, release into quarantine, and watch the 30 s window gate
//! reuse:
//!
//! ```
//! use shs_des::{SimDur, SimTime};
//! use slingshot_k8s::vni_db::{VniDb, VniDbConfig, VniOwner};
//!
//! let mut db = VniDb::new(VniDbConfig { range: 1024..1026, quarantine: SimDur::from_secs(30) });
//! let owner = VniOwner::Job { key: "tenant/train".into() };
//! let vni = db.acquire(owner, SimTime::ZERO).unwrap();
//! db.release(vni, SimTime::from_nanos(1_000_000_000)).unwrap();
//!
//! // 10 s later the VNI is still quarantined...
//! let stats = db.stats(SimTime::from_nanos(11_000_000_000));
//! assert_eq!((stats.allocated, stats.quarantined), (0, 1));
//! // ...but once the window passes, a stats read sweeps it back to free.
//! let stats = db.stats(SimTime::from_nanos(31_000_000_000));
//! assert_eq!((stats.quarantined, stats.free), (0, 2));
//! ```

use serde::{Deserialize, Serialize};
use shs_des::{SimDur, SimTime};
use shs_fabric::Vni;
use shs_vnistore::{Store, StoreConfig};

/// Who owns an allocated VNI.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum VniOwner {
    /// A job (Per-Resource VNI model).
    Job {
        /// `namespace/name` of the job.
        key: String,
    },
    /// A VNI Claim (VNI Claim model).
    Claim {
        /// `namespace/name` of the claim.
        key: String,
    },
}

/// Row state.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum VniState {
    /// Allocated to an owner.
    Allocated,
    /// Released; unusable until the quarantine window passes (§III-C1:
    /// "we only hand out a VNI after it has been released for more than
    /// 30 seconds").
    Quarantined {
        /// Release instant (ns since sim start).
        released_at_ns: u64,
    },
}

/// One `vnis` table row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VniRow {
    /// The VNI.
    pub vni: u16,
    /// Current state.
    pub state: VniState,
    /// Owner at allocation time (kept through quarantine for the log).
    pub owner: VniOwner,
    /// Users (jobs) attached to a claim-owned VNI.
    pub users: Vec<String>,
}

/// An audit-log entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AuditEntry {
    /// Event time (ns).
    pub at_ns: u64,
    /// What happened.
    pub event: String,
    /// Affected VNI.
    pub vni: u16,
}

/// Database errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VniDbError {
    /// No VNI available in the configured range (all allocated or in
    /// quarantine).
    Exhausted,
    /// VNI not found or not in the expected state.
    NotFound,
    /// The claim still has users attached (deletion must stall, §III-C2).
    ClaimInUse,
}

impl core::fmt::Display for VniDbError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            VniDbError::Exhausted => "VNI range exhausted",
            VniDbError::NotFound => "VNI not found",
            VniDbError::ClaimInUse => "claim still has users",
        };
        f.write_str(s)
    }
}

impl std::error::Error for VniDbError {}

/// Configuration of the VNI database.
#[derive(Debug, Clone)]
pub struct VniDbConfig {
    /// Allocatable VNI range (half-open). VNI 1 is reserved as the
    /// global single-tenant VNI, so ranges start above it.
    pub range: core::ops::Range<u16>,
    /// Quarantine window before reuse.
    pub quarantine: SimDur,
}

impl Default for VniDbConfig {
    fn default() -> Self {
        VniDbConfig { range: 1024..4096, quarantine: SimDur::from_secs(30) }
    }
}

const T_VNIS: &str = "vnis";
const T_AUDIT: &str = "audit_log";

/// The single quarantine-expiry predicate, shared by `acquire` (which
/// treats expired rows as free) and `sweep_expired`/`stats` (which
/// report them as free) so allocation and reporting can never diverge.
fn quarantine_expired(row: &VniRow, quarantine: SimDur, now: SimTime) -> bool {
    match row.state {
        VniState::Quarantined { released_at_ns } => {
            now >= SimTime::from_nanos(released_at_ns) + quarantine
        }
        VniState::Allocated => false,
    }
}

/// The VNI database.
#[derive(Debug)]
pub struct VniDb {
    store: Store,
    config: VniDbConfig,
    next_audit_seq: u64,
}

impl VniDb {
    /// Fresh database.
    pub fn new(config: VniDbConfig) -> Self {
        VniDb { store: Store::new(StoreConfig::default()), config, next_audit_seq: 0 }
    }

    /// Recover a database from a crashed/persisted store image.
    pub fn recover(disk: shs_vnistore::SimDisk, config: VniDbConfig) -> Self {
        let store = Store::recover(disk, StoreConfig::default());
        let next_audit_seq = store.row_count(T_AUDIT) as u64;
        VniDb { store, config, next_audit_seq }
    }

    /// Access the underlying store (crash injection in tests).
    pub fn into_store(self) -> Store {
        self.store
    }

    /// The configured quarantine window.
    pub fn quarantine(&self) -> SimDur {
        self.config.quarantine
    }

    fn key(vni: u16) -> [u8; 2] {
        vni.to_be_bytes()
    }

    fn decode_row(bytes: &[u8]) -> VniRow {
        serde_json::from_slice(bytes).expect("vnis rows are valid JSON")
    }

    /// Look up a row.
    pub fn row(&self, vni: Vni) -> Option<VniRow> {
        self.store.get(T_VNIS, &Self::key(vni.raw())).map(Self::decode_row)
    }

    /// All rows (diagnostics / recovery checks).
    pub fn rows(&self) -> Vec<VniRow> {
        self.store.scan(T_VNIS).map(|(_, v)| Self::decode_row(v)).collect()
    }

    /// Audit log length.
    pub fn audit_len(&self) -> usize {
        self.store.row_count(T_AUDIT)
    }

    /// Audit entries in order, as currently persisted. Prefer
    /// [`VniDb::audit_at`] when a simulation clock is in hand: this raw
    /// read does not sweep expired quarantines, so it may lag the state
    /// `acquire` would act on.
    pub fn audit(&self) -> Vec<AuditEntry> {
        self.store
            .scan(T_AUDIT)
            .map(|(_, v)| serde_json::from_slice(v).expect("audit rows are valid JSON"))
            .collect()
    }

    /// Consistent audit read at `now`: sweeps expired quarantines first,
    /// so the returned log contains a `quarantine_expire` entry for
    /// every VNI that `acquire` would already treat as free.
    pub fn audit_at(&mut self, now: SimTime) -> Vec<AuditEntry> {
        self.sweep_expired(now);
        self.audit()
    }

    /// Find the VNI owned by `owner`, if any (idempotent re-sync path).
    pub fn find_by_owner(&self, owner: &VniOwner) -> Option<VniRow> {
        self.rows()
            .into_iter()
            .find(|r| r.state == VniState::Allocated && &r.owner == owner)
    }

    /// Atomically acquire a fresh VNI for `owner`. Scans the range for a
    /// VNI that is neither allocated nor inside the quarantine window —
    /// check and insert happen in one transaction.
    pub fn acquire(&mut self, owner: VniOwner, now: SimTime) -> Result<Vni, VniDbError> {
        // Idempotency: an owner re-acquiring gets its existing VNI.
        if let Some(row) = self.find_by_owner(&owner) {
            return Ok(Vni(row.vni));
        }
        let seq = self.next_audit_seq;
        let mut txn = self.store.begin();
        let mut chosen: Option<u16> = None;
        for vni in self.config.range.clone() {
            match txn.get(T_VNIS, &Self::key(vni)) {
                None => {
                    chosen = Some(vni);
                    break;
                }
                Some(bytes) => {
                    let row = Self::decode_row(&bytes);
                    if quarantine_expired(&row, self.config.quarantine, now) {
                        chosen = Some(vni);
                        break;
                    }
                }
            }
        }
        let Some(vni) = chosen else {
            return Err(VniDbError::Exhausted);
        };
        let row = VniRow { vni, state: VniState::Allocated, owner, users: Vec::new() };
        txn.put(T_VNIS, &Self::key(vni), &serde_json::to_vec(&row).expect("serializes"));
        txn.put(
            T_AUDIT,
            &seq.to_be_bytes(),
            &serde_json::to_vec(&AuditEntry {
                at_ns: now.as_nanos(),
                event: "acquire".into(),
                vni,
            })
            .expect("serializes"),
        );
        txn.commit();
        self.next_audit_seq += 1;
        Ok(Vni(vni))
    }

    /// Atomically release a VNI into quarantine.
    pub fn release(&mut self, vni: Vni, now: SimTime) -> Result<(), VniDbError> {
        let seq = self.next_audit_seq;
        let mut txn = self.store.begin();
        let bytes = txn.get(T_VNIS, &Self::key(vni.raw())).ok_or(VniDbError::NotFound)?;
        let mut row = Self::decode_row(&bytes);
        if row.state != VniState::Allocated {
            return Err(VniDbError::NotFound);
        }
        row.state = VniState::Quarantined { released_at_ns: now.as_nanos() };
        row.users.clear();
        txn.put(T_VNIS, &Self::key(vni.raw()), &serde_json::to_vec(&row).expect("serializes"));
        txn.put(
            T_AUDIT,
            &seq.to_be_bytes(),
            &serde_json::to_vec(&AuditEntry {
                at_ns: now.as_nanos(),
                event: "release".into(),
                vni: vni.raw(),
            })
            .expect("serializes"),
        );
        txn.commit();
        self.next_audit_seq += 1;
        Ok(())
    }

    /// Find the VNI allocated to a claim by claim key (`ns/name`).
    pub fn find_by_claim(&self, claim_key: &str) -> Option<VniRow> {
        self.find_by_owner(&VniOwner::Claim { key: claim_key.to_string() })
    }

    /// Atomically add a user (a job key) to a claim-owned VNI.
    pub fn add_user(&mut self, vni: Vni, user: &str, now: SimTime) -> Result<(), VniDbError> {
        let seq = self.next_audit_seq;
        let mut txn = self.store.begin();
        let bytes = txn.get(T_VNIS, &Self::key(vni.raw())).ok_or(VniDbError::NotFound)?;
        let mut row = Self::decode_row(&bytes);
        if row.state != VniState::Allocated {
            return Err(VniDbError::NotFound);
        }
        if !row.users.iter().any(|u| u == user) {
            row.users.push(user.to_string());
        }
        txn.put(T_VNIS, &Self::key(vni.raw()), &serde_json::to_vec(&row).expect("serializes"));
        txn.put(
            T_AUDIT,
            &seq.to_be_bytes(),
            &serde_json::to_vec(&AuditEntry {
                at_ns: now.as_nanos(),
                event: format!("add_user:{user}"),
                vni: vni.raw(),
            })
            .expect("serializes"),
        );
        txn.commit();
        self.next_audit_seq += 1;
        Ok(())
    }

    /// Atomically remove a user; returns how many remain.
    pub fn remove_user(
        &mut self,
        vni: Vni,
        user: &str,
        now: SimTime,
    ) -> Result<usize, VniDbError> {
        let seq = self.next_audit_seq;
        let mut txn = self.store.begin();
        let bytes = txn.get(T_VNIS, &Self::key(vni.raw())).ok_or(VniDbError::NotFound)?;
        let mut row = Self::decode_row(&bytes);
        if row.state != VniState::Allocated {
            return Err(VniDbError::NotFound);
        }
        row.users.retain(|u| u != user);
        let remaining = row.users.len();
        txn.put(T_VNIS, &Self::key(vni.raw()), &serde_json::to_vec(&row).expect("serializes"));
        txn.put(
            T_AUDIT,
            &seq.to_be_bytes(),
            &serde_json::to_vec(&AuditEntry {
                at_ns: now.as_nanos(),
                event: format!("remove_user:{user}"),
                vni: vni.raw(),
            })
            .expect("serializes"),
        );
        txn.commit();
        self.next_audit_seq += 1;
        Ok(remaining)
    }

    /// Release a claim-owned VNI, refusing while users remain (§III-C2:
    /// "the deletion request is only granted once all users of the VNI
    /// claim have been removed").
    pub fn release_claim(&mut self, claim_key: &str, now: SimTime) -> Result<(), VniDbError> {
        let Some(row) = self.find_by_claim(claim_key) else {
            return Err(VniDbError::NotFound);
        };
        if !row.users.is_empty() {
            return Err(VniDbError::ClaimInUse);
        }
        self.release(Vni(row.vni), now)
    }

    /// Count of currently allocated VNIs.
    pub fn allocated_count(&self) -> usize {
        self.rows().iter().filter(|r| r.state == VniState::Allocated).count()
    }

    /// Sweep quarantined rows whose window has passed: each is deleted
    /// (returning the VNI to the free pool) and a `quarantine_expire`
    /// audit entry is appended, all in one transaction. Returns the
    /// number of rows swept.
    ///
    /// Allocation has always *treated* expired rows as free; before this
    /// sweep existed, audit/stats readers still saw them as quarantined,
    /// so reported counts disagreed with what `acquire` would actually
    /// do. [`VniDb::stats`] calls this first for consistent reads.
    pub fn sweep_expired(&mut self, now: SimTime) -> usize {
        let expired: Vec<u16> = self
            .rows()
            .into_iter()
            .filter(|r| quarantine_expired(r, self.config.quarantine, now))
            .map(|r| r.vni)
            .collect();
        if expired.is_empty() {
            return 0;
        }
        let mut seq = self.next_audit_seq;
        let mut txn = self.store.begin();
        for vni in &expired {
            txn.delete(T_VNIS, &Self::key(*vni));
            txn.put(
                T_AUDIT,
                &seq.to_be_bytes(),
                &serde_json::to_vec(&AuditEntry {
                    at_ns: now.as_nanos(),
                    event: "quarantine_expire".into(),
                    vni: *vni,
                })
                .expect("serializes"),
            );
            seq += 1;
        }
        txn.commit();
        self.next_audit_seq = seq;
        expired.len()
    }

    /// Consistent occupancy split of the configured range at `now`.
    /// Sweeps expired quarantines first, so `quarantined` only counts
    /// VNIs that `acquire` would actually refuse.
    pub fn stats(&mut self, now: SimTime) -> VniDbStats {
        self.sweep_expired(now);
        let rows = self.rows();
        let allocated = rows.iter().filter(|r| r.state == VniState::Allocated).count();
        let quarantined = rows.len() - allocated;
        VniDbStats {
            allocated,
            quarantined,
            free: self.config.range.len() - rows.len(),
        }
    }
}

/// Occupancy of the VNI range as reported by [`VniDb::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VniDbStats {
    /// VNIs currently allocated to an owner.
    pub allocated: usize,
    /// VNIs inside an unexpired quarantine window.
    pub quarantined: usize,
    /// VNIs a fresh `acquire` could hand out.
    pub free: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> VniDb {
        VniDb::new(VniDbConfig { range: 1024..1030, quarantine: SimDur::from_secs(30) })
    }

    fn job(key: &str) -> VniOwner {
        VniOwner::Job { key: key.to_string() }
    }

    #[test]
    fn acquire_hands_out_distinct_vnis() {
        let mut db = db();
        let a = db.acquire(job("ns/a"), SimTime::ZERO).unwrap();
        let b = db.acquire(job("ns/b"), SimTime::ZERO).unwrap();
        assert_ne!(a, b);
        assert_eq!(db.allocated_count(), 2);
        assert_eq!(db.audit_len(), 2);
    }

    #[test]
    fn acquire_is_idempotent_per_owner() {
        let mut db = db();
        let a1 = db.acquire(job("ns/a"), SimTime::ZERO).unwrap();
        let a2 = db.acquire(job("ns/a"), SimTime::ZERO).unwrap();
        assert_eq!(a1, a2);
        assert_eq!(db.allocated_count(), 1);
    }

    #[test]
    fn quarantine_blocks_reuse_for_thirty_seconds() {
        let mut db = db();
        // Exhaust the 6-wide range.
        for i in 0..6 {
            db.acquire(job(&format!("ns/j{i}")), SimTime::ZERO).unwrap();
        }
        assert_eq!(db.acquire(job("ns/late"), SimTime::ZERO).unwrap_err(), VniDbError::Exhausted);
        // Release one at t=10s.
        db.release(Vni(1024), SimTime::from_nanos(10_000_000_000)).unwrap();
        // 29.9s after release: still quarantined.
        let t_early = SimTime::from_nanos(39_900_000_000);
        assert_eq!(db.acquire(job("ns/late"), t_early).unwrap_err(), VniDbError::Exhausted);
        // 30s after release: reusable.
        let t_ok = SimTime::from_nanos(40_000_000_000);
        assert_eq!(db.acquire(job("ns/late"), t_ok).unwrap(), Vni(1024));
    }

    #[test]
    fn release_requires_allocated_state() {
        let mut db = db();
        assert_eq!(db.release(Vni(1024), SimTime::ZERO).unwrap_err(), VniDbError::NotFound);
        db.acquire(job("ns/a"), SimTime::ZERO).unwrap();
        db.release(Vni(1024), SimTime::ZERO).unwrap();
        assert_eq!(db.release(Vni(1024), SimTime::ZERO).unwrap_err(), VniDbError::NotFound);
    }

    #[test]
    fn claim_users_lifecycle() {
        let mut db = db();
        let claim = VniOwner::Claim { key: "ns/shared".into() };
        let v = db.acquire(claim, SimTime::ZERO).unwrap();
        db.add_user(v, "ns/job1", SimTime::ZERO).unwrap();
        db.add_user(v, "ns/job2", SimTime::ZERO).unwrap();
        db.add_user(v, "ns/job1", SimTime::ZERO).unwrap(); // idempotent
        assert_eq!(db.row(v).unwrap().users.len(), 2);
        // Deletion stalls while users remain.
        assert_eq!(
            db.release_claim("ns/shared", SimTime::ZERO).unwrap_err(),
            VniDbError::ClaimInUse
        );
        assert_eq!(db.remove_user(v, "ns/job1", SimTime::ZERO).unwrap(), 1);
        assert_eq!(db.remove_user(v, "ns/job2", SimTime::ZERO).unwrap(), 0);
        db.release_claim("ns/shared", SimTime::ZERO).unwrap();
        assert_eq!(db.allocated_count(), 0);
    }

    #[test]
    fn find_by_claim_resolves_redemption() {
        let mut db = db();
        let v = db
            .acquire(VniOwner::Claim { key: "tenant/experiment".into() }, SimTime::ZERO)
            .unwrap();
        let row = db.find_by_claim("tenant/experiment").unwrap();
        assert_eq!(row.vni, v.raw());
        assert!(db.find_by_claim("tenant/other").is_none());
    }

    #[test]
    fn audit_log_records_every_operation() {
        let mut db = db();
        let v = db.acquire(job("ns/a"), SimTime::ZERO).unwrap();
        db.add_user(v, "u", SimTime::ZERO).unwrap();
        db.remove_user(v, "u", SimTime::ZERO).unwrap();
        db.release(v, SimTime::ZERO).unwrap();
        let events: Vec<String> = db.audit().into_iter().map(|e| e.event).collect();
        assert_eq!(events, vec!["acquire", "add_user:u", "remove_user:u", "release"]);
    }

    #[test]
    fn stats_sweep_expires_stale_quarantines_consistently() {
        let mut db = db();
        db.acquire(job("ns/a"), SimTime::ZERO).unwrap();
        db.acquire(job("ns/b"), SimTime::ZERO).unwrap();
        db.release(Vni(1024), SimTime::from_nanos(5_000_000_000)).unwrap();
        // Inside the window: reported as quarantined, nothing swept.
        let s = db.stats(SimTime::from_nanos(10_000_000_000));
        assert_eq!((s.allocated, s.quarantined, s.free), (1, 1, 4));
        // Regression: before the sweep existed, a stats/audit read after
        // the window still reported the row as quarantined even though
        // acquire() would have handed it out.
        let s = db.stats(SimTime::from_nanos(35_000_000_000));
        assert_eq!((s.allocated, s.quarantined, s.free), (1, 0, 5));
        // audit_at is the consistent audit read; here it sweeps nothing
        // further but returns the expire entry stats() just recorded.
        let events: Vec<String> =
            db.audit_at(SimTime::from_nanos(35_000_000_000)).into_iter().map(|e| e.event).collect();
        assert_eq!(
            events,
            vec!["acquire", "acquire", "release", "quarantine_expire"],
            "the sweep is visible in the audit log"
        );
        // The swept VNI is genuinely free again.
        assert_eq!(
            db.acquire(job("ns/c"), SimTime::from_nanos(35_000_000_000)).unwrap(),
            Vni(1024)
        );
        // Idempotent: a second read sweeps nothing further.
        assert_eq!(db.sweep_expired(SimTime::from_nanos(36_000_000_000)), 0);
    }

    #[test]
    fn state_survives_crash_recovery() {
        let mut db = db();
        let v = db.acquire(job("ns/a"), SimTime::ZERO).unwrap();
        db.add_user(v, "u", SimTime::ZERO).unwrap();
        let mut rng = shs_des::DetRng::new(4);
        let disk = db.into_store().crash(&mut rng);
        let db2 = VniDb::recover(
            disk,
            VniDbConfig { range: 1024..1030, quarantine: SimDur::from_secs(30) },
        );
        let row = db2.row(v).unwrap();
        assert_eq!(row.state, VniState::Allocated);
        assert_eq!(row.users, vec!["u".to_string()]);
        assert_eq!(db2.audit_len(), 2);
    }
}
