//! The VNI Database (§III-C2): typed schema over the ACID store, with
//! write-through in-memory indexes keeping every control-plane hot path
//! at O(log n).
//!
//! Tables:
//! * `vnis` — one row per VNI that is allocated or quarantined,
//!   including its owner and (for claims) its user list;
//! * `audit_log` — append-only log of every allocation, release, and
//!   user add/remove, as the paper requires ("we keep a log for all VNI
//!   allocation and release requests, as well as VNI user addition and
//!   removal requests").
//!
//! Every public operation is a single serializable transaction, so the
//! check-then-allocate races the paper worries about (§III-C2 TOCTOU)
//! cannot produce double allocations — property-tested in
//! `tests/vni_exclusivity.rs`, and checked against a naive scan-based
//! oracle in `tests/vni_oracle.rs`.
//!
//! # Indexes
//!
//! The store remains the single durable source of truth; the database
//! additionally maintains four in-memory indexes, rebuilt by one table
//! scan in [`VniDb::recover`] and updated **only after** a transaction
//! commits. Failed operations never touch the store, the audit cursor,
//! or any store-derived index state; the only bookkeeping a failing
//! `acquire` may perform is expiry promotion/demotion, which re-sorts
//! quarantined VNIs between the heap and the expired sets without
//! changing what any of them mean. The indexes:
//!
//! * a **free set** of range VNIs with no row — `acquire` takes the
//!   minimum in O(log n) instead of scanning the range;
//! * **owner maps** (job/claim key → VNI) — `find_by_owner` and the
//!   idempotent re-acquire probe are lookups, not table scans;
//! * a **quarantine map** (VNI → release instant) mirroring every
//!   quarantined row;
//! * an **expiry min-heap** ordered by release-instant + window —
//!   [`VniDb::sweep_expired`] pops only actually-expired entries
//!   instead of decoding the whole table.
//!
//! Rows and audit entries are stored in a compact length-prefixed
//! binary codec (`shs_vnistore::codec`); JSON stays available through
//! [`VniDb::export_diagnostics`] for humans and deterministic reports.
//!
//! # Example
//!
//! Allocate, release into quarantine, and watch the 30 s window gate
//! reuse:
//!
//! ```
//! use shs_des::{SimDur, SimTime};
//! use slingshot_k8s::vni_db::{VniDb, VniDbConfig, VniOwner};
//!
//! let mut db = VniDb::new(VniDbConfig { range: 1024..1026, quarantine: SimDur::from_secs(30) });
//! let owner = VniOwner::Job { key: "tenant/train".into() };
//! let vni = db.acquire(owner, SimTime::ZERO).unwrap();
//! db.release(vni, SimTime::from_nanos(1_000_000_000)).unwrap();
//!
//! // 10 s later the VNI is still quarantined...
//! let stats = db.stats(SimTime::from_nanos(11_000_000_000));
//! assert_eq!((stats.allocated, stats.quarantined), (0, 1));
//! // ...but once the window passes, a stats read sweeps it back to free.
//! let stats = db.stats(SimTime::from_nanos(31_000_000_000));
//! assert_eq!((stats.quarantined, stats.free), (0, 2));
//! ```

use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};

use serde::{Deserialize, Serialize};
use shs_des::{SimDur, SimTime};
use shs_fabric::Vni;
use shs_vnistore::codec::{
    push_bytes, push_u16, push_u32, push_u64, read_slice, read_u16, read_u32, read_u64, read_u8,
};
use shs_vnistore::{Store, StoreConfig};

/// Who owns an allocated VNI.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum VniOwner {
    /// A job (Per-Resource VNI model).
    Job {
        /// `namespace/name` of the job.
        key: String,
    },
    /// A VNI Claim (VNI Claim model).
    Claim {
        /// `namespace/name` of the claim.
        key: String,
    },
}

/// Row state.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum VniState {
    /// Allocated to an owner.
    Allocated,
    /// Released; unusable until the quarantine window passes (§III-C1:
    /// "we only hand out a VNI after it has been released for more than
    /// 30 seconds").
    Quarantined {
        /// Release instant (ns since sim start).
        released_at_ns: u64,
    },
}

/// One `vnis` table row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VniRow {
    /// The VNI.
    pub vni: u16,
    /// Current state.
    pub state: VniState,
    /// Owner at allocation time (kept through quarantine for the log).
    pub owner: VniOwner,
    /// Users (jobs) attached to a claim-owned VNI.
    pub users: Vec<String>,
}

/// An audit-log entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AuditEntry {
    /// Event time (ns).
    pub at_ns: u64,
    /// What happened.
    pub event: String,
    /// Affected VNI.
    pub vni: u16,
}

/// Database errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VniDbError {
    /// No VNI available in the configured range (all allocated or in
    /// quarantine).
    Exhausted,
    /// VNI not found or not in the expected state.
    NotFound,
    /// The claim still has users attached (deletion must stall, §III-C2).
    ClaimInUse,
}

impl core::fmt::Display for VniDbError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            VniDbError::Exhausted => "VNI range exhausted",
            VniDbError::NotFound => "VNI not found",
            VniDbError::ClaimInUse => "claim still has users",
        };
        f.write_str(s)
    }
}

impl std::error::Error for VniDbError {}

/// Configuration of the VNI database.
#[derive(Debug, Clone)]
pub struct VniDbConfig {
    /// Allocatable VNI range (half-open). VNI 1 is reserved as the
    /// global single-tenant VNI, so ranges start above it.
    pub range: core::ops::Range<u16>,
    /// Quarantine window before reuse.
    pub quarantine: SimDur,
}

impl Default for VniDbConfig {
    fn default() -> Self {
        VniDbConfig { range: 1024..4096, quarantine: SimDur::from_secs(30) }
    }
}

const T_VNIS: &str = "vnis";
const T_AUDIT: &str = "audit_log";

// ---- Binary row/audit codec ---------------------------------------------
//
// Length-prefixed binary (shs_vnistore::codec primitives), one version
// tag byte up front. Legacy JSON rows (first byte `{`) still decode, so
// a device image written before the codec switch recovers cleanly.

const CODEC_V1: u8 = 1;

fn encode_row(row: &VniRow) -> Vec<u8> {
    let mut out = Vec::with_capacity(24 + row.users.len() * 16);
    out.push(CODEC_V1);
    push_u16(&mut out, row.vni);
    match row.state {
        VniState::Allocated => out.push(0),
        VniState::Quarantined { released_at_ns } => {
            out.push(1);
            push_u64(&mut out, released_at_ns);
        }
    }
    let (tag, key) = owner_slot(&row.owner);
    out.push(tag as u8);
    push_bytes(&mut out, key.as_bytes());
    push_u32(&mut out, row.users.len() as u32);
    for user in &row.users {
        push_bytes(&mut out, user.as_bytes());
    }
    out
}

fn try_decode_row(bytes: &[u8]) -> Option<VniRow> {
    if bytes.first() == Some(&b'{') {
        return serde_json::from_slice(bytes).ok(); // legacy JSON row
    }
    let mut off = 0usize;
    if read_u8(bytes, &mut off)? != CODEC_V1 {
        return None;
    }
    let vni = read_u16(bytes, &mut off)?;
    let state = match read_u8(bytes, &mut off)? {
        0 => VniState::Allocated,
        1 => VniState::Quarantined { released_at_ns: read_u64(bytes, &mut off)? },
        _ => return None,
    };
    let owner_tag = read_u8(bytes, &mut off)?;
    let key = String::from_utf8(read_slice(bytes, &mut off)?.to_vec()).ok()?;
    let owner = match owner_tag {
        0 => VniOwner::Job { key },
        1 => VniOwner::Claim { key },
        _ => return None,
    };
    let n_users = read_u32(bytes, &mut off)? as usize;
    let mut users = Vec::with_capacity(n_users.min(64));
    for _ in 0..n_users {
        users.push(String::from_utf8(read_slice(bytes, &mut off)?.to_vec()).ok()?);
    }
    (off == bytes.len()).then_some(VniRow { vni, state, owner, users })
}

fn encode_audit(entry: &AuditEntry) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + entry.event.len());
    out.push(CODEC_V1);
    push_u64(&mut out, entry.at_ns);
    push_u16(&mut out, entry.vni);
    push_bytes(&mut out, entry.event.as_bytes());
    out
}

fn try_decode_audit(bytes: &[u8]) -> Option<AuditEntry> {
    if bytes.first() == Some(&b'{') {
        return serde_json::from_slice(bytes).ok(); // legacy JSON entry
    }
    let mut off = 0usize;
    if read_u8(bytes, &mut off)? != CODEC_V1 {
        return None;
    }
    let at_ns = read_u64(bytes, &mut off)?;
    let vni = read_u16(bytes, &mut off)?;
    let event = String::from_utf8(read_slice(bytes, &mut off)?.to_vec()).ok()?;
    (off == bytes.len()).then_some(AuditEntry { at_ns, event, vni })
}

/// Owner-map slots: one map per owner kind, so lookups borrow a `&str`
/// instead of cloning an owner.
const SLOT_JOB: usize = 0;
const SLOT_CLAIM: usize = 1;

fn owner_slot(owner: &VniOwner) -> (usize, &str) {
    match owner {
        VniOwner::Job { key } => (SLOT_JOB, key.as_str()),
        VniOwner::Claim { key } => (SLOT_CLAIM, key.as_str()),
    }
}

/// Allocator-level counters: how allocations were satisfied and how much
/// expiry bookkeeping the indexes performed. Exposed by
/// [`VniDb::counters`] and surfaced by `bench-run`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct VniDbCounters {
    /// Successful acquisitions.
    pub acquires: u64,
    /// Acquisitions satisfied from the never-used free pool.
    pub fresh_allocs: u64,
    /// Acquisitions that reused a VNI whose quarantine had expired.
    pub reuse_allocs: u64,
    /// Acquisitions refused because nothing was allocatable.
    pub exhaustions: u64,
    /// Successful releases into quarantine.
    pub releases: u64,
    /// Successful user additions.
    pub user_adds: u64,
    /// Successful user removals.
    pub user_removes: u64,
    /// [`VniDb::sweep_expired`] invocations.
    pub sweeps: u64,
    /// Quarantine rows deleted by sweeps.
    pub swept_rows: u64,
    /// Heap entries promoted from quarantined to allocatable.
    pub expiry_promotions: u64,
}

/// The write-through in-memory indexes. Invariants (checked by
/// [`VniDb::check_index_consistency`]):
///
/// * `free` = range VNIs with **no row** in the store;
/// * `owners[slot]` maps exactly the owners of **Allocated** rows;
/// * `quarantined` maps exactly the **Quarantined** rows (expired or
///   not) to their release instant;
/// * every quarantined VNI is covered **once**: either still in the
///   `expiry` heap (window not yet observed to pass) or in
///   `expired`/`expired_out` (allocatable / sweep-only).
#[derive(Debug, Default)]
struct Indexes {
    free: BTreeSet<u16>,
    expired: BTreeSet<u16>,
    /// Expired rows outside the configured range (possible after a
    /// recovery with a narrower range): swept, but never re-allocated —
    /// matching the scan allocator, which only probed in-range VNIs.
    expired_out: BTreeSet<u16>,
    quarantined: BTreeMap<u16, u64>,
    expiry: BinaryHeap<Reverse<(u64, u16)>>,
    owners: [BTreeMap<String, u16>; 2],
    /// Highest `now` promotions have been evaluated at. The expired
    /// sets are only valid relative to this instant; a call with an
    /// earlier `now` (the public API takes arbitrary `SimTime`s)
    /// triggers a demotion pass so quarantine is judged against the
    /// caller's clock, exactly like the per-call scan predicate did.
    watermark_ns: u64,
}

/// The VNI database.
#[derive(Debug)]
pub struct VniDb {
    store: Store,
    config: VniDbConfig,
    next_audit_seq: u64,
    idx: Indexes,
    counters: VniDbCounters,
}

impl VniDb {
    /// Store tuning for the allocator: the audit log is append-only, so
    /// fixed-cadence snapshots re-encode an ever-growing table. Require
    /// the WAL to grow by a full snapshot's worth of bytes between
    /// checkpoints so snapshot cost stays amortized O(1) per commit.
    fn store_config() -> StoreConfig {
        StoreConfig { snapshot_wal_factor: 1, ..Default::default() }
    }

    /// Fresh database.
    pub fn new(config: VniDbConfig) -> Self {
        let idx = Indexes { free: config.range.clone().collect(), ..Default::default() };
        VniDb {
            store: Store::new(VniDb::store_config()),
            config,
            next_audit_seq: 0,
            idx,
            counters: VniDbCounters::default(),
        }
    }

    /// Recover a database from a crashed/persisted store image. One scan
    /// of the `vnis` table rebuilds every index.
    ///
    /// The audit cursor resumes from the highest persisted key + 1, not
    /// the row count: a database serving as one shard of a
    /// [`ShardedVniDb`](crate::sharded_db::ShardedVniDb) holds a sparse
    /// slice of the *global* sequence, so counting rows would re-issue
    /// keys another shard already owns. For a standalone log the keys
    /// are contiguous and the two are equal.
    pub fn recover(disk: shs_vnistore::SimDisk, config: VniDbConfig) -> Self {
        let store = Store::recover(disk, VniDb::store_config());
        let next_audit_seq = store
            .scan(T_AUDIT)
            .last()
            .map_or(0, |(k, _)| u64::from_be_bytes(k.try_into().expect("8-byte audit key")) + 1);
        let mut idx = Indexes { free: config.range.clone().collect(), ..Default::default() };
        let q_ns = config.quarantine.as_nanos();
        for (_, bytes) in store.scan(T_VNIS) {
            let row = Self::decode_row(bytes);
            idx.free.remove(&row.vni);
            match row.state {
                VniState::Allocated => {
                    let (slot, key) = owner_slot(&row.owner);
                    idx.owners[slot].insert(key.to_string(), row.vni);
                }
                VniState::Quarantined { released_at_ns } => {
                    idx.quarantined.insert(row.vni, released_at_ns);
                    idx.expiry.push(Reverse((released_at_ns.saturating_add(q_ns), row.vni)));
                }
            }
        }
        VniDb { store, config, next_audit_seq, idx, counters: VniDbCounters::default() }
    }

    /// Access the underlying store (crash injection in tests).
    pub fn into_store(self) -> Store {
        self.store
    }

    /// The configured quarantine window.
    pub fn quarantine(&self) -> SimDur {
        self.config.quarantine
    }

    /// Full configuration (the sharding facade adopts it wholesale when
    /// wrapping an existing database).
    pub(crate) fn config(&self) -> &VniDbConfig {
        &self.config
    }

    /// Allocator counters for this instance (not carried across
    /// recovery).
    pub fn counters(&self) -> VniDbCounters {
        self.counters
    }

    /// Committed transactions on the backing store (not carried across
    /// recovery) — the paper's "one ACID transaction per operation"
    /// invariant made countable.
    pub fn txn_count(&self) -> u64 {
        self.store.stats().commits
    }

    /// Enter group-commit mode on the backing store: subsequent
    /// transactions apply (and are readable) immediately, but WAL
    /// framing + fsync are deferred until [`VniDb::group_flush`] — many
    /// control-plane commits, one durability barrier.
    pub fn group_begin(&mut self) {
        self.store.group_begin();
    }

    /// Make every deferred commit durable as ONE batch WAL record with
    /// ONE fsync.
    pub fn group_flush(&mut self) {
        self.store.group_flush();
    }

    /// Flush any open batch and leave group-commit mode.
    pub fn group_end(&mut self) {
        self.store.group_end();
    }

    // ---- Sharding hooks (crate-private) ---------------------------------
    //
    // A `ShardedVniDb` owns the *global* audit sequence and allocation
    // order; these hooks let it thread that state through each shard
    // while every per-shard invariant stays locally checkable.

    /// Current audit cursor (the next sequence this database would
    /// assign).
    pub(crate) fn audit_seq(&self) -> u64 {
        self.next_audit_seq
    }

    /// Point the audit cursor at a facade-assigned global sequence.
    pub(crate) fn set_audit_seq(&mut self, seq: u64) {
        self.next_audit_seq = seq;
    }

    /// Audit entries paired with their persisted sequence keys — the
    /// k-way-merge input for the facade's global audit view.
    pub(crate) fn audit_with_seq(&self) -> Vec<(u64, AuditEntry)> {
        self.store
            .scan(T_AUDIT)
            .map(|(k, v)| {
                (
                    u64::from_be_bytes(k.try_into().expect("8-byte audit key")),
                    try_decode_audit(v).expect("audit rows decode"),
                )
            })
            .collect()
    }

    /// The VNI `acquire` would hand out at `now`, without allocating —
    /// the facade probes every shard with this and routes the acquire
    /// to the shard holding the global minimum, so sharded allocation
    /// order is identical to a single store's.
    pub(crate) fn peek_min_allocatable(&mut self, now: SimTime) -> Option<u16> {
        self.promote_expired(now);
        match (self.idx.free.first(), self.idx.expired.first()) {
            (Some(&f), Some(&e)) => Some(f.min(e)),
            (Some(&f), None) => Some(f),
            (None, Some(&e)) => Some(e),
            (None, None) => None,
        }
    }

    /// Owner-index lookup without promotion side effects (the facade's
    /// idempotent re-acquire probe).
    pub(crate) fn owner_vni(&self, owner: &VniOwner) -> Option<u16> {
        let (slot, key) = owner_slot(owner);
        self.idx.owners[slot].get(key).copied()
    }

    /// Quarantined-index size (valid after a sweep at the caller's
    /// clock).
    pub(crate) fn quarantined_count(&self) -> usize {
        self.idx.quarantined.len()
    }

    /// Free-set size.
    pub(crate) fn free_count(&self) -> usize {
        self.idx.free.len()
    }

    fn key(vni: u16) -> [u8; 2] {
        vni.to_be_bytes()
    }

    fn decode_row(bytes: &[u8]) -> VniRow {
        try_decode_row(bytes).expect("vnis rows decode (binary v1 or legacy JSON)")
    }

    /// Look up a row.
    pub fn row(&self, vni: Vni) -> Option<VniRow> {
        self.store.get(T_VNIS, &Self::key(vni.raw())).map(Self::decode_row)
    }

    /// All rows (diagnostics / recovery checks).
    pub fn rows(&self) -> Vec<VniRow> {
        self.store.scan(T_VNIS).map(|(_, v)| Self::decode_row(v)).collect()
    }

    /// Audit log length.
    pub fn audit_len(&self) -> usize {
        self.store.row_count(T_AUDIT)
    }

    /// Audit entries in order, as currently persisted. Prefer
    /// [`VniDb::audit_at`] when a simulation clock is in hand: this raw
    /// read does not sweep expired quarantines, so it may lag the state
    /// `acquire` would act on.
    pub fn audit(&self) -> Vec<AuditEntry> {
        self.store
            .scan(T_AUDIT)
            .map(|(_, v)| try_decode_audit(v).expect("audit rows decode"))
            .collect()
    }

    /// Consistent audit read at `now`: sweeps expired quarantines first,
    /// so the returned log contains a `quarantine_expire` entry for
    /// every VNI that `acquire` would already treat as free.
    pub fn audit_at(&mut self, now: SimTime) -> Vec<AuditEntry> {
        self.sweep_expired(now);
        self.audit()
    }

    /// JSON view of the full database state (rows, audit log, allocator
    /// counters) for diagnostics export. The hot tables are binary on
    /// disk; this is the human-readable escape hatch, and it is
    /// deterministic for a deterministic history.
    pub fn export_diagnostics(&self) -> serde_json::Value {
        serde_json::json!({
            "rows": self.rows(),
            "audit": self.audit(),
            "counters": self.counters,
        })
    }

    /// Find the VNI owned by `owner`, if any (idempotent re-sync path).
    /// An owner-index lookup plus one row fetch — no table scan.
    pub fn find_by_owner(&self, owner: &VniOwner) -> Option<VniRow> {
        let (slot, key) = owner_slot(owner);
        let vni = *self.idx.owners[slot].get(key)?;
        self.row(Vni(vni))
    }

    /// Bring the expired sets in line with `now`: every heap entry whose
    /// quarantine window has passed moves into the allocatable/sweepable
    /// sets, and — should `now` lie **before** an earlier promotion
    /// point — entries whose window has *not* passed at this clock are
    /// demoted back into the heap. Quarantine is therefore always judged
    /// against the caller's `now`, matching the old per-call scan
    /// predicate even for non-monotonic timestamps. Index-only: rows are
    /// untouched, so this is safe on paths that subsequently fail.
    fn promote_expired(&mut self, now: SimTime) {
        let q_ns = self.config.quarantine.as_nanos();
        if now.as_nanos() < self.idx.watermark_ns {
            let unexpired: Vec<(u16, u64)> = self
                .idx
                .expired
                .iter()
                .chain(self.idx.expired_out.iter())
                .filter_map(|vni| {
                    let rel = *self.idx.quarantined.get(vni)?;
                    (rel.saturating_add(q_ns) > now.as_nanos()).then_some((*vni, rel))
                })
                .collect();
            for (vni, rel) in unexpired {
                self.idx.expired.remove(&vni);
                self.idx.expired_out.remove(&vni);
                self.idx.expiry.push(Reverse((rel.saturating_add(q_ns), vni)));
            }
        }
        self.idx.watermark_ns = now.as_nanos();
        while let Some(&Reverse((expires_at, vni))) = self.idx.expiry.peek() {
            if expires_at > now.as_nanos() {
                break;
            }
            self.idx.expiry.pop();
            // Guard against a heap entry outliving its row (cannot happen
            // under the covered-once invariant, but cheap to enforce).
            if self.idx.quarantined.contains_key(&vni) {
                if self.config.range.contains(&vni) {
                    self.idx.expired.insert(vni);
                } else {
                    self.idx.expired_out.insert(vni);
                }
                self.counters.expiry_promotions += 1;
            }
        }
    }

    /// Atomically acquire a fresh VNI for `owner`: the minimum of the
    /// free set and the expired-quarantine set — the same VNI the range
    /// scan would have found, in O(log n). Check and insert happen in
    /// one transaction.
    pub fn acquire(&mut self, owner: VniOwner, now: SimTime) -> Result<Vni, VniDbError> {
        // Idempotency: an owner re-acquiring gets its existing VNI.
        {
            let (slot, key) = owner_slot(&owner);
            if let Some(&vni) = self.idx.owners[slot].get(key) {
                return Ok(Vni(vni));
            }
        }
        self.promote_expired(now);
        let vni = match (self.idx.free.first(), self.idx.expired.first()) {
            (Some(&f), Some(&e)) => f.min(e),
            (Some(&f), None) => f,
            (None, Some(&e)) => e,
            (None, None) => {
                self.counters.exhaustions += 1;
                return Err(VniDbError::Exhausted);
            }
        };
        let row = VniRow { vni, state: VniState::Allocated, owner, users: Vec::new() };
        let seq = self.next_audit_seq;
        let mut txn = self.store.begin();
        txn.put(T_VNIS, &Self::key(vni), &encode_row(&row));
        txn.put(
            T_AUDIT,
            &seq.to_be_bytes(),
            &encode_audit(&AuditEntry { at_ns: now.as_nanos(), event: "acquire".into(), vni }),
        );
        txn.commit();
        // Committed: fold the allocation into the indexes.
        if self.idx.free.remove(&vni) {
            self.counters.fresh_allocs += 1;
        } else {
            // Reused an expired quarantine row (overwritten by the put).
            self.idx.expired.remove(&vni);
            self.idx.quarantined.remove(&vni);
            self.counters.reuse_allocs += 1;
        }
        let (slot, key) = owner_slot(&row.owner);
        self.idx.owners[slot].insert(key.to_string(), vni);
        self.counters.acquires += 1;
        self.next_audit_seq += 1;
        Ok(Vni(vni))
    }

    /// Atomically release a VNI into quarantine.
    pub fn release(&mut self, vni: Vni, now: SimTime) -> Result<(), VniDbError> {
        let bytes = self.store.get(T_VNIS, &Self::key(vni.raw())).ok_or(VniDbError::NotFound)?;
        let mut row = Self::decode_row(bytes);
        if row.state != VniState::Allocated {
            return Err(VniDbError::NotFound);
        }
        row.state = VniState::Quarantined { released_at_ns: now.as_nanos() };
        row.users.clear();
        let seq = self.next_audit_seq;
        let mut txn = self.store.begin();
        txn.put(T_VNIS, &Self::key(vni.raw()), &encode_row(&row));
        txn.put(
            T_AUDIT,
            &seq.to_be_bytes(),
            &encode_audit(&AuditEntry {
                at_ns: now.as_nanos(),
                event: "release".into(),
                vni: vni.raw(),
            }),
        );
        txn.commit();
        let (slot, key) = owner_slot(&row.owner);
        self.idx.owners[slot].remove(key);
        self.idx.quarantined.insert(vni.raw(), now.as_nanos());
        self.idx
            .expiry
            .push(Reverse((now.as_nanos().saturating_add(self.config.quarantine.as_nanos()), vni.raw())));
        self.counters.releases += 1;
        self.next_audit_seq += 1;
        Ok(())
    }

    /// Find the VNI allocated to a claim by claim key (`ns/name`).
    pub fn find_by_claim(&self, claim_key: &str) -> Option<VniRow> {
        let vni = *self.idx.owners[SLOT_CLAIM].get(claim_key)?;
        self.row(Vni(vni))
    }

    /// Atomically add a user (a job key) to a claim-owned VNI.
    pub fn add_user(&mut self, vni: Vni, user: &str, now: SimTime) -> Result<(), VniDbError> {
        let bytes = self.store.get(T_VNIS, &Self::key(vni.raw())).ok_or(VniDbError::NotFound)?;
        let mut row = Self::decode_row(bytes);
        if row.state != VniState::Allocated {
            return Err(VniDbError::NotFound);
        }
        if !row.users.iter().any(|u| u == user) {
            row.users.push(user.to_string());
        }
        let seq = self.next_audit_seq;
        let mut txn = self.store.begin();
        txn.put(T_VNIS, &Self::key(vni.raw()), &encode_row(&row));
        txn.put(
            T_AUDIT,
            &seq.to_be_bytes(),
            &encode_audit(&AuditEntry {
                at_ns: now.as_nanos(),
                event: format!("add_user:{user}"),
                vni: vni.raw(),
            }),
        );
        txn.commit();
        self.counters.user_adds += 1;
        self.next_audit_seq += 1;
        Ok(())
    }

    /// Atomically remove a user; returns how many remain.
    pub fn remove_user(
        &mut self,
        vni: Vni,
        user: &str,
        now: SimTime,
    ) -> Result<usize, VniDbError> {
        let bytes = self.store.get(T_VNIS, &Self::key(vni.raw())).ok_or(VniDbError::NotFound)?;
        let mut row = Self::decode_row(bytes);
        if row.state != VniState::Allocated {
            return Err(VniDbError::NotFound);
        }
        row.users.retain(|u| u != user);
        let remaining = row.users.len();
        let seq = self.next_audit_seq;
        let mut txn = self.store.begin();
        txn.put(T_VNIS, &Self::key(vni.raw()), &encode_row(&row));
        txn.put(
            T_AUDIT,
            &seq.to_be_bytes(),
            &encode_audit(&AuditEntry {
                at_ns: now.as_nanos(),
                event: format!("remove_user:{user}"),
                vni: vni.raw(),
            }),
        );
        txn.commit();
        self.counters.user_removes += 1;
        self.next_audit_seq += 1;
        Ok(remaining)
    }

    /// Release a claim-owned VNI, refusing while users remain (§III-C2:
    /// "the deletion request is only granted once all users of the VNI
    /// claim have been removed").
    pub fn release_claim(&mut self, claim_key: &str, now: SimTime) -> Result<(), VniDbError> {
        let Some(row) = self.find_by_claim(claim_key) else {
            return Err(VniDbError::NotFound);
        };
        if !row.users.is_empty() {
            return Err(VniDbError::ClaimInUse);
        }
        self.release(Vni(row.vni), now)
    }

    /// Count of currently allocated VNIs — an index size, not a scan.
    pub fn allocated_count(&self) -> usize {
        self.idx.owners[SLOT_JOB].len() + self.idx.owners[SLOT_CLAIM].len()
    }

    /// Sweep quarantined rows whose window has passed: each is deleted
    /// (returning the VNI to the free pool) and a `quarantine_expire`
    /// audit entry is appended, all in one transaction. Returns the
    /// number of rows swept. Touches only actually-expired rows — the
    /// expiry heap finds them without decoding the table.
    ///
    /// Allocation has always *treated* expired rows as free; before this
    /// sweep existed, audit/stats readers still saw them as quarantined,
    /// so reported counts disagreed with what `acquire` would actually
    /// do. [`VniDb::stats`] calls this first for consistent reads.
    pub fn sweep_expired(&mut self, now: SimTime) -> usize {
        self.counters.sweeps += 1;
        self.promote_expired(now);
        if self.idx.expired.is_empty() && self.idx.expired_out.is_empty() {
            return 0;
        }
        // Ascending-VNI order, like the scan-based sweep appended.
        let expired: Vec<u16> = self
            .idx
            .expired
            .iter()
            .chain(self.idx.expired_out.iter())
            .copied()
            .collect::<BTreeSet<u16>>()
            .into_iter()
            .collect();
        let mut seq = self.next_audit_seq;
        let mut txn = self.store.begin();
        for &vni in &expired {
            txn.delete(T_VNIS, &Self::key(vni));
            txn.put(
                T_AUDIT,
                &seq.to_be_bytes(),
                &encode_audit(&AuditEntry {
                    at_ns: now.as_nanos(),
                    event: "quarantine_expire".into(),
                    vni,
                }),
            );
            seq += 1;
        }
        txn.commit();
        for &vni in &expired {
            self.idx.expired.remove(&vni);
            self.idx.expired_out.remove(&vni);
            self.idx.quarantined.remove(&vni);
            if self.config.range.contains(&vni) {
                self.idx.free.insert(vni);
            }
        }
        self.next_audit_seq = seq;
        self.counters.swept_rows += expired.len() as u64;
        expired.len()
    }

    /// Consistent occupancy split of the configured range at `now`.
    /// Sweeps expired quarantines first, so `quarantined` only counts
    /// VNIs that `acquire` would actually refuse — then the split is
    /// three index sizes, O(1).
    pub fn stats(&mut self, now: SimTime) -> VniDbStats {
        self.sweep_expired(now);
        VniDbStats {
            allocated: self.allocated_count(),
            quarantined: self.idx.quarantined.len(),
            free: self.idx.free.len(),
        }
    }

    /// Verify every index invariant against a full (slow) table scan.
    /// Diagnostics/tests only — the regression and oracle suites call
    /// this after every operation, including failed ones.
    pub fn check_index_consistency(&self) -> Result<(), String> {
        let mut want_owners: [BTreeMap<String, u16>; 2] = Default::default();
        let mut want_quar: BTreeMap<u16, u64> = BTreeMap::new();
        let mut present: BTreeSet<u16> = BTreeSet::new();
        for (_, bytes) in self.store.scan(T_VNIS) {
            let row = try_decode_row(bytes)
                .ok_or_else(|| "undecodable row in vnis table".to_string())?;
            present.insert(row.vni);
            match row.state {
                VniState::Allocated => {
                    let (slot, key) = owner_slot(&row.owner);
                    want_owners[slot].insert(key.to_string(), row.vni);
                }
                VniState::Quarantined { released_at_ns } => {
                    want_quar.insert(row.vni, released_at_ns);
                }
            }
        }
        let want_free: BTreeSet<u16> =
            self.config.range.clone().filter(|v| !present.contains(v)).collect();
        if self.idx.free != want_free {
            return Err(format!(
                "free index diverged: idx={:?} store={:?}",
                self.idx.free, want_free
            ));
        }
        if self.idx.owners != want_owners {
            return Err(format!(
                "owner index diverged: idx={:?} store={:?}",
                self.idx.owners, want_owners
            ));
        }
        if self.idx.quarantined != want_quar {
            return Err(format!(
                "quarantine index diverged: idx={:?} store={:?}",
                self.idx.quarantined, want_quar
            ));
        }
        // Covered-once: heap ∪ expired ∪ expired_out = quarantined keys,
        // with no VNI counted twice and heap deadlines matching rows.
        let q_ns = self.config.quarantine.as_nanos();
        let mut covered: BTreeSet<u16> =
            self.idx.expired.union(&self.idx.expired_out).copied().collect();
        if covered.len() != self.idx.expired.len() + self.idx.expired_out.len() {
            return Err("a VNI is in both expired sets".into());
        }
        for &Reverse((expires_at, vni)) in self.idx.expiry.iter() {
            let Some(&rel) = self.idx.quarantined.get(&vni) else {
                return Err(format!("stale heap entry for VNI {vni}"));
            };
            if rel.saturating_add(q_ns) != expires_at {
                return Err(format!("heap deadline mismatch for VNI {vni}"));
            }
            if !covered.insert(vni) {
                return Err(format!("VNI {vni} covered twice (heap + expired set)"));
            }
        }
        let quar_keys: BTreeSet<u16> = self.idx.quarantined.keys().copied().collect();
        if covered != quar_keys {
            return Err(format!(
                "quarantine coverage diverged: covered={covered:?} rows={quar_keys:?}"
            ));
        }
        // The cursor may run ahead of this database's own rows (as one
        // shard of a global sequence) but must never lag them; the
        // sharded facade's check restores full strictness by requiring
        // the union of shard keys to be contiguous.
        let min_next = self
            .store
            .scan(T_AUDIT)
            .last()
            .map_or(0, |(k, _)| {
                u64::from_be_bytes(k.try_into().expect("8-byte audit key")) + 1
            });
        if self.next_audit_seq < min_next {
            return Err(format!(
                "audit cursor lags persisted keys: next_audit_seq={} max key+1={}",
                self.next_audit_seq, min_next
            ));
        }
        Ok(())
    }
}

/// Occupancy of the VNI range as reported by [`VniDb::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VniDbStats {
    /// VNIs currently allocated to an owner.
    pub allocated: usize,
    /// VNIs inside an unexpired quarantine window.
    pub quarantined: usize,
    /// VNIs a fresh `acquire` could hand out.
    pub free: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> VniDb {
        VniDb::new(VniDbConfig { range: 1024..1030, quarantine: SimDur::from_secs(30) })
    }

    fn job(key: &str) -> VniOwner {
        VniOwner::Job { key: key.to_string() }
    }

    #[test]
    fn acquire_hands_out_distinct_vnis() {
        let mut db = db();
        let a = db.acquire(job("ns/a"), SimTime::ZERO).unwrap();
        let b = db.acquire(job("ns/b"), SimTime::ZERO).unwrap();
        assert_ne!(a, b);
        assert_eq!(db.allocated_count(), 2);
        assert_eq!(db.audit_len(), 2);
    }

    #[test]
    fn acquire_is_idempotent_per_owner() {
        let mut db = db();
        let a1 = db.acquire(job("ns/a"), SimTime::ZERO).unwrap();
        let a2 = db.acquire(job("ns/a"), SimTime::ZERO).unwrap();
        assert_eq!(a1, a2);
        assert_eq!(db.allocated_count(), 1);
    }

    #[test]
    fn quarantine_blocks_reuse_for_thirty_seconds() {
        let mut db = db();
        // Exhaust the 6-wide range.
        for i in 0..6 {
            db.acquire(job(&format!("ns/j{i}")), SimTime::ZERO).unwrap();
        }
        assert_eq!(db.acquire(job("ns/late"), SimTime::ZERO).unwrap_err(), VniDbError::Exhausted);
        // Release one at t=10s.
        db.release(Vni(1024), SimTime::from_nanos(10_000_000_000)).unwrap();
        // 29.9s after release: still quarantined.
        let t_early = SimTime::from_nanos(39_900_000_000);
        assert_eq!(db.acquire(job("ns/late"), t_early).unwrap_err(), VniDbError::Exhausted);
        // 30s after release: reusable.
        let t_ok = SimTime::from_nanos(40_000_000_000);
        assert_eq!(db.acquire(job("ns/late"), t_ok).unwrap(), Vni(1024));
    }

    #[test]
    fn release_requires_allocated_state() {
        let mut db = db();
        assert_eq!(db.release(Vni(1024), SimTime::ZERO).unwrap_err(), VniDbError::NotFound);
        db.acquire(job("ns/a"), SimTime::ZERO).unwrap();
        db.release(Vni(1024), SimTime::ZERO).unwrap();
        assert_eq!(db.release(Vni(1024), SimTime::ZERO).unwrap_err(), VniDbError::NotFound);
    }

    #[test]
    fn claim_users_lifecycle() {
        let mut db = db();
        let claim = VniOwner::Claim { key: "ns/shared".into() };
        let v = db.acquire(claim, SimTime::ZERO).unwrap();
        db.add_user(v, "ns/job1", SimTime::ZERO).unwrap();
        db.add_user(v, "ns/job2", SimTime::ZERO).unwrap();
        db.add_user(v, "ns/job1", SimTime::ZERO).unwrap(); // idempotent
        assert_eq!(db.row(v).unwrap().users.len(), 2);
        // Deletion stalls while users remain.
        assert_eq!(
            db.release_claim("ns/shared", SimTime::ZERO).unwrap_err(),
            VniDbError::ClaimInUse
        );
        assert_eq!(db.remove_user(v, "ns/job1", SimTime::ZERO).unwrap(), 1);
        assert_eq!(db.remove_user(v, "ns/job2", SimTime::ZERO).unwrap(), 0);
        db.release_claim("ns/shared", SimTime::ZERO).unwrap();
        assert_eq!(db.allocated_count(), 0);
    }

    #[test]
    fn find_by_claim_resolves_redemption() {
        let mut db = db();
        let v = db
            .acquire(VniOwner::Claim { key: "tenant/experiment".into() }, SimTime::ZERO)
            .unwrap();
        let row = db.find_by_claim("tenant/experiment").unwrap();
        assert_eq!(row.vni, v.raw());
        assert!(db.find_by_claim("tenant/other").is_none());
    }

    #[test]
    fn audit_log_records_every_operation() {
        let mut db = db();
        let v = db.acquire(job("ns/a"), SimTime::ZERO).unwrap();
        db.add_user(v, "u", SimTime::ZERO).unwrap();
        db.remove_user(v, "u", SimTime::ZERO).unwrap();
        db.release(v, SimTime::ZERO).unwrap();
        let events: Vec<String> = db.audit().into_iter().map(|e| e.event).collect();
        assert_eq!(events, vec!["acquire", "add_user:u", "remove_user:u", "release"]);
    }

    #[test]
    fn stats_sweep_expires_stale_quarantines_consistently() {
        let mut db = db();
        db.acquire(job("ns/a"), SimTime::ZERO).unwrap();
        db.acquire(job("ns/b"), SimTime::ZERO).unwrap();
        db.release(Vni(1024), SimTime::from_nanos(5_000_000_000)).unwrap();
        // Inside the window: reported as quarantined, nothing swept.
        let s = db.stats(SimTime::from_nanos(10_000_000_000));
        assert_eq!((s.allocated, s.quarantined, s.free), (1, 1, 4));
        // Regression: before the sweep existed, a stats/audit read after
        // the window still reported the row as quarantined even though
        // acquire() would have handed it out.
        let s = db.stats(SimTime::from_nanos(35_000_000_000));
        assert_eq!((s.allocated, s.quarantined, s.free), (1, 0, 5));
        // audit_at is the consistent audit read; here it sweeps nothing
        // further but returns the expire entry stats() just recorded.
        let events: Vec<String> =
            db.audit_at(SimTime::from_nanos(35_000_000_000)).into_iter().map(|e| e.event).collect();
        assert_eq!(
            events,
            vec!["acquire", "acquire", "release", "quarantine_expire"],
            "the sweep is visible in the audit log"
        );
        // The swept VNI is genuinely free again.
        assert_eq!(
            db.acquire(job("ns/c"), SimTime::from_nanos(35_000_000_000)).unwrap(),
            Vni(1024)
        );
        // Idempotent: a second read sweeps nothing further.
        assert_eq!(db.sweep_expired(SimTime::from_nanos(36_000_000_000)), 0);
    }

    #[test]
    fn state_survives_crash_recovery() {
        let mut db = db();
        let v = db.acquire(job("ns/a"), SimTime::ZERO).unwrap();
        db.add_user(v, "u", SimTime::ZERO).unwrap();
        let mut rng = shs_des::DetRng::new(4);
        let disk = db.into_store().crash(&mut rng);
        let db2 = VniDb::recover(
            disk,
            VniDbConfig { range: 1024..1030, quarantine: SimDur::from_secs(30) },
        );
        let row = db2.row(v).unwrap();
        assert_eq!(row.state, VniState::Allocated);
        assert_eq!(row.users, vec!["u".to_string()]);
        assert_eq!(db2.audit_len(), 2);
        db2.check_index_consistency().expect("rebuilt indexes agree with the store");
    }

    #[test]
    fn row_codec_roundtrips_every_shape() {
        let rows = [
            VniRow {
                vni: 1024,
                state: VniState::Allocated,
                owner: VniOwner::Job { key: "ns/j".into() },
                users: vec![],
            },
            VniRow {
                vni: 4095,
                state: VniState::Quarantined { released_at_ns: u64::MAX },
                owner: VniOwner::Claim { key: "".into() },
                users: vec!["a/b".into(), "c/d".into()],
            },
        ];
        for row in rows {
            assert_eq!(try_decode_row(&encode_row(&row)), Some(row));
        }
        let entry = AuditEntry { at_ns: 7, event: "add_user:n/x".into(), vni: 2048 };
        assert_eq!(try_decode_audit(&encode_audit(&entry)), Some(entry));
    }

    #[test]
    fn row_codec_rejects_truncation_and_accepts_legacy_json() {
        let row = VniRow {
            vni: 1500,
            state: VniState::Quarantined { released_at_ns: 123 },
            owner: VniOwner::Job { key: "t/j".into() },
            users: vec!["u1".into()],
        };
        let bytes = encode_row(&row);
        for cut in 0..bytes.len() {
            assert_eq!(try_decode_row(&bytes[..cut]), None, "truncated at {cut}");
        }
        // Trailing garbage is rejected too (off must land exactly at end).
        let mut long = bytes.clone();
        long.push(0);
        assert_eq!(try_decode_row(&long), None);
        // A legacy JSON row still decodes.
        let json = serde_json::to_vec(&row).unwrap();
        assert_eq!(try_decode_row(&json), Some(row));
    }

    #[test]
    fn counters_track_allocation_sources() {
        let mut db = db();
        let v = db.acquire(job("ns/a"), SimTime::ZERO).unwrap();
        db.release(v, SimTime::ZERO).unwrap();
        // Reuse after expiry: the same VNI comes back from the expired set.
        let t = SimTime::from_nanos(31_000_000_000);
        assert_eq!(db.acquire(job("ns/b"), t).unwrap(), v);
        let c = db.counters();
        assert_eq!((c.acquires, c.fresh_allocs, c.reuse_allocs), (2, 1, 1));
        assert_eq!((c.releases, c.expiry_promotions), (1, 1));
        // Exhaustion counts, and failed acquires leave indexes intact.
        let mut tiny = VniDb::new(VniDbConfig {
            range: 2000..2001,
            quarantine: SimDur::from_secs(30),
        });
        tiny.acquire(job("t/a"), SimTime::ZERO).unwrap();
        assert!(tiny.acquire(job("t/b"), SimTime::ZERO).is_err());
        assert_eq!(tiny.counters().exhaustions, 1);
        tiny.check_index_consistency().unwrap();
    }

    #[test]
    fn export_diagnostics_is_json_with_rows_audit_counters() {
        let mut db = db();
        let v = db.acquire(job("ns/a"), SimTime::ZERO).unwrap();
        db.add_user(v, "u", SimTime::ZERO).unwrap();
        let diag = db.export_diagnostics();
        assert_eq!(diag["rows"].as_array().unwrap().len(), 1);
        assert_eq!(diag["audit"].as_array().unwrap().len(), 2);
        assert_eq!(diag["counters"]["acquires"].as_u64(), Some(1));
        // Deterministic for a deterministic history.
        let twice = db.export_diagnostics();
        assert_eq!(
            serde_json::to_string_pretty(&diag).unwrap(),
            serde_json::to_string_pretty(&twice).unwrap()
        );
    }

    #[test]
    fn quarantine_is_judged_against_the_callers_clock_even_backwards() {
        // The public API takes arbitrary SimTimes. A late observation
        // must not leave a VNI marked reusable for an earlier caller:
        // the scan allocator re-evaluated expiry per call, and the
        // indexed one must match (regression for sticky promotion).
        let mut db = VniDb::new(VniDbConfig {
            range: 2048..2051,
            quarantine: SimDur::from_secs(30),
        });
        let t = |s: u64| SimTime::from_nanos(s * 1_000_000_000);
        let a = db.acquire(job("ns/a"), t(0)).unwrap();
        let b = db.acquire(job("ns/b"), t(0)).unwrap();
        assert_eq!((a, b), (Vni(2048), Vni(2049)));
        db.release(a, t(0)).unwrap();
        db.release(b, t(0)).unwrap();
        // An acquire far past the window promotes BOTH expired entries
        // but allocates only the lower one — 2049 stays promoted.
        assert_eq!(db.acquire(job("ns/c"), t(100)).unwrap(), Vni(2048));
        // Clock rewinds to t=10s, inside 2049's window: the allocator
        // must demote it and hand out the genuinely free 2050 instead.
        assert_eq!(db.acquire(job("ns/d"), t(10)).unwrap(), Vni(2050));
        db.check_index_consistency().unwrap();
        // A sweep at the earlier clock must not delete the unexpired row
        // or log a premature quarantine_expire.
        assert_eq!(db.sweep_expired(t(10)), 0);
        assert_eq!(db.stats(t(10)).quarantined, 1, "2049 is still quarantined at t=10");
        assert_eq!(
            db.acquire(job("ns/e"), t(10)).unwrap_err(),
            VniDbError::Exhausted,
            "nothing allocatable at t=10"
        );
        db.check_index_consistency().unwrap();
        // Once the clock genuinely passes the window, 2049 comes back.
        assert_eq!(db.acquire(job("ns/e"), t(30)).unwrap(), Vni(2049));
        db.check_index_consistency().unwrap();
    }

    #[test]
    fn indexes_stay_consistent_through_a_lifecycle() {
        let mut db = db();
        let t = |s: u64| SimTime::from_nanos(s * 1_000_000_000);
        let claim = VniOwner::Claim { key: "ns/c".into() };
        let v = db.acquire(claim, t(0)).unwrap();
        db.check_index_consistency().unwrap();
        db.add_user(v, "ns/u", t(1)).unwrap();
        db.check_index_consistency().unwrap();
        assert!(db.release_claim("ns/c", t(2)).is_err());
        db.check_index_consistency().unwrap();
        db.remove_user(v, "ns/u", t(3)).unwrap();
        db.release_claim("ns/c", t(4)).unwrap();
        db.check_index_consistency().unwrap();
        db.sweep_expired(t(35));
        db.check_index_consistency().unwrap();
        assert_eq!(db.stats(t(35)), VniDbStats { allocated: 0, quarantined: 0, free: 6 });
    }
}
