//! The CXI CNI plugin (§III-B) and the node-side plugin chain.
//!
//! The plugin is deployed *chained* after the primary network plugin. On
//! ADD it (1) extracts the container's network-namespace inode, (2)
//! fetches the job's VNI from the VNI CRD instance in the management
//! plane, and (3) creates a CXI service whose sole member is that netns,
//! realising the virtual network on the node's switch port. On DEL it
//! destroys every CXI service associated with the container and retires
//! unused fabric grants. Containers without the `vni` annotation are
//! untouched.

use shs_cni::{CniArgs, CniCommand, CniError, CniPlugin, CniResult, HasHost};
use shs_cxi::{CxiDevice, CxiServiceDesc, SvcMember};
use shs_des::SimDur;
use shs_fabric::{Fabric, NicAddr, Vni};
use shs_k8s::{kinds, spec_of, ApiServer, PodSpec, VNI_ANNOTATION};
use shs_oslinux::{Creds, Host};

use crate::endpoint::{VniCrdSpec, VniEndpoint};

/// Maximum termination grace period the plugin accepts for VNI pods
/// (§III-C1: the 30 s quarantine bound is only safe if no pod outlives
/// its job by more than 30 s).
pub const MAX_GRACE_SECS: u64 = 30;

/// The per-invocation node context the CNI chain operates on.
pub struct NodeCniCtx<'a> {
    /// The node kernel.
    pub host: &'a mut Host,
    /// The node's CXI device (driver + NIC).
    pub device: &'a mut CxiDevice,
    /// The fabric (switch-port VNI realization).
    pub fabric: &'a mut Fabric,
    /// Read-only view of the management plane.
    pub api: &'a ApiServer,
    /// The node's NIC address.
    pub nic: NicAddr,
    /// Credentials the plugin runs with (CNI plugins execute privileged).
    pub root: Creds,
}

impl HasHost for NodeCniCtx<'_> {
    fn host_mut(&mut self) -> &mut Host {
        self.host
    }
}

/// Object-safe plugin interface specialised to [`NodeCniCtx`] (the
/// generic `shs_cni::CniPlugin<C>` cannot be boxed over a borrowed
/// context type; this trait quantifies the lifetime per call). Unlike
/// the generic trait, verbs return the *actual* cost of the invocation:
/// a no-op CXI ADD (pod without the `vni` annotation) is much cheaper
/// than one that fetches the VNI CRD and programs a service — the cost
/// asymmetry behind the paper's vni:true admission overhead.
pub trait NodeCniPlugin {
    /// Plugin type name.
    fn kind(&self) -> &str;
    /// ADD verb; returns (result, cost) or (error, cost-paid).
    fn add(
        &mut self,
        ctx: &mut NodeCniCtx<'_>,
        args: &CniArgs,
        prev: CniResult,
    ) -> Result<(CniResult, SimDur), (CniError, SimDur)>;
    /// DEL verb (idempotent); returns the cost paid.
    fn del(&mut self, ctx: &mut NodeCniCtx<'_>, args: &CniArgs) -> (Result<(), CniError>, SimDur);
}

/// Every generic CNI plugin usable with [`NodeCniCtx`] is a node plugin
/// (covers the reference bridge plugin), with its static cost model.
impl<P> NodeCniPlugin for P
where
    P: for<'a> CniPlugin<NodeCniCtx<'a>>,
{
    fn kind(&self) -> &str {
        CniPlugin::kind(self)
    }
    fn add(
        &mut self,
        ctx: &mut NodeCniCtx<'_>,
        args: &CniArgs,
        prev: CniResult,
    ) -> Result<(CniResult, SimDur), (CniError, SimDur)> {
        let cost = CniPlugin::cost(self, CniCommand::Add);
        CniPlugin::add(self, ctx, args, prev).map(|r| (r, cost)).map_err(|e| (e, cost))
    }
    fn del(&mut self, ctx: &mut NodeCniCtx<'_>, args: &CniArgs) -> (Result<(), CniError>, SimDur) {
        (CniPlugin::del(self, ctx, args), CniPlugin::cost(self, CniCommand::Del))
    }
}

/// The node's configured plugin chain (conflist order), with libcni
/// semantics: ADD threads `prevResult` and rolls back on failure, DEL
/// runs in reverse and is best-effort.
#[derive(Default)]
pub struct NodeChain {
    plugins: Vec<Box<dyn NodeCniPlugin>>,
}

impl NodeChain {
    /// Empty chain.
    pub fn new() -> Self {
        NodeChain::default()
    }

    /// Append a plugin.
    pub fn push(&mut self, p: Box<dyn NodeCniPlugin>) -> &mut Self {
        self.plugins.push(p);
        self
    }

    /// Plugin kinds in order.
    pub fn kinds(&self) -> Vec<&str> {
        self.plugins.iter().map(|p| p.kind()).collect()
    }

    /// Chained ADD.
    pub fn add(
        &mut self,
        ctx: &mut NodeCniCtx<'_>,
        args: &CniArgs,
    ) -> Result<(CniResult, SimDur), (CniError, SimDur)> {
        let mut result = CniResult::default();
        let mut cost = SimDur::ZERO;
        for i in 0..self.plugins.len() {
            match self.plugins[i].add(ctx, args, result.clone()) {
                Ok((r, c)) => {
                    result = r;
                    cost += c;
                }
                Err((e, c)) => {
                    cost += c;
                    for j in (0..=i).rev() {
                        let (_, c) = self.plugins[j].del(ctx, args);
                        cost += c;
                    }
                    return Err((e, cost));
                }
            }
        }
        Ok((result, cost))
    }

    /// Chained DEL (reverse order, all plugins attempted).
    pub fn del(&mut self, ctx: &mut NodeCniCtx<'_>, args: &CniArgs) -> SimDur {
        let mut cost = SimDur::ZERO;
        for p in self.plugins.iter_mut().rev() {
            let (_, c) = p.del(ctx, args);
            cost += c;
        }
        cost
    }
}

/// CXI CNI plugin timing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CxiCniParams {
    /// One management-plane query (HTTP GET against the API server).
    pub api_query: SimDur,
    /// CXI service creation via the driver (+ fabric grant).
    pub svc_create: SimDur,
    /// CXI service destruction.
    pub svc_destroy: SimDur,
    /// Plugin exec overhead per invocation (binary spawn + config parse).
    pub exec: SimDur,
}

impl Default for CxiCniParams {
    fn default() -> Self {
        CxiCniParams {
            api_query: SimDur::from_millis(5),
            svc_create: SimDur::from_millis(2),
            svc_destroy: SimDur::from_millis(2),
            exec: SimDur::from_millis(10),
        }
    }
}

/// The plugin.
#[derive(Debug, Default)]
pub struct CxiCniPlugin {
    params: CxiCniParams,
    /// ADDs that configured Slingshot access.
    pub adds: u64,
    /// DELs that removed at least one CXI service.
    pub dels: u64,
    /// No-op invocations (pods without the annotation).
    pub noops: u64,
}

impl CxiCniPlugin {
    /// Plugin with explicit timing.
    pub fn new(params: CxiCniParams) -> Self {
        CxiCniPlugin { params, ..Default::default() }
    }

    /// Label attached to CXI services owned by a container.
    fn label_for(container_id: &str) -> String {
        format!("cni:{container_id}")
    }
}

impl NodeCniPlugin for CxiCniPlugin {
    fn kind(&self) -> &str {
        "cxi"
    }

    fn add(
        &mut self,
        ctx: &mut NodeCniCtx<'_>,
        args: &CniArgs,
        mut prev: CniResult,
    ) -> Result<(CniResult, SimDur), (CniError, SimDur)> {
        // Exec + the pod-annotation query happen on every invocation.
        let mut cost = self.params.exec + self.params.api_query;
        // (0) Which pod is this? The runtime passes the pod reference.
        let Some(pod_ref) = &args.pod else {
            self.noops += 1;
            return Ok((prev, self.params.exec)); // non-Kubernetes container
        };
        let Some(pod) = ctx.api.get(kinds::POD, &pod_ref.namespace, &pod_ref.name) else {
            return Err((CniError::invalid_environment("pod not found in API"), cost));
        };
        // (1) Only act when the pod requests CXI capabilities (§III-B:
        // "Our CNI plugin only creates new CXI services if requested by
        // the calling container via annotations").
        let Some(_ann) = pod.annotation(VNI_ANNOTATION) else {
            self.noops += 1;
            return Ok((prev, cost));
        };
        // (2) Enforce the termination grace period bound (§III-C1).
        let spec: PodSpec = spec_of(pod);
        if spec.termination_grace_period_secs > MAX_GRACE_SECS {
            return Err((
                CniError::plugin(
                    120,
                    format!(
                        "terminationGracePeriodSeconds {} exceeds the {MAX_GRACE_SECS}s bound \
                         required for safe VNI recycling",
                        spec.termination_grace_period_secs
                    ),
                ),
                cost,
            ));
        }
        // (3) Fetch the VNI from the job's VNI CRD instance (second query).
        cost += self.params.api_query;
        let Some(job) = &spec.job_name else {
            return Err((CniError::invalid_config("vni annotation on a job-less pod"), cost));
        };
        let crd_name = VniEndpoint::child_name_for_job(job);
        let Some(crd) = ctx.api.get(kinds::VNI, &pod_ref.namespace, &crd_name) else {
            // VNI not (yet) acquired: the pod must not launch (§III-B).
            // The kubelet treats "try again" as a retriable failure.
            return Err((CniError::try_again(format!("VNI CRD {crd_name} not present")), cost));
        };
        let crd_spec: VniCrdSpec = match serde_json::from_value(crd.spec.clone()) {
            Ok(s) => s,
            Err(e) => return Err((CniError::decoding(format!("bad VNI CRD: {e}")), cost)),
        };
        let vni = Vni(crd_spec.vni);
        // (4) Create the CXI service for exactly this netns.
        cost += self.params.svc_create;
        let desc = CxiServiceDesc {
            members: vec![SvcMember::NetNs(args.netns)],
            vnis: vec![vni],
            limits: Default::default(),
            label: Self::label_for(&args.container_id),
        };
        let svc = match ctx.device.alloc_svc(&ctx.root, desc) {
            Ok(id) => id,
            Err(e) => {
                return Err((CniError::plugin(121, format!("CXI service creation: {e}")), cost))
            }
        };
        // (5) Realise the VNI on the wire (fabric-manager grant). An
        // unknown NIC means the node is miswired — fail the ADD (undoing
        // the service) rather than launching a pod with no network.
        let NodeCniCtx { device, fabric, root, nic, .. } = ctx;
        if let Err(e) = fabric.grant_vni(*nic, vni) {
            // Undo exactly the service this ADD created (a label match
            // could also sweep a healthy sibling left by a retried ADD).
            cost += self.params.svc_destroy;
            let msg = match device.driver.svc_destroy(root, svc, &mut device.nic) {
                Ok(_) => format!("fabric VNI grant: {e}"),
                Err(undo) => {
                    format!("fabric VNI grant: {e}; service rollback also failed: {undo}")
                }
            };
            return Err((CniError::plugin(123, msg), cost));
        }
        self.adds += 1;
        prev.extensions.insert("cxi/vni".into(), serde_json::json!(vni.raw()));
        prev.extensions.insert("cxi/service".into(), serde_json::json!(svc.0));
        Ok((prev, cost))
    }

    fn del(&mut self, ctx: &mut NodeCniCtx<'_>, args: &CniArgs) -> (Result<(), CniError>, SimDur) {
        let mut cost = self.params.exec;
        let label = Self::label_for(&args.container_id);
        // Collect VNIs used by the doomed services before removal.
        let vnis: Vec<Vni> = ctx
            .device
            .driver
            .services()
            .iter()
            .filter(|s| s.label == label)
            .flat_map(|s| s.vnis.clone())
            .collect();
        let NodeCniCtx { device, fabric, root, nic, .. } = ctx;
        let destroyed = match device
            .driver
            .svc_destroy_matching(root, &mut device.nic, |s| s.label == label)
        {
            Ok(d) => d,
            Err(e) => {
                return (
                    Err(CniError::plugin(122, format!("CXI service destroy: {e}"))),
                    cost,
                )
            }
        };
        if !destroyed.is_empty() {
            self.dels += 1;
            cost += self.params.svc_destroy;
        }
        // Retire fabric grants no longer referenced by any service.
        for vni in vnis {
            let still_used = device
                .driver
                .services()
                .iter()
                .any(|s| s.vnis.contains(&vni));
            if !still_used && vni != Vni::GLOBAL {
                fabric.revoke_vni(*nic, vni);
            }
        }
        (Ok(()), cost)
    }
}

impl CxiCniPlugin {
    /// CHECK verb: verify a CXI service exists for annotated pods.
    pub fn check(&self, ctx: &NodeCniCtx<'_>, args: &CniArgs) -> Result<(), CniError> {
        let label = Self::label_for(&args.container_id);
        let has = ctx.device.driver.services().iter().any(|s| s.label == label);
        // Pods without the annotation legitimately have no service; CHECK
        // passes when either no annotation or a service exists.
        let Some(pod_ref) = &args.pod else { return Ok(()) };
        let annotated = ctx
            .api
            .get(kinds::POD, &pod_ref.namespace, &pod_ref.name)
            .and_then(|p| p.annotation(VNI_ANNOTATION))
            .is_some();
        if annotated && !has {
            return Err(CniError::invalid_environment("CXI service missing"));
        }
        Ok(())
    }
}
