//! The sharded VNI control plane: N independent [`VniDb`] stores behind
//! one facade that preserves the single-store API, allocation order,
//! and audit semantics **exactly**.
//!
//! # Directory
//!
//! The configured VNI range is partitioned into N contiguous sub-ranges
//! (ascending by shard id) — a range-based directory, so `vni → shard`
//! is a lookup and cross-shard "rebalancing" needs no row movement:
//! when a shard's sub-range exhausts, allocation simply overflows to the
//! next shard holding the global minimum (see below). Tenants also get
//! a *home shard* by key hash; that only steers lookup probe order
//! (`find_by_owner`/`find_by_claim` try the home shard first), never
//! placement, so it cannot perturb determinism.
//!
//! # Why allocation is global-min, not hash-local
//!
//! A naive hash-by-tenant allocator would hand out each shard's local
//! minimum, so the *values* of allocated VNIs would depend on the shard
//! count — and every downstream report (`JobTraffic.vni`, the audit
//! log) would differ between `--shards 1` and `--shards 4`. Instead the
//! facade asks every shard for the VNI its `acquire` *would* hand out
//! (`VniDb::peek_min_allocatable`, an O(log n) index peek) and routes
//! the acquire to the shard owning the global minimum — the same VNI a
//! single store over the whole range would pick. Scenario reports are
//! therefore **byte-identical at any shard count** (integration-tested
//! and property-tested against a single-store oracle in
//! `tests/vni_sharded_oracle.rs`).
//!
//! # Global audit sequence
//!
//! Each shard persists audit rows under *global* sequence keys: the
//! facade owns the cursor and threads it through the owning shard
//! around every mutating operation, so the merged log
//! ([`ShardedVniDb::audit`], a k-way merge by key) is byte-identical to
//! the single-store log. [`ShardedVniDb::check_index_consistency`]
//! verifies every per-shard invariant plus global contiguity of the
//! sequence.
//!
//! # Group commit
//!
//! [`ShardedVniDb::group_begin`]/[`ShardedVniDb::group_flush`] put
//! every shard's store into group-commit mode: commits inside a window
//! apply immediately but share one batched WAL record and one fsync per
//! shard per flush (`shs_vnistore`'s `Batch` framing, all-or-nothing
//! under crashes).

use std::ops::Range;

use shs_des::{SimDur, SimTime};
use shs_fabric::Vni;
use shs_vnistore::SimDisk;

use crate::vni_db::{
    AuditEntry, VniDb, VniDbConfig, VniDbCounters, VniDbError, VniDbStats, VniOwner, VniRow,
};

/// Split a VNI range into `n` contiguous sub-ranges, ascending, sizes
/// balanced to within one.
fn partition(range: &Range<u16>, n: usize) -> Vec<Range<u16>> {
    let len = (range.end - range.start) as usize;
    let (base, rem) = (len / n, len % n);
    let mut out = Vec::with_capacity(n);
    let mut start = range.start;
    for i in 0..n {
        let end = start + (base + usize::from(i < rem)) as u16;
        out.push(start..end);
        start = end;
    }
    out
}

/// N independent VNI stores behind the single-store API. See the module
/// docs for the equivalence contract.
#[derive(Debug)]
pub struct ShardedVniDb {
    shards: Vec<VniDb>,
    /// Shard id → its contiguous VNI sub-range (the directory).
    ranges: Vec<Range<u16>>,
    config: VniDbConfig,
    /// The global audit cursor (shards persist keys from this sequence).
    next_audit_seq: u64,
    /// Logical transactions: one per successful facade-level operation,
    /// regardless of how many per-shard store commits it decomposed
    /// into. Equals the store commit count at one shard.
    logical_txns: u64,
    /// Facade-level sweep count (each logical sweep visits every shard).
    sweeps: u64,
    /// Facade-level exhaustion count (a shard is never asked to acquire
    /// from an empty global pool, so shard counters stay zero).
    exhaustions: u64,
}

impl ShardedVniDb {
    /// Fresh sharded database over `shards` stores (min 1).
    pub fn new(config: VniDbConfig, shards: usize) -> Self {
        let n = shards.max(1);
        let ranges = partition(&config.range, n);
        let shards = ranges
            .iter()
            .map(|r| {
                VniDb::new(VniDbConfig { range: r.clone(), quarantine: config.quarantine })
            })
            .collect();
        ShardedVniDb {
            shards,
            ranges,
            config,
            next_audit_seq: 0,
            logical_txns: 0,
            sweeps: 0,
            exhaustions: 0,
        }
    }

    /// Wrap an existing single-store database as a 1-shard facade
    /// (API-compatibility path for callers constructing a [`VniDb`]).
    pub fn from_single(db: VniDb) -> Self {
        let config = db.config().clone();
        let c = db.counters();
        ShardedVniDb {
            next_audit_seq: db.audit_seq(),
            logical_txns: db.txn_count(),
            sweeps: c.sweeps,
            exhaustions: c.exhaustions,
            ranges: vec![config.range.clone()],
            config,
            shards: vec![db],
        }
    }

    /// Recover from per-shard device images (same shard layout as the
    /// run that produced them: `disks.len()` shards over the same
    /// range). The global cursor resumes past the highest key on any
    /// shard.
    pub fn recover(disks: Vec<SimDisk>, config: VniDbConfig) -> Self {
        let n = disks.len().max(1);
        let ranges = partition(&config.range, n);
        let shards: Vec<VniDb> = disks
            .into_iter()
            .zip(ranges.iter())
            .map(|(disk, r)| {
                VniDb::recover(
                    disk,
                    VniDbConfig { range: r.clone(), quarantine: config.quarantine },
                )
            })
            .collect();
        let next_audit_seq = shards.iter().map(|s| s.audit_seq()).max().unwrap_or(0);
        ShardedVniDb {
            shards,
            ranges,
            config,
            next_audit_seq,
            logical_txns: 0,
            sweeps: 0,
            exhaustions: 0,
        }
    }

    /// Crash every shard's store (in shard-id order, sharing the rng),
    /// returning the surviving device images for [`ShardedVniDb::recover`].
    pub fn crash(self, rng: &mut shs_des::DetRng) -> Vec<SimDisk> {
        self.shards.into_iter().map(|s| s.into_store().crash(rng)).collect()
    }

    /// Cleanly stop every shard, returning synced device images.
    pub fn into_disks(self) -> Vec<SimDisk> {
        self.shards.into_iter().map(|s| s.into_store().shutdown()).collect()
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The configured quarantine window.
    pub fn quarantine(&self) -> SimDur {
        self.config.quarantine
    }

    /// Directory lookup: the shard whose sub-range contains `vni`
    /// (clamped to the nearest end shard for out-of-range values, which
    /// preserves global ordering of merged views).
    fn shard_of(&self, vni: u16) -> usize {
        self.ranges
            .iter()
            .position(|r| r.contains(&vni))
            .unwrap_or(if vni < self.config.range.start { 0 } else { self.shards.len() - 1 })
    }

    /// The shard actually holding a row for `vni`: directory first, then
    /// a fallback probe (a recovered image may hold rows outside the
    /// current range on any shard).
    fn shard_holding(&self, vni: u16) -> Option<usize> {
        let dir = self.shard_of(vni);
        if self.shards[dir].row(Vni(vni)).is_some() {
            return Some(dir);
        }
        (0..self.shards.len()).find(|&i| i != dir && self.shards[i].row(Vni(vni)).is_some())
    }

    /// Deterministic home shard for a tenant key (FNV-1a) — lookup probe
    /// order only, never placement.
    fn home_shard(&self, key: &str) -> usize {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in key.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0100_0000_01b3);
        }
        (h % self.shards.len() as u64) as usize
    }

    // ---- Group commit ----------------------------------------------------

    /// Enter group-commit mode on every shard's store.
    pub fn group_begin(&mut self) {
        for s in &mut self.shards {
            s.group_begin();
        }
    }

    /// Flush every shard's open batch: one batched WAL record + one
    /// fsync per shard with pending commits.
    pub fn group_flush(&mut self) {
        for s in &mut self.shards {
            s.group_flush();
        }
    }

    /// Flush and leave group-commit mode on every shard.
    pub fn group_end(&mut self) {
        for s in &mut self.shards {
            s.group_end();
        }
    }

    // ---- Mutating operations (global-min + threaded audit cursor) -------

    /// Acquire the globally minimal allocatable VNI for `owner` — the
    /// same VNI a single store over the whole range would hand out.
    pub fn acquire(&mut self, owner: VniOwner, now: SimTime) -> Result<Vni, VniDbError> {
        // Idempotency first, like the single store: a re-acquiring owner
        // gets its VNI back without touching promotion watermarks.
        if let Some(vni) = self.shards.iter().find_map(|s| s.owner_vni(&owner)) {
            return Ok(Vni(vni));
        }
        // Probe every shard (promoting expired quarantines at `now`,
        // exactly as one store would across the whole range) and route
        // to the global minimum.
        let mut best: Option<(u16, usize)> = None;
        for (i, s) in self.shards.iter_mut().enumerate() {
            if let Some(v) = s.peek_min_allocatable(now) {
                if best.is_none_or(|(bv, _)| v < bv) {
                    best = Some((v, i));
                }
            }
        }
        let Some((_, si)) = best else {
            self.exhaustions += 1;
            return Err(VniDbError::Exhausted);
        };
        let shard = &mut self.shards[si];
        shard.set_audit_seq(self.next_audit_seq);
        let out = shard.acquire(owner, now);
        self.next_audit_seq = shard.audit_seq();
        if out.is_ok() {
            self.logical_txns += 1;
        }
        out
    }

    /// Release a VNI into quarantine on its owning shard.
    pub fn release(&mut self, vni: Vni, now: SimTime) -> Result<(), VniDbError> {
        let Some(si) = self.shard_holding(vni.raw()) else {
            return Err(VniDbError::NotFound);
        };
        let shard = &mut self.shards[si];
        shard.set_audit_seq(self.next_audit_seq);
        let out = shard.release(vni, now);
        self.next_audit_seq = shard.audit_seq();
        if out.is_ok() {
            self.logical_txns += 1;
        }
        out
    }

    /// Add a user to a claim-owned VNI.
    pub fn add_user(&mut self, vni: Vni, user: &str, now: SimTime) -> Result<(), VniDbError> {
        let Some(si) = self.shard_holding(vni.raw()) else {
            return Err(VniDbError::NotFound);
        };
        let shard = &mut self.shards[si];
        shard.set_audit_seq(self.next_audit_seq);
        let out = shard.add_user(vni, user, now);
        self.next_audit_seq = shard.audit_seq();
        if out.is_ok() {
            self.logical_txns += 1;
        }
        out
    }

    /// Remove a user; returns how many remain.
    pub fn remove_user(
        &mut self,
        vni: Vni,
        user: &str,
        now: SimTime,
    ) -> Result<usize, VniDbError> {
        let Some(si) = self.shard_holding(vni.raw()) else {
            return Err(VniDbError::NotFound);
        };
        let shard = &mut self.shards[si];
        shard.set_audit_seq(self.next_audit_seq);
        let out = shard.remove_user(vni, user, now);
        self.next_audit_seq = shard.audit_seq();
        if out.is_ok() {
            self.logical_txns += 1;
        }
        out
    }

    /// Release a claim-owned VNI, refusing while users remain.
    pub fn release_claim(&mut self, claim_key: &str, now: SimTime) -> Result<(), VniDbError> {
        let Some(row) = self.find_by_claim(claim_key) else {
            return Err(VniDbError::NotFound);
        };
        if !row.users.is_empty() {
            return Err(VniDbError::ClaimInUse);
        }
        self.release(Vni(row.vni), now)
    }

    /// Sweep expired quarantines on every shard, in shard-id order
    /// (= ascending VNI sub-ranges, so the appended `quarantine_expire`
    /// audit entries land in the same globally ascending VNI order the
    /// single store writes). One logical transaction if anything was
    /// swept.
    pub fn sweep_expired(&mut self, now: SimTime) -> usize {
        self.sweeps += 1;
        let mut total = 0usize;
        for s in &mut self.shards {
            s.set_audit_seq(self.next_audit_seq);
            total += s.sweep_expired(now);
            self.next_audit_seq = s.audit_seq();
        }
        if total > 0 {
            self.logical_txns += 1;
        }
        total
    }

    // ---- Reads (merged in shard-id order) --------------------------------

    /// Look up a row.
    pub fn row(&self, vni: Vni) -> Option<VniRow> {
        self.shard_holding(vni.raw()).and_then(|si| self.shards[si].row(vni))
    }

    /// All rows in ascending VNI order, merged across shards.
    pub fn rows(&self) -> Vec<VniRow> {
        let mut rows: Vec<VniRow> =
            self.shards.iter().flat_map(|s| s.rows()).collect();
        rows.sort_by_key(|r| r.vni);
        rows
    }

    /// Find the VNI owned by `owner`, probing the owner's home shard
    /// first (hash-by-tenant locality), then the rest in id order.
    pub fn find_by_owner(&self, owner: &VniOwner) -> Option<VniRow> {
        let key = match owner {
            VniOwner::Job { key } | VniOwner::Claim { key } => key.as_str(),
        };
        let home = self.home_shard(key);
        self.shards[home].find_by_owner(owner).or_else(|| {
            self.shards
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != home)
                .find_map(|(_, s)| s.find_by_owner(owner))
        })
    }

    /// Find the VNI allocated to a claim by claim key (`ns/name`).
    pub fn find_by_claim(&self, claim_key: &str) -> Option<VniRow> {
        let home = self.home_shard(claim_key);
        self.shards[home].find_by_claim(claim_key).or_else(|| {
            self.shards
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != home)
                .find_map(|(_, s)| s.find_by_claim(claim_key))
        })
    }

    /// Global audit log: a k-way merge of shard logs by their global
    /// sequence keys — byte-identical to the single-store log.
    pub fn audit(&self) -> Vec<AuditEntry> {
        let mut entries: Vec<(u64, AuditEntry)> =
            self.shards.iter().flat_map(|s| s.audit_with_seq()).collect();
        entries.sort_by_key(|(seq, _)| *seq);
        entries.into_iter().map(|(_, e)| e).collect()
    }

    /// Consistent audit read at `now` (sweeps first).
    pub fn audit_at(&mut self, now: SimTime) -> Vec<AuditEntry> {
        self.sweep_expired(now);
        self.audit()
    }

    /// Total audit-log length across shards.
    pub fn audit_len(&self) -> usize {
        self.shards.iter().map(|s| s.audit_len()).sum()
    }

    /// Count of currently allocated VNIs.
    pub fn allocated_count(&self) -> usize {
        self.shards.iter().map(|s| s.allocated_count()).sum()
    }

    /// Consistent occupancy split at `now` (sweeps first, like the
    /// single store).
    pub fn stats(&mut self, now: SimTime) -> VniDbStats {
        self.sweep_expired(now);
        VniDbStats {
            allocated: self.allocated_count(),
            quarantined: self.shards.iter().map(|s| s.quarantined_count()).sum(),
            free: self.shards.iter().map(|s| s.free_count()).sum(),
        }
    }

    /// Allocator counters summed across shards. `sweeps` and
    /// `exhaustions` are facade-level: a logical sweep visits every
    /// shard (summing would multiply it by N) and a shard is never
    /// asked to acquire from an exhausted global pool (summing would
    /// always read zero).
    pub fn counters(&self) -> VniDbCounters {
        let mut sum = VniDbCounters::default();
        for s in &self.shards {
            let c = s.counters();
            sum.acquires += c.acquires;
            sum.fresh_allocs += c.fresh_allocs;
            sum.reuse_allocs += c.reuse_allocs;
            sum.releases += c.releases;
            sum.user_adds += c.user_adds;
            sum.user_removes += c.user_removes;
            sum.swept_rows += c.swept_rows;
            sum.expiry_promotions += c.expiry_promotions;
        }
        sum.sweeps = self.sweeps;
        sum.exhaustions = self.exhaustions;
        sum
    }

    /// Logical transactions: one per successful facade operation (a
    /// sweep counts once however many shards it touched). Equals the
    /// physical store commit count at one shard, which keeps scenario
    /// reports byte-identical across shard counts.
    pub fn txn_count(&self) -> u64 {
        self.logical_txns
    }

    /// Physical store commits summed across shards (diagnostics; ≥
    /// [`ShardedVniDb::txn_count`] because one logical sweep may commit
    /// on several shards).
    pub fn physical_txn_count(&self) -> u64 {
        self.shards.iter().map(|s| s.txn_count()).sum()
    }

    /// JSON view of the merged state (rows, audit log, counters).
    pub fn export_diagnostics(&self) -> serde_json::Value {
        serde_json::json!({
            "rows": self.rows(),
            "audit": self.audit(),
            "counters": self.counters(),
            "shards": self.shards.len(),
        })
    }

    /// Verify every shard's index invariants, then the global audit
    /// contract: the union of shard keys must be exactly the contiguous
    /// sequence `0..next_audit_seq` — no gaps, no duplicates, cursor in
    /// agreement.
    pub fn check_index_consistency(&self) -> Result<(), String> {
        for (i, s) in self.shards.iter().enumerate() {
            s.check_index_consistency().map_err(|e| format!("shard {i}: {e}"))?;
        }
        let mut keys: Vec<u64> = self
            .shards
            .iter()
            .flat_map(|s| s.audit_with_seq().into_iter().map(|(k, _)| k))
            .collect();
        keys.sort_unstable();
        if keys.len() as u64 != self.next_audit_seq {
            return Err(format!(
                "global audit cursor diverged: {} keys, cursor {}",
                keys.len(),
                self.next_audit_seq
            ));
        }
        for (i, k) in keys.iter().enumerate() {
            if *k != i as u64 {
                return Err(format!("audit sequence gap: position {i} holds key {k}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(range: Range<u16>) -> VniDbConfig {
        VniDbConfig { range, quarantine: SimDur::from_secs(30) }
    }

    fn job(key: &str) -> VniOwner {
        VniOwner::Job { key: key.to_string() }
    }

    fn t(s: u64) -> SimTime {
        SimTime::from_nanos(s * 1_000_000_000)
    }

    #[test]
    fn partition_is_contiguous_ascending_and_balanced() {
        let parts = partition(&(1024..1031), 3);
        assert_eq!(parts, vec![1024..1027, 1027..1029, 1029..1031]);
        let parts = partition(&(10..12), 4);
        assert_eq!(parts, vec![10..11, 11..12, 12..12, 12..12]);
    }

    #[test]
    fn allocation_order_matches_single_store_across_shard_counts() {
        let mut single = VniDb::new(cfg(1024..1040));
        let mut got_single = Vec::new();
        for i in 0..16 {
            got_single.push(single.acquire(job(&format!("ns/j{i}")), t(0)).unwrap());
        }
        for shards in [1usize, 2, 3, 4] {
            let mut db = ShardedVniDb::new(cfg(1024..1040), shards);
            let got: Vec<Vni> = (0..16)
                .map(|i| db.acquire(job(&format!("ns/j{i}")), t(0)).unwrap())
                .collect();
            assert_eq!(got, got_single, "shards={shards}");
            db.check_index_consistency().unwrap();
        }
    }

    #[test]
    fn acquire_overflows_to_the_next_shard_on_local_exhaustion() {
        // Shard 0 owns 1024..1026; once both are allocated the global
        // minimum comes from shard 1 without any error surfacing.
        let mut db = ShardedVniDb::new(cfg(1024..1028), 2);
        for i in 0..4 {
            let v = db.acquire(job(&format!("ns/j{i}")), t(0)).unwrap();
            assert_eq!(v, Vni(1024 + i));
        }
        assert_eq!(db.acquire(job("ns/late"), t(0)).unwrap_err(), VniDbError::Exhausted);
        assert_eq!(db.counters().exhaustions, 1);
        db.check_index_consistency().unwrap();
    }

    #[test]
    fn audit_log_merges_to_global_sequence_order() {
        let mut db = ShardedVniDb::new(cfg(1024..1028), 2);
        let a = db.acquire(job("ns/a"), t(0)).unwrap(); // shard 0
        let b = db.acquire(job("ns/b"), t(1)).unwrap();
        let c = db.acquire(job("ns/c"), t(2)).unwrap(); // lands on shard 1
        assert_eq!((a, b, c), (Vni(1024), Vni(1025), Vni(1026)));
        db.release(a, t(3)).unwrap();
        db.release(c, t(4)).unwrap();
        let events: Vec<(String, u16)> =
            db.audit().into_iter().map(|e| (e.event, e.vni)).collect();
        assert_eq!(
            events,
            vec![
                ("acquire".to_string(), 1024),
                ("acquire".to_string(), 1025),
                ("acquire".to_string(), 1026),
                ("release".to_string(), 1024),
                ("release".to_string(), 1026),
            ],
            "interleaved cross-shard ops stay in global order"
        );
        db.check_index_consistency().unwrap();
    }

    #[test]
    fn sweep_appends_expire_entries_in_ascending_vni_order() {
        let mut db = ShardedVniDb::new(cfg(1024..1032), 4);
        for i in 0..6 {
            db.acquire(job(&format!("ns/j{i}")), t(0)).unwrap();
        }
        // Release in a scrambled order; the sweep must still log
        // ascending VNIs (shard-id order = ascending sub-ranges).
        for vni in [1029u16, 1024, 1027, 1025] {
            db.release(Vni(vni), t(1)).unwrap();
        }
        assert_eq!(db.sweep_expired(t(40)), 4);
        let tail: Vec<u16> = db
            .audit()
            .into_iter()
            .filter(|e| e.event == "quarantine_expire")
            .map(|e| e.vni)
            .collect();
        assert_eq!(tail, vec![1024, 1025, 1027, 1029]);
        assert_eq!(db.counters().sweeps, 1, "one logical sweep");
        db.check_index_consistency().unwrap();
    }

    #[test]
    fn logical_txn_count_is_shard_count_invariant() {
        let mut counts = Vec::new();
        for shards in [1usize, 2, 4] {
            let mut db = ShardedVniDb::new(cfg(1024..1040), shards);
            for i in 0..8 {
                db.acquire(job(&format!("ns/j{i}")), t(0)).unwrap();
            }
            for vni in 1024..1028 {
                db.release(Vni(vni), t(1)).unwrap();
            }
            db.sweep_expired(t(40));
            counts.push(db.txn_count());
            if shards == 1 {
                assert_eq!(
                    db.txn_count(),
                    db.physical_txn_count(),
                    "logical == physical at one shard"
                );
            }
        }
        assert_eq!(counts[0], counts[1]);
        assert_eq!(counts[0], counts[2]);
    }

    #[test]
    fn crash_recover_preserves_state_and_global_cursor() {
        let mut db = ShardedVniDb::new(cfg(1024..1032), 4);
        for i in 0..6 {
            db.acquire(job(&format!("ns/j{i}")), t(0)).unwrap();
        }
        db.release(Vni(1025), t(1)).unwrap();
        let audit_before = db.audit();
        let rows_before = db.rows();
        let mut rng = shs_des::DetRng::new(7);
        let disks = db.crash(&mut rng);
        let mut db2 = ShardedVniDb::recover(disks, cfg(1024..1032));
        assert_eq!(db2.rows(), rows_before);
        assert_eq!(db2.audit(), audit_before);
        db2.check_index_consistency().unwrap();
        // The resumed cursor continues the global sequence without gaps.
        db2.acquire(job("ns/after"), t(2)).unwrap();
        db2.check_index_consistency().unwrap();
    }

    #[test]
    fn from_single_preserves_state_and_api() {
        let mut single = VniDb::new(cfg(1024..1028));
        let v = single.acquire(job("ns/a"), t(0)).unwrap();
        let mut db = ShardedVniDb::from_single(single);
        assert_eq!(db.shard_count(), 1);
        assert_eq!(db.find_by_owner(&job("ns/a")).unwrap().vni, v.raw());
        assert_eq!(db.txn_count(), 1);
        db.release(v, t(1)).unwrap();
        assert_eq!(db.txn_count(), 2);
        db.check_index_consistency().unwrap();
    }

    #[test]
    fn claim_lifecycle_works_across_the_facade() {
        let mut db = ShardedVniDb::new(cfg(1024..1032), 2);
        let claim = VniOwner::Claim { key: "ns/shared".into() };
        let v = db.acquire(claim, t(0)).unwrap();
        db.add_user(v, "ns/job1", t(0)).unwrap();
        assert_eq!(
            db.release_claim("ns/shared", t(1)).unwrap_err(),
            VniDbError::ClaimInUse
        );
        assert_eq!(db.remove_user(v, "ns/job1", t(1)).unwrap(), 0);
        db.release_claim("ns/shared", t(2)).unwrap();
        assert_eq!(db.allocated_count(), 0);
        assert_eq!(db.find_by_claim("ns/shared"), None);
        db.check_index_consistency().unwrap();
    }

    #[test]
    fn group_commit_spans_every_shard() {
        let mut db = ShardedVniDb::new(cfg(1024..1040), 4);
        db.group_begin();
        for i in 0..12 {
            db.acquire(job(&format!("ns/j{i}")), t(0)).unwrap();
        }
        db.group_flush();
        db.group_end();
        // Crash after the flush: every batched acquire survives.
        let mut rng = shs_des::DetRng::new(3);
        let db2 = ShardedVniDb::recover(db.crash(&mut rng), cfg(1024..1040));
        assert_eq!(db2.allocated_count(), 12);
        db2.check_index_consistency().unwrap();
    }
}
