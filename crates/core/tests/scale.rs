//! Cluster scaling behaviour beyond the paper's two-node testbed: the
//! integration is node-count agnostic (the paper's design arguments never
//! assume two nodes), so a larger cluster must behave identically
//! per-tenant while spreading load.

use shs_des::{SimDur, SimTime};
use shs_fabric::Vni;
use shs_k8s::{kinds, spec_of, PodSpec};
use slingshot_k8s::{alpine, osu_image, Cluster, ClusterConfig};

#[test]
fn four_node_cluster_spreads_and_isolates() {
    let mut c = Cluster::new(ClusterConfig { nodes: 4, ..Default::default() });
    // Four tenants, one 4-rank job each.
    for t in 0..4 {
        c.submit_job(
            SimTime::ZERO,
            &format!("tenant-{t}"),
            "app",
            &[("vni", "true")],
            4,
            &osu_image(),
            None,
        );
    }
    c.run_until(SimTime::ZERO, SimTime::from_nanos(20_000_000_000), SimDur::from_millis(20));

    let mut vnis = Vec::new();
    for t in 0..4 {
        let ns = format!("tenant-{t}");
        let crd = c.api.get(kinds::VNI, &ns, "vni-app").expect("VNI CRD");
        vnis.push(crd.spec["vni"].as_u64().unwrap());
        // All four pods run, one per node (topology spread).
        let mut nodes_used = std::collections::BTreeSet::new();
        for i in 0..4 {
            let pod = c.api.get(kinds::POD, &ns, &format!("app-{i}")).expect("pod");
            let spec: PodSpec = spec_of(pod);
            nodes_used.insert(spec.node_name.expect("bound"));
        }
        assert_eq!(nodes_used.len(), 4, "{ns} spread over all nodes");
    }
    vnis.sort_unstable();
    vnis.dedup();
    assert_eq!(vnis.len(), 4, "tenant VNIs are mutually exclusive");

    // Every node's switch port carries every tenant VNI (each tenant has
    // a pod on each node) — 4 tenant grants + the global VNI.
    for n in &c.nodes {
        let (sw, port) = c.fabric.attachment(n.inner.nic).unwrap();
        let grants: Vec<Vni> = c.fabric.switch_at(sw).vnis_on(port).collect();
        assert_eq!(grants.len(), 5, "node {} grants: {grants:?}", n.inner.name);
    }
}

#[test]
fn single_node_cluster_still_works() {
    let mut c = Cluster::new(ClusterConfig { nodes: 1, ..Default::default() });
    c.submit_job(SimTime::ZERO, "t", "solo", &[("vni", "true")], 2, &alpine(), Some(10));
    c.run_until(SimTime::ZERO, SimTime::from_nanos(10_000_000_000), SimDur::from_millis(20));
    // Both pods land on the single node and the job completes.
    assert!(!c.job_exists("t", "solo"), "completed and reaped");
    assert_eq!(c.endpoint.borrow().db.allocated_count(), 0);
}

#[test]
fn many_sequential_tenants_recycle_vnis_cleanly() {
    // Churn: waves of short jobs; with a tight VNI range plus quarantine,
    // recycling must keep up without ever double-allocating.
    let mut c = Cluster::new(ClusterConfig {
        vni_range: 1024..1040,
        quarantine: SimDur::from_secs(2),
        ..Default::default()
    });
    let mut t = SimTime::ZERO;
    for wave in 0..6 {
        for j in 0..4 {
            c.submit_job(
                t,
                "churn",
                &format!("w{wave}-j{j}"),
                &[("vni", "true")],
                1,
                &alpine(),
                Some(10),
            );
        }
        t = c.run_until(t, t + SimDur::from_secs(12), SimDur::from_millis(20));
        assert_eq!(
            c.endpoint.borrow().db.allocated_count(),
            0,
            "wave {wave} fully released"
        );
    }
    // 24 jobs over a 16-wide range: recycling necessarily happened.
    let acq = c.endpoint.borrow().counters.acquisitions;
    assert_eq!(acq, 24);
}
