//! Shard-count invariance of serialized reports: the deliverable the
//! sharded control plane must not break. A scenario (or control-plane
//! stress run) executed at `--shards 1`, `2` and `4` must emit
//! **byte-identical** JSON — the facade's global-minimum allocation and
//! global audit sequencing guarantee it, and these tests pin the
//! contract at the report level, where any divergence would reach users.

use slingshot_k8s::{by_name, run_scenario, run_vni_stress, VniStressScenario};

/// Full cluster scenarios through the DES engine: only
/// `ClusterConfig::vni_shards` varies.
#[test]
fn scenario_reports_are_byte_identical_across_shard_counts() {
    for name in ["quarantine-pressure", "churn"] {
        let render = |shards: usize| {
            let mut scenario = by_name(name, 42).expect("library scenario");
            scenario.config.vni_shards = shards;
            serde_json::to_string_pretty(&run_scenario(&scenario)).expect("serializes")
        };
        let one = render(1);
        assert_eq!(one, render(2), "{name}: shards=2 diverged from shards=1");
        assert_eq!(one, render(4), "{name}: shards=4 diverged from shards=1");
    }
}

/// Control-plane stress reports (direct database churn under group
/// commit, ending in a crash-recovery audit).
#[test]
fn stress_reports_are_byte_identical_across_shard_counts() {
    let render = |shards: usize| {
        let scenario = VniStressScenario {
            name: "vni-stress-identity".into(),
            description: "shard-invariance fixture".into(),
            seed: 42,
            tenants: 2_000,
            ops: 6_000,
            shards,
        };
        let report = run_vni_stress(&scenario);
        assert!(report.passed, "stress run failed at shards={shards}");
        serde_json::to_string_pretty(&report).expect("serializes")
    };
    let one = render(1);
    assert_eq!(one, render(2), "shards=2 diverged from shards=1");
    assert_eq!(one, render(4), "shards=4 diverged from shards=1");
}
