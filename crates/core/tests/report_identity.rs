//! Shard-count invariance of serialized reports: the deliverable the
//! sharded control plane must not break. A scenario (or control-plane
//! stress run) executed at `--shards 1`, `2` and `4` must emit
//! **byte-identical** JSON — the facade's global-minimum allocation and
//! global audit sequencing guarantee it, and these tests pin the
//! contract at the report level, where any divergence would reach users.
//!
//! The committed fixtures under `tests/fixtures/` additionally freeze
//! every library report at seed 42: the twelve job-only reports were
//! generated *before* the serving plane existed, so matching them today
//! proves that merging Services/PLEG changed no byte of any pre-existing
//! report (no new JSON fields, no counter drift).

use slingshot_k8s::{by_name, library, run_scenario, run_vni_stress, VniStressScenario};

/// Full cluster scenarios through the DES engine: only
/// `ClusterConfig::vni_shards` varies.
#[test]
fn scenario_reports_are_byte_identical_across_shard_counts() {
    for name in ["quarantine-pressure", "churn", "autoscale-burst", "rolling-update-allreduce"] {
        let render = |shards: usize| {
            let mut scenario = by_name(name, 42).expect("library scenario");
            scenario.config.vni_shards = shards;
            serde_json::to_string_pretty(&run_scenario(&scenario)).expect("serializes")
        };
        let one = render(1);
        assert_eq!(one, render(2), "{name}: shards=2 diverged from shards=1");
        assert_eq!(one, render(4), "{name}: shards=4 diverged from shards=1");
    }
}

/// Every library report at seed 42 must match its committed fixture
/// byte for byte. The twelve job-only fixtures predate the serving
/// plane, so this is the regression pin that services, the PLEG cache,
/// and the service Metacontroller are invisible to scenarios that don't
/// plan them; the three service fixtures freeze the serving-plane
/// reports themselves.
#[test]
fn library_reports_match_their_committed_fixtures() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let mut seen = 0;
    for scenario in library(42) {
        let expected = std::fs::read_to_string(dir.join(format!("{}.json", scenario.name)))
            .unwrap_or_else(|e| panic!("fixture for {}: {e}", scenario.name));
        let got = serde_json::to_string_pretty(&run_scenario(&scenario)).expect("serializes") + "\n";
        assert_eq!(got, expected, "{} diverged from its committed fixture", scenario.name);
        seen += 1;
    }
    assert_eq!(seen, 15, "every library scenario has a fixture");
}

/// Job-only scenarios must not grow a `services` key (the serde
/// skip-if-empty contract the fixture pin depends on), and the three
/// serving-plane scenarios must carry one.
#[test]
fn services_section_appears_only_when_planned() {
    for scenario in library(42) {
        let has_services = !scenario.services.is_empty();
        let json = serde_json::to_string(&run_scenario(&scenario)).expect("serializes");
        assert_eq!(
            json.contains("\"services\""),
            has_services,
            "{}: services key presence mismatch",
            scenario.name
        );
    }
}

/// Control-plane stress reports (direct database churn under group
/// commit, ending in a crash-recovery audit).
#[test]
fn stress_reports_are_byte_identical_across_shard_counts() {
    let render = |shards: usize| {
        let scenario = VniStressScenario {
            name: "vni-stress-identity".into(),
            description: "shard-invariance fixture".into(),
            seed: 42,
            tenants: 2_000,
            ops: 6_000,
            shards,
        };
        let report = run_vni_stress(&scenario);
        assert!(report.passed, "stress run failed at shards={shards}");
        serde_json::to_string_pretty(&report).expect("serializes")
    };
    let one = render(1);
    assert_eq!(one, render(2), "shards=2 diverged from shards=1");
    assert_eq!(one, render(4), "shards=4 diverged from shards=1");
}
