//! Property tests for the VNI database invariants (DESIGN.md §5.4):
//! no VNI is ever allocated to two owners, quarantine windows are
//! respected, and crash recovery never loses or duplicates allocations.

use proptest::prelude::*;
use shs_des::{DetRng, SimDur, SimTime};
use shs_fabric::Vni;
use slingshot_k8s::{VniDb, VniDbConfig, VniOwner, VniState};
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum Op {
    Acquire { owner: u8 },
    Release { vni_off: u8 },
    AdvanceMs { ms: u32 },
    CrashRecover { seed: u64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0u8..32).prop_map(|owner| Op::Acquire { owner }),
        3 => (0u8..8).prop_map(|vni_off| Op::Release { vni_off }),
        2 => (1u32..40_000).prop_map(|ms| Op::AdvanceMs { ms }),
        1 => any::<u64>().prop_map(|seed| Op::CrashRecover { seed }),
    ]
}

const RANGE: core::ops::Range<u16> = 1024..1032; // deliberately tight
const QUARANTINE_MS: u64 = 30_000;

fn config() -> VniDbConfig {
    VniDbConfig { range: RANGE, quarantine: SimDur::from_millis(QUARANTINE_MS) }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Model-checked exclusivity + quarantine under arbitrary operation
    /// sequences with crash/recovery injection.
    #[test]
    fn no_double_allocation_ever(ops in prop::collection::vec(op_strategy(), 1..120)) {
        let mut db = VniDb::new(config());
        let mut now = SimTime::ZERO;
        // Model: vni -> (owner, state).
        let mut model_alloc: BTreeMap<u16, String> = BTreeMap::new();
        let mut model_quarantined: BTreeMap<u16, u64> = BTreeMap::new(); // release ns
        let mut owner_seq = 0u64;

        for op in ops {
            match op {
                Op::Acquire { owner } => {
                    // Unique owner key per acquire attempt (jobs are unique).
                    let key = format!("ns/j{owner}-{owner_seq}");
                    owner_seq += 1;
                    match db.acquire(VniOwner::Job { key: key.clone() }, now) {
                        Ok(vni) => {
                            // Exclusivity: not currently allocated.
                            prop_assert!(
                                !model_alloc.contains_key(&vni.raw()),
                                "{vni} already allocated"
                            );
                            // Quarantine respected.
                            if let Some(rel) = model_quarantined.get(&vni.raw()) {
                                prop_assert!(
                                    now.as_nanos() >= rel + QUARANTINE_MS * 1_000_000,
                                    "{vni} reissued {}ns after release",
                                    now.as_nanos() - rel
                                );
                            }
                            model_quarantined.remove(&vni.raw());
                            model_alloc.insert(vni.raw(), key);
                        }
                        Err(_) => {
                            // Exhaustion must be genuine: every range VNI is
                            // allocated or inside quarantine.
                            let free = RANGE.clone().find(|v| {
                                !model_alloc.contains_key(v)
                                    && model_quarantined.get(v).is_none_or(|rel| {
                                        now.as_nanos() >= rel + QUARANTINE_MS * 1_000_000
                                    })
                            });
                            prop_assert!(free.is_none(), "refused but {free:?} was free");
                        }
                    }
                }
                Op::Release { vni_off } => {
                    let vni = Vni(RANGE.start + vni_off as u16);
                    let was_allocated = model_alloc.contains_key(&vni.raw());
                    let res = db.release(vni, now);
                    prop_assert_eq!(res.is_ok(), was_allocated);
                    if was_allocated {
                        model_alloc.remove(&vni.raw());
                        model_quarantined.insert(vni.raw(), now.as_nanos());
                    }
                }
                Op::AdvanceMs { ms } => {
                    now += SimDur::from_millis(ms as u64);
                }
                Op::CrashRecover { seed } => {
                    let mut rng = DetRng::new(seed);
                    let disk = db.into_store().crash(&mut rng);
                    db = VniDb::recover(disk, config());
                }
            }
            // Global invariant after every step: db state matches model.
            let db_allocated: BTreeMap<u16, ()> = db
                .rows()
                .into_iter()
                .filter(|r| r.state == VniState::Allocated)
                .map(|r| (r.vni, ()))
                .collect();
            prop_assert_eq!(
                db_allocated.keys().copied().collect::<Vec<_>>(),
                model_alloc.keys().copied().collect::<Vec<_>>(),
                "allocated sets diverged"
            );
        }
    }

    /// The audit log is append-only and survives crashes: its length
    /// never shrinks and every successful mutation appends exactly once.
    #[test]
    fn audit_log_is_append_only(
        n_ops in 1usize..40,
        crash_seed in any::<u64>(),
    ) {
        let mut db = VniDb::new(config());
        let mut expected = 0usize;
        for i in 0..n_ops {
            let key = format!("ns/a{i}");
            if db.acquire(VniOwner::Job { key }, SimTime::ZERO).is_ok() {
                expected += 1;
            }
            prop_assert_eq!(db.audit_len(), expected);
        }
        let mut rng = DetRng::new(crash_seed);
        let db2 = VniDb::recover(db.into_store().crash(&mut rng), config());
        prop_assert_eq!(db2.audit_len(), expected, "audit entries lost in crash");
    }
}
