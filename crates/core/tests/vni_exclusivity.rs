//! Property tests for the VNI database invariants (DESIGN.md §5.4):
//! no VNI is ever allocated to two owners, quarantine windows are
//! respected, and crash recovery never loses or duplicates allocations.

use proptest::prelude::*;
use shs_des::{DetRng, SimDur, SimTime};
use shs_fabric::Vni;
use slingshot_k8s::{VniDb, VniDbConfig, VniDbError, VniOwner, VniState};
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum Op {
    Acquire { owner: u8 },
    Release { vni_off: u8 },
    AdvanceMs { ms: u32 },
    CrashRecover { seed: u64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0u8..32).prop_map(|owner| Op::Acquire { owner }),
        3 => (0u8..8).prop_map(|vni_off| Op::Release { vni_off }),
        2 => (1u32..40_000).prop_map(|ms| Op::AdvanceMs { ms }),
        1 => any::<u64>().prop_map(|seed| Op::CrashRecover { seed }),
    ]
}

const RANGE: core::ops::Range<u16> = 1024..1032; // deliberately tight
const QUARANTINE_MS: u64 = 30_000;

fn config() -> VniDbConfig {
    VniDbConfig { range: RANGE, quarantine: SimDur::from_millis(QUARANTINE_MS) }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Model-checked exclusivity + quarantine under arbitrary operation
    /// sequences with crash/recovery injection.
    #[test]
    fn no_double_allocation_ever(ops in prop::collection::vec(op_strategy(), 1..120)) {
        let mut db = VniDb::new(config());
        let mut now = SimTime::ZERO;
        // Model: vni -> (owner, state).
        let mut model_alloc: BTreeMap<u16, String> = BTreeMap::new();
        let mut model_quarantined: BTreeMap<u16, u64> = BTreeMap::new(); // release ns
        let mut owner_seq = 0u64;

        for op in ops {
            match op {
                Op::Acquire { owner } => {
                    // Unique owner key per acquire attempt (jobs are unique).
                    let key = format!("ns/j{owner}-{owner_seq}");
                    owner_seq += 1;
                    match db.acquire(VniOwner::Job { key: key.clone() }, now) {
                        Ok(vni) => {
                            // Exclusivity: not currently allocated.
                            prop_assert!(
                                !model_alloc.contains_key(&vni.raw()),
                                "{vni} already allocated"
                            );
                            // Quarantine respected.
                            if let Some(rel) = model_quarantined.get(&vni.raw()) {
                                prop_assert!(
                                    now.as_nanos() >= rel + QUARANTINE_MS * 1_000_000,
                                    "{vni} reissued {}ns after release",
                                    now.as_nanos() - rel
                                );
                            }
                            model_quarantined.remove(&vni.raw());
                            model_alloc.insert(vni.raw(), key);
                        }
                        Err(_) => {
                            // Exhaustion must be genuine: every range VNI is
                            // allocated or inside quarantine.
                            let free = RANGE.clone().find(|v| {
                                !model_alloc.contains_key(v)
                                    && model_quarantined.get(v).is_none_or(|rel| {
                                        now.as_nanos() >= rel + QUARANTINE_MS * 1_000_000
                                    })
                            });
                            prop_assert!(free.is_none(), "refused but {free:?} was free");
                        }
                    }
                }
                Op::Release { vni_off } => {
                    let vni = Vni(RANGE.start + vni_off as u16);
                    let was_allocated = model_alloc.contains_key(&vni.raw());
                    let res = db.release(vni, now);
                    prop_assert_eq!(res.is_ok(), was_allocated);
                    if was_allocated {
                        model_alloc.remove(&vni.raw());
                        model_quarantined.insert(vni.raw(), now.as_nanos());
                    }
                }
                Op::AdvanceMs { ms } => {
                    now += SimDur::from_millis(ms as u64);
                }
                Op::CrashRecover { seed } => {
                    let mut rng = DetRng::new(seed);
                    let disk = db.into_store().crash(&mut rng);
                    db = VniDb::recover(disk, config());
                }
            }
            // Global invariant after every step: db state matches model.
            let db_allocated: BTreeMap<u16, ()> = db
                .rows()
                .into_iter()
                .filter(|r| r.state == VniState::Allocated)
                .map(|r| (r.vni, ()))
                .collect();
            prop_assert_eq!(
                db_allocated.keys().copied().collect::<Vec<_>>(),
                model_alloc.keys().copied().collect::<Vec<_>>(),
                "allocated sets diverged"
            );
        }
    }

    /// The audit log is append-only and survives crashes: its length
    /// never shrinks and every successful mutation appends exactly once.
    #[test]
    fn audit_log_is_append_only(
        n_ops in 1usize..40,
        crash_seed in any::<u64>(),
    ) {
        let mut db = VniDb::new(config());
        let mut expected = 0usize;
        for i in 0..n_ops {
            let key = format!("ns/a{i}");
            if db.acquire(VniOwner::Job { key }, SimTime::ZERO).is_ok() {
                expected += 1;
            }
            prop_assert_eq!(db.audit_len(), expected);
        }
        let mut rng = DetRng::new(crash_seed);
        let db2 = VniDb::recover(db.into_store().crash(&mut rng), config());
        prop_assert_eq!(db2.audit_len(), expected, "audit entries lost in crash");
    }
}

/// Exact-boundary semantics of the 30 s quarantine (§III-C1). The
/// implementation frees a VNI when `now >= released_at + quarantine`:
/// one nanosecond before the boundary the VNI must still be withheld,
/// and exactly at the boundary it must be reusable again.
#[test]
fn reuse_exactly_at_quarantine_boundary() {
    // Single-VNI range: acquisition outcomes map 1:1 to that VNI's state.
    let mut db = VniDb::new(VniDbConfig {
        range: 2048..2049,
        quarantine: SimDur::from_secs(30),
    });
    let released_at = SimTime::from_nanos(7_000_000_000);
    let boundary = released_at + SimDur::from_secs(30);

    let vni = db.acquire(VniOwner::Job { key: "ns/first".into() }, SimTime::ZERO).unwrap();
    db.release(vni, released_at).unwrap();

    // 1 ns short of the boundary: still quarantined.
    let just_before = SimTime::from_nanos(boundary.as_nanos() - 1);
    assert!(
        db.acquire(VniOwner::Job { key: "ns/early".into() }, just_before).is_err(),
        "VNI handed out 1 ns before the quarantine boundary"
    );
    // The failed attempt must not have perturbed the row.
    let row = db.row(vni).expect("row survives");
    assert_eq!(row.state, VniState::Quarantined { released_at_ns: released_at.as_nanos() });

    // Exactly at the boundary: reusable, and by the same VNI.
    let reused = db
        .acquire(VniOwner::Job { key: "ns/boundary".into() }, boundary)
        .expect("VNI must be reusable exactly at released_at + quarantine");
    assert_eq!(reused, vni);
}

/// The audit log appends in operation order with dense sequence keys:
/// one entry per successful mutation, in exactly the order issued, with
/// failed operations appending nothing — and recovery preserves both
/// the order and the next sequence number.
#[test]
fn audit_log_appends_in_operation_order() {
    let mut db = VniDb::new(VniDbConfig {
        range: 3000..3004,
        quarantine: SimDur::from_secs(30),
    });
    let t = |s: u64| SimTime::from_nanos(s * 1_000_000_000);

    let claim = VniOwner::Claim { key: "ns/claim".into() };
    let v_claim = db.acquire(claim, t(1)).unwrap();
    db.add_user(v_claim, "ns/job-a", t(2)).unwrap();
    db.add_user(v_claim, "ns/job-b", t(3)).unwrap();
    let v_job = db.acquire(VniOwner::Job { key: "ns/solo".into() }, t(4)).unwrap();
    // Failed mutations must not append: claim release while users remain,
    // release of a never-allocated VNI, user removal from a non-allocated
    // (released-and-quarantined) VNI.
    assert!(db.release_claim("ns/claim", t(5)).is_err());
    assert!(db.release(Vni(3003), t(5)).is_err());
    let v_tmp = db.acquire(VniOwner::Job { key: "ns/tmp".into() }, t(5)).unwrap();
    db.release(v_tmp, t(5)).unwrap();
    assert_eq!(
        db.remove_user(v_tmp, "ns/ghost", t(5)).unwrap_err(),
        VniDbError::NotFound,
        "remove_user on a quarantined VNI must fail, not mutate"
    );
    db.remove_user(v_claim, "ns/job-b", t(6)).unwrap();
    db.remove_user(v_claim, "ns/job-a", t(7)).unwrap();
    db.release_claim("ns/claim", t(8)).unwrap();
    db.release(v_job, t(9)).unwrap();

    let expected: Vec<(u64, String, u16)> = vec![
        (t(1).as_nanos(), "acquire".into(), v_claim.raw()),
        (t(2).as_nanos(), "add_user:ns/job-a".into(), v_claim.raw()),
        (t(3).as_nanos(), "add_user:ns/job-b".into(), v_claim.raw()),
        (t(4).as_nanos(), "acquire".into(), v_job.raw()),
        (t(5).as_nanos(), "acquire".into(), v_tmp.raw()),
        (t(5).as_nanos(), "release".into(), v_tmp.raw()),
        (t(6).as_nanos(), "remove_user:ns/job-b".into(), v_claim.raw()),
        (t(7).as_nanos(), "remove_user:ns/job-a".into(), v_claim.raw()),
        (t(8).as_nanos(), "release".into(), v_claim.raw()),
        (t(9).as_nanos(), "release".into(), v_job.raw()),
    ];
    let got: Vec<(u64, String, u16)> =
        db.audit().into_iter().map(|e| (e.at_ns, e.event, e.vni)).collect();
    assert_eq!(got, expected, "audit entries out of order or miscounted");

    // Order and the append cursor survive shutdown + recovery: the next
    // mutation lands at the next dense sequence slot, never overwriting.
    let mut db = VniDb::recover(db.into_store().shutdown(), VniDbConfig {
        range: 3000..3004,
        quarantine: SimDur::from_secs(30),
    });
    let got_after: Vec<(u64, String, u16)> =
        db.audit().into_iter().map(|e| (e.at_ns, e.event, e.vni)).collect();
    assert_eq!(got_after, expected, "recovery reordered the audit log");

    let v_new = db.acquire(VniOwner::Job { key: "ns/after".into() }, t(40)).unwrap();
    let tail = db.audit();
    assert_eq!(tail.len(), expected.len() + 1);
    assert_eq!(
        (tail.last().unwrap().event.as_str(), tail.last().unwrap().vni),
        ("acquire", v_new.raw()),
        "post-recovery append must extend, not overwrite, the log"
    );
}
