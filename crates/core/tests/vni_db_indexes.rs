//! Error-path regressions for the indexed `VniDb`: a failed operation
//! must leave the audit cursor (`next_audit_seq`) and every in-memory
//! index exactly as it found them. Each test interleaves failing and
//! succeeding operations and asserts full index/store agreement via
//! `VniDb::check_index_consistency` (which also cross-checks the audit
//! cursor against the persisted `audit_log` row count).

use shs_des::{SimDur, SimTime};
use shs_fabric::Vni;
use slingshot_k8s::{VniDb, VniDbConfig, VniDbError, VniOwner};

fn db(width: u16) -> VniDb {
    VniDb::new(VniDbConfig { range: 4000..4000 + width, quarantine: SimDur::from_secs(30) })
}

fn job(key: &str) -> VniOwner {
    VniOwner::Job { key: key.to_string() }
}

fn t(secs: u64) -> SimTime {
    SimTime::from_nanos(secs * 1_000_000_000)
}

#[track_caller]
fn assert_clean(db: &VniDb) {
    db.check_index_consistency().expect("indexes agree with the store");
}

#[test]
fn failed_release_leaves_audit_and_indexes_untouched() {
    let mut db = db(4);
    let v = db.acquire(job("ns/a"), t(0)).unwrap();
    let audit_before = db.audit();
    let stats_before = db.stats(t(1));

    // Never-allocated VNI, out-of-range VNI, then a double release.
    assert_eq!(db.release(Vni(4001), t(1)).unwrap_err(), VniDbError::NotFound);
    assert_eq!(db.release(Vni(9), t(1)).unwrap_err(), VniDbError::NotFound);
    assert_clean(&db);
    db.release(v, t(2)).unwrap();
    assert_eq!(db.release(v, t(3)).unwrap_err(), VniDbError::NotFound);
    assert_clean(&db);

    // Only the successful release appended.
    let events: Vec<String> = db.audit().into_iter().map(|e| e.event).collect();
    assert_eq!(events.len(), audit_before.len() + 1);
    assert_eq!(events.last().map(String::as_str), Some("release"));
    assert_eq!(stats_before.allocated, 1);
    assert_eq!(db.stats(t(3)).allocated, 0);
}

#[test]
fn failed_user_ops_leave_audit_and_indexes_untouched() {
    let mut db = db(4);
    let claim = VniOwner::Claim { key: "ns/c".into() };
    let v = db.acquire(claim, t(0)).unwrap();

    // add_user/remove_user on a missing VNI.
    assert_eq!(db.add_user(Vni(4003), "u", t(1)).unwrap_err(), VniDbError::NotFound);
    assert_eq!(db.remove_user(Vni(4003), "u", t(1)).unwrap_err(), VniDbError::NotFound);
    assert_clean(&db);
    assert_eq!(db.audit_len(), 1, "only the acquire is logged");

    // Interleave a success, then fail on a quarantined VNI.
    db.add_user(v, "ns/u1", t(2)).unwrap();
    assert_clean(&db);
    let solo = db.acquire(job("ns/solo"), t(2)).unwrap();
    db.release(solo, t(3)).unwrap();
    assert_eq!(db.add_user(solo, "ns/u2", t(4)).unwrap_err(), VniDbError::NotFound);
    assert_eq!(db.remove_user(solo, "ns/u2", t(4)).unwrap_err(), VniDbError::NotFound);
    assert_clean(&db);

    // remove_user of a user that was never attached still succeeds (a
    // retained no-op) and must keep indexes aligned.
    assert_eq!(db.remove_user(v, "ns/ghost", t(5)).unwrap(), 1);
    assert_clean(&db);
}

#[test]
fn stalled_claim_delete_then_success_keeps_indexes_aligned() {
    let mut db = db(4);
    let v = db.acquire(VniOwner::Claim { key: "ns/c".into() }, t(0)).unwrap();
    db.add_user(v, "ns/j1", t(1)).unwrap();

    // ClaimInUse: no audit append, no index mutation.
    let before = db.audit_len();
    assert_eq!(db.release_claim("ns/c", t(2)).unwrap_err(), VniDbError::ClaimInUse);
    assert_eq!(db.release_claim("ns/missing", t(2)).unwrap_err(), VniDbError::NotFound);
    assert_eq!(db.audit_len(), before);
    assert_clean(&db);

    db.remove_user(v, "ns/j1", t(3)).unwrap();
    db.release_claim("ns/c", t(4)).unwrap();
    assert_clean(&db);
    assert_eq!(db.allocated_count(), 0);
}

#[test]
fn exhaustion_interleaved_with_success_keeps_indexes_aligned() {
    let mut db = db(2);
    db.acquire(job("ns/a"), t(0)).unwrap();
    db.acquire(job("ns/b"), t(0)).unwrap();
    for attempt in 0..3 {
        assert_eq!(
            db.acquire(job(&format!("ns/late{attempt}")), t(1)).unwrap_err(),
            VniDbError::Exhausted
        );
        assert_clean(&db);
    }
    assert_eq!(db.audit_len(), 2, "failed acquires append nothing");

    // Free one; the next acquire succeeds only after quarantine, and
    // every failed probe in between stays side-effect free.
    db.release(Vni(4000), t(2)).unwrap();
    assert_eq!(db.acquire(job("ns/c"), t(10)).unwrap_err(), VniDbError::Exhausted);
    assert_clean(&db);
    assert_eq!(db.acquire(job("ns/c"), t(32)).unwrap(), Vni(4000));
    assert_clean(&db);
}

#[test]
fn indexes_survive_crash_recovery_after_failures() {
    let mut db = db(3);
    let v = db.acquire(job("ns/a"), t(0)).unwrap();
    db.acquire(VniOwner::Claim { key: "ns/c".into() }, t(0)).unwrap();
    assert!(db.release(Vni(4002), t(1)).is_err());
    db.release(v, t(1)).unwrap();
    assert!(db.add_user(v, "u", t(2)).is_err());

    let mut rng = shs_des::DetRng::new(11);
    let disk = db.into_store().crash(&mut rng);
    let mut db = VniDb::recover(
        disk,
        VniDbConfig { range: 4000..4003, quarantine: SimDur::from_secs(30) },
    );
    assert_clean(&db);
    // The recovered database keeps enforcing quarantine and owner reuse.
    assert_eq!(
        db.acquire(VniOwner::Claim { key: "ns/c".into() }, t(3)).unwrap(),
        Vni(4001),
        "claim re-acquire is idempotent after recovery"
    );
    assert_eq!(db.acquire(job("ns/new"), t(3)).unwrap(), Vni(4002));
    assert_eq!(db.acquire(job("ns/more"), t(3)).unwrap_err(), VniDbError::Exhausted);
    assert_eq!(db.acquire(job("ns/more"), t(40)).unwrap(), v, "post-quarantine reuse");
    assert_clean(&db);
}
