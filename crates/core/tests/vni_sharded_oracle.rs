//! Facade equivalence: a `ShardedVniDb` at 1–4 shards against a plain
//! single-store `VniDb` (itself proven equivalent to the scan-based
//! semantics oracle in `tests/vni_oracle.rs`). Every operation result,
//! row, audit entry, stat, counter and transaction count must be
//! **identical at any shard count** — that is the contract that keeps
//! scenario reports byte-identical under `--shards N`. Crash/recovery
//! is injected mid-sequence, including with an open group-commit batch:
//! both sides must lose exactly the unflushed window and resume the
//! same global audit cursor.

use proptest::prelude::*;
use shs_des::{DetRng, SimDur, SimTime};
use shs_fabric::Vni;
use slingshot_k8s::{ShardedVniDb, VniDb, VniDbConfig, VniOwner};

const RANGE: core::ops::Range<u16> = 4000..4008; // deliberately tight

fn config() -> VniDbConfig {
    VniDbConfig { range: RANGE, quarantine: SimDur::from_millis(30_000) }
}

#[derive(Debug, Clone)]
enum Op {
    Acquire { owner: u8 },
    Release { vni_off: u8 },
    AddUser { vni_off: u8, user: u8 },
    RemoveUser { vni_off: u8, user: u8 },
    ReleaseClaim { owner: u8 },
    Sweep,
    Stats,
    AdvanceMs { ms: u32 },
    RewindMs { ms: u32 },
    GroupBegin,
    GroupFlush,
    GroupEnd,
    CrashRecover { seed: u64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        5 => (0u8..20).prop_map(|owner| Op::Acquire { owner }),
        4 => (0u8..10).prop_map(|vni_off| Op::Release { vni_off }),
        2 => (0u8..10, 0u8..6).prop_map(|(vni_off, user)| Op::AddUser { vni_off, user }),
        2 => (0u8..10, 0u8..6).prop_map(|(vni_off, user)| Op::RemoveUser { vni_off, user }),
        1 => (0u8..20).prop_map(|owner| Op::ReleaseClaim { owner }),
        1 => Just(Op::Sweep),
        1 => Just(Op::Stats),
        3 => (1u32..45_000).prop_map(|ms| Op::AdvanceMs { ms }),
        1 => (1u32..45_000).prop_map(|ms| Op::RewindMs { ms }),
        1 => Just(Op::GroupBegin),
        1 => Just(Op::GroupFlush),
        1 => Just(Op::GroupEnd),
        1 => any::<u64>().prop_map(|seed| Op::CrashRecover { seed }),
    ]
}

fn owner(id: u8) -> VniOwner {
    if id.is_multiple_of(2) {
        VniOwner::Job { key: format!("ns/job{id}") }
    } else {
        VniOwner::Claim { key: format!("ns/claim{id}") }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sharded_facade_matches_single_store(
        ops in prop::collection::vec(op_strategy(), 1..100),
        shards in 1usize..5,
    ) {
        let mut sharded = ShardedVniDb::new(config(), shards);
        let mut single = VniDb::new(config());
        let mut now = SimTime::ZERO;

        for op in ops {
            match &op {
                Op::Acquire { owner: id } => {
                    let o = owner(*id);
                    let got = sharded.acquire(o.clone(), now);
                    let want = single.acquire(o, now);
                    prop_assert_eq!(&got, &want, "acquire diverged at {:?}", op);
                }
                Op::Release { vni_off } => {
                    let vni = Vni(RANGE.start + *vni_off as u16); // may be out of range
                    let got = sharded.release(vni, now);
                    let want = single.release(vni, now);
                    prop_assert_eq!(&got, &want, "release diverged at {:?}", op);
                }
                Op::AddUser { vni_off, user } => {
                    let vni = Vni(RANGE.start + *vni_off as u16);
                    let u = format!("ns/user{user}");
                    let got = sharded.add_user(vni, &u, now);
                    let want = single.add_user(vni, &u, now);
                    prop_assert_eq!(&got, &want, "add_user diverged at {:?}", op);
                }
                Op::RemoveUser { vni_off, user } => {
                    let vni = Vni(RANGE.start + *vni_off as u16);
                    let u = format!("ns/user{user}");
                    let got = sharded.remove_user(vni, &u, now);
                    let want = single.remove_user(vni, &u, now);
                    prop_assert_eq!(&got, &want, "remove_user diverged at {:?}", op);
                }
                Op::ReleaseClaim { owner: id } => {
                    let key = format!("ns/claim{id}");
                    let got = sharded.release_claim(&key, now);
                    let want = single.release_claim(&key, now);
                    prop_assert_eq!(&got, &want, "release_claim diverged at {:?}", op);
                }
                Op::Sweep => {
                    prop_assert_eq!(
                        sharded.sweep_expired(now),
                        single.sweep_expired(now),
                        "sweep count diverged"
                    );
                }
                Op::Stats => {
                    let got = sharded.stats(now);
                    let want = single.stats(now);
                    prop_assert_eq!(got, want, "stats diverged");
                }
                Op::AdvanceMs { ms } => {
                    now += SimDur::from_millis(*ms as u64);
                }
                Op::RewindMs { ms } => {
                    let back = (*ms as u64) * 1_000_000;
                    now = SimTime::from_nanos(now.as_nanos().saturating_sub(back));
                }
                Op::GroupBegin => {
                    sharded.group_begin();
                    single.group_begin();
                }
                Op::GroupFlush => {
                    sharded.group_flush();
                    single.group_flush();
                }
                Op::GroupEnd => {
                    sharded.group_end();
                    single.group_end();
                }
                Op::CrashRecover { seed } => {
                    // Independent rng streams, but the loss is
                    // deterministic either way: exactly the commits since
                    // the last durability barrier (fsync or group flush).
                    let mut rng_s = DetRng::new(*seed);
                    let mut rng_1 = DetRng::new(*seed);
                    sharded = ShardedVniDb::recover(sharded.crash(&mut rng_s), config());
                    single =
                        VniDb::recover(single.into_store().crash(&mut rng_1), config());
                }
            }
            // Global invariants after every step: merged rows, merged
            // audit log, counters and logical transactions all agree,
            // and both sides pass their own consistency checks.
            prop_assert_eq!(&sharded.rows(), &single.rows(), "rows diverged after {:?}", op);
            prop_assert_eq!(&sharded.audit(), &single.audit(), "audit diverged after {:?}", op);
            prop_assert_eq!(
                sharded.counters(),
                single.counters(),
                "counters diverged after {:?}",
                op
            );
            prop_assert_eq!(
                sharded.txn_count(),
                single.txn_count(),
                "logical txns diverged after {:?}",
                op
            );
            if let Err(e) = sharded.check_index_consistency() {
                return Err(TestCaseError::fail(format!(
                    "sharded inconsistency after {op:?}: {e}"
                )));
            }
            if let Err(e) = single.check_index_consistency() {
                return Err(TestCaseError::fail(format!(
                    "single-store inconsistency after {op:?}: {e}"
                )));
            }
        }
    }
}
