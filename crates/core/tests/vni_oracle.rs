//! State-machine equivalence: the indexed `VniDb` against a naive
//! scan-based oracle. The oracle re-implements the §III-C2 semantics
//! the way the pre-index database did — a linear probe over the range
//! for every acquire, a full-table filter for every sweep — so any
//! divergence (results, rows, stats, audit log) is an index bug, not a
//! modeling artifact. Crash/recovery is injected mid-sequence; every
//! committed operation must survive it, and the rebuilt indexes must
//! pass `check_index_consistency`.

use proptest::prelude::*;
use shs_des::{DetRng, SimDur, SimTime};
use shs_fabric::Vni;
use slingshot_k8s::{AuditEntry, VniDb, VniDbConfig, VniDbError, VniOwner, VniRow, VniState};
use std::collections::BTreeMap;

const RANGE: core::ops::Range<u16> = 4000..4008; // deliberately tight
const QUARANTINE_MS: u64 = 30_000;

fn config() -> VniDbConfig {
    VniDbConfig { range: RANGE, quarantine: SimDur::from_millis(QUARANTINE_MS) }
}

/// The naive model: same schema, scan-based allocation, in-memory only.
struct Oracle {
    rows: BTreeMap<u16, VniRow>,
    audit: Vec<AuditEntry>,
}

impl Oracle {
    fn new() -> Self {
        Oracle { rows: BTreeMap::new(), audit: Vec::new() }
    }

    fn expired(row: &VniRow, now: SimTime) -> bool {
        match row.state {
            VniState::Quarantined { released_at_ns } => {
                now.as_nanos() >= released_at_ns + QUARANTINE_MS * 1_000_000
            }
            VniState::Allocated => false,
        }
    }

    fn log(&mut self, now: SimTime, event: String, vni: u16) {
        self.audit.push(AuditEntry { at_ns: now.as_nanos(), event, vni });
    }

    fn acquire(&mut self, owner: &VniOwner, now: SimTime) -> Result<u16, VniDbError> {
        if let Some(r) =
            self.rows.values().find(|r| r.state == VniState::Allocated && &r.owner == owner)
        {
            return Ok(r.vni);
        }
        let vni = RANGE
            .clone()
            .find(|v| self.rows.get(v).is_none_or(|r| Self::expired(r, now)))
            .ok_or(VniDbError::Exhausted)?;
        self.rows.insert(
            vni,
            VniRow { vni, state: VniState::Allocated, owner: owner.clone(), users: vec![] },
        );
        self.log(now, "acquire".into(), vni);
        Ok(vni)
    }

    fn release(&mut self, vni: u16, now: SimTime) -> Result<(), VniDbError> {
        let row = self.rows.get_mut(&vni).ok_or(VniDbError::NotFound)?;
        if row.state != VniState::Allocated {
            return Err(VniDbError::NotFound);
        }
        row.state = VniState::Quarantined { released_at_ns: now.as_nanos() };
        row.users.clear();
        self.log(now, "release".into(), vni);
        Ok(())
    }

    fn add_user(&mut self, vni: u16, user: &str, now: SimTime) -> Result<(), VniDbError> {
        let row = self.rows.get_mut(&vni).ok_or(VniDbError::NotFound)?;
        if row.state != VniState::Allocated {
            return Err(VniDbError::NotFound);
        }
        if !row.users.iter().any(|u| u == user) {
            row.users.push(user.to_string());
        }
        self.log(now, format!("add_user:{user}"), vni);
        Ok(())
    }

    fn remove_user(&mut self, vni: u16, user: &str, now: SimTime) -> Result<usize, VniDbError> {
        let row = self.rows.get_mut(&vni).ok_or(VniDbError::NotFound)?;
        if row.state != VniState::Allocated {
            return Err(VniDbError::NotFound);
        }
        row.users.retain(|u| u != user);
        let remaining = row.users.len();
        self.log(now, format!("remove_user:{user}"), vni);
        Ok(remaining)
    }

    fn release_claim(&mut self, claim_key: &str, now: SimTime) -> Result<(), VniDbError> {
        let row = self
            .rows
            .values()
            .find(|r| {
                r.state == VniState::Allocated
                    && r.owner == VniOwner::Claim { key: claim_key.to_string() }
            })
            .cloned()
            .ok_or(VniDbError::NotFound)?;
        if !row.users.is_empty() {
            return Err(VniDbError::ClaimInUse);
        }
        self.release(row.vni, now)
    }

    fn sweep(&mut self, now: SimTime) -> usize {
        let expired: Vec<u16> = self
            .rows
            .values()
            .filter(|r| Self::expired(r, now))
            .map(|r| r.vni)
            .collect();
        for &vni in &expired {
            self.rows.remove(&vni);
            self.log(now, "quarantine_expire".into(), vni);
        }
        expired.len()
    }

    /// (allocated, quarantined, free) after the sweep, like `stats`.
    fn stats(&mut self, now: SimTime) -> (usize, usize, usize) {
        self.sweep(now);
        let allocated =
            self.rows.values().filter(|r| r.state == VniState::Allocated).count();
        let quarantined = self.rows.len() - allocated;
        (allocated, quarantined, RANGE.len() - self.rows.len())
    }
}

#[derive(Debug, Clone)]
enum Op {
    Acquire { owner: u8 },
    Release { vni_off: u8 },
    AddUser { vni_off: u8, user: u8 },
    RemoveUser { vni_off: u8, user: u8 },
    ReleaseClaim { owner: u8 },
    Sweep,
    Stats,
    AdvanceMs { ms: u32 },
    /// The public API takes arbitrary `SimTime`s; rewinding exercises
    /// the expiry demotion path (quarantine must be judged per call).
    RewindMs { ms: u32 },
    CrashRecover { seed: u64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        5 => (0u8..20).prop_map(|owner| Op::Acquire { owner }),
        4 => (0u8..10).prop_map(|vni_off| Op::Release { vni_off }),
        2 => (0u8..10, 0u8..6).prop_map(|(vni_off, user)| Op::AddUser { vni_off, user }),
        2 => (0u8..10, 0u8..6).prop_map(|(vni_off, user)| Op::RemoveUser { vni_off, user }),
        1 => (0u8..20).prop_map(|owner| Op::ReleaseClaim { owner }),
        1 => Just(Op::Sweep),
        1 => Just(Op::Stats),
        3 => (1u32..45_000).prop_map(|ms| Op::AdvanceMs { ms }),
        1 => (1u32..45_000).prop_map(|ms| Op::RewindMs { ms }),
        1 => any::<u64>().prop_map(|seed| Op::CrashRecover { seed }),
    ]
}

/// Owner ids map to a fixed pool: even ids are jobs, odd ids are claims,
/// so idempotent re-acquire and claim semantics both get exercised.
fn owner(id: u8) -> VniOwner {
    if id.is_multiple_of(2) {
        VniOwner::Job { key: format!("ns/job{id}") }
    } else {
        VniOwner::Claim { key: format!("ns/claim{id}") }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every operation, result, row, stat and audit entry of the indexed
    /// database matches the scan-based oracle, across arbitrary
    /// interleavings with crash/recovery.
    #[test]
    fn indexed_db_matches_scan_oracle(ops in prop::collection::vec(op_strategy(), 1..100)) {
        let mut db = VniDb::new(config());
        let mut oracle = Oracle::new();
        let mut now = SimTime::ZERO;

        for op in ops {
            match &op {
                Op::Acquire { owner: id } => {
                    let o = owner(*id);
                    let got = db.acquire(o.clone(), now).map(|v| v.raw());
                    let want = oracle.acquire(&o, now);
                    prop_assert_eq!(&got, &want, "acquire diverged at {:?}", op);
                }
                Op::Release { vni_off } => {
                    let vni = RANGE.start + *vni_off as u16; // may be out of range
                    let got = db.release(Vni(vni), now);
                    let want = oracle.release(vni, now);
                    prop_assert_eq!(&got, &want, "release diverged at {:?}", op);
                }
                Op::AddUser { vni_off, user } => {
                    let vni = RANGE.start + *vni_off as u16;
                    let u = format!("ns/user{user}");
                    let got = db.add_user(Vni(vni), &u, now);
                    let want = oracle.add_user(vni, &u, now);
                    prop_assert_eq!(&got, &want, "add_user diverged at {:?}", op);
                }
                Op::RemoveUser { vni_off, user } => {
                    let vni = RANGE.start + *vni_off as u16;
                    let u = format!("ns/user{user}");
                    let got = db.remove_user(Vni(vni), &u, now);
                    let want = oracle.remove_user(vni, &u, now);
                    prop_assert_eq!(&got, &want, "remove_user diverged at {:?}", op);
                }
                Op::ReleaseClaim { owner: id } => {
                    let key = format!("ns/claim{id}");
                    let got = db.release_claim(&key, now);
                    let want = oracle.release_claim(&key, now);
                    prop_assert_eq!(&got, &want, "release_claim diverged at {:?}", op);
                }
                Op::Sweep => {
                    let got = db.sweep_expired(now);
                    let want = oracle.sweep(now);
                    prop_assert_eq!(got, want, "sweep count diverged");
                }
                Op::Stats => {
                    let got = db.stats(now);
                    let want = oracle.stats(now);
                    prop_assert_eq!(
                        (got.allocated, got.quarantined, got.free),
                        want,
                        "stats diverged"
                    );
                }
                Op::AdvanceMs { ms } => {
                    now += SimDur::from_millis(*ms as u64);
                }
                Op::RewindMs { ms } => {
                    let back = (*ms as u64) * 1_000_000;
                    now = SimTime::from_nanos(now.as_nanos().saturating_sub(back));
                }
                Op::CrashRecover { seed } => {
                    let mut rng = DetRng::new(*seed);
                    let disk = db.into_store().crash(&mut rng);
                    db = VniDb::recover(disk, config());
                }
            }
            // Global invariants after every step: rows and audit agree
            // byte-for-byte, and the indexes agree with the store.
            let db_rows = db.rows();
            let want_rows: Vec<VniRow> = oracle.rows.values().cloned().collect();
            prop_assert_eq!(&db_rows, &want_rows, "rows diverged after {:?}", op);
            let db_audit = db.audit();
            prop_assert_eq!(&db_audit, &oracle.audit, "audit diverged after {:?}", op);
            if let Err(e) = db.check_index_consistency() {
                return Err(TestCaseError::fail(format!("index inconsistency after {op:?}: {e}")));
            }
        }
    }
}
