//! Regression tests for the CNI chain error path: when a plugin fails
//! mid-chain, the earlier plugins' node state must be fully rolled back
//! — in particular, the CXI plugin's service and the fabric-manager
//! grant must not leak (they are the node-side "VNI reservation").

use shs_cassini::{CassiniNic, CassiniParams};
use shs_cni::{BridgePlugin, CniArgs, CniError, CniResult, PodRef};
use shs_cxi::{CxiDevice, CxiDriver};
use shs_des::{DetRng, SimDur, SimTime};
use shs_fabric::{Fabric, NicAddr, Vni};
use shs_k8s::{kinds, ApiObject, ApiServer, VNI_ANNOTATION};
use shs_oslinux::{Creds, Gid, Host, Pid, Uid};
use slingshot_k8s::{CxiCniPlugin, NodeChain, NodeCniCtx, NodeCniPlugin, VniCrdSpec};

/// A plugin that always fails its ADD, simulating e.g. a broken
/// bandwidth-shaping plugin configured after `cxi` in the conflist.
struct ExplodingPlugin;

impl NodeCniPlugin for ExplodingPlugin {
    fn kind(&self) -> &str {
        "exploding"
    }
    fn add(
        &mut self,
        _ctx: &mut NodeCniCtx<'_>,
        _args: &CniArgs,
        _prev: CniResult,
    ) -> Result<(CniResult, SimDur), (CniError, SimDur)> {
        Err((CniError::plugin(199, "boom"), SimDur::from_millis(1)))
    }
    fn del(&mut self, _ctx: &mut NodeCniCtx<'_>, _args: &CniArgs) -> (Result<(), CniError>, SimDur) {
        (Ok(()), SimDur::from_millis(1))
    }
}

struct Rig {
    host: Host,
    device: CxiDevice,
    fabric: Fabric,
    api: ApiServer,
    nic: NicAddr,
    root: Creds,
}

const TEST_VNI: u16 = 1500;

/// A node rig with one annotated pod (VNI CRD present) whose sandbox
/// netns already exists — the state a kubelet would hand the chain.
fn rig() -> (Rig, CniArgs) {
    let mut host = Host::new("n0");
    let nic = NicAddr(1);
    let mut fabric = Fabric::new(4);
    fabric.attach(nic);
    fabric.grant_vni(nic, Vni::GLOBAL).unwrap();
    let device = CxiDevice::new(
        CxiDriver::extended(),
        CassiniNic::new(nic, CassiniParams::default(), DetRng::new(3)),
    );
    let root = host.credentials(Pid(1)).expect("init");
    let pause = host.spawn_detached("pause", Uid(0), Gid(0));
    let netns = host.unshare_net_ns(pause).expect("netns");

    let mut api = ApiServer::default();
    let mut pod = ApiObject::new(
        kinds::POD,
        "t",
        "victim-0",
        serde_json::json!({ "image": "alpine", "job_name": "victim" }),
    );
    pod.meta.annotations.insert(VNI_ANNOTATION.into(), "true".into());
    api.create(pod, SimTime::ZERO).expect("pod");
    let crd = ApiObject::new(
        kinds::VNI,
        "t",
        "vni-victim",
        serde_json::to_value(VniCrdSpec { vni: TEST_VNI, r#virtual: false, claim: None })
            .expect("spec"),
    );
    api.create(crd, SimTime::ZERO).expect("crd");

    let args = CniArgs {
        container_id: "t_victim-0".into(),
        netns,
        ifname: "eth0".into(),
        pod: Some(PodRef { namespace: "t".into(), name: "victim-0".into(), uid: "u1".into() }),
    };
    (Rig { host, device, fabric, api, nic, root }, args)
}

/// A second pod of the same job (same VNI CRD) on the same node, with
/// its own sandbox netns.
fn sibling_pod(rig: &mut Rig) -> CniArgs {
    let pause = rig.host.spawn_detached("pause", Uid(0), Gid(0));
    let netns = rig.host.unshare_net_ns(pause).expect("netns");
    let mut pod = ApiObject::new(
        kinds::POD,
        "t",
        "victim-1",
        serde_json::json!({ "image": "alpine", "job_name": "victim" }),
    );
    pod.meta.annotations.insert(VNI_ANNOTATION.into(), "true".into());
    rig.api.create(pod, SimTime::ZERO).expect("pod");
    CniArgs {
        container_id: "t_victim-1".into(),
        netns,
        ifname: "eth0".into(),
        pod: Some(PodRef { namespace: "t".into(), name: "victim-1".into(), uid: "u2".into() }),
    }
}

impl Rig {
    fn ctx(&mut self) -> NodeCniCtx<'_> {
        NodeCniCtx {
            host: &mut self.host,
            device: &mut self.device,
            fabric: &mut self.fabric,
            api: &self.api,
            nic: self.nic,
            root: self.root,
        }
    }

    fn cni_services(&self) -> usize {
        self.device
            .driver
            .services()
            .iter()
            .filter(|s| s.label.starts_with("cni:"))
            .count()
    }

    fn has_grant(&self, vni: u16) -> bool {
        self.fabric.nic_has_vni(self.nic, Vni(vni))
    }
}

#[test]
fn mid_chain_failure_rolls_back_cxi_service_and_fabric_grant() {
    let (mut rig, args) = rig();
    let mut chain = NodeChain::new();
    chain.push(Box::new(BridgePlugin::new("cni0", "10.42.0")));
    chain.push(Box::new(CxiCniPlugin::default()));
    chain.push(Box::new(ExplodingPlugin));

    let (err, cost) = {
        let mut ctx = rig.ctx();
        chain.add(&mut ctx, &args).expect_err("third plugin explodes")
    };
    assert_eq!(err.code, 199);
    assert!(cost > SimDur::ZERO, "rollback cost is accounted");

    // The CXI service created by the second plugin must be destroyed...
    assert_eq!(rig.cni_services(), 0, "no leaked CXI service");
    // ...and its switch-port grant (the wire-level VNI reservation) gone.
    assert!(!rig.has_grant(TEST_VNI), "no leaked fabric grant");
    // The global VNI of the default service is untouched.
    assert!(rig.has_grant(Vni::GLOBAL.raw()));
}

#[test]
fn rollback_is_idempotent_with_an_explicit_del() {
    // After a failed ADD the runtime still issues a DEL (CNI spec); it
    // must be a no-op rather than an error.
    let (mut rig, args) = rig();
    let mut chain = NodeChain::new();
    chain.push(Box::new(BridgePlugin::new("cni0", "10.42.0")));
    chain.push(Box::new(CxiCniPlugin::default()));
    chain.push(Box::new(ExplodingPlugin));
    {
        let mut ctx = rig.ctx();
        chain.add(&mut ctx, &args).expect_err("explodes");
        let cost = chain.del(&mut ctx, &args);
        assert!(cost > SimDur::ZERO);
    }
    assert_eq!(rig.cni_services(), 0);
    assert!(!rig.has_grant(TEST_VNI));
}

#[test]
fn sibling_pod_rollback_leaves_first_pods_service_and_grant_intact() {
    // Pod 0 of the job ADDs cleanly; pod 1 (same VNI, same node) then
    // fails mid-chain. Its rollback must remove only pod 1's service and
    // must NOT revoke the shared switch-port grant pod 0 still relies
    // on; the grant goes only when the last service using the VNI does.
    let (mut rig, args0) = rig();
    let mut good = NodeChain::new();
    good.push(Box::new(BridgePlugin::new("cni0", "10.42.0")));
    good.push(Box::new(CxiCniPlugin::default()));
    {
        let mut ctx = rig.ctx();
        good.add(&mut ctx, &args0).expect("clean ADD for pod 0");
    }
    assert_eq!(rig.cni_services(), 1);
    assert!(rig.has_grant(TEST_VNI));

    let args1 = sibling_pod(&mut rig);
    let mut failing = NodeChain::new();
    failing.push(Box::new(BridgePlugin::new("cni0", "10.43.0")));
    failing.push(Box::new(CxiCniPlugin::default()));
    failing.push(Box::new(ExplodingPlugin));
    {
        let mut ctx = rig.ctx();
        failing.add(&mut ctx, &args1).expect_err("pod 1 ADD explodes");
    }
    assert_eq!(rig.cni_services(), 1, "pod 1's service rolled back, pod 0's kept");
    assert!(rig.has_grant(TEST_VNI), "shared grant survives the sibling rollback");

    // Tearing down pod 0 (the last user) retires the grant.
    {
        let mut ctx = rig.ctx();
        good.del(&mut ctx, &args0);
    }
    assert_eq!(rig.cni_services(), 0, "DEL tears the service down");
    assert!(!rig.has_grant(TEST_VNI), "grant retired with the last service");
}
