//! One-shot fixture generator: writes every library scenario's report
//! as pretty JSON under crates/core/tests/fixtures/.

use slingshot_k8s::{library, run_scenario};

fn main() {
    let dir = std::path::Path::new("crates/core/tests/fixtures");
    std::fs::create_dir_all(dir).unwrap();
    for scenario in library(42) {
        let name = scenario.name.clone();
        let report = run_scenario(&scenario);
        let json = serde_json::to_string_pretty(&report).unwrap();
        std::fs::write(dir.join(format!("{name}.json")), json + "\n").unwrap();
        eprintln!("wrote {name}");
    }
}
