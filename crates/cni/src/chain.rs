//! Chained plugin execution.
//!
//! Mirrors libcni's conflist semantics: on ADD, plugins run in order and
//! each receives the previous plugin's result (`prevResult`); on DEL,
//! plugins run in *reverse* order and every plugin is attempted even if
//! an earlier one fails (best-effort teardown). The paper's CXI plugin
//! relies on this chaining to compose with Flannel/Cilium-style primary
//! plugins (§III-B).

use shs_des::SimDur;

use crate::spec::{CniArgs, CniCommand, CniError, CniResult};

/// A CNI plugin over a node context `C` (the context carries whatever
/// node state the plugin manipulates: the host kernel, the CXI device,
/// the management-plane client, ...).
pub trait CniPlugin<C> {
    /// The plugin's `type` string.
    fn kind(&self) -> &str;

    /// ADD: join the container to this plugin's network. `prev` is the
    /// accumulated result of earlier plugins in the chain.
    fn add(
        &mut self,
        ctx: &mut C,
        args: &CniArgs,
        prev: CniResult,
    ) -> Result<CniResult, CniError>;

    /// DEL: remove the container from this plugin's network. Must be
    /// idempotent — DEL may be called repeatedly or without a prior ADD.
    fn del(&mut self, ctx: &mut C, args: &CniArgs) -> Result<(), CniError>;

    /// CHECK: verify expected state. Default: OK.
    fn check(&mut self, ctx: &mut C, args: &CniArgs) -> Result<(), CniError> {
        let _ = (ctx, args);
        Ok(())
    }

    /// Wall-clock cost of one invocation (process exec + work). Surfaces
    /// in pod-start latency and thus in the Figs. 9-12 admission numbers.
    fn cost(&self, cmd: CniCommand) -> SimDur {
        let _ = cmd;
        SimDur::from_millis(15)
    }
}

/// An executable plugin chain.
pub struct PluginChain<C> {
    plugins: Vec<Box<dyn CniPlugin<C>>>,
}

impl<C> Default for PluginChain<C> {
    fn default() -> Self {
        PluginChain { plugins: Vec::new() }
    }
}

impl<C> PluginChain<C> {
    /// Empty chain.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a plugin to the chain.
    pub fn push(&mut self, plugin: Box<dyn CniPlugin<C>>) -> &mut Self {
        self.plugins.push(plugin);
        self
    }

    /// Plugin type names, in order.
    pub fn kinds(&self) -> Vec<&str> {
        self.plugins.iter().map(|p| p.kind()).collect()
    }

    /// Run ADD through the chain. Returns the final result and the summed
    /// invocation cost. On failure, already-added plugins are rolled back
    /// with DEL (libcni behaviour) and the error is returned.
    pub fn add(&mut self, ctx: &mut C, args: &CniArgs) -> Result<(CniResult, SimDur), CniError> {
        let mut result = CniResult::default();
        let mut cost = SimDur::ZERO;
        for i in 0..self.plugins.len() {
            cost += self.plugins[i].cost(CniCommand::Add);
            match self.plugins[i].add(ctx, args, result.clone()) {
                Ok(r) => result = r,
                Err(e) => {
                    // Roll back the prefix, reverse order, best-effort.
                    for j in (0..=i).rev() {
                        cost += self.plugins[j].cost(CniCommand::Del);
                        let _ = self.plugins[j].del(ctx, args);
                    }
                    return Err(e);
                }
            }
        }
        Ok((result, cost))
    }

    /// Run DEL through the chain in reverse order; all plugins are
    /// attempted, the first error (if any) is reported at the end.
    pub fn del(&mut self, ctx: &mut C, args: &CniArgs) -> (Result<(), CniError>, SimDur) {
        let mut first_err = None;
        let mut cost = SimDur::ZERO;
        for p in self.plugins.iter_mut().rev() {
            cost += p.cost(CniCommand::Del);
            if let Err(e) = p.del(ctx, args) {
                first_err.get_or_insert(e);
            }
        }
        (first_err.map_or(Ok(()), Err), cost)
    }

    /// Run CHECK in order, stopping at the first failure.
    pub fn check(&mut self, ctx: &mut C, args: &CniArgs) -> Result<(), CniError> {
        for p in self.plugins.iter_mut() {
            p.check(ctx, args)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Interface;
    use shs_oslinux::NetNsId;

    /// Test context: a shared event log.
    #[derive(Default)]
    struct Log(Vec<String>);

    struct Recorder {
        name: &'static str,
        fail_add: bool,
    }

    impl CniPlugin<Log> for Recorder {
        fn kind(&self) -> &str {
            self.name
        }
        fn add(&mut self, ctx: &mut Log, _a: &CniArgs, mut prev: CniResult) -> Result<CniResult, CniError> {
            ctx.0.push(format!("{}:add", self.name));
            if self.fail_add {
                return Err(CniError::plugin(100, "boom"));
            }
            prev.interfaces.push(Interface { name: self.name.into(), sandbox: String::new() });
            Ok(prev)
        }
        fn del(&mut self, ctx: &mut Log, _a: &CniArgs) -> Result<(), CniError> {
            ctx.0.push(format!("{}:del", self.name));
            Ok(())
        }
    }

    fn args() -> CniArgs {
        CniArgs {
            container_id: "ctr-1".into(),
            netns: NetNsId(42),
            ifname: "eth0".into(),
            pod: None,
        }
    }

    #[test]
    fn add_runs_in_order_and_threads_result() {
        let mut chain = PluginChain::new();
        chain.push(Box::new(Recorder { name: "bridge", fail_add: false }));
        chain.push(Box::new(Recorder { name: "cxi", fail_add: false }));
        let mut log = Log::default();
        let (result, cost) = chain.add(&mut log, &args()).unwrap();
        assert_eq!(log.0, vec!["bridge:add", "cxi:add"]);
        let names: Vec<&str> = result.interfaces.iter().map(|i| i.name.as_str()).collect();
        assert_eq!(names, vec!["bridge", "cxi"], "prevResult accumulates");
        assert!(cost > SimDur::ZERO);
    }

    #[test]
    fn del_runs_in_reverse_order() {
        let mut chain = PluginChain::new();
        chain.push(Box::new(Recorder { name: "bridge", fail_add: false }));
        chain.push(Box::new(Recorder { name: "cxi", fail_add: false }));
        let mut log = Log::default();
        let (r, _) = chain.del(&mut log, &args());
        r.unwrap();
        assert_eq!(log.0, vec!["cxi:del", "bridge:del"]);
    }

    #[test]
    fn failed_add_rolls_back_prefix() {
        let mut chain = PluginChain::new();
        chain.push(Box::new(Recorder { name: "bridge", fail_add: false }));
        chain.push(Box::new(Recorder { name: "cxi", fail_add: true }));
        let mut log = Log::default();
        let err = chain.add(&mut log, &args()).unwrap_err();
        assert_eq!(err.code, 100);
        // bridge added, cxi failed, both rolled back in reverse order.
        assert_eq!(
            log.0,
            vec!["bridge:add", "cxi:add", "cxi:del", "bridge:del"]
        );
    }

    #[test]
    fn del_attempts_all_plugins_despite_errors() {
        struct FailingDel;
        impl CniPlugin<Log> for FailingDel {
            fn kind(&self) -> &str {
                "faildel"
            }
            fn add(&mut self, _c: &mut Log, _a: &CniArgs, prev: CniResult) -> Result<CniResult, CniError> {
                Ok(prev)
            }
            fn del(&mut self, ctx: &mut Log, _a: &CniArgs) -> Result<(), CniError> {
                ctx.0.push("faildel:del".into());
                Err(CniError::plugin(101, "del failed"))
            }
        }
        let mut chain = PluginChain::new();
        chain.push(Box::new(Recorder { name: "bridge", fail_add: false }));
        chain.push(Box::new(FailingDel));
        let mut log = Log::default();
        let (r, _) = chain.del(&mut log, &args());
        assert_eq!(r.unwrap_err().code, 101);
        assert_eq!(log.0, vec!["faildel:del", "bridge:del"], "bridge still ran");
    }

    #[test]
    fn kinds_lists_chain_order() {
        let mut chain = PluginChain::new();
        chain.push(Box::new(Recorder { name: "bridge", fail_add: false }));
        chain.push(Box::new(Recorder { name: "cxi", fail_add: false }));
        assert_eq!(chain.kinds(), vec!["bridge", "cxi"]);
    }
}
