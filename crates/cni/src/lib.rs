//! # shs-cni — the Container Network Interface framework
//!
//! CNI spec types (JSON network configuration lists, ADD/DEL/CHECK,
//! structured results, numbered errors), a chained-plugin executor with
//! libcni semantics (result threading on ADD, reverse best-effort DEL,
//! rollback on partial failure), and a reference `bridge` plugin that
//! stands in for the primary overlay plugin (Flannel/Cilium) the paper's
//! CXI plugin chains after (§III-B).
//!
//! The CXI CNI plugin itself — the paper's contribution — lives in the
//! `slingshot-k8s` core crate; this crate is deliberately generic.

pub mod bridge;
pub mod chain;
pub mod spec;

pub use bridge::{BridgePlugin, HasHost};
pub use chain::{CniPlugin, PluginChain};
pub use spec::{
    CniArgs, CniCommand, CniError, CniResult, Interface, IpConfig, NetworkConfList,
    PluginConf, PodRef, SUPPORTED_VERSIONS,
};
