//! Reference `bridge` plugin: the primary overlay-network plugin the CXI
//! plugin chains after (standing in for Flannel/Cilium, §III-B). Creates
//! a veth pair (host side on the bridge, container side in the pod's
//! netns) and assigns an address from a host-local /24.

use std::collections::BTreeMap;

use shs_des::SimDur;
use shs_oslinux::Host;

use crate::chain::CniPlugin;
use crate::spec::{CniArgs, CniCommand, CniError, CniResult, Interface, IpConfig};

/// Contexts that expose the node's kernel to plugins.
pub trait HasHost {
    /// The node's host kernel.
    fn host_mut(&mut self) -> &mut Host;
}

impl HasHost for Host {
    fn host_mut(&mut self) -> &mut Host {
        self
    }
}

/// The bridge plugin with a host-local IPAM pool.
#[derive(Debug)]
pub struct BridgePlugin {
    /// Bridge device name on the host.
    pub bridge: String,
    /// /24 prefix, e.g. "10.42.0".
    subnet_prefix: String,
    /// container-id -> allocated host ip suffix.
    allocated: BTreeMap<String, u8>,
    next_suffix: u8,
}

impl BridgePlugin {
    /// New plugin bridging onto `bridge` with addresses from
    /// `{subnet_prefix}.2` upward.
    pub fn new(bridge: impl Into<String>, subnet_prefix: impl Into<String>) -> Self {
        BridgePlugin {
            bridge: bridge.into(),
            subnet_prefix: subnet_prefix.into(),
            allocated: BTreeMap::new(),
            next_suffix: 2,
        }
    }

    /// Currently allocated addresses (diagnostics).
    pub fn allocated(&self) -> usize {
        self.allocated.len()
    }
}

impl<C: HasHost> CniPlugin<C> for BridgePlugin {
    fn kind(&self) -> &str {
        "bridge"
    }

    fn add(&mut self, ctx: &mut C, args: &CniArgs, mut prev: CniResult) -> Result<CniResult, CniError> {
        let host = ctx.host_mut();
        let host_ns = host.host_netns();
        // The container netns must exist.
        if host.net_namespace(args.netns).is_none() {
            return Err(CniError::invalid_environment(format!(
                "netns {} does not exist",
                args.netns.raw()
            )));
        }
        if self.allocated.contains_key(&args.container_id) {
            return Err(CniError::invalid_config(format!(
                "container {} already added",
                args.container_id
            )));
        }
        let suffix = self.next_suffix;
        if suffix == u8::MAX {
            return Err(CniError::plugin(110, "IPAM pool exhausted"));
        }
        self.next_suffix += 1;
        self.allocated.insert(args.container_id.clone(), suffix);

        // veth pair: host side + container side.
        let veth_host = format!("veth{}", &args.container_id);
        host.net_namespace_mut(host_ns)
            .expect("host netns exists")
            .attach_interface(&veth_host);
        host.net_namespace_mut(args.netns)
            .expect("checked above")
            .attach_interface(&args.ifname);

        let if_index = prev.interfaces.len();
        prev.interfaces.push(Interface {
            name: args.ifname.clone(),
            sandbox: format!("netns:{}", args.netns.raw()),
        });
        prev.ips.push(IpConfig {
            address: format!("{}.{}/24", self.subnet_prefix, suffix),
            interface: if_index,
        });
        Ok(prev)
    }

    fn del(&mut self, ctx: &mut C, args: &CniArgs) -> Result<(), CniError> {
        let host = ctx.host_mut();
        let host_ns = host.host_netns();
        let veth_host = format!("veth{}", &args.container_id);
        if let Some(ns) = host.net_namespace_mut(host_ns) {
            ns.detach_interface(&veth_host);
        }
        if let Some(ns) = host.net_namespace_mut(args.netns) {
            ns.detach_interface(&args.ifname);
        }
        // Idempotent: releasing an unknown container is fine.
        self.allocated.remove(&args.container_id);
        Ok(())
    }

    fn check(&mut self, ctx: &mut C, args: &CniArgs) -> Result<(), CniError> {
        if !self.allocated.contains_key(&args.container_id) {
            return Err(CniError::invalid_environment("container not added"));
        }
        let host = ctx.host_mut();
        let ok = host
            .net_namespace(args.netns)
            .is_some_and(|ns| ns.interfaces.iter().any(|i| i == &args.ifname));
        if ok {
            Ok(())
        } else {
            Err(CniError::invalid_environment("interface missing in netns"))
        }
    }

    fn cost(&self, cmd: CniCommand) -> SimDur {
        match cmd {
            // veth + IPAM work dominates ADD.
            CniCommand::Add => SimDur::from_millis(25),
            CniCommand::Del => SimDur::from_millis(12),
            CniCommand::Check => SimDur::from_millis(5),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::PluginChain;
    use shs_oslinux::{Gid, Uid};

    fn setup() -> (Host, CniArgs) {
        let mut host = Host::new("n0");
        let pid = host.spawn_detached("pause", Uid(0), Gid(0));
        let netns = host.unshare_net_ns(pid).unwrap();
        let args = CniArgs {
            container_id: "abc123".into(),
            netns,
            ifname: "eth0".into(),
            pod: None,
        };
        (host, args)
    }

    #[test]
    fn add_creates_veth_and_assigns_ip() {
        let (mut host, args) = setup();
        let mut plugin = BridgePlugin::new("cni0", "10.42.0");
        let result = plugin.add(&mut host, &args, CniResult::default()).unwrap();
        assert_eq!(result.interfaces.len(), 1);
        assert_eq!(result.ips[0].address, "10.42.0.2/24");
        let ns = host.net_namespace(args.netns).unwrap();
        assert!(ns.interfaces.iter().any(|i| i == "eth0"));
        let host_ns = host.net_namespace(host.host_netns()).unwrap();
        assert!(host_ns.interfaces.iter().any(|i| i == "vethabc123"));
    }

    #[test]
    fn sequential_adds_get_distinct_ips() {
        let (mut host, args1) = setup();
        let pid2 = host.spawn_detached("pause2", Uid(0), Gid(0));
        let ns2 = host.unshare_net_ns(pid2).unwrap();
        let args2 = CniArgs { container_id: "def".into(), netns: ns2, ..args1.clone() };
        let mut plugin = BridgePlugin::new("cni0", "10.42.0");
        let r1 = plugin.add(&mut host, &args1, CniResult::default()).unwrap();
        let r2 = plugin.add(&mut host, &args2, CniResult::default()).unwrap();
        assert_ne!(r1.ips[0].address, r2.ips[0].address);
        assert_eq!(plugin.allocated(), 2);
    }

    #[test]
    fn duplicate_add_rejected() {
        let (mut host, args) = setup();
        let mut plugin = BridgePlugin::new("cni0", "10.42.0");
        plugin.add(&mut host, &args, CniResult::default()).unwrap();
        let err = plugin.add(&mut host, &args, CniResult::default()).unwrap_err();
        assert_eq!(err.code, 4);
    }

    #[test]
    fn add_to_missing_netns_fails() {
        let (mut host, mut args) = setup();
        args.netns = shs_oslinux::NetNsId(999_999);
        let mut plugin = BridgePlugin::new("cni0", "10.42.0");
        let err = plugin.add(&mut host, &args, CniResult::default()).unwrap_err();
        assert_eq!(err.code, 7);
    }

    #[test]
    fn del_is_idempotent_and_cleans_up() {
        let (mut host, args) = setup();
        let mut plugin = BridgePlugin::new("cni0", "10.42.0");
        plugin.add(&mut host, &args, CniResult::default()).unwrap();
        plugin.del(&mut host, &args).unwrap();
        plugin.del(&mut host, &args).unwrap();
        assert_eq!(plugin.allocated(), 0);
        let ns = host.net_namespace(args.netns).unwrap();
        assert!(!ns.interfaces.iter().any(|i| i == "eth0"));
    }

    #[test]
    fn check_reflects_state() {
        let (mut host, args) = setup();
        let mut plugin = BridgePlugin::new("cni0", "10.42.0");
        assert!(plugin.check(&mut host, &args).is_err());
        plugin.add(&mut host, &args, CniResult::default()).unwrap();
        plugin.check(&mut host, &args).unwrap();
        plugin.del(&mut host, &args).unwrap();
        assert!(plugin.check(&mut host, &args).is_err());
    }

    #[test]
    fn works_inside_a_chain() {
        let (mut host, args) = setup();
        let mut chain: PluginChain<Host> = PluginChain::new();
        chain.push(Box::new(BridgePlugin::new("cni0", "10.42.0")));
        let (result, cost) = chain.add(&mut host, &args).unwrap();
        assert_eq!(result.ips.len(), 1);
        assert_eq!(cost, SimDur::from_millis(25));
        let (r, _) = chain.del(&mut host, &args);
        r.unwrap();
    }
}
