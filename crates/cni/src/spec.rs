//! Container Network Interface (CNI) specification types.
//!
//! Follows the CNI spec the paper's plugin implements against
//! (reference \[6\] in the paper): network configuration lists in JSON,
//! the
//! ADD/DEL/CHECK verbs, structured results, and numbered error codes.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use shs_oslinux::NetNsId;

/// Supported CNI spec versions.
pub const SUPPORTED_VERSIONS: [&str; 3] = ["0.4.0", "1.0.0", "1.1.0"];

/// CNI operations ("commands").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CniCommand {
    /// Add the container to the network(s).
    Add,
    /// Remove the container from the network(s).
    Del,
    /// Verify the container's networking is as expected.
    Check,
}

/// One plugin's network configuration (an entry in a conflist).
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct PluginConf {
    /// Plugin binary/type name (e.g. `"bridge"`, `"cxi"`).
    #[serde(rename = "type")]
    pub plugin_type: String,
    /// Plugin-specific keys, kept verbatim.
    #[serde(flatten)]
    pub extra: BTreeMap<String, serde_json::Value>,
}

/// A network configuration list (`*.conflist`), the unit the container
/// runtime hands to libcni. The paper's CXI plugin is deployed as a
/// *chained* entry after the primary plugin (§III-B).
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct NetworkConfList {
    /// Spec version.
    #[serde(rename = "cniVersion")]
    pub cni_version: String,
    /// Network name.
    pub name: String,
    /// Ordered plugin chain.
    pub plugins: Vec<PluginConf>,
}

impl NetworkConfList {
    /// Parse and validate a conflist JSON document.
    pub fn parse(json: &str) -> Result<NetworkConfList, CniError> {
        let conf: NetworkConfList = serde_json::from_str(json)
            .map_err(|e| CniError::decoding(format!("invalid conflist: {e}")))?;
        if !SUPPORTED_VERSIONS.contains(&conf.cni_version.as_str()) {
            return Err(CniError::incompatible_version(&conf.cni_version));
        }
        if conf.plugins.is_empty() {
            return Err(CniError::invalid_config("empty plugin list"));
        }
        Ok(conf)
    }
}

/// Pod identity passed by Kubernetes runtimes via CNI args
/// (`K8S_POD_NAMESPACE` etc.). The paper's plugin uses this to query the
/// management plane for annotations (§III-B).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PodRef {
    /// Kubernetes namespace.
    pub namespace: String,
    /// Pod name.
    pub name: String,
    /// Pod UID.
    pub uid: String,
}

/// Invocation arguments (the CNI "runtime parameters").
#[derive(Debug, Clone, PartialEq)]
pub struct CniArgs {
    /// Container id (sandbox id).
    pub container_id: String,
    /// The container's network namespace (inode; a path in real CNI).
    pub netns: NetNsId,
    /// Interface name to configure inside the container.
    pub ifname: String,
    /// Pod identity, when invoked by a Kubernetes runtime.
    pub pod: Option<PodRef>,
}

/// A configured interface in a result.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Interface {
    /// Interface name.
    pub name: String,
    /// Network namespace it lives in (`""` = host).
    pub sandbox: String,
}

/// An assigned IP in a result.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IpConfig {
    /// CIDR address, e.g. `10.42.0.5/24`.
    pub address: String,
    /// Index into the result's interface list.
    pub interface: usize,
}

/// A structured CNI result, passed down the chain as `prevResult`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CniResult {
    /// Interfaces created/configured so far.
    pub interfaces: Vec<Interface>,
    /// IPs assigned so far.
    pub ips: Vec<IpConfig>,
    /// Plugin-specific extension data (the CXI plugin records the CXI
    /// service id and VNI here for diagnostics).
    #[serde(default)]
    pub extensions: BTreeMap<String, serde_json::Value>,
}

/// CNI error with spec-defined numeric codes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CniError {
    /// Spec error code (1-99 reserved by the spec, 100+ plugin-specific).
    pub code: u32,
    /// Human-readable message.
    pub msg: String,
}

impl CniError {
    /// Code 1: incompatible CNI version.
    pub fn incompatible_version(v: &str) -> Self {
        CniError { code: 1, msg: format!("incompatible CNI version {v}") }
    }
    /// Code 4: invalid network config.
    pub fn invalid_config(msg: impl Into<String>) -> Self {
        CniError { code: 4, msg: msg.into() }
    }
    /// Code 6: failed to decode content.
    pub fn decoding(msg: impl Into<String>) -> Self {
        CniError { code: 6, msg: msg.into() }
    }
    /// Code 7: invalid environment (e.g. netns gone).
    pub fn invalid_environment(msg: impl Into<String>) -> Self {
        CniError { code: 7, msg: msg.into() }
    }
    /// Code 11: try again later.
    pub fn try_again(msg: impl Into<String>) -> Self {
        CniError { code: 11, msg: msg.into() }
    }
    /// Plugin-specific error (code ≥ 100).
    pub fn plugin(code: u32, msg: impl Into<String>) -> Self {
        debug_assert!(code >= 100);
        CniError { code, msg: msg.into() }
    }
}

impl core::fmt::Display for CniError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "CNI error {}: {}", self.code, self.msg)
    }
}

impl std::error::Error for CniError {}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
        "cniVersion": "1.0.0",
        "name": "cluster-net",
        "plugins": [
            { "type": "bridge", "bridge": "cni0", "subnet": "10.42.0.0/24" },
            { "type": "cxi", "vniEndpoint": "http://vni-endpoint.kube-system" }
        ]
    }"#;

    #[test]
    fn parses_chained_conflist() {
        let conf = NetworkConfList::parse(SAMPLE).unwrap();
        assert_eq!(conf.name, "cluster-net");
        assert_eq!(conf.plugins.len(), 2);
        assert_eq!(conf.plugins[0].plugin_type, "bridge");
        assert_eq!(conf.plugins[1].plugin_type, "cxi");
        assert_eq!(
            conf.plugins[1].extra["vniEndpoint"],
            serde_json::json!("http://vni-endpoint.kube-system")
        );
    }

    #[test]
    fn rejects_unknown_version() {
        let json = SAMPLE.replace("1.0.0", "9.9.9");
        let err = NetworkConfList::parse(&json).unwrap_err();
        assert_eq!(err.code, 1);
    }

    #[test]
    fn rejects_empty_chain() {
        let err = NetworkConfList::parse(
            r#"{"cniVersion":"1.0.0","name":"x","plugins":[]}"#,
        )
        .unwrap_err();
        assert_eq!(err.code, 4);
    }

    #[test]
    fn rejects_malformed_json() {
        let err = NetworkConfList::parse("{nope").unwrap_err();
        assert_eq!(err.code, 6);
    }

    #[test]
    fn result_roundtrips_through_json() {
        let mut r = CniResult::default();
        r.interfaces.push(Interface { name: "eth0".into(), sandbox: "netns-5".into() });
        r.ips.push(IpConfig { address: "10.42.0.7/24".into(), interface: 0 });
        r.extensions.insert("cxi/vni".into(), serde_json::json!(1024));
        let json = serde_json::to_string(&r).unwrap();
        let back: CniResult = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn error_codes_follow_spec_ranges() {
        assert_eq!(CniError::incompatible_version("x").code, 1);
        assert_eq!(CniError::invalid_config("x").code, 4);
        assert_eq!(CniError::decoding("x").code, 6);
        assert_eq!(CniError::invalid_environment("x").code, 7);
        assert_eq!(CniError::try_again("x").code, 11);
        assert!(CniError::plugin(100, "x").code >= 100);
    }
}
