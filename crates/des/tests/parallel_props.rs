//! Property oracle for the parallel coordinator: arbitrary cascading
//! event workloads over 2–4 shards must apply events in an order
//! bit-identical to the serial [`Sim`] — and bit-identical to
//! themselves at every thread count.
//!
//! Two properties, because the engines' tie-breaks differ by design:
//!
//! 1. **Serial oracle** (`parallel_matches_serial_sim_on_unique_times`):
//!    when no two events share a timestamp, `(time, seq)` order is just
//!    time order, so the parallel engine's per-shard apply order must
//!    equal the serial `Sim`'s. Uniqueness is *by construction*: every
//!    event gets a structural id (base-8 tree numbering, stable across
//!    both engines) embedded in the low 13 bits of its timestamp.
//! 2. **Cross-thread bit-identity** (`thread_count_never_changes_the_
//!    trace`): with ties allowed, serial-vs-parallel order may
//!    legitimately differ (the serial `Sim` breaks a local-vs-remote tie
//!    by global scheduling order; the parallel engine defers remote
//!    injection to the barrier). What must *never* differ is the result
//!    across thread counts — traces, clocks, window and injection
//!    counts are compared for threads ∈ {1, 2, 3, 4}.
//!
//! Cascades are a pure function of the structural id (a splitmix-style
//! hash decides fan-out, destination and delays), so both engines
//! replay the identical workload from the same generated seed events.

use proptest::prelude::*;
use shs_des::{ParallelSim, ShardSim, Sim, SimDur, SimTime};

/// Low-bits width reserved for the structural id ⇒ the uniqueness tag.
const ID_BITS: u32 = 13;
/// Lookahead for the unique-time workload: one id-tag quantum, so a
/// remote bump of 2 quanta always clears it (see `child_time`).
const LOOKAHEAD: u64 = 1 << ID_BITS;
/// Max structural fan-out; ids are base-(FANOUT) tree-numbered.
const FANOUT: u32 = 8;

/// Per-shard apply trace: (time ns, structural id).
type Trace = Vec<(u64, u32)>;

#[derive(Debug, Clone)]
struct Seed {
    shard: usize,
    raw_t: u64,
    fuel: u8,
}

#[derive(Debug, Clone)]
struct Workload {
    nshards: usize,
    seeds: Vec<Seed>,
}

fn workload_strategy(max_fuel: u8) -> impl Strategy<Value = Workload> {
    (2usize..=4)
        .prop_flat_map(move |nshards| {
            let seed = (0..nshards, 0u64..1024, 0..=max_fuel)
                .prop_map(|(shard, raw_t, fuel)| Seed { shard, raw_t, fuel });
            (Just(nshards), prop::collection::vec(seed, 1..24))
        })
        .prop_map(|(nshards, seeds)| Workload { nshards, seeds })
}

/// Deterministic per-id hash driving the cascade shape (splitmix64).
fn h(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A cascade step: what event `id` (holding `fuel`) spawns on `shard`.
/// Pure data, identical for both engines.
struct Child {
    id: u32,
    shard: usize,
    time: u64,
    remote: bool,
    fuel: u8,
}

/// Children of `(id, shard, now, fuel)` in an `nshards`-wide world.
/// `unique_times` selects the id-tagged time construction (collision
/// free) or raw hashed deltas (ties allowed).
fn children(id: u32, shard: usize, now: u64, fuel: u8, nshards: usize, unique_times: bool) -> Vec<Child> {
    if fuel == 0 {
        return Vec::new();
    }
    let n = (h(id as u64) % 3) as u32; // 0..=2 children
    (0..n)
        .map(|k| {
            let cid = id * FANOUT + 64 + k;
            let hk = h((id as u64) << 8 | k as u64);
            let remote = nshards > 1 && hk.is_multiple_of(2);
            let dst = if remote { (shard + 1 + (hk >> 8) as usize % (nshards - 1)) % nshards } else { shard };
            let raw = (hk >> 16) % 512;
            let time = if unique_times {
                // Replace the low id-tag bits and bump the high part by
                // 1 (local) or 2 (remote) quanta + raw: times stay
                // strictly increasing down the tree, all ids < 2^13 are
                // unique, and a remote delta is ≥ LOOKAHEAD + 1.
                let bump = if remote { 2 } else { 1 };
                ((now >> ID_BITS) + bump + raw) << ID_BITS | cid as u64
            } else {
                // Ties allowed: pure hashed delta, remote clamped to
                // the lookahead by construction.
                now + if remote { LOOKAHEAD + raw } else { raw }
            };
            Child { id: cid, shard: dst, time, remote, fuel: fuel - 1 }
        })
        .collect()
}

/// Serial oracle: one `Sim` whose world is every shard's trace; remote
/// sends become plain `at` calls on the global queue.
fn run_serial(w: &Workload, unique_times: bool) -> Vec<Trace> {
    fn exec(sim: &mut Sim<Vec<Trace>>, id: u32, shard: usize, fuel: u8, nshards: usize, uniq: bool) {
        let now = sim.now().as_nanos();
        sim.world[shard].push((now, id));
        for c in children(id, shard, now, fuel, nshards, uniq) {
            sim.at(SimTime::from_nanos(c.time), move |s| {
                exec(s, c.id, c.shard, c.fuel, nshards, uniq);
            });
        }
    }
    let mut sim: Sim<Vec<Trace>> = Sim::new(vec![Vec::new(); w.nshards]);
    let nshards = w.nshards;
    for (i, s) in w.seeds.iter().enumerate() {
        let t = if unique_times { s.raw_t << ID_BITS | i as u64 } else { s.raw_t };
        let (id, shard, fuel) = (i as u32, s.shard, s.fuel);
        sim.at(SimTime::from_nanos(t), move |sm| exec(sm, id, shard, fuel, nshards, unique_times));
    }
    sim.run();
    sim.world
}

/// The system under test: one shard per group, cascades routed through
/// `send_to` whenever they cross shards.
fn run_parallel(w: &Workload, unique_times: bool, threads: usize) -> (Vec<Trace>, ParallelSim<Trace>) {
    fn exec(s: &mut ShardSim<Trace>, id: u32, fuel: u8, nshards: usize, uniq: bool) {
        let now = s.now().as_nanos();
        s.world.push((now, id));
        let here = s.id();
        for c in children(id, here, now, fuel, nshards, uniq) {
            if c.remote {
                let delay = SimDur::from_nanos(c.time - now);
                s.send_to(c.shard, delay, move |d| exec(d, c.id, c.fuel, nshards, uniq));
            } else {
                s.at(SimTime::from_nanos(c.time), move |d| exec(d, c.id, c.fuel, nshards, uniq));
            }
        }
    }
    let mut psim = ParallelSim::new(vec![Trace::new(); w.nshards], SimDur::from_nanos(LOOKAHEAD));
    let nshards = w.nshards;
    for (i, s) in w.seeds.iter().enumerate() {
        let t = if unique_times { s.raw_t << ID_BITS | i as u64 } else { s.raw_t };
        let (id, fuel) = (i as u32, s.fuel);
        psim.shard_mut(s.shard)
            .at(SimTime::from_nanos(t), move |sh| exec(sh, id, fuel, nshards, unique_times));
    }
    psim.run(threads);
    let traces = psim.shards().map(|s| s.world.clone()).collect();
    (traces, psim)
}

proptest! {
    /// With globally unique timestamps the parallel apply order must be
    /// bit-identical to the serial `Sim`'s, shard by shard.
    #[test]
    fn parallel_matches_serial_sim_on_unique_times(w in workload_strategy(2)) {
        let serial = run_serial(&w, true);
        for threads in [1usize, 2, 4] {
            let (traces, psim) = run_parallel(&w, true, threads);
            prop_assert_eq!(&traces, &serial, "threads={}", threads);
            if let Some(slack) = psim.min_inject_slack() {
                prop_assert!(slack >= 0, "conservative violation: slack {}", slack);
            }
        }
        // Sanity: the oracle actually executed every seed's cascade.
        let total: usize = serial.iter().map(|t| t.len()).sum();
        prop_assert!(total >= w.seeds.len());
    }

    /// With ties allowed, the trace is a function of the workload alone
    /// — never of the thread count.
    #[test]
    fn thread_count_never_changes_the_trace(w in workload_strategy(2)) {
        let (base_traces, base) = run_parallel(&w, false, 1);
        for threads in [2usize, 3, 4] {
            let (traces, psim) = run_parallel(&w, false, threads);
            prop_assert_eq!(&traces, &base_traces, "threads={}", threads);
            prop_assert_eq!(psim.events_executed(), base.events_executed());
            prop_assert_eq!(psim.windows(), base.windows());
            prop_assert_eq!(psim.injected(), base.injected());
            for g in 0..w.nshards {
                prop_assert_eq!(psim.shard(g).now(), base.shard(g).now());
            }
            if let Some(slack) = psim.min_inject_slack() {
                prop_assert!(slack >= 0);
            }
        }
    }
}
