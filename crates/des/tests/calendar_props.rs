//! Property oracle for the calendar queue: arbitrary schedule/pop
//! interleavings must pop in an order bit-identical to the original
//! `BinaryHeap` event queue's (earliest `(time, seq)` first).
//!
//! The reference is the exact structure `Sim` used before the calendar
//! queue: a max-heap over `Reverse<(time, seq)>`. Because `(time, seq)`
//! is a total order (the insertion counter is unique), both structures
//! have exactly one legal pop sequence — so equality here proves the
//! replacement changes no observable simulation behavior.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use proptest::prelude::*;
use shs_des::{CalendarQueue, SimTime};

const HORIZON: u64 = CalendarQueue::<u32>::BUCKET_NS * 256;

/// One step of an interleaving: schedule an event `delta` ns after the
/// current watermark (the largest time popped so far, mirroring the
/// simulator's monotone clock), or pop one event from both structures.
#[derive(Debug, Clone)]
enum Op {
    Push(u64),
    Pop,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        // Near-future: inside one bucket, and exact duplicates (delta 0
        // collides with the watermark; repeated small deltas collide
        // with each other).
        4 => (0u64..4096).prop_map(Op::Push),
        // Mid-range: a few buckets out.
        2 => (4096u64..HORIZON).prop_map(Op::Push),
        // Far-future: past the ring horizon (overflow), including
        // multi-lap distances that force wraparound migration.
        2 => (HORIZON..20 * HORIZON).prop_map(Op::Push),
        3 => Just(Op::Pop),
    ]
}

proptest! {
    #[test]
    fn pop_order_is_bit_identical_to_the_binary_heap(
        ops in prop::collection::vec(op_strategy(), 1..400)
    ) {
        let mut cal = CalendarQueue::new();
        let mut heap: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
        let mut seq = 0u64;
        let mut watermark = 0u64; // largest popped time = the sim clock
        for op in ops {
            match op {
                Op::Push(delta) => {
                    let t = watermark + delta;
                    cal.push(SimTime::from_nanos(t), seq, seq);
                    heap.push(Reverse((t, seq)));
                    seq += 1;
                }
                Op::Pop => {
                    let expect = heap.pop();
                    let got = cal.pop().map(|e| (e.time.as_nanos(), e.seq));
                    prop_assert_eq!(got, expect.map(|Reverse(k)| k));
                    if let Some((t, _)) = got {
                        watermark = watermark.max(t);
                    }
                }
            }
        }
        // Drain both completely: the tail must agree too (this is where
        // overflow events cross the ring wraparound).
        loop {
            let expect = heap.pop().map(|Reverse(k)| k);
            let got = cal.pop().map(|e| (e.time.as_nanos(), e.seq));
            prop_assert_eq!(got, expect);
            if got.is_none() {
                break;
            }
        }
        prop_assert!(cal.is_empty());
    }
}
