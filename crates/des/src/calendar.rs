//! A bucketed calendar queue: the [`Sim`](crate::Sim) event queue.
//!
//! Replaces the original `BinaryHeap` with the classic discrete-event
//! structure (Brown 1988): a ring of time buckets plus an overflow list
//! for events beyond the ring's horizon. Near-future scheduling — the
//! overwhelmingly common case for [`Sim`](crate::Sim)'s real load, the
//! kubelet/controller scenario engine, whose latencies and backoffs are
//! milliseconds apart — becomes an array index instead of a global heap
//! sift, and popping touches one small per-bucket heap instead of
//! rebalancing a queue-wide structure.
//!
//! **Ordering contract**: entries pop in strictly ascending `(time,
//! seq)` order. `seq` is the queue-wide insertion counter, so ties in
//! time drain FIFO. Because `(time, seq)` is a total order (no two
//! entries share a `seq`), the pop sequence is *bit-identical* to the
//! old heap's — proven by the oracle test in
//! `tests/calendar_props.rs`, which drives both structures through
//! arbitrary schedule/pop interleavings.
//!
//! # Design notes
//!
//! * **Bucket width** is `2^16` ns (≈ 65.5 µs, [`CalendarQueue::BUCKET_NS`]),
//!   chosen empirically against both `Sim` regimes. The k8s
//!   control-plane scenarios schedule at millisecond granularity (4 ms
//!   API writes, 10 ms webhooks, 40 ms kubelet syncs): buckets much
//!   narrower than that (µs-scale) push nearly every event past the
//!   ring horizon, so each window advance rescans the whole overflow
//!   list; buckets much wider (ms-scale) funnel whole scenarios into a
//!   few buckets, wasting the day-granular window. 65.5 µs buckets give
//!   a ≈ 16.8 ms horizon that absorbs the common control-plane
//!   latencies, and measured fastest on both the churn and steady-state
//!   scenarios (the ns/µs-scale users — `shs_fabric::pktsim`, test
//!   rigs — keep few events in flight, so bucket width barely matters
//!   there; the fabric and MPI data paths never enqueue here at all —
//!   they advance explicit per-rank virtual-time cursors; the sharded
//!   fabric sweeps do enqueue µs-scale bursts, which the per-bucket
//!   heaps below absorb).
//! * **Ring size** is 256 buckets (≈ 16.8 ms horizon). Events past the
//!   horizon (kubelet retry backoffs, multi-second job runtimes) wait
//!   in an unsorted `overflow` list whose minimum *day* (bucket-granular
//!   timestamp) is tracked incrementally; when the cursor reaches it,
//!   eligible events migrate into the ring in one pass. A day maps to
//!   bucket `day % 256`, and any 256 consecutive days map to distinct
//!   buckets, so within the active window each bucket holds exactly one
//!   day's events.
//! * **Occupancy bitmask** (`[u64; 4]`) finds the next non-empty bucket
//!   without touching 256 bucket headers.
//! * **Buckets are hybrid** (`Bucket`): an unsorted `Vec` popped by
//!   linear min-scan while small — the fastest structure for the
//!   handful of entries a bucket usually holds — that promotes itself
//!   to a binary min-heap on `(time, seq)` once a dense burst crosses
//!   32 entries. The sharded fabric sweeps push thousands of
//!   sub-bucket-width events into one bucket, where a per-pop scan
//!   goes quadratic in the burst size; the heap form keeps dense days
//!   at `O(log k)` per operation, and demotes back to the `Vec` form
//!   when drained.

use std::collections::BinaryHeap;

use crate::time::SimTime;

const BUCKET_SHIFT: u32 = 16;
const NBUCKETS: usize = 256;
const DAY_MASK: u64 = NBUCKETS as u64 - 1;
const WORDS: usize = NBUCKETS / 64;

/// One queued item with its schedule key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry<T> {
    /// Absolute due time.
    pub time: SimTime,
    /// Queue-wide insertion counter: the FIFO tie-break within a time.
    pub seq: u64,
    /// The payload (an event closure in [`Sim`](crate::Sim)).
    pub item: T,
}

/// [`Entry`] with inverted `(time, seq)` ordering, so a max-[`BinaryHeap`]
/// of these behaves as a min-heap on the schedule key. The payload is
/// deliberately excluded from the comparison (and `seq` is unique
/// queue-wide, so the order is total without it).
struct HeapEntry<T>(Entry<T>);

/// A bucket holding more entries than this promotes itself to a heap.
/// Below it, a linear min-scan per pop is cheaper than heap sifts —
/// swapping unconditionally to heap buckets measured ~15% slower on the
/// churn and steady-state scenarios, whose buckets hold a handful of
/// entries each.
const PROMOTE_AT: usize = 32;

/// One ring bucket. Starts as an unsorted `Vec` popped by linear
/// min-scan — the fastest structure for the handful of entries a bucket
/// usually holds — and promotes itself to a binary min-heap once a
/// dense burst crosses [`PROMOTE_AT`] (the sharded fabric sweeps push
/// thousands of sub-bucket-width events into one bucket, where the
/// per-pop scan went quadratic). Draining a promoted bucket to empty
/// demotes it back to the `Vec` form, so a one-off burst does not tax
/// the slot's later (sparse) days.
enum Bucket<T> {
    Lin(Vec<Entry<T>>),
    Heap(BinaryHeap<HeapEntry<T>>),
}

impl<T> Bucket<T> {
    #[inline]
    fn is_empty(&self) -> bool {
        match self {
            Bucket::Lin(v) => v.is_empty(),
            Bucket::Heap(h) => h.is_empty(),
        }
    }

    #[inline]
    fn push(&mut self, entry: Entry<T>) {
        match self {
            Bucket::Lin(v) if v.len() < PROMOTE_AT => v.push(entry),
            Bucket::Lin(v) => {
                let mut heap: BinaryHeap<HeapEntry<T>> =
                    std::mem::take(v).into_iter().map(HeapEntry).collect();
                heap.push(HeapEntry(entry));
                *self = Bucket::Heap(heap);
            }
            Bucket::Heap(h) => h.push(HeapEntry(entry)),
        }
    }

    /// Remove and return the `(time, seq)`-minimal entry. The bucket
    /// must be non-empty.
    fn pop_min(&mut self) -> Entry<T> {
        match self {
            Bucket::Lin(v) => {
                debug_assert!(!v.is_empty());
                let mut mi = 0;
                for (i, e) in v.iter().enumerate().skip(1) {
                    let m = &v[mi];
                    if (e.time, e.seq) < (m.time, m.seq) {
                        mi = i;
                    }
                }
                v.swap_remove(mi)
            }
            Bucket::Heap(h) => {
                let entry = h.pop().expect("pop_min on an empty bucket").0;
                if h.is_empty() {
                    *self = Bucket::Lin(Vec::new());
                }
                entry
            }
        }
    }

    /// Due time of the minimal entry, without removing it.
    fn min_time(&self) -> Option<SimTime> {
        match self {
            Bucket::Lin(v) => v.iter().map(|e| e.time).min(),
            Bucket::Heap(h) => h.peek().map(|e| e.0.time),
        }
    }
}

impl<T> PartialEq for HeapEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        (self.0.time, self.0.seq) == (other.0.time, other.0.seq)
    }
}

impl<T> Eq for HeapEntry<T> {}

impl<T> PartialOrd for HeapEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for HeapEntry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Inverted: the heap's max is the schedule-order minimum.
        (other.0.time, other.0.seq).cmp(&(self.0.time, self.0.seq))
    }
}

/// The bucketed calendar queue. See the module docs for the design.
pub struct CalendarQueue<T> {
    buckets: Vec<Bucket<T>>,
    /// Bit `b` set ⇔ `buckets[b]` is non-empty.
    occupied: [u64; WORDS],
    /// Events whose day lies at or past `base_day + NBUCKETS`.
    overflow: Vec<Entry<T>>,
    /// Minimum day over `overflow` (`u64::MAX` when empty). Maintained
    /// on push; recomputed on migration.
    overflow_min_day: u64,
    /// The earliest day the ring window can still hold events for. Only
    /// advances (time is monotone), so `[base_day, base_day + NBUCKETS)`
    /// is the active window.
    base_day: u64,
    len: usize,
}

#[inline]
fn day_of(t: SimTime) -> u64 {
    t.as_nanos() >> BUCKET_SHIFT
}

impl<T> CalendarQueue<T> {
    /// Width of one bucket in nanoseconds.
    pub const BUCKET_NS: u64 = 1 << BUCKET_SHIFT;

    /// An empty queue with its window starting at time zero.
    pub fn new() -> Self {
        CalendarQueue {
            buckets: (0..NBUCKETS).map(|_| Bucket::Lin(Vec::new())).collect(),
            occupied: [0; WORDS],
            overflow: Vec::new(),
            overflow_min_day: u64::MAX,
            base_day: 0,
            len: 0,
        }
    }

    /// Number of queued entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no entries are queued.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert an entry. `time` must be at or past every time previously
    /// returned by [`pop`](Self::pop) or [`next_time`](Self::next_time)
    /// — both advance the ring window to the head they reveal, and a
    /// push behind the window would corrupt the slot↔day mapping.
    /// [`next_time_at_most`](Self::next_time_at_most) never advances
    /// the window past its deadline, so times after a declined peek
    /// only need to respect that deadline. The simulator's monotone
    /// clock guarantees all of this; `seq` must be unique queue-wide.
    pub fn push(&mut self, time: SimTime, seq: u64, item: T) {
        let d = day_of(time);
        debug_assert!(d >= self.base_day, "push into a drained day: {d} < {}", self.base_day);
        let entry = Entry { time, seq, item };
        if d >= self.base_day + NBUCKETS as u64 {
            self.overflow_min_day = self.overflow_min_day.min(d);
            self.overflow.push(entry);
        } else {
            let b = (d & DAY_MASK) as usize;
            self.buckets[b].push(entry);
            self.occupied[b / 64] |= 1 << (b % 64);
        }
        self.len += 1;
    }

    /// Remove and return the entry with the smallest `(time, seq)`.
    pub fn pop(&mut self) -> Option<Entry<T>> {
        let b = self.settle()?;
        let bucket = &mut self.buckets[b];
        let entry = bucket.pop_min();
        if bucket.is_empty() {
            self.occupied[b / 64] &= !(1 << (b % 64));
        }
        self.len -= 1;
        Some(entry)
    }

    /// Due time of the earliest entry without removing it. `&mut`
    /// because reaching the head may migrate overflow entries into the
    /// ring (which changes no ordering, only internal placement).
    pub fn next_time(&mut self) -> Option<SimTime> {
        let b = self.settle()?;
        self.buckets[b].min_time()
    }

    /// Due time of the earliest entry, **only if** it is at or before
    /// `deadline`; otherwise `None` *without mutating the queue*. This
    /// is the peek [`Sim::run_until`](crate::Sim::run_until) needs: a
    /// plain [`next_time`](Self::next_time) would slide the window up to
    /// a far-future head even when the caller then abandons it and
    /// schedules nearer events (which the slid window could no longer
    /// hold).
    pub fn next_time_at_most(&mut self, deadline: SimTime) -> Option<SimTime> {
        if self.len == 0 {
            return None;
        }
        let min_day = self
            .first_occupied_day()
            .map_or(self.overflow_min_day, |d| d.min(self.overflow_min_day));
        if min_day > day_of(deadline) {
            return None;
        }
        // The head's day is within the deadline's, so settling advances
        // the window at most to `day_of(deadline)` — safe even if the
        // head's exact time turns out to be past the deadline.
        self.next_time().filter(|&t| t <= deadline)
    }

    /// Due time of the earliest entry without mutating the queue at
    /// all — no window slide, no overflow migration. This is the peek
    /// the parallel coordinator ([`ParallelSim`](crate::ParallelSim))
    /// needs between barrier windows: it must take the minimum over
    /// *every* shard's queue before deciding the next window, and a
    /// mutating peek ([`next_time`](Self::next_time)) on one shard
    /// would slide that ring's window up to its local head, after
    /// which a cross-shard injection below the slid window would
    /// corrupt the slot↔day mapping.
    ///
    /// Costs one bucket peek (`O(1)` for a promoted bucket, a short
    /// scan otherwise) plus one overflow scan (the overflow list is
    /// unsorted), so it is a between-windows operation, not a per-pop
    /// one.
    pub fn peek_min_time(&self) -> Option<SimTime> {
        if self.len == 0 {
            return None;
        }
        // Within the active window each bucket holds exactly one day's
        // events and day order is time order, so the ring's minimum
        // lives in the first occupied day's bucket.
        let ring_min = self.first_occupied_day().and_then(|d| {
            let b = (d & DAY_MASK) as usize;
            self.buckets[b].min_time()
        });
        let overflow_min = self.overflow.iter().map(|e| e.time).min();
        match (ring_min, overflow_min) {
            (Some(r), Some(o)) => Some(r.min(o)),
            (r, o) => r.or(o),
        }
    }

    /// Advance the window until the globally-minimal entry is in the
    /// ring, and return its bucket (the minimum is that bucket's
    /// minimal entry).
    fn settle(&mut self) -> Option<usize> {
        if self.len == 0 {
            return None;
        }
        loop {
            let ring_day = self.first_occupied_day();
            match ring_day {
                // The ring holds the minimum: every overflow entry is at
                // `overflow_min_day` or later.
                Some(d) if d < self.overflow_min_day => {
                    self.base_day = d;
                    let b = (d & DAY_MASK) as usize;
                    debug_assert!(!self.buckets[b].is_empty());
                    return Some(b);
                }
                // Overflow owns the next day (or ties it): slide the
                // window there and migrate what now fits. At least the
                // min-day overflow entries enter the ring, so the next
                // iteration returns.
                _ => {
                    let new_base = self.overflow_min_day;
                    debug_assert!(new_base != u64::MAX, "len > 0 but nothing anywhere");
                    self.base_day = new_base;
                    let horizon = new_base + NBUCKETS as u64;
                    let mut remaining_min = u64::MAX;
                    let mut i = 0;
                    while i < self.overflow.len() {
                        let d = day_of(self.overflow[i].time);
                        if d < horizon {
                            let entry = self.overflow.swap_remove(i);
                            let b = (d & DAY_MASK) as usize;
                            self.buckets[b].push(entry);
                            self.occupied[b / 64] |= 1 << (b % 64);
                        } else {
                            remaining_min = remaining_min.min(d);
                            i += 1;
                        }
                    }
                    self.overflow_min_day = remaining_min;
                }
            }
        }
    }

    /// Smallest day with a non-empty ring bucket, found by walking the
    /// occupancy bitmask. A non-empty bucket `b` holds the unique day in
    /// the active window congruent to `b` (mod `NBUCKETS`).
    fn first_occupied_day(&self) -> Option<u64> {
        let s0 = self.base_day & DAY_MASK;
        let mut best: Option<u64> = None;
        for (w, &word) in self.occupied.iter().enumerate() {
            let mut m = word;
            while m != 0 {
                let slot = (w * 64) as u64 + m.trailing_zeros() as u64;
                let dist = slot.wrapping_sub(s0) & DAY_MASK;
                let d = self.base_day + dist;
                best = Some(best.map_or(d, |cur: u64| cur.min(d)));
                m &= m - 1;
            }
        }
        best
    }
}

impl<T> Default for CalendarQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(q: &mut CalendarQueue<u32>) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        while let Some(e) = q.pop() {
            out.push((e.time.as_nanos(), e.seq));
        }
        out
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut q = CalendarQueue::new();
        q.push(SimTime::from_nanos(30), 0, 0);
        q.push(SimTime::from_nanos(10), 1, 0);
        q.push(SimTime::from_nanos(20), 2, 0);
        assert_eq!(drain(&mut q), vec![(10, 1), (20, 2), (30, 0)]);
    }

    #[test]
    fn duplicate_timestamps_drain_fifo() {
        let mut q = CalendarQueue::new();
        for seq in 0..64u64 {
            q.push(SimTime::from_nanos(4096), seq, 0);
        }
        let popped = drain(&mut q);
        assert_eq!(popped, (0..64).map(|s| (4096, s)).collect::<Vec<_>>());
    }

    #[test]
    fn same_bucket_different_times_sort_by_time() {
        // All inside one bucket; insertion order scrambled.
        let mut q = CalendarQueue::new();
        for (seq, t) in [(0u64, 300u64), (1, 100), (2, 200), (3, 100)] {
            q.push(SimTime::from_nanos(t), seq, 0);
        }
        assert_eq!(drain(&mut q), vec![(100, 1), (100, 3), (200, 2), (300, 0)]);
    }

    #[test]
    fn far_future_events_cross_the_ring_wraparound() {
        // Schedule events many ring horizons (256 buckets) out,
        // interleaved with near ones, so the window must slide (and
        // wrap its slot mapping) several times.
        let horizon = CalendarQueue::<u32>::BUCKET_NS * NBUCKETS as u64;
        let mut q = CalendarQueue::new();
        let times = [
            0,
            horizon - 1,
            horizon,
            horizon + 1,
            3 * horizon + 17,
            10 * horizon + 4096,
            10 * horizon + 4095,
        ];
        for (seq, &t) in times.iter().enumerate() {
            q.push(SimTime::from_nanos(t), seq as u64, 0);
        }
        let mut expect: Vec<(u64, u64)> =
            times.iter().enumerate().map(|(s, &t)| (t, s as u64)).collect();
        expect.sort();
        assert_eq!(drain(&mut q), expect);
    }

    #[test]
    fn push_after_window_advance_lands_correctly() {
        let horizon = CalendarQueue::<u32>::BUCKET_NS * NBUCKETS as u64;
        let mut q = CalendarQueue::new();
        q.push(SimTime::from_nanos(5 * horizon), 0, 0);
        let first = q.pop().unwrap();
        assert_eq!(first.time.as_nanos(), 5 * horizon);
        // The window now starts at 5×horizon; schedule near and far again.
        q.push(SimTime::from_nanos(5 * horizon + 10), 1, 0);
        q.push(SimTime::from_nanos(9 * horizon), 2, 0);
        q.push(SimTime::from_nanos(5 * horizon + 10), 3, 0);
        assert_eq!(
            drain(&mut q),
            vec![(5 * horizon + 10, 1), (5 * horizon + 10, 3), (9 * horizon, 2)]
        );
    }

    #[test]
    fn next_time_peeks_without_removing() {
        let mut q = CalendarQueue::new();
        assert_eq!(q.next_time(), None);
        q.push(SimTime::from_nanos(42), 0, 7u32);
        q.push(SimTime::from_nanos(7), 1, 8u32);
        assert_eq!(q.next_time(), Some(SimTime::from_nanos(7)));
        assert_eq!(q.len(), 2, "peek must not remove");
        assert_eq!(q.pop().unwrap().item, 8);
        assert_eq!(q.next_time(), Some(SimTime::from_nanos(42)));
    }

    #[test]
    fn declined_peek_does_not_advance_the_window() {
        // The latent hazard behind shard-local windows: a coordinator
        // peeks one shard's queue with a deadline earlier than that
        // shard's head, gets `None`, and then a *different* shard's
        // window injects a cross-group event between the deadline and
        // the declined head. If the decline had slid the ring window up
        // to the far head, the injection would land behind `base_day`
        // and corrupt the slot↔day mapping (debug_assert in `push`).
        let horizon = CalendarQueue::<u32>::BUCKET_NS * NBUCKETS as u64;
        let mut q = CalendarQueue::new();
        // Drain up to 2×horizon so the window is genuinely mid-flight.
        q.push(SimTime::from_nanos(2 * horizon), 0, 0);
        q.pop().unwrap();
        // Far head, then a declined peek at a much earlier deadline.
        q.push(SimTime::from_nanos(9 * horizon + 123), 1, 0);
        assert_eq!(q.next_time_at_most(SimTime::from_nanos(2 * horizon + 500)), None);
        // A cross-window injection below the declined head — but at or
        // past the deadline — must still be accepted and pop first.
        q.push(SimTime::from_nanos(2 * horizon + 700), 2, 0);
        q.push(SimTime::from_nanos(3 * horizon), 3, 0);
        assert_eq!(
            drain(&mut q),
            vec![(2 * horizon + 700, 2), (3 * horizon, 3), (9 * horizon + 123, 1)]
        );
    }

    #[test]
    fn peek_min_time_is_exact_and_non_mutating() {
        let horizon = CalendarQueue::<u32>::BUCKET_NS * NBUCKETS as u64;
        let mut q: CalendarQueue<u32> = CalendarQueue::new();
        assert_eq!(q.peek_min_time(), None);
        // Overflow-only minimum.
        q.push(SimTime::from_nanos(7 * horizon + 9), 0, 0);
        assert_eq!(q.peek_min_time(), Some(SimTime::from_nanos(7 * horizon + 9)));
        // A nearer ring entry takes over; the far one stays in overflow.
        q.push(SimTime::from_nanos(4096), 1, 0);
        q.push(SimTime::from_nanos(12), 2, 0);
        assert_eq!(q.peek_min_time(), Some(SimTime::from_nanos(12)));
        // Crucially the peeks above must not have slid the window: a
        // push below the overflow head (but above the true min) is fine.
        q.push(SimTime::from_nanos(100), 3, 0);
        assert_eq!(
            drain(&mut q),
            vec![(12, 2), (100, 3), (4096, 1), (7 * horizon + 9, 0)]
        );
    }

    #[test]
    fn dense_bucket_promotes_and_demotes_without_reordering() {
        // Cross PROMOTE_AT within one bucket (promote), drain to empty
        // (demote), then reuse the same slot sparsely — order must be
        // (time, seq)-exact throughout.
        let mut q = CalendarQueue::new();
        let mut expect = Vec::new();
        for seq in 0..(3 * PROMOTE_AT as u64) {
            let t = 1 + (seq * 37) % 4000; // scrambled, all in bucket 0
            q.push(SimTime::from_nanos(t), seq, 0);
            expect.push((t, seq));
        }
        expect.sort();
        assert_eq!(drain(&mut q), expect);
        // The slot was demoted on drain; sparse reuse still works.
        q.push(SimTime::from_nanos(4100), 1000, 0);
        q.push(SimTime::from_nanos(4050), 1001, 0);
        assert_eq!(drain(&mut q), vec![(4050, 1001), (4100, 1000)]);
    }

    #[test]
    fn interleaved_push_pop_keeps_global_order() {
        // Pops interleaved with pushes at monotone times — the simulator's
        // actual usage pattern (handlers schedule follow-ups at `now + d`).
        let mut q = CalendarQueue::new();
        let mut seq = 0u64;
        let mut popped = Vec::new();
        q.push(SimTime::from_nanos(0), seq, 0);
        seq += 1;
        let mut now = 0u64;
        for round in 0..2000u64 {
            let e = q.pop().unwrap();
            assert!(e.time.as_nanos() >= now, "time went backwards");
            now = e.time.as_nanos();
            popped.push((now, e.seq));
            // Reschedule with a mix of near, far, and duplicate delays.
            for d in [1u64, 4096, 300_000 + round] {
                q.push(SimTime::from_nanos(now + d), seq, 0);
                seq += 1;
            }
            if round % 3 == 0 {
                // Drain one extra to vary the queue depth.
                let e2 = q.pop().unwrap();
                assert!(e2.time.as_nanos() >= now);
                now = e2.time.as_nanos();
                popped.push((now, e2.seq));
            }
        }
        let mut sorted = popped.clone();
        sorted.sort();
        assert_eq!(popped, sorted, "pop sequence must be (time, seq)-sorted");
    }
}
