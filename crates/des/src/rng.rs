//! Deterministic random-number generation.
//!
//! Every stochastic component of the simulation draws from its own
//! [`DetRng`] stream, derived from the experiment seed and a textual label
//! (e.g. `"node0/nic/jitter"`). Identical seeds therefore produce
//! byte-identical experiment output regardless of crate versions or
//! platform — which is why we implement xoshiro256++ here rather than rely
//! on an external generator whose stream may change between releases.

/// SplitMix64 step, used for seeding and label hashing.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic xoshiro256++ generator with a small distribution toolkit.
#[derive(Debug, Clone)]
pub struct DetRng {
    s: [u64; 4],
    /// Cached second output of the Box-Muller transform.
    gauss_spare: Option<f64>,
}

impl DetRng {
    /// Create a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        DetRng { s, gauss_spare: None }
    }

    /// Derive an independent child stream from a textual label.
    ///
    /// The derivation hashes the label into the parent's seed space without
    /// consuming any numbers from the parent stream, so adding a new
    /// component does not perturb existing streams.
    pub fn derive(&self, label: &str) -> DetRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ self.s[0];
        for &b in label.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h ^= self.s[2].rotate_left(17);
        DetRng::new(h)
    }

    /// Next raw 64-bit value (xoshiro256++).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        // 53 high-quality bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`. `n` must be nonzero.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0, "below(0) is meaningless");
        // Lemire's multiply-shift rejection method.
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(n as u128);
        let mut lo = m as u64;
        if lo < n {
            let threshold = n.wrapping_neg() % n;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(n as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    #[inline]
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        lo + self.below(hi - lo + 1)
    }

    /// Uniform float in `[lo, hi)`.
    #[inline]
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.f64()
    }

    /// `true` with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Standard normal draw (Box-Muller with spare caching).
    pub fn gauss(&mut self) -> f64 {
        if let Some(z) = self.gauss_spare.take() {
            return z;
        }
        // Rejection for u0 == 0 keeps ln() finite.
        let mut u0 = self.f64();
        while u0 <= f64::EPSILON {
            u0 = self.f64();
        }
        let u1 = self.f64();
        let r = (-2.0 * u0.ln()).sqrt();
        let theta = 2.0 * core::f64::consts::PI * u1;
        self.gauss_spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal draw with the given mean and standard deviation.
    #[inline]
    pub fn normal(&mut self, mean: f64, sd: f64) -> f64 {
        mean + sd * self.gauss()
    }

    /// Log-normal multiplicative jitter factor with multiplicative
    /// standard deviation `sigma` (e.g. 0.004 for ±0.4 % run-to-run
    /// variation). Always strictly positive.
    #[inline]
    pub fn jitter(&mut self, sigma: f64) -> f64 {
        (self.gauss() * sigma).exp()
    }

    /// Exponential draw with the given mean.
    #[inline]
    pub fn exp(&mut self, mean: f64) -> f64 {
        let mut u = self.f64();
        while u <= f64::EPSILON {
            u = self.f64();
        }
        -mean * u.ln()
    }

    /// Fisher-Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn derive_is_stable_and_label_sensitive() {
        let root = DetRng::new(7);
        let mut a1 = root.derive("nic0");
        let mut a2 = root.derive("nic0");
        let mut b = root.derive("nic1");
        let xs: Vec<u64> = (0..16).map(|_| a1.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| a2.next_u64()).collect();
        assert_eq!(xs, ys, "same label must give the same stream");
        assert!((0..16).any(|i| xs[i] != b.next_u64()));
    }

    #[test]
    fn derive_does_not_consume_parent() {
        let mut root1 = DetRng::new(9);
        let mut root2 = DetRng::new(9);
        let _child = root1.derive("x");
        assert_eq!(root1.next_u64(), root2.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = DetRng::new(3);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_is_bounded_and_covers() {
        let mut r = DetRng::new(4);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let x = r.below(7);
            assert!(x < 7);
            seen[x as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn range_inclusive_bounds() {
        let mut r = DetRng::new(5);
        let (mut lo_seen, mut hi_seen) = (false, false);
        for _ in 0..2000 {
            let x = r.range(10, 12);
            assert!((10..=12).contains(&x));
            lo_seen |= x == 10;
            hi_seen |= x == 12;
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn gauss_moments_are_plausible() {
        let mut r = DetRng::new(6);
        let n = 50_000;
        let (mut sum, mut sq) = (0.0, 0.0);
        for _ in 0..n {
            let z = r.gauss();
            sum += z;
            sq += z * z;
        }
        let mean = sum / n as f64;
        let var = sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn exp_mean_is_plausible() {
        let mut r = DetRng::new(8);
        let n = 50_000;
        let mean = (0..n).map(|_| r.exp(3.0)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn jitter_is_positive_and_centred() {
        let mut r = DetRng::new(11);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let j = r.jitter(0.01);
            assert!(j > 0.0);
            sum += j;
        }
        let mean = sum / n as f64;
        assert!((mean - 1.0).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = DetRng::new(12);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "100 elements should not shuffle to identity");
    }

    #[test]
    fn chance_probability_is_plausible() {
        let mut r = DetRng::new(13);
        let n = 50_000;
        let hits = (0..n).filter(|_| r.chance(0.25)).count();
        let p = hits as f64 / n as f64;
        assert!((p - 0.25).abs() < 0.02, "p {p}");
    }
}
