//! The event-driven simulation kernel.
//!
//! [`Sim`] owns a user-supplied world `W` plus a calendar queue of timed
//! events; an event is any `FnOnce(&mut Sim<W>)`, so handlers can freely
//! inspect the world, mutate it, and schedule follow-up events (see
//! [`crate::calendar`] for the queue itself). Ties in
//! time are broken by insertion order, which keeps execution fully
//! deterministic.
//!
//! # Example
//!
//! A self-rescheduling "process" bounded by a predicate — the pattern
//! the scenario engine uses for its control-plane tick:
//!
//! ```
//! use shs_des::{Sim, SimDur, SimTime};
//!
//! fn tick(sim: &mut Sim<u32>) {
//!     sim.world += 1;
//!     sim.after(SimDur::from_millis(20), tick);
//! }
//!
//! let mut sim = Sim::new(0u32);
//! sim.at(SimTime::ZERO, tick);
//! sim.run_until(SimTime::from_nanos(100_000_000)); // 100 ms horizon
//! assert_eq!(sim.world, 6, "ticks at 0, 20, 40, 60, 80, 100 ms");
//! assert_eq!(sim.now(), SimTime::from_nanos(100_000_000));
//! assert_eq!(sim.pending(), 1, "the next tick stays queued past the horizon");
//! ```

use crate::calendar::CalendarQueue;
use crate::time::{SimDur, SimTime};

/// A scheduled event: a boxed closure over the simulation.
pub type EventFn<W> = Box<dyn FnOnce(&mut Sim<W>)>;

/// Discrete-event simulator over a world `W`.
pub struct Sim<W> {
    /// The simulated world. Public so event closures and drivers can reach
    /// all component state directly.
    pub world: W,
    now: SimTime,
    seq: u64,
    queue: CalendarQueue<EventFn<W>>,
    executed: u64,
}

impl<W> Sim<W> {
    /// Create a simulator at time zero.
    pub fn new(world: W) -> Self {
        Sim {
            world,
            now: SimTime::ZERO,
            seq: 0,
            queue: CalendarQueue::new(),
            executed: 0,
        }
    }

    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    #[inline]
    pub fn events_executed(&self) -> u64 {
        self.executed
    }

    /// Number of events still pending.
    #[inline]
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedule `f` at absolute time `t`. Scheduling in the past is a
    /// logic error and panics (debug builds) or clamps to `now` (release).
    pub fn at(&mut self, t: SimTime, f: impl FnOnce(&mut Sim<W>) + 'static) {
        debug_assert!(t >= self.now, "scheduling into the past: {t} < {}", self.now);
        let t = t.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(t, seq, Box::new(f));
    }

    /// Schedule `f` after a relative delay.
    #[inline]
    pub fn after(&mut self, d: SimDur, f: impl FnOnce(&mut Sim<W>) + 'static) {
        self.at(self.now + d, f);
    }

    /// Execute the next event, if any. Returns `false` when the queue is
    /// empty.
    pub fn step(&mut self) -> bool {
        match self.queue.pop() {
            Some(ev) => {
                debug_assert!(ev.time >= self.now);
                self.now = ev.time;
                self.executed += 1;
                (ev.item)(self);
                true
            }
            None => false,
        }
    }

    /// Run until the event queue drains.
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Run until the queue drains or simulated time would pass `deadline`.
    /// Events scheduled exactly at the deadline still execute; the clock
    /// is advanced to the deadline if the queue empties earlier.
    pub fn run_until(&mut self, deadline: SimTime) {
        while self.queue.next_time_at_most(deadline).is_some() {
            self.step();
        }
        if self.now < deadline {
            self.now = deadline;
        }
    }

    /// Run while `pred` holds and events remain.
    pub fn run_while(&mut self, mut pred: impl FnMut(&Sim<W>) -> bool) {
        while pred(self) && self.step() {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[derive(Default)]
    struct W {
        log: Vec<(u64, &'static str)>,
        count: u32,
    }

    #[test]
    fn events_run_in_time_order() {
        let mut sim = Sim::new(W::default());
        sim.at(SimTime::from_nanos(30), |s| s.world.log.push((s.now().as_nanos(), "c")));
        sim.at(SimTime::from_nanos(10), |s| s.world.log.push((s.now().as_nanos(), "a")));
        sim.at(SimTime::from_nanos(20), |s| s.world.log.push((s.now().as_nanos(), "b")));
        sim.run();
        assert_eq!(sim.world.log, vec![(10, "a"), (20, "b"), (30, "c")]);
        assert_eq!(sim.events_executed(), 3);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut sim = Sim::new(W::default());
        for name in ["first", "second", "third"] {
            sim.at(SimTime::from_nanos(5), move |s| s.world.log.push((5, name)));
        }
        sim.run();
        let names: Vec<_> = sim.world.log.iter().map(|&(_, n)| n).collect();
        assert_eq!(names, vec!["first", "second", "third"]);
    }

    #[test]
    fn handlers_can_schedule_followups() {
        let mut sim = Sim::new(W::default());
        sim.at(SimTime::from_nanos(1), |s| {
            s.world.count += 1;
            s.after(SimDur::from_nanos(4), |s2| {
                s2.world.count += 10;
                assert_eq!(s2.now().as_nanos(), 5);
            });
        });
        sim.run();
        assert_eq!(sim.world.count, 11);
    }

    #[test]
    fn run_until_respects_deadline() {
        let mut sim = Sim::new(W::default());
        sim.at(SimTime::from_nanos(10), |s| s.world.count += 1);
        sim.at(SimTime::from_nanos(20), |s| s.world.count += 1);
        sim.at(SimTime::from_nanos(30), |s| s.world.count += 1);
        sim.run_until(SimTime::from_nanos(20));
        assert_eq!(sim.world.count, 2);
        assert_eq!(sim.now(), SimTime::from_nanos(20));
        assert_eq!(sim.pending(), 1);
        sim.run();
        assert_eq!(sim.world.count, 3);
    }

    #[test]
    fn run_until_advances_clock_when_idle() {
        let mut sim = Sim::new(W::default());
        sim.run_until(SimTime::from_nanos(500));
        assert_eq!(sim.now(), SimTime::from_nanos(500));
    }

    #[test]
    fn run_while_stops_on_predicate() {
        let mut sim = Sim::new(W::default());
        for i in 0..10u64 {
            sim.at(SimTime::from_nanos(i), |s| s.world.count += 1);
        }
        sim.run_while(|s| s.world.count < 4);
        assert_eq!(sim.world.count, 4);
    }

    #[test]
    fn recursive_self_rescheduling_terminates_by_predicate() {
        // A "process" that re-arms itself forever; run_while bounds it.
        fn tick(s: &mut Sim<W>) {
            s.world.count += 1;
            s.after(SimDur::from_micros(1), tick);
        }
        let mut sim = Sim::new(W::default());
        sim.at(SimTime::ZERO, tick);
        sim.run_while(|s| s.world.count < 100);
        assert_eq!(sim.world.count, 100);
        assert_eq!(sim.now().as_nanos(), 99_000);
    }

    #[test]
    fn closures_can_capture_shared_state() {
        let out = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Sim::new(W::default());
        for i in [3u64, 1, 2] {
            let out = Rc::clone(&out);
            sim.at(SimTime::from_nanos(i), move |_| out.borrow_mut().push(i));
        }
        sim.run();
        assert_eq!(*out.borrow(), vec![1, 2, 3]);
    }
}
