//! Statistics helpers shared by the evaluation harness: means, percentiles
//! (linear interpolation, matching NumPy's default used by the paper's
//! plotting scripts), five-number boxplot summaries, and Welford online
//! accumulation.

/// Arithmetic mean; `NaN` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation (n-1 denominator); 0 for fewer than 2 points.
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let ss: f64 = xs.iter().map(|x| (x - m) * (x - m)).sum();
    (ss / (xs.len() - 1) as f64).sqrt()
}

/// Percentile in `[0, 100]` with linear interpolation between order
/// statistics. `NaN` for an empty slice.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    let mut v: Vec<f64> = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    percentile_sorted(&v, p)
}

/// Percentile over already-sorted data.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    if sorted.len() == 1 {
        return sorted[0];
    }
    let p = p.clamp(0.0, 100.0);
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Median (50th percentile).
pub fn median(xs: &[f64]) -> f64 {
    percentile(xs, 50.0)
}

/// Five-number summary plus Tukey whiskers, as drawn in the paper's
/// Fig. 12 boxplots.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Boxplot {
    pub min: f64,
    pub whisker_lo: f64,
    pub q1: f64,
    pub median: f64,
    pub q3: f64,
    pub whisker_hi: f64,
    pub max: f64,
}

impl Boxplot {
    /// Compute a boxplot summary. Whiskers extend to the most extreme data
    /// point within 1.5×IQR of the quartiles (Tukey convention).
    pub fn from(xs: &[f64]) -> Option<Boxplot> {
        if xs.is_empty() {
            return None;
        }
        let mut v: Vec<f64> = xs.to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in boxplot input"));
        let q1 = percentile_sorted(&v, 25.0);
        let q3 = percentile_sorted(&v, 75.0);
        let iqr = q3 - q1;
        let lo_fence = q1 - 1.5 * iqr;
        let hi_fence = q3 + 1.5 * iqr;
        let whisker_lo = *v.iter().find(|&&x| x >= lo_fence).unwrap_or(&v[0]);
        let whisker_hi = *v.iter().rev().find(|&&x| x <= hi_fence).unwrap_or(&v[v.len() - 1]);
        Some(Boxplot {
            min: v[0],
            whisker_lo,
            q1,
            median: percentile_sorted(&v, 50.0),
            q3,
            whisker_hi,
            max: v[v.len() - 1],
        })
    }
}

/// Welford's online mean/variance accumulator.
#[derive(Debug, Clone, Copy, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Fresh accumulator.
    pub fn new() -> Self {
        OnlineStats { n: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Fold in one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Observation count.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Running mean (`NaN` when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.mean
        }
    }

    /// Sample variance (n-1).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }
}

/// Relative overhead of `measured` versus `baseline`, in percent —
/// the quantity plotted in the paper's Figs. 6, 8 and quoted in §IV-B.
pub fn overhead_pct(baseline: f64, measured: f64) -> f64 {
    if baseline == 0.0 {
        return f64::NAN;
    }
    (measured - baseline) / baseline * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_stddev_basic() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        // Sample (n-1) stddev of this classic dataset.
        assert!((stddev(&xs) - 2.13808993529939).abs() < 1e-9);
    }

    #[test]
    fn empty_inputs_are_nan_or_zero() {
        assert!(mean(&[]).is_nan());
        assert!(percentile(&[], 50.0).is_nan());
        assert_eq!(stddev(&[1.0]), 0.0);
        assert!(Boxplot::from(&[]).is_none());
    }

    #[test]
    fn percentile_interpolates_linearly() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!((percentile(&xs, 0.0) - 1.0).abs() < 1e-12);
        assert!((percentile(&xs, 100.0) - 4.0).abs() < 1e-12);
        assert!((percentile(&xs, 50.0) - 2.5).abs() < 1e-12);
        // NumPy: np.percentile([1,2,3,4], 10) == 1.3
        assert!((percentile(&xs, 10.0) - 1.3).abs() < 1e-12);
        assert!((percentile(&xs, 90.0) - 3.7).abs() < 1e-12);
    }

    #[test]
    fn percentile_is_order_invariant() {
        let a = [5.0, 1.0, 4.0, 2.0, 3.0];
        let b = [1.0, 2.0, 3.0, 4.0, 5.0];
        for p in [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 100.0] {
            assert_eq!(percentile(&a, p), percentile(&b, p));
        }
    }

    #[test]
    fn median_odd_and_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]), 2.5);
    }

    #[test]
    fn boxplot_on_uniform_data() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let b = Boxplot::from(&xs).unwrap();
        assert_eq!(b.min, 1.0);
        assert_eq!(b.max, 100.0);
        assert!((b.median - 50.5).abs() < 1e-12);
        assert!((b.q1 - 25.75).abs() < 1e-12);
        assert!((b.q3 - 75.25).abs() < 1e-12);
        // No outliers in uniform data: whiskers hit the extremes.
        assert_eq!(b.whisker_lo, 1.0);
        assert_eq!(b.whisker_hi, 100.0);
    }

    #[test]
    fn boxplot_excludes_outliers_from_whiskers() {
        let mut xs: Vec<f64> = (1..=20).map(|i| i as f64).collect();
        xs.push(1000.0); // far outlier
        let b = Boxplot::from(&xs).unwrap();
        assert_eq!(b.max, 1000.0);
        assert!(b.whisker_hi <= 20.0, "whisker {0} should exclude outlier", b.whisker_hi);
    }

    #[test]
    fn online_stats_matches_batch() {
        let xs = [1.5, 2.5, 3.5, 10.0, -2.0, 0.0];
        let mut o = OnlineStats::new();
        for &x in &xs {
            o.push(x);
        }
        assert_eq!(o.count(), xs.len() as u64);
        assert!((o.mean() - mean(&xs)).abs() < 1e-12);
        assert!((o.stddev() - stddev(&xs)).abs() < 1e-12);
        assert_eq!(o.min(), -2.0);
        assert_eq!(o.max(), 10.0);
    }

    #[test]
    fn overhead_pct_signs() {
        assert!((overhead_pct(100.0, 103.5) - 3.5).abs() < 1e-12);
        assert!((overhead_pct(100.0, 99.0) + 1.0).abs() < 1e-12);
        assert!(overhead_pct(0.0, 1.0).is_nan());
    }
}
