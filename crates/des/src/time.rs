//! Simulated time: a monotone nanosecond clock and durations.
//!
//! The whole reproduction runs on virtual time — no wall clock is ever
//! consulted — so experiment output is a pure function of the RNG seed.

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub};

/// A point in simulated time, in nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDur(u64);

impl SimTime {
    /// Simulation start.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Raw nanoseconds since simulation start.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Time as fractional microseconds.
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Time as fractional milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Time as fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Duration since an earlier instant; saturates at zero if `earlier`
    /// is in the future.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDur {
        SimDur(self.0.saturating_sub(earlier.0))
    }
}

impl SimDur {
    /// The zero-length duration.
    pub const ZERO: SimDur = SimDur(0);

    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDur(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDur(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDur(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDur(s * 1_000_000_000)
    }

    /// Construct from fractional seconds (negative values clamp to zero).
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        SimDur((s.max(0.0) * 1e9).round() as u64)
    }

    /// Construct from fractional microseconds (negative values clamp to zero).
    #[inline]
    pub fn from_micros_f64(us: f64) -> Self {
        SimDur((us.max(0.0) * 1e3).round() as u64)
    }

    /// Raw nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Duration as fractional microseconds.
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Duration as fractional milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration as fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Scale by a non-negative factor (used for jitter multipliers).
    #[inline]
    pub fn mul_f64(self, k: f64) -> Self {
        SimDur((self.0 as f64 * k.max(0.0)).round() as u64)
    }
}

impl Add<SimDur> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDur) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDur> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDur) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDur;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDur {
        SimDur(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDur {
    type Output = SimDur;
    #[inline]
    fn add(self, rhs: SimDur) -> SimDur {
        SimDur(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDur {
    #[inline]
    fn add_assign(&mut self, rhs: SimDur) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimDur {
    type Output = SimDur;
    #[inline]
    fn sub(self, rhs: SimDur) -> SimDur {
        SimDur(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for SimDur {
    type Output = SimDur;
    #[inline]
    fn mul(self, rhs: u64) -> SimDur {
        SimDur(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDur {
    type Output = SimDur;
    #[inline]
    fn div(self, rhs: u64) -> SimDur {
        SimDur(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total_ms = self.0 / 1_000_000;
        let (mins, secs, ms) = (total_ms / 60_000, (total_ms / 1000) % 60, total_ms % 1000);
        write!(f, "{mins:02}:{secs:02}.{ms:03}")
    }
}

impl fmt::Display for SimDur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 10_000 {
            write!(f, "{}ns", self.0)
        } else if self.0 < 10_000_000 {
            write!(f, "{:.2}us", self.as_micros_f64())
        } else if self.0 < 10_000_000_000 {
            write!(f, "{:.2}ms", self.as_millis_f64())
        } else {
            write!(f, "{:.2}s", self.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::from_nanos(1_500);
        let d = SimDur::from_micros(2);
        assert_eq!((t + d).as_nanos(), 3_500);
        assert_eq!(((t + d) - t).as_nanos(), 2_000);
    }

    #[test]
    fn subtraction_saturates() {
        let early = SimTime::from_nanos(10);
        let late = SimTime::from_nanos(50);
        assert_eq!((early - late).as_nanos(), 0);
        assert_eq!(early.since(late), SimDur::ZERO);
        assert_eq!(late.since(early).as_nanos(), 40);
    }

    #[test]
    fn unit_constructors_agree() {
        assert_eq!(SimDur::from_secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(SimDur::from_millis(1).as_nanos(), 1_000_000);
        assert_eq!(SimDur::from_micros(1).as_nanos(), 1_000);
        assert_eq!(SimDur::from_secs_f64(0.25).as_nanos(), 250_000_000);
        assert_eq!(SimDur::from_micros_f64(1.5).as_nanos(), 1_500);
    }

    #[test]
    fn float_conversions() {
        let d = SimDur::from_nanos(2_500_000_000);
        assert!((d.as_secs_f64() - 2.5).abs() < 1e-12);
        assert!((d.as_millis_f64() - 2500.0).abs() < 1e-9);
        let t = SimTime::from_nanos(1_000);
        assert!((t.as_micros_f64() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mul_f64_scales_and_clamps() {
        let d = SimDur::from_nanos(1000);
        assert_eq!(d.mul_f64(1.5).as_nanos(), 1500);
        assert_eq!(d.mul_f64(-3.0).as_nanos(), 0);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(format!("{}", SimDur::from_nanos(5)), "5ns");
        assert_eq!(format!("{}", SimDur::from_micros(50)), "50.00us");
        assert_eq!(format!("{}", SimDur::from_millis(50)), "50.00ms");
        assert_eq!(format!("{}", SimDur::from_secs(50)), "50.00s");
        assert_eq!(format!("{}", SimTime::from_nanos(65_123_000_000)), "01:05.123");
    }

    #[test]
    fn saturating_add_at_max() {
        let t = SimTime::MAX;
        assert_eq!(t + SimDur::from_secs(1), SimTime::MAX);
    }
}
