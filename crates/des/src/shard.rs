//! One shard of a conservatively-synchronised parallel simulation.
//!
//! [`ShardSim`] is the per-shard twin of [`Sim`](crate::Sim): the same
//! calendar queue, the same `(time, seq)` ordering contract, the same
//! monotone clock — plus two things a parallel partition needs:
//!
//! * its event closures are `Send` (they migrate to worker threads),
//! * cross-shard scheduling goes through an **outbox** instead of the
//!   local queue: [`ShardSim::send_to`] records a [`Remote`] event that
//!   the coordinator ([`ParallelSim`](crate::ParallelSim)) injects into
//!   the destination shard *between* barrier windows, never during one.
//!
//! The conservative contract is enforced here at the source: a remote
//! event's delay is clamped to at least the configured **lookahead**, so
//! by construction an event executing inside the window `[T, T + L)` can
//! only produce remote work at or past `T + L` — which is exactly where
//! the next window can begin. See [`crate::parallel`] for the window
//! algebra and the determinism argument.

use crate::calendar::CalendarQueue;
use crate::time::{SimDur, SimTime};

/// Identifies a shard within one [`ParallelSim`](crate::ParallelSim).
pub type ShardId = usize;

/// A scheduled shard event: a boxed, thread-migratable closure.
pub type ShardEventFn<W> = Box<dyn FnOnce(&mut ShardSim<W>) + Send>;

/// A cross-shard event waiting in a source shard's outbox.
pub struct Remote<W> {
    /// Destination shard.
    pub dst: ShardId,
    /// Absolute due time in the destination shard (already includes the
    /// lookahead-clamped delay).
    pub time: SimTime,
    /// The event to run over the destination shard.
    pub event: ShardEventFn<W>,
}

/// One shard: a serial simulator over its own world and calendar queue,
/// exchanging cross-shard events only through its outbox.
pub struct ShardSim<W> {
    /// The shard-owned world. Public for the same reason
    /// [`Sim::world`](crate::Sim::world) is: event closures and drivers
    /// reach component state directly.
    pub world: W,
    id: ShardId,
    now: SimTime,
    seq: u64,
    queue: CalendarQueue<ShardEventFn<W>>,
    executed: u64,
    lookahead: SimDur,
    outbox: Vec<Remote<W>>,
}

impl<W> ShardSim<W> {
    /// Create shard `id` at time zero. `lookahead` is the minimum
    /// cross-shard delay this shard will ever emit; the coordinator
    /// requires it to be positive.
    pub fn new(id: ShardId, world: W, lookahead: SimDur) -> Self {
        assert!(lookahead > SimDur::ZERO, "conservative sync needs a positive lookahead");
        ShardSim {
            world,
            id,
            now: SimTime::ZERO,
            seq: 0,
            queue: CalendarQueue::new(),
            executed: 0,
            lookahead,
            outbox: Vec::new(),
        }
    }

    /// This shard's id within the coordinator.
    #[inline]
    pub fn id(&self) -> ShardId {
        self.id
    }

    /// Current shard-local simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The configured conservative lookahead.
    #[inline]
    pub fn lookahead(&self) -> SimDur {
        self.lookahead
    }

    /// Number of events this shard has executed.
    #[inline]
    pub fn events_executed(&self) -> u64 {
        self.executed
    }

    /// Number of events still queued locally (outbox not included).
    #[inline]
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Due time of the earliest queued local event, without mutating the
    /// queue (no ring-window slide — see
    /// [`CalendarQueue::peek_min_time`]). The coordinator takes the
    /// minimum of this across all shards to open the next window.
    #[inline]
    pub fn peek_min_time(&self) -> Option<SimTime> {
        self.queue.peek_min_time()
    }

    /// Schedule a local event at absolute time `t`. Scheduling in the
    /// past is a logic error and panics (debug builds) or clamps to
    /// `now` (release) — same contract as [`Sim::at`](crate::Sim::at).
    pub fn at(&mut self, t: SimTime, f: impl FnOnce(&mut ShardSim<W>) + Send + 'static) {
        self.at_boxed(t, Box::new(f));
    }

    /// Schedule a local event after a relative delay.
    #[inline]
    pub fn after(&mut self, d: SimDur, f: impl FnOnce(&mut ShardSim<W>) + Send + 'static) {
        self.at(self.now + d, f);
    }

    /// [`at`](Self::at) for an already-boxed event — the injection path
    /// the coordinator uses when draining outboxes, kept public so
    /// custom drivers can route [`Remote`] events themselves.
    pub fn at_boxed(&mut self, t: SimTime, f: ShardEventFn<W>) {
        debug_assert!(t >= self.now, "scheduling into the past: {t} < {}", self.now);
        let t = t.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(t, seq, f);
    }

    /// Schedule `f` on shard `dst` after `delay`, clamped up to the
    /// lookahead. The event does not leave this shard until the
    /// coordinator drains the outbox at the next barrier, which is what
    /// keeps the exchange conservative: anything emitted inside the
    /// window `[T, T + L)` is due at `now + delay ≥ T + L`, at or past
    /// the earliest possible next window start.
    ///
    /// A `delay` below the lookahead is a modelling error (the caller
    /// promised `lookahead` was the minimum cross-shard latency):
    /// debug builds panic, release builds clamp to the lookahead.
    pub fn send_to(
        &mut self,
        dst: ShardId,
        delay: SimDur,
        f: impl FnOnce(&mut ShardSim<W>) + Send + 'static,
    ) {
        debug_assert!(
            delay >= self.lookahead,
            "cross-shard delay {delay} below the lookahead {}",
            self.lookahead
        );
        let delay = delay.max(self.lookahead);
        self.outbox.push(Remote { dst, time: self.now + delay, event: Box::new(f) });
    }

    /// Take the accumulated outbox (coordinator use, between windows).
    pub fn take_outbox(&mut self) -> Vec<Remote<W>> {
        std::mem::take(&mut self.outbox)
    }

    /// Execute every local event strictly before `window_end`, in
    /// `(time, seq)` order, including follow-ups scheduled into the
    /// window by the events themselves. Events at or past `window_end`
    /// are left untouched — the underlying peek declines without
    /// sliding the ring window, so later cross-shard injections below
    /// this shard's queued head remain safe.
    ///
    /// Returns the number of events executed in this window.
    pub fn run_window(&mut self, window_end: SimTime) -> u64 {
        let before = self.executed;
        if window_end == SimTime::ZERO {
            return 0;
        }
        // `next_time_at_most` is inclusive; the window is half-open.
        let deadline = SimTime::from_nanos(window_end.as_nanos() - 1);
        while self.queue.next_time_at_most(deadline).is_some() {
            self.step();
        }
        self.executed - before
    }

    /// Execute the next local event, if any.
    pub fn step(&mut self) -> bool {
        match self.queue.pop() {
            Some(ev) => {
                debug_assert!(ev.time >= self.now);
                self.now = ev.time;
                self.executed += 1;
                (ev.item)(self);
                true
            }
            None => false,
        }
    }

    /// Advance the clock to `t` if it lags behind (used by the
    /// coordinator to finish a bounded run at its horizon, mirroring
    /// [`Sim::run_until`](crate::Sim::run_until)).
    pub fn advance_to(&mut self, t: SimTime) {
        if self.now < t {
            self.now = t;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_runs_only_events_strictly_before_end() {
        let mut s: ShardSim<Vec<u64>> = ShardSim::new(0, Vec::new(), SimDur::from_nanos(100));
        for t in [10u64, 50, 99, 100, 150] {
            s.at(SimTime::from_nanos(t), move |sh| sh.world.push(t));
        }
        assert_eq!(s.run_window(SimTime::from_nanos(100)), 3);
        assert_eq!(s.world, vec![10, 50, 99]);
        assert_eq!(s.now(), SimTime::from_nanos(99));
        assert_eq!(s.pending(), 2);
    }

    #[test]
    fn followups_inside_the_window_still_run() {
        let mut s: ShardSim<Vec<u64>> = ShardSim::new(0, Vec::new(), SimDur::from_nanos(10));
        s.at(SimTime::from_nanos(5), |sh| {
            sh.world.push(5);
            sh.after(SimDur::from_nanos(3), |sh2| sh2.world.push(8));
        });
        s.run_window(SimTime::from_nanos(10));
        assert_eq!(s.world, vec![5, 8]);
    }

    #[test]
    fn send_to_clamps_to_lookahead_and_stays_in_outbox() {
        let mut s: ShardSim<Vec<u64>> = ShardSim::new(0, Vec::new(), SimDur::from_nanos(100));
        s.at(SimTime::from_nanos(40), |sh| {
            sh.send_to(1, SimDur::from_nanos(250), |d| d.world.push(1));
        });
        s.run_window(SimTime::from_nanos(100));
        let out = s.take_outbox();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].dst, 1);
        assert_eq!(out[0].time, SimTime::from_nanos(290));
        assert!(s.take_outbox().is_empty(), "take drains");
    }

    #[test]
    #[should_panic(expected = "below the lookahead")]
    #[cfg(debug_assertions)]
    fn sub_lookahead_send_panics_in_debug() {
        let mut s: ShardSim<()> = ShardSim::new(0, (), SimDur::from_nanos(100));
        s.at(SimTime::ZERO, |sh| {
            sh.send_to(1, SimDur::from_nanos(1), |_| {});
        });
        s.run_window(SimTime::from_nanos(1000));
    }

    #[test]
    fn declined_window_peek_allows_later_injection_below_the_head() {
        // The shard-local face of the `next_time_at_most` hazard pinned
        // in calendar.rs: a shard whose head lies past the window end
        // must decline without sliding its ring window, so a cross-shard
        // injection between the window end and that head still lands.
        let far = CalendarQueue::<()>::BUCKET_NS * 2048;
        let mut s: ShardSim<Vec<u64>> = ShardSim::new(0, Vec::new(), SimDur::from_nanos(100));
        s.at(SimTime::from_nanos(far), move |sh| sh.world.push(far));
        // Window well before the head: nothing runs, nothing mutates.
        assert_eq!(s.run_window(SimTime::from_nanos(1_000)), 0);
        // Coordinator injects below the declined head.
        s.at_boxed(SimTime::from_nanos(2_000), Box::new(|sh| sh.world.push(2_000)));
        assert_eq!(s.run_window(SimTime::from_nanos(far + 1)), 2);
        assert_eq!(s.world, vec![2_000, far]);
    }
}
