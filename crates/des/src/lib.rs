//! # shs-des — deterministic discrete-event simulation kernel
//!
//! Foundation of the Slingshot-K8s reproduction: a virtual nanosecond
//! clock, an event queue of boxed closures with deterministic tie-breaks,
//! seeded RNG streams ([`DetRng`]) and the statistics toolkit used by the
//! evaluation harness.
//!
//! Everything above this crate (fabric, NIC, driver, Kubernetes control
//! plane) is written sans-IO: components are pure state machines and only
//! the composition layer (`slingshot-k8s`) turns their effects into
//! scheduled events here.
//!
//! ```
//! use shs_des::{Sim, SimDur, SimTime};
//!
//! let mut sim = Sim::new(0u32);
//! sim.at(SimTime::from_nanos(100), |s| {
//!     s.world += 1;
//!     s.after(SimDur::from_micros(1), |s| s.world += 10);
//! });
//! sim.run();
//! assert_eq!(sim.world, 11);
//! assert_eq!(sim.now().as_nanos(), 1_100);
//! ```

//!
//! For cluster-scale models the serial [`Sim`] loop has a parallel twin:
//! [`ShardSim`] shards (one per switch group, each with its own calendar
//! queue) under the conservative barrier-window coordinator
//! [`ParallelSim`], whose results are bit-identical at any thread count
//! — see the [`parallel`] module docs for the synchronisation algebra.

pub mod calendar;
pub mod parallel;
pub mod rng;
pub mod shard;
pub mod sim;
pub mod stats;
pub mod time;

pub use calendar::CalendarQueue;
pub use parallel::ParallelSim;
pub use rng::DetRng;
pub use shard::{Remote, ShardEventFn, ShardId, ShardSim};
pub use sim::{EventFn, Sim};
pub use time::{SimDur, SimTime};
