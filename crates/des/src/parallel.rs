//! Conservative barrier-window coordinator over [`ShardSim`] shards.
//!
//! [`ParallelSim`] runs N shards — each a serial simulator with its own
//! calendar queue and world — under classic conservative (null-message
//! free) barrier synchronisation:
//!
//! 1. **Peek.** Take `T = min` over every shard's
//!    [`peek_min_time`](ShardSim::peek_min_time) (non-mutating, so no
//!    ring window slides before injections land).
//! 2. **Window.** Open the half-open window `[T, T + L)` where `L` is
//!    the lookahead — the minimum cross-shard latency every
//!    [`send_to`](ShardSim::send_to) is clamped to.
//! 3. **Run.** Every shard executes all of its local events due inside
//!    the window, in `(time, seq)` order, on whichever worker thread
//!    owns it. No shard touches another shard's state; cross-shard
//!    events accumulate in per-shard outboxes.
//! 4. **Exchange.** After the barrier, the coordinator drains outboxes
//!    in shard-id order and injects each remote event into its
//!    destination queue. Conservative safety: an event executing at
//!    `t < T + L` emits remote work due at `t + delay ≥ t + L ≥ T + L`
//!    — never inside the window just executed, and never below any
//!    destination clock (clocks are `< T + L` too).
//!
//! # Why reports stay bit-identical at any thread count
//!
//! Every source of order is thread-independent: each shard's in-window
//! execution order is its own `(time, seq)` order; outboxes are filled
//! in execution order and drained in shard-id order; injection assigns
//! destination `seq` numbers single-threaded between windows. Worker
//! threads only decide *when on the wall clock* a shard's window runs,
//! never *what* it computes — `threads == 1` runs the identical
//! algorithm inline. The proptests in `tests/parallel_props.rs` and the
//! scenario suite hold this invariant as a regression gate.
//!
//! # Example
//!
//! Two shards ping-ponging across the boundary:
//!
//! ```
//! use shs_des::{ParallelSim, SimDur, SimTime};
//!
//! let mut psim = ParallelSim::new(vec![0u64, 0u64], SimDur::from_nanos(100));
//! psim.shard_mut(0).at(SimTime::ZERO, |s| {
//!     s.world += 1;
//!     s.send_to(1, SimDur::from_nanos(100), |peer| peer.world += 10);
//! });
//! psim.run(2); // two worker threads; any count gives the same worlds
//! assert_eq!(psim.shard(0).world, 1);
//! assert_eq!(psim.shard(1).world, 10);
//! assert!(psim.windows() >= 2);
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Barrier, Mutex};

use crate::shard::{Remote, ShardSim};
use crate::time::{SimDur, SimTime};

/// Sentinel `window_end` value telling persistent workers to exit.
const STOP: u64 = u64::MAX;

/// The coordinator: owns the shards and drives barrier windows. See the
/// module docs for the algorithm and the determinism argument.
pub struct ParallelSim<W> {
    shards: Vec<ShardSim<W>>,
    lookahead: SimDur,
    windows: u64,
    injected: u64,
    /// Minimum, over all injections so far, of `event time − destination
    /// clock` in ns. Conservative sync guarantees this never goes
    /// negative; the lookahead-safety proptest asserts it.
    min_inject_slack: Option<i128>,
}

impl<W: Send> ParallelSim<W> {
    /// Build one shard per world, ids `0..worlds.len()`, all sharing the
    /// same positive `lookahead`.
    pub fn new(worlds: Vec<W>, lookahead: SimDur) -> Self {
        assert!(lookahead > SimDur::ZERO, "conservative sync needs a positive lookahead");
        let shards = worlds
            .into_iter()
            .enumerate()
            .map(|(id, w)| ShardSim::new(id, w, lookahead))
            .collect();
        ParallelSim { shards, lookahead, windows: 0, injected: 0, min_inject_slack: None }
    }

    /// Number of shards.
    #[inline]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Borrow shard `i` (seed events with [`ShardSim::at`], read worlds).
    #[inline]
    pub fn shard(&self, i: usize) -> &ShardSim<W> {
        &self.shards[i]
    }

    /// Mutably borrow shard `i`.
    #[inline]
    pub fn shard_mut(&mut self, i: usize) -> &mut ShardSim<W> {
        &mut self.shards[i]
    }

    /// Iterate the shards in id order.
    pub fn shards(&self) -> impl Iterator<Item = &ShardSim<W>> {
        self.shards.iter()
    }

    /// The configured lookahead.
    #[inline]
    pub fn lookahead(&self) -> SimDur {
        self.lookahead
    }

    /// Barrier windows executed so far.
    #[inline]
    pub fn windows(&self) -> u64 {
        self.windows
    }

    /// Cross-shard events injected so far.
    #[inline]
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Total events executed across all shards.
    pub fn events_executed(&self) -> u64 {
        self.shards.iter().map(|s| s.events_executed()).sum()
    }

    /// Minimum observed `event time − destination clock` over every
    /// cross-shard injection, in ns (`None` before any injection). The
    /// conservative-sync invariant is `≥ 0`: no shard ever receives an
    /// event below its local clock.
    #[inline]
    pub fn min_inject_slack(&self) -> Option<i128> {
        self.min_inject_slack
    }

    /// Run until every queue and outbox drains, on `threads` workers
    /// (`0` and `1` both mean inline serial execution of the identical
    /// algorithm). Final worlds, clocks and event counts are
    /// bit-identical for any `threads` value.
    pub fn run(&mut self, threads: usize) {
        self.drive(None, threads);
    }

    /// Run until `horizon`, [`Sim::run_until`](crate::Sim::run_until)
    /// style: events due exactly at the horizon still execute, later
    /// ones stay queued, and every shard clock ends at `horizon` or
    /// later.
    pub fn run_until(&mut self, horizon: SimTime, threads: usize) {
        self.drive(Some(horizon), threads);
        for s in &mut self.shards {
            s.advance_to(horizon);
        }
    }

    /// Next window `[T, end)` under an optional horizon, or `None` when
    /// the run is over (queues empty, or every remaining event lies
    /// past the horizon).
    fn next_window(&self, horizon: Option<SimTime>) -> Option<(SimTime, SimTime)> {
        let t = self.shards.iter().filter_map(|s| s.peek_min_time()).min()?;
        if let Some(h) = horizon {
            if t > h {
                return None;
            }
        }
        let mut end = t + self.lookahead;
        if let Some(h) = horizon {
            // Half-open window; the horizon itself is inclusive.
            end = end.min(h + SimDur::from_nanos(1));
        }
        Some((t, end))
    }

    /// Drain every outbox in shard-id order and inject into the
    /// destinations. Single-threaded between windows, so destination
    /// `seq` assignment — the tie-break among same-time remote events —
    /// is a pure function of shard ids and per-shard execution order.
    fn exchange(&mut self) {
        for src in 0..self.shards.len() {
            let out = self.shards[src].take_outbox();
            for Remote { dst, time, event } in out {
                let slack =
                    time.as_nanos() as i128 - self.shards[dst].now().as_nanos() as i128;
                self.min_inject_slack =
                    Some(self.min_inject_slack.map_or(slack, |m| m.min(slack)));
                self.injected += 1;
                self.shards[dst].at_boxed(time, event);
            }
        }
    }

    fn drive(&mut self, horizon: Option<SimTime>, threads: usize) {
        let threads = threads.clamp(1, self.shards.len().max(1));
        if threads <= 1 {
            while let Some((_, end)) = self.next_window(horizon) {
                for s in &mut self.shards {
                    s.run_window(end);
                }
                self.windows += 1;
                self.exchange();
            }
            return;
        }
        self.drive_parallel(horizon, threads);
    }

    /// The threaded driver: persistent scoped workers, two barriers per
    /// window. Worker `w` owns shards `i` with `i % threads == w`; the
    /// per-shard mutexes are uncontended (one owner during a window,
    /// coordinator-only between barriers) and exist to move `&mut`
    /// access across the scope safely.
    fn drive_parallel(&mut self, horizon: Option<SimTime>, threads: usize) {
        let slots: Vec<Mutex<Option<ShardSim<W>>>> =
            (0..self.shards.len()).map(|_| Mutex::new(None)).collect();
        // Parking barriers, deliberately: a spin barrier would make the
        // per-window rendezvous sub-microsecond on a machine with a
        // core per worker, but waiters that spin starve the very
        // workers they wait for whenever cores < threads — the common
        // case in CI containers — and measured an order of magnitude
        // slower there. Parking costs a futex round trip per window and
        // degrades gracefully everywhere.
        let window_end = AtomicU64::new(0);
        let start = Barrier::new(threads + 1);
        let done = Barrier::new(threads + 1);

        std::thread::scope(|scope| {
            for w in 0..threads {
                let slots = &slots;
                let window_end = &window_end;
                let (start, done) = (&start, &done);
                scope.spawn(move || loop {
                    start.wait();
                    let end = window_end.load(Ordering::Acquire);
                    if end == STOP {
                        break;
                    }
                    for slot in slots.iter().skip(w).step_by(threads) {
                        let mut guard = slot.lock().unwrap();
                        guard.as_mut().unwrap().run_window(SimTime::from_nanos(end));
                    }
                    done.wait();
                });
            }

            loop {
                // Between barriers the coordinator is the only thread
                // touching the shards: peek, hand out, reclaim, exchange.
                let Some((_, end)) = self.next_window(horizon) else {
                    window_end.store(STOP, Ordering::Release);
                    start.wait();
                    break;
                };
                for (slot, shard) in slots.iter().zip(self.shards.drain(..)) {
                    *slot.lock().unwrap() = Some(shard);
                }
                window_end.store(end.as_nanos(), Ordering::Release);
                start.wait();
                done.wait();
                self.shards =
                    slots.iter().map(|slot| slot.lock().unwrap().take().unwrap()).collect();
                self.windows += 1;
                self.exchange();
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn log_time(label: u64) -> impl FnOnce(&mut ShardSim<Vec<(u64, u64)>>) + Send {
        move |s| {
            let t = s.now().as_nanos();
            s.world.push((t, label));
        }
    }

    fn worlds(n: usize) -> Vec<Vec<(u64, u64)>> {
        vec![Vec::new(); n]
    }

    #[test]
    fn cross_shard_cascade_matches_across_thread_counts() {
        let build = || {
            let mut p = ParallelSim::new(worlds(4), SimDur::from_nanos(50));
            for g in 0..4usize {
                p.shard_mut(g).at(SimTime::from_nanos(g as u64 * 7), move |s| {
                    let id = s.id();
                    s.world.push((s.now().as_nanos(), id as u64));
                    s.send_to((id + 1) % 4, SimDur::from_nanos(50 + id as u64), move |d| {
                        let t = d.now().as_nanos();
                        d.world.push((t, 100 + id as u64));
                        if id == 0 {
                            d.send_to(0, SimDur::from_nanos(60), log_time(999));
                        }
                    });
                });
            }
            p.run(0);
            p
        };
        let serial = build();
        for threads in [2usize, 3, 4, 8] {
            let mut p = ParallelSim::new(worlds(4), SimDur::from_nanos(50));
            for g in 0..4usize {
                p.shard_mut(g).at(SimTime::from_nanos(g as u64 * 7), move |s| {
                    let id = s.id();
                    s.world.push((s.now().as_nanos(), id as u64));
                    s.send_to((id + 1) % 4, SimDur::from_nanos(50 + id as u64), move |d| {
                        let t = d.now().as_nanos();
                        d.world.push((t, 100 + id as u64));
                        if id == 0 {
                            d.send_to(0, SimDur::from_nanos(60), log_time(999));
                        }
                    });
                });
            }
            p.run(threads);
            for g in 0..4 {
                assert_eq!(p.shard(g).world, serial.shard(g).world, "threads={threads} g={g}");
                assert_eq!(p.shard(g).now(), serial.shard(g).now());
            }
            assert_eq!(p.events_executed(), serial.events_executed());
            assert_eq!(p.windows(), serial.windows());
            assert_eq!(p.injected(), serial.injected());
        }
        assert!(serial.min_inject_slack().unwrap() >= 0);
    }

    #[test]
    fn run_until_honours_the_horizon_inclusively() {
        let mut p = ParallelSim::new(worlds(2), SimDur::from_nanos(10));
        p.shard_mut(0).at(SimTime::from_nanos(100), log_time(1));
        p.shard_mut(1).at(SimTime::from_nanos(101), log_time(2));
        p.shard_mut(1).at(SimTime::from_nanos(100), log_time(3));
        p.run_until(SimTime::from_nanos(100), 2);
        assert_eq!(p.shard(0).world, vec![(100, 1)]);
        assert_eq!(p.shard(1).world, vec![(100, 3)], "101 is past the horizon");
        assert_eq!(p.shard(1).pending(), 1);
        assert_eq!(p.shard(0).now(), SimTime::from_nanos(100));
        assert_eq!(p.shard(1).now(), SimTime::from_nanos(100));
    }

    #[test]
    fn empty_run_terminates_immediately() {
        let mut p: ParallelSim<Vec<(u64, u64)>> =
            ParallelSim::new(worlds(3), SimDur::from_nanos(10));
        p.run(4);
        assert_eq!(p.windows(), 0);
        assert_eq!(p.events_executed(), 0);
        p.run_until(SimTime::from_nanos(50), 4);
        assert_eq!(p.shard(2).now(), SimTime::from_nanos(50));
    }

    #[test]
    fn injection_order_is_shard_id_then_emission_order() {
        // Two shards emit to shard 2 at the *same* due time; the
        // destination must apply src-0's events before src-1's,
        // regardless of thread count.
        let run = |threads: usize| {
            let mut p = ParallelSim::new(worlds(3), SimDur::from_nanos(100));
            for src in [1usize, 0] {
                p.shard_mut(src).at(SimTime::ZERO, move |s| {
                    let id = s.id() as u64;
                    s.send_to(2, SimDur::from_nanos(100), log_time(id));
                    s.send_to(2, SimDur::from_nanos(100), log_time(10 + id));
                });
            }
            p.run(threads);
            p.shard(2).world.clone()
        };
        let expect = vec![(100, 0), (100, 10), (100, 1), (100, 11)];
        assert_eq!(run(1), expect);
        assert_eq!(run(3), expect);
    }
}
