//! `scenario-run` — execute the end-to-end multi-tenant scenario
//! library and emit a JSON report.
//!
//! ```text
//! scenario-run [all|<scenario-name>] [--seed N] [--out FILE] [--list]
//! ```
//!
//! Runs each scenario's full job lifecycle (admission → CNI chain → VNI
//! allocation → CXI service → fabric traffic → teardown) under the
//! deterministic DES clock and prints one JSON document: a `"reports"`
//! array (one [`ScenarioReport`] per scenario) followed by a
//! `"run_metrics"` block (wall-clock, DES events executed, events/sec,
//! VNI database transactions). For a fixed seed the `"reports"` section
//! is byte-identical across runs; wall-clock throughput lives **only**
//! in `"run_metrics"`, after it, so determinism checks compare
//! everything up to that key. Exits non-zero if any scenario's
//! isolation assertions fail (cross-VNI delivery, quarantine violation,
//! leaked service, stale grant, or misplacement).
//!
//! [`ScenarioReport`]: slingshot_k8s::ScenarioReport

use std::path::PathBuf;
use std::time::Instant;

use shs_harness::{scenario_run_document, RunMetrics};
use slingshot_k8s::{by_name, library, run_scenario, ScenarioReport};

struct Opts {
    cmd: String,
    seed: u64,
    out: Option<PathBuf>,
    list: bool,
}

fn parse_args() -> Opts {
    let mut args = std::env::args().skip(1).peekable();
    let cmd = match args.peek() {
        Some(a) if !a.starts_with("--") => args.next().expect("peeked"),
        _ => "all".to_string(),
    };
    let mut opts = Opts { cmd, seed: 42, out: None, list: false };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seed" => {
                let v = args.next().unwrap_or_else(|| usage("--seed needs a value"));
                opts.seed = v.parse().unwrap_or_else(|_| usage("--seed must be numeric"));
            }
            "--out" => {
                let v = args.next().unwrap_or_else(|| usage("--out needs a path"));
                opts.out = Some(PathBuf::from(v));
            }
            "--list" => opts.list = true,
            other => usage(&format!("unknown flag {other}")),
        }
    }
    opts
}

fn usage(msg: &str) -> ! {
    eprintln!("scenario-run: {msg}");
    eprintln!("usage: scenario-run [all|<scenario-name>] [--seed N] [--out FILE] [--list]");
    std::process::exit(2);
}

fn main() {
    let opts = parse_args();
    // Validate the positional scenario name first so a typo exits 2
    // even when combined with --list.
    let scenarios = if opts.cmd == "all" {
        library(opts.seed)
    } else {
        match by_name(&opts.cmd, opts.seed) {
            Some(s) => vec![s],
            None => usage(&format!(
                "unknown scenario {:?}; use --list to see the library",
                opts.cmd
            )),
        }
    };
    if opts.list {
        for s in library(opts.seed) {
            println!("{:<22} {}", s.name, s.description);
        }
        return;
    }

    let started = Instant::now();
    let reports: Vec<ScenarioReport> = scenarios
        .iter()
        .map(|s| {
            eprintln!("running {} ...", s.name);
            run_scenario(s)
        })
        .collect();
    let metrics = RunMetrics::from_reports(&reports, started.elapsed().as_secs_f64());

    let doc = scenario_run_document(&reports, &metrics);
    let json = serde_json::to_string_pretty(&doc).expect("reports serialize");
    println!("{json}");
    if let Some(path) = &opts.out {
        if let Err(e) = std::fs::write(path, format!("{json}\n")) {
            eprintln!("scenario-run: writing {}: {e}", path.display());
            std::process::exit(1);
        }
        eprintln!("wrote {}", path.display());
    }

    let failed: Vec<&str> = reports
        .iter()
        .filter(|r| !r.passed)
        .map(|r| r.scenario.as_str())
        .collect();
    if !failed.is_empty() {
        eprintln!("FAILED isolation assertions: {}", failed.join(", "));
        std::process::exit(1);
    }
    eprintln!("{} scenario(s) passed", reports.len());
}
