//! `scenario-run` — execute the end-to-end multi-tenant scenario
//! library and emit a JSON report.
//!
//! ```text
//! scenario-run [all|<scenario-name>] [--seed N] [--threads N] [--shards N] [--out FILE] [--list]
//! ```
//!
//! Runs each k8s scenario's full job lifecycle (admission → CNI chain →
//! VNI allocation → CXI service → fabric traffic → teardown) under the
//! deterministic DES clock, plus the cluster-scale **parallel fabric
//! sweeps** (256–1024-node dragonfly topologies sharded per group) and
//! the **control-plane stress runs** (tenant churn straight through the
//! sharded VNI database under WAL group commit, ending in a
//! crash-recovery audit), and prints one JSON document: a
//! `"control_reports"` array (one [`VniStressReport`] per stress run),
//! a `"parallel_reports"` array (one [`FabricSweepReport`] per sweep),
//! a `"reports"` array (one [`ScenarioReport`] per k8s scenario), then
//! a `"run_metrics"` block (wall-clock, DES events executed,
//! events/sec, VNI database transactions, host fingerprint). For a
//! fixed seed the report sections are byte-identical across runs **and
//! across `--threads` / `--shards` values** — `--threads` only chooses
//! how many workers drive the sharded sweeps, and `--shards` only
//! chooses how many store shards back the VNI database (the facade
//! preserves single-store allocation order and audit semantics);
//! wall-clock throughput lives only in `"run_metrics"`, after them.
//! Exits non-zero if any scenario's assertions fail (isolation for the
//! k8s library; conservation and conservative-sync for the sweeps;
//! consistency + crash recovery for the stress runs).
//!
//! The full-scale `vni-stress-1m` (one million tenants, ten million
//! transactions) is reachable by name but not part of `all`.
//!
//! [`ScenarioReport`]: slingshot_k8s::ScenarioReport
//! [`FabricSweepReport`]: slingshot_k8s::FabricSweepReport
//! [`VniStressReport`]: slingshot_k8s::VniStressReport

use std::path::PathBuf;
use std::time::Instant;

use shs_harness::{scenario_run_document, RunMetrics};
use slingshot_k8s::{
    by_name, library, parallel_by_name, parallel_library, run_fabric_scenario, run_scenario,
    run_vni_stress, stress_by_name, stress_library, FabricScenario, FabricSweepReport, Scenario,
    ScenarioReport, VniStressReport, VniStressScenario,
};

struct Opts {
    cmd: String,
    seed: u64,
    threads: usize,
    shards: usize,
    out: Option<PathBuf>,
    list: bool,
}

fn parse_args() -> Opts {
    let mut args = std::env::args().skip(1).peekable();
    let cmd = match args.peek() {
        Some(a) if !a.starts_with("--") => args.next().expect("peeked"),
        _ => "all".to_string(),
    };
    let mut opts = Opts { cmd, seed: 42, threads: 1, shards: 1, out: None, list: false };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seed" => {
                let v = args.next().unwrap_or_else(|| usage("--seed needs a value"));
                opts.seed = v.parse().unwrap_or_else(|_| usage("--seed must be numeric"));
            }
            "--threads" => {
                let v = args.next().unwrap_or_else(|| usage("--threads needs a value"));
                opts.threads = v.parse().unwrap_or_else(|_| usage("--threads must be numeric"));
                if opts.threads == 0 {
                    usage("--threads must be >= 1");
                }
            }
            "--shards" => {
                let v = args.next().unwrap_or_else(|| usage("--shards needs a value"));
                opts.shards = v.parse().unwrap_or_else(|_| usage("--shards must be numeric"));
                if opts.shards == 0 {
                    usage("--shards must be >= 1");
                }
            }
            "--out" => {
                let v = args.next().unwrap_or_else(|| usage("--out needs a path"));
                opts.out = Some(PathBuf::from(v));
            }
            "--list" => opts.list = true,
            other => usage(&format!("unknown flag {other}")),
        }
    }
    opts
}

fn usage(msg: &str) -> ! {
    eprintln!("scenario-run: {msg}");
    eprintln!(
        "usage: scenario-run [all|<scenario-name>] [--seed N] [--threads N] [--shards N] \
         [--out FILE] [--list]"
    );
    std::process::exit(2);
}

fn main() {
    let opts = parse_args();
    // Validate the positional scenario name first so a typo exits 2
    // even when combined with --list. A name resolves in the k8s
    // library, the parallel sweep library, or the stress library.
    #[allow(clippy::type_complexity)]
    let (mut scenarios, sweeps, mut stress): (
        Vec<Scenario>,
        Vec<FabricScenario>,
        Vec<VniStressScenario>,
    ) = if opts.cmd == "all" {
        (library(opts.seed), parallel_library(opts.seed), stress_library(opts.seed))
    } else if let Some(s) = by_name(&opts.cmd, opts.seed) {
        (vec![s], vec![], vec![])
    } else if let Some(s) = parallel_by_name(&opts.cmd, opts.seed) {
        (vec![], vec![s], vec![])
    } else if let Some(s) = stress_by_name(&opts.cmd, opts.seed) {
        (vec![], vec![], vec![s])
    } else {
        usage(&format!("unknown scenario {:?}; use --list to see the library", opts.cmd))
    };
    // --shards applies uniformly: the k8s clusters' VNI databases and
    // the stress runs all use the same shard count.
    for s in &mut scenarios {
        s.config.vni_shards = opts.shards;
    }
    for s in &mut stress {
        s.shards = opts.shards;
    }
    if opts.list {
        for s in library(opts.seed) {
            println!("{:<22} {}", s.name, s.description);
        }
        for s in parallel_library(opts.seed) {
            println!("{:<22} {}", s.name, s.description);
        }
        for s in stress_library(opts.seed) {
            println!("{:<22} {}", s.name, s.description);
        }
        if let Some(s) = stress_by_name("vni-stress-1m", opts.seed) {
            println!("{:<22} {} (by name only)", s.name, s.description);
        }
        return;
    }

    let started = Instant::now();
    let reports: Vec<ScenarioReport> = scenarios
        .iter()
        .map(|s| {
            eprintln!("running {} ...", s.name);
            run_scenario(s)
        })
        .collect();
    let parallel: Vec<FabricSweepReport> = sweeps
        .iter()
        .map(|s| {
            eprintln!("running {} (threads={}) ...", s.name, opts.threads);
            run_fabric_scenario(s, opts.threads)
        })
        .collect();
    let control: Vec<VniStressReport> = stress
        .iter()
        .map(|s| {
            eprintln!("running {} (shards={}) ...", s.name, s.shards);
            run_vni_stress(s)
        })
        .collect();
    let metrics = RunMetrics::from_run(&reports, &parallel, &control, started.elapsed().as_secs_f64());

    let doc = scenario_run_document(&reports, &parallel, &control, &metrics);
    let json = serde_json::to_string_pretty(&doc).expect("reports serialize");
    println!("{json}");
    if let Some(path) = &opts.out {
        if let Err(e) = std::fs::write(path, format!("{json}\n")) {
            eprintln!("scenario-run: writing {}: {e}", path.display());
            std::process::exit(1);
        }
        eprintln!("wrote {}", path.display());
    }

    let failed: Vec<&str> = reports
        .iter()
        .filter(|r| !r.passed)
        .map(|r| r.scenario.as_str())
        .chain(parallel.iter().filter(|r| !r.passed).map(|r| r.scenario.as_str()))
        .chain(control.iter().filter(|r| !r.passed).map(|r| r.scenario.as_str()))
        .collect();
    if !failed.is_empty() {
        eprintln!("FAILED scenario assertions: {}", failed.join(", "));
        std::process::exit(1);
    }
    eprintln!("{} scenario(s) passed", reports.len() + parallel.len() + control.len());
}
