//! `bench-run` — the machine-readable perf trajectory.
//!
//! ```text
//! bench-run [--quick] [--baseline FILE] [--gate] [--label NAME] [--out FILE]
//!           [--threads LIST] [--shards LIST]
//! ```
//!
//! Times the control-plane hot paths the paper's VNI Database serializes
//! (§III-C2) and the end-to-end scenario engine, then emits one JSON
//! document (`shs-bench/v1`) with the **median ns/op** per benchmark and
//! **events/sec** per scenario. Passing `--baseline FILE` (a previous
//! `bench-run` output) folds that run's medians in as
//! `baseline_median_ns_per_op` plus a `speedup_vs_baseline` ratio
//! (3 decimals) and the raw signed `delta_pct`, so every PR's
//! `results/BENCH_pr<N>.json` records before *and* after. A benchmark
//! the baseline file does not know about gets an explicit
//! `"baseline_median_ns_per_op": null`. Adding `--gate` turns the
//! comparison into a CI check: the run exits non-zero when any metric
//! regresses by more than [`shs_harness::gate::MAX_REGRESSION_PCT`]
//! percent (new metrics are informational — see `shs_harness::gate`).
//! A metric that regresses on its first measurement is re-measured up
//! to [`GATE_RETRIES`] times and judged on its best result: on a
//! shared machine a throttle window makes unchanged code read 50%
//! slow, and one unlucky sample must not fail CI — a real regression
//! is slow on every attempt.
//!
//! Benchmarks:
//! * `vni_db_acquire_release` — allocate/release cycles at the default
//!   range width (3072) with the clock pinned at t=0, so released VNIs
//!   pile up in quarantine and the allocator must step past them;
//! * `vni_db_churn_hot` — the high-occupancy hot path: 3000 of 3072
//!   VNIs stay allocated while one tenant churns through the remainder,
//!   the clock advancing past the 30 s quarantine each cycle;
//! * `store_txn_commit` — a single-put ACID transaction (WAL append +
//!   fsync + apply), the floor under every VniDb operation;
//! * `store_txn_commit_grouped` — the same single-put transaction
//!   inside an open WAL group-commit batch flushed every 64 commits:
//!   the amortized per-commit cost the control plane pays under load;
//! * `store_recover_hist10k` / `store_recover_hist100k` — full store
//!   recovery from a shut-down device after 10k vs 100k commits of
//!   churn over the **same** live-row count. The truncating snapshot
//!   cadence keeps the device (and so the recovery scan) O(live rows):
//!   10× the history must not mean 10× the recovery time, and each
//!   entry records its `device_bytes` so the bound is visible;
//! * `osu_allreduce` — one 8-rank, 64 KiB ring allreduce over a 2-group
//!   dragonfly (every hop crossing the group trunk), the collective
//!   hot path of the `shs_mpi::Communicator`;
//! * `service_mesh_hot` — one TSoR-style request/response round trip
//!   per op between 8 replica NICs on the 3-group dragonfly (the
//!   response leg departs at the request's arrival instant), the
//!   serving-plane data path;
//! * `pleg_status_read_100` / `pleg_status_read_10k` — one PLEG-cached
//!   cluster status read (Running count + one group's ready count) at
//!   100 vs 10,000 pods. The pair is the serving plane's O(1)
//!   acceptance record: the cached median must stay flat across the
//!   100× pod-count step while the `pod_scan_status_read_*` pair — the
//!   same answer computed by the pre-PLEG full pod scan — grows
//!   linearly; the emitted `"pleg_status_reads"` block records both
//!   ratios.
//!
//! Scenarios (`churn`, `steady-state`) run once under the DES clock;
//! their event counts are deterministic, their wall-clock is not.
//!
//! The **parallel scaling curve**: the 1024-node `dragonfly-1024`
//! fabric sweep runs once per `--threads` entry (default `1,2,4`) under
//! the sharded engine, emitting one `dragonfly-1024-t<N>` scenario row
//! each — the events/sec trajectory across worker counts. The run
//! asserts the sweep's event count and counters are identical at every
//! thread count before reporting; a `"parallel"` block records the
//! deterministic shape (nodes, shards, windows, cross-group events).
//!
//! The **control-plane sharding curve**: a bench-scale tenant-churn
//! stress run (2000 tenants through the sharded VNI database under
//! group commit, ending in a crash-recovery audit) runs once per
//! `--shards` entry (default `1,2,4`), emitting one `vni_stress-s<N>`
//! scenario row each. The run asserts the stress report —
//! allocations, audit length, transaction count, recovery outcome —
//! is **identical at every shard count** before reporting; only
//! wall-clock (and so ops/sec) may differ between rows.
//!
//! The emitted document also records a top-level `"host"` fingerprint
//! (core count, OS, architecture, CPU model): medians are only
//! comparable like-for-like, and the fingerprint makes cross-host
//! comparisons visibly suspect instead of silently wrong.

use std::path::PathBuf;
use std::time::Instant;

use serde_json::{json, Value};
use shs_harness::gate::{self, GateCheck};
use shs_harness::{HostInfo, OsuAllreduceWorkload};
use shs_vnistore::{SimDisk, Store, StoreConfig};
use slingshot_k8s::{
    by_name, parallel_by_name, run_fabric_scenario, run_scenario, run_vni_stress,
    AcquireReleaseWorkload, ChurnHotWorkload, FabricAdaptiveHotWorkload, FabricSweepReport,
    FabricTransferHotWorkload, PlegStatusReadWorkload, ServiceMeshHotWorkload, VniDb,
    VniStressReport, VniStressScenario,
};

/// The parallel scaling-curve subject: the 1024-node library sweep.
const PARALLEL_SCENARIO: &str = "dragonfly-1024";

/// Row-name prefix of the control-plane sharding curve
/// (`vni_stress-s<N>` = the bench-scale stress run at N store shards).
const STRESS_PREFIX: &str = "vni_stress-s";

/// Tenant identities cycled by the bench-scale stress run.
const STRESS_TENANTS: u64 = 2_000;

/// Steps per bench-scale stress run (`vni_stress-s<N>` rows). Fixed
/// across `--quick` and full mode — the run ends in a crash+recovery
/// whose fixed cost amortizes over the op count, so rows are only
/// gate-comparable to a baseline recorded at the *same* size (unlike
/// the pure per-op micros, where iteration count cancels out).
const STRESS_OPS: u64 = 20_000;

/// Commits per durability barrier in `store_txn_commit_grouped` — the
/// same cadence `VniStressWorkload` flushes its group batches at.
const GROUP_FLUSH_EVERY: u64 = 64;

/// Live rows both recovery benchmarks leave on the device; only the
/// churn *history* differs between them.
const RECOVER_LIVE: u64 = 1_000;

/// How many fresh measurements a first-pass gate regression earns
/// before the gate fails it. The entry keeps its **best** measurement
/// and the baseline-derived fields are re-folded to match.
const GATE_RETRIES: usize = 2;

struct Opts {
    quick: bool,
    baseline: Option<PathBuf>,
    gate: bool,
    label: String,
    out: Option<PathBuf>,
    /// Worker counts for the parallel scaling curve (one scenario row
    /// per entry).
    threads: Vec<usize>,
    /// Shard counts for the control-plane sharding curve (one
    /// `vni_stress-s<N>` scenario row per entry).
    shards: Vec<usize>,
}

/// Sample/iteration budgets shared by the first measurement pass and
/// gate-mode re-measurement.
#[derive(Clone, Copy)]
struct Budgets {
    samples: usize,
    ar_iters: u64,
    churn_iters: u64,
    store_iters: u64,
}

fn parse_args() -> Opts {
    let mut opts = Opts {
        quick: false,
        baseline: None,
        gate: false,
        label: "bench-run".into(),
        out: None,
        threads: vec![1, 2, 4],
        shards: vec![1, 2, 4],
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => opts.quick = true,
            "--gate" => opts.gate = true,
            "--threads" => {
                let v = args.next().unwrap_or_else(|| usage("--threads needs a list, e.g. 1,2,4"));
                opts.threads = v
                    .split(',')
                    .map(|t| match t.trim().parse::<usize>() {
                        Ok(n) if n >= 1 => n,
                        _ => usage("--threads entries must be integers >= 1"),
                    })
                    .collect();
                if opts.threads.is_empty() {
                    usage("--threads needs at least one entry");
                }
            }
            "--shards" => {
                let v = args.next().unwrap_or_else(|| usage("--shards needs a list, e.g. 1,2,4"));
                opts.shards = v
                    .split(',')
                    .map(|t| match t.trim().parse::<usize>() {
                        Ok(n) if n >= 1 => n,
                        _ => usage("--shards entries must be integers >= 1"),
                    })
                    .collect();
                if opts.shards.is_empty() {
                    usage("--shards needs at least one entry");
                }
            }
            "--baseline" => {
                let v = args.next().unwrap_or_else(|| usage("--baseline needs a path"));
                opts.baseline = Some(PathBuf::from(v));
            }
            "--label" => {
                opts.label = args.next().unwrap_or_else(|| usage("--label needs a value"));
            }
            "--out" => {
                let v = args.next().unwrap_or_else(|| usage("--out needs a path"));
                opts.out = Some(PathBuf::from(v));
            }
            other => usage(&format!("unknown flag {other}")),
        }
    }
    if opts.gate && opts.baseline.is_none() {
        usage("--gate needs --baseline FILE to gate against");
    }
    opts
}

fn usage(msg: &str) -> ! {
    eprintln!("bench-run: {msg}");
    eprintln!(
        "usage: bench-run [--quick] [--baseline FILE] [--gate] [--label NAME] [--out FILE] \
         [--threads LIST] [--shards LIST]"
    );
    std::process::exit(2);
}

/// Median of per-op timings, one entry per sample.
fn median(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
    let n = samples.len();
    if n == 0 {
        return 0.0;
    }
    if n % 2 == 1 {
        samples[n / 2]
    } else {
        (samples[n / 2 - 1] + samples[n / 2]) / 2.0
    }
}

/// Time `op` for `samples` batches of `iters` calls; returns the median
/// ns/op over samples (each sample's mean is one data point).
fn measure(samples: usize, iters: u64, mut op: impl FnMut()) -> f64 {
    let mut per_op = Vec::with_capacity(samples);
    for _ in 0..samples {
        let start = Instant::now();
        for _ in 0..iters {
            op();
        }
        per_op.push(start.elapsed().as_nanos() as f64 / iters as f64);
    }
    median(per_op)
}

fn bench_entry(name: &str, median_ns: f64, samples: usize, iters: u64) -> Value {
    json!({
        "name": name,
        "median_ns_per_op": round1(median_ns),
        "samples": samples,
        "iters_per_sample": iters,
    })
}

fn round1(x: f64) -> f64 {
    (x * 10.0).round() / 10.0
}

/// Speedup ratios get three decimals: at one decimal a real 0.96×
/// reads as the alarming 1.0×→0.9× step that made PR 5's noise look
/// like a regression (and a real 1.04× win disappears entirely).
fn round3(x: f64) -> f64 {
    (x * 1000.0).round() / 1000.0
}

/// Allocate/release cycles with the clock pinned at t=0 — the exact
/// workload the `vni_db_acquire_release` Criterion target times (one
/// shared definition in `slingshot_k8s::workloads`).
fn bench_acquire_release(samples: usize, iters: u64) -> f64 {
    let mut w = AcquireReleaseWorkload::new();
    measure(samples, iters, || {
        w.step();
    })
}

/// The high-occupancy hot path timed by the `vni_db_churn_hot`
/// Criterion target — same shared definition, see
/// `slingshot_k8s::workloads::ChurnHotWorkload`.
fn bench_churn_hot(samples: usize, iters: u64) -> (f64, ChurnHotWorkload) {
    let mut w = ChurnHotWorkload::new();
    let med = measure(samples, iters, || {
        w.step();
    });
    (med, w)
}

/// The multi-switch fabric hot path timed by the `fabric_transfer_hot`
/// Criterion target — same shared definition, see
/// `slingshot_k8s::workloads::FabricTransferHotWorkload`.
fn bench_fabric_transfer_hot(samples: usize, iters: u64) -> f64 {
    let mut w = FabricTransferHotWorkload::new();
    measure(samples, iters, || {
        w.step();
    })
}

/// The same fabric hot path under UGAL adaptive routing — the per-step
/// premium of the injection-time queue compare over the static
/// `fabric_transfer_hot` baseline (see
/// `slingshot_k8s::workloads::FabricAdaptiveHotWorkload`).
fn bench_fabric_adaptive_hot(samples: usize, iters: u64) -> f64 {
    let mut w = FabricAdaptiveHotWorkload::new();
    measure(samples, iters, || {
        w.step();
    })
}

/// One 8-rank, 64 KiB ring allreduce across the 2-group dragonfly per
/// op — the `osu_allreduce` collective hot path, shared with the
/// Criterion `micro` target (see
/// `shs_harness::collective::OsuAllreduceWorkload`).
fn bench_osu_allreduce(samples: usize, iters: u64) -> f64 {
    let mut w = OsuAllreduceWorkload::new();
    let med = measure(samples, iters, || {
        w.step();
    });
    assert_eq!(w.lost(), 0, "the benchmark rig must stay lossless");
    med
}

/// One request/response round trip per op — the serving-plane data path
/// timed by the `service_mesh_hot` Criterion target (see
/// `slingshot_k8s::workloads::ServiceMeshHotWorkload`).
fn bench_service_mesh_hot(samples: usize, iters: u64) -> f64 {
    let mut w = ServiceMeshHotWorkload::new();
    measure(samples, iters, || {
        w.step();
    })
}

/// One PLEG-cached cluster status read per op over a settled `pods`-pod
/// cluster (see `slingshot_k8s::workloads::PlegStatusReadWorkload`).
fn bench_pleg_status_read(samples: usize, iters: u64, pods: u64) -> f64 {
    let mut w = PlegStatusReadWorkload::new(pods);
    measure(samples, iters, || {
        w.cached_read();
    })
}

/// The same status read computed by a full pod scan — the pre-PLEG read
/// path kept as the linear-growth contrast row.
fn bench_pod_scan_status_read(samples: usize, iters: u64, pods: u64) -> f64 {
    let mut w = PlegStatusReadWorkload::new(pods);
    measure(samples, iters, || {
        w.scan_read();
    })
}

/// `"pleg_status_read_<N>"` / `"pod_scan_status_read_<N>"` → (cached?,
/// pods) for the gate re-measure arm (`"10k"` → 10,000).
fn status_read_pods(name: &str) -> Option<(bool, u64)> {
    let (cached, rest) = if let Some(r) = name.strip_prefix("pleg_status_read_") {
        (true, r)
    } else if let Some(r) = name.strip_prefix("pod_scan_status_read_") {
        (false, r)
    } else {
        return None;
    };
    let pods = match rest.strip_suffix('k') {
        Some(thousands) => thousands.parse::<u64>().ok()? * 1_000,
        None => rest.parse::<u64>().ok()?,
    };
    Some((cached, pods))
}

fn bench_store_commit(samples: usize, iters: u64) -> f64 {
    let mut store = Store::new(StoreConfig { snapshot_every: None, ..Default::default() });
    let mut i = 0u64;
    measure(samples, iters, || {
        let mut txn = store.begin();
        txn.put("vnis", &i.to_be_bytes(), b"row");
        i += 1;
        txn.commit();
    })
}

/// The same single-put transaction as `store_txn_commit`, but inside an
/// open WAL group-commit batch flushed every [`GROUP_FLUSH_EVERY`]
/// commits — so each op's cost is the staged append plus its 1/64th
/// share of one batch frame + fsync. This amortized figure is what
/// every control-plane transaction pays under tenant-churn load.
fn bench_store_commit_grouped(samples: usize, iters: u64) -> f64 {
    let mut store = Store::new(StoreConfig { snapshot_every: None, ..Default::default() });
    store.group_begin();
    let mut i = 0u64;
    let med = measure(samples, iters, || {
        let mut txn = store.begin();
        txn.put("vnis", &i.to_be_bytes(), b"row");
        i += 1;
        txn.commit();
        if i.is_multiple_of(GROUP_FLUSH_EVERY) {
            store.group_flush();
        }
    });
    store.group_end();
    med
}

/// Store config for the recovery benchmarks: the WAL-growth-triggered
/// truncating snapshot cadence the VNI database runs under, which is
/// what bounds the device at O(live rows).
fn recover_config() -> StoreConfig {
    StoreConfig { snapshot_every: Some(256), snapshot_wal_factor: 1 }
}

/// Build a shut-down device holding [`RECOVER_LIVE`] stable rows plus
/// `history` commits of churn over a handful of hot keys. Under the
/// truncating snapshot cadence the device length is governed by the
/// live rows, not `history`.
fn churned_disk(history: u64) -> SimDisk {
    let mut store = Store::new(recover_config());
    for i in 0..RECOVER_LIVE {
        let mut txn = store.begin();
        txn.put("vnis", &i.to_be_bytes(), b"live row");
        txn.commit();
    }
    for i in 0..history {
        let mut txn = store.begin();
        txn.put("hot", &(i % 8).to_be_bytes(), &i.to_be_bytes());
        txn.commit();
    }
    store.shutdown()
}

/// Median ns per full recovery (snapshot decode + WAL-tail replay +
/// index rebuild) from a clone of `disk`.
fn bench_store_recover(samples: usize, iters: u64, disk: &SimDisk) -> f64 {
    measure(samples, iters, || {
        let store = Store::recover(disk.clone(), recover_config());
        assert_eq!(store.row_count("vnis") as u64, RECOVER_LIVE, "recovery lost rows");
    })
}

/// `"store_recover_hist<N>k"` → churn history for the remeasure arm.
fn recover_row_history(name: &str) -> Option<u64> {
    let rest = name.strip_prefix("store_recover_hist")?.strip_suffix('k')?;
    rest.parse::<u64>().ok().map(|k| k * 1_000)
}

/// Run one library scenario, returning (events executed, wall seconds).
fn run_scenario_timed(name: &str) -> (u64, f64) {
    let scenario = by_name(name, 42).expect("library scenario");
    let start = Instant::now();
    let report = run_scenario(&scenario);
    (report.events_executed, start.elapsed().as_secs_f64())
}

/// Run the parallel library sweep on `threads` workers, returning the
/// (thread-count-independent) report and the wall seconds.
fn run_parallel_timed(threads: usize) -> (FabricSweepReport, f64) {
    let sweep = parallel_by_name(PARALLEL_SCENARIO, 42).expect("parallel library scenario");
    let start = Instant::now();
    let report = run_fabric_scenario(&sweep, threads);
    let wall_s = start.elapsed().as_secs_f64();
    assert!(report.passed, "bench sweep must conserve messages: {report:?}");
    (report, wall_s)
}

/// `"dragonfly-1024-t<N>"` → `N`: the thread count a scaling-curve
/// scenario row was measured at (gate re-measurement needs it back).
fn parallel_row_threads(name: &str) -> Option<usize> {
    let rest = name.strip_prefix(PARALLEL_SCENARIO)?.strip_prefix("-t")?;
    rest.parse().ok()
}

/// `"vni_stress-s<N>"` → `N`: the shard count a sharding-curve scenario
/// row was measured at (gate re-measurement needs it back).
fn stress_row_shards(name: &str) -> Option<usize> {
    name.strip_prefix(STRESS_PREFIX)?.parse().ok()
}

/// Run the bench-scale control-plane stress scenario at `shards` store
/// shards, returning the (shard-count-invariant) report and the wall
/// seconds.
fn run_stress_timed(shards: usize, ops: u64) -> (VniStressReport, f64) {
    let scenario = VniStressScenario {
        name: "vni-stress-bench".into(),
        description: "bench-scale tenant churn through the sharded VNI database".into(),
        seed: 42,
        tenants: STRESS_TENANTS,
        ops,
        shards,
    };
    let start = Instant::now();
    let report = run_vni_stress(&scenario);
    let wall_s = start.elapsed().as_secs_f64();
    assert!(report.passed, "bench stress run must stay consistent and recover: {report:?}");
    (report, wall_s)
}

/// Baseline medians from a previous bench-run output, keyed by name.
fn baseline_map(path: &PathBuf, section: &str, field: &str) -> Vec<(String, f64)> {
    let Ok(text) = std::fs::read_to_string(path) else {
        eprintln!("bench-run: cannot read baseline {}", path.display());
        std::process::exit(2);
    };
    let Ok(doc) = serde_json::from_str::<Value>(&text) else {
        eprintln!("bench-run: baseline {} is not valid JSON", path.display());
        std::process::exit(2);
    };
    let mut out = Vec::new();
    if let Some(entries) = doc[section].as_array() {
        for e in entries {
            if let (Some(name), Some(v)) = (e["name"].as_str(), e[field].as_f64()) {
                out.push((name.to_string(), v));
            }
        }
    }
    out
}

fn fold_baseline(entries: &mut [Value], baseline: &[(String, f64)], field: &str) {
    let higher_is_better = field.ends_with("per_sec");
    for e in entries.iter_mut() {
        let Some(name) = e["name"].as_str() else { continue };
        let found = baseline.iter().find(|(n, _)| n == name).map(|&(_, b)| b);
        let Some(current) = e[field].as_f64() else { continue };
        if let Value::Object(map) = e {
            let Some(base) = found else {
                // New benchmark: no history in this baseline file. The
                // explicit null tells readers (and the gate) "compared,
                // nothing to compare against" rather than "not compared".
                map.insert(format!("baseline_{field}"), Value::Null);
                continue;
            };
            map.insert(format!("baseline_{field}"), json!(round1(base)));
            if current > 0.0 && base > 0.0 {
                let ratio = if higher_is_better { current / base } else { base / current };
                map.insert("speedup_vs_baseline".into(), json!(round3(ratio)));
                // Raw signed regression percentage (positive = worse),
                // unrounded — the number the gate thresholds.
                map.insert(
                    "delta_pct".into(),
                    json!(gate::regression_pct(current, base, higher_is_better)),
                );
            }
        }
    }
}

/// One fresh measurement of a gate metric: `(value, wall_ms)` — the
/// value in the entry's own unit (ns/op or events/sec), `wall_ms` only
/// for scenario entries so their wall-clock field can stay coherent.
fn remeasure(name: &str, b: &Budgets) -> Option<(f64, Option<f64>)> {
    Some(match name {
        "vni_db_acquire_release" => (bench_acquire_release(b.samples, b.ar_iters), None),
        "vni_db_churn_hot" => (bench_churn_hot(b.samples, b.churn_iters).0, None),
        "store_txn_commit" => (bench_store_commit(b.samples, b.store_iters), None),
        "store_txn_commit_grouped" => (bench_store_commit_grouped(b.samples, b.store_iters), None),
        "fabric_transfer_hot" => (bench_fabric_transfer_hot(b.samples, b.store_iters), None),
        "fabric_adaptive_hot" => (bench_fabric_adaptive_hot(b.samples, b.store_iters), None),
        "osu_allreduce" => (bench_osu_allreduce(b.samples, b.churn_iters), None),
        "service_mesh_hot" => (bench_service_mesh_hot(b.samples, b.store_iters), None),
        "churn" | "steady-state" => {
            let (events, wall_s) = run_scenario_timed(name);
            (events as f64 / wall_s, Some(wall_s * 1e3))
        }
        _ => {
            if let Some(history) = recover_row_history(name) {
                let disk = churned_disk(history);
                (bench_store_recover(b.samples, b.churn_iters, &disk), None)
            } else if let Some((cached, pods)) = status_read_pods(name) {
                let med = if cached {
                    bench_pleg_status_read(b.samples, b.store_iters, pods)
                } else {
                    bench_pod_scan_status_read(b.samples, b.churn_iters, pods)
                };
                (med, None)
            } else if let Some(shards) = stress_row_shards(name) {
                let (report, wall_s) = run_stress_timed(shards, STRESS_OPS);
                (report.ops as f64 / wall_s, Some(wall_s * 1e3))
            } else {
                let threads = parallel_row_threads(name)?;
                let (report, wall_s) = run_parallel_timed(threads);
                (report.events_executed as f64 / wall_s, Some(wall_s * 1e3))
            }
        }
    })
}

/// Gate-mode de-flaking: every entry whose first measurement regresses
/// past the threshold is re-measured up to [`GATE_RETRIES`] times and
/// keeps its best result. A transient scheduler/throttle window does
/// not survive three attempts; a real regression fails all of them.
fn retry_regressions(
    entries: &mut [Value],
    baseline: &[(String, f64)],
    field: &str,
    budgets: &Budgets,
) {
    let higher_is_better = field.ends_with("per_sec");
    for _ in 0..GATE_RETRIES {
        let mut any_failing = false;
        for e in entries.iter_mut() {
            let Some(name) = e["name"].as_str().map(str::to_string) else { continue };
            let Some(current) = e[field].as_f64() else { continue };
            let Some(base) = baseline.iter().find(|(n, _)| n == &name).map(|&(_, b)| b) else {
                continue;
            };
            if gate::regression_pct(current, base, higher_is_better) <= gate::MAX_REGRESSION_PCT {
                continue;
            }
            any_failing = true;
            let Some((fresh, wall_ms)) = remeasure(&name, budgets) else { continue };
            let keep = if higher_is_better { fresh > current } else { fresh < current };
            eprintln!(
                "bench-run: gate retry {name}: first pass {} {field}, re-measured {} — keeping {}",
                round1(current),
                round1(fresh),
                round1(if keep { fresh } else { current }),
            );
            if keep {
                if let Value::Object(map) = e {
                    map.insert(field.to_string(), json!(round1(fresh)));
                    if let Some(w) = wall_ms {
                        map.insert("wall_ms".into(), json!(round1(w)));
                    }
                }
            }
        }
        if !any_failing {
            break;
        }
    }
    // Speedup/delta must describe the kept measurements.
    fold_baseline(entries, baseline, field);
}

/// Extract the gate's view of folded entries: `(name, current,
/// baseline-or-None)` in entry order.
fn gate_checks(entries: &[Value], field: &str) -> Vec<GateCheck> {
    let higher_is_better = field.ends_with("per_sec");
    entries
        .iter()
        .filter_map(|e| {
            Some(GateCheck {
                name: e["name"].as_str()?.to_string(),
                current: e[field].as_f64()?,
                baseline: e[format!("baseline_{field}").as_str()].as_f64(),
                higher_is_better,
            })
        })
        .collect()
}

fn main() {
    let opts = parse_args();
    // Sample/iteration budgets keep acquire_release inside one workload
    // epoch (the backlog profile stays comparable across runs) and keep
    // churn_hot affordable on un-indexed builds.
    let budgets = if opts.quick {
        Budgets { samples: 7, ar_iters: 100, churn_iters: 10, store_iters: 200 }
    } else {
        Budgets { samples: 15, ar_iters: 150, churn_iters: 20, store_iters: 500 }
    };
    let Budgets { samples, ar_iters, churn_iters, store_iters } = budgets;

    eprintln!("bench-run: timing vni_db_acquire_release ...");
    let ar = bench_acquire_release(samples, ar_iters);
    eprintln!("bench-run: timing vni_db_churn_hot ...");
    let (churn, churn_workload) = bench_churn_hot(samples, churn_iters);
    eprintln!("bench-run: timing store_txn_commit ...");
    let store = bench_store_commit(samples, store_iters);
    eprintln!("bench-run: timing store_txn_commit_grouped ...");
    let store_grouped = bench_store_commit_grouped(samples, store_iters);
    eprintln!("bench-run: timing store_recover_hist10k / store_recover_hist100k ...");
    let disk_10k = churned_disk(10_000);
    let recover_10k = bench_store_recover(samples, churn_iters, &disk_10k);
    let disk_100k = churned_disk(100_000);
    let recover_100k = bench_store_recover(samples, churn_iters, &disk_100k);
    eprintln!("bench-run: timing fabric_transfer_hot ...");
    let fabric_iters = store_iters;
    let fabric = bench_fabric_transfer_hot(samples, fabric_iters);
    eprintln!("bench-run: timing fabric_adaptive_hot ...");
    let fabric_adaptive = bench_fabric_adaptive_hot(samples, fabric_iters);
    eprintln!("bench-run: timing osu_allreduce ...");
    let allreduce_iters = churn_iters;
    let allreduce = bench_osu_allreduce(samples, allreduce_iters);
    eprintln!("bench-run: timing service_mesh_hot ...");
    let mesh = bench_service_mesh_hot(samples, fabric_iters);
    eprintln!("bench-run: timing pleg_status_read_100 / pleg_status_read_10k ...");
    let pleg_100 = bench_pleg_status_read(samples, store_iters, 100);
    let pleg_10k = bench_pleg_status_read(samples, store_iters, 10_000);
    eprintln!("bench-run: timing pod_scan_status_read_100 / pod_scan_status_read_10k ...");
    let scan_100 = bench_pod_scan_status_read(samples, churn_iters, 100);
    let scan_10k = bench_pod_scan_status_read(samples, churn_iters, 10_000);

    let mut recover_10k_entry = bench_entry("store_recover_hist10k", recover_10k, samples, churn_iters);
    recover_10k_entry["device_bytes"] = json!(disk_10k.len());
    let mut recover_100k_entry =
        bench_entry("store_recover_hist100k", recover_100k, samples, churn_iters);
    recover_100k_entry["device_bytes"] = json!(disk_100k.len());

    let mut benchmarks = vec![
        bench_entry("vni_db_acquire_release", ar, samples, ar_iters),
        bench_entry("vni_db_churn_hot", churn, samples, churn_iters),
        bench_entry("store_txn_commit", store, samples, store_iters),
        bench_entry("store_txn_commit_grouped", store_grouped, samples, store_iters),
        recover_10k_entry,
        recover_100k_entry,
        bench_entry("fabric_transfer_hot", fabric, samples, fabric_iters),
        bench_entry("fabric_adaptive_hot", fabric_adaptive, samples, fabric_iters),
        bench_entry("osu_allreduce", allreduce, samples, allreduce_iters),
        bench_entry("service_mesh_hot", mesh, samples, fabric_iters),
        bench_entry("pleg_status_read_100", pleg_100, samples, store_iters),
        bench_entry("pleg_status_read_10k", pleg_10k, samples, store_iters),
        bench_entry("pod_scan_status_read_100", scan_100, samples, churn_iters),
        bench_entry("pod_scan_status_read_10k", scan_10k, samples, churn_iters),
    ];

    let mut scenarios = Vec::new();
    for name in ["churn", "steady-state"] {
        eprintln!("bench-run: running scenario {name} ...");
        let (events, wall_s) = run_scenario_timed(name);
        scenarios.push(json!({
            "name": name,
            "events_executed": events,
            "wall_ms": round1(wall_s * 1e3),
            "events_per_sec": round1(events as f64 / wall_s),
        }));
    }

    // The parallel scaling curve: the same 1024-node sweep at each
    // worker count. Bit-identical results are asserted here — only the
    // wall-clock (and so events/sec) may differ between rows.
    let mut parallel_shape: Option<FabricSweepReport> = None;
    for &threads in &opts.threads {
        eprintln!("bench-run: running scenario {PARALLEL_SCENARIO} (threads={threads}) ...");
        let (report, wall_s) = run_parallel_timed(threads);
        if let Some(base) = &parallel_shape {
            assert_eq!(&report, base, "sweep diverged at threads={threads}");
        }
        scenarios.push(json!({
            "name": format!("{PARALLEL_SCENARIO}-t{threads}"),
            "threads": threads,
            "events_executed": report.events_executed,
            "wall_ms": round1(wall_s * 1e3),
            "events_per_sec": round1(report.events_executed as f64 / wall_s),
        }));
        parallel_shape.get_or_insert(report);
    }

    // The control-plane sharding curve: the same stress run at each
    // store shard count. The report — allocations, audit, transactions,
    // recovery — is asserted identical across shard counts; only the
    // wall-clock (and so ops/sec) may differ between rows.
    let mut stress_shape: Option<VniStressReport> = None;
    for &shards in &opts.shards {
        eprintln!("bench-run: running scenario {STRESS_PREFIX}{shards} ...");
        let (report, wall_s) = run_stress_timed(shards, STRESS_OPS);
        if let Some(base) = &stress_shape {
            assert_eq!(&report, base, "stress report diverged at shards={shards}");
        }
        scenarios.push(json!({
            "name": format!("{STRESS_PREFIX}{shards}"),
            "shards": shards,
            "events_executed": report.ops,
            "txns": report.txns,
            "wall_ms": round1(wall_s * 1e3),
            "events_per_sec": round1(report.ops as f64 / wall_s),
        }));
        stress_shape.get_or_insert(report);
    }

    let mut gate_report = None;
    if let Some(path) = &opts.baseline {
        let bench_base = baseline_map(path, "benchmarks", "median_ns_per_op");
        fold_baseline(&mut benchmarks, &bench_base, "median_ns_per_op");
        let scen_base = baseline_map(path, "scenarios", "events_per_sec");
        fold_baseline(&mut scenarios, &scen_base, "events_per_sec");
        if opts.gate {
            retry_regressions(&mut benchmarks, &bench_base, "median_ns_per_op", &budgets);
            retry_regressions(&mut scenarios, &scen_base, "events_per_sec", &budgets);
            let mut checks = gate_checks(&benchmarks, "median_ns_per_op");
            checks.extend(gate_checks(&scenarios, "events_per_sec"));
            gate_report = Some(gate::evaluate(&checks, gate::MAX_REGRESSION_PCT));
        }
    }

    // The deterministic shape of the parallel sweep — identical at
    // every thread count (asserted above), so recorded once.
    let parallel = parallel_shape.as_ref().map(|r| {
        json!({
            "scenario": PARALLEL_SCENARIO,
            "nodes": r.nodes,
            "shards": r.shards,
            "lookahead_ns": r.lookahead_ns,
            "events_executed": r.events_executed,
            "windows": r.windows,
            "cross_group_injected": r.cross_group_injected,
        })
    });

    // The deterministic shape of the stress run — identical at every
    // shard count (asserted above), so recorded once.
    let control = stress_shape.as_ref().map(|r| {
        json!({
            "scenario": r.scenario,
            "tenants": r.tenants,
            "ops": r.ops,
            "acquires": r.acquires,
            "reuse_allocs": r.reuse_allocs,
            "audit_len": r.audit_len,
            "txns": r.txns,
            "recovered": r.recovered,
        })
    });

    let doc = json!({
        "schema": "shs-bench/v1",
        "label": opts.label,
        "quick": opts.quick,
        "host": HostInfo::detect(),
        "benchmarks": benchmarks,
        "scenarios": scenarios,
        "parallel": parallel,
        "control": control,
        // The serving plane's O(1) acceptance record: the cached ratio
        // across the 100× pod-count step must stay near 1.0 while the
        // scan ratio tracks the pod count.
        "pleg_status_reads": {
            "cached_100_ns": round1(pleg_100),
            "cached_10k_ns": round1(pleg_10k),
            "cached_ratio_10k_vs_100": round3(pleg_10k / pleg_100),
            "scan_100_ns": round1(scan_100),
            "scan_10k_ns": round1(scan_10k),
            "scan_ratio_10k_vs_100": round3(scan_10k / scan_100),
        },
        "allocator_counters": allocator_counters(churn_workload.db()),
    });
    let text = serde_json::to_string_pretty(&doc).expect("serializes");
    println!("{text}");
    if let Some(path) = &opts.out {
        if let Err(e) = std::fs::write(path, format!("{text}\n")) {
            eprintln!("bench-run: writing {}: {e}", path.display());
            std::process::exit(1);
        }
        eprintln!("wrote {}", path.display());
    }
    if let Some(report) = gate_report {
        for line in &report.informational {
            eprintln!("bench-run: gate [info] {line}");
        }
        if !report.passed() {
            for line in &report.failures {
                eprintln!("bench-run: gate FAIL {line}");
            }
            std::process::exit(1);
        }
        eprintln!(
            "bench-run: gate passed (no metric regressed >{}% vs baseline)",
            gate::MAX_REGRESSION_PCT
        );
    }
}

/// Allocator-level counters from the churn-hot database — how the
/// allocations were satisfied (fresh VNIs vs post-quarantine reuse) and
/// how much expiry work the index performed.
fn allocator_counters(db: &VniDb) -> Value {
    serde_json::to_value(db.counters()).expect("counters serialize")
}
