//! `bench-run` — the machine-readable perf trajectory.
//!
//! ```text
//! bench-run [--quick] [--baseline FILE] [--label NAME] [--out FILE]
//! ```
//!
//! Times the control-plane hot paths the paper's VNI Database serializes
//! (§III-C2) and the end-to-end scenario engine, then emits one JSON
//! document (`shs-bench/v1`) with the **median ns/op** per benchmark and
//! **events/sec** per scenario. Passing `--baseline FILE` (a previous
//! `bench-run` output) folds that run's medians in as
//! `baseline_median_ns_per_op` plus a `speedup_vs_baseline` ratio, so
//! every PR's `results/BENCH_pr<N>.json` records before *and* after.
//!
//! Benchmarks:
//! * `vni_db_acquire_release` — allocate/release cycles at the default
//!   range width (3072) with the clock pinned at t=0, so released VNIs
//!   pile up in quarantine and the allocator must step past them;
//! * `vni_db_churn_hot` — the high-occupancy hot path: 3000 of 3072
//!   VNIs stay allocated while one tenant churns through the remainder,
//!   the clock advancing past the 30 s quarantine each cycle;
//! * `store_txn_commit` — a single-put ACID transaction (WAL append +
//!   fsync + apply), the floor under every VniDb operation;
//! * `osu_allreduce` — one 8-rank, 64 KiB ring allreduce over a 2-group
//!   dragonfly (every hop crossing the group trunk), the collective
//!   hot path of the `shs_mpi::Communicator`.
//!
//! Scenarios (`churn`, `steady-state`) run once under the DES clock;
//! their event counts are deterministic, their wall-clock is not.

use std::path::PathBuf;
use std::time::Instant;

use serde_json::{json, Value};
use shs_harness::OsuAllreduceWorkload;
use shs_vnistore::{Store, StoreConfig};
use slingshot_k8s::{
    by_name, run_scenario, AcquireReleaseWorkload, ChurnHotWorkload, FabricTransferHotWorkload,
    VniDb,
};

struct Opts {
    quick: bool,
    baseline: Option<PathBuf>,
    label: String,
    out: Option<PathBuf>,
}

fn parse_args() -> Opts {
    let mut opts =
        Opts { quick: false, baseline: None, label: "bench-run".into(), out: None };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => opts.quick = true,
            "--baseline" => {
                let v = args.next().unwrap_or_else(|| usage("--baseline needs a path"));
                opts.baseline = Some(PathBuf::from(v));
            }
            "--label" => {
                opts.label = args.next().unwrap_or_else(|| usage("--label needs a value"));
            }
            "--out" => {
                let v = args.next().unwrap_or_else(|| usage("--out needs a path"));
                opts.out = Some(PathBuf::from(v));
            }
            other => usage(&format!("unknown flag {other}")),
        }
    }
    opts
}

fn usage(msg: &str) -> ! {
    eprintln!("bench-run: {msg}");
    eprintln!("usage: bench-run [--quick] [--baseline FILE] [--label NAME] [--out FILE]");
    std::process::exit(2);
}

/// Median of per-op timings, one entry per sample.
fn median(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
    let n = samples.len();
    if n == 0 {
        return 0.0;
    }
    if n % 2 == 1 {
        samples[n / 2]
    } else {
        (samples[n / 2 - 1] + samples[n / 2]) / 2.0
    }
}

/// Time `op` for `samples` batches of `iters` calls; returns the median
/// ns/op over samples (each sample's mean is one data point).
fn measure(samples: usize, iters: u64, mut op: impl FnMut()) -> f64 {
    let mut per_op = Vec::with_capacity(samples);
    for _ in 0..samples {
        let start = Instant::now();
        for _ in 0..iters {
            op();
        }
        per_op.push(start.elapsed().as_nanos() as f64 / iters as f64);
    }
    median(per_op)
}

fn bench_entry(name: &str, median_ns: f64, samples: usize, iters: u64) -> Value {
    json!({
        "name": name,
        "median_ns_per_op": round1(median_ns),
        "samples": samples,
        "iters_per_sample": iters,
    })
}

fn round1(x: f64) -> f64 {
    (x * 10.0).round() / 10.0
}

/// Allocate/release cycles with the clock pinned at t=0 — the exact
/// workload the `vni_db_acquire_release` Criterion target times (one
/// shared definition in `slingshot_k8s::workloads`).
fn bench_acquire_release(samples: usize, iters: u64) -> f64 {
    let mut w = AcquireReleaseWorkload::new();
    measure(samples, iters, || {
        w.step();
    })
}

/// The high-occupancy hot path timed by the `vni_db_churn_hot`
/// Criterion target — same shared definition, see
/// `slingshot_k8s::workloads::ChurnHotWorkload`.
fn bench_churn_hot(samples: usize, iters: u64) -> (f64, ChurnHotWorkload) {
    let mut w = ChurnHotWorkload::new();
    let med = measure(samples, iters, || {
        w.step();
    });
    (med, w)
}

/// The multi-switch fabric hot path timed by the `fabric_transfer_hot`
/// Criterion target — same shared definition, see
/// `slingshot_k8s::workloads::FabricTransferHotWorkload`.
fn bench_fabric_transfer_hot(samples: usize, iters: u64) -> f64 {
    let mut w = FabricTransferHotWorkload::new();
    measure(samples, iters, || {
        w.step();
    })
}

/// One 8-rank, 64 KiB ring allreduce across the 2-group dragonfly per
/// op — the `osu_allreduce` collective hot path, shared with the
/// Criterion `micro` target (see
/// `shs_harness::collective::OsuAllreduceWorkload`).
fn bench_osu_allreduce(samples: usize, iters: u64) -> f64 {
    let mut w = OsuAllreduceWorkload::new();
    let med = measure(samples, iters, || {
        w.step();
    });
    assert_eq!(w.lost(), 0, "the benchmark rig must stay lossless");
    med
}

fn bench_store_commit(samples: usize, iters: u64) -> f64 {
    let mut store = Store::new(StoreConfig { snapshot_every: None });
    let mut i = 0u64;
    measure(samples, iters, || {
        let mut txn = store.begin();
        txn.put("vnis", &i.to_be_bytes(), b"row");
        i += 1;
        txn.commit();
    })
}

/// Run one library scenario, returning (events executed, wall seconds).
fn run_scenario_timed(name: &str) -> (u64, f64) {
    let scenario = by_name(name, 42).expect("library scenario");
    let start = Instant::now();
    let report = run_scenario(&scenario);
    (report.events_executed, start.elapsed().as_secs_f64())
}

/// Baseline medians from a previous bench-run output, keyed by name.
fn baseline_map(path: &PathBuf, section: &str, field: &str) -> Vec<(String, f64)> {
    let Ok(text) = std::fs::read_to_string(path) else {
        eprintln!("bench-run: cannot read baseline {}", path.display());
        std::process::exit(2);
    };
    let Ok(doc) = serde_json::from_str::<Value>(&text) else {
        eprintln!("bench-run: baseline {} is not valid JSON", path.display());
        std::process::exit(2);
    };
    let mut out = Vec::new();
    if let Some(entries) = doc[section].as_array() {
        for e in entries {
            if let (Some(name), Some(v)) = (e["name"].as_str(), e[field].as_f64()) {
                out.push((name.to_string(), v));
            }
        }
    }
    out
}

fn fold_baseline(entries: &mut [Value], baseline: &[(String, f64)], field: &str) {
    for e in entries.iter_mut() {
        let Some(name) = e["name"].as_str() else { continue };
        let Some(&(_, base)) = baseline.iter().find(|(n, _)| n == name) else { continue };
        let Some(current) = e[field].as_f64() else { continue };
        if let Value::Object(map) = e {
            map.insert(format!("baseline_{field}"), json!(round1(base)));
            if current > 0.0 {
                let ratio =
                    if field.ends_with("per_sec") { current / base } else { base / current };
                map.insert("speedup_vs_baseline".into(), json!(round1(ratio)));
            }
        }
    }
}

fn main() {
    let opts = parse_args();
    // Sample/iteration budgets keep acquire_release inside one workload
    // epoch (the backlog profile stays comparable across runs) and keep
    // churn_hot affordable on un-indexed builds.
    let (samples, ar_iters, churn_iters, store_iters) =
        if opts.quick { (7, 100, 10, 200) } else { (15, 150, 20, 500) };

    eprintln!("bench-run: timing vni_db_acquire_release ...");
    let ar = bench_acquire_release(samples, ar_iters);
    eprintln!("bench-run: timing vni_db_churn_hot ...");
    let (churn, churn_workload) = bench_churn_hot(samples, churn_iters);
    eprintln!("bench-run: timing store_txn_commit ...");
    let store = bench_store_commit(samples, store_iters);
    eprintln!("bench-run: timing fabric_transfer_hot ...");
    let fabric_iters = store_iters;
    let fabric = bench_fabric_transfer_hot(samples, fabric_iters);
    eprintln!("bench-run: timing osu_allreduce ...");
    let allreduce_iters = churn_iters;
    let allreduce = bench_osu_allreduce(samples, allreduce_iters);

    let mut benchmarks = vec![
        bench_entry("vni_db_acquire_release", ar, samples, ar_iters),
        bench_entry("vni_db_churn_hot", churn, samples, churn_iters),
        bench_entry("store_txn_commit", store, samples, store_iters),
        bench_entry("fabric_transfer_hot", fabric, samples, fabric_iters),
        bench_entry("osu_allreduce", allreduce, samples, allreduce_iters),
    ];

    let mut scenarios = Vec::new();
    for name in ["churn", "steady-state"] {
        eprintln!("bench-run: running scenario {name} ...");
        let (events, wall_s) = run_scenario_timed(name);
        scenarios.push(json!({
            "name": name,
            "events_executed": events,
            "wall_ms": round1(wall_s * 1e3),
            "events_per_sec": round1(events as f64 / wall_s),
        }));
    }

    if let Some(path) = &opts.baseline {
        let bench_base = baseline_map(path, "benchmarks", "median_ns_per_op");
        fold_baseline(&mut benchmarks, &bench_base, "median_ns_per_op");
        let scen_base = baseline_map(path, "scenarios", "events_per_sec");
        fold_baseline(&mut scenarios, &scen_base, "events_per_sec");
    }

    let doc = json!({
        "schema": "shs-bench/v1",
        "label": opts.label,
        "quick": opts.quick,
        "benchmarks": benchmarks,
        "scenarios": scenarios,
        "allocator_counters": allocator_counters(churn_workload.db()),
    });
    let text = serde_json::to_string_pretty(&doc).expect("serializes");
    println!("{text}");
    if let Some(path) = &opts.out {
        if let Err(e) = std::fs::write(path, format!("{text}\n")) {
            eprintln!("bench-run: writing {}: {e}", path.display());
            std::process::exit(1);
        }
        eprintln!("wrote {}", path.display());
    }
}

/// Allocator-level counters from the churn-hot database — how the
/// allocations were satisfied (fresh VNIs vs post-quarantine reuse) and
/// how much expiry work the index performed.
fn allocator_counters(db: &VniDb) -> Value {
    serde_json::to_value(db.counters()).expect("counters serialize")
}
