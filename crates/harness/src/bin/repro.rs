//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro <table1|fig5|fig6|fig7|fig8|fig9|fig10|fig11|fig12|all>
//!       [--seed N] [--runs N] [--paper-scale] [--out DIR] [--spike-jobs N]
//! ```
//!
//! Default scale is reduced (same shapes, minutes instead of hours);
//! `--paper-scale` switches to the paper's iteration counts (10 k / 20 k
//! OSU iterations, 5 runs, 500-job spike).

use std::path::PathBuf;

use shs_harness::{
    admission, ramp_batches, report, run_comm, run_pattern, table1, CommConfig, Metric,
    OutputSink, Pattern,
};

#[derive(Debug, Clone)]
struct Opts {
    cmd: String,
    seed: u64,
    runs: Option<u32>,
    paper_scale: bool,
    out: Option<PathBuf>,
    spike_jobs: usize,
}

fn parse_args() -> Opts {
    let mut args = std::env::args().skip(1);
    let cmd = args.next().unwrap_or_else(|| "all".to_string());
    let mut opts = Opts {
        cmd,
        seed: 42,
        runs: None,
        paper_scale: false,
        out: Some(PathBuf::from("results")),
        spike_jobs: 0,
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seed" => opts.seed = args.next().expect("--seed N").parse().expect("numeric seed"),
            "--runs" => {
                opts.runs = Some(args.next().expect("--runs N").parse().expect("numeric runs"))
            }
            "--paper-scale" => opts.paper_scale = true,
            "--out" => opts.out = Some(PathBuf::from(args.next().expect("--out DIR"))),
            "--no-out" => opts.out = None,
            "--spike-jobs" => {
                opts.spike_jobs =
                    args.next().expect("--spike-jobs N").parse().expect("numeric count")
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    if opts.spike_jobs == 0 {
        opts.spike_jobs = if opts.paper_scale { 500 } else { 120 };
    }
    opts
}

fn comm_config(metric: Metric, opts: &Opts) -> CommConfig {
    let mut cfg = if opts.paper_scale {
        CommConfig::paper(metric, opts.seed)
    } else {
        CommConfig::quick(metric, opts.seed)
    };
    if let Some(r) = opts.runs {
        cfg.runs = r;
    }
    cfg
}

fn admission_runs(opts: &Opts) -> u32 {
    opts.runs.unwrap_or(if opts.paper_scale { 5 } else { 3 })
}

fn main() {
    let opts = parse_args();
    let sink = OutputSink::new(opts.out.as_deref());
    let all = opts.cmd == "all";
    let want = |name: &str| all || opts.cmd == name;
    let mut ran_any = false;

    if want("table1") {
        ran_any = true;
        println!("{}", table1::render());
    }
    if want("fig5") {
        ran_any = true;
        let res = run_comm(Metric::Bandwidth, &comm_config(Metric::Bandwidth, &opts));
        println!("{}", report::report_comm_absolute("Fig 5", &res, &sink));
    }
    if want("fig6") {
        ran_any = true;
        let res = run_comm(Metric::Bandwidth, &comm_config(Metric::Bandwidth, &opts));
        println!("{}", report::report_comm_overhead("Fig 6", &res, &sink));
    }
    if want("fig7") {
        ran_any = true;
        let res = run_comm(Metric::Latency, &comm_config(Metric::Latency, &opts));
        println!("{}", report::report_comm_absolute("Fig 7", &res, &sink));
    }
    if want("fig8") {
        ran_any = true;
        let mut cfg = comm_config(Metric::Latency, &opts);
        if opts.runs.is_none() {
            cfg.runs = if opts.paper_scale { 25 } else { 10 }; // Fig. 8 uses 25 runs
        }
        let res = run_comm(Metric::Latency, &cfg);
        println!("{}", report::report_comm_overhead("Fig 8", &res, &sink));
    }

    let need_ramp = want("fig9") || want("fig10") || want("fig12");
    let need_spike = want("fig11") || want("fig12");
    let ramp = need_ramp.then(|| {
        run_pattern(Pattern::Ramp, admission_runs(&opts), opts.seed, 300)
    });
    let spike = need_spike.then(|| {
        run_pattern(
            Pattern::Spike { jobs: opts.spike_jobs },
            admission_runs(&opts),
            opts.seed ^ 0xffee,
            600,
        )
    });

    if want("fig9") {
        ran_any = true;
        let (with, without) = ramp.as_ref().expect("computed");
        let batches = ramp_batches();
        println!("{}", report::report_running("Fig 9", with, without, Some(&batches), &sink));
    }
    if want("fig10") {
        ran_any = true;
        let (with, without) = ramp.as_ref().expect("computed");
        println!("{}", report::report_delay_by_batch("Fig 10", with, without, &sink));
    }
    if want("fig11") {
        ran_any = true;
        let (with, without) = spike.as_ref().expect("computed");
        println!("{}", report::report_running("Fig 11", with, without, None, &sink));
    }
    if want("fig12") {
        ran_any = true;
        let (rw, rwo) = ramp.as_ref().expect("computed");
        let (sw, swo) = spike.as_ref().expect("computed");
        println!("{}", report::report_boxplots((rw, rwo), (sw, swo), &sink));
        let _ = admission::median_overhead_pct(rw, rwo);
    }

    if !ran_any {
        eprintln!(
            "unknown command {:?}; expected one of table1 fig5..fig12 all",
            opts.cmd
        );
        std::process::exit(2);
    }
}
