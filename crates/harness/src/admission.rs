//! Job-admission experiments (paper §IV-B, Figs. 9-12): the ramp-up /
//! ramp-sustain / ramp-down test and the 500-job spike test, each run
//! with (`vni:true`) and without (`vni:false`) the Slingshot integration.
//!
//! "Job admission delay" = submission → workload start; jobs delete
//! themselves on completion (ttl=0), so the measured window covers VNI
//! allocation/release and CXI service lifecycle, as in the paper.

use std::collections::BTreeMap;

use shs_des::stats;
use shs_des::{SimDur, SimTime};
use shs_k8s::{kinds, spec_of, status_of, ApiServer, PodSpec, PodStatus, WatchType};
use slingshot_k8s::{alpine, Cluster, ClusterConfig};

/// Per-job lifecycle record.
#[derive(Debug, Clone, Copy)]
pub struct JobRecord {
    /// Submission batch index (0-based).
    pub batch: usize,
    /// Submission instant.
    pub submitted: SimTime,
    /// First pod start (admission), if reached.
    pub started: Option<SimTime>,
    /// Full teardown: the pod object is reaped only after the kubelet has
    /// run CNI DEL and removed the sandbox, so this marks the end of the
    /// job's footprint on the cluster (completion + deletion, §IV-B).
    pub deleted: Option<SimTime>,
}

impl JobRecord {
    /// Admission delay in seconds, if admitted.
    pub fn admission_delay_s(&self) -> Option<f64> {
        self.started.map(|s| (s - self.submitted).as_secs_f64())
    }
}

/// Watch-driven tracker: observes pod starts and job deletions without
/// rescanning the store.
#[derive(Debug, Default)]
pub struct JobTracker {
    last_rv: u64,
    /// Keyed by job name.
    pub jobs: BTreeMap<String, JobRecord>,
}

impl JobTracker {
    /// Register a submission.
    pub fn submitted(&mut self, job: &str, batch: usize, at: SimTime) {
        self.jobs.insert(
            job.to_string(),
            JobRecord { batch, submitted: at, started: None, deleted: None },
        );
    }

    /// Consume new watch events.
    pub fn observe(&mut self, api: &ApiServer, now: SimTime) {
        let (events, rv) = api.events_since(self.last_rv);
        self.last_rv = rv;
        for ev in &events {
            match (ev.object.kind.as_str(), ev.kind) {
                (k, WatchType::Modified) if k == kinds::POD => {
                    let Some(status) = status_of::<PodStatus>(&ev.object) else { continue };
                    let Some(started_ns) = status.started_at_ns else { continue };
                    let spec: PodSpec = spec_of(&ev.object);
                    let Some(job) = spec.job_name else { continue };
                    if let Some(rec) = self.jobs.get_mut(&job) {
                        let t = SimTime::from_nanos(started_ns);
                        if rec.started.is_none_or(|cur| t < cur) {
                            rec.started = Some(t);
                        }
                    }
                }
                (k, WatchType::Deleted) if k == kinds::POD => {
                    let spec: PodSpec = spec_of(&ev.object);
                    if let Some(job) = spec.job_name {
                        if let Some(rec) = self.jobs.get_mut(&job) {
                            rec.deleted = Some(now);
                        }
                    }
                }
                _ => {}
            }
        }
    }

    /// Jobs admitted (started) whose pod footprint still exists — the
    /// "actively running jobs" series of Figs. 9/11.
    pub fn running(&self) -> usize {
        self.jobs.values().filter(|r| r.started.is_some() && r.deleted.is_none()).count()
    }

    /// All jobs done (deleted) — termination condition.
    pub fn all_deleted(&self) -> bool {
        self.jobs.values().all(|r| r.deleted.is_some())
    }
}

/// The ramp curve of §IV-B1: 1..=10 up, 10 × 10 sustain, 9..=1 down.
pub fn ramp_batches() -> Vec<usize> {
    let mut v: Vec<usize> = (1..=10).collect();
    v.extend(std::iter::repeat_n(10, 10));
    v.extend((1..=9).rev());
    v
}

/// One run's outcome.
#[derive(Debug, Clone)]
pub struct AdmissionRun {
    /// (second, running-jobs) samples.
    pub samples: Vec<(u64, usize)>,
    /// Per-job records.
    pub jobs: Vec<JobRecord>,
}

/// Workload pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pattern {
    /// Ramp test (Figs. 9/10).
    Ramp,
    /// Spike test: 500 jobs at once (Fig. 11).
    Spike {
        /// Number of jobs submitted at t=0 (paper: 500).
        jobs: usize,
    },
}

/// Execute one admission run.
pub fn run_admission(pattern: Pattern, vni: bool, seed: u64, time_cap_s: u64) -> AdmissionRun {
    let mut cluster = Cluster::new(ClusterConfig { seed, ..Default::default() });
    let mut tracker = JobTracker::default();
    let ann: &[(&str, &str)] = if vni { &[("vni", "true")] } else { &[] };
    let tick = SimDur::from_millis(20);

    // Build the submission plan: (second, batch, count).
    let plan: Vec<(u64, usize, usize)> = match pattern {
        Pattern::Ramp => {
            ramp_batches().into_iter().enumerate().map(|(b, n)| (b as u64, b, n)).collect()
        }
        Pattern::Spike { jobs } => vec![(0, 0, jobs)],
    };

    let mut samples = Vec::new();
    let mut t = SimTime::ZERO;
    let mut next_plan = 0usize;
    let mut submitted_total = 0usize;
    for sec in 0..time_cap_s {
        let sec_start = SimTime::from_nanos(sec * 1_000_000_000);
        // Submit this second's batch(es).
        while next_plan < plan.len() && plan[next_plan].0 == sec {
            let (_, batch, count) = plan[next_plan];
            for i in 0..count {
                let name = format!("job-{batch:03}-{i:03}");
                cluster.submit_job(sec_start, "bench", &name, ann, 1, &alpine(), Some(10));
                tracker.submitted(&name, batch, sec_start);
                submitted_total += 1;
            }
            next_plan += 1;
        }
        // Advance one second of cluster time.
        let sec_end = SimTime::from_nanos((sec + 1) * 1_000_000_000);
        t = cluster.run_until(t.max(sec_start), sec_end, tick);
        tracker.observe(&cluster.api, t);
        samples.push((sec + 1, tracker.running()));
        if next_plan >= plan.len() && submitted_total > 0 && tracker.all_deleted() {
            break;
        }
    }
    AdmissionRun { samples, jobs: tracker.jobs.into_values().collect() }
}

/// Aggregated multi-run result for one configuration.
#[derive(Debug, Clone)]
pub struct AdmissionSeries {
    /// Config name (`vni:true` / `vni:false`).
    pub name: &'static str,
    /// Individual runs.
    pub runs: Vec<AdmissionRun>,
}

impl AdmissionSeries {
    /// Mean running-jobs per second with (p10, p90) across runs.
    pub fn running_series(&self) -> Vec<(u64, f64, f64, f64)> {
        let max_sec = self.runs.iter().map(|r| r.samples.len()).max().unwrap_or(0);
        (0..max_sec)
            .map(|i| {
                let xs: Vec<f64> = self
                    .runs
                    .iter()
                    .map(|r| r.samples.get(i).map_or(0.0, |&(_, n)| n as f64))
                    .collect();
                (
                    i as u64 + 1,
                    stats::mean(&xs),
                    stats::percentile(&xs, 10.0),
                    stats::percentile(&xs, 90.0),
                )
            })
            .collect()
    }

    /// Admission delay per batch: (batch, mean, p10, p90) over all jobs
    /// of all runs (Fig. 10).
    pub fn delay_by_batch(&self) -> Vec<(usize, f64, f64, f64)> {
        let mut by_batch: BTreeMap<usize, Vec<f64>> = BTreeMap::new();
        for run in &self.runs {
            for j in &run.jobs {
                if let Some(d) = j.admission_delay_s() {
                    by_batch.entry(j.batch).or_default().push(d);
                }
            }
        }
        by_batch
            .into_iter()
            .map(|(b, xs)| {
                (b, stats::mean(&xs), stats::percentile(&xs, 10.0), stats::percentile(&xs, 90.0))
            })
            .collect()
    }

    /// All admission delays pooled (Fig. 12 boxplots).
    pub fn all_delays(&self) -> Vec<f64> {
        self.runs
            .iter()
            .flat_map(|r| r.jobs.iter().filter_map(|j| j.admission_delay_s()))
            .collect()
    }
}

/// Run a full two-configuration comparison.
pub fn run_pattern(pattern: Pattern, runs: u32, seed: u64, time_cap_s: u64) -> (AdmissionSeries, AdmissionSeries) {
    let mut with = Vec::new();
    let mut without = Vec::new();
    for r in 0..runs {
        with.push(run_admission(pattern, true, seed.wrapping_add(1000 + r as u64), time_cap_s));
        without.push(run_admission(pattern, false, seed.wrapping_add(2000 + r as u64), time_cap_s));
    }
    (
        AdmissionSeries { name: "vni:true", runs: with },
        AdmissionSeries { name: "vni:false", runs: without },
    )
}

/// Median-overhead headline number (§IV-B: 3.5 % ramp, 1.6 % spike).
pub fn median_overhead_pct(with: &AdmissionSeries, without: &AdmissionSeries) -> f64 {
    let m_true = stats::median(&with.all_delays());
    let m_false = stats::median(&without.all_delays());
    stats::overhead_pct(m_false, m_true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ramp_curve_matches_paper_description() {
        let b = ramp_batches();
        assert_eq!(b.len(), 29);
        assert_eq!(b[..10], [1, 2, 3, 4, 5, 6, 7, 8, 9, 10]);
        assert!(b[10..20].iter().all(|&n| n == 10));
        assert_eq!(b[20..], [9, 8, 7, 6, 5, 4, 3, 2, 1]);
        assert_eq!(b.iter().sum::<usize>(), 200, "200 jobs total");
    }

    #[test]
    fn small_spike_admits_everything_and_drains() {
        // 40 jobs keep the setup queue saturated for several seconds, so
        // teardown starvation (setup priority) accumulates running jobs.
        let run = run_admission(Pattern::Spike { jobs: 40 }, false, 3, 120);
        assert_eq!(run.jobs.len(), 40);
        assert!(run.jobs.iter().all(|j| j.started.is_some()), "all admitted");
        assert!(run.jobs.iter().all(|j| j.deleted.is_some()), "all deleted");
        let peak = run.samples.iter().map(|&(_, n)| n).max().unwrap();
        assert!(peak >= 10, "teardown starvation accumulates running jobs: peak {peak}");
        // And the cluster drains back to zero at the end.
        assert_eq!(run.samples.last().unwrap().1, 0);
    }

    #[test]
    fn admission_delays_grow_with_queue_depth() {
        let run = run_admission(Pattern::Spike { jobs: 16 }, false, 4, 120);
        let mut delays: Vec<f64> =
            run.jobs.iter().filter_map(|j| j.admission_delay_s()).collect();
        delays.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!(
            delays.last().unwrap() > &(delays.first().unwrap() * 2.0),
            "later jobs wait behind the worker pool: {delays:?}"
        );
    }

    #[test]
    fn vni_overhead_is_small_but_measurable() {
        let (with, without) = run_pattern(Pattern::Spike { jobs: 10 }, 2, 11, 120);
        let oh = median_overhead_pct(&with, &without);
        assert!(oh > -5.0 && oh < 25.0, "median overhead {oh}% out of band");
    }
}
