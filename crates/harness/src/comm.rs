//! Communication-overhead experiments (paper §IV-A, Figs. 5-8).
//!
//! Three configurations, exactly as in the paper:
//! * `host` — OSU on bare metal, no Kubernetes involved;
//! * `vni:false` — OSU inside pods, Slingshot via the globally
//!   accessible VNI (integration disabled);
//! * `vni:true` — OSU inside pods with the full integration: VNI
//!   Service allocation + netns-member CXI service.
//!
//! Authentication happens only at endpoint creation, so the measured
//! data path is identical in all three; observed differences are pure
//! run-to-run jitter — which is the paper's claim.

use shs_cassini::{CassiniNic, CassiniParams};
use shs_cxi::{CxiDevice, CxiDriver, CxiServiceDesc};
use shs_des::stats;
use shs_des::{DetRng, SimDur, SimTime};
use shs_fabric::{Fabric, NicAddr, TrafficClass, Vni};
use shs_k8s::kinds;
use shs_mpi::{osu_bw_sweep, osu_latency_sweep, OsuParams, PairDevices, RankPair};
use shs_oslinux::{Gid, Host, Pid, Uid};
use slingshot_k8s::{osu_image, Cluster, ClusterConfig, VniCrdSpec};

/// Which metric to measure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// `osu_bw` throughput, MB/s.
    Bandwidth,
    /// `osu_latency` one-way latency, µs.
    Latency,
}

/// One configuration's samples: `values[run][size_index]`.
#[derive(Debug, Clone)]
pub struct ModeSamples {
    /// Display name (`host`, `vni:false`, `vni:true`).
    pub name: &'static str,
    /// Per-run sweeps.
    pub values: Vec<Vec<f64>>,
}

/// Full experiment result.
#[derive(Debug, Clone)]
pub struct CommResult {
    /// The size sweep.
    pub sizes: Vec<u64>,
    /// Metric measured.
    pub metric: Metric,
    /// host / vni:false / vni:true samples.
    pub modes: Vec<ModeSamples>,
}

impl CommResult {
    /// Mean over runs for a mode, per size.
    pub fn mean_of(&self, name: &str) -> Vec<f64> {
        let m = self.modes.iter().find(|m| m.name == name).expect("mode exists");
        (0..self.sizes.len())
            .map(|i| stats::mean(&m.values.iter().map(|run| run[i]).collect::<Vec<_>>()))
            .collect()
    }

    /// Overhead (%) of a mode against the host-mean baseline, per size:
    /// (mean, p10, p90) across runs — the Figs. 6/8 series. For latency,
    /// positive = slower than host; for bandwidth, positive = slower
    /// (throughput loss), matching the paper's sign convention.
    pub fn overhead_of(&self, name: &str) -> Vec<(f64, f64, f64)> {
        let host_mean = self.mean_of("host");
        let m = self.modes.iter().find(|m| m.name == name).expect("mode exists");
        (0..self.sizes.len())
            .map(|i| {
                let per_run: Vec<f64> = m
                    .values
                    .iter()
                    .map(|run| match self.metric {
                        Metric::Latency => stats::overhead_pct(host_mean[i], run[i]),
                        // Bandwidth: loss relative to baseline.
                        Metric::Bandwidth => -stats::overhead_pct(host_mean[i], run[i]),
                    })
                    .collect();
                (
                    stats::mean(&per_run),
                    stats::percentile(&per_run, 10.0),
                    stats::percentile(&per_run, 90.0),
                )
            })
            .collect()
    }
}

fn sweep(pair: &mut RankPair, devs: &mut PairDevices<'_>, metric: Metric, params: &OsuParams) -> Vec<f64> {
    match metric {
        Metric::Bandwidth => osu_bw_sweep(pair, devs, params).into_iter().map(|p| p.value).collect(),
        Metric::Latency => {
            osu_latency_sweep(pair, devs, params).into_iter().map(|p| p.value).collect()
        }
    }
}

/// Run the host (bare-metal) configuration.
fn run_host(metric: Metric, params: &OsuParams, runs: u32, seed: u64) -> ModeSamples {
    let mut values = Vec::with_capacity(runs as usize);
    let mut host_a = Host::new("host-a");
    let mut host_b = Host::new("host-b");
    let rng = DetRng::new(seed);
    let mut fabric = Fabric::new(4);
    let mut dev_a = CxiDevice::new(
        CxiDriver::extended(),
        CassiniNic::new(NicAddr(1), CassiniParams::default(), rng.derive("host/a")),
    );
    let mut dev_b = CxiDevice::new(
        CxiDriver::extended(),
        CassiniNic::new(NicAddr(2), CassiniParams::default(), rng.derive("host/b")),
    );
    fabric.attach(NicAddr(1));
    fabric.attach(NicAddr(2));
    fabric.grant_vni(NicAddr(1), Vni::GLOBAL).unwrap();
    fabric.grant_vni(NicAddr(2), Vni::GLOBAL).unwrap();
    let ra = host_a.credentials(Pid(1)).expect("init");
    let rb = host_b.credentials(Pid(1)).expect("init");
    dev_a.alloc_svc(&ra, CxiServiceDesc::default_service()).expect("svc");
    dev_b.alloc_svc(&rb, CxiServiceDesc::default_service()).expect("svc");
    let pid_a = host_a.spawn_detached("osu", Uid(1000), Gid(1000));
    let pid_b = host_b.spawn_detached("osu", Uid(1000), Gid(1000));
    for _ in 0..runs {
        let mut devs =
            PairDevices { dev_a: &mut dev_a, dev_b: &mut dev_b, fabric: &mut fabric };
        devs.new_run();
        let mut pair = RankPair::open(
            &host_a,
            pid_a,
            &host_b,
            pid_b,
            &mut devs,
            Vni::GLOBAL,
            TrafficClass::Dedicated,
            SimTime::ZERO,
        )
        .expect("default service admits");
        values.push(sweep(&mut pair, &mut devs, metric, params));
        pair.close(&mut devs);
    }
    ModeSamples { name: "host", values }
}

/// Run one in-Kubernetes configuration (`vni:true` / `vni:false`).
fn run_k8s(
    vni_enabled: bool,
    metric: Metric,
    params: &OsuParams,
    runs: u32,
    seed: u64,
) -> ModeSamples {
    let name = if vni_enabled { "vni:true" } else { "vni:false" };
    let mut values = Vec::with_capacity(runs as usize);
    for run in 0..runs {
        let mut cluster = Cluster::new(ClusterConfig {
            seed: seed.wrapping_add(run as u64),
            ..Default::default()
        });
        let ann: &[(&str, &str)] =
            if vni_enabled { &[("vni", "true")] } else { &[] };
        cluster.submit_job(SimTime::ZERO, "bench", "osu", ann, 2, &osu_image(), None);
        let admitted = cluster.run_until(
            SimTime::ZERO,
            SimTime::from_nanos(10_000_000_000),
            SimDur::from_millis(20),
        );
        let h0 = cluster.pod_handle("bench", "osu-0").expect("pod 0 running");
        let h1 = cluster.pod_handle("bench", "osu-1").expect("pod 1 running");
        assert_ne!(h0.node_idx, h1.node_idx, "topology spread placed ranks apart");
        // Which VNI do the ranks use?
        let vni = if vni_enabled {
            let crd = cluster.api.get(kinds::VNI, "bench", "vni-osu").expect("VNI CRD");
            let spec: VniCrdSpec = serde_json::from_value(crd.spec.clone()).expect("spec");
            Vni(spec.vni)
        } else {
            Vni::GLOBAL
        };
        let (na, nb, fabric) = cluster.two_nodes_mut(h0.node_idx, h1.node_idx);
        let mut devs = PairDevices {
            dev_a: &mut na.inner.device,
            dev_b: &mut nb.inner.device,
            fabric,
        };
        devs.new_run();
        let mut pair = RankPair::open(
            &na.inner.host,
            h0.pid,
            &nb.inner.host,
            h1.pid,
            &mut devs,
            vni,
            TrafficClass::Dedicated,
            admitted,
        )
        .expect("pod processes authenticate");
        values.push(sweep(&mut pair, &mut devs, metric, params));
        pair.close(&mut devs);
    }
    ModeSamples { name, values }
}

/// Experiment scale.
#[derive(Debug, Clone)]
pub struct CommConfig {
    /// OSU parameters (iterations, window, sizes).
    pub osu: OsuParams,
    /// Independent runs per configuration (paper: 10; Fig. 8: 25).
    pub runs: u32,
    /// Base seed.
    pub seed: u64,
}

impl CommConfig {
    /// Scaled-down default preserving all shapes.
    pub fn quick(metric: Metric, seed: u64) -> Self {
        let osu = match metric {
            Metric::Bandwidth => OsuParams { iterations: 100, warmup: 10, ..Default::default() },
            Metric::Latency => OsuParams { iterations: 200, warmup: 20, ..Default::default() },
        };
        CommConfig { osu, runs: 10, seed }
    }

    /// The paper's iteration counts (10 k bw / 20 k latency iterations).
    pub fn paper(metric: Metric, seed: u64) -> Self {
        let osu = match metric {
            Metric::Bandwidth => OsuParams::paper_scale_bw(),
            Metric::Latency => OsuParams::paper_scale_latency(),
        };
        CommConfig { osu, runs: 10, seed }
    }
}

/// Run the full three-configuration comparison.
pub fn run_comm(metric: Metric, cfg: &CommConfig) -> CommResult {
    let modes = vec![
        run_host(metric, &cfg.osu, cfg.runs, cfg.seed),
        run_k8s(false, metric, &cfg.osu, cfg.runs, cfg.seed ^ 0x5f5f),
        run_k8s(true, metric, &cfg.osu, cfg.runs, cfg.seed ^ 0xa0a0),
    ];
    CommResult { sizes: cfg.osu.sizes.clone(), metric, modes }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(_metric: Metric) -> CommConfig {
        CommConfig {
            osu: OsuParams {
                sizes: vec![8, 4096, 1 << 20],
                iterations: 20,
                warmup: 2,
                window: 16,
            },
            runs: 3,
            seed: 7,
        }
    }

    #[test]
    fn all_three_modes_measure_identical_shapes() {
        let res = run_comm(Metric::Bandwidth, &tiny(Metric::Bandwidth));
        assert_eq!(res.modes.len(), 3);
        for m in &res.modes {
            assert_eq!(m.values.len(), 3, "{}: 3 runs", m.name);
            for run in &m.values {
                assert_eq!(run.len(), 3, "{}: 3 sizes", m.name);
                assert!(run.windows(2).all(|w| w[1] > w[0]), "bw monotone for {}", m.name);
            }
        }
        // The kernel-bypass argument: all three modes within ~2% of each
        // other at every size.
        let host = res.mean_of("host");
        for name in ["vni:false", "vni:true"] {
            let m = res.mean_of(name);
            for i in 0..host.len() {
                let dev = (m[i] - host[i]).abs() / host[i];
                assert!(dev < 0.02, "{name} size#{i} deviates {dev}");
            }
        }
    }

    #[test]
    fn latency_overhead_is_sub_percent_band() {
        let res = run_comm(Metric::Latency, &tiny(Metric::Latency));
        for name in ["vni:true", "vni:false"] {
            for (mean, p10, p90) in res.overhead_of(name) {
                assert!(mean.abs() < 1.5, "{name} mean overhead {mean}%");
                assert!(p10 <= p90);
            }
        }
    }
}
