//! Collective-communication harness: OSU-style collective benchmarks
//! over the dragonfly fabric, both standalone (bare-metal rig) and over
//! a real [`Cluster`](slingshot_k8s::Cluster)'s pods.
//!
//! Two surfaces:
//!
//! * [`OsuAllreduceWorkload`] — the canonical `osu_allreduce` benchmark
//!   workload (8 ranks round-robined across a 2-group dragonfly, 64 KiB
//!   ring allreduce), shared by the Criterion `micro` target and the
//!   `bench-run` trajectory binary so both time the same thing;
//! * [`job_communicator`] — open an N-rank [`Communicator`] over the
//!   pods of a running job, authenticating each rank through its node's
//!   CXI driver exactly like an MPI application inside the pod would.
//!
//! See `COLLECTIVES.md` at the repository root for the algorithms and
//! the expected dragonfly scaling.

use shs_cxi::CxiDevice;
use shs_des::SimTime;
use shs_fabric::{Fabric, TopologySpec, TrafficClass, Vni};
use shs_mpi::{CommDevices, Communicator, RankSite};
use shs_ofi::OfiError;
use shs_oslinux::Host;
use slingshot_k8s::{Node, PodHandle};

pub use shs_mpi::CollectiveRig;

/// Open an N-rank [`Communicator`] over the pods of a running job:
/// `handles[r]` is rank *r*'s pod (from [`Cluster::pod_handle`]), and
/// each rank authenticates through its own node's CXI driver against
/// `vni` — the path an MPI job inside the pods would take. Use
/// [`Cluster::fabric_and_nodes`] for the split borrow.
///
/// [`Cluster::pod_handle`]: slingshot_k8s::Cluster::pod_handle
/// [`Cluster::fabric_and_nodes`]: slingshot_k8s::Cluster::fabric_and_nodes
pub fn job_communicator<'a>(
    nodes: &'a mut [Node],
    fabric: &'a mut Fabric,
    handles: &[PodHandle],
    vni: Vni,
    tc: TrafficClass,
    start: SimTime,
) -> Result<(Communicator, CommDevices<'a>), OfiError> {
    let mut hosts: Vec<&Host> = Vec::with_capacity(nodes.len());
    let mut devices: Vec<&mut CxiDevice> = Vec::with_capacity(nodes.len());
    for node in nodes.iter_mut() {
        let slingshot_k8s::NodeInner { host, device, .. } = &mut node.inner;
        hosts.push(&*host);
        devices.push(device);
    }
    let sites: Vec<RankSite<'_>> = handles
        .iter()
        .map(|h| RankSite { host: hosts[h.node_idx], pid: h.pid, node: h.node_idx })
        .collect();
    let mut devs = CommDevices { devs: devices, fabric };
    let comm = Communicator::open(&sites, &mut devs, vni, tc, start)?;
    Ok((comm, devs))
}

/// The canonical `osu_allreduce` benchmark workload, shared by the
/// Criterion `micro` target and `bench-run` so both harnesses time the
/// same thing: [`Self::RANKS`] ranks round-robined across a 2-group
/// dragonfly (every ring hop crosses the group trunk), one
/// [`Self::SIZE`]-byte ring allreduce per step.
pub struct OsuAllreduceWorkload {
    rig_devices: Vec<CxiDevice>,
    fabric: Fabric,
    comm: Communicator,
}

impl OsuAllreduceWorkload {
    /// Ranks in the communicator (one per node).
    pub const RANKS: usize = 8;

    /// Allreduce payload per step (bytes).
    pub const SIZE: u64 = 1 << 16;

    /// Build the rig and open the communicator once; steps reuse it.
    pub fn new() -> Self {
        let spec = TopologySpec { groups: 2, switches_per_group: 1, edge_ports: 8 };
        let mut rig = CollectiveRig::new(Self::RANKS, spec, 42);
        let comm = {
            let (comm, _devs) = rig.open(TrafficClass::Dedicated, SimTime::ZERO);
            comm
        };
        OsuAllreduceWorkload { rig_devices: rig.devices, fabric: rig.fabric, comm }
    }

    /// One full ring allreduce (14 rounds of 8 chunk messages, every
    /// hop crossing the group trunk). Returns the slowest rank's
    /// completion instant.
    pub fn step(&mut self) -> SimTime {
        let mut devs = CommDevices {
            devs: self.rig_devices.iter_mut().collect(),
            fabric: &mut self.fabric,
        };
        self.comm.allreduce(&mut devs, Self::SIZE);
        self.comm.max_clock()
    }

    /// Messages the fabric dropped across all steps so far (must stay
    /// zero on the uncontended benchmark rig).
    pub fn lost(&self) -> u64 {
        self.comm.lost()
    }
}

impl Default for OsuAllreduceWorkload {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shs_des::SimDur;
    use shs_fabric::NicAddr;
    use shs_mpi::{osu_allreduce_once, osu_allreduce_sweep, osu_alltoall_once, osu_bcast_once, OsuParams};
    use shs_k8s::kinds;
    use slingshot_k8s::{osu_image, Cluster, ClusterConfig, VniCrdSpec};

    fn two_group() -> TopologySpec {
        TopologySpec { groups: 2, switches_per_group: 1, edge_ports: 8 }
    }

    /// The scenario engine's `TrafficPattern::Allreduce` cannot share
    /// code with `shs_mpi::Communicator::allreduce` (core sits below
    /// mpi in the layering), so it mirrors the schedule — this test is
    /// the pin that keeps the two byte-for-byte identical.
    #[test]
    fn scenario_engine_allreduce_schedule_matches_the_communicator() {
        for n in 2usize..=16 {
            for size in [0u64, 1, 7, 1000, 4096, 65_535, 1 << 20] {
                assert_eq!(
                    shs_mpi::ring_allreduce_schedule(n, size),
                    slingshot_k8s::ring_allreduce_schedule(n, size),
                    "schedules diverged at n={n} size={size}"
                );
            }
        }
    }

    #[test]
    fn collective_sweeps_run_on_the_standalone_rig() {
        let mut rig = CollectiveRig::new(8, two_group(), 7);
        let (mut comm, mut devs) = rig.open(TrafficClass::Dedicated, SimTime::ZERO);
        let params = OsuParams { sizes: vec![64, 4096, 1 << 18], iterations: 5, warmup: 1, window: 1 };
        let points = osu_allreduce_sweep(&mut comm, &mut devs, &params);
        assert_eq!(points.len(), 3);
        assert!(points.windows(2).all(|w| w[1].value > w[0].value), "latency grows with size: {points:?}");
        let bcast = osu_bcast_once(&mut comm, &mut devs, 4096, 5, 1);
        let a2a = osu_alltoall_once(&mut comm, &mut devs, 4096, 5, 1);
        assert!(bcast > 0.0 && a2a > bcast, "alltoall moves more bytes than bcast");
        assert_eq!(comm.lost(), 0);
        comm.close(&mut devs);
    }

    #[test]
    fn workload_steps_are_deterministic_and_lossless() {
        let run = || {
            let mut w = OsuAllreduceWorkload::new();
            let mut last = SimTime::ZERO;
            for _ in 0..5 {
                last = w.step();
            }
            assert_eq!(w.lost(), 0);
            last
        };
        assert_eq!(run(), run());
    }

    /// The acceptance path: an 8-rank job admitted through the full
    /// cluster (scheduler → kubelet → CNI chain → VNI Service), then an
    /// allreduce opened over its pods — authenticated per rank against
    /// the job's dedicated VNI — routed across the 2-group dragonfly
    /// with per-tenant VNI traffic accounting.
    #[test]
    fn eight_rank_cluster_allreduce_crosses_groups_with_vni_accounting() {
        let mut cluster = Cluster::new(ClusterConfig {
            nodes: 8,
            topology: Some(two_group()),
            ..Default::default()
        });
        cluster.submit_job(SimTime::ZERO, "hpc", "cg", &[("vni", "true")], 8, &osu_image(), None);
        let admitted = cluster.run_until(
            SimTime::ZERO,
            SimTime::from_nanos(10_000_000_000),
            SimDur::from_millis(20),
        );
        let handles: Vec<_> = (0..8)
            .map(|r| cluster.pod_handle("hpc", &format!("cg-{r}")).expect("rank running"))
            .collect();
        let crd = cluster.api.get(kinds::VNI, "hpc", "vni-cg").expect("VNI CRD");
        let spec: VniCrdSpec = serde_json::from_value(crd.spec.clone()).expect("spec");
        let vni = Vni(spec.vni);
        let (fabric, nodes) = cluster.fabric_and_nodes();
        let (mut comm, mut devs) = job_communicator(
            nodes, fabric, &handles, vni, TrafficClass::Dedicated, admitted,
        )
        .expect("pod processes authenticate against their own VNI");
        let lat = osu_allreduce_once(&mut comm, &mut devs, 1 << 16, 5, 1);
        assert!(lat > 0.0);
        assert_eq!(comm.lost(), 0);
        comm.close(&mut devs);
        // Per-tenant accounting on the job's VNI: the ring alternated
        // groups (round-robin placement), so every delivered message
        // crossed the trunk — 2 switch hops each.
        let t = cluster.fabric.traffic(vni);
        assert!(t.messages > 0);
        assert_eq!(t.switch_hops, 2 * t.messages, "every hop crossed the group link");
        // An intra-group pair is strictly faster than the cross-group
        // ring for the same payload (the placement signal).
        assert!(
            cluster.fabric.unloaded_route_ns(NicAddr(1), NicAddr(3), 1 << 13).unwrap()
                < cluster.fabric.unloaded_route_ns(NicAddr(1), NicAddr(2), 1 << 13).unwrap(),
            "same-group route must undercut the cross-group route"
        );
    }

    #[test]
    fn pods_that_fail_auth_cannot_open_a_communicator() {
        let mut cluster = Cluster::new(ClusterConfig {
            nodes: 4,
            topology: Some(two_group()),
            ..Default::default()
        });
        cluster.submit_job(SimTime::ZERO, "t", "j", &[("vni", "true")], 4, &osu_image(), None);
        cluster.run_until(
            SimTime::ZERO,
            SimTime::from_nanos(10_000_000_000),
            SimDur::from_millis(20),
        );
        let handles: Vec<_> = (0..4)
            .map(|r| cluster.pod_handle("t", &format!("j-{r}")).expect("rank running"))
            .collect();
        let (fabric, nodes) = cluster.fabric_and_nodes();
        // A foreign VNI no service carries: the driver refuses rank 0
        // and no endpoint survives on any node.
        let err = job_communicator(
            nodes, fabric, &handles, Vni(4000), TrafficClass::Dedicated, SimTime::ZERO,
        );
        assert!(err.is_err(), "foreign VNI must fail the member check");
    }
}
