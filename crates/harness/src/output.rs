//! Output helpers: CSV writing and ASCII rendering of series and
//! boxplots (what the paper plots with matplotlib, we render for the
//! terminal; the CSVs are drop-in replacements for the paper's data
//! files).

use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

/// Where experiment artifacts land.
#[derive(Debug, Clone)]
pub struct OutputSink {
    dir: Option<PathBuf>,
}

impl OutputSink {
    /// Write CSVs under `dir` (created if missing); `None` disables.
    pub fn new(dir: Option<&Path>) -> OutputSink {
        if let Some(d) = dir {
            let _ = fs::create_dir_all(d);
        }
        OutputSink { dir: dir.map(|d| d.to_path_buf()) }
    }

    /// Write one CSV file (header + rows).
    pub fn csv(&self, name: &str, header: &str, rows: &[String]) {
        let Some(dir) = &self.dir else { return };
        let mut body = String::with_capacity(rows.len() * 32 + header.len() + 1);
        body.push_str(header);
        body.push('\n');
        for r in rows {
            body.push_str(r);
            body.push('\n');
        }
        let path = dir.join(name);
        if let Err(e) = fs::write(&path, body) {
            eprintln!("warning: could not write {}: {e}", path.display());
        }
    }
}

/// Human-readable byte size (matches OSU's x-axis labels).
pub fn fmt_size(bytes: u64) -> String {
    if bytes >= 1 << 20 {
        format!("{} MB", bytes >> 20)
    } else if bytes >= 1 << 10 {
        format!("{} kB", bytes >> 10)
    } else {
        format!("{bytes} B")
    }
}

/// A named series for ASCII plotting.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend name.
    pub name: String,
    /// (x, y) points.
    pub points: Vec<(f64, f64)>,
}

/// Render series as an ASCII scatter/line chart. `log_x`/`log_y` apply
/// log10 scaling (sizes and throughputs span decades, as in Figs. 5/7).
pub fn ascii_plot(
    title: &str,
    series: &[Series],
    log_x: bool,
    log_y: bool,
    width: usize,
    height: usize,
) -> String {
    let marks = ['*', 'o', '+', 'x', '#', '@'];
    let tx = |x: f64| if log_x { x.max(1e-12).log10() } else { x };
    let ty = |y: f64| if log_y { y.max(1e-12).log10() } else { y };
    let all: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|s| s.points.iter().map(|&(x, y)| (tx(x), ty(y))))
        .filter(|(x, y)| x.is_finite() && y.is_finite())
        .collect();
    let mut out = String::new();
    let _ = writeln!(out, "== {title} ==");
    if all.is_empty() {
        let _ = writeln!(out, "(no data)");
        return out;
    }
    let (mut x0, mut x1) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y0, mut y1) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in &all {
        x0 = x0.min(x);
        x1 = x1.max(x);
        y0 = y0.min(y);
        y1 = y1.max(y);
    }
    if (x1 - x0).abs() < 1e-12 {
        x1 = x0 + 1.0;
    }
    if (y1 - y0).abs() < 1e-12 {
        y1 = y0 + 1.0;
    }
    let mut grid = vec![vec![' '; width]; height];
    for (si, s) in series.iter().enumerate() {
        let mark = marks[si % marks.len()];
        for &(x, y) in &s.points {
            let (x, y) = (tx(x), ty(y));
            if !x.is_finite() || !y.is_finite() {
                continue;
            }
            let cx = ((x - x0) / (x1 - x0) * (width - 1) as f64).round() as usize;
            let cy = ((y - y0) / (y1 - y0) * (height - 1) as f64).round() as usize;
            let row = height - 1 - cy.min(height - 1);
            grid[row][cx.min(width - 1)] = mark;
        }
    }
    let y_hi = if log_y { format!("1e{y1:.1}") } else { format!("{y1:.3}") };
    let y_lo = if log_y { format!("1e{y0:.1}") } else { format!("{y0:.3}") };
    let _ = writeln!(out, "{y_hi:>10} +{}", "-".repeat(width));
    for row in grid {
        let line: String = row.into_iter().collect();
        let _ = writeln!(out, "{:>10} |{line}", "");
    }
    let x_hi = if log_x { format!("1e{x1:.1}") } else { format!("{x1:.2}") };
    let x_lo = if log_x { format!("1e{x0:.1}") } else { format!("{x0:.2}") };
    let _ = writeln!(out, "{y_lo:>10} +{}", "-".repeat(width));
    let _ = writeln!(out, "{:>12}{x_lo}  ..  {x_hi}", "");
    for (si, s) in series.iter().enumerate() {
        let _ = writeln!(out, "{:>12}{} = {}", "", marks[si % marks.len()], s.name);
    }
    out
}

/// Render a horizontal ASCII boxplot row (as in Fig. 12).
pub fn ascii_boxplot(label: &str, b: &shs_des::stats::Boxplot, scale_max: f64, width: usize) -> String {
    let pos = |v: f64| ((v / scale_max).clamp(0.0, 1.0) * (width - 1) as f64).round() as usize;
    let mut row = vec![' '; width];
    let (wl, q1, md, q3, wh) =
        (pos(b.whisker_lo), pos(b.q1), pos(b.median), pos(b.q3), pos(b.whisker_hi));
    for cell in row.iter_mut().take(wh.max(wl) + 1).skip(wl) {
        *cell = '-';
    }
    for cell in row.iter_mut().take(q3 + 1).skip(q1.min(q3)) {
        *cell = '=';
    }
    row[wl] = '|';
    row[wh.min(width - 1)] = '|';
    row[md.min(width - 1)] = 'M';
    format!(
        "{label:>10} [{}] med={:.2}s q1={:.2}s q3={:.2}s",
        row.into_iter().collect::<String>(),
        b.median,
        b.q1,
        b.q3
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use shs_des::stats::Boxplot;

    #[test]
    fn fmt_size_matches_osu_labels() {
        assert_eq!(fmt_size(1), "1 B");
        assert_eq!(fmt_size(512), "512 B");
        assert_eq!(fmt_size(1024), "1 kB");
        assert_eq!(fmt_size(1 << 20), "1 MB");
    }

    #[test]
    fn ascii_plot_renders_all_series() {
        let s = vec![
            Series { name: "up".into(), points: (1..10).map(|i| (i as f64, i as f64)).collect() },
            Series { name: "flat".into(), points: (1..10).map(|i| (i as f64, 5.0)).collect() },
        ];
        let art = ascii_plot("test", &s, false, false, 40, 10);
        assert!(art.contains("== test =="));
        assert!(art.contains("* = up"));
        assert!(art.contains("o = flat"));
        assert!(art.matches('*').count() >= 9);
    }

    #[test]
    fn ascii_plot_handles_empty() {
        assert!(ascii_plot("e", &[], true, true, 20, 5).contains("no data"));
    }

    #[test]
    fn boxplot_row_is_ordered() {
        let b = Boxplot::from(&[1.0, 2.0, 3.0, 4.0, 10.0]).unwrap();
        let row = ascii_boxplot("ramp", &b, 12.0, 40);
        assert!(row.contains("med=3.00s"));
        let bar_start = row.find('[').unwrap();
        let m = row.find('M').unwrap();
        assert!(m > bar_start);
    }

    #[test]
    fn sink_writes_csv() {
        let dir = std::env::temp_dir().join(format!("shs-harness-test-{}", std::process::id()));
        let sink = OutputSink::new(Some(&dir));
        sink.csv("t.csv", "a,b", &["1,2".into(), "3,4".into()]);
        let body = fs::read_to_string(dir.join("t.csv")).unwrap();
        assert_eq!(body, "a,b\n1,2\n3,4\n");
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn sink_none_is_noop() {
        let sink = OutputSink::new(None);
        sink.csv("t.csv", "a", &[]);
    }
}
