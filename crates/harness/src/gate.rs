//! The perf regression gate behind `bench-run --gate`.
//!
//! CI's bench-smoke job runs `bench-run --quick --gate --baseline
//! results/BENCH_pr<N>.json`: every measured median is compared to the
//! committed baseline and the run **fails** when any metric regresses
//! by more than [`MAX_REGRESSION_PCT`] percent. The gate is directional
//! — `ns/op` medians regress by going *up*, `events/sec` throughputs by
//! going *down* — and a metric the baseline file does not know about is
//! reported as informational, never failed: a freshly added benchmark
//! has no history to regress against (its `baseline_median_ns_per_op`
//! is emitted as an explicit `null` in the JSON).
//!
//! Thresholded gating (rather than "any slowdown fails") is deliberate:
//! the quick-sampled CI medians carry several percent of scheduler
//! noise, and PR 5's phantom 0.8×/0.9× readings were exactly that noise
//! amplified by lossy rounding. 20 % is far outside the noise band but
//! well inside the 1.5–10× regressions the gate exists to catch.

/// A metric regressing by more than this many percent fails the gate.
pub const MAX_REGRESSION_PCT: f64 = 20.0;

/// One metric to gate: the measured value, the baseline to hold it to
/// (`None` = new metric, informational), and which direction is better.
#[derive(Debug, Clone, PartialEq)]
pub struct GateCheck {
    /// Benchmark or scenario name, used verbatim in failure messages.
    pub name: String,
    /// This run's value (median ns/op, or events/sec).
    pub current: f64,
    /// The committed baseline value, if the baseline file has one.
    pub baseline: Option<f64>,
    /// `true` for throughputs (events/sec), `false` for latencies
    /// (ns/op). Decides which direction counts as a regression.
    pub higher_is_better: bool,
}

/// The gate's verdict over one run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GateReport {
    /// One human-readable line per failing metric, naming the metric
    /// and both values.
    pub failures: Vec<String>,
    /// Metrics with no baseline entry — reported, never failed.
    pub informational: Vec<String>,
}

impl GateReport {
    /// `true` when every gated metric is within the threshold.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Signed regression percentage: positive = worse than baseline,
/// negative = better, regardless of the metric's direction.
pub fn regression_pct(current: f64, baseline: f64, higher_is_better: bool) -> f64 {
    if baseline == 0.0 {
        return 0.0;
    }
    let delta = (current - baseline) / baseline * 100.0;
    if higher_is_better {
        -delta
    } else {
        delta
    }
}

/// Evaluate every check against `max_regression_pct`. Failure lines
/// name the offending metric and both values, e.g.
/// `fabric_transfer_hot: 90.1 ns/op vs baseline 66.4 ns/op (+35.7% regression, limit 20%)`.
pub fn evaluate(checks: &[GateCheck], max_regression_pct: f64) -> GateReport {
    let mut report = GateReport::default();
    for c in checks {
        let unit = if c.higher_is_better { "events/sec" } else { "ns/op" };
        let Some(base) = c.baseline else {
            report.informational.push(format!(
                "{}: {} {unit} (new metric, no baseline — informational)",
                c.name, c.current
            ));
            continue;
        };
        let reg = regression_pct(c.current, base, c.higher_is_better);
        if reg > max_regression_pct {
            report.failures.push(format!(
                "{}: {} {unit} vs baseline {} {unit} ({:+.1}% regression, limit {}%)",
                c.name, c.current, base, reg, max_regression_pct
            ));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(name: &str, current: f64, baseline: Option<f64>, higher_is_better: bool) -> GateCheck {
        GateCheck { name: name.into(), current, baseline, higher_is_better }
    }

    #[test]
    fn injected_regression_over_threshold_fails_and_names_both_medians() {
        // The acceptance probe: a >20% injected latency regression must
        // fail the gate, and the message must name the benchmark and
        // both medians.
        let report = evaluate(&[check("fabric_transfer_hot", 90.1, Some(66.4), false)], 20.0);
        assert!(!report.passed());
        assert_eq!(report.failures.len(), 1);
        let msg = &report.failures[0];
        assert!(msg.contains("fabric_transfer_hot"), "{msg}");
        assert!(msg.contains("90.1"), "current median: {msg}");
        assert!(msg.contains("66.4"), "baseline median: {msg}");
    }

    #[test]
    fn regressions_within_threshold_pass() {
        // +19% is noisy-but-tolerated; improvement is obviously fine.
        let report = evaluate(
            &[
                check("store_txn_commit", 119.0, Some(100.0), false),
                check("vni_db_churn_hot", 50.0, Some(100.0), false),
            ],
            20.0,
        );
        assert!(report.passed(), "{:?}", report.failures);
    }

    #[test]
    fn throughput_regressions_gate_in_the_opposite_direction() {
        // events/sec going DOWN is the regression...
        let down = evaluate(&[check("churn", 700.0, Some(1000.0), true)], 20.0);
        assert_eq!(down.failures.len(), 1, "{:?}", down.failures);
        assert!(down.failures[0].contains("+30.0%"), "{}", down.failures[0]);
        // ...and going up the same distance is an improvement.
        let up = evaluate(&[check("churn", 1300.0, Some(1000.0), true)], 20.0);
        assert!(up.passed());
    }

    #[test]
    fn new_metric_without_baseline_is_informational_not_failing() {
        // A benchmark added in this PR has no committed history: the
        // gate reports it but cannot fail it (satellite f).
        let report = evaluate(&[check("brand_new_bench", 5000.0, None, false)], 20.0);
        assert!(report.passed());
        assert_eq!(report.informational.len(), 1);
        assert!(report.informational[0].contains("brand_new_bench"));
        assert!(report.informational[0].contains("informational"));
    }

    #[test]
    fn regression_pct_is_signed_and_direction_aware() {
        assert_eq!(regression_pct(120.0, 100.0, false), 20.0);
        assert_eq!(regression_pct(80.0, 100.0, false), -20.0);
        assert_eq!(regression_pct(80.0, 100.0, true), 20.0);
        assert_eq!(regression_pct(120.0, 100.0, true), -20.0);
        // A zero baseline cannot regress (avoids div-by-zero blowups).
        assert_eq!(regression_pct(5.0, 0.0, false), 0.0);
    }
}
