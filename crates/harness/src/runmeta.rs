//! Run-level metrics appended to `scenario-run` output.
//!
//! The scenario reports themselves are **byte-deterministic** for a
//! fixed seed; wall-clock throughput is not. This module keeps the two
//! apart: [`scenario_run_document`] emits one JSON object whose
//! `"parallel_reports"` and `"reports"` keys (the determinism-checked
//! sections) serialize first and whose `"run_metrics"` key — the only
//! place wall-clock time and events/sec appear — serializes after
//! them. Comparing two runs up to the `"run_metrics"` key is exactly
//! the old whole-output comparison.
//!
//! The `"parallel_reports"` section holds the cluster-scale fabric
//! sweeps ([`FabricSweepReport`]) run under the sharded engine; its
//! bytes are additionally identical across `--threads` values — the
//! thread count appears nowhere in it.

use serde::Serialize;
use serde_json::Value;
use slingshot_k8s::{FabricSweepReport, ScenarioReport};

/// Wall-clock metrics of one `scenario-run` invocation.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct RunMetrics {
    /// Total wall-clock across all scenarios, in milliseconds.
    /// **Non-deterministic** — lives outside the checked section.
    pub wall_clock_ms: f64,
    /// DES events executed across all scenarios — k8s and parallel
    /// fabric sweeps alike (deterministic).
    pub des_events_executed: u64,
    /// Events per wall-clock second (non-deterministic).
    pub events_per_sec: f64,
    /// ACID transactions the VNI databases committed (deterministic).
    pub vni_txns: u64,
}

impl RunMetrics {
    /// Fold per-scenario reports and a measured wall-clock into the
    /// run-level metrics block.
    pub fn from_reports(reports: &[ScenarioReport], wall_clock_secs: f64) -> Self {
        Self::from_run(reports, &[], wall_clock_secs)
    }

    /// [`RunMetrics::from_reports`], plus the parallel fabric sweeps:
    /// their shard events count toward the run's event total.
    pub fn from_run(
        reports: &[ScenarioReport],
        parallel: &[FabricSweepReport],
        wall_clock_secs: f64,
    ) -> Self {
        let des_events_executed = reports.iter().map(|r| r.events_executed).sum::<u64>()
            + parallel.iter().map(|r| r.events_executed).sum::<u64>();
        let vni_txns = reports.iter().map(|r| r.vni.txn_count).sum();
        let events_per_sec = if wall_clock_secs > 0.0 {
            (des_events_executed as f64 / wall_clock_secs * 10.0).round() / 10.0
        } else {
            0.0
        };
        RunMetrics {
            wall_clock_ms: (wall_clock_secs * 10_000.0).round() / 10.0,
            des_events_executed,
            events_per_sec,
            vni_txns,
        }
    }
}

/// The full `scenario-run` output document: the deterministic sections
/// first — `"parallel_reports"`, then `"reports"` — and `"run_metrics"`
/// after them (JSON object keys serialize in BTree order, and both
/// report keys sort before `"run_metrics"`).
pub fn scenario_run_document(
    reports: &[ScenarioReport],
    parallel: &[FabricSweepReport],
    metrics: &RunMetrics,
) -> Value {
    serde_json::json!({
        "parallel_reports": parallel,
        "reports": reports,
        "run_metrics": metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use shs_des::SimDur;
    use slingshot_k8s::{
        parallel_by_name, run_fabric_scenario, run_scenario, JobPlan, Scenario, VniMode,
    };

    fn tiny_report() -> ScenarioReport {
        let scenario = Scenario {
            name: "meta-tiny".into(),
            description: "one dedicated job".into(),
            config: slingshot_k8s::ClusterConfig { seed: 5, ..Default::default() },
            claims: vec![],
            jobs: vec![JobPlan {
                tenant: "t".into(),
                name: "j".into(),
                ranks: 1,
                arrival: shs_des::SimTime::from_nanos(100_000_000),
                run_ms: Some(200),
                vni: VniMode::Dedicated,
                delete_at: None,
                traffic: None,
                pin_nodes: None,
            }],
            faults: vec![],
            horizon: shs_des::SimTime::from_nanos(3_000_000_000),
            tick: SimDur::from_millis(20),
        };
        run_scenario(&scenario)
    }

    fn tiny_parallel_report() -> FabricSweepReport {
        let sc = parallel_by_name("trunk-contended-128", 5).expect("library sweep");
        run_fabric_scenario(&sc, 2)
    }

    #[test]
    fn metrics_fold_deterministic_fields_from_reports() {
        let r = tiny_report();
        let m = RunMetrics::from_reports(std::slice::from_ref(&r), 0.5);
        assert_eq!(m.des_events_executed, r.events_executed);
        assert_eq!(m.vni_txns, r.vni.txn_count);
        assert!(m.vni_txns > 0, "the job's acquire/release committed transactions");
        assert!((m.events_per_sec - r.events_executed as f64 / 0.5).abs() < 0.1);
    }

    #[test]
    fn metrics_count_parallel_sweep_events() {
        let r = tiny_report();
        let p = tiny_parallel_report();
        assert!(p.events_executed > 0);
        let m = RunMetrics::from_run(std::slice::from_ref(&r), std::slice::from_ref(&p), 0.5);
        assert_eq!(m.des_events_executed, r.events_executed + p.events_executed);
        assert_eq!(m.vni_txns, r.vni.txn_count, "sweeps run no VNI transactions");
    }

    #[test]
    fn report_sections_serialize_before_run_metrics() {
        let r = tiny_report();
        let p = tiny_parallel_report();
        let m = RunMetrics::from_run(std::slice::from_ref(&r), std::slice::from_ref(&p), 0.25);
        let doc = scenario_run_document(std::slice::from_ref(&r), std::slice::from_ref(&p), &m);
        let text = serde_json::to_string_pretty(&doc).unwrap();
        let parallel_at = text.find("\"parallel_reports\"").expect("parallel_reports key");
        let reports_at = text.find("\"reports\"").expect("reports key");
        let metrics_at = text.find("\"run_metrics\"").expect("run_metrics key");
        assert!(parallel_at < reports_at, "deterministic sections lead the document");
        assert!(reports_at < metrics_at, "determinism-checked sections must come first");
        assert!(
            text.find("\"wall_clock_ms\"").expect("wall clock") > metrics_at,
            "wall-clock lives only inside run_metrics"
        );
    }

    #[test]
    fn determinism_checked_section_ignores_wall_clock() {
        let r1 = tiny_report();
        let r2 = tiny_report();
        let p1 = tiny_parallel_report();
        let p2 = tiny_parallel_report();
        // Two runs with very different wall-clocks...
        let d1 = scenario_run_document(
            std::slice::from_ref(&r1),
            std::slice::from_ref(&p1),
            &RunMetrics::from_run(std::slice::from_ref(&r1), std::slice::from_ref(&p1), 0.1),
        );
        let d2 = scenario_run_document(
            std::slice::from_ref(&r2),
            std::slice::from_ref(&p2),
            &RunMetrics::from_run(std::slice::from_ref(&r2), std::slice::from_ref(&p2), 9.9),
        );
        // ...agree byte-for-byte on the deterministic sections.
        assert_eq!(
            serde_json::to_string_pretty(&d1["reports"]).unwrap(),
            serde_json::to_string_pretty(&d2["reports"]).unwrap()
        );
        assert_eq!(
            serde_json::to_string_pretty(&d1["parallel_reports"]).unwrap(),
            serde_json::to_string_pretty(&d2["parallel_reports"]).unwrap()
        );
        assert_ne!(d1["run_metrics"], d2["run_metrics"]);
    }
}
