//! Run-level metrics appended to `scenario-run` output.
//!
//! The scenario reports themselves are **byte-deterministic** for a
//! fixed seed; wall-clock throughput is not. This module keeps the two
//! apart: [`scenario_run_document`] emits one JSON object whose
//! `"parallel_reports"` and `"reports"` keys (the determinism-checked
//! sections) serialize first and whose `"run_metrics"` key — the only
//! place wall-clock time and events/sec appear — serializes after
//! them. Comparing two runs up to the `"run_metrics"` key is exactly
//! the old whole-output comparison.
//!
//! The `"parallel_reports"` section holds the cluster-scale fabric
//! sweeps ([`FabricSweepReport`]) run under the sharded engine; its
//! bytes are additionally identical across `--threads` values — the
//! thread count appears nowhere in it.

use serde::Serialize;
use serde_json::Value;
use slingshot_k8s::{FabricSweepReport, ScenarioReport, VniStressReport};

/// Fingerprint of the machine a measurement ran on. Performance numbers
/// in `results/BENCH_pr<N>.json` are only comparable like-for-like;
/// recording the host makes cross-host comparisons visibly suspect
/// instead of silently wrong. Host-dependent, so it lives with the
/// wall-clock metrics, outside the determinism-checked sections.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct HostInfo {
    /// Logical cores visible to the process.
    pub cores: usize,
    /// Operating system (`std::env::consts::OS`).
    pub os: &'static str,
    /// CPU architecture (`std::env::consts::ARCH`).
    pub arch: &'static str,
    /// CPU model string from `/proc/cpuinfo`, when readable.
    pub cpu_model: Option<String>,
}

impl HostInfo {
    /// Probe the current host.
    pub fn detect() -> Self {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        let cpu_model = std::fs::read_to_string("/proc/cpuinfo").ok().and_then(|text| {
            text.lines()
                .find(|l| l.starts_with("model name"))
                .and_then(|l| l.split(':').nth(1))
                .map(|v| v.trim().to_string())
        });
        HostInfo { cores, os: std::env::consts::OS, arch: std::env::consts::ARCH, cpu_model }
    }
}

/// Wall-clock metrics of one `scenario-run` invocation.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct RunMetrics {
    /// Total wall-clock across all scenarios, in milliseconds.
    /// **Non-deterministic** — lives outside the checked section.
    pub wall_clock_ms: f64,
    /// DES events executed across all scenarios — k8s and parallel
    /// fabric sweeps alike (deterministic).
    pub des_events_executed: u64,
    /// Events per wall-clock second (non-deterministic).
    pub events_per_sec: f64,
    /// ACID transactions the VNI databases committed (deterministic):
    /// k8s scenarios plus control-plane stress runs.
    pub vni_txns: u64,
    /// The machine this run executed on (host-dependent).
    pub host: HostInfo,
}

impl RunMetrics {
    /// Fold per-scenario reports and a measured wall-clock into the
    /// run-level metrics block.
    pub fn from_reports(reports: &[ScenarioReport], wall_clock_secs: f64) -> Self {
        Self::from_run(reports, &[], &[], wall_clock_secs)
    }

    /// [`RunMetrics::from_reports`], plus the parallel fabric sweeps
    /// (their shard events count toward the run's event total) and the
    /// control-plane stress runs (their transactions count toward
    /// `vni_txns`).
    pub fn from_run(
        reports: &[ScenarioReport],
        parallel: &[FabricSweepReport],
        control: &[VniStressReport],
        wall_clock_secs: f64,
    ) -> Self {
        let des_events_executed = reports.iter().map(|r| r.events_executed).sum::<u64>()
            + parallel.iter().map(|r| r.events_executed).sum::<u64>();
        let vni_txns = reports.iter().map(|r| r.vni.txn_count).sum::<u64>()
            + control.iter().map(|r| r.txns).sum::<u64>();
        let events_per_sec = if wall_clock_secs > 0.0 {
            (des_events_executed as f64 / wall_clock_secs * 10.0).round() / 10.0
        } else {
            0.0
        };
        RunMetrics {
            wall_clock_ms: (wall_clock_secs * 10_000.0).round() / 10.0,
            des_events_executed,
            events_per_sec,
            vni_txns,
            host: HostInfo::detect(),
        }
    }
}

/// The full `scenario-run` output document: the deterministic sections
/// first — `"control_reports"`, `"parallel_reports"`, then `"reports"`
/// — and `"run_metrics"` after them (JSON object keys serialize in
/// BTree order, and every report key sorts before `"run_metrics"`).
pub fn scenario_run_document(
    reports: &[ScenarioReport],
    parallel: &[FabricSweepReport],
    control: &[VniStressReport],
    metrics: &RunMetrics,
) -> Value {
    serde_json::json!({
        "control_reports": control,
        "parallel_reports": parallel,
        "reports": reports,
        "run_metrics": metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use shs_des::SimDur;
    use slingshot_k8s::{
        parallel_by_name, run_fabric_scenario, run_scenario, run_vni_stress, JobPlan, Scenario,
        VniMode, VniStressScenario,
    };

    fn tiny_report() -> ScenarioReport {
        let scenario = Scenario {
            name: "meta-tiny".into(),
            description: "one dedicated job".into(),
            config: slingshot_k8s::ClusterConfig { seed: 5, ..Default::default() },
            claims: vec![],
            jobs: vec![JobPlan {
                tenant: "t".into(),
                name: "j".into(),
                ranks: 1,
                arrival: shs_des::SimTime::from_nanos(100_000_000),
                run_ms: Some(200),
                vni: VniMode::Dedicated,
                delete_at: None,
                traffic: None,
                pin_nodes: None,
            }],
            services: vec![],
            faults: vec![],
            horizon: shs_des::SimTime::from_nanos(3_000_000_000),
            tick: SimDur::from_millis(20),
        };
        run_scenario(&scenario)
    }

    fn tiny_parallel_report() -> FabricSweepReport {
        let sc = parallel_by_name("trunk-contended-128", 5).expect("library sweep");
        run_fabric_scenario(&sc, 2)
    }

    fn tiny_stress_report() -> VniStressReport {
        run_vni_stress(&VniStressScenario {
            name: "meta-stress-tiny".into(),
            description: "a few hundred control-plane transactions".into(),
            seed: 5,
            tenants: 100,
            ops: 400,
            shards: 2,
        })
    }

    #[test]
    fn metrics_fold_deterministic_fields_from_reports() {
        let r = tiny_report();
        let m = RunMetrics::from_reports(std::slice::from_ref(&r), 0.5);
        assert_eq!(m.des_events_executed, r.events_executed);
        assert_eq!(m.vni_txns, r.vni.txn_count);
        assert!(m.vni_txns > 0, "the job's acquire/release committed transactions");
        assert!((m.events_per_sec - r.events_executed as f64 / 0.5).abs() < 0.1);
    }

    #[test]
    fn metrics_count_parallel_sweep_events_and_stress_txns() {
        let r = tiny_report();
        let p = tiny_parallel_report();
        let c = tiny_stress_report();
        assert!(p.events_executed > 0);
        assert!(c.passed && c.txns > 0, "stress run committed transactions");
        let m = RunMetrics::from_run(
            std::slice::from_ref(&r),
            std::slice::from_ref(&p),
            std::slice::from_ref(&c),
            0.5,
        );
        assert_eq!(m.des_events_executed, r.events_executed + p.events_executed);
        assert_eq!(
            m.vni_txns,
            r.vni.txn_count + c.txns,
            "sweeps run no VNI transactions; stress runs add theirs"
        );
        assert!(m.host.cores >= 1, "host fingerprint is probed");
    }

    #[test]
    fn report_sections_serialize_before_run_metrics() {
        let r = tiny_report();
        let p = tiny_parallel_report();
        let c = tiny_stress_report();
        let m = RunMetrics::from_run(
            std::slice::from_ref(&r),
            std::slice::from_ref(&p),
            std::slice::from_ref(&c),
            0.25,
        );
        let doc = scenario_run_document(
            std::slice::from_ref(&r),
            std::slice::from_ref(&p),
            std::slice::from_ref(&c),
            &m,
        );
        let text = serde_json::to_string_pretty(&doc).unwrap();
        let control_at = text.find("\"control_reports\"").expect("control_reports key");
        let parallel_at = text.find("\"parallel_reports\"").expect("parallel_reports key");
        let reports_at = text.find("\"reports\"").expect("reports key");
        let metrics_at = text.find("\"run_metrics\"").expect("run_metrics key");
        assert!(control_at < parallel_at, "deterministic sections lead the document");
        assert!(parallel_at < reports_at, "deterministic sections lead the document");
        assert!(reports_at < metrics_at, "determinism-checked sections must come first");
        assert!(
            text.find("\"wall_clock_ms\"").expect("wall clock") > metrics_at,
            "wall-clock lives only inside run_metrics"
        );
        assert!(
            text.find("\"cpu_model\"").expect("host fingerprint") > metrics_at,
            "the host fingerprint is host-dependent, so it lives inside run_metrics"
        );
    }

    #[test]
    fn determinism_checked_section_ignores_wall_clock() {
        let r1 = tiny_report();
        let r2 = tiny_report();
        let p1 = tiny_parallel_report();
        let p2 = tiny_parallel_report();
        let c1 = tiny_stress_report();
        let c2 = tiny_stress_report();
        // Two runs with very different wall-clocks...
        let d1 = scenario_run_document(
            std::slice::from_ref(&r1),
            std::slice::from_ref(&p1),
            std::slice::from_ref(&c1),
            &RunMetrics::from_run(
                std::slice::from_ref(&r1),
                std::slice::from_ref(&p1),
                std::slice::from_ref(&c1),
                0.1,
            ),
        );
        let d2 = scenario_run_document(
            std::slice::from_ref(&r2),
            std::slice::from_ref(&p2),
            std::slice::from_ref(&c2),
            &RunMetrics::from_run(
                std::slice::from_ref(&r2),
                std::slice::from_ref(&p2),
                std::slice::from_ref(&c2),
                9.9,
            ),
        );
        // ...agree byte-for-byte on the deterministic sections.
        assert_eq!(
            serde_json::to_string_pretty(&d1["reports"]).unwrap(),
            serde_json::to_string_pretty(&d2["reports"]).unwrap()
        );
        assert_eq!(
            serde_json::to_string_pretty(&d1["parallel_reports"]).unwrap(),
            serde_json::to_string_pretty(&d2["parallel_reports"]).unwrap()
        );
        assert_eq!(
            serde_json::to_string_pretty(&d1["control_reports"]).unwrap(),
            serde_json::to_string_pretty(&d2["control_reports"]).unwrap()
        );
        assert_ne!(d1["run_metrics"], d2["run_metrics"]);
    }
}
