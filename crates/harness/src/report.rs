//! Experiment reports: turn raw results into the console tables, ASCII
//! plots, and CSV files that mirror the paper's figures.

use shs_des::stats::Boxplot;

use crate::admission::{median_overhead_pct, AdmissionSeries};
use crate::comm::{CommResult, Metric};
use crate::output::{ascii_boxplot, ascii_plot, fmt_size, OutputSink, Series};

/// Figs. 5/7: absolute metric, three configurations.
pub fn report_comm_absolute(fig: &str, res: &CommResult, sink: &OutputSink) -> String {
    let unit = match res.metric {
        Metric::Bandwidth => "MB/s",
        Metric::Latency => "us",
    };
    let mut out = String::new();
    out.push_str(&format!(
        "{fig}: average {} via {} — sizes 1B..1MB\n",
        match res.metric {
            Metric::Bandwidth => "throughput",
            Metric::Latency => "latency",
        },
        match res.metric {
            Metric::Bandwidth => "osu_bw",
            Metric::Latency => "osu_latency",
        },
    ));
    out.push_str(&format!("{:>10} {:>14} {:>14} {:>14}\n", "size", "vni:true", "vni:false", "host"));
    let t = res.mean_of("vni:true");
    let f = res.mean_of("vni:false");
    let h = res.mean_of("host");
    let mut rows = Vec::new();
    for (i, &size) in res.sizes.iter().enumerate() {
        out.push_str(&format!(
            "{:>10} {:>14.3} {:>14.3} {:>14.3}\n",
            fmt_size(size),
            t[i],
            f[i],
            h[i]
        ));
        rows.push(format!("{size},{:.6},{:.6},{:.6}", t[i], f[i], h[i]));
    }
    sink.csv(
        &format!("{}.csv", fig.to_lowercase().replace(' ', "_")),
        &format!("size_bytes,vni_true_{unit},vni_false_{unit},host_{unit}"),
        &rows,
    );
    let series = vec![
        Series { name: "vni:true".into(), points: res.sizes.iter().zip(&t).map(|(&s, &v)| (s as f64, v)).collect() },
        Series { name: "vni:false".into(), points: res.sizes.iter().zip(&f).map(|(&s, &v)| (s as f64, v)).collect() },
        Series { name: "host".into(), points: res.sizes.iter().zip(&h).map(|(&s, &v)| (s as f64, v)).collect() },
    ];
    out.push_str(&ascii_plot(&format!("{fig} ({unit})"), &series, true, true, 64, 16));
    out
}

/// Figs. 6/8: overhead (%) vs host baseline with p10/p90 bands.
pub fn report_comm_overhead(fig: &str, res: &CommResult, sink: &OutputSink) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{fig}: average {} overhead vs host baseline (%, p10..p90)\n",
        match res.metric {
            Metric::Bandwidth => "throughput",
            Metric::Latency => "latency",
        }
    ));
    out.push_str(&format!(
        "{:>10} {:>24} {:>24} {:>24}\n",
        "size", "vni:true", "vni:false", "host(jitter)"
    ));
    let t = res.overhead_of("vni:true");
    let f = res.overhead_of("vni:false");
    let h = res.overhead_of("host");
    let mut rows = Vec::new();
    let mut max_abs: f64 = 0.0;
    for (i, &size) in res.sizes.iter().enumerate() {
        out.push_str(&format!(
            "{:>10} {:>7.3}% [{:>6.3},{:>6.3}] {:>7.3}% [{:>6.3},{:>6.3}] {:>7.3}% [{:>6.3},{:>6.3}]\n",
            fmt_size(size),
            t[i].0, t[i].1, t[i].2,
            f[i].0, f[i].1, f[i].2,
            h[i].0, h[i].1, h[i].2,
        ));
        rows.push(format!(
            "{size},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4}",
            t[i].0, t[i].1, t[i].2, f[i].0, f[i].1, f[i].2, h[i].0, h[i].1, h[i].2
        ));
        for v in [t[i].0, f[i].0] {
            max_abs = max_abs.max(v.abs());
        }
    }
    sink.csv(
        &format!("{}.csv", fig.to_lowercase().replace(' ', "_")),
        "size_bytes,true_mean,true_p10,true_p90,false_mean,false_p10,false_p90,host_mean,host_p10,host_p90",
        &rows,
    );
    out.push_str(&format!(
        "--> max |mean overhead| across sizes: {max_abs:.3}% (paper: \"remains within 1%\")\n"
    ));
    out
}

/// Figs. 9/11: running jobs over time.
pub fn report_running(
    fig: &str,
    with: &AdmissionSeries,
    without: &AdmissionSeries,
    batches: Option<&[usize]>,
    sink: &OutputSink,
) -> String {
    let mut out = String::new();
    out.push_str(&format!("{fig}: actively running jobs over time (mean of runs)\n"));
    let wt = with.running_series();
    let wf = without.running_series();
    let mut rows = Vec::new();
    let n = wt.len().max(wf.len());
    for i in 0..n {
        let t = i as u64 + 1;
        let a = wt.get(i).map_or(0.0, |r| r.1);
        let b = wf.get(i).map_or(0.0, |r| r.1);
        let subm = batches.and_then(|bs| bs.get(i)).copied().unwrap_or(0);
        rows.push(format!("{t},{a:.2},{b:.2},{subm}"));
    }
    sink.csv(
        &format!("{}.csv", fig.to_lowercase().replace(' ', "_")),
        "second,vni_true_running,vni_false_running,submitted_per_batch",
        &rows,
    );
    let peak_t = wt.iter().map(|r| r.1).fold(0.0, f64::max);
    let peak_f = wf.iter().map(|r| r.1).fold(0.0, f64::max);
    out.push_str(&format!(
        "peak running: vni:true {peak_t:.0}, vni:false {peak_f:.0}; duration: {} s\n",
        n
    ));
    let series = vec![
        Series { name: "vni:true".into(), points: wt.iter().map(|r| (r.0 as f64, r.1)).collect() },
        Series { name: "vni:false".into(), points: wf.iter().map(|r| (r.0 as f64, r.1)).collect() },
    ];
    out.push_str(&ascii_plot(&format!("{fig} running jobs"), &series, false, false, 64, 14));
    out
}

/// Fig. 10: admission delay per batch.
pub fn report_delay_by_batch(
    fig: &str,
    with: &AdmissionSeries,
    without: &AdmissionSeries,
    sink: &OutputSink,
) -> String {
    let mut out = String::new();
    out.push_str(&format!("{fig}: job admission delay per batch (s, mean [p10,p90])\n"));
    out.push_str(&format!("{:>6} {:>24} {:>24}\n", "batch", "vni:true", "vni:false"));
    let t = with.delay_by_batch();
    let f = without.delay_by_batch();
    let mut rows = Vec::new();
    for i in 0..t.len().max(f.len()) {
        let (bt, mt, lt, ht) = t.get(i).copied().unwrap_or((i, f64::NAN, f64::NAN, f64::NAN));
        let (_, mf, lf, hf) = f.get(i).copied().unwrap_or((i, f64::NAN, f64::NAN, f64::NAN));
        out.push_str(&format!(
            "{bt:>6} {mt:>8.2} [{lt:>5.2},{ht:>5.2}] {mf:>8.2} [{lf:>5.2},{hf:>5.2}]\n"
        ));
        rows.push(format!("{bt},{mt:.4},{lt:.4},{ht:.4},{mf:.4},{lf:.4},{hf:.4}"));
    }
    sink.csv(
        &format!("{}.csv", fig.to_lowercase().replace(' ', "_")),
        "batch,true_mean,true_p10,true_p90,false_mean,false_p10,false_p90",
        &rows,
    );
    // The knee: find the first batch where mean delay exceeds 2x batch-0.
    if let (Some(first), true) = (f.first(), f.len() > 8) {
        let knee = f.iter().find(|r| r.1 > 2.0 * first.1.max(0.5)).map(|r| r.0);
        if let Some(k) = knee {
            out.push_str(&format!(
                "--> delay knee at batch {k} (paper: \"job startup delay starts around batch 7\")\n"
            ));
        }
    }
    out
}

/// Fig. 12: admission-delay boxplots + headline median overhead.
pub fn report_boxplots(
    ramp: (&AdmissionSeries, &AdmissionSeries),
    spike: (&AdmissionSeries, &AdmissionSeries),
    sink: &OutputSink,
) -> String {
    let mut out = String::new();
    out.push_str("Fig 12: admission delay distributions (boxplots)\n");
    let mut rows = Vec::new();
    for (test, (with, without)) in [("ramp", ramp), ("spike", spike)] {
        let scale = [with, without]
            .iter()
            .flat_map(|s| s.all_delays())
            .fold(0.0f64, f64::max)
            .max(1e-9);
        out.push_str(&format!("  ({test} test)\n"));
        for s in [with, without] {
            let delays = s.all_delays();
            if let Some(b) = Boxplot::from(&delays) {
                out.push_str(&format!("  {}\n", ascii_boxplot(s.name, &b, scale, 48)));
                rows.push(format!(
                    "{test},{},{:.4},{:.4},{:.4},{:.4},{:.4}",
                    s.name, b.whisker_lo, b.q1, b.median, b.q3, b.whisker_hi
                ));
            }
        }
        let oh = median_overhead_pct(with, without);
        out.push_str(&format!("  median admission overhead ({test}): {oh:.2}%\n"));
    }
    out.push_str("  (paper: 3.5% ramp, 1.6% spike — 'minimal overhead')\n");
    sink.csv(
        "fig12.csv",
        "test,config,whisker_lo,q1,median,q3,whisker_hi",
        &rows,
    );
    out
}

/// Small helper used by reports and tests: does a series stay within a
/// band around zero?
pub fn within_band(series: &[(f64, f64, f64)], band_pct: f64) -> bool {
    series.iter().all(|(m, _, _)| m.abs() <= band_pct)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn within_band_checks_means() {
        assert!(within_band(&[(0.3, -1.0, 1.0), (-0.8, -2.0, 0.1)], 1.0));
        assert!(!within_band(&[(1.5, 0.0, 2.0)], 1.0));
    }

    #[test]
    fn stats_reexports_work() {
        assert_eq!(shs_des::stats::median(&[1.0, 2.0, 3.0]), 2.0);
    }
}
