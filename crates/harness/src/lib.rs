//! # shs-harness — evaluation harness for the paper's tables and figures
//!
//! One module per experiment family:
//! * [`table1`] — the software inventory (Table I);
//! * [`comm`] — the communication-overhead experiments (Figs. 5-8):
//!   `osu_bw`/`osu_latency` on host vs `vni:false` vs `vni:true`;
//! * [`admission`] — the job-admission experiments (Figs. 9-12): ramp
//!   and spike tests with and without the integration;
//! * [`report`] — rendering into console tables, ASCII plots and CSVs;
//! * [`output`] — sinks and plotting primitives;
//! * [`runmeta`] — the run-level metrics block `scenario-run` appends
//!   after its byte-deterministic reports section;
//! * [`gate`] — the perf regression gate `bench-run --gate` applies
//!   against a committed baseline in CI's bench-smoke job.
//!
//! The `repro` binary exposes each figure as a subcommand; EXPERIMENTS.md
//! records paper-vs-measured for every one.

pub mod admission;
pub mod collective;
pub mod comm;
pub mod gate;
pub mod output;
pub mod report;
pub mod runmeta;
pub mod table1;

pub use admission::{
    median_overhead_pct, ramp_batches, run_admission, run_pattern, AdmissionRun,
    AdmissionSeries, JobRecord, JobTracker, Pattern,
};
pub use collective::{job_communicator, CollectiveRig, OsuAllreduceWorkload};
pub use gate::{evaluate as evaluate_gate, GateCheck, GateReport, MAX_REGRESSION_PCT};
pub use comm::{run_comm, CommConfig, CommResult, Metric, ModeSamples};
pub use output::{ascii_boxplot, ascii_plot, fmt_size, OutputSink, Series};
pub use runmeta::{scenario_run_document, HostInfo, RunMetrics};
