//! Table I: the software inventory of the (simulated) stack, with the
//! paper's † marker on components patched for the Slingshot-K8s
//! integration.

/// One inventory row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SoftwareRow {
    /// Component name.
    pub software: &'static str,
    /// Version (paper's Table I values; our crates model these).
    pub version: &'static str,
    /// Patched to support the Slingshot-K8s integration (†).
    pub patched: bool,
    /// Which crate of this repository models it.
    pub modelled_by: &'static str,
}

/// The stack inventory (paper Table I + the simulation substrate).
pub fn table1() -> Vec<SoftwareRow> {
    vec![
        SoftwareRow { software: "OpenSUSE", version: "15.5", patched: false, modelled_by: "shs-oslinux" },
        SoftwareRow { software: "k3s", version: "v1.29.5", patched: false, modelled_by: "shs-k8s" },
        SoftwareRow { software: "libfabric", version: "2.1.0", patched: true, modelled_by: "shs-ofi" },
        SoftwareRow { software: "Open MPI", version: "5.0.7", patched: false, modelled_by: "shs-mpi" },
        SoftwareRow { software: "OSU Micro-Benchmarks", version: "7.3", patched: false, modelled_by: "shs-mpi::osu" },
        SoftwareRow { software: "CXI driver", version: "extended (netns member)", patched: true, modelled_by: "shs-cxi" },
        SoftwareRow { software: "Slingshot fabric (Rosetta+Cassini)", version: "200 Gb/s model", patched: false, modelled_by: "shs-fabric + shs-cassini" },
        SoftwareRow { software: "SQLite (VNI database)", version: "ACID store", patched: false, modelled_by: "shs-vnistore" },
        SoftwareRow { software: "Metacontroller", version: "decorator model", patched: false, modelled_by: "shs-k8s::metacontroller" },
    ]
}

/// Render the table.
pub fn render() -> String {
    let mut out = String::from(
        "Table I: Software versions (simulated stack)\n\
         ---------------------------------------------------------------------\n",
    );
    out.push_str(&format!("{:<36} {:<26} {:<8} {}\n", "Software", "Version", "Patched", "Modelled by"));
    for row in table1() {
        out.push_str(&format!(
            "{:<36} {:<26} {:<8} {}\n",
            row.software,
            row.version,
            if row.patched { "†" } else { "" },
            row.modelled_by
        ));
    }
    out.push_str("† patched to support the Slingshot-K8s integration\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inventory_covers_paper_rows() {
        let rows = table1();
        for name in ["OpenSUSE", "k3s", "libfabric", "Open MPI", "OSU Micro-Benchmarks"] {
            assert!(rows.iter().any(|r| r.software == name), "missing {name}");
        }
    }

    #[test]
    fn libfabric_is_the_patched_component() {
        let rows = table1();
        let lf = rows.iter().find(|r| r.software == "libfabric").unwrap();
        assert!(lf.patched, "Table I marks libfabric with †");
        assert_eq!(lf.version, "2.1.0");
    }

    #[test]
    fn render_contains_dagger_legend() {
        let s = render();
        assert!(s.contains('†'));
        assert!(s.contains("k3s"));
    }
}
