//! User and network namespaces.
//!
//! User namespaces carry UID/GID maps translating namespace-local ids to
//! ids in the parent namespace (ultimately the host). Network namespaces
//! are opaque isolation domains identified by a kernel-assigned inode.

use crate::ids::{Gid, NetNsId, Uid, UserNsId};

/// One `uid_map`/`gid_map` line: `inside_start outside_start count`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IdMapEntry {
    /// First id inside the namespace.
    pub inside_start: u32,
    /// Corresponding first id in the parent namespace.
    pub outside_start: u32,
    /// Number of contiguous ids mapped.
    pub count: u32,
}

impl IdMapEntry {
    /// The identity mapping over the full id space (the initial namespace).
    pub const IDENTITY: IdMapEntry =
        IdMapEntry { inside_start: 0, outside_start: 0, count: u32::MAX };

    /// Map an inside id to the parent namespace, if covered.
    #[inline]
    pub fn map_up(&self, inside: u32) -> Option<u32> {
        let off = inside.wrapping_sub(self.inside_start);
        (inside >= self.inside_start && off < self.count)
            .then(|| self.outside_start.wrapping_add(off))
    }
}

/// Translate through a map table (first matching entry wins, as in Linux).
pub fn map_up(table: &[IdMapEntry], inside: u32) -> Option<u32> {
    table.iter().find_map(|e| e.map_up(inside))
}

/// A user namespace.
#[derive(Debug, Clone)]
pub struct UserNamespace {
    /// Kernel-assigned inode id.
    pub id: UserNsId,
    /// Parent namespace (`None` only for the initial namespace).
    pub parent: Option<UserNsId>,
    /// UID translation table towards the parent.
    pub uid_map: Vec<IdMapEntry>,
    /// GID translation table towards the parent.
    pub gid_map: Vec<IdMapEntry>,
}

impl UserNamespace {
    /// The initial (host) user namespace with identity maps.
    pub fn initial(id: UserNsId) -> Self {
        UserNamespace {
            id,
            parent: None,
            uid_map: vec![IdMapEntry::IDENTITY],
            gid_map: vec![IdMapEntry::IDENTITY],
        }
    }

    /// Translate a namespace-local uid one level up.
    pub fn uid_to_parent(&self, uid: Uid) -> Option<Uid> {
        map_up(&self.uid_map, uid.raw()).map(Uid)
    }

    /// Translate a namespace-local gid one level up.
    pub fn gid_to_parent(&self, gid: Gid) -> Option<Gid> {
        map_up(&self.gid_map, gid.raw()).map(Gid)
    }
}

/// A network namespace. Deliberately tiny: for the Slingshot access model
/// the only load-bearing attribute is its unforgeable inode identity; the
/// veth/bridge plumbing lives in `shs-cni`.
#[derive(Debug, Clone)]
pub struct NetNamespace {
    /// Kernel-assigned inode id (what `/proc/<pid>/ns/net` reports).
    pub id: NetNsId,
    /// Whether this is the host (initial) network namespace.
    pub is_host: bool,
    /// Names of network interfaces attached to this namespace.
    pub interfaces: Vec<String>,
}

impl NetNamespace {
    /// Attach an interface name (no-op if already present).
    pub fn attach_interface(&mut self, name: &str) {
        if !self.interfaces.iter().any(|i| i == name) {
            self.interfaces.push(name.to_string());
        }
    }

    /// Detach an interface name; returns whether it was present.
    pub fn detach_interface(&mut self, name: &str) -> bool {
        let before = self.interfaces.len();
        self.interfaces.retain(|i| i != name);
        self.interfaces.len() != before
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_entry_maps_everything() {
        let e = IdMapEntry::IDENTITY;
        assert_eq!(e.map_up(0), Some(0));
        assert_eq!(e.map_up(123_456), Some(123_456));
    }

    #[test]
    fn range_entry_maps_only_its_window() {
        // Typical rootless-container map: inside 0..65536 -> host 100000..
        let e = IdMapEntry { inside_start: 0, outside_start: 100_000, count: 65_536 };
        assert_eq!(e.map_up(0), Some(100_000));
        assert_eq!(e.map_up(1000), Some(101_000));
        assert_eq!(e.map_up(65_535), Some(165_535));
        assert_eq!(e.map_up(65_536), None);
    }

    #[test]
    fn first_matching_entry_wins() {
        let table = vec![
            IdMapEntry { inside_start: 0, outside_start: 1000, count: 1 },
            IdMapEntry { inside_start: 0, outside_start: 2000, count: 10 },
        ];
        assert_eq!(map_up(&table, 0), Some(1000));
        assert_eq!(map_up(&table, 5), Some(2005));
        assert_eq!(map_up(&table, 10), None);
    }

    #[test]
    fn userns_translation() {
        let mut ns = UserNamespace::initial(UserNsId(1));
        ns.uid_map = vec![IdMapEntry { inside_start: 0, outside_start: 100_000, count: 10 }];
        ns.gid_map = vec![IdMapEntry { inside_start: 0, outside_start: 200_000, count: 10 }];
        assert_eq!(ns.uid_to_parent(Uid(0)), Some(Uid(100_000)));
        assert_eq!(ns.gid_to_parent(Gid(3)), Some(Gid(200_003)));
        assert_eq!(ns.uid_to_parent(Uid(99)), None);
    }

    #[test]
    fn netns_interface_management() {
        let mut ns = NetNamespace { id: NetNsId(9), is_host: false, interfaces: vec![] };
        ns.attach_interface("eth0");
        ns.attach_interface("eth0");
        assert_eq!(ns.interfaces, vec!["eth0".to_string()]);
        assert!(ns.detach_interface("eth0"));
        assert!(!ns.detach_interface("eth0"));
        assert!(ns.interfaces.is_empty());
    }
}
