//! Newtype identifiers for the simulated kernel objects.

use core::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident($inner:ty)) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub $inner);

        impl $name {
            /// Raw numeric value.
            #[inline]
            pub const fn raw(self) -> $inner {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}({})", stringify!($name), self.0)
            }
        }
    };
}

id_type!(
    /// A user id. Whether it is namespace-local or host-global depends on
    /// context; see [`crate::host::Host::credentials`].
    Uid(u32)
);
id_type!(
    /// A group id (same namespace caveats as [`Uid`]).
    Gid(u32)
);
id_type!(
    /// A process id, unique per simulated host.
    Pid(u32)
);
id_type!(
    /// A network-namespace identifier. Like the real kernel, this is the
    /// inode number of the namespace file in `/proc/<pid>/ns/net`; it is
    /// assigned by the (simulated) kernel and cannot be chosen or altered
    /// by user code — the property the paper's netns authentication relies
    /// on (§III-A).
    NetNsId(u64)
);
id_type!(
    /// A user-namespace identifier (inode number, like [`NetNsId`]).
    UserNsId(u64)
);

impl Uid {
    /// The superuser.
    pub const ROOT: Uid = Uid(0);
    /// The kernel's overflow uid for unmapped identities ("nobody").
    pub const OVERFLOW: Uid = Uid(65_534);
}

impl Gid {
    /// The superuser group.
    pub const ROOT: Gid = Gid(0);
    /// Overflow gid for unmapped identities.
    pub const OVERFLOW: Gid = Gid(65_534);
}

/// First inode number handed out for namespaces. Mirrors the magic base
/// used by Linux (`PROC_DYNAMIC_FIRST`-adjacent values around 4026531840)
/// so traces look familiar.
pub const NS_INODE_BASE: u64 = 4_026_531_840;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_roundtrip() {
        assert_eq!(Uid(42).raw(), 42);
        assert_eq!(NetNsId(7).raw(), 7);
    }

    #[test]
    fn display_is_labelled() {
        assert_eq!(Uid(1000).to_string(), "Uid(1000)");
        assert_eq!(Pid(1).to_string(), "Pid(1)");
    }

    #[test]
    fn well_known_ids() {
        assert_eq!(Uid::ROOT.raw(), 0);
        assert_eq!(Uid::OVERFLOW.raw(), 65_534);
        assert_eq!(Gid::OVERFLOW.raw(), 65_534);
    }
}
