//! A simulated host kernel: process table, namespace registries, and the
//! syscall-like surface the container runtime and CXI driver consume.

use std::collections::HashMap;

use crate::ids::{Gid, NetNsId, Pid, Uid, UserNsId, NS_INODE_BASE};
use crate::ns::{IdMapEntry, NetNamespace, UserNamespace};

/// Subset of errno values the simulated syscalls can fail with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OsError {
    /// No such process.
    Srch,
    /// Operation not permitted.
    Perm,
    /// Invalid argument.
    Inval,
    /// Object already exists.
    Exist,
}

impl core::fmt::Display for OsError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            OsError::Srch => "ESRCH: no such process",
            OsError::Perm => "EPERM: operation not permitted",
            OsError::Inval => "EINVAL: invalid argument",
            OsError::Exist => "EEXIST: already exists",
        };
        f.write_str(s)
    }
}

impl std::error::Error for OsError {}

/// A simulated process.
#[derive(Debug, Clone)]
pub struct Process {
    /// Process id.
    pub pid: Pid,
    /// Human-readable command name (diagnostics only).
    pub comm: String,
    /// Namespace-local uid (what a non-userns-aware kernel component sees).
    pub uid: Uid,
    /// Namespace-local gid.
    pub gid: Gid,
    /// User namespace this process lives in.
    pub userns: UserNsId,
    /// Network namespace this process lives in.
    pub netns: NetNsId,
    /// Whether the process holds CAP_SETUID/CAP_SETGID *in its own user
    /// namespace*. Container "root" (inside-uid 0) holds it — the lever the
    /// paper's spoofing scenario pulls.
    pub cap_setid: bool,
    /// Whether the process is alive.
    pub alive: bool,
}

/// Credentials as observed by a kernel component on behalf of a calling
/// process — the exact inputs to the CXI service member check (§III-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Creds {
    /// The calling process.
    pub pid: Pid,
    /// Namespace-local uid (legacy driver reads this: spoofable in userns).
    pub uid: Uid,
    /// Namespace-local gid.
    pub gid: Gid,
    /// Uid resolved through the user-namespace chain to the host; the
    /// overflow uid if unmapped. (A userns-aware driver reads this.)
    pub host_uid: Uid,
    /// Gid resolved to the host.
    pub host_gid: Gid,
    /// Network-namespace inode, via procfs. Kernel-controlled, unforgeable.
    pub netns: NetNsId,
    /// User namespace of the process.
    pub userns: UserNsId,
}

/// One simulated host (node kernel).
#[derive(Debug)]
pub struct Host {
    /// Host name (diagnostics, fabric addressing).
    pub hostname: String,
    processes: HashMap<Pid, Process>,
    user_namespaces: HashMap<UserNsId, UserNamespace>,
    net_namespaces: HashMap<NetNsId, NetNamespace>,
    next_pid: u32,
    next_ns_inode: u64,
    init_userns: UserNsId,
    host_netns: NetNsId,
}

impl Host {
    /// Boot a host: initial user namespace, host network namespace, and
    /// `init` (pid 1, root). Namespace inode numbers are offset by a
    /// hostname-derived stride so that inodes from different hosts never
    /// alias (each real kernel has its own inode space; giving the
    /// simulated ones disjoint ranges surfaces any cross-node confusion
    /// as a hard failure instead of a silent collision).
    pub fn new(hostname: impl Into<String>) -> Self {
        let hostname = hostname.into();
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in hostname.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        let base = NS_INODE_BASE + (h % 1_000_000) * 100_000;
        let init_userns = UserNsId(base);
        let host_netns = NetNsId(base + 1);
        let mut user_namespaces = HashMap::new();
        user_namespaces.insert(init_userns, UserNamespace::initial(init_userns));
        let mut net_namespaces = HashMap::new();
        net_namespaces.insert(
            host_netns,
            NetNamespace { id: host_netns, is_host: true, interfaces: vec!["lo".into()] },
        );
        let mut host = Host {
            hostname,
            processes: HashMap::new(),
            user_namespaces,
            net_namespaces,
            next_pid: 1,
            next_ns_inode: base + 2,
            init_userns,
            host_netns,
        };
        host.spawn_detached("init", Uid::ROOT, Gid::ROOT);
        host
    }

    /// The initial user namespace id.
    pub fn init_userns(&self) -> UserNsId {
        self.init_userns
    }

    /// The host network namespace id.
    pub fn host_netns(&self) -> NetNsId {
        self.host_netns
    }

    /// Spawn a process directly in the initial namespaces (host daemon,
    /// benchmark on bare metal, ...).
    pub fn spawn_detached(&mut self, comm: &str, uid: Uid, gid: Gid) -> Pid {
        let pid = Pid(self.next_pid);
        self.next_pid += 1;
        self.processes.insert(
            pid,
            Process {
                pid,
                comm: comm.to_string(),
                uid,
                gid,
                userns: self.init_userns,
                netns: self.host_netns,
                cap_setid: uid == Uid::ROOT,
                alive: true,
            },
        );
        pid
    }

    /// Fork: child inherits credentials and namespaces of the parent.
    pub fn fork(&mut self, parent: Pid, comm: &str) -> Result<Pid, OsError> {
        let p = self.process(parent)?.clone();
        let pid = Pid(self.next_pid);
        self.next_pid += 1;
        self.processes.insert(
            pid,
            Process { pid, comm: comm.to_string(), alive: true, ..p },
        );
        Ok(pid)
    }

    /// Terminate a process.
    pub fn exit(&mut self, pid: Pid) -> Result<(), OsError> {
        let p = self.processes.get_mut(&pid).ok_or(OsError::Srch)?;
        if !p.alive {
            return Err(OsError::Srch);
        }
        p.alive = false;
        Ok(())
    }

    /// Look up a live process.
    pub fn process(&self, pid: Pid) -> Result<&Process, OsError> {
        self.processes.get(&pid).filter(|p| p.alive).ok_or(OsError::Srch)
    }

    fn process_mut(&mut self, pid: Pid) -> Result<&mut Process, OsError> {
        self.processes.get_mut(&pid).filter(|p| p.alive).ok_or(OsError::Srch)
    }

    /// Number of live processes.
    pub fn live_processes(&self) -> usize {
        self.processes.values().filter(|p| p.alive).count()
    }

    /// `unshare(CLONE_NEWUSER)` + map writes: move `pid` into a fresh user
    /// namespace with the given maps; the process becomes `inside_uid`
    /// (typically 0 — container root) and gains CAP_SETID inside.
    pub fn unshare_user_ns(
        &mut self,
        pid: Pid,
        uid_map: Vec<IdMapEntry>,
        gid_map: Vec<IdMapEntry>,
        inside_uid: Uid,
        inside_gid: Gid,
    ) -> Result<UserNsId, OsError> {
        if uid_map.is_empty() || gid_map.is_empty() {
            return Err(OsError::Inval);
        }
        let parent_ns = self.process(pid)?.userns;
        let id = UserNsId(self.next_ns_inode);
        self.next_ns_inode += 1;
        self.user_namespaces.insert(
            id,
            UserNamespace { id, parent: Some(parent_ns), uid_map, gid_map },
        );
        let p = self.process_mut(pid)?;
        p.userns = id;
        p.uid = inside_uid;
        p.gid = inside_gid;
        p.cap_setid = inside_uid == Uid::ROOT;
        Ok(id)
    }

    /// `unshare(CLONE_NEWNET)`: move `pid` into a fresh network namespace.
    pub fn unshare_net_ns(&mut self, pid: Pid) -> Result<NetNsId, OsError> {
        self.process(pid)?;
        let id = NetNsId(self.next_ns_inode);
        self.next_ns_inode += 1;
        self.net_namespaces
            .insert(id, NetNamespace { id, is_host: false, interfaces: vec!["lo".into()] });
        self.process_mut(pid)?.netns = id;
        Ok(id)
    }

    /// `setns`: join an existing network namespace.
    pub fn setns_net(&mut self, pid: Pid, ns: NetNsId) -> Result<(), OsError> {
        if !self.net_namespaces.contains_key(&ns) {
            return Err(OsError::Inval);
        }
        self.process_mut(pid)?.netns = ns;
        Ok(())
    }

    /// `setuid`: allowed with CAP_SETUID in the caller's user namespace,
    /// and only to uids that are mapped there (Linux semantics). Note that
    /// inside a wide-mapped container namespace this lets "container root"
    /// assume *any* victim uid — the hole described in §III.
    pub fn setuid(&mut self, pid: Pid, uid: Uid) -> Result<(), OsError> {
        let (userns, cap) = {
            let p = self.process(pid)?;
            (p.userns, p.cap_setid)
        };
        if !cap {
            return Err(OsError::Perm);
        }
        let ns = self.user_namespaces.get(&userns).ok_or(OsError::Inval)?;
        if ns.uid_to_parent(uid).is_none() {
            return Err(OsError::Inval);
        }
        self.process_mut(pid)?.uid = uid;
        Ok(())
    }

    /// `setgid`, with the same rules as [`Host::setuid`].
    pub fn setgid(&mut self, pid: Pid, gid: Gid) -> Result<(), OsError> {
        let (userns, cap) = {
            let p = self.process(pid)?;
            (p.userns, p.cap_setid)
        };
        if !cap {
            return Err(OsError::Perm);
        }
        let ns = self.user_namespaces.get(&userns).ok_or(OsError::Inval)?;
        if ns.gid_to_parent(gid).is_none() {
            return Err(OsError::Inval);
        }
        self.process_mut(pid)?.gid = gid;
        Ok(())
    }

    /// Resolve a process's uid through the user-namespace chain to the
    /// initial namespace; overflow uid if unmapped at any level.
    pub fn host_uid(&self, pid: Pid) -> Result<Uid, OsError> {
        let p = self.process(pid)?;
        Ok(self.resolve_uid(p.userns, p.uid))
    }

    /// Resolve a process's gid to the initial namespace.
    pub fn host_gid(&self, pid: Pid) -> Result<Gid, OsError> {
        let p = self.process(pid)?;
        Ok(self.resolve_gid(p.userns, p.gid))
    }

    fn resolve_uid(&self, mut ns_id: UserNsId, mut uid: Uid) -> Uid {
        loop {
            let Some(ns) = self.user_namespaces.get(&ns_id) else {
                return Uid::OVERFLOW;
            };
            match ns.parent {
                None => return uid,
                Some(parent) => match ns.uid_to_parent(uid) {
                    Some(up) => {
                        uid = up;
                        ns_id = parent;
                    }
                    None => return Uid::OVERFLOW,
                },
            }
        }
    }

    fn resolve_gid(&self, mut ns_id: UserNsId, mut gid: Gid) -> Gid {
        loop {
            let Some(ns) = self.user_namespaces.get(&ns_id) else {
                return Gid::OVERFLOW;
            };
            match ns.parent {
                None => return gid,
                Some(parent) => match ns.gid_to_parent(gid) {
                    Some(up) => {
                        gid = up;
                        ns_id = parent;
                    }
                    None => return Gid::OVERFLOW,
                },
            }
        }
    }

    /// What `/proc/<pid>/ns/net` reports: the kernel-held netns inode.
    /// This is the authentication input of the paper's extended driver.
    pub fn proc_netns_inode(&self, pid: Pid) -> Result<NetNsId, OsError> {
        Ok(self.process(pid)?.netns)
    }

    /// Full credential snapshot for a calling process.
    pub fn credentials(&self, pid: Pid) -> Result<Creds, OsError> {
        let p = self.process(pid)?;
        Ok(Creds {
            pid,
            uid: p.uid,
            gid: p.gid,
            host_uid: self.resolve_uid(p.userns, p.uid),
            host_gid: self.resolve_gid(p.userns, p.gid),
            netns: p.netns,
            userns: p.userns,
        })
    }

    /// Access a network namespace.
    pub fn net_namespace(&self, id: NetNsId) -> Option<&NetNamespace> {
        self.net_namespaces.get(&id)
    }

    /// Mutable access to a network namespace.
    pub fn net_namespace_mut(&mut self, id: NetNsId) -> Option<&mut NetNamespace> {
        self.net_namespaces.get_mut(&id)
    }

    /// Delete a network namespace once its last user is gone. Refuses to
    /// delete the host namespace or one still occupied by live processes.
    pub fn delete_net_ns(&mut self, id: NetNsId) -> Result<(), OsError> {
        if id == self.host_netns {
            return Err(OsError::Perm);
        }
        if self.processes.values().any(|p| p.alive && p.netns == id) {
            return Err(OsError::Perm);
        }
        self.net_namespaces.remove(&id).map(|_| ()).ok_or(OsError::Inval)
    }

    /// Access a user namespace.
    pub fn user_namespace(&self, id: UserNsId) -> Option<&UserNamespace> {
        self.user_namespaces.get(&id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wide_map() -> Vec<IdMapEntry> {
        vec![IdMapEntry { inside_start: 0, outside_start: 100_000, count: 65_536 }]
    }

    #[test]
    fn boot_creates_init() {
        let h = Host::new("n0");
        assert_eq!(h.live_processes(), 1);
        let init = h.process(Pid(1)).unwrap();
        assert_eq!(init.uid, Uid::ROOT);
        assert_eq!(init.netns, h.host_netns());
    }

    #[test]
    fn fork_inherits_namespaces() {
        let mut h = Host::new("n0");
        let parent = h.spawn_detached("daemon", Uid(1000), Gid(1000));
        let child = h.fork(parent, "worker").unwrap();
        let (p, c) = (h.process(parent).unwrap().clone(), h.process(child).unwrap().clone());
        assert_eq!(c.uid, p.uid);
        assert_eq!(c.netns, p.netns);
        assert_eq!(c.userns, p.userns);
        assert_ne!(c.pid, p.pid);
    }

    #[test]
    fn exit_makes_process_unlookupable() {
        let mut h = Host::new("n0");
        let pid = h.spawn_detached("x", Uid(1), Gid(1));
        h.exit(pid).unwrap();
        assert_eq!(h.process(pid).unwrap_err(), OsError::Srch);
        assert_eq!(h.exit(pid).unwrap_err(), OsError::Srch);
    }

    #[test]
    fn unshare_netns_assigns_fresh_unforgeable_inode() {
        let mut h = Host::new("n0");
        let a = h.spawn_detached("a", Uid(1000), Gid(1000));
        let b = h.spawn_detached("b", Uid(1000), Gid(1000));
        let ns_a = h.unshare_net_ns(a).unwrap();
        let ns_b = h.unshare_net_ns(b).unwrap();
        assert_ne!(ns_a, ns_b);
        assert_ne!(ns_a, h.host_netns());
        assert_eq!(h.proc_netns_inode(a).unwrap(), ns_a);
        assert_eq!(h.proc_netns_inode(b).unwrap(), ns_b);
    }

    #[test]
    fn setns_joins_existing_namespace() {
        let mut h = Host::new("n0");
        let a = h.spawn_detached("a", Uid(1000), Gid(1000));
        let b = h.spawn_detached("b", Uid(1000), Gid(1000));
        let ns = h.unshare_net_ns(a).unwrap();
        h.setns_net(b, ns).unwrap();
        assert_eq!(h.proc_netns_inode(b).unwrap(), ns);
        assert_eq!(h.setns_net(b, NetNsId(999)).unwrap_err(), OsError::Inval);
    }

    #[test]
    fn userns_gives_container_root_setid_inside() {
        let mut h = Host::new("n0");
        let p = h.spawn_detached("ctr", Uid(1000), Gid(1000));
        h.unshare_user_ns(p, wide_map(), wide_map(), Uid::ROOT, Gid::ROOT).unwrap();
        let proc_ = h.process(p).unwrap();
        assert_eq!(proc_.uid, Uid::ROOT);
        assert!(proc_.cap_setid);
        // Host-resolved identity is the mapped, unprivileged uid.
        assert_eq!(h.host_uid(p).unwrap(), Uid(100_000));
    }

    #[test]
    fn uid_spoofing_inside_userns_changes_local_but_not_host_uid() {
        // The paper's §III attack: container root assumes a victim uid.
        let mut h = Host::new("n0");
        let victim_uid = Uid(4242);
        let p = h.spawn_detached("mallory", Uid(1001), Gid(1001));
        h.unshare_user_ns(p, wide_map(), wide_map(), Uid::ROOT, Gid::ROOT).unwrap();
        h.setuid(p, victim_uid).unwrap();
        let creds = h.credentials(p).unwrap();
        assert_eq!(creds.uid, victim_uid, "legacy view is spoofed");
        assert_eq!(creds.host_uid, Uid(104_242), "host view is still sandboxed");
    }

    #[test]
    fn setuid_requires_capability_and_mapping() {
        let mut h = Host::new("n0");
        let p = h.spawn_detached("user", Uid(1000), Gid(1000));
        assert_eq!(h.setuid(p, Uid(0)).unwrap_err(), OsError::Perm);
        h.unshare_user_ns(p, wide_map(), wide_map(), Uid::ROOT, Gid::ROOT).unwrap();
        // 70_000 is outside the 65_536-wide map.
        assert_eq!(h.setuid(p, Uid(70_000)).unwrap_err(), OsError::Inval);
    }

    #[test]
    fn unmapped_uid_resolves_to_overflow() {
        let mut h = Host::new("n0");
        let p = h.spawn_detached("ctr", Uid(1000), Gid(1000));
        h.unshare_user_ns(
            p,
            vec![IdMapEntry { inside_start: 0, outside_start: 100_000, count: 1 }],
            vec![IdMapEntry { inside_start: 0, outside_start: 100_000, count: 1 }],
            Uid::ROOT,
            Gid::ROOT,
        )
        .unwrap();
        // uid 0 maps; anything else overflows when resolved.
        assert_eq!(h.host_uid(p).unwrap(), Uid(100_000));
        // Force an unmapped inside uid by writing a map that excludes it,
        // then resolving a fork whose uid we keep at 0 but whose gid is 5.
        let q = h.fork(p, "child").unwrap();
        h.setgid(q, Gid(0)).unwrap();
        assert_eq!(h.host_gid(q).unwrap(), Gid(100_000));
    }

    #[test]
    fn nested_userns_resolves_through_chain() {
        let mut h = Host::new("n0");
        let p = h.spawn_detached("outer", Uid(1000), Gid(1000));
        h.unshare_user_ns(p, wide_map(), wide_map(), Uid::ROOT, Gid::ROOT).unwrap();
        // Nested namespace: inside 0 -> outer 5000 -> host 105000.
        h.unshare_user_ns(
            p,
            vec![IdMapEntry { inside_start: 0, outside_start: 5000, count: 10 }],
            vec![IdMapEntry { inside_start: 0, outside_start: 5000, count: 10 }],
            Uid::ROOT,
            Gid::ROOT,
        )
        .unwrap();
        assert_eq!(h.host_uid(p).unwrap(), Uid(105_000));
    }

    #[test]
    fn netns_deletion_rules() {
        let mut h = Host::new("n0");
        let p = h.spawn_detached("ctr", Uid(1000), Gid(1000));
        let ns = h.unshare_net_ns(p).unwrap();
        assert_eq!(h.delete_net_ns(ns).unwrap_err(), OsError::Perm, "occupied");
        assert_eq!(h.delete_net_ns(h.host_netns()).unwrap_err(), OsError::Perm);
        h.exit(p).unwrap();
        h.delete_net_ns(ns).unwrap();
        assert_eq!(h.delete_net_ns(ns).unwrap_err(), OsError::Inval, "gone");
    }

    #[test]
    fn credentials_snapshot_is_consistent() {
        let mut h = Host::new("n0");
        let p = h.spawn_detached("app", Uid(77), Gid(88));
        let ns = h.unshare_net_ns(p).unwrap();
        let c = h.credentials(p).unwrap();
        assert_eq!(c.uid, Uid(77));
        assert_eq!(c.gid, Gid(88));
        assert_eq!(c.host_uid, Uid(77), "initial ns is identity");
        assert_eq!(c.netns, ns);
    }
}
