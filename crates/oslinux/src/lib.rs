//! # shs-oslinux — simulated Linux substrate
//!
//! Minimal-but-faithful model of the kernel facilities the Slingshot
//! access model interacts with: processes and their credentials, user
//! namespaces with UID/GID maps (including the container-root
//! `setuid`-spoofing behaviour that motivates the paper), and network
//! namespaces with kernel-assigned, unforgeable inode identities that the
//! extended CXI driver authenticates against (§III-A of the paper).
//!
//! One [`Host`] instance models one node's kernel; a cluster is a
//! collection of hosts wired to the fabric by `slingshot-k8s`.

pub mod host;
pub mod ids;
pub mod ns;

pub use host::{Creds, Host, OsError, Process};
pub use ids::{Gid, NetNsId, Pid, Uid, UserNsId};
pub use ns::{IdMapEntry, NetNamespace, UserNamespace};
