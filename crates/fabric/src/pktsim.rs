//! Packet-level egress simulation under contention, driven by the
//! discrete-event kernel.
//!
//! The flow-level engine ([`crate::fabric::Fabric`]) models uncontended
//! paths analytically; this module simulates a *contended* egress port
//! packet by packet through the weighted arbiter, which is how the
//! co-scheduling claim of the paper's §I use-case 1 (low-latency traffic
//! unharmed by bulk checkpoints) is quantified.

use std::collections::BTreeMap;

use shs_des::{Sim, SimDur, SimTime};

use crate::packet::{segment, CostModel};
use crate::switch::WrrArbiter;
use crate::types::{NicAddr, TrafficClass, Vni};

/// One offered flow.
#[derive(Debug, Clone)]
pub struct Flow {
    /// Traffic class of every message in the flow.
    pub tc: TrafficClass,
    /// Number of messages.
    pub messages: u32,
    /// Payload bytes per message.
    pub size: u64,
    /// Arrival time of the flow's first message (all messages of a flow
    /// arrive back-to-back).
    pub arrival: SimTime,
}

/// Per-class result of a contention run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassStats {
    /// Messages completed.
    pub messages: u32,
    /// Mean message completion latency (µs, from flow arrival).
    pub mean_latency_us: f64,
    /// Worst message completion latency (µs).
    pub max_latency_us: f64,
}

struct PortWorld {
    arbiter: WrrArbiter,
    model: CostModel,
    busy: bool,
    /// msg_id -> (tc, arrival)
    meta: BTreeMap<u64, (TrafficClass, SimTime)>,
    /// completions: (tc, arrival, done)
    done: Vec<(TrafficClass, SimTime, SimTime)>,
}

fn drain(sim: &mut Sim<PortWorld>) {
    if sim.world.busy {
        return;
    }
    let Some(pkt) = sim.world.arbiter.dequeue() else { return };
    sim.world.busy = true;
    let wire = pkt.wire_bytes(&sim.world.model);
    let ser = SimDur::from_nanos(sim.world.model.serialize_ns(wire));
    let last = pkt.last_of_msg;
    let msg_id = pkt.msg_id;
    sim.after(ser, move |sim| {
        sim.world.busy = false;
        if last {
            let (tc, arrival) =
                sim.world.meta.get(&msg_id).copied().expect("message metadata");
            let now = sim.now();
            sim.world.done.push((tc, arrival, now));
        }
        drain(sim);
    });
}

/// Simulate the given flows sharing one egress port; returns per-class
/// statistics. Fully deterministic.
///
/// ```
/// use shs_des::SimTime;
/// use shs_fabric::{simulate_contention, CostModel, Flow, TrafficClass};
///
/// let stats = simulate_contention(
///     CostModel::default(),
///     &[Flow { tc: TrafficClass::Dedicated, messages: 2, size: 2048, arrival: SimTime::ZERO }],
/// );
/// assert_eq!(stats[&TrafficClass::Dedicated].messages, 2);
/// ```
pub fn simulate_contention(model: CostModel, flows: &[Flow]) -> BTreeMap<TrafficClass, ClassStats> {
    let quantum = model.mtu as i64 + model.header_bytes as i64;
    let world = PortWorld {
        arbiter: WrrArbiter::new(quantum),
        model,
        busy: false,
        meta: BTreeMap::new(),
        done: Vec::new(),
    };
    let mut sim = Sim::new(world);
    let mut msg_id = 0u64;
    for flow in flows {
        for _ in 0..flow.messages {
            let id = msg_id;
            msg_id += 1;
            let tc = flow.tc;
            let size = flow.size;
            let arrival = flow.arrival;
            sim.at(arrival, move |sim| {
                sim.world.meta.insert(id, (tc, arrival));
                for pkt in
                    segment(&sim.world.model, NicAddr(0), NicAddr(1), Vni(1), tc, id, size)
                {
                    sim.world.arbiter.enqueue(pkt);
                }
                drain(sim);
            });
        }
    }
    sim.run();

    let mut out: BTreeMap<TrafficClass, ClassStats> = BTreeMap::new();
    let mut acc: BTreeMap<TrafficClass, Vec<f64>> = BTreeMap::new();
    for &(tc, arrival, done) in &sim.world.done {
        acc.entry(tc).or_default().push((done - arrival).as_micros_f64());
    }
    for (tc, lats) in acc {
        let mean = lats.iter().sum::<f64>() / lats.len() as f64;
        let max = lats.iter().cloned().fold(0.0, f64::max);
        out.insert(
            tc,
            ClassStats { messages: lats.len() as u32, mean_latency_us: mean, max_latency_us: max },
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncontended_flow_is_serialization_bound() {
        let model = CostModel::default();
        let stats = simulate_contention(
            model,
            &[Flow { tc: TrafficClass::Dedicated, messages: 4, size: 2048, arrival: SimTime::ZERO }],
        );
        let s = stats[&TrafficClass::Dedicated];
        assert_eq!(s.messages, 4);
        // 4 messages of one MTU each: last completes after ~4 packets.
        let one_pkt_us = model.serialize_ns(2048 + 64) as f64 / 1000.0;
        assert!(s.max_latency_us <= 4.5 * one_pkt_us, "{} vs {}", s.max_latency_us, one_pkt_us);
    }

    #[test]
    fn low_latency_class_is_protected_from_bulk() {
        let model = CostModel::default();
        let stats = simulate_contention(
            model,
            &[
                // A big checkpoint burst...
                Flow { tc: TrafficClass::BulkData, messages: 4, size: 1 << 20, arrival: SimTime::ZERO },
                // ...and small latency-critical messages arriving after it.
                Flow {
                    tc: TrafficClass::LowLatency,
                    messages: 16,
                    size: 64,
                    arrival: SimTime::from_nanos(10_000),
                },
            ],
        );
        let ll = stats[&TrafficClass::LowLatency];
        let bulk = stats[&TrafficClass::BulkData];
        assert_eq!(ll.messages, 16);
        assert_eq!(bulk.messages, 4);
        // Each low-latency message waits at most a handful of bulk MTU
        // packets, not the whole 4 MB burst (which takes ~170 µs).
        assert!(
            ll.max_latency_us < 30.0,
            "low-latency max {}us should not see the burst through",
            ll.max_latency_us
        );
        assert!(bulk.max_latency_us > 100.0, "bulk drains behind: {}us", bulk.max_latency_us);
    }

    #[test]
    fn without_class_separation_small_messages_suffer() {
        // Control experiment: the same small messages on the *same* class
        // as the burst queue behind it (FIFO within a class).
        let model = CostModel::default();
        let stats = simulate_contention(
            model,
            &[
                Flow { tc: TrafficClass::BulkData, messages: 4, size: 1 << 20, arrival: SimTime::ZERO },
                Flow {
                    tc: TrafficClass::BulkData,
                    messages: 16,
                    size: 64,
                    arrival: SimTime::from_nanos(10_000),
                },
            ],
        );
        let all = stats[&TrafficClass::BulkData];
        // The small messages are in the same bucket; the class's max
        // latency reflects the full burst drain.
        assert!(all.max_latency_us > 100.0);
    }

    #[test]
    fn work_conservation_across_classes() {
        let model = CostModel::default();
        let flows: Vec<Flow> = TrafficClass::ALL
            .iter()
            .map(|&tc| Flow { tc, messages: 10, size: 4096, arrival: SimTime::ZERO })
            .collect();
        let stats = simulate_contention(model, &flows);
        let total: u32 = stats.values().map(|s| s.messages).sum();
        assert_eq!(total, 40);
    }

    #[test]
    fn deterministic_output() {
        let model = CostModel::default();
        let flows = vec![
            Flow { tc: TrafficClass::LowLatency, messages: 5, size: 128, arrival: SimTime::ZERO },
            Flow { tc: TrafficClass::BulkData, messages: 3, size: 100_000, arrival: SimTime::ZERO },
        ];
        let a = simulate_contention(model, &flows);
        let b = simulate_contention(model, &flows);
        assert_eq!(a, b);
    }
}
