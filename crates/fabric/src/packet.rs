//! The fabric packet and message cost model.

use crate::types::{NicAddr, TrafficClass, Vni};

/// Link/fabric cost-model constants, calibrated to Slingshot 200 Gbps
/// magnitudes (see DESIGN.md §1 and EXPERIMENTS.md for calibration).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Link bandwidth in bytes per nanosecond (25 B/ns == 200 Gb/s).
    pub bw_bytes_per_ns: f64,
    /// Maximum payload per packet, bytes (Cassini-like 2 KiB MTU).
    pub mtu: u32,
    /// Per-packet header+CRC overhead on the wire, bytes.
    pub header_bytes: u32,
    /// Switch hop latency (cut-through), nanoseconds.
    pub hop_latency_ns: u64,
    /// Per-link propagation delay, nanoseconds.
    pub propagation_ns: u64,
    /// Maximum queueing delay a message may accrue at one inter-switch
    /// (trunk) link before the switch's congestion management drops it
    /// (per-class queues are finite on real Rosetta hardware; edge links
    /// model the NIC's unbounded retry instead). Nanoseconds.
    pub trunk_queue_ns: u64,
    /// ECN marking threshold: a message accepted onto a trunk after
    /// queueing longer than this is marked, and the mark is fed back to
    /// the sending NIC for pacing. The default equals `trunk_queue_ns`,
    /// so no mark can ever fire (anything queued past the bound is
    /// dropped instead) and legacy runs are bit-identical; congestion
    /// scenarios lower it to get early backpressure. Nanoseconds.
    pub ecn_threshold_ns: u64,
    /// UGAL bias in favour of the minimal route, in queue-cost units
    /// (ns × hops): under [`crate::RoutingPolicy::Adaptive`] a packet
    /// detours only when `q_min·h_min > q_val·h_val + bias`. 0 is the
    /// classic unbiased UGAL decision.
    pub adaptive_bias_ns: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            bw_bytes_per_ns: 25.0,
            mtu: 2048,
            header_bytes: 64,
            hop_latency_ns: 350,
            propagation_ns: 20,
            trunk_queue_ns: 100_000,
            ecn_threshold_ns: 100_000,
            adaptive_bias_ns: 0,
        }
    }
}

impl CostModel {
    /// Number of packets a message of `len` payload bytes segments into.
    /// Zero-byte messages still cost one (header-only) packet.
    ///
    /// ```
    /// let m = shs_fabric::CostModel::default(); // 2 KiB MTU
    /// assert_eq!(m.packets_for(0), 1);
    /// assert_eq!(m.packets_for(2048), 1);
    /// assert_eq!(m.packets_for(2049), 2);
    /// ```
    pub fn packets_for(&self, len: u64) -> u64 {
        if len == 0 {
            1
        } else {
            len.div_ceil(self.mtu as u64)
        }
    }

    /// Total wire bytes for a message of `len` payload bytes: the
    /// payload plus one header per packet.
    ///
    /// ```
    /// let m = shs_fabric::CostModel::default(); // 64 B header
    /// assert_eq!(m.wire_bytes(2048), 2048 + 64);
    /// assert_eq!(m.wire_bytes(4096), 4096 + 2 * 64);
    /// ```
    pub fn wire_bytes(&self, len: u64) -> u64 {
        len + self.packets_for(len) * self.header_bytes as u64
    }

    /// Serialization time of `bytes` on the link, in nanoseconds.
    pub fn serialize_ns(&self, bytes: u64) -> u64 {
        (bytes as f64 / self.bw_bytes_per_ns).ceil() as u64
    }

    /// Goodput upper bound in bytes/ns once header overhead is paid.
    pub fn peak_goodput_bytes_per_ns(&self) -> f64 {
        self.bw_bytes_per_ns * self.mtu as f64 / (self.mtu + self.header_bytes) as f64
    }
}

/// One fabric packet, as emitted by a Cassini NIC.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Source NIC fabric address.
    pub src: NicAddr,
    /// Destination NIC fabric address.
    pub dst: NicAddr,
    /// Virtual network the packet claims membership of. Enforced at the
    /// switch per §II-C.
    pub vni: Vni,
    /// Traffic class for egress arbitration.
    pub tc: TrafficClass,
    /// Payload bytes carried (≤ MTU).
    pub payload_len: u32,
    /// Message this packet belongs to (reassembly key).
    pub msg_id: u64,
    /// Packet index within the message.
    pub seq: u32,
    /// Set on the final packet of a message.
    pub last_of_msg: bool,
}

impl Packet {
    /// Wire size of the packet (payload + header).
    pub fn wire_bytes(&self, model: &CostModel) -> u64 {
        self.payload_len as u64 + model.header_bytes as u64
    }
}

/// Segment a message into packets under the cost model.
pub fn segment(
    model: &CostModel,
    src: NicAddr,
    dst: NicAddr,
    vni: Vni,
    tc: TrafficClass,
    msg_id: u64,
    len: u64,
) -> Vec<Packet> {
    let n = model.packets_for(len);
    let mut out = Vec::with_capacity(n as usize);
    let mut remaining = len;
    for seq in 0..n {
        let take = remaining.min(model.mtu as u64) as u32;
        remaining -= take as u64;
        out.push(Packet {
            src,
            dst,
            vni,
            tc,
            payload_len: take,
            msg_id,
            seq: seq as u32,
            last_of_msg: seq + 1 == n,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m() -> CostModel {
        CostModel::default()
    }

    #[test]
    fn bandwidth_constant_is_200gbps() {
        // 25 bytes/ns == 200 Gb/s.
        assert!((m().bw_bytes_per_ns * 8.0 - 200.0).abs() < 1e-9);
    }

    #[test]
    fn packet_counts() {
        let m = m();
        assert_eq!(m.packets_for(0), 1);
        assert_eq!(m.packets_for(1), 1);
        assert_eq!(m.packets_for(2048), 1);
        assert_eq!(m.packets_for(2049), 2);
        assert_eq!(m.packets_for(1 << 20), 512);
    }

    #[test]
    fn wire_bytes_include_headers() {
        let m = m();
        assert_eq!(m.wire_bytes(1), 1 + 64);
        assert_eq!(m.wire_bytes(2048), 2048 + 64);
        assert_eq!(m.wire_bytes(4096), 4096 + 2 * 64);
    }

    #[test]
    fn serialization_time_scales() {
        let m = m();
        assert_eq!(m.serialize_ns(25), 1);
        assert_eq!(m.serialize_ns(2500), 100);
    }

    #[test]
    fn peak_goodput_near_line_rate() {
        let g = m().peak_goodput_bytes_per_ns();
        // 25 * 2048/2112 ≈ 24.24 B/ns ≈ 24.24 GB/s, the paper's Fig. 5
        // plateau magnitude.
        assert!(g > 24.0 && g < 24.5, "goodput {g}");
    }

    #[test]
    fn segmentation_roundtrips_payload() {
        let m = m();
        for len in [0u64, 1, 100, 2048, 2049, 10_000, 1 << 20] {
            let pkts = segment(&m, NicAddr(0), NicAddr(1), Vni(5), TrafficClass::Dedicated, 9, len);
            assert_eq!(pkts.len() as u64, m.packets_for(len));
            assert_eq!(pkts.iter().map(|p| p.payload_len as u64).sum::<u64>(), len);
            assert!(pkts.last().unwrap().last_of_msg);
            assert!(pkts.iter().rev().skip(1).all(|p| !p.last_of_msg));
            assert!(pkts.iter().all(|p| p.payload_len <= m.mtu));
            assert!(pkts.iter().enumerate().all(|(i, p)| p.seq as usize == i));
        }
    }
}
