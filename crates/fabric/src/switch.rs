//! The Rosetta-like switch: routing, per-port VNI enforcement, drop
//! accounting, and a weighted egress arbiter for traffic classes.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::packet::Packet;
use crate::types::{NicAddr, PortId, TrafficClass, Vni};

/// Why a packet was not forwarded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DropReason {
    /// The ingress port has not been granted the packet's VNI.
    VniDeniedIngress,
    /// The egress port has not been granted the packet's VNI.
    VniDeniedEgress,
    /// No route to the destination NIC.
    NoRoute,
    /// Source address does not match the ingress port binding (spoofing).
    SourceSpoofed,
    /// Dropped by congestion management: the per-class queue at an
    /// inter-switch link exceeded the cost model's `trunk_queue_ns`.
    Congested,
}

/// Forwarding verdict for one packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Forward out of the given egress port.
    Deliver(PortId),
    /// Drop with the given reason. VNI-enforcement drops are silent on
    /// real Rosetta hardware; we count them.
    Drop(DropReason),
}

/// Per-switch counters (observable via the monitoring example).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SwitchCounters {
    /// Packets successfully forwarded.
    pub forwarded: u64,
    /// Bytes of payload forwarded.
    pub forwarded_payload_bytes: u64,
    /// Drops by reason.
    pub drops: BTreeMap<DropReason, u64>,
}

impl SwitchCounters {
    /// Total dropped packets.
    pub fn total_drops(&self) -> u64 {
        self.drops.values().sum()
    }
}

/// Switch configuration.
#[derive(Debug, Clone)]
pub struct SwitchConfig {
    /// Number of ports.
    pub ports: usize,
    /// Whether to strictly enforce VNIs ("The Rosetta switch can be
    /// configured to strictly enforce VNIs", §II-C). When off, any VNI is
    /// routed — the single-tenant HPC mode.
    pub enforce_vnis: bool,
    /// Whether to validate that a packet's source address matches the NIC
    /// bound to the ingress port.
    pub check_source: bool,
}

impl Default for SwitchConfig {
    fn default() -> Self {
        SwitchConfig { ports: 64, enforce_vnis: true, check_source: true }
    }
}

/// The switch state machine (sans-IO; timing lives in the fabric engine).
#[derive(Debug)]
pub struct Switch {
    config: SwitchConfig,
    /// VNIs granted per port, indexed by port number (the per-packet
    /// enforcement lookup is one array index + a small-set probe).
    vni_table: Vec<BTreeSet<Vni>>,
    /// Destination NIC -> egress port, sorted by NIC (binary search;
    /// never iterated on the hot path).
    routes: Vec<(NicAddr, PortId)>,
    /// NIC bound to each port (for source validation), indexed by port.
    bindings: Vec<Option<NicAddr>>,
    /// Counters.
    pub counters: SwitchCounters,
}

impl Switch {
    /// Build a switch with the given configuration.
    pub fn new(config: SwitchConfig) -> Self {
        let ports = config.ports;
        Switch {
            config,
            vni_table: vec![BTreeSet::new(); ports],
            routes: Vec::new(),
            bindings: vec![None; ports],
            counters: SwitchCounters::default(),
        }
    }

    /// Access the configuration.
    pub fn config(&self) -> &SwitchConfig {
        &self.config
    }

    /// Bind a NIC to a port and install its route. Panics if the port is
    /// out of range; returns `false` if the port was already bound.
    pub fn bind(&mut self, port: PortId, nic: NicAddr) -> bool {
        assert!(port.0 < self.config.ports, "{port} out of range");
        if self.bindings[port.0].is_some() {
            return false;
        }
        self.bindings[port.0] = Some(nic);
        if let Err(i) = self.routes.binary_search_by_key(&nic, |&(n, _)| n) {
            self.routes.insert(i, (nic, port));
        }
        true
    }

    /// Remove a NIC binding (node removal).
    pub fn unbind(&mut self, port: PortId) {
        if let Some(nic) = self.bindings[port.0].take() {
            if let Ok(i) = self.routes.binary_search_by_key(&nic, |&(n, _)| n) {
                self.routes.remove(i);
            }
        }
        self.vni_table[port.0].clear();
    }

    /// Grant a VNI on a port (management-plane operation performed by the
    /// fabric manager when the VNI Service allocates a virtual network).
    pub fn grant_vni(&mut self, port: PortId, vni: Vni) {
        self.vni_table[port.0].insert(vni);
    }

    /// Revoke a VNI from a port.
    pub fn revoke_vni(&mut self, port: PortId, vni: Vni) -> bool {
        self.vni_table.get_mut(port.0).is_some_and(|s| s.remove(&vni))
    }

    /// Egress port a NIC is currently bound to on this switch (`None`
    /// after [`Switch::unbind`]).
    pub fn route_to(&self, nic: NicAddr) -> Option<PortId> {
        self.routes
            .binary_search_by_key(&nic, |&(n, _)| n)
            .ok()
            .map(|i| self.routes[i].1)
    }

    /// Whether a port holds a VNI grant.
    pub fn has_vni(&self, port: PortId, vni: Vni) -> bool {
        self.vni_table.get(port.0).is_some_and(|s| s.contains(&vni))
    }

    /// All VNIs granted on a port.
    pub fn vnis_on(&self, port: PortId) -> impl Iterator<Item = Vni> + '_ {
        self.vni_table.get(port.0).into_iter().flatten().copied()
    }

    /// The forwarding decision for one packet arriving on `ingress`,
    /// when the destination NIC is attached to *this* switch.
    ///
    /// Mirrors §II-C: "only route packets within a VNI if both the sender
    /// and receiver NIC have been granted access to that VNI". The
    /// multi-switch fabric engine composes the same checks across the
    /// source and destination edge switches via [`Switch::admit`] and
    /// [`Switch::egress_check`].
    ///
    /// ```
    /// use shs_fabric::{NicAddr, Packet, PortId, Switch, SwitchConfig, TrafficClass, Verdict, Vni};
    ///
    /// let mut sw = Switch::new(SwitchConfig { ports: 2, ..Default::default() });
    /// sw.bind(PortId(0), NicAddr(10));
    /// sw.bind(PortId(1), NicAddr(11));
    /// sw.grant_vni(PortId(0), Vni(5));
    /// sw.grant_vni(PortId(1), Vni(5));
    /// let pkt = Packet {
    ///     src: NicAddr(10), dst: NicAddr(11), vni: Vni(5),
    ///     tc: TrafficClass::Dedicated, payload_len: 64,
    ///     msg_id: 1, seq: 0, last_of_msg: true,
    /// };
    /// assert_eq!(sw.forward(PortId(0), &pkt), Verdict::Deliver(PortId(1)));
    /// ```
    pub fn forward(&mut self, ingress: PortId, pkt: &Packet) -> Verdict {
        if let Some(reason) = self.admit(ingress, pkt) {
            return Verdict::Drop(reason);
        }
        let Some(egress) = self.route_to(pkt.dst) else {
            return Verdict::Drop(self.note_drop(DropReason::NoRoute));
        };
        if let Some(reason) = self.egress_check(egress, pkt) {
            return Verdict::Drop(reason);
        }
        self.counters.forwarded += 1;
        self.counters.forwarded_payload_bytes += pkt.payload_len as u64;
        Verdict::Deliver(egress)
    }

    /// Ingress-side admission: source validation plus the per-port VNI
    /// ingress check, with drops counted. `None` means admitted.
    pub fn admit(&mut self, ingress: PortId, pkt: &Packet) -> Option<DropReason> {
        if self.config.check_source
            && self.bindings.get(ingress.0).copied().flatten().is_some_and(|nic| nic != pkt.src)
        {
            return Some(self.note_drop(DropReason::SourceSpoofed));
        }
        if self.config.enforce_vnis && !self.has_vni(ingress, pkt.vni) {
            return Some(self.note_drop(DropReason::VniDeniedIngress));
        }
        None
    }

    /// Egress-side VNI enforcement for a packet leaving via `egress`,
    /// with drops counted. `None` means the grant is in place.
    pub fn egress_check(&mut self, egress: PortId, pkt: &Packet) -> Option<DropReason> {
        if self.config.enforce_vnis && !self.has_vni(egress, pkt.vni) {
            return Some(self.note_drop(DropReason::VniDeniedEgress));
        }
        None
    }

    /// Count a drop decided by the fabric engine (e.g. trunk congestion)
    /// against this switch, returning the reason for convenience.
    pub fn note_drop(&mut self, reason: DropReason) -> DropReason {
        *self.counters.drops.entry(reason).or_insert(0) += 1;
        reason
    }

    /// Account `pkts` forwarded packets carrying `payload` bytes (used
    /// by the fabric engine for transit switches on multi-hop routes).
    pub fn note_forwarded(&mut self, pkts: u64, payload: u64) {
        self.counters.forwarded += pkts;
        self.counters.forwarded_payload_bytes += payload;
    }
}

/// Weighted-round-robin egress arbiter over the four traffic classes.
///
/// Used by the packet-level path to model class-based arbitration when an
/// egress port is contended (the co-scheduling use case from §I).
#[derive(Debug, Default)]
pub struct WrrArbiter {
    queues: [VecDeque<Packet>; 4],
    deficit: [i64; 4],
    /// Quantum multiplier in bytes per unit weight.
    quantum: i64,
}

impl WrrArbiter {
    /// New arbiter with the given per-weight byte quantum.
    pub fn new(quantum_bytes: i64) -> Self {
        WrrArbiter { queues: Default::default(), deficit: [0; 4], quantum: quantum_bytes }
    }

    /// Enqueue a packet for egress.
    pub fn enqueue(&mut self, pkt: Packet) {
        self.queues[pkt.tc.index()].push_back(pkt);
    }

    /// Total queued packets.
    pub fn len(&self) -> usize {
        self.queues.iter().map(|q| q.len()).sum()
    }

    /// Whether no packets are queued.
    pub fn is_empty(&self) -> bool {
        self.queues.iter().all(|q| q.is_empty())
    }

    /// Dequeue the next packet under deficit-round-robin arbitration.
    pub fn dequeue(&mut self) -> Option<Packet> {
        if self.is_empty() {
            return None;
        }
        // Bounded rounds: each refill adds quantum*weight bytes of credit,
        // so any head packet is eventually eligible.
        loop {
            for tc in TrafficClass::ALL {
                let i = tc.index();
                if let Some(head) = self.queues[i].front() {
                    let cost = head.payload_len as i64 + 64;
                    if self.deficit[i] >= cost {
                        self.deficit[i] -= cost;
                        return self.queues[i].pop_front();
                    }
                }
            }
            for tc in TrafficClass::ALL {
                let i = tc.index();
                if !self.queues[i].is_empty() {
                    self.deficit[i] += self.quantum * tc.weight() as i64;
                } else {
                    self.deficit[i] = 0;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::CostModel;

    fn pkt(src: u32, dst: u32, vni: u16, tc: TrafficClass) -> Packet {
        Packet {
            src: NicAddr(src),
            dst: NicAddr(dst),
            vni: Vni(vni),
            tc,
            payload_len: 1024,
            msg_id: 1,
            seq: 0,
            last_of_msg: true,
        }
    }

    fn two_port_switch() -> Switch {
        let mut sw = Switch::new(SwitchConfig { ports: 4, ..Default::default() });
        sw.bind(PortId(0), NicAddr(10));
        sw.bind(PortId(1), NicAddr(11));
        sw
    }

    #[test]
    fn forwards_when_both_ports_hold_vni() {
        let mut sw = two_port_switch();
        sw.grant_vni(PortId(0), Vni(5));
        sw.grant_vni(PortId(1), Vni(5));
        let v = sw.forward(PortId(0), &pkt(10, 11, 5, TrafficClass::Dedicated));
        assert_eq!(v, Verdict::Deliver(PortId(1)));
        assert_eq!(sw.counters.forwarded, 1);
    }

    #[test]
    fn drops_without_ingress_grant() {
        let mut sw = two_port_switch();
        sw.grant_vni(PortId(1), Vni(5));
        let v = sw.forward(PortId(0), &pkt(10, 11, 5, TrafficClass::Dedicated));
        assert_eq!(v, Verdict::Drop(DropReason::VniDeniedIngress));
        assert_eq!(sw.counters.total_drops(), 1);
    }

    #[test]
    fn drops_without_egress_grant() {
        // Sender holds the VNI, receiver does not: cross-tenant isolation.
        let mut sw = two_port_switch();
        sw.grant_vni(PortId(0), Vni(5));
        let v = sw.forward(PortId(0), &pkt(10, 11, 5, TrafficClass::Dedicated));
        assert_eq!(v, Verdict::Drop(DropReason::VniDeniedEgress));
    }

    #[test]
    fn enforcement_can_be_disabled() {
        let mut sw = Switch::new(SwitchConfig { ports: 4, enforce_vnis: false, check_source: true });
        sw.bind(PortId(0), NicAddr(10));
        sw.bind(PortId(1), NicAddr(11));
        let v = sw.forward(PortId(0), &pkt(10, 11, 999, TrafficClass::Dedicated));
        assert_eq!(v, Verdict::Deliver(PortId(1)));
    }

    #[test]
    fn drops_unrouted_destinations() {
        let mut sw = two_port_switch();
        sw.grant_vni(PortId(0), Vni(5));
        let v = sw.forward(PortId(0), &pkt(10, 99, 5, TrafficClass::Dedicated));
        assert_eq!(v, Verdict::Drop(DropReason::NoRoute));
    }

    #[test]
    fn drops_spoofed_sources() {
        let mut sw = two_port_switch();
        sw.grant_vni(PortId(0), Vni(5));
        sw.grant_vni(PortId(1), Vni(5));
        // NIC 10 is bound to port 0 but claims to be NIC 11.
        let v = sw.forward(PortId(0), &pkt(11, 10, 5, TrafficClass::Dedicated));
        assert_eq!(v, Verdict::Drop(DropReason::SourceSpoofed));
    }

    #[test]
    fn revoke_closes_the_network() {
        let mut sw = two_port_switch();
        sw.grant_vni(PortId(0), Vni(5));
        sw.grant_vni(PortId(1), Vni(5));
        assert!(sw.revoke_vni(PortId(1), Vni(5)));
        let v = sw.forward(PortId(0), &pkt(10, 11, 5, TrafficClass::Dedicated));
        assert_eq!(v, Verdict::Drop(DropReason::VniDeniedEgress));
        assert!(!sw.revoke_vni(PortId(1), Vni(5)), "second revoke is a no-op");
    }

    #[test]
    fn bind_rejects_double_binding() {
        let mut sw = two_port_switch();
        assert!(!sw.bind(PortId(0), NicAddr(99)));
    }

    #[test]
    fn unbind_removes_routes_and_grants() {
        let mut sw = two_port_switch();
        sw.grant_vni(PortId(1), Vni(5));
        sw.unbind(PortId(1));
        sw.grant_vni(PortId(0), Vni(5));
        let v = sw.forward(PortId(0), &pkt(10, 11, 5, TrafficClass::Dedicated));
        assert_eq!(v, Verdict::Drop(DropReason::NoRoute));
        assert!(!sw.has_vni(PortId(1), Vni(5)));
    }

    #[test]
    fn vnis_on_lists_grants() {
        let mut sw = two_port_switch();
        sw.grant_vni(PortId(0), Vni(9));
        sw.grant_vni(PortId(0), Vni(3));
        let vnis: Vec<Vni> = sw.vnis_on(PortId(0)).collect();
        assert_eq!(vnis, vec![Vni(3), Vni(9)], "BTreeSet keeps order deterministic");
    }

    #[test]
    fn wrr_prefers_high_priority_classes() {
        let mut arb = WrrArbiter::new(CostModel::default().mtu as i64 + 64);
        for _ in 0..8 {
            arb.enqueue(pkt(1, 2, 1, TrafficClass::BestEffort));
            arb.enqueue(pkt(1, 2, 1, TrafficClass::LowLatency));
        }
        let mut first_eight = Vec::new();
        for _ in 0..8 {
            first_eight.push(arb.dequeue().unwrap().tc);
        }
        let ll = first_eight.iter().filter(|&&t| t == TrafficClass::LowLatency).count();
        assert!(ll >= 6, "low-latency should dominate early slots, got {ll}/8");
    }

    #[test]
    fn wrr_drains_everything() {
        let mut arb = WrrArbiter::new(4096);
        for i in 0..100u32 {
            let tc = TrafficClass::ALL[(i % 4) as usize];
            arb.enqueue(pkt(1, 2, 1, tc));
        }
        let mut n = 0;
        while arb.dequeue().is_some() {
            n += 1;
        }
        assert_eq!(n, 100);
        assert!(arb.is_empty());
        assert!(arb.dequeue().is_none());
    }
}
