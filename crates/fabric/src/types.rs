//! Core fabric vocabulary: VNIs, NIC addresses, ports, traffic classes.

use core::fmt;

/// A Slingshot Virtual Network Identifier.
///
/// VNIs provide layer-2 isolation domains (paper §II-C): the Rosetta
/// switch only routes a packet if *both* the sender and the receiver port
/// have been granted the packet's VNI. Represented as `u16`, matching the
/// Cassini header field width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Vni(pub u16);

impl Vni {
    /// The "default"/global VNI used by single-tenant HPC deployments and
    /// by the paper's `vni:false` baseline runs, which "utilize a globally
    /// accessible VNI" (§IV-A).
    pub const GLOBAL: Vni = Vni(1);

    /// Raw value.
    #[inline]
    pub const fn raw(self) -> u16 {
        self.0
    }
}

impl fmt::Display for Vni {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VNI#{}", self.0)
    }
}

/// Fabric address of a NIC (analogous to a Slingshot NID).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NicAddr(pub u32);

impl fmt::Display for NicAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "nid{:05}", self.0)
    }
}

/// A switch port index (local to one switch).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PortId(pub usize);

impl fmt::Display for PortId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "port{}", self.0)
    }
}

/// A switch index in a [`crate::topology::Topology`], flat over all
/// groups: switch `s` of group `g` has id `g * switches_per_group + s`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SwitchId(pub usize);

impl fmt::Display for SwitchId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sw{}", self.0)
    }
}

/// Slingshot traffic classes (§I use-case 1 mentions co-scheduling
/// latency-critical work with checkpointing on different classes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[derive(Default)]
pub enum TrafficClass {
    /// Lowest-latency class for tightly coupled workloads.
    LowLatency,
    /// Dedicated bandwidth class.
    #[default]
    Dedicated,
    /// Bulk data movement (checkpoints, stage-in/out).
    BulkData,
    /// Scavenger class.
    BestEffort,
}

impl TrafficClass {
    /// All classes, in arbitration-priority order (highest first).
    pub const ALL: [TrafficClass; 4] = [
        TrafficClass::LowLatency,
        TrafficClass::Dedicated,
        TrafficClass::BulkData,
        TrafficClass::BestEffort,
    ];

    /// Weighted-round-robin arbitration weight at switch egress.
    pub fn weight(self) -> u32 {
        match self {
            TrafficClass::LowLatency => 8,
            TrafficClass::Dedicated => 4,
            TrafficClass::BulkData => 2,
            TrafficClass::BestEffort => 1,
        }
    }

    /// Stable index for table lookups.
    pub fn index(self) -> usize {
        match self {
            TrafficClass::LowLatency => 0,
            TrafficClass::Dedicated => 1,
            TrafficClass::BulkData => 2,
            TrafficClass::BestEffort => 3,
        }
    }
}


impl fmt::Display for TrafficClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TrafficClass::LowLatency => "low-latency",
            TrafficClass::Dedicated => "dedicated",
            TrafficClass::BulkData => "bulk-data",
            TrafficClass::BestEffort => "best-effort",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vni_global_is_one() {
        assert_eq!(Vni::GLOBAL.raw(), 1);
    }

    #[test]
    fn tc_order_matches_priority() {
        let ws: Vec<u32> = TrafficClass::ALL.iter().map(|t| t.weight()).collect();
        let mut sorted = ws.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(ws, sorted, "ALL must be highest-priority first");
    }

    #[test]
    fn tc_indices_are_dense() {
        let mut idx: Vec<usize> = TrafficClass::ALL.iter().map(|t| t.index()).collect();
        idx.sort_unstable();
        assert_eq!(idx, vec![0, 1, 2, 3]);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Vni(7).to_string(), "VNI#7");
        assert_eq!(NicAddr(3).to_string(), "nid00003");
        assert_eq!(TrafficClass::BulkData.to_string(), "bulk-data");
    }
}
