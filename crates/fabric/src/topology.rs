//! Dragonfly-style multi-switch topology with a routing table computed
//! at build time.
//!
//! The shape mirrors Slingshot's dragonfly (§II-B of the paper): NICs
//! attach to edge ports of a switch; the switches of one *group* are
//! fully connected by local links; every pair of groups is connected by
//! one bidirectional *global* link between deterministic gateway
//! switches. Routing is deterministic and loop-free:
//!
//! * **minimal** — at most `src → gateway(src group) → landing(dst
//!   group) → dst`, i.e. ≤ 3 inter-switch hops;
//! * **non-minimal (Valiant)** — detour through the landing switch of a
//!   deterministically chosen intermediate group (keyed by the caller's
//!   salt, typically the message id), the classic congestion-avoidance
//!   route with ≤ 5 inter-switch hops.
//!
//! A 1-group × 1-switch spec is the degenerate single-switch fabric the
//! rest of the workspace grew up on; all routes are then `[switch]` and
//! the engine's timing reduces to the original single-switch formula.

use crate::types::SwitchId;

/// Shape of a dragonfly fabric.
///
/// ```
/// use shs_fabric::TopologySpec;
///
/// let spec = TopologySpec { groups: 4, switches_per_group: 2, edge_ports: 16 };
/// assert_eq!(spec.total_switches(), 8);
/// assert_eq!(TopologySpec::single_switch(64).total_switches(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TopologySpec {
    /// Number of dragonfly groups (≥ 1).
    pub groups: usize,
    /// Switches per group, locally all-to-all connected (≥ 1).
    pub switches_per_group: usize,
    /// NIC-facing edge ports per switch.
    pub edge_ports: usize,
}

impl TopologySpec {
    /// The degenerate 1-group × 1-switch topology (the legacy
    /// single-switch fabric).
    pub const fn single_switch(edge_ports: usize) -> Self {
        TopologySpec { groups: 1, switches_per_group: 1, edge_ports }
    }

    /// Total switch count over all groups.
    pub const fn total_switches(&self) -> usize {
        self.groups * self.switches_per_group
    }
}

/// Route selection policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RoutingPolicy {
    /// Always the minimal (≤ 3 inter-switch hops) route.
    #[default]
    Minimal,
    /// Valiant load balancing: detour via a deterministic intermediate
    /// group chosen from the route salt. Falls back to minimal when
    /// fewer than three groups exist.
    Valiant,
    /// UGAL-style adaptive routing: per packet, the fabric compares the
    /// minimal route against the salted Valiant detour by (live queue
    /// depth × hop count) at injection and takes the cheaper one. The
    /// topology interns both route families; the engines make the
    /// per-packet choice. Falls back to minimal when fewer than three
    /// groups exist (no detour is possible).
    Adaptive,
}

/// The built topology: spec + the minimal-route next-hop table.
///
/// ```
/// use shs_fabric::{RoutingPolicy, SwitchId, Topology, TopologySpec};
///
/// let topo = Topology::new(
///     TopologySpec { groups: 2, switches_per_group: 2, edge_ports: 8 },
///     RoutingPolicy::Minimal,
/// );
/// // Same group: one local hop. Different group: via the global link.
/// assert_eq!(topo.route(SwitchId(0), SwitchId(1), 0), vec![SwitchId(0), SwitchId(1)]);
/// let cross = topo.route(SwitchId(0), SwitchId(3), 0);
/// assert_eq!(cross.first(), Some(&SwitchId(0)));
/// assert_eq!(cross.last(), Some(&SwitchId(3)));
/// assert!(cross.len() <= 4, "minimal dragonfly routes are at most 4 switches");
/// ```
#[derive(Debug, Clone)]
pub struct Topology {
    spec: TopologySpec,
    policy: RoutingPolicy,
    /// `next_hop[src][dst]` = next switch on the minimal route from
    /// `src` towards `dst` (self for `src == dst`). Computed at build
    /// time; the route caches are walked from it.
    next_hop: Vec<Vec<u32>>,
    /// Interned routes: every route any `route*` call can return is
    /// computed once at build time and handed out as a slice, so the
    /// per-packet path lookup allocates nothing. See [`RouteCache`].
    minimal: RouteCache,
    /// Valiant routes, one entry per `(src, dst, salt class)`. Empty
    /// when the policy is [`RoutingPolicy::Minimal`] or fewer than three
    /// groups exist (Valiant then degrades to minimal anyway).
    valiant: RouteCache,
}

/// A flat arena of interned routes. Routes are at most
/// [`RouteCache::STRIDE`] switches long (Valiant's 6-switch worst case),
/// so the arena uses a fixed stride: route `i` occupies
/// `switches[i * STRIDE ..][.. lens[i]]`. Lookup is one multiply and one
/// bounds-checked slice — no pointer chase through per-route `Vec`s.
#[derive(Debug, Clone, Default)]
struct RouteCache {
    switches: Vec<SwitchId>,
    lens: Vec<u8>,
}

impl RouteCache {
    /// Longest possible route: Valiant's `src → gw → land(mid) → mid-gw
    /// → land(dst) → dst`.
    const STRIDE: usize = 6;

    fn with_capacity(routes: usize) -> Self {
        RouteCache {
            switches: Vec::with_capacity(routes * Self::STRIDE),
            lens: Vec::with_capacity(routes),
        }
    }

    /// Intern `path` as the next route slot (callers index slots in the
    /// same order they push).
    fn push(&mut self, path: &[SwitchId]) {
        debug_assert!(!path.is_empty() && path.len() <= Self::STRIDE);
        self.switches.extend_from_slice(path);
        self.switches.resize(self.lens.len() * Self::STRIDE + Self::STRIDE, SwitchId(0));
        self.lens.push(path.len() as u8);
    }

    fn get(&self, idx: usize) -> &[SwitchId] {
        &self.switches[idx * Self::STRIDE..][..self.lens[idx] as usize]
    }
}

impl Topology {
    /// Build the topology, its routing table, and the interned route
    /// caches. Panics on a zero dimension (a wiring bug, like the
    /// fabric's double-attach).
    pub fn new(spec: TopologySpec, policy: RoutingPolicy) -> Self {
        assert!(spec.groups >= 1, "topology needs at least one group");
        assert!(spec.switches_per_group >= 1, "topology needs at least one switch per group");
        let n = spec.total_switches();
        let mut next_hop = vec![vec![0u32; n]; n];
        for (src, row) in next_hop.iter_mut().enumerate() {
            for (dst, hop) in row.iter_mut().enumerate() {
                *hop = Self::compute_next_hop(&spec, src, dst) as u32;
            }
        }
        let mut topo =
            Topology { spec, policy, next_hop, minimal: RouteCache::default(), valiant: RouteCache::default() };
        let mut scratch = Vec::with_capacity(RouteCache::STRIDE);
        let mut minimal = RouteCache::with_capacity(n * n);
        for src in 0..n {
            for dst in 0..n {
                scratch.clear();
                topo.walk_minimal(SwitchId(src), SwitchId(dst), &mut scratch);
                minimal.push(&scratch);
            }
        }
        topo.minimal = minimal;
        if policy != RoutingPolicy::Minimal && spec.groups >= 3 {
            // `salt % (groups - 2)` is the only way the salt enters route
            // selection, so `groups - 2` interned routes per (src, dst)
            // pair cover every possible salt.
            let classes = topo.salt_classes();
            let mut valiant = RouteCache::with_capacity(n * n * classes);
            let mut tail = Vec::with_capacity(RouteCache::STRIDE);
            for src in 0..n {
                for dst in 0..n {
                    for class in 0..classes {
                        scratch.clear();
                        tail.clear();
                        topo.walk_valiant(
                            SwitchId(src),
                            SwitchId(dst),
                            class as u64,
                            &mut scratch,
                            &mut tail,
                        );
                        valiant.push(&scratch);
                    }
                }
            }
            topo.valiant = valiant;
        }
        topo
    }

    /// Distinct values `salt % (groups - 2)` can take, i.e. how many
    /// Valiant routes exist per (src, dst) pair. The adaptive engines
    /// iterate these classes when repairing a route around a failure.
    pub fn salt_classes(&self) -> usize {
        self.spec.groups.saturating_sub(2).max(1)
    }

    /// The shape this topology was built from.
    pub fn spec(&self) -> &TopologySpec {
        &self.spec
    }

    /// The routing policy in force.
    pub fn policy(&self) -> RoutingPolicy {
        self.policy
    }

    /// Total switch count.
    pub fn switch_count(&self) -> usize {
        self.spec.total_switches()
    }

    /// Group a switch belongs to.
    pub fn group_of(&self, sw: SwitchId) -> usize {
        sw.0 / self.spec.switches_per_group
    }

    /// Flat switch id of local switch `idx` in `group`.
    pub fn switch_in_group(&self, group: usize, idx: usize) -> SwitchId {
        SwitchId(group * self.spec.switches_per_group + idx % self.spec.switches_per_group)
    }

    /// Gateway switch in `from_group` holding the global link towards
    /// `to_group` (deterministic consecutive assignment: link for group
    /// pair `(i, j)` hangs off local switch `j mod a` in group `i` and
    /// lands on local switch `i mod a` in group `j`).
    pub fn gateway(&self, from_group: usize, to_group: usize) -> SwitchId {
        self.switch_in_group(from_group, to_group)
    }

    /// Whether two distinct switches are directly linked (local
    /// all-to-all within a group, or the group pair's global link).
    pub fn connected(&self, a: SwitchId, b: SwitchId) -> bool {
        if a == b {
            return false;
        }
        let (ga, gb) = (self.group_of(a), self.group_of(b));
        if ga == gb {
            return true; // local all-to-all
        }
        self.gateway(ga, gb) == a && self.gateway(gb, ga) == b
    }

    /// Every directed inter-switch link, in deterministic order.
    pub fn trunk_links(&self) -> Vec<(SwitchId, SwitchId)> {
        let n = self.switch_count();
        let mut out = Vec::new();
        for a in 0..n {
            for b in 0..n {
                if self.connected(SwitchId(a), SwitchId(b)) {
                    out.push((SwitchId(a), SwitchId(b)));
                }
            }
        }
        out
    }

    /// Number of dragonfly groups.
    pub fn groups(&self) -> usize {
        self.spec.groups
    }

    /// The per-group view a simulation shard owns: its switches and the
    /// directed trunks *sourced* in the group. Ownership by source
    /// switch partitions every directed trunk across the groups — a
    /// shard reserves only links it owns, and a cross-group message is
    /// handed to the destination group exactly when it has cleared the
    /// boundary trunk (whose source side the sending shard owns).
    pub fn group_view(&self, group: usize) -> GroupView {
        assert!(group < self.spec.groups, "group {group} out of range");
        let a = self.spec.switches_per_group;
        let switches: Vec<SwitchId> = (0..a).map(|i| SwitchId(group * a + i)).collect();
        let mut trunks_out = Vec::new();
        let mut boundary_out = Vec::new();
        for (s, d) in self.trunk_links() {
            if self.group_of(s) == group {
                trunks_out.push((s, d));
                if self.group_of(d) != group {
                    boundary_out.push((s, d));
                }
            }
        }
        GroupView { group, switches, trunks_out, boundary_out }
    }

    fn compute_next_hop(spec: &TopologySpec, src: usize, dst: usize) -> usize {
        if src == dst {
            return dst;
        }
        let a = spec.switches_per_group;
        let (gs, gd) = (src / a, dst / a);
        if gs == gd {
            return dst; // local all-to-all
        }
        let gateway = gs * a + gd % a;
        if src == gateway {
            gd * a + gs % a // the global hop lands in the destination group
        } else {
            gateway // first reach this group's gateway towards gd
        }
    }

    /// Next switch on the minimal route from `from` towards `to` (one
    /// lookup in the build-time table; `from` itself when already
    /// there). The allocation-free primitive behind [`route_minimal`]
    /// — hot paths walk it directly.
    ///
    /// [`route_minimal`]: Topology::route_minimal
    pub fn next_hop_min(&self, from: SwitchId, to: SwitchId) -> SwitchId {
        SwitchId(self.next_hop[from.0][to.0] as usize)
    }

    /// Minimal route between two switches, endpoints included. A route
    /// never revisits a switch and is at most 4 switches long. One
    /// arena lookup — the route was interned at build time.
    pub fn route_minimal(&self, from: SwitchId, to: SwitchId) -> &[SwitchId] {
        self.minimal.get(from.0 * self.switch_count() + to.0)
    }

    /// The route the fabric uses for a message, per the policy. `salt`
    /// (typically the message id) picks the Valiant intermediate group
    /// deterministically; minimal routing ignores it. One arena lookup;
    /// nothing is allocated per call.
    pub fn route(&self, from: SwitchId, to: SwitchId, salt: u64) -> &[SwitchId] {
        match self.policy {
            RoutingPolicy::Minimal => self.route_minimal(from, to),
            RoutingPolicy::Valiant => self.route_valiant(from, to, salt),
            // Adaptive's per-packet choice needs live queue state the
            // topology does not hold; the engines call `route_minimal` /
            // `route_valiant` themselves. The policy-only route is the
            // minimal base path (what a zero-load UGAL decision picks).
            RoutingPolicy::Adaptive => self.route_minimal(from, to),
        }
    }

    /// Valiant route: minimal to the landing switch of an intermediate
    /// group, then minimal onwards. Deterministic in `salt`; loop-free
    /// because the groups visited (`src`, `mid`, `dst`) are distinct and
    /// each group's switches appear consecutively.
    pub fn route_valiant(&self, from: SwitchId, to: SwitchId, salt: u64) -> &[SwitchId] {
        if self.valiant.lens.is_empty() {
            // Minimal-policy or < 3 groups: Valiant degrades to minimal.
            return self.route_minimal(from, to);
        }
        let classes = self.salt_classes();
        let class = (salt % classes as u64) as usize;
        self.valiant.get((from.0 * self.switch_count() + to.0) * classes + class)
    }

    /// Compute (not look up) the minimal route into `path`.
    fn walk_minimal(&self, from: SwitchId, to: SwitchId, path: &mut Vec<SwitchId>) {
        path.push(from);
        let mut cur = from.0;
        while cur != to.0 {
            cur = self.next_hop[cur][to.0] as usize;
            path.push(SwitchId(cur));
        }
    }

    /// Compute (not look up) the Valiant route into `path`, using `tail`
    /// as scratch for the second minimal segment.
    fn walk_valiant(
        &self,
        from: SwitchId,
        to: SwitchId,
        salt: u64,
        path: &mut Vec<SwitchId>,
        tail: &mut Vec<SwitchId>,
    ) {
        let (gs, gd) = (self.group_of(from), self.group_of(to));
        if self.spec.groups < 3 || gs == gd {
            self.walk_minimal(from, to, path);
            return;
        }
        // k-th intermediate group in ascending order, skipping src/dst
        // (pure arithmetic; no candidate list is materialised).
        let others = (self.spec.groups - 2) as u64;
        let mut mid_group = (salt % others) as usize;
        let (lo, hi) = (gs.min(gd), gs.max(gd));
        if mid_group >= lo {
            mid_group += 1;
        }
        if mid_group >= hi {
            mid_group += 1;
        }
        // Route to where the src group's global link lands in mid_group,
        // so the junction switch is shared by both minimal segments.
        let mid = self.switch_in_group(mid_group, gs);
        self.walk_minimal(from, mid, path);
        self.walk_minimal(mid, to, tail);
        path.extend_from_slice(&tail[1..]);
    }
}

/// One group's slice of the topology, as owned by a simulation shard:
/// the group's switches plus every directed trunk sourced there. See
/// [`Topology::group_view`] for the ownership rule.
#[derive(Debug, Clone)]
pub struct GroupView {
    /// The group index.
    pub group: usize,
    /// The group's switches, ascending.
    pub switches: Vec<SwitchId>,
    /// Every directed trunk whose source switch is in this group
    /// (intra-group local links and outgoing global links), in
    /// [`Topology::trunk_links`] order.
    pub trunks_out: Vec<(SwitchId, SwitchId)>,
    /// The subset of [`trunks_out`](GroupView::trunks_out) crossing
    /// into another group — the shard's handoff boundary.
    pub boundary_out: Vec<(SwitchId, SwitchId)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo(groups: usize, a: usize) -> Topology {
        Topology::new(
            TopologySpec { groups, switches_per_group: a, edge_ports: 4 },
            RoutingPolicy::Minimal,
        )
    }

    #[test]
    fn degenerate_single_switch_routes_to_itself() {
        let t = topo(1, 1);
        assert_eq!(t.route(SwitchId(0), SwitchId(0), 9), vec![SwitchId(0)]);
        assert!(t.trunk_links().is_empty());
    }

    #[test]
    fn same_group_is_one_local_hop() {
        let t = topo(2, 4);
        assert_eq!(t.route(SwitchId(1), SwitchId(3), 0), vec![SwitchId(1), SwitchId(3)]);
    }

    #[test]
    fn cross_group_routes_are_minimal_and_valid() {
        let t = topo(3, 2);
        for s in 0..t.switch_count() {
            for d in 0..t.switch_count() {
                let p = t.route_minimal(SwitchId(s), SwitchId(d));
                assert_eq!(p[0], SwitchId(s));
                assert_eq!(*p.last().unwrap(), SwitchId(d));
                assert!(p.len() <= 4, "{s}->{d}: {p:?}");
                for w in p.windows(2) {
                    assert!(t.connected(w[0], w[1]), "{s}->{d}: {:?} not linked", w);
                }
            }
        }
    }

    #[test]
    fn global_links_are_symmetric() {
        let t = topo(4, 3);
        for (a, b) in t.trunk_links() {
            assert!(t.connected(b, a), "link {a}->{b} must be bidirectional");
        }
    }

    #[test]
    fn valiant_detours_through_a_third_group() {
        let t = Topology::new(
            TopologySpec { groups: 4, switches_per_group: 2, edge_ports: 4 },
            RoutingPolicy::Valiant,
        );
        let from = SwitchId(0);
        let to = SwitchId(7); // group 3
        let p = t.route(from, to, 1);
        let groups: Vec<usize> = p.iter().map(|&s| t.group_of(s)).collect();
        assert!(groups.iter().any(|&g| g != 0 && g != 3), "detour group in {groups:?}");
        // Loop-free and valid.
        let mut seen = std::collections::BTreeSet::new();
        assert!(p.iter().all(|s| seen.insert(*s)), "revisit in {p:?}");
        for w in p.windows(2) {
            assert!(t.connected(w[0], w[1]));
        }
        // Deterministic in the salt.
        assert_eq!(p, t.route(from, to, 1));
        assert!(p.len() <= 6);
    }

    #[test]
    fn route_cache_matches_recomputed_walk() {
        // The interned arena must agree with a fresh walk of the
        // next-hop table for every (src, dst, salt) — including salts
        // far beyond the class count (they alias onto cached classes).
        for policy in [RoutingPolicy::Minimal, RoutingPolicy::Valiant] {
            let t = Topology::new(
                TopologySpec { groups: 5, switches_per_group: 3, edge_ports: 4 },
                policy,
            );
            for s in 0..t.switch_count() {
                for d in 0..t.switch_count() {
                    for salt in [0u64, 1, 2, 3, 7, 1_000_003] {
                        let cached = t.route(SwitchId(s), SwitchId(d), salt).to_vec();
                        let mut walked = Vec::new();
                        let mut tail = Vec::new();
                        match policy {
                            // Adaptive's policy-only route is the minimal
                            // base path (the zero-load UGAL decision).
                            RoutingPolicy::Minimal | RoutingPolicy::Adaptive => {
                                t.walk_minimal(SwitchId(s), SwitchId(d), &mut walked)
                            }
                            RoutingPolicy::Valiant => t.walk_valiant(
                                SwitchId(s),
                                SwitchId(d),
                                salt,
                                &mut walked,
                                &mut tail,
                            ),
                        }
                        assert_eq!(cached, walked, "{policy:?} {s}->{d} salt {salt}");
                    }
                }
            }
        }
    }

    #[test]
    fn group_views_partition_switches_and_trunks() {
        for (groups, a) in [(1usize, 1usize), (2, 2), (4, 3), (4, 8)] {
            let t = topo(groups, a);
            let mut all_switches = Vec::new();
            let mut all_trunks = Vec::new();
            for g in 0..t.groups() {
                let v = t.group_view(g);
                assert_eq!(v.group, g);
                assert_eq!(v.switches.len(), a);
                assert!(v.switches.iter().all(|&s| t.group_of(s) == g));
                for &(s, d) in &v.trunks_out {
                    assert_eq!(t.group_of(s), g, "owned by source group");
                    assert!(t.connected(s, d));
                }
                for &(s, d) in &v.boundary_out {
                    assert!(t.group_of(d) != g, "boundary must cross groups");
                    assert!(v.trunks_out.contains(&(s, d)));
                }
                assert_eq!(
                    v.trunks_out.iter().filter(|&&(_, d)| t.group_of(d) != g).count(),
                    v.boundary_out.len()
                );
                all_switches.extend(v.switches);
                all_trunks.extend(v.trunks_out);
            }
            // Views partition the fabric: every switch and every
            // directed trunk is owned by exactly one group.
            all_switches.sort();
            assert_eq!(all_switches, (0..t.switch_count()).map(SwitchId).collect::<Vec<_>>());
            all_trunks.sort();
            let mut expect = t.trunk_links();
            expect.sort();
            assert_eq!(all_trunks, expect);
        }
    }

    #[test]
    fn valiant_degrades_to_minimal_below_three_groups() {
        let t = Topology::new(
            TopologySpec { groups: 2, switches_per_group: 2, edge_ports: 4 },
            RoutingPolicy::Valiant,
        );
        assert_eq!(t.route(SwitchId(0), SwitchId(3), 5), t.route_minimal(SwitchId(0), SwitchId(3)));
    }
}
